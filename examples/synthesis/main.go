// Synthesis: the hierarchy separations, discovered by machine. Bounded
// protocol synthesis searches over ALL deterministic 2-process protocols
// with a few accesses per process. It finds consensus protocols where the
// hierarchy says they exist (one compare-and-swap, one augmented queue)
// and exhaustively refutes them where it says they don't (one test-and-set
// alone — the h_1 = 1 side of the story whose h_m = 2 side the Theorem 5
// pipeline constructs).
package main

import (
	"errors"
	"fmt"
	"log"

	"waitfree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// Positive: one augmented queue suffices; synthesis rediscovers
	// enqueue-your-proposal-then-peek on its own.
	aq := []waitfree.SynthObject{{
		Name: "aq", Spec: waitfree.NewAugmentedQueue(2, 2, 2), Init: waitfree.QueueStateOf(),
	}}
	opts := waitfree.SynthOptions{Depth: 2, Symmetric: true}
	st, stats, err := waitfree.SynthesizeProtocol(aq, opts)
	if err != nil {
		return err
	}
	fmt.Printf("augmented queue: protocol found after %d assignments:\n%s\n",
		stats.Assignments, st.Format(aq))

	// Re-verify it with the independent exhaustive checker.
	im := waitfree.StrategyImplementation("synthesized-augqueue", aq, st, opts)
	report, err := waitfree.CheckConsensus(im, waitfree.ExploreOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("re-verification: %s\n\n", report.Summary())

	// Negative: one test-and-set object alone. The loser learns that it
	// lost but can never learn what the winner proposed — and the search
	// proves no protocol with up to 3 accesses per process exists.
	tas := []waitfree.SynthObject{{
		Name: "tas", Spec: waitfree.NewTestAndSet(2), Init: 0,
	}}
	_, stats, err = waitfree.SynthesizeProtocol(tas, waitfree.SynthOptions{Depth: 3})
	if errors.Is(err, waitfree.ErrNoProtocol) {
		fmt.Printf("one test-and-set alone: NO protocol exists within 3 accesses per process\n")
		fmt.Printf("(exhausted after %d assignments — h_1(test-and-set) = 1)\n\n", stats.Assignments)
	} else if err != nil {
		return err
	}

	// The h_m side: many test-and-set objects DO solve consensus without
	// registers — the Theorem 5 pipeline builds the protocol.
	pipeline, err := waitfree.EliminateRegisters(waitfree.TAS2Consensus(), waitfree.ExploreOptions{}, 3)
	if err != nil {
		return err
	}
	fmt.Printf("the Theorem 5 pipeline: %s\n", pipeline.Summary())
	fmt.Println("\nso: h_1(tas) = 1 < h_1^r(tas) = 2 = h_m(tas) — registers matter for one")
	fmt.Println("object and stop mattering for many, exactly as the paper proves.")
	return nil
}
