// Faulttolerance: what "wait-free" buys you. Wait-freedom means every
// process finishes in a bounded number of its own steps no matter what the
// others do — including crashing at the worst possible moment. This
// example takes the queue-based consensus protocol, runs it through the
// Theorem 5 register-elimination pipeline, and then crashes one process at
// EVERY possible step of the register-free protocol: the survivor always
// decides, validly.
package main

import (
	"fmt"
	"log"

	"waitfree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	report, err := waitfree.EliminateRegisters(
		waitfree.Queue2Consensus(), waitfree.ExploreOptions{}, 3)
	if err != nil {
		return err
	}
	out := report.Output
	fmt.Printf("register-free protocol: %v\n", out)
	fmt.Printf("longest execution: %d object accesses\n\n", report.OutputReport.Depth)

	maxSteps := report.OutputReport.Depth
	survived, crashed := 0, 0
	for victim := 0; victim < 2; victim++ {
		for crashAfter := 0; crashAfter <= maxSteps; crashAfter++ {
			runner, err := waitfree.NewRunner(out,
				waitfree.NewCrashScheduler(map[int]int{victim: crashAfter}), nil)
			if err != nil {
				return err
			}
			scripts := [][]waitfree.Invocation{
				{waitfree.Propose(0)}, {waitfree.Propose(1)},
			}
			outcome, err := runner.Run(scripts, nil)
			if err != nil {
				return err
			}
			if outcome.Crashed[victim] {
				crashed++
			}
			survivor := 1 - victim
			if len(outcome.Responses[survivor]) != 1 {
				return fmt.Errorf("victim=%d crash@%d: survivor did not decide", victim, crashAfter)
			}
			d := outcome.Responses[survivor][0]
			if d.Val != 0 && d.Val != 1 {
				return fmt.Errorf("victim=%d crash@%d: invalid decision %v", victim, crashAfter, d)
			}
			survived++
		}
	}
	fmt.Printf("ran %d crash scenarios (%d actually crashed a process mid-protocol)\n", survived, crashed)
	fmt.Println("the survivor decided a valid value in every single one — wait-freedom at work.")
	fmt.Println("\n(The same protocol was also verified exhaustively over all interleavings")
	fmt.Println("by the explorer; crash tolerance follows from wait-freedom because a crash")
	fmt.Println("is indistinguishable from a process that is merely very slow.)")
	return nil
}
