// Faulttolerance: what "wait-free" buys you. Wait-freedom means every
// process finishes in a bounded number of its own steps no matter what the
// others do — including crashing at the worst possible moment. This
// example takes the queue-based consensus protocol, runs it through the
// Theorem 5 register-elimination pipeline, and then verifies BOTH
// protocols under exhaustive crash exploration: the explorer enumerates
// every interleaving AND every way one process can crash inside it, and
// checks that the survivor always decides a valid value.
package main

import (
	"context"
	"fmt"
	"log"

	"waitfree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	ctx := context.Background()
	oneCrash := waitfree.FaultModel{MaxCrashes: 1}

	// First the input protocol itself, under exhaustive <=1-crash
	// exploration.
	input := waitfree.Queue2Consensus()
	rep, err := waitfree.CheckConsensusContext(ctx, input,
		waitfree.ExploreOptions{Memoize: true, Faults: oneCrash})
	if err != nil {
		return err
	}
	fmt.Printf("input protocol:  %s\n", rep.Summary())
	if !rep.OK() {
		return fmt.Errorf("queue protocol failed under crash exploration")
	}

	// Then eliminate its registers (Theorem 5) and re-verify the
	// register-free output the same way.
	elim, err := waitfree.EliminateRegistersContext(ctx, input,
		waitfree.ExploreOptions{Memoize: true, Faults: oneCrash}, 3)
	if err != nil {
		return err
	}
	out := elim.Output
	outRep := elim.OutputReport
	fmt.Printf("register-free:   %s\n", outRep.Summary())
	fmt.Printf("\nregister-free protocol: %v\n", out)
	fmt.Printf("longest execution: %d object accesses\n\n", outRep.Depth)

	fmt.Printf("the explorer checked %d executions of the register-free protocol,\n", outRep.Leaves)
	fmt.Println("including every schedule in which one process crashes at any point:")
	fmt.Println("in every single one the survivor decided a valid value — wait-freedom")
	fmt.Println("at work. A crash is indistinguishable from a process that is merely")
	fmt.Println("very slow, so wait-freedom implies crash tolerance; the fault-aware")
	fmt.Println("explorer verifies that implication directly instead of assuming it.")

	// A concrete crashing run, for flavor: crash process 0 before its very
	// first step and watch process 1 decide alone.
	runner, err := waitfree.NewRunner(out,
		waitfree.NewCrashScheduler(map[int]int{0: 0}), waitfree.RandomResolver(1))
	if err != nil {
		return err
	}
	outcome, err := runner.Run([][]waitfree.Invocation{
		{waitfree.Propose(0)}, {waitfree.Propose(1)},
	}, nil)
	if err != nil {
		return err
	}
	fmt.Printf("\nsample run with process 0 crashed at step 0: crashed=%v, survivor decided %v\n",
		outcome.Crashed, outcome.Responses[1][0])
	return nil
}
