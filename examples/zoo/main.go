// Zoo: walk the concurrent data type zoo. For every type: obliviousness,
// determinism, triviality, the witness by which it implements one-use bits
// (Sections 5.1/5.2), and what Theorem 5 concludes about its position in
// Jayanti's h_m and h_m^r hierarchies. Ends with the nondeterministic
// corner the paper carves out: a type for which registers provably help —
// consensus works with them and the naive protocol breaks without them.
package main

import (
	"fmt"
	"log"

	"waitfree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	cs, err := waitfree.ClassifyZoo()
	if err != nil {
		return err
	}
	fmt.Println("type zoo classification:")
	for _, c := range cs {
		kind := "deterministic"
		if !c.Deterministic {
			kind = "nondeterministic"
		}
		if !c.Oblivious {
			kind += ", port-aware"
		}
		status := "non-trivial"
		if c.Trivial {
			status = "TRIVIAL (implements nothing)"
		}
		fmt.Printf("\n%s (%s, %s)\n", c.Name, kind, status)
		fmt.Printf("  consensus number: %s, h_m: %s\n", c.Consensus, c.HM)
		fmt.Printf("  %s\n", c.Theorem5)
		if c.Pair != nil {
			fmt.Printf("  one-use bit witness: %v\n", c.Pair)
		}
	}

	// The nondeterministic separation (Section 6 context): WeakLeader
	// elects exactly one winner among its first two accesses, but the
	// adversary picks which. With registers, the two-access protocol
	// solves consensus in every adversary resolution:
	fmt.Println("\n--- the nondeterministic corner ---")
	report, err := waitfree.CheckConsensus(waitfree.WeakLeader2Consensus(), waitfree.ExploreOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("weak-leader WITH registers:    %s\n", report.Summary())

	// Without registers, the same election cannot transmit the winner's
	// proposal. The natural protocol — decide your own value if you win,
	// give up and guess otherwise — fails agreement, and the explorer
	// exhibits the adversary resolution that breaks it:
	report, err = waitfree.CheckConsensus(weakLeaderNoRegisters(), waitfree.ExploreOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("weak-leader WITHOUT registers: %s\n", report.Summary())
	if report.Violation != nil {
		fmt.Println("adversary's counterexample:")
		for _, s := range report.Violation.Schedule {
			fmt.Printf("  %v\n", s)
		}
		fmt.Printf("  %s\n", report.Violation.Detail)
	}
	fmt.Println("\nTheorem 5 says this gap needs nondeterminism: for every deterministic")
	fmt.Println("type the register-free h_m equals the register-assisted h_m^r.")
	return nil
}

// weakLeaderNoRegisters is the doomed register-free attempt: announce
// nothing, access the WeakLeader object twice, decide your own value if
// you won and the *other* binary value if you lost (the best blind guess —
// the winner decided its own value, which you do not know).
func weakLeaderNoRegisters() *waitfree.Implementation {
	type st struct {
		PC int
		V  int
	}
	machine := waitfree.FuncMachine{
		StartFn: func(inv waitfree.Invocation, _ any) any { return st{PC: 0, V: inv.A} },
		NextFn: func(state any, resp waitfree.Response) (waitfree.Action, any) {
			s := state.(st)
			won := resp.Label == "win"
			switch {
			case s.PC == 0:
				return waitfree.InvokeAction(0, waitfree.Inv("tas")), st{PC: 1, V: s.V}
			case won:
				return waitfree.ReturnAction(waitfree.ValOf(s.V), nil), s
			case s.PC == 1:
				return waitfree.InvokeAction(0, waitfree.Inv("tas")), st{PC: 2, V: s.V}
			default:
				return waitfree.ReturnAction(waitfree.ValOf(1-s.V), nil), s
			}
		},
	}
	return &waitfree.Implementation{
		Name:   "weakleader-no-registers",
		Target: waitfree.NewConsensus(2),
		Procs:  2,
		Objects: []waitfree.ObjectDecl{
			{Name: "elect", Spec: waitfree.NewWeakLeader(2), Init: 0, PortOf: []int{1, 2}},
		},
		Machines: []waitfree.Machine{machine, machine},
	}
}
