// Registerfree: the paper's Theorem 5, end to end. Take the classic
// queue-based 2-process consensus protocol (one queue + two SRSW bit
// registers), eliminate the registers through the paper's pipeline —
// Section 4.2 access bounds, Section 4.3 one-use bits, Section 5.2
// realization from the queue type itself — and verify that the resulting
// queue-only protocol still solves consensus in every execution.
package main

import (
	"fmt"
	"log"

	"waitfree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	input := waitfree.Queue2Consensus()
	fmt.Printf("input:  %v\n", input)

	report, err := waitfree.EliminateRegisters(input, waitfree.ExploreOptions{}, 3)
	if err != nil {
		return err
	}

	fmt.Printf("output: %v\n\n", report.Output)

	fmt.Println("Section 4.2: uniform access bound over all executions")
	fmt.Printf("  D = %d (every object is used at most D times)\n", report.InputReport.Depth)
	for _, b := range report.Bounds {
		fmt.Printf("  %s: read at most %d times, written at most %d times\n", b.Name, b.R, b.W)
	}

	fmt.Println("\nSection 4.3: each register becomes a (w+1) x r array of one-use bits")
	fmt.Printf("  one-use bits introduced: %d\n", report.OneUseBitsUsed)

	fmt.Println("\nSection 5.2: each one-use bit becomes one queue object")
	fmt.Printf("  witness: %v\n", report.Pair)
	fmt.Printf("  queue objects added: %d\n", report.TypeObjectsAdded)

	fmt.Println("\nverification of the queue-only protocol (all proposal vectors, all interleavings):")
	fmt.Printf("  %s\n", report.OutputReport.Summary())

	if !report.OutputReport.OK() {
		return fmt.Errorf("pipeline produced an incorrect implementation")
	}
	fmt.Println("\nconclusion: h_m(queue) >= 2 without any registers — Theorem 5 in action.")
	return nil
}
