// Quickstart: define a concurrent data type as a 5-tuple, classify it,
// derive a one-use bit from it (Section 5 of Bazzi-Neiger-Peterson), and
// model-check a consensus protocol built on it.
package main

import (
	"fmt"
	"log"

	"waitfree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	// A type is a 5-tuple T = <n, Q, I, R, delta>. Here is a 2-port
	// "turnstile counter": push increments a hidden counter and answers
	// ok; peek answers the count so far.
	turnstile := &waitfree.Spec{
		Name:          "turnstile",
		Ports:         2,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      []waitfree.Invocation{waitfree.Inv("push"), waitfree.Inv("peek")},
		Step: func(q waitfree.State, _ int, inv waitfree.Invocation) []waitfree.Transition {
			n, ok := q.(int)
			if !ok {
				return nil
			}
			switch inv.Op {
			case "push":
				return []waitfree.Transition{{Next: n + 1, Resp: waitfree.OK}}
			case "peek":
				return []waitfree.Transition{{Next: n, Resp: waitfree.ValOf(n)}}
			}
			return nil
		},
	}

	// Is it trivial? (Trivial types carry no information and cannot
	// implement anything — Section 5.1.)
	trivial, err := waitfree.IsTrivial(turnstile, []waitfree.State{0}, 3)
	if err != nil {
		return err
	}
	fmt.Printf("turnstile is trivial: %v\n", trivial)

	// Non-trivial deterministic types implement one-use bits. Find the
	// Section 5.2 witness and build the bit.
	pair, err := waitfree.FindPair(turnstile, []waitfree.State{0}, 3)
	if err != nil {
		return err
	}
	fmt.Printf("section 5.2 witness: %v\n", pair)

	bit, _, err := waitfree.OneUseBitFromType(turnstile, []waitfree.State{0}, 3)
	if err != nil {
		return err
	}
	fmt.Printf("derived implementation: %v\n", bit)

	// Model-check a classic consensus protocol: 2-process consensus from
	// one test-and-set object plus two SRSW bit registers. The checker
	// explores every interleaving from every proposal vector.
	report, err := waitfree.CheckConsensus(waitfree.TAS2Consensus(), waitfree.ExploreOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("tas-2consensus: %s\n", report.Summary())

	// And watch the checker catch an incorrect protocol: registers alone
	// cannot solve 2-process consensus.
	report, err = waitfree.CheckConsensus(waitfree.NaiveRegisterConsensus(), waitfree.ExploreOptions{})
	if err != nil {
		return err
	}
	fmt.Printf("naive-register-2consensus: %s\n", report.Summary())
	if report.Violation != nil {
		fmt.Printf("counterexample schedule has %d steps\n", len(report.Violation.Schedule))
	}
	return nil
}
