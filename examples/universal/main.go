// Universal: why consensus numbers matter. Herlihy's universality theorem
// (the context of Section 2.3) says a type that solves n-process consensus
// implements EVERY type for n processes. This example runs the universal
// construction — consensus cells driving replicated state machines — to
// give four goroutines a wait-free linearizable FIFO queue and a wait-free
// counter, types that have no simple lock-free realization of their own.
package main

import (
	"fmt"
	"log"
	"sort"
	"sync"

	"waitfree"
)

func main() {
	if err := run(); err != nil {
		log.Fatal(err)
	}
}

func run() error {
	const procs = 4

	// A wait-free shared counter: every fetch-and-add response is unique —
	// the construction hands out exactly the values 0..N-1.
	ctr, err := waitfree.NewUniversal(waitfree.NewFetchAdd(procs), 0, procs, 1024)
	if err != nil {
		return err
	}
	var mu sync.Mutex
	var got []int
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 25; i++ {
				resp, err := ctr.Apply(p, waitfree.Inv("faa", 1))
				if err != nil {
					log.Printf("p%d: %v", p, err)
					return
				}
				mu.Lock()
				got = append(got, resp.Val)
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	sort.Ints(got)
	dups := 0
	for i := 1; i < len(got); i++ {
		if got[i] == got[i-1] {
			dups++
		}
	}
	fmt.Printf("universal counter: %d increments by %d goroutines, %d duplicates, max=%d\n",
		len(got), procs, dups, got[len(got)-1])

	// A wait-free shared queue: producers enqueue tagged values,
	// consumers drain; nothing is lost or duplicated.
	q, err := waitfree.NewUniversal(waitfree.NewQueue(procs, 10, 64), waitfree.QueueStateOf(), procs, 1024)
	if err != nil {
		return err
	}
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := q.Apply(p, waitfree.Inv("enq", p*5+i%5)); err != nil {
					log.Printf("p%d: %v", p, err)
				}
			}
		}(p)
	}
	wg.Wait()
	drained := 0
	for {
		resp, err := q.Apply(3, waitfree.Inv("deq"))
		if err != nil {
			return err
		}
		if resp.Label == "empty" {
			break
		}
		drained++
	}
	fmt.Printf("universal queue: 10 enqueued concurrently, %d drained\n", drained)
	fmt.Println("every operation above was wait-free and linearizable — powered by consensus.")
	return nil
}
