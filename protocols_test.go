package waitfree

import (
	"context"
	"errors"
	"testing"
)

// The registry must cover every protocol the CLIs historically offered,
// build each one, and agree with the implementations' own shapes.
func TestProtocolRegistryBuildsEveryEntry(t *testing.T) {
	seen := map[string]bool{}
	for _, info := range Protocols() {
		if seen[info.Name] {
			t.Fatalf("duplicate registry name %q", info.Name)
		}
		seen[info.Name] = true
		im, err := info.Build(0)
		if err != nil {
			t.Fatalf("%s: Build(0): %v", info.Name, err)
		}
		if !info.Scalable() && im.Procs != info.Procs {
			t.Errorf("%s: registry says %d procs, implementation has %d", info.Name, info.Procs, im.Procs)
		}
		if info.Scalable() {
			im4, err := info.Build(4)
			if err != nil {
				t.Fatalf("%s: Build(4): %v", info.Name, err)
			}
			if im4.Procs != 4 {
				t.Errorf("%s: Build(4) produced %d procs", info.Name, im4.Procs)
			}
		}
		if info.Substrate != "" {
			if _, ok := LookupProtocol(info.Substrate); !ok {
				t.Errorf("%s: substrate %q not in registry", info.Name, info.Substrate)
			}
		}
	}
	for _, name := range []string{"tas", "queue", "stack", "faa", "swap", "weakleader",
		"naive", "casregister3", "noisysticky", "noisysticky-r", "cas", "sticky",
		"augqueue", "fetchcons"} {
		if !seen[name] {
			t.Errorf("registry is missing %q", name)
		}
	}
}

func TestProtocolRegistryRejects(t *testing.T) {
	if _, err := BuildProtocol("no-such-protocol", 0); !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("unknown name: got %v, want ErrUnknownProtocol", err)
	}
	if _, err := BuildProtocol("tas", 3); !errors.Is(err, ErrBadRequest) {
		t.Errorf("fixed-size mismatch: got %v, want ErrBadRequest", err)
	}
	if _, err := BuildProtocol("cas", 1); !errors.Is(err, ErrBadRequest) {
		t.Errorf("1-process scalable: got %v, want ErrBadRequest", err)
	}
	if _, err := BuildObjectSet("no-such-set"); !errors.Is(err, ErrUnknownProtocol) {
		t.Errorf("unknown object set: got %v, want ErrUnknownProtocol", err)
	}
}

// A registry-built protocol must verify exactly like its direct
// constructor (same implementation, same report).
func TestProtocolRegistryBuildVerifies(t *testing.T) {
	im, err := BuildProtocol("sticky", 2)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := Check(context.Background(), Request{Kind: KindConsensus, Implementation: im})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("sticky(2) failed verification: %s", rep)
	}
}

func TestObjectSetRegistry(t *testing.T) {
	seen := map[string]bool{}
	for _, info := range ObjectSets() {
		seen[info.Name] = true
		objs := info.Build()
		if len(objs) == 0 {
			t.Errorf("%s: empty object set", info.Name)
		}
		for _, o := range objs {
			if o.Spec == nil {
				t.Errorf("%s: object %q has nil spec", info.Name, o.Name)
			}
		}
	}
	for _, name := range []string{"tas", "tas+bits", "cas", "sticky", "register", "onebits"} {
		if !seen[name] {
			t.Errorf("object-set registry is missing %q", name)
		}
	}
}

func TestErrorCode(t *testing.T) {
	cases := []struct {
		err  error
		code string
	}{
		{nil, CodeOK},
		{ErrBadRequest, CodeBadRequest},
		{ErrBadExploreOptions, CodeBadRequest},
		{ErrBadFaultModel, CodeBadRequest},
		{ErrUnknownProtocol, CodeUnknownProtocol},
		{ErrBadCheckpoint, CodeBadCheckpoint},
		{ErrCorruptCheckpoint, CodeCorruptCheckpoint},
		{ErrNotSymmetric, CodeNotSymmetric},
		{ErrNotWaitFree, CodeNotWaitFree},
		{ErrInconclusive, CodeInconclusive},
		{ErrUncacheable, CodeUncacheable},
		{ErrNoProtocol, CodeNoProtocol},
		{ErrSynthBudget, CodeSynthBudget},
		{ErrAuditInconclusive, CodeAuditInconclusive},
		{context.Canceled, CodeCanceled},
		{context.DeadlineExceeded, CodeDeadline},
		{errors.New("anything else"), CodeInternal},
		// Wrapped sentinels unwrap.
		{errors.Join(errors.New("ctx"), ErrNotWaitFree), CodeNotWaitFree},
		{&StallError{}, CodeStalled},
	}
	for _, c := range cases {
		if got := ErrorCode(c.err); got != c.code {
			t.Errorf("ErrorCode(%v) = %q, want %q", c.err, got, c.code)
		}
	}
}
