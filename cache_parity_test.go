package waitfree_test

import (
	"bytes"
	"context"
	"encoding/json"
	"os"
	"path/filepath"
	"testing"
	"time"

	"waitfree"
	"waitfree/internal/faults"
)

// This file pins the result cache's core contract: a warm hit is
// byte-identical JSON to the cold run that stored it — for every kind,
// across process permutations, across cache reopens — and nothing
// partial, degraded, resumed, or corrupt is ever served as a verdict.

func openCache(t testing.TB, dir string) *waitfree.Cache {
	t.Helper()
	c, err := waitfree.OpenCache(waitfree.CacheOptions{Dir: dir})
	if err != nil {
		t.Fatalf("open cache: %v", err)
	}
	return c
}

func marshal(t testing.TB, rep *waitfree.Report) []byte {
	t.Helper()
	data, err := json.Marshal(rep)
	if err != nil {
		t.Fatalf("marshal report: %v", err)
	}
	return data
}

// parityRequests is one representative, fast request per kind. The
// factory builds a fresh Request each call so no state leaks between the
// cold and warm runs.
var parityRequests = []struct {
	name string
	mk   func() waitfree.Request
}{
	{"consensus", func() waitfree.Request {
		return waitfree.Request{
			Kind:           waitfree.KindConsensus,
			Implementation: waitfree.TAS2Consensus(),
		}
	}},
	{"bound", func() waitfree.Request {
		return waitfree.Request{
			Kind:           waitfree.KindBound,
			Implementation: waitfree.Queue2Consensus(),
		}
	}},
	{"elimination", func() waitfree.Request {
		return waitfree.Request{
			Kind:           waitfree.KindElimination,
			Implementation: waitfree.TAS2Consensus(),
		}
	}},
	{"classification", func() waitfree.Request {
		return waitfree.Request{Kind: waitfree.KindClassification}
	}},
	{"synthesis", func() waitfree.Request {
		return waitfree.Request{
			Kind: waitfree.KindSynthesis,
			Objects: []waitfree.SynthObject{
				{Name: "cas", Spec: waitfree.NewCompareSwap(2, 3), Init: 2},
			},
			Synthesis: waitfree.SynthOptions{Depth: 1, Symmetric: true, Budget: 5e7},
		}
	}},
}

// TestCacheParityAllKinds runs each kind cold (stores), warm from memory
// (hits), and warm from a reopened cache (disk hit) — all three must
// marshal to identical bytes.
func TestCacheParityAllKinds(t *testing.T) {
	for _, tc := range parityRequests {
		tc := tc
		t.Run(tc.name, func(t *testing.T) {
			t.Parallel()
			dir := t.TempDir()
			cache := openCache(t, dir)

			req := tc.mk()
			req.Cache = cache
			cold, err := waitfree.Check(context.Background(), req)
			if err != nil {
				t.Fatalf("cold: %v", err)
			}
			if cold.Cache == nil || cold.Cache.Hit || !cold.Cache.Stored {
				t.Fatalf("cold outcome: %+v", cold.Cache)
			}
			if cold.Elapsed != 0 {
				t.Error("cold report under an active cache has nonzero Elapsed; cold and warm runs cannot be byte-identical")
			}
			coldJSON := marshal(t, cold)

			warmReq := tc.mk()
			warmReq.Cache = cache
			warm, err := waitfree.Check(context.Background(), warmReq)
			if err != nil {
				t.Fatalf("warm: %v", err)
			}
			if warm.Cache == nil || !warm.Cache.Hit {
				t.Fatalf("warm outcome (want memory hit): %+v", warm.Cache)
			}
			if got := marshal(t, warm); !bytes.Equal(coldJSON, got) {
				t.Errorf("warm hit differs from cold run:\ncold: %s\nwarm: %s", coldJSON, got)
			}

			// A fresh Cache over the same directory has an empty memory
			// tier: this hit exercises the disk path.
			reopened := tc.mk()
			reopened.Cache = openCache(t, dir)
			disk, err := waitfree.Check(context.Background(), reopened)
			if err != nil {
				t.Fatalf("disk warm: %v", err)
			}
			if disk.Cache == nil || !disk.Cache.Hit {
				t.Fatalf("reopened outcome (want disk hit): %+v", disk.Cache)
			}
			if got := marshal(t, disk); !bytes.Equal(coldJSON, got) {
				t.Errorf("disk hit differs from cold run:\ncold: %s\ndisk: %s", coldJSON, got)
			}
			if disk.Kind != req.Kind || (cold.OK() != disk.OK()) {
				t.Errorf("rehydrated report disagrees: kind %s vs %s, OK %v vs %v",
					disk.Kind, req.Kind, disk.OK(), cold.OK())
			}
		})
	}
}

// TestCachePermutedImplementationHits checks the behavioral keying: a
// process permutation of a symmetric implementation is the same request,
// so it must be served from the entry its unpermuted twin stored.
func TestCachePermutedImplementationHits(t *testing.T) {
	cache := openCache(t, t.TempDir())
	opts := waitfree.ExploreOptions{Memoize: true}

	cold, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind:           waitfree.KindConsensus,
		Implementation: waitfree.CASConsensus(3),
		Explore:        opts,
		Cache:          cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if !cold.Cache.Stored {
		t.Fatalf("cold run not stored: %+v", cold.Cache)
	}

	perm := *waitfree.CASConsensus(3)
	perm.Machines = append(perm.Machines[1:len(perm.Machines):len(perm.Machines)], perm.Machines[0])
	warm, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind:           waitfree.KindConsensus,
		Implementation: &perm,
		Explore:        opts,
		Cache:          cache,
	})
	if err != nil {
		t.Fatal(err)
	}
	if warm.Cache == nil || !warm.Cache.Hit {
		t.Fatalf("permuted implementation missed the cache: %+v", warm.Cache)
	}
	if !bytes.Equal(marshal(t, cold), marshal(t, warm)) {
		t.Error("permuted hit is not byte-identical to the stored run")
	}
}

// TestCachePartialAndResumedBypass drives the three never-cache rules
// end to end: a partial run is not stored, a resumed run is uncacheable,
// and only the eventual complete fresh run populates the cache.
func TestCachePartialAndResumedBypass(t *testing.T) {
	cache := openCache(t, t.TempDir())
	mk := func() waitfree.Request {
		return waitfree.Request{
			Kind:           waitfree.KindConsensus,
			Implementation: waitfree.CASRegister3Consensus(),
			Explore:        waitfree.ExploreOptions{Memoize: true, Parallelism: 1},
			Cache:          cache,
		}
	}

	partial := mk()
	partial.Explore.MaxNodes = 500
	prep, err := waitfree.Check(context.Background(), partial)
	if err != nil {
		t.Fatalf("partial: %v", err)
	}
	if !prep.Consensus.Partial || prep.Checkpoint == nil {
		t.Fatalf("budgeted run did not degrade to partial: %+v", prep.Consensus)
	}
	if prep.Cache == nil || prep.Cache.Stored || prep.Cache.Hit {
		t.Fatalf("partial run touched the cache: %+v", prep.Cache)
	}

	resumed := mk()
	resumed.ResumeFrom = prep.Checkpoint
	rrep, err := waitfree.Check(context.Background(), resumed)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !rrep.OK() {
		t.Fatalf("resumed run did not complete: %+v", rrep.Consensus)
	}
	if rrep.Cache == nil || !rrep.Cache.Uncacheable || rrep.Cache.Stored || rrep.Cache.Hit {
		t.Fatalf("resumed run was not an uncacheable bypass: %+v", rrep.Cache)
	}

	// Neither of the above may have populated the entry: the fresh full
	// run must miss, then store, and only then do repeats hit.
	fresh, err := waitfree.Check(context.Background(), mk())
	if err != nil {
		t.Fatalf("fresh: %v", err)
	}
	if fresh.Cache.Hit || !fresh.Cache.Stored {
		t.Fatalf("fresh run found a phantom entry: %+v", fresh.Cache)
	}
	repeat, err := waitfree.Check(context.Background(), mk())
	if err != nil {
		t.Fatalf("repeat: %v", err)
	}
	if !repeat.Cache.Hit {
		t.Fatalf("repeat run missed: %+v", repeat.Cache)
	}
	if !bytes.Equal(marshal(t, fresh), marshal(t, repeat)) {
		t.Error("repeat hit is not byte-identical to the fresh run")
	}
}

// TestCacheMemoBudgetUncacheable: a bounded memo table can evict and
// degrade counters, so such runs bypass the cache entirely (keying
// refuses them) rather than risking a stored not-quite-exact report.
func TestCacheMemoBudgetUncacheable(t *testing.T) {
	rep, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind:           waitfree.KindConsensus,
		Implementation: waitfree.TAS2Consensus(),
		Explore:        waitfree.ExploreOptions{Memoize: true, MemoBudget: 8},
		Cache:          openCache(t, t.TempDir()),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Cache == nil || !rep.Cache.Uncacheable || rep.Cache.Stored || rep.Cache.Hit {
		t.Fatalf("MemoBudget run was not an uncacheable bypass: %+v", rep.Cache)
	}
}

// TestCacheCorruptedEntryIsMiss flips a byte in the stored file: the
// checksummed envelope detects it, the request re-runs fresh (a miss,
// never an error or a wrong verdict), and the entry heals.
func TestCacheCorruptedEntryIsMiss(t *testing.T) {
	dir := t.TempDir()
	mk := func() waitfree.Request {
		return waitfree.Request{
			Kind:           waitfree.KindConsensus,
			Implementation: waitfree.TAS2Consensus(),
		}
	}

	cold := mk()
	cold.Cache = openCache(t, dir)
	crep, err := waitfree.Check(context.Background(), cold)
	if err != nil {
		t.Fatal(err)
	}
	if !crep.Cache.Stored {
		t.Fatalf("cold run not stored: %+v", crep.Cache)
	}

	files, err := filepath.Glob(filepath.Join(dir, "*.wfres"))
	if err != nil || len(files) != 1 {
		t.Fatalf("want exactly one cache file, got %v (err %v)", files, err)
	}
	data, err := os.ReadFile(files[0])
	if err != nil {
		t.Fatal(err)
	}
	data[len(data)/2] ^= 0xff
	if err := os.WriteFile(files[0], data, 0o644); err != nil {
		t.Fatal(err)
	}

	// A fresh Cache (empty memory tier) must read the corrupt file, reject
	// it, and fall through to a fresh run that re-stores the entry.
	warm := mk()
	warm.Cache = openCache(t, dir)
	wrep, err := waitfree.Check(context.Background(), warm)
	if err != nil {
		t.Fatalf("corrupt entry surfaced as an error: %v", err)
	}
	if wrep.Cache.Hit {
		t.Fatalf("corrupt entry served as a hit: %+v", wrep.Cache)
	}
	if !wrep.Cache.Stored {
		t.Fatalf("healing store did not happen: %+v", wrep.Cache)
	}
	if !bytes.Equal(marshal(t, crep), marshal(t, wrep)) {
		t.Error("re-run after corruption differs from the original run")
	}
	healed := mk()
	healed.Cache = openCache(t, dir)
	hrep, err := waitfree.Check(context.Background(), healed)
	if err != nil {
		t.Fatal(err)
	}
	if !hrep.Cache.Hit {
		t.Fatalf("healed entry missed: %+v", hrep.Cache)
	}
}

// BenchmarkCheckCached measures warm hits on the memoized CAS(4)
// consensus check under the full crash-stop fault model (every process
// may crash — the paper's wait-freedom statement, Section 2.2) and
// reports the cold/warm speedup. The fault model is part of the content
// key, so the warm path pays the same key-derivation cost as any other
// request; it only changes how much exhaustive work the cold run — the
// kind of expensive conclusive verdict the cache exists to serve —
// amortizes away (the acceptance bar is >= 100x).
func BenchmarkCheckCached(b *testing.B) {
	cache := openCache(b, b.TempDir())
	mk := func() waitfree.Request {
		return waitfree.Request{
			Kind:           waitfree.KindConsensus,
			Implementation: waitfree.CASConsensus(4),
			Explore: waitfree.ExploreOptions{
				Memoize: true,
				Faults:  faults.Model{MaxCrashes: 4},
			},
			Cache: cache,
		}
	}
	coldStart := time.Now()
	cold, err := waitfree.Check(context.Background(), mk())
	coldDur := time.Since(coldStart)
	if err != nil || !cold.Cache.Stored {
		b.Fatalf("cold: err=%v outcome=%+v", err, cold.Cache)
	}

	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := waitfree.Check(context.Background(), mk())
		if err != nil || !rep.Cache.Hit {
			b.Fatalf("warm: err=%v outcome=%+v", err, rep.Cache)
		}
	}
	b.StopTimer()
	if b.N > 0 && b.Elapsed() > 0 {
		warm := b.Elapsed() / time.Duration(b.N)
		if warm > 0 {
			b.ReportMetric(float64(coldDur)/float64(warm), "cold/warm-x")
		}
	}
}
