package waitfree

import (
	"errors"
	"fmt"

	"waitfree/internal/consensus"
	"waitfree/internal/program"
	"waitfree/internal/synth"
	"waitfree/internal/types"
)

// This file is the named-protocol registry: the full consensus.* protocol
// library and the synthesis object sets as a first-class, enumerable
// surface. Implementations hold Go closures (Machine programs), so they
// cannot travel over a wire; a name plus a process count can. The CLIs
// (cmd/explore, cmd/eliminate, cmd/synthesize) and the waitfreed server's
// wire request schema all resolve protocols through this one registry
// instead of private name→constructor switches.

// ErrUnknownProtocol is the sentinel wrapped when a protocol or object-set
// name is not in the registry.
var ErrUnknownProtocol = errors.New("waitfree: unknown protocol")

// ProtocolInfo describes one named consensus protocol from the built-in
// library.
type ProtocolInfo struct {
	// Name is the registry key, stable across releases ("cas", "tas", ...).
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description"`
	// Procs is the fixed process count, or 0 for the scalable protocols
	// (cas, sticky, augqueue, fetchcons) whose Build honors a caller-chosen
	// count.
	Procs int `json:"procs,omitempty"`
	// RegisterFree reports that the protocol uses no register objects.
	RegisterFree bool `json:"register_free,omitempty"`
	// Eliminable reports that the protocol is a valid input to the Theorem
	// 5 register-elimination pipeline (KindElimination).
	Eliminable bool `json:"eliminable,omitempty"`
	// Substrate names the register-free protocol that realizes one-use
	// bits for this protocol's elimination via the Section 5.3 route; ""
	// means the deterministic route (Sections 4.2/4.3/5.2) applies.
	Substrate string `json:"substrate,omitempty"`

	build func(procs int) *program.Implementation
}

// Scalable reports whether Build honors a caller-chosen process count.
func (p ProtocolInfo) Scalable() bool { return p.Procs == 0 }

// Build constructs the protocol's implementation. For scalable protocols
// procs chooses the process count (0 = 2); for fixed protocols procs must
// be 0 or the protocol's own count.
func (p ProtocolInfo) Build(procs int) (*Implementation, error) {
	if p.build == nil {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProtocol, p.Name)
	}
	if !p.Scalable() {
		if procs != 0 && procs != p.Procs {
			return nil, fmt.Errorf("%w: protocol %q is fixed at %d processes (got %d)",
				ErrBadRequest, p.Name, p.Procs, procs)
		}
		return p.build(p.Procs), nil
	}
	if procs == 0 {
		procs = 2
	}
	if procs < 2 {
		return nil, fmt.Errorf("%w: protocol %q needs at least 2 processes (got %d)",
			ErrBadRequest, p.Name, procs)
	}
	return p.build(procs), nil
}

// protocolRegistry lists every protocol in its stable presentation order.
var protocolRegistry = []ProtocolInfo{
	{Name: "tas", Description: "2-process consensus from test-and-set + SRSW bits",
		Procs: 2, Eliminable: true,
		build: func(int) *program.Implementation { return consensus.TAS2() }},
	{Name: "queue", Description: "2-process consensus from a queue + SRSW bits",
		Procs: 2, Eliminable: true,
		build: func(int) *program.Implementation { return consensus.Queue2() }},
	{Name: "stack", Description: "2-process consensus from a stack + SRSW bits",
		Procs: 2, Eliminable: true,
		build: func(int) *program.Implementation { return consensus.Stack2() }},
	{Name: "faa", Description: "2-process consensus from fetch-and-add + SRSW bits",
		Procs: 2, Eliminable: true,
		build: func(int) *program.Implementation { return consensus.FAA2() }},
	{Name: "swap", Description: "2-process consensus from swap + SRSW bits",
		Procs: 2, Eliminable: true,
		build: func(int) *program.Implementation { return consensus.Swap2() }},
	{Name: "weakleader", Description: "2-process consensus from the nondeterministic weak-leader type + SRSW bits",
		Procs: 2,
		build: func(int) *program.Implementation { return consensus.WeakLeader2() }},
	{Name: "naive", Description: "deliberately incorrect 2-process register-only protocol",
		Procs: 2,
		build: func(int) *program.Implementation { return consensus.NaiveRegister2() }},
	{Name: "casregister3", Description: "3-process consensus from compare-and-swap + six SRSW announcement bits",
		Procs: 3,
		build: func(int) *program.Implementation { return consensus.CASRegister3() }},
	{Name: "noisysticky", Description: "register-free 2-process consensus from a nondeterministic noisy-sticky cell",
		Procs: 2, RegisterFree: true,
		build: func(int) *program.Implementation { return consensus.NoisySticky2() }},
	{Name: "noisysticky-r", Description: "register-using noisy-sticky 2-process consensus (Section 5.3 pipeline input)",
		Procs: 2, Eliminable: true, Substrate: "noisysticky",
		build: func(int) *program.Implementation { return consensus.NoisySticky2R() }},
	{Name: "cas", Description: "register-free n-process consensus from one compare-and-swap object",
		RegisterFree: true,
		build:        consensus.CAS},
	{Name: "sticky", Description: "register-free n-process consensus from one sticky cell",
		RegisterFree: true,
		build:        consensus.Sticky},
	{Name: "augqueue", Description: "register-free n-process consensus from one augmented (peekable) queue",
		RegisterFree: true,
		build:        consensus.AugQueue},
	{Name: "fetchcons", Description: "register-free n-process consensus from one fetch-and-cons object",
		RegisterFree: true,
		build:        consensus.FetchCons},
}

// Protocols lists the registry in its stable presentation order. The
// returned slice is a copy; callers may reorder it freely.
func Protocols() []ProtocolInfo {
	out := make([]ProtocolInfo, len(protocolRegistry))
	copy(out, protocolRegistry)
	return out
}

// LookupProtocol finds a registry entry by name.
func LookupProtocol(name string) (ProtocolInfo, bool) {
	for _, p := range protocolRegistry {
		if p.Name == name {
			return p, true
		}
	}
	return ProtocolInfo{}, false
}

// BuildProtocol resolves name and builds its implementation (see
// ProtocolInfo.Build for the procs contract). Unknown names wrap
// ErrUnknownProtocol.
func BuildProtocol(name string, procs int) (*Implementation, error) {
	p, ok := LookupProtocol(name)
	if !ok {
		return nil, fmt.Errorf("%w: %q", ErrUnknownProtocol, name)
	}
	return p.Build(procs)
}

// ObjectSetInfo describes one named synthesis object set: the shared
// objects a KindSynthesis search runs over.
type ObjectSetInfo struct {
	// Name is the registry key ("tas+bits", "sticky", ...).
	Name string `json:"name"`
	// Description is a one-line human summary.
	Description string `json:"description"`

	build func() []synth.Object
}

// Build constructs a fresh object slice (specs are shared, the slice is
// the caller's).
func (s ObjectSetInfo) Build() []SynthObject { return s.build() }

// objectSetRegistry lists the synthesis object sets in presentation order.
var objectSetRegistry = []ObjectSetInfo{
	{Name: "tas", Description: "one test-and-set object, no registers",
		build: func() []synth.Object {
			return []synth.Object{{Name: "tas", Spec: types.TestAndSet(2), Init: 0}}
		}},
	{Name: "tas+bits", Description: "one test-and-set object plus two announcement bits",
		build: func() []synth.Object {
			return []synth.Object{
				{Name: "tas", Spec: types.TestAndSet(2), Init: 0},
				{Name: "r0", Spec: types.Bit(2), Init: 0},
				{Name: "r1", Spec: types.Bit(2), Init: 0},
			}
		}},
	{Name: "cas", Description: "one compare-and-swap object",
		build: func() []synth.Object {
			return []synth.Object{{Name: "cas", Spec: types.CompareSwap(2, 3), Init: 2}}
		}},
	{Name: "sticky", Description: "one sticky cell",
		build: func() []synth.Object {
			return []synth.Object{{Name: "sticky", Spec: types.StickyCell(2, 2), Init: types.StickyUnset}}
		}},
	{Name: "register", Description: "one 4-valued register (no protocol exists)",
		build: func() []synth.Object {
			return []synth.Object{{Name: "r", Spec: types.Register(2, 4), Init: 0}}
		}},
	{Name: "onebits", Description: "two one-use bits",
		build: func() []synth.Object {
			return []synth.Object{
				{Name: "b0", Spec: types.OneUseBit(), Init: types.OneUseUnset},
				{Name: "b1", Spec: types.OneUseBit(), Init: types.OneUseUnset},
			}
		}},
}

// ObjectSets lists the synthesis object-set registry in its stable
// presentation order. The returned slice is a copy.
func ObjectSets() []ObjectSetInfo {
	out := make([]ObjectSetInfo, len(objectSetRegistry))
	copy(out, objectSetRegistry)
	return out
}

// LookupObjectSet finds an object-set entry by name.
func LookupObjectSet(name string) (ObjectSetInfo, bool) {
	for _, s := range objectSetRegistry {
		if s.Name == name {
			return s, true
		}
	}
	return ObjectSetInfo{}, false
}

// BuildObjectSet resolves name and builds its objects. Unknown names wrap
// ErrUnknownProtocol.
func BuildObjectSet(name string) ([]SynthObject, error) {
	s, ok := LookupObjectSet(name)
	if !ok {
		return nil, fmt.Errorf("%w: object set %q", ErrUnknownProtocol, name)
	}
	return s.Build(), nil
}
