package waitfree_test

import (
	"context"
	"encoding/json"
	"errors"
	"strings"
	"testing"
	"time"

	"waitfree"
)

// TestCheckConsensus covers the consensus pipeline of the unified API on a
// correct and an incorrect input, plus JSON round-trippability of the
// report union.
func TestCheckConsensus(t *testing.T) {
	rep, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind:           waitfree.KindConsensus,
		Implementation: waitfree.TAS2Consensus(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Kind != waitfree.KindConsensus || !rep.OK() || rep.Consensus == nil {
		t.Fatalf("bad report: %+v", rep)
	}
	if rep.Elapsed <= 0 {
		t.Error("report has no elapsed time")
	}
	assertJSON(t, rep, `"kind": "consensus"`, `"agreement": true`)

	bad, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind:           waitfree.KindConsensus,
		Implementation: waitfree.NaiveRegisterConsensus(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if bad.OK() || bad.Consensus.Violation == nil {
		t.Fatalf("naive protocol verified: %+v", bad.Consensus)
	}
	assertJSON(t, bad, `"violation"`, `"kind": "leaf-reject"`)
}

// TestCheckBound covers the Section 4.2 bound pipeline: same counters as
// the consensus check, but proposal values drawn from the target type.
func TestCheckBound(t *testing.T) {
	rep, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind:           waitfree.KindBound,
		Implementation: waitfree.Queue2Consensus(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() || rep.Consensus.Depth <= 0 {
		t.Fatalf("bad bound report: %+v", rep.Consensus)
	}
	assertJSON(t, rep, `"kind": "bound"`, `"depth"`)
}

// TestCheckElimination covers both elimination routes: the Section 5.2
// witness route and the Section 5.3 substrate route.
func TestCheckElimination(t *testing.T) {
	rep, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind:           waitfree.KindElimination,
		Implementation: waitfree.TAS2Consensus(),
	})
	if err != nil {
		t.Fatal(err)
	}
	e := rep.Elimination
	if !rep.OK() || e.RegistersEliminated == 0 || e.OutputName == "" {
		t.Fatalf("bad elimination report: %+v", e)
	}
	assertJSON(t, rep, `"kind": "elimination"`, `"registers_eliminated"`)

	via53, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind:           waitfree.KindElimination,
		Implementation: waitfree.NoisySticky2RConsensus(),
		Substrate:      waitfree.NoisySticky2Consensus(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if !via53.OK() || via53.Elimination.Pair != nil {
		t.Fatalf("bad 5.3 report: %+v", via53.Elimination)
	}
}

// TestCheckClassification covers the zoo pipeline.
func TestCheckClassification(t *testing.T) {
	rep, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind: waitfree.KindClassification,
	})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Classifications) == 0 {
		t.Fatal("empty classification report")
	}
	// The zoo holds unbounded types (inc-only) whose triviality searches
	// truncate: they classify as inconclusive, and OK() refuses to bless
	// the report — a bounded claim is not a verdict.
	inconclusive := 0
	for _, c := range rep.Classifications {
		if c.Inconclusive {
			inconclusive++
		}
	}
	if inconclusive == 0 {
		t.Error("no zoo entry marked inconclusive; expected the unbounded types to be")
	}
	if rep.OK() {
		t.Error("OK() = true on a report with inconclusive entries")
	}
	if !strings.Contains(rep.String(), "test-and-set") {
		t.Errorf("String() missing zoo entries:\n%s", rep.String())
	}
	if !strings.Contains(rep.String(), "inconclusive") {
		t.Errorf("String() does not surface inconclusive entries:\n%s", rep.String())
	}
	assertJSON(t, rep, `"kind": "classification"`, `"theorem5"`)
}

// TestCheckSynthesis covers the synthesis pipeline's three verdicts:
// found (with independent re-verification), impossible, and unknown.
func TestCheckSynthesis(t *testing.T) {
	found, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind: waitfree.KindSynthesis,
		Objects: []waitfree.SynthObject{
			{Name: "cas", Spec: waitfree.NewCompareSwap(2, 3), Init: 2},
		},
		Synthesis: waitfree.SynthOptions{Depth: 1, Symmetric: true, Budget: 5e7},
	})
	if err != nil {
		t.Fatal(err)
	}
	s := found.Synthesis
	if !s.Found() || s.Reverification == nil || !s.Reverification.OK() {
		t.Fatalf("bad synthesis report: %+v", s)
	}
	assertJSON(t, found, `"verdict": "found"`, `"reverification"`)

	// The h_1 separation: test-and-set alone, symmetric, depth 3 — a fast
	// exhaustive refutation (the loser can never learn the winner's value).
	impossible, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind: waitfree.KindSynthesis,
		Objects: []waitfree.SynthObject{
			{Name: "tas", Spec: waitfree.NewTestAndSet(2), Init: 0},
		},
		Synthesis: waitfree.SynthOptions{Depth: 3, Symmetric: true, Budget: 5e7},
	})
	if err != nil {
		t.Fatal(err)
	}
	if impossible.Synthesis.Verdict != "impossible" || !impossible.OK() {
		t.Fatalf("registers synthesized consensus: %+v", impossible.Synthesis)
	}

	unknown, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind: waitfree.KindSynthesis,
		Objects: []waitfree.SynthObject{
			{Name: "tas", Spec: waitfree.NewTestAndSet(2), Init: 0},
			{Name: "r0", Spec: waitfree.NewBit(2), Init: 0},
			{Name: "r1", Spec: waitfree.NewBit(2), Init: 0},
		},
		Synthesis: waitfree.SynthOptions{Depth: 3, Budget: 10},
	})
	if err != nil {
		t.Fatal(err)
	}
	if unknown.Synthesis.Verdict != "unknown" || unknown.OK() {
		t.Fatalf("budget exhaustion not reported: %+v", unknown.Synthesis)
	}
}

// TestCheckBadRequest pins the ErrBadRequest sentinel on every malformed
// request shape.
func TestCheckBadRequest(t *testing.T) {
	for _, req := range []waitfree.Request{
		{Kind: "nonsense"},
		{Kind: waitfree.KindConsensus},   // missing Implementation
		{Kind: waitfree.KindBound},       // missing Implementation
		{Kind: waitfree.KindElimination}, // missing Implementation
		{Kind: waitfree.KindSynthesis},   // missing Objects
	} {
		if _, err := waitfree.Check(context.Background(), req); !errors.Is(err, waitfree.ErrBadRequest) {
			t.Errorf("%+v: err = %v, want ErrBadRequest", req, err)
		}
	}
	// Bad explore options surface their own sentinel.
	_, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind:           waitfree.KindConsensus,
		Implementation: waitfree.TAS2Consensus(),
		Explore:        waitfree.ExploreOptions{MaxDepth: -1},
	})
	if !errors.Is(err, waitfree.ErrBadExploreOptions) {
		t.Errorf("err = %v, want ErrBadExploreOptions", err)
	}
}

// TestCheckCancellation checks that cancellation propagates through the
// unified API for each context-aware pipeline.
func TestCheckCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	reqs := []waitfree.Request{
		{Kind: waitfree.KindConsensus, Implementation: waitfree.CASRegister3Consensus()},
		{Kind: waitfree.KindBound, Implementation: waitfree.TAS2Consensus()},
		{Kind: waitfree.KindElimination, Implementation: waitfree.TAS2Consensus()},
		{Kind: waitfree.KindClassification},
	}
	for _, req := range reqs {
		if _, err := waitfree.Check(ctx, req); !errors.Is(err, context.Canceled) {
			t.Errorf("%s: err = %v, want context.Canceled", req.Kind, err)
		}
	}
	// Deadline expiry mid-run degrades KindConsensus to a partial-coverage
	// report (nil error) with the resumable checkpoint lifted to the top
	// level — the durable-runs contract, not the Ctrl-C contract.
	dctx, dcancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer dcancel()
	rep, err := waitfree.Check(dctx, waitfree.Request{
		Kind:           waitfree.KindConsensus,
		Implementation: waitfree.CASRegister3Consensus(),
	})
	if err != nil {
		t.Fatalf("deadline: err = %v, want nil (partial report)", err)
	}
	if rep.Consensus == nil || !rep.Consensus.Partial || rep.Consensus.Coverage == nil {
		t.Fatalf("deadline: report not partial: %+v", rep.Consensus)
	}
	if rep.OK() {
		t.Error("partial report claims OK")
	}
	if rep.Checkpoint == nil {
		t.Error("partial report's checkpoint was not lifted to the Report")
	}
}

// TestCheckPartialBudget drives the soft node budget through the unified
// API: KindConsensus degrades to a resumable partial report, while
// KindBound — whose bounds only exist for fully covered inputs — reports
// the stop as inconclusive, not as a verification failure.
func TestCheckPartialBudget(t *testing.T) {
	req := waitfree.Request{
		Kind:           waitfree.KindConsensus,
		Implementation: waitfree.CASRegister3Consensus(),
		Explore:        waitfree.ExploreOptions{Memoize: true, Parallelism: 1, MaxNodes: 500},
	}
	rep, err := waitfree.Check(context.Background(), req)
	if err != nil {
		t.Fatalf("consensus: err = %v, want nil", err)
	}
	if !rep.Consensus.Partial || rep.Checkpoint == nil || rep.OK() {
		t.Fatalf("consensus: want partial report with checkpoint, got %+v", rep.Consensus)
	}

	// Resume the same request from the partial checkpoint, without the
	// budget: the completed report must verify.
	req.Explore.MaxNodes = 0
	req.ResumeFrom = rep.Checkpoint
	full, err := waitfree.Check(context.Background(), req)
	if err != nil {
		t.Fatalf("resume: %v", err)
	}
	if !full.OK() || full.Checkpoint != nil || full.Consensus.Partial {
		t.Fatalf("resume: want complete verified report, got %s", full.Consensus.Summary())
	}

	bound := waitfree.Request{
		Kind:           waitfree.KindBound,
		Implementation: waitfree.CASRegister3Consensus(),
		Explore:        waitfree.ExploreOptions{Memoize: true, Parallelism: 1, MaxNodes: 500},
	}
	brep, err := waitfree.Check(context.Background(), bound)
	if !errors.Is(err, waitfree.ErrInconclusive) {
		t.Fatalf("bound: err = %v, want ErrInconclusive", err)
	}
	if errors.Is(err, waitfree.ErrNotWaitFree) {
		t.Error("bound: partial coverage misreported as a failed verification")
	}
	if brep == nil || brep.Checkpoint == nil {
		t.Error("bound: inconclusive stop lost the resumable checkpoint")
	}
}

// assertJSON marshals v and checks the rendered document contains every
// want fragment — the stability contract of the -json CLI output.
func assertJSON(t *testing.T, v any, wants ...string) {
	t.Helper()
	data, err := json.MarshalIndent(v, "", "  ")
	if err != nil {
		t.Fatalf("marshal: %v", err)
	}
	for _, w := range wants {
		if !strings.Contains(string(data), w) {
			t.Errorf("JSON missing %q:\n%s", w, data)
		}
	}
}
