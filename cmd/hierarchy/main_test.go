package main

import "testing"

func TestRunTable(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunWitnesses(t *testing.T) {
	if err := run([]string{"-witnesses"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAudit(t *testing.T) {
	if err := run([]string{"-audit"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}

func TestRunSharedFlags(t *testing.T) {
	if err := run([]string{"-json", "-parallel", "2"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-timeout", "1ns"}); err == nil {
		t.Fatal("expired deadline not reported")
	}
}
