package main

import "testing"

func TestRunTable(t *testing.T) {
	if err := run(nil); err != nil {
		t.Fatal(err)
	}
}

func TestRunWitnesses(t *testing.T) {
	if err := run([]string{"-witnesses"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunAudit(t *testing.T) {
	if err := run([]string{"-audit"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBadFlag(t *testing.T) {
	if err := run([]string{"-nope"}); err == nil {
		t.Fatal("unknown flag accepted")
	}
}
