// Command hierarchy classifies the built-in type zoo: obliviousness,
// determinism, triviality, the Section 5.1/5.2 witnesses, literature
// consensus numbers, and what Theorem 5 of Bazzi-Neiger-Peterson (PODC
// 1994) concludes about h_m versus h_m^r for each type.
//
// Usage:
//
//	hierarchy [-witnesses] [-parallel N] [-timeout D] [-progress D] [-json]
//	          [-symmetry MODE] [-max-nodes N] [-stall-after D] [-cache DIR]
//
// The classification explorations honor the long-run guards: -max-nodes,
// -timeout, and -stall-after stop an oversized exploration early instead
// of running unbounded. With -audit, specs whose state spaces exceed the
// lint budget are reported as inconclusive rather than silently passed.
// Entries whose own witness searches truncate are likewise marked
// inconclusive ("?" in the TRIVIAL column). -cache DIR serves a repeat
// classification from the content-addressed result cache with
// byte-identical JSON.
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"text/tabwriter"

	"waitfree"
	"waitfree/internal/cliutil"
	"waitfree/internal/hierarchy"
	"waitfree/internal/types"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "hierarchy:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("hierarchy", flag.ContinueOnError)
	witnesses := fs.Bool("witnesses", false, "print the full Section 5.1/5.2 witnesses per type")
	audit := fs.Bool("audit", false, "lint every zoo spec: declared flags vs computed behavior")
	common := cliutil.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	if *audit {
		failures, inconclusive := 0, 0
		for _, e := range hierarchy.Zoo() {
			err := types.Audit(e.Spec, e.Inits[0], 64)
			status := "ok"
			switch {
			case errors.Is(err, types.ErrAuditInconclusive):
				// Not a lie, just a spec too large for the lint's budget:
				// report it, but do not condemn the zoo over it.
				status = err.Error()
				inconclusive++
			case err != nil:
				status = err.Error()
				failures++
			}
			fmt.Printf("  %-18s %s\n", e.Spec.Name, status)
		}
		if failures > 0 {
			return fmt.Errorf("%d specs failed the audit", failures)
		}
		if inconclusive > 0 {
			fmt.Printf("all audited zoo specs pass (%d inconclusive: state space over budget)\n", inconclusive)
		} else {
			fmt.Println("all zoo specs pass the audit")
		}
		return nil
	}

	exOpts, err := common.Supervise(common.Options(waitfree.ExploreOptions{}))
	if err != nil {
		return err
	}
	cache, err := common.OpenCache()
	if err != nil {
		return err
	}
	ctx, cancel := common.Context()
	defer cancel()
	rep, err := waitfree.Check(ctx, waitfree.Request{
		Kind:    waitfree.KindClassification,
		Explore: exOpts,
		Cache:   cache,
	})
	if rep != nil {
		cliutil.LogCacheOutcome(rep.Cache)
	}
	if err != nil {
		return err
	}
	if common.JSON {
		return cliutil.WriteJSON(os.Stdout, rep)
	}

	w := tabwriter.NewWriter(os.Stdout, 2, 4, 2, ' ', 0)
	fmt.Fprintln(w, "TYPE\tOBLIVIOUS\tDETERMINISTIC\tTRIVIAL\tCONSENSUS#\th_m\tTHEOREM 5")
	for _, c := range rep.Classifications {
		trivial := fmt.Sprintf("%v", c.Trivial)
		if c.Inconclusive {
			trivial += "?" // truncated witness search: bounded claim, not a verdict
		}
		fmt.Fprintf(w, "%s\t%v\t%v\t%s\t%s\t%s\t%s\n",
			c.Name, c.Oblivious, c.Deterministic, trivial, c.Consensus, c.HM, c.Theorem5)
	}
	if err := w.Flush(); err != nil {
		return err
	}

	if *witnesses {
		fmt.Println()
		fmt.Println("Witnesses (how each non-trivial deterministic type implements a one-use bit):")
		for _, c := range rep.Classifications {
			if c.Pair == nil {
				continue
			}
			fmt.Printf("  %-18s %v\n", c.Name+":", c.Pair)
			if c.ObliviousWitness != nil {
				fmt.Printf("  %-18s %v\n", "", "Section 5.1 form: "+c.ObliviousWitness.String())
			}
		}
	}
	return nil
}
