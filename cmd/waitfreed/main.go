// Command waitfreed is the verification daemon: it serves the v1 HTTP
// API (POST /v1/jobs, GET /v1/jobs/{id}, GET /v1/jobs/{id}/events,
// DELETE /v1/jobs/{id}, GET /v1/healthz, GET /v1/stats,
// GET /v1/protocols), runs submitted jobs on a bounded worker pool with
// durable checkpointed state, and fronts them with the content-addressed
// result cache.
//
//	waitfreed -listen :8080 -data /var/lib/waitfreed -cache /var/cache/waitfreed
//
// SIGTERM/SIGINT drain gracefully: running jobs checkpoint and return to
// the durable queue, and the next start resumes them where they stopped.
//
// See DESIGN.md section 11 for the wire schema and the job lifecycle.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"waitfree"
	"waitfree/internal/fsx"
	"waitfree/internal/server"
)

func main() {
	listen := flag.String("listen", ":8080", "HTTP listen address")
	dataDir := flag.String("data", "", "durable job-state directory (empty: jobs do not survive restarts)")
	cacheDir := flag.String("cache", "", "result cache directory (empty: no cache)")
	cacheMem := flag.Int64("cache-mem", 0, "result cache memory budget in bytes (0: default)")
	workers := flag.Int("workers", 0, "verification worker pool size (0: GOMAXPROCS)")
	queueDepth := flag.Int("queue", 0, "admission queue depth (0: 256)")
	checkpointEvery := flag.Duration("checkpoint-every", 2*time.Second, "durable checkpoint autosave interval for resumable jobs")
	progress := flag.Duration("progress", 250*time.Millisecond, "SSE progress stats interval")
	drainTimeout := flag.Duration("drain-timeout", 30*time.Second, "graceful shutdown budget")
	maxTimeout := flag.Duration("max-timeout", 0, "cap on the per-job deadline clients may request via timeout_ms (0: no cap)")
	flag.Parse()

	logger := log.New(os.Stderr, "waitfreed: ", log.LstdFlags)
	if err := run(logger, *listen, *dataDir, *cacheDir, *cacheMem, *workers,
		*queueDepth, *checkpointEvery, *progress, *drainTimeout, *maxTimeout); err != nil {
		logger.Fatal(err)
	}
}

func run(logger *log.Logger, listen, dataDir, cacheDir string, cacheMem int64, workers, queueDepth int,
	checkpointEvery, progress, drainTimeout, maxTimeout time.Duration) error {
	var cache *waitfree.Cache
	if cacheDir != "" {
		c, err := waitfree.OpenCache(waitfree.CacheOptions{Dir: cacheDir, MemoryBudget: cacheMem})
		if err != nil {
			return fmt.Errorf("open cache: %w", err)
		}
		cache = c
	}
	// WAITFREED_FAULT_FS scripts storage faults into the job store — the
	// chaos CI leg uses it to prove the daemon degrades instead of
	// wedging on a sick disk. Testing only: never set it in production.
	var faultFS fsx.FS
	if spec := os.Getenv("WAITFREED_FAULT_FS"); spec != "" {
		rules, err := fsx.ParseRules(spec)
		if err != nil {
			return fmt.Errorf("WAITFREED_FAULT_FS: %w", err)
		}
		logger.Printf("WAITFREED_FAULT_FS=%q: injecting storage faults (testing only)", spec)
		faultFS = fsx.NewFaultFS(nil, 1, rules...)
	}
	srv, err := server.New(server.Options{
		Workers:          workers,
		QueueDepth:       queueDepth,
		DataDir:          dataDir,
		FS:               faultFS,
		Cache:            cache,
		ProgressInterval: progress,
		CheckpointEvery:  checkpointEvery,
		MaxTimeout:       maxTimeout,
		Logf:             logger.Printf,
	})
	if err != nil {
		return err
	}
	srv.Start()

	hs := &http.Server{Addr: listen, Handler: srv.Handler()}
	errc := make(chan error, 1)
	go func() {
		logger.Printf("listening on %s (api %s)", listen, server.APIVersion)
		errc <- hs.ListenAndServe()
	}()

	sigc := make(chan os.Signal, 1)
	signal.Notify(sigc, syscall.SIGTERM, syscall.SIGINT)
	select {
	case err := <-errc:
		return err
	case sig := <-sigc:
		logger.Printf("%v: draining (budget %v)", sig, drainTimeout)
	}

	ctx, cancel := context.WithTimeout(context.Background(), drainTimeout)
	defer cancel()
	// Drain first so running jobs checkpoint and re-queue durably, then
	// close the listener; in-flight SSE streams end with the drain.
	if err := srv.Drain(ctx); err != nil {
		logger.Printf("drain: %v", err)
	}
	if err := hs.Shutdown(ctx); err != nil {
		hs.Close()
		if !errors.Is(err, context.DeadlineExceeded) {
			return fmt.Errorf("shutdown: %w", err)
		}
	}
	logger.Printf("drained")
	return nil
}
