// Command synthesize searches for 2-process consensus protocols over a
// chosen object set within an access bound — or proves none exists — and
// prints any protocol found, after independently re-verifying it with the
// execution-tree explorer.
//
// Usage:
//
//	synthesize [-objects tas|tas+bits|cas|sticky|register|onebits]
//	           [-depth N] [-symmetric] [-budget N]
//	           [-parallel N] [-timeout D] [-progress D] [-json]
//	           [-symmetry MODE] [-max-nodes N] [-stall-after D] [-cache DIR]
//
// The re-verification exploration honors the long-run guards: -max-nodes,
// -timeout, and -stall-after stop an oversized re-verification with an
// "inconclusive" error instead of running unbounded. -cache DIR serves a
// repeat search from the content-addressed result cache with
// byte-identical JSON.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"waitfree"
	"waitfree/internal/cliutil"
)

// objectSetNames renders the registry's object-set names for flag help
// and errors.
func objectSetNames() string {
	var names []string
	for _, s := range waitfree.ObjectSets() {
		names = append(names, s.Name)
	}
	return strings.Join(names, ", ")
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "synthesize:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("synthesize", flag.ContinueOnError)
	setName := fs.String("objects", "tas+bits", "object set: "+objectSetNames())
	depth := fs.Int("depth", 3, "maximum object accesses per process")
	symmetric := fs.Bool("symmetric", false, "search symmetric strategies only (faster, weaker negatives)")
	budget := fs.Int64("budget", 5e7, "assignment budget")
	common := cliutil.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	objects, err := waitfree.BuildObjectSet(*setName)
	if err != nil {
		return fmt.Errorf("unknown object set %q (have %s)", *setName, objectSetNames())
	}

	ctx, cancel := common.Context()
	defer cancel()
	if !common.JSON {
		fmt.Printf("searching for a 2-process consensus protocol over %q (depth <= %d, symmetric=%v)\n",
			*setName, *depth, *symmetric)
	}
	exOpts, err := common.Supervise(common.Options(waitfree.ExploreOptions{}))
	if err != nil {
		return err
	}
	cache, err := common.OpenCache()
	if err != nil {
		return err
	}
	rep, err := waitfree.Check(ctx, waitfree.Request{
		Kind:      waitfree.KindSynthesis,
		Objects:   objects,
		Synthesis: waitfree.SynthOptions{Depth: *depth, Symmetric: *symmetric, Budget: *budget},
		Explore:   exOpts,
		Cache:     cache,
	})
	if rep != nil {
		cliutil.LogCacheOutcome(rep.Cache)
	}
	if err != nil {
		return err
	}
	if common.JSON {
		return cliutil.WriteJSON(os.Stdout, rep)
	}

	s := rep.Synthesis
	switch s.Verdict {
	case "impossible":
		fmt.Printf("NO PROTOCOL exists within the bound (exhausted after %d assignments, %d configurations)\n",
			s.Assignments, s.Configs)
	case "unknown":
		fmt.Printf("verdict UNKNOWN: budget exhausted (%d assignments)\n", s.Assignments)
	default:
		fmt.Printf("protocol FOUND after %d assignments, %d configurations:\n\n%s\n",
			s.Assignments, s.Configs, s.Strategy)
		fmt.Printf("independent re-verification: %s\n", s.Reverification.Summary())
	}
	return nil
}
