// Command synthesize searches for 2-process consensus protocols over a
// chosen object set within an access bound — or proves none exists — and
// prints any protocol found, after independently re-verifying it with the
// execution-tree explorer.
//
// Usage:
//
//	synthesize [-objects tas|tas+bits|cas|sticky|register|onebits]
//	           [-depth N] [-symmetric] [-budget N]
//	           [-parallel N] [-timeout D] [-progress D] [-json]
//	           [-symmetry MODE] [-max-nodes N] [-stall-after D] [-cache DIR]
//
// The re-verification exploration honors the long-run guards: -max-nodes,
// -timeout, and -stall-after stop an oversized re-verification with an
// "inconclusive" error instead of running unbounded. -cache DIR serves a
// repeat search from the content-addressed result cache with
// byte-identical JSON.
package main

import (
	"flag"
	"fmt"
	"os"

	"waitfree"
	"waitfree/internal/cliutil"
	"waitfree/internal/synth"
	"waitfree/internal/types"
)

var objectSets = map[string]func() []synth.Object{
	"tas": func() []synth.Object {
		return []synth.Object{{Name: "tas", Spec: types.TestAndSet(2), Init: 0}}
	},
	"tas+bits": func() []synth.Object {
		return []synth.Object{
			{Name: "tas", Spec: types.TestAndSet(2), Init: 0},
			{Name: "r0", Spec: types.Bit(2), Init: 0},
			{Name: "r1", Spec: types.Bit(2), Init: 0},
		}
	},
	"cas": func() []synth.Object {
		return []synth.Object{{Name: "cas", Spec: types.CompareSwap(2, 3), Init: 2}}
	},
	"sticky": func() []synth.Object {
		return []synth.Object{{Name: "sticky", Spec: types.StickyCell(2, 2), Init: types.StickyUnset}}
	},
	"register": func() []synth.Object {
		return []synth.Object{{Name: "r", Spec: types.Register(2, 4), Init: 0}}
	},
	"onebits": func() []synth.Object {
		return []synth.Object{
			{Name: "b0", Spec: types.OneUseBit(), Init: types.OneUseUnset},
			{Name: "b1", Spec: types.OneUseBit(), Init: types.OneUseUnset},
		}
	},
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "synthesize:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("synthesize", flag.ContinueOnError)
	setName := fs.String("objects", "tas+bits", "object set: tas, tas+bits, cas, sticky, register, onebits")
	depth := fs.Int("depth", 3, "maximum object accesses per process")
	symmetric := fs.Bool("symmetric", false, "search symmetric strategies only (faster, weaker negatives)")
	budget := fs.Int64("budget", 5e7, "assignment budget")
	common := cliutil.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}
	mk, ok := objectSets[*setName]
	if !ok {
		return fmt.Errorf("unknown object set %q", *setName)
	}

	ctx, cancel := common.Context()
	defer cancel()
	if !common.JSON {
		fmt.Printf("searching for a 2-process consensus protocol over %q (depth <= %d, symmetric=%v)\n",
			*setName, *depth, *symmetric)
	}
	exOpts, err := common.Supervise(common.Options(waitfree.ExploreOptions{}))
	if err != nil {
		return err
	}
	cache, err := common.OpenCache()
	if err != nil {
		return err
	}
	rep, err := waitfree.Check(ctx, waitfree.Request{
		Kind:      waitfree.KindSynthesis,
		Objects:   mk(),
		Synthesis: waitfree.SynthOptions{Depth: *depth, Symmetric: *symmetric, Budget: *budget},
		Explore:   exOpts,
		Cache:     cache,
	})
	if rep != nil {
		cliutil.LogCacheOutcome(rep.Cache)
	}
	if err != nil {
		return err
	}
	if common.JSON {
		return cliutil.WriteJSON(os.Stdout, rep)
	}

	s := rep.Synthesis
	switch s.Verdict {
	case "impossible":
		fmt.Printf("NO PROTOCOL exists within the bound (exhausted after %d assignments, %d configurations)\n",
			s.Assignments, s.Configs)
	case "unknown":
		fmt.Printf("verdict UNKNOWN: budget exhausted (%d assignments)\n", s.Assignments)
	default:
		fmt.Printf("protocol FOUND after %d assignments, %d configurations:\n\n%s\n",
			s.Assignments, s.Configs, s.Strategy)
		fmt.Printf("independent re-verification: %s\n", s.Reverification.Summary())
	}
	return nil
}
