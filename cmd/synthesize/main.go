// Command synthesize searches for 2-process consensus protocols over a
// chosen object set within an access bound — or proves none exists — and
// prints any protocol found, after independently re-verifying it with the
// execution-tree explorer.
//
// Usage:
//
//	synthesize [-objects tas|tas+bits|cas|sticky|register|onebits] [-depth N] [-symmetric]
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"

	"waitfree/internal/explore"
	"waitfree/internal/synth"
	"waitfree/internal/types"
)

var objectSets = map[string]func() []synth.Object{
	"tas": func() []synth.Object {
		return []synth.Object{{Name: "tas", Spec: types.TestAndSet(2), Init: 0}}
	},
	"tas+bits": func() []synth.Object {
		return []synth.Object{
			{Name: "tas", Spec: types.TestAndSet(2), Init: 0},
			{Name: "r0", Spec: types.Bit(2), Init: 0},
			{Name: "r1", Spec: types.Bit(2), Init: 0},
		}
	},
	"cas": func() []synth.Object {
		return []synth.Object{{Name: "cas", Spec: types.CompareSwap(2, 3), Init: 2}}
	},
	"sticky": func() []synth.Object {
		return []synth.Object{{Name: "sticky", Spec: types.StickyCell(2, 2), Init: types.StickyUnset}}
	},
	"register": func() []synth.Object {
		return []synth.Object{{Name: "r", Spec: types.Register(2, 4), Init: 0}}
	},
	"onebits": func() []synth.Object {
		return []synth.Object{
			{Name: "b0", Spec: types.OneUseBit(), Init: types.OneUseUnset},
			{Name: "b1", Spec: types.OneUseBit(), Init: types.OneUseUnset},
		}
	},
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "synthesize:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("synthesize", flag.ContinueOnError)
	setName := fs.String("objects", "tas+bits", "object set: tas, tas+bits, cas, sticky, register, onebits")
	depth := fs.Int("depth", 3, "maximum object accesses per process")
	symmetric := fs.Bool("symmetric", false, "search symmetric strategies only (faster, weaker negatives)")
	budget := fs.Int64("budget", 5e7, "assignment budget")
	if err := fs.Parse(args); err != nil {
		return err
	}
	mk, ok := objectSets[*setName]
	if !ok {
		return fmt.Errorf("unknown object set %q", *setName)
	}
	objects := mk()

	fmt.Printf("searching for a 2-process consensus protocol over %q (depth <= %d, symmetric=%v)\n",
		*setName, *depth, *symmetric)
	st, stats, err := synth.Search(objects, synth.Options{
		Depth: *depth, Symmetric: *symmetric, Budget: *budget,
	})
	switch {
	case errors.Is(err, synth.ErrNoProtocol):
		fmt.Printf("NO PROTOCOL exists within the bound (exhausted after %d assignments, %d configurations)\n",
			stats.Assignments, stats.Configs)
		return nil
	case errors.Is(err, synth.ErrBudget):
		fmt.Printf("verdict UNKNOWN: budget exhausted (%d assignments)\n", stats.Assignments)
		return nil
	case err != nil:
		return err
	}

	fmt.Printf("protocol FOUND after %d assignments, %d configurations:\n\n%s\n",
		stats.Assignments, stats.Configs, st.Format(objects))
	im := synth.Implementation("synthesized", objects, st, synth.Options{Depth: *depth, Symmetric: *symmetric, Budget: *budget})
	report, err := explore.Consensus(im, explore.Options{})
	if err != nil {
		return err
	}
	fmt.Printf("independent re-verification: %s\n", report.Summary())
	if !report.OK() {
		return fmt.Errorf("synthesized protocol failed re-verification")
	}
	return nil
}
