package main

import "testing"

func TestRunFindsProtocol(t *testing.T) {
	if err := run([]string{"-objects", "cas", "-depth", "1", "-symmetric"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-objects", "sticky", "-depth", "2", "-symmetric"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunRefutes(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive search")
	}
	if err := run([]string{"-objects", "tas", "-depth", "3"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunBudget(t *testing.T) {
	if err := run([]string{"-objects", "tas+bits", "-depth", "3", "-budget", "100"}); err != nil {
		t.Fatal(err) // budget exhaustion is reported, not an error
	}
}

func TestRunUnknownSet(t *testing.T) {
	if err := run([]string{"-objects", "ghost"}); err == nil {
		t.Fatal("unknown object set accepted")
	}
}

func TestRunSharedFlags(t *testing.T) {
	if err := run([]string{"-objects", "cas", "-depth", "1", "-symmetric", "-json"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-objects", "tas", "-depth", "3", "-timeout", "1ns"}); err == nil {
		t.Fatal("expired deadline not reported")
	}
}
