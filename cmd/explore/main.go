// Command explore model-checks one of the built-in consensus protocols:
// it enumerates every execution tree (one per proposal vector, as in
// Section 4.2 of Bazzi-Neiger-Peterson), checks agreement, validity, and
// wait-freedom, and prints the tree statistics and per-object access
// bounds.
//
// Usage:
//
//	explore [-protocol NAME] [-procs N] [-memoize] [-parallel N]
//	        [-timeout D] [-progress D] [-json] [-symmetry MODE]
//	        [-faults] [-max-crashes N] [-fault-mode MODE]
//	        [-checkpoint FILE] [-checkpoint-every D]
//	        [-stall-after D] [-max-nodes N] [-cache DIR]
//
// With -faults the explorer additionally enumerates every crash schedule
// (up to -max-crashes per execution) and checks that the survivors still
// agree on a valid value. With -checkpoint a cancelled run (Ctrl-C) or a
// run stopped early (-timeout, -max-nodes, -stall-after) writes its
// resumable state to FILE; rerunning the same command picks up where it
// left off. -checkpoint-every additionally rewrites FILE durably
// (checksummed, atomic-rename) at that interval while the run is in
// flight, so even a SIGKILLed run loses at most one interval of work; a
// corrupted FILE is detected on load and its longest valid prefix is
// resumed. -timeout and -max-nodes stop an oversized run with a
// partial-coverage report instead of an error dump; -stall-after flags a
// worker that stops making progress (a wedged spec) with the exact
// configuration it was stuck on. -symmetry (off, auto, require;
// default auto) explores one execution tree per process-permutation
// orbit when the protocol is process-symmetric — the report is identical,
// only the work shrinks. -cache DIR serves repeat (and process-permuted)
// requests from the content-addressed result cache with byte-identical
// JSON, storing fresh conclusive verdicts on the way out; resumed and
// partial runs bypass it.
//
// Protocols come from the waitfree.Protocols registry: tas, queue, stack,
// faa, swap, weakleader, naive (incorrect, registers only), casregister3,
// noisysticky, noisysticky-r, and the register-free
// cas/sticky/augqueue/fetchcons (which honor -procs).
package main

import (
	"errors"
	"flag"
	"fmt"
	"os"
	"strings"

	"waitfree"
	"waitfree/internal/cliutil"
	"waitfree/internal/explore"
	"waitfree/internal/types"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "explore:", err)
		os.Exit(1)
	}
}

// protocolNames renders the registry's names for flag help and errors.
func protocolNames() string {
	var names []string
	for _, p := range waitfree.Protocols() {
		names = append(names, p.Name)
	}
	return strings.Join(names, ", ")
}

func run(args []string) error {
	fs := flag.NewFlagSet("explore", flag.ContinueOnError)
	name := fs.String("protocol", "tas", "protocol to check: "+protocolNames())
	procs := fs.Int("procs", 2, "process count for the scalable protocols (cas, sticky, augqueue, fetchcons)")
	memoize := fs.Bool("memoize", false, "memoize configurations")
	valency := fs.Bool("valency", false, "run the FLP/Herlihy valency analysis on mixed proposals")
	dot := fs.Bool("dot", false, "print the mixed-proposal execution tree as Graphviz DOT and exit")
	common := cliutil.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	info, ok := waitfree.LookupProtocol(*name)
	if !ok {
		return fmt.Errorf("unknown protocol %q (have %s)", *name, protocolNames())
	}
	// -procs only steers the scalable protocols; for fixed-size ones it is
	// ignored, as it always has been (the default of 2 must not reject
	// casregister3).
	procsArg := 0
	if info.Scalable() {
		procsArg = *procs
	}
	im, err := info.Build(procsArg)
	if err != nil {
		return err
	}

	if *dot {
		scripts := make([][]types.Invocation, im.Procs)
		for p := range scripts {
			scripts[p] = []types.Invocation{types.Propose(p % 2)}
		}
		out, err := explore.Dot(im, scripts, explore.Options{}, 4000)
		if err != nil {
			return err
		}
		fmt.Print(out)
		return nil
	}

	resume, err := common.LoadCheckpoint()
	if err != nil {
		// A corrupt checkpoint file (torn write, truncation, bit rot) may
		// still carry a verified prefix of finished trees: resume from it
		// rather than discarding everything the dead run had saved.
		var ce *waitfree.CorruptCheckpointError
		if errors.As(err, &ce) && ce.Salvaged != nil && len(ce.Salvaged.Trees) > 0 {
			fmt.Fprintf(os.Stderr, "explore: %v\nexplore: resuming from the salvaged prefix (%d trees)\n",
				err, len(ce.Salvaged.Trees))
			resume = ce.Salvaged
		} else {
			return err
		}
	}
	if resume != nil {
		fmt.Fprintf(os.Stderr, "explore: resuming from %s (%s)\n", common.Checkpoint, resume)
	}

	exOpts, err := common.Supervise(common.Options(explore.Options{Memoize: *memoize}))
	if err != nil {
		return err
	}
	cache, err := common.OpenCache()
	if err != nil {
		return err
	}
	ctx, cancel := common.Context()
	defer cancel()
	rep, err := waitfree.Check(ctx, waitfree.Request{
		Kind:           waitfree.KindConsensus,
		Implementation: im,
		Explore:        exOpts,
		ResumeFrom:     resume,
		Cache:          cache,
	})
	if rep != nil {
		cliutil.LogCacheOutcome(rep.Cache)
	}
	if err != nil {
		if rep != nil && rep.Checkpoint != nil && common.Checkpoint != "" {
			if serr := common.SaveCheckpoint(rep.Checkpoint); serr != nil {
				fmt.Fprintln(os.Stderr, "explore:", serr)
			} else {
				fmt.Fprintf(os.Stderr, "explore: interrupted; %s saved to %s — rerun the same command to resume\n",
					rep.Checkpoint, common.Checkpoint)
			}
		}
		return err
	}
	if rep.Consensus != nil && rep.Consensus.Partial {
		// The run stopped early (-timeout, -max-nodes, -stall-after) with
		// partial coverage: print what WAS covered, keep the resumable
		// state, and exit nonzero — partial coverage is not a verdict.
		if common.JSON {
			if werr := cliutil.WriteJSON(os.Stdout, rep); werr != nil {
				return werr
			}
		} else {
			fmt.Print(rep.String())
		}
		if common.Checkpoint != "" {
			if serr := common.SaveCheckpoint(rep.Checkpoint); serr != nil {
				fmt.Fprintln(os.Stderr, "explore:", serr)
			} else {
				fmt.Fprintf(os.Stderr, "explore: %s saved to %s — rerun the same command to resume\n",
					rep.Checkpoint, common.Checkpoint)
			}
		}
		return fmt.Errorf("stopped with partial coverage (%s)", rep.Consensus.Coverage.Reason)
	}
	if common.Checkpoint != "" {
		// The run completed: a stale checkpoint file would only confuse the
		// next invocation.
		os.Remove(common.Checkpoint)
	}
	if common.JSON {
		if err := cliutil.WriteJSON(os.Stdout, rep); err != nil {
			return err
		}
	} else {
		fmt.Printf("checking %v\n\n", im)
		fmt.Print(rep.String())
		if v := rep.Consensus.Violation; v != nil {
			fmt.Printf("\ncounterexample lanes (proposals %v):\n%s\n",
				rep.Consensus.ViolationProposals, explore.FormatLanes(v.Schedule, im))
		}
	}
	if !rep.OK() {
		return fmt.Errorf("implementation is incorrect")
	}

	if *valency && !common.JSON {
		proposals := make([]int, im.Procs)
		for p := range proposals {
			proposals[p] = p % 2 // mixed proposals: the bivalent start
		}
		v, err := explore.Valency(im, proposals, explore.Options{})
		if err != nil {
			return err
		}
		fmt.Printf("\nvalency analysis (proposals %v):\n", v.Proposals)
		fmt.Printf("  configurations: %d (%d bivalent, %d univalent)\n", v.Configs, v.Bivalent, v.Univalent)
		fmt.Printf("  initial valency: %v (bivalent: %v)\n", explore.ValencySet(v.InitialValency), v.InitialBivalent)
		fmt.Printf("  critical configurations: %d\n", len(v.Critical))
		if len(v.CriticalObjects) > 0 {
			fmt.Printf("  arbitrating objects:")
			for _, o := range v.CriticalObjects {
				fmt.Printf(" %s", im.Objects[o].Name)
			}
			fmt.Println(" (Herlihy's argument: never a register)")
		}
	}
	return nil
}
