package main

import (
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func TestRunCorrectProtocols(t *testing.T) {
	for _, name := range []string{"tas", "queue", "cas", "sticky", "augqueue", "fetchcons", "weakleader", "noisysticky"} {
		if err := run([]string{"-protocol", name}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunNaiveFails(t *testing.T) {
	if err := run([]string{"-protocol", "naive"}); err == nil {
		t.Fatal("broken protocol reported correct")
	}
}

func TestRunValencyAndDot(t *testing.T) {
	if err := run([]string{"-protocol", "tas", "-valency"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-protocol", "cas", "-dot"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if err := run([]string{"-protocol", "ghost"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunSharedFlags(t *testing.T) {
	if err := run([]string{"-protocol", "tas", "-json", "-parallel", "2", "-progress", "1ms"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-protocol", "casregister3", "-timeout", "1ns"}); err == nil {
		t.Fatal("expired deadline not reported")
	}
}

// TestRunCrashRecovery drives -fault-mode crash-recovery at the CLI
// layer: an election protocol survives a crash/recover budget, the
// register-only naive protocol is refuted with a recovery-annotated
// counterexample, and a recovery budget without the mode is rejected by
// the engine's model validation instead of being silently ignored.
func TestRunCrashRecovery(t *testing.T) {
	crashRecovery := []string{"-memoize", "-faults", "-max-crashes", "1",
		"-fault-mode", "crash-recovery", "-max-recoveries", "1"}
	if err := run(append([]string{"-protocol", "tas"}, crashRecovery...)); err != nil {
		t.Fatal(err)
	}
	if err := run(append([]string{"-protocol", "naive"}, crashRecovery...)); err == nil {
		t.Fatal("naive survived crash-recovery checking")
	}
	if err := run([]string{"-protocol", "tas", "-faults", "-max-crashes", "1",
		"-max-recoveries", "1"}); err == nil {
		t.Fatal("-max-recoveries accepted outside -fault-mode crash-recovery")
	}
}

// TestRunPartialThenResume drives the durable-runs loop end to end at the
// CLI layer: a -max-nodes run stops with partial coverage and a saved
// checkpoint, and rerunning the same command without the budget resumes
// it to a clean verdict.
func TestRunPartialThenResume(t *testing.T) {
	cp := filepath.Join(t.TempDir(), "cp")
	err := run([]string{"-protocol", "casregister3", "-memoize", "-parallel", "1",
		"-max-nodes", "500", "-checkpoint", cp})
	if err == nil || !strings.Contains(err.Error(), "partial coverage") {
		t.Fatalf("budgeted run: err = %v, want partial-coverage error", err)
	}
	if _, serr := os.Stat(cp); serr != nil {
		t.Fatalf("partial run saved no checkpoint: %v", serr)
	}
	if err := run([]string{"-protocol", "casregister3", "-memoize", "-parallel", "1",
		"-checkpoint", cp}); err != nil {
		t.Fatalf("resume: %v", err)
	}
	if _, serr := os.Stat(cp); !os.IsNotExist(serr) {
		t.Errorf("completed resume left a stale checkpoint: %v", serr)
	}
}

// TestRunDurabilityFlagValidation pins the -checkpoint-every usage error
// and that a valid autosave configuration runs cleanly.
func TestRunDurabilityFlagValidation(t *testing.T) {
	if err := run([]string{"-protocol", "tas", "-checkpoint-every", "1s"}); err == nil {
		t.Fatal("-checkpoint-every accepted without -checkpoint")
	}
	cp := filepath.Join(t.TempDir(), "cp")
	if err := run([]string{"-protocol", "tas", "-checkpoint", cp, "-checkpoint-every", "1ms"}); err != nil {
		t.Fatal(err)
	}
}
