package main

import "testing"

func TestRunCorrectProtocols(t *testing.T) {
	for _, name := range []string{"tas", "queue", "cas", "sticky", "augqueue", "fetchcons", "weakleader", "noisysticky"} {
		if err := run([]string{"-protocol", name}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunNaiveFails(t *testing.T) {
	if err := run([]string{"-protocol", "naive"}); err == nil {
		t.Fatal("broken protocol reported correct")
	}
}

func TestRunValencyAndDot(t *testing.T) {
	if err := run([]string{"-protocol", "tas", "-valency"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-protocol", "cas", "-dot"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownProtocol(t *testing.T) {
	if err := run([]string{"-protocol", "ghost"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunSharedFlags(t *testing.T) {
	if err := run([]string{"-protocol", "tas", "-json", "-parallel", "2", "-progress", "1ms"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-protocol", "casregister3", "-timeout", "1ns"}); err == nil {
		t.Fatal("expired deadline not reported")
	}
}
