package main

import "testing"

func TestRunSingleExperiment(t *testing.T) {
	if err := run([]string{"-only", "E4"}); err != nil {
		t.Fatal(err)
	}
}

func TestRunUnknownExperiment(t *testing.T) {
	if err := run([]string{"-only", "E99"}); err == nil {
		t.Fatal("unknown experiment accepted")
	}
}

func TestRunSharedFlags(t *testing.T) {
	if err := run([]string{"-only", "E1", "-json"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-timeout", "1ns"}); err == nil {
		t.Fatal("expired deadline not reported")
	}
}
