// Command experiments runs the full reproduction harness (E1-E11, indexed
// in DESIGN.md) and prints the result tables as Markdown — the body of
// EXPERIMENTS.md. The exit status is nonzero if any experiment's verdict
// is FAILED.
//
// Usage:
//
//	experiments [-only E4] [-timeout D] [-json] [-symmetry MODE] [-cache DIR]
//
// -cache DIR serves the harness's consensus explorations from the
// content-addressed result cache across runs, storing fresh conclusive
// verdicts on the way out.
package main

import (
	"flag"
	"fmt"
	"os"

	"waitfree/internal/cliutil"
	"waitfree/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	only := fs.String("only", "", "run a single experiment (E1..E11)")
	common := cliutil.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	cache, err := common.OpenCache()
	if err != nil {
		return err
	}
	experiments.SetCache(cache)

	ctx, cancel := common.Context()
	defer cancel()

	var tables []*experiments.Table
	if *only != "" {
		table, err := experiments.RunOne(ctx, *only)
		if err != nil {
			return err
		}
		tables = []*experiments.Table{table}
	} else {
		var err error
		tables, err = experiments.AllContext(ctx)
		if err != nil {
			return err
		}
	}

	if common.JSON {
		if err := cliutil.WriteJSON(os.Stdout, tables); err != nil {
			return err
		}
	} else {
		fmt.Print(experiments.Markdown(tables))
	}
	failed := 0
	for _, t := range tables {
		if t.Failed() {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d experiments FAILED", failed, len(tables))
	}
	if !common.JSON {
		fmt.Printf("All %d experiments reproduced.\n", len(tables))
	}
	return nil
}
