// Command experiments runs the full reproduction harness (E1-E9, indexed
// in DESIGN.md) and prints the result tables as Markdown — the body of
// EXPERIMENTS.md. The exit status is nonzero if any experiment's verdict
// is FAILED.
//
// Usage:
//
//	experiments [-only E4]
package main

import (
	"flag"
	"fmt"
	"os"

	"waitfree/internal/experiments"
)

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "experiments:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("experiments", flag.ContinueOnError)
	only := fs.String("only", "", "run a single experiment (E1..E9)")
	if err := fs.Parse(args); err != nil {
		return err
	}

	var tables []*experiments.Table
	var err error
	if *only != "" {
		runners := map[string]func() (*experiments.Table, error){
			"E1": experiments.E1, "E2": experiments.E2, "E3": experiments.E3,
			"E4": experiments.E4, "E5": experiments.E5, "E6": experiments.E6,
			"E7": experiments.E7, "E8": experiments.E8, "E9": experiments.E9, "E10": experiments.E10, "E11": experiments.E11,
		}
		runner, ok := runners[*only]
		if !ok {
			return fmt.Errorf("unknown experiment %q", *only)
		}
		table, err := runner()
		if err != nil {
			return err
		}
		tables = []*experiments.Table{table}
	} else {
		tables, err = experiments.All()
		if err != nil {
			return err
		}
	}

	fmt.Print(experiments.Markdown(tables))
	failed := 0
	for _, t := range tables {
		if t.Failed() {
			failed++
		}
	}
	if failed > 0 {
		return fmt.Errorf("%d of %d experiments FAILED", failed, len(tables))
	}
	fmt.Printf("All %d experiments reproduced.\n", len(tables))
	return nil
}
