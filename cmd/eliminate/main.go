// Command eliminate runs the constructive Theorem 5 pipeline of
// Bazzi-Neiger-Peterson (PODC 1994) on one of the built-in consensus
// protocols: it computes the Section 4.2 access bounds, replaces every
// SRSW-bit register with one-use bits (Section 4.3), realizes every
// one-use bit from the protocol's own object type (Section 5.2), and
// verifies the register-free result exhaustively.
//
// Usage:
//
//	eliminate [-protocol tas|queue|stack|faa|swap] [-memoize] [-parallel N]
package main

import (
	"flag"
	"fmt"
	"os"

	"waitfree/internal/consensus"
	"waitfree/internal/core"
	"waitfree/internal/explore"
	"waitfree/internal/program"
)

var protocols = map[string]func() *program.Implementation{
	"tas":   consensus.TAS2,
	"queue": consensus.Queue2,
	"stack": consensus.Stack2,
	"faa":   consensus.FAA2,
	"swap":  consensus.Swap2,
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eliminate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eliminate", flag.ContinueOnError)
	name := fs.String("protocol", "tas", "protocol to transform: tas, queue, stack, faa, swap, noisysticky")
	memoize := fs.Bool("memoize", false, "memoize configurations during exploration")
	parallel := fs.Int("parallel", 0, "worker count for the proposal-vector trees (0 = GOMAXPROCS)")
	if err := fs.Parse(args); err != nil {
		return err
	}
	opts := explore.Options{Memoize: *memoize, Parallelism: *parallel}

	var im *program.Implementation
	var report *core.Report
	var err error
	if *name == "noisysticky" {
		// The nondeterministic case: Theorem 5's h_m >= 2 route (Section
		// 5.3), with the register-free noisy-sticky consensus as substrate.
		im = consensus.NoisySticky2R()
		fmt.Printf("input:  %v\n", im)
		report, err = core.EliminateRegistersVia53(im, consensus.NoisySticky2(), opts)
		if err != nil {
			return err
		}
	} else {
		mk, ok := protocols[*name]
		if !ok {
			return fmt.Errorf("unknown protocol %q (have tas, queue, stack, faa, swap, noisysticky)", *name)
		}
		im = mk()
		fmt.Printf("input:  %v\n", im)
		report, err = core.EliminateRegisters(im, opts, 3)
		if err != nil {
			return err
		}
	}

	fmt.Printf("output: %v\n\n", report.Output)
	fmt.Println("Section 4.2 access bounds of the input:")
	fmt.Printf("  uniform bound D = %d object accesses per execution\n", report.InputReport.Depth)
	for _, b := range report.Bounds {
		fmt.Printf("  register %-10s r_b = %d, w_b = %d  ->  (w+1) x r = %d one-use bits\n",
			b.Name, b.R, b.W, (b.W+1)*b.R)
	}
	if report.Pair != nil {
		fmt.Println("\nSection 5.2 witness realizing one-use bits from", report.TypeName+":")
		fmt.Printf("  %v\n", report.Pair)
	} else {
		fmt.Println("\nSection 5.3 route: one-use bits realized from the register-free",
			report.TypeName, "consensus substrate")
	}
	fmt.Println("\naccounting:")
	fmt.Printf("  registers eliminated:   %d\n", report.RegistersEliminated)
	fmt.Printf("  one-use bits introduced: %d\n", report.OneUseBitsUsed)
	fmt.Printf("  %s objects added:  %d\n", report.TypeName, report.TypeObjectsAdded)
	fmt.Println("\nverification of the register-free output:")
	fmt.Printf("  %s\n", report.OutputReport.Summary())
	return nil
}
