// Command eliminate runs the constructive Theorem 5 pipeline of
// Bazzi-Neiger-Peterson (PODC 1994) on one of the built-in consensus
// protocols: it computes the Section 4.2 access bounds, replaces every
// SRSW-bit register with one-use bits (Section 4.3), realizes every
// one-use bit from the protocol's own object type (Section 5.2), and
// verifies the register-free result exhaustively.
//
// Usage:
//
//	eliminate [-protocol tas|queue|stack|faa|swap|noisysticky] [-memoize]
//	          [-parallel N] [-timeout D] [-progress D] [-json]
//	          [-symmetry MODE] [-max-nodes N] [-stall-after D] [-cache DIR]
//
// The pipeline's explorations honor the long-run guards: -max-nodes,
// -timeout, and -stall-after stop an oversized exploration with an
// "inconclusive" error (the input is neither verified nor condemned)
// instead of running unbounded. -cache DIR serves a repeat elimination
// from the content-addressed result cache with byte-identical JSON.
package main

import (
	"flag"
	"fmt"
	"os"

	"waitfree"
	"waitfree/internal/cliutil"
	"waitfree/internal/consensus"
	"waitfree/internal/explore"
	"waitfree/internal/program"
)

var protocols = map[string]func() *program.Implementation{
	"tas":   consensus.TAS2,
	"queue": consensus.Queue2,
	"stack": consensus.Stack2,
	"faa":   consensus.FAA2,
	"swap":  consensus.Swap2,
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eliminate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eliminate", flag.ContinueOnError)
	name := fs.String("protocol", "tas", "protocol to transform: tas, queue, stack, faa, swap, noisysticky")
	memoize := fs.Bool("memoize", false, "memoize configurations during exploration")
	common := cliutil.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	exOpts, err := common.Supervise(common.Options(explore.Options{Memoize: *memoize}))
	if err != nil {
		return err
	}
	req := waitfree.Request{
		Kind:    waitfree.KindElimination,
		Explore: exOpts,
	}
	if *name == "noisysticky" {
		// The nondeterministic case: Theorem 5's h_m >= 2 route (Section
		// 5.3), with the register-free noisy-sticky consensus as substrate.
		req.Implementation = consensus.NoisySticky2R()
		req.Substrate = consensus.NoisySticky2()
	} else {
		mk, ok := protocols[*name]
		if !ok {
			return fmt.Errorf("unknown protocol %q (have tas, queue, stack, faa, swap, noisysticky)", *name)
		}
		req.Implementation = mk()
	}

	req.Cache, err = common.OpenCache()
	if err != nil {
		return err
	}
	ctx, cancel := common.Context()
	defer cancel()
	rep, err := waitfree.Check(ctx, req)
	if rep != nil {
		cliutil.LogCacheOutcome(rep.Cache)
	}
	if err != nil {
		return err
	}
	if common.JSON {
		return cliutil.WriteJSON(os.Stdout, rep)
	}
	fmt.Printf("input:  %v\n", req.Implementation)
	fmt.Print(rep.String())
	return nil
}
