// Command eliminate runs the constructive Theorem 5 pipeline of
// Bazzi-Neiger-Peterson (PODC 1994) on one of the built-in consensus
// protocols: it computes the Section 4.2 access bounds, replaces every
// SRSW-bit register with one-use bits (Section 4.3), realizes every
// one-use bit from the protocol's own object type (Section 5.2), and
// verifies the register-free result exhaustively.
//
// Usage:
//
//	eliminate [-protocol tas|queue|stack|faa|swap|noisysticky] [-memoize]
//	          [-parallel N] [-timeout D] [-progress D] [-json]
//	          [-symmetry MODE] [-max-nodes N] [-stall-after D] [-cache DIR]
//
// The pipeline's explorations honor the long-run guards: -max-nodes,
// -timeout, and -stall-after stop an oversized exploration with an
// "inconclusive" error (the input is neither verified nor condemned)
// instead of running unbounded. -cache DIR serves a repeat elimination
// from the content-addressed result cache with byte-identical JSON.
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"waitfree"
	"waitfree/internal/cliutil"
	"waitfree/internal/explore"
)

// eliminableNames renders the registry's Theorem 5 pipeline inputs for
// flag help and errors ("noisysticky" stays the CLI spelling of the
// registry's "noisysticky-r").
func eliminableNames() string {
	var names []string
	for _, p := range waitfree.Protocols() {
		if !p.Eliminable {
			continue
		}
		if p.Name == "noisysticky-r" {
			names = append(names, "noisysticky")
			continue
		}
		names = append(names, p.Name)
	}
	return strings.Join(names, ", ")
}

func main() {
	if err := run(os.Args[1:]); err != nil {
		fmt.Fprintln(os.Stderr, "eliminate:", err)
		os.Exit(1)
	}
}

func run(args []string) error {
	fs := flag.NewFlagSet("eliminate", flag.ContinueOnError)
	name := fs.String("protocol", "tas", "protocol to transform: "+eliminableNames())
	memoize := fs.Bool("memoize", false, "memoize configurations during exploration")
	common := cliutil.Register(fs)
	if err := fs.Parse(args); err != nil {
		return err
	}

	exOpts, err := common.Supervise(common.Options(explore.Options{Memoize: *memoize}))
	if err != nil {
		return err
	}
	req := waitfree.Request{
		Kind:    waitfree.KindElimination,
		Explore: exOpts,
	}
	lookup := *name
	if lookup == "noisysticky" {
		// The CLI's historical name for the nondeterministic case: Theorem
		// 5's h_m >= 2 route (Section 5.3), registered as "noisysticky-r"
		// with the register-free noisy-sticky consensus as substrate.
		lookup = "noisysticky-r"
	}
	info, ok := waitfree.LookupProtocol(lookup)
	if !ok || !info.Eliminable {
		return fmt.Errorf("unknown protocol %q (have %s)", *name, eliminableNames())
	}
	if req.Implementation, err = info.Build(0); err != nil {
		return err
	}
	if info.Substrate != "" {
		sub, ok := waitfree.LookupProtocol(info.Substrate)
		if !ok {
			return fmt.Errorf("protocol %q names unknown substrate %q", info.Name, info.Substrate)
		}
		if req.Substrate, err = sub.Build(0); err != nil {
			return err
		}
	}

	req.Cache, err = common.OpenCache()
	if err != nil {
		return err
	}
	ctx, cancel := common.Context()
	defer cancel()
	rep, err := waitfree.Check(ctx, req)
	if rep != nil {
		cliutil.LogCacheOutcome(rep.Cache)
	}
	if err != nil {
		return err
	}
	if common.JSON {
		return cliutil.WriteJSON(os.Stdout, rep)
	}
	fmt.Printf("input:  %v\n", req.Implementation)
	fmt.Print(rep.String())
	return nil
}
