package main

import "testing"

func TestRunAllProtocols(t *testing.T) {
	for _, name := range []string{"tas", "queue", "stack", "faa", "swap", "noisysticky"} {
		if err := run([]string{"-protocol", name}); err != nil {
			t.Errorf("%s: %v", name, err)
		}
	}
}

func TestRunUnknown(t *testing.T) {
	if err := run([]string{"-protocol", "ghost"}); err == nil {
		t.Fatal("unknown protocol accepted")
	}
}

func TestRunSharedFlags(t *testing.T) {
	if err := run([]string{"-protocol", "tas", "-json", "-progress", "1ms"}); err != nil {
		t.Fatal(err)
	}
	if err := run([]string{"-protocol", "queue", "-timeout", "1ns"}); err == nil {
		t.Fatal("expired deadline not reported")
	}
}
