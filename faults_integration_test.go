package waitfree_test

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"strings"
	"testing"
	"time"

	"waitfree"
)

// oneCrash is the fault model of the paper's crash-stop setting with a
// single faulty process.
var oneCrash = waitfree.FaultModel{MaxCrashes: 1}

// TestFaultExplorationPinned is the acceptance pin of the fault engine:
// the queue-based protocol AND its Theorem 5 register-free output both
// verify under exhaustive <=1-crash exploration, through the unified
// Check API.
func TestFaultExplorationPinned(t *testing.T) {
	rep, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind:           waitfree.KindElimination,
		Implementation: waitfree.Queue2Consensus(),
		Explore:        waitfree.ExploreOptions{Memoize: true, Faults: oneCrash},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("elimination under faults failed: %s", rep)
	}
	out := rep.Elimination.OutputReport
	if out.Faults == nil || out.Faults.MaxCrashes != 1 {
		t.Fatalf("output report does not record the fault model: %+v", out.Faults)
	}
	if !out.WaitFree || !out.Agreement || !out.Validity {
		t.Fatalf("register-free output failed under crashes: %s", out.Summary())
	}
	// The access bounds are a crash-free property (crash edges cost no
	// low-level operations), so fault exploration must not inflate them.
	plain, err := waitfree.CheckConsensus(rep.Elimination.Output, waitfree.ExploreOptions{Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	if out.Depth != plain.Depth {
		t.Errorf("crash exploration changed the depth bound: %d vs %d", out.Depth, plain.Depth)
	}
	if !reflect.DeepEqual(out.MaxAccess, plain.MaxAccess) {
		t.Errorf("crash exploration changed access bounds: %v vs %v", out.MaxAccess, plain.MaxAccess)
	}

	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	if want := `"max_crashes": 1`; !strings.Contains(string(blob), want) {
		t.Errorf("JSON report lacks %s", want)
	}
}

// cancelAfterFirstTree runs req with Parallelism 1 and cancels the
// context as soon as one proposal tree completes, returning the partial
// report carrying the checkpoint.
func cancelAfterFirstTree(t *testing.T, req waitfree.Request) *waitfree.Report {
	t.Helper()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	req.Explore.Parallelism = 1
	req.Explore.ProgressInterval = time.Millisecond
	req.Explore.OnProgress = func(s waitfree.ExploreStats) {
		if s.TreesDone >= 1 {
			cancel()
		}
	}
	rep, err := waitfree.Check(ctx, req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || rep.Checkpoint == nil {
		t.Fatalf("cancelled run returned no checkpoint: %+v", rep)
	}
	return rep
}

// TestCheckCheckpointResume is the facade-level resume contract: a
// cancelled Check returns a Report.Checkpoint which, fed back through
// Request.ResumeFrom (after a JSON round trip, as the CLIs do), completes
// to a report semantically identical to an uninterrupted run — for both
// KindConsensus and KindBound, with faults enabled.
func TestCheckCheckpointResume(t *testing.T) {
	for _, kind := range []waitfree.CheckKind{waitfree.KindConsensus, waitfree.KindBound} {
		req := waitfree.Request{
			Kind:           kind,
			Implementation: waitfree.CASRegister3Consensus(),
			Explore:        waitfree.ExploreOptions{Memoize: true, Faults: oneCrash},
		}
		partial := cancelAfterFirstTree(t, req)
		if done := int64(len(partial.Checkpoint.Trees)); done < 1 {
			t.Fatalf("%s: checkpoint records %d finished trees", kind, done)
		}

		// Round-trip through JSON, like the -checkpoint flag does.
		blob, err := json.Marshal(partial.Checkpoint)
		if err != nil {
			t.Fatal(err)
		}
		restored := &waitfree.Checkpoint{}
		if err := json.Unmarshal(blob, restored); err != nil {
			t.Fatal(err)
		}

		resumed, err := waitfree.Check(context.Background(), waitfree.Request{
			Kind:           kind,
			Implementation: waitfree.CASRegister3Consensus(),
			Explore:        waitfree.ExploreOptions{Memoize: true, Faults: oneCrash, Parallelism: 2},
			ResumeFrom:     restored,
		})
		if err != nil {
			t.Fatalf("%s resume: %v", kind, err)
		}
		full, err := waitfree.Check(context.Background(), waitfree.Request{
			Kind:           kind,
			Implementation: waitfree.CASRegister3Consensus(),
			Explore:        waitfree.ExploreOptions{Memoize: true, Faults: oneCrash},
		})
		if err != nil {
			t.Fatal(err)
		}
		a, b := *resumed.Consensus, *full.Consensus
		a.Stats, b.Stats = nil, nil
		if !reflect.DeepEqual(a, b) {
			t.Errorf("%s: resumed report differs from uninterrupted run:\n%+v\nvs\n%+v", kind, a, b)
		}
		if resumed.Checkpoint != nil || full.Checkpoint != nil {
			t.Errorf("%s: completed runs carry checkpoints", kind)
		}
	}
}

// TestCheckResumeFromRejected pins the Request validation: ResumeFrom
// only applies to the single-exploration kinds.
func TestCheckResumeFromRejected(t *testing.T) {
	_, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind:           waitfree.KindElimination,
		Implementation: waitfree.TAS2Consensus(),
		ResumeFrom:     &waitfree.Checkpoint{},
	})
	if !errors.Is(err, waitfree.ErrBadRequest) {
		t.Errorf("err = %v, want ErrBadRequest", err)
	}
}

// oneRecovery is the crash-recovery fault model: a single crash event
// whose victim may restart once from its recovery section.
var oneRecovery = waitfree.FaultModel{
	MaxCrashes: 1, Mode: waitfree.CrashRecovery, MaxRecoveries: 1,
}

// TestCheckCrashRecovery is the facade-level acceptance pin of the
// crash-recovery mode: a correct election protocol verifies under a
// crash/recover budget, the naive register-only protocol is refuted with
// the decision-changed-after-recovery kind on a crash- and
// recover-annotated counterexample, and the full fault model (including
// max_recoveries) round-trips through the JSON report.
func TestCheckCrashRecovery(t *testing.T) {
	good, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind:           waitfree.KindConsensus,
		Implementation: waitfree.TAS2Consensus(),
		Explore:        waitfree.ExploreOptions{Memoize: true, Faults: oneRecovery},
	})
	if err != nil {
		t.Fatal(err)
	}
	if !good.OK() {
		t.Fatalf("tas failed under crash-recovery: %s", good)
	}

	rep, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind:           waitfree.KindConsensus,
		Implementation: waitfree.NaiveRegisterConsensus(),
		Explore:        waitfree.ExploreOptions{Memoize: true, Faults: oneRecovery},
	})
	if err != nil {
		t.Fatal(err)
	}
	v := rep.Consensus.Violation
	if rep.OK() || v == nil {
		t.Fatalf("naive protocol verified under crash-recovery: %+v", rep.Consensus)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{
		`"decision-changed-after-recovery"`, `"max_recoveries": 1`,
		`"mode": "crash-recovery"`, `"crash": true`, `"recover": true`,
	} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("JSON report lacks %s", want)
		}
	}
}

// TestCheckFaultsOnBrokenProtocol checks that the facade surfaces fault
// exploration on an incorrect input: the report fails, and the recorded
// fault model round-trips through the JSON output.
func TestCheckFaultsOnBrokenProtocol(t *testing.T) {
	rep, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind:           waitfree.KindConsensus,
		Implementation: waitfree.NaiveRegisterConsensus(),
		Explore:        waitfree.ExploreOptions{Memoize: true, Faults: oneCrash},
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || rep.Consensus.Violation == nil {
		t.Fatalf("naive protocol verified under faults: %+v", rep.Consensus)
	}
	blob, err := json.MarshalIndent(rep, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{`"faults"`, `"max_crashes": 1`, `"violation"`} {
		if !strings.Contains(string(blob), want) {
			t.Errorf("JSON report lacks %s", want)
		}
	}
}
