// Package waitfree is an executable reproduction of Bazzi, Neiger, and
// Peterson, "On the Use of Registers in Achieving Wait-Free Consensus"
// (PODC 1994).
//
// The library makes the paper's objects first-class and its theorems
// runnable:
//
//   - Types are 5-tuples T = <n, Q, I, R, delta> (Spec); a zoo of standard
//     concurrent data types is provided, including the paper's one-use bit.
//   - Implementations are sets of typed objects plus one deterministic
//     program per process (Implementation, Machine).
//   - The execution-tree explorer enumerates all interleavings and
//     nondeterministic resolutions of an implementation, decides
//     agreement/validity/wait-freedom for consensus, and computes the
//     Section 4.2 access bounds (CheckConsensus).
//   - EliminateRegisters is the constructive Theorem 5: it rewrites a
//     consensus implementation over objects of a non-trivial deterministic
//     type T plus SRSW-bit registers into one over objects of T alone,
//     via one-use bits, and verifies the result.
//   - ClassifyZoo reports triviality, the Section 5.1/5.2 witnesses, and
//     hierarchy positions for the whole type zoo.
//
// The deeper machinery lives in internal packages (types, program,
// explore, linearize, registers, onebit, hierarchy, consensus, core,
// universal); this package re-exports the surfaces a downstream user
// needs. The examples directory shows the API end to end, and DESIGN.md /
// EXPERIMENTS.md map every result of the paper to code and measurements.
package waitfree

import (
	"waitfree/internal/consensus"
	"waitfree/internal/core"
	"waitfree/internal/durable"
	"waitfree/internal/explore"
	"waitfree/internal/faults"
	"waitfree/internal/hierarchy"
	"waitfree/internal/multivalue"
	"waitfree/internal/onebit"
	"waitfree/internal/program"
	"waitfree/internal/rescache"
	runtimepkg "waitfree/internal/runtime"
	"waitfree/internal/sched"
	"waitfree/internal/synth"
	"waitfree/internal/types"
	"waitfree/internal/universal"
)

// Core vocabulary: types as 5-tuples and their constituents.
type (
	// Spec is a concurrent data type T = <n, Q, I, R, delta>.
	Spec = types.Spec
	// State is an object state (a comparable, immutable value).
	State = types.State
	// Invocation is an access invocation.
	Invocation = types.Invocation
	// Response is an access response.
	Response = types.Response
	// Transition is one allowed (next state, response) outcome.
	Transition = types.Transition
)

// Implementations: objects plus per-process deterministic programs.
type (
	// Implementation is a Section 2.2 implementation of a target type.
	Implementation = program.Implementation
	// ObjectDecl declares one implementing object.
	ObjectDecl = program.ObjectDecl
	// Machine is a process's deterministic program.
	Machine = program.Machine
	// FuncMachine adapts two functions to the Machine interface.
	FuncMachine = program.FuncMachine
	// Action is one machine step: an object invocation or a return.
	Action = program.Action
)

// Machine action constructors.
var (
	// InvokeAction builds an object invocation action.
	InvokeAction = program.InvokeAction
	// ReturnAction builds a completion action.
	ReturnAction = program.ReturnAction
)

// Exploration and verification.
type (
	// ExploreOptions configures exhaustive exploration.
	ExploreOptions = explore.Options
	// ConsensusReport is the verdict of checking a consensus
	// implementation over all proposal vectors and interleavings.
	ConsensusReport = explore.ConsensusReport
	// SymmetryMode selects process-permutation symmetry reduction for the
	// consensus checks (ExploreOptions.Symmetry).
	SymmetryMode = explore.SymmetryMode
)

// Symmetry reduction modes (ExploreOptions.Symmetry).
const (
	// SymmetryOff explores every proposal-vector tree.
	SymmetryOff = explore.SymmetryOff
	// SymmetryAuto reduces when the implementation qualifies and silently
	// explores unreduced otherwise.
	SymmetryAuto = explore.SymmetryAuto
	// SymmetryRequire reduces or fails with ErrNotSymmetric.
	SymmetryRequire = explore.SymmetryRequire
)

// Symmetry vocabulary helpers.
var (
	// ParseSymmetryMode parses the -symmetry CLI tags ("off", "auto",
	// "require").
	ParseSymmetryMode = explore.ParseSymmetryMode
	// ErrNotSymmetric is the sentinel wrapped when SymmetryRequire is set
	// but the run cannot be symmetry-reduced.
	ErrNotSymmetric = explore.ErrNotSymmetric
	// ProcessSymmetric reports whether an implementation satisfies the
	// statically checkable process-symmetry conditions.
	ProcessSymmetric = explore.Symmetric
)

// Fault injection: exhaustive crash exploration, structured panic
// recovery, and resumable checkpointed runs.
type (
	// FaultModel describes the crash faults an exhaustive exploration
	// injects (ExploreOptions.Faults); the zero model disables them.
	FaultModel = faults.Model
	// FaultMode selects where crashes may be placed.
	FaultMode = faults.Mode
	// PanicError is a panic in protocol code converted into a structured
	// error by an engine's recovery layer.
	PanicError = faults.PanicError
	// Checkpoint is the resumable frontier snapshot of a cancelled
	// consensus exploration (ExploreOptions.ResumeFrom, Report.Checkpoint).
	Checkpoint = explore.Checkpoint
)

// Crash placement modes.
const (
	// CrashStop is the paper's failure model: a process may stop
	// permanently before any of its object accesses.
	CrashStop = faults.CrashStop
	// CrashBeforeFirstStep enumerates only initial crashes: processes that
	// never perform any object access.
	CrashBeforeFirstStep = faults.CrashBeforeFirstStep
	// CrashRecovery lets crashed processes re-enter from their recovery
	// section — volatile state reset, shared objects persisting — with
	// FaultModel.MaxRecoveries bounding total recoveries per execution.
	CrashRecovery = faults.CrashRecovery
)

// Fault vocabulary helpers.
var (
	// ParseFaultMode parses the -fault-mode CLI tags ("crash-stop",
	// "crash-start", "crash-recovery").
	ParseFaultMode = faults.ParseMode
	// ErrBadFaultModel is the sentinel wrapped by FaultModel validation
	// failures.
	ErrBadFaultModel = faults.ErrBadModel
	// ErrBadCheckpoint is the sentinel returned when ResumeFrom does not
	// match the run it is offered to.
	ErrBadCheckpoint = explore.ErrBadCheckpoint
)

// Durable runs: checksummed checkpoint files, partial-coverage reports,
// and the stall watchdog (ExploreOptions.MaxNodes, StallAfter,
// CheckpointEvery/OnCheckpoint; see DESIGN.md section 9).
type (
	// Coverage describes how far a partial consensus run got before a soft
	// budget, the deadline, or the stall watchdog stopped it
	// (ConsensusReport.Coverage).
	Coverage = explore.Coverage
	// StallError reports a worker flagged by the ExploreOptions.StallAfter
	// watchdog, identifying the tree, depth, and configuration it was
	// stuck on.
	StallError = explore.StallError
	// WorkerHeartbeat is one worker's liveness record inside an
	// ExploreStats snapshot.
	WorkerHeartbeat = explore.WorkerHeartbeat
	// CorruptCheckpointError describes an unreadable checkpoint file and
	// carries the longest salvageable tree prefix, if any.
	CorruptCheckpointError = durable.CorruptError
)

// Durable checkpoint files.
var (
	// SaveCheckpoint atomically writes a checksummed checkpoint file
	// (temp-file rename, fsync, transient-error retry).
	SaveCheckpoint = durable.Save
	// LoadCheckpoint reads a checkpoint file written by SaveCheckpoint
	// (or a legacy bare-JSON file), verifying every checksum; corruption
	// surfaces as ErrCorruptCheckpoint with any salvageable prefix
	// attached to the *CorruptCheckpointError.
	LoadCheckpoint = durable.Load
	// ErrCorruptCheckpoint is the sentinel wrapped by every checkpoint
	// corruption error.
	ErrCorruptCheckpoint = durable.ErrCorruptCheckpoint
	// ErrNotWaitFree: an access-bound or elimination input failed
	// verification (bounds only exist for correct wait-free inputs).
	ErrNotWaitFree = core.ErrNotWaitFree
	// ErrInconclusive: a pipeline exploration stopped with partial
	// coverage (MaxNodes, deadline, stall watchdog) before it could settle
	// the property; resume from the accompanying report's Checkpoint.
	ErrInconclusive = core.ErrInconclusive
)

// Content-addressed result cache (Request.Cache; see DESIGN.md section
// 10): a request's canonical SHA-256 key covers everything that affects
// its verdict — the implementation's behavior up to process permutation,
// specs, kind, parameters, and the verdict-relevant exploration options —
// so repeated and symmetry-equivalent requests are served from memory or
// disk with byte-identical JSON instead of re-explored.
type (
	// Cache is the two-tier (memory LRU + durable disk) result cache.
	Cache = rescache.Cache
	// CacheOptions configures OpenCache: disk directory and memory
	// budget.
	CacheOptions = rescache.Options
	// CacheStats are a cache's cumulative hit/miss/store counters.
	CacheStats = rescache.Stats
	// CacheOutcome describes what the cache did for one request
	// (Report.Cache).
	CacheOutcome = rescache.Outcome
)

var (
	// OpenCache creates a result cache; with CacheOptions.Dir set,
	// entries persist across processes in checksummed envelope files.
	OpenCache = rescache.Open
	// ErrUncacheable: the request's report is not a pure function of the
	// request (resumed, degraded, or callback-driven runs); Check
	// bypasses the cache for it.
	ErrUncacheable = rescache.ErrUncacheable
)

// Hierarchy classification.
type (
	// Classification is a zoo member's computed profile.
	Classification = hierarchy.Classification
	// Pair is a Section 5.2 minimal non-trivial pair.
	Pair = hierarchy.Pair
	// ObliviousWitness is a Section 5.1 witness.
	ObliviousWitness = hierarchy.ObliviousWitness
)

// EliminationReport records one run of the Theorem 5 pipeline.
type EliminationReport = core.Report

// Protocol synthesis (hierarchy separations made computational).
type (
	// SynthObject is one shared object available to a synthesized protocol.
	SynthObject = synth.Object
	// SynthOptions configures a synthesis search.
	SynthOptions = synth.Options
	// Strategy is a synthesized protocol.
	Strategy = synth.Strategy
)

// Synthesis sentinel errors.
var (
	// ErrNoProtocol: the synthesis space is exhausted; no protocol exists
	// within the bound.
	ErrNoProtocol = synth.ErrNoProtocol
	// ErrSynthBudget: the synthesis budget ran out; verdict unknown.
	ErrSynthBudget = synth.ErrBudget
)

// Synthesis entry points.
var (
	// SynthesizeProtocol searches for a 2-process consensus protocol over
	// the given objects, or exhaustively refutes its existence within the
	// access bound.
	SynthesizeProtocol = synth.Search
	// SynthesizeProtocolContext is the context-aware form.
	SynthesizeProtocolContext = synth.SearchContext
	// StrategyImplementation converts a synthesized strategy into a
	// runnable implementation for independent re-verification.
	StrategyImplementation = synth.Implementation
)

// Type zoo constructors (see internal/types for the full semantics).
var (
	NewRegister       = types.Register
	NewBit            = types.Bit
	NewSRSWBit        = types.SRSWBit
	NewTestAndSet     = types.TestAndSet
	NewSwap           = types.Swap
	NewFetchAdd       = types.FetchAdd
	NewCompareSwap    = types.CompareSwap
	NewQueue          = types.Queue
	NewStack          = types.Stack
	NewStickyCell     = types.StickyCell
	NewStickyBit      = types.StickyBit
	NewConsensus      = types.Consensus
	NewOneUseBit      = types.OneUseBit
	NewWeakLeader     = types.WeakLeader
	NewNoisySticky    = types.NoisySticky
	NewAugmentedQueue = types.AugmentedQueue
	NewSRSWRegister   = types.SRSWRegister
	NewMultiConsensus = types.MultiConsensus
	NewLatchFlag      = types.LatchFlag
	NewToggle         = types.Toggle
	NewBeacon         = types.Beacon
	NewFetchAndCons   = types.FetchAndCons
)

// AuditSpec lints a type definition: declared determinism/obliviousness
// flags must match computed behavior over the reachable fragment, and
// every alphabet entry must be usable somewhere. A spec whose state space
// exceeds the exploration limit without any contradiction found audits as
// ErrAuditInconclusive, never as a silent pass.
var AuditSpec = types.Audit

// ErrAuditInconclusive is the sentinel wrapped when AuditSpec runs out of
// state budget before verifying every declared flag.
var ErrAuditInconclusive = types.ErrAuditInconclusive

// QueueStateOf encodes a queue content (front first) as a state value.
var QueueStateOf = types.QueueState

// Invocation helpers.
var (
	// Inv builds an invocation from an operation name and arguments.
	Inv = types.Inv
	// Read is the argument-free read invocation.
	Read = types.Read
	// Write builds a write(v) invocation.
	Write = types.Write
	// Propose builds the consensus propose(v) invocation.
	Propose = types.Propose
	// ValOf builds a value-bearing response.
	ValOf = types.ValOf
	// OK is the information-free acknowledgement response.
	OK = types.OK
)

// Consensus protocol library (Section 2.3 context: the canonical
// register-using protocols of Herlihy's hierarchy and their register-free
// relatives).
var (
	// TAS2Consensus is 2-process consensus from test-and-set + SRSW bits.
	TAS2Consensus = consensus.TAS2
	// Queue2Consensus is 2-process consensus from a queue + SRSW bits.
	Queue2Consensus = consensus.Queue2
	// Stack2Consensus is 2-process consensus from a stack + SRSW bits.
	Stack2Consensus = consensus.Stack2
	// FAA2Consensus is 2-process consensus from fetch-and-add + SRSW bits.
	FAA2Consensus = consensus.FAA2
	// Swap2Consensus is 2-process consensus from swap + SRSW bits.
	Swap2Consensus = consensus.Swap2
	// WeakLeader2Consensus is 2-process consensus from the nondeterministic
	// WeakLeader type + SRSW bits (Jayanti-separation context).
	WeakLeader2Consensus = consensus.WeakLeader2
	// CASConsensus is register-free n-process consensus from one
	// compare-and-swap object.
	CASConsensus = consensus.CAS
	// StickyConsensus is register-free n-process consensus from one
	// sticky cell.
	StickyConsensus = consensus.Sticky
	// AugQueueConsensus is register-free n-process consensus from one
	// augmented (peekable) queue.
	AugQueueConsensus = consensus.AugQueue
	// FetchConsConsensus is register-free n-process consensus from one
	// fetch-and-cons object, one access per process.
	FetchConsConsensus = consensus.FetchCons
	// NoisySticky2Consensus is register-free 2-process consensus from a
	// nondeterministic noisy-sticky cell (the Section 5.3 substrate).
	NoisySticky2Consensus = consensus.NoisySticky2
	// NoisySticky2RConsensus is the register-using variant, the input of
	// the Section 5.3 pipeline demonstration.
	NoisySticky2RConsensus = consensus.NoisySticky2R
	// CASRegister3Consensus is 3-process consensus from compare-and-swap
	// plus six SRSW announcement bits (a 3-process pipeline input).
	CASRegister3Consensus = consensus.CASRegister3
	// NaiveRegisterConsensus is the deliberately incorrect register-only
	// protocol (registers cannot solve 2-process consensus).
	NaiveRegisterConsensus = consensus.NaiveRegister2
	// RegisterUsingProtocols lists the Theorem 5 pipeline inputs.
	RegisterUsingProtocols = consensus.RegisterUsing
	// MultiValuedConsensus builds k-valued n-process consensus from binary
	// consensus objects plus announcement registers (bit-by-bit
	// agreement).
	MultiValuedConsensus = multivalue.FromBinary
	// MultiValuedConsensusSRSW is the 2-process pipeline-compatible
	// variant over SRSW registers.
	MultiValuedConsensusSRSW = multivalue.FromBinarySRSW
)

// Engine observability and option validation (see Check for the unified
// entry point that ties them together).
type (
	// ExploreStats is a point-in-time engine snapshot published through
	// ExploreOptions.OnProgress.
	ExploreStats = explore.Stats
)

// ErrBadExploreOptions is the sentinel wrapped by every ExploreOptions
// validation failure (incompatible or negative fields).
var ErrBadExploreOptions = explore.ErrBadOptions

// Verification entry points.
var (
	// CheckConsensus explores every execution of a consensus
	// implementation and checks agreement, validity, and wait-freedom.
	CheckConsensus = explore.Consensus
	// CheckConsensusK is the k-valued generalization of CheckConsensus.
	CheckConsensusK = explore.ConsensusK
	// CheckConsensusContext and CheckConsensusKContext are the
	// context-aware forms: cancellation/deadlines stop the engine
	// promptly, and ExploreOptions.OnProgress streams engine statistics.
	CheckConsensusContext  = explore.ConsensusContext
	CheckConsensusKContext = explore.ConsensusKContext
	// Explore runs the execution-tree explorer with explicit per-process
	// scripts of target invocations.
	Explore = explore.Run
	// ExploreContext is Explore under a context.
	ExploreContext = explore.RunContext
	// ComputeValency runs the FLP/Herlihy valency analysis of one
	// execution tree: bivalent/univalent configuration counts and the
	// critical configurations with their arbitrating objects.
	ComputeValency = explore.Valency
	// ExportDot renders an execution tree as Graphviz DOT.
	ExportDot = explore.Dot
)

// ValencyReport is the result of ComputeValency.
type ValencyReport = explore.ValencyReport

// The paper's machinery.
var (
	// EliminateRegisters runs the constructive Theorem 5 pipeline
	// (deterministic route: Sections 4.2, 4.3, 5.2).
	EliminateRegisters = core.EliminateRegisters
	// EliminateRegistersContext is the context-aware form.
	EliminateRegistersContext = core.EliminateRegistersContext
	// EliminateRegistersVia53 runs the pipeline's h_m >= 2 route: one-use
	// bits realized from a register-free 2-consensus substrate over the
	// implementation's (possibly nondeterministic) type (Section 5.3).
	EliminateRegistersVia53 = core.EliminateRegistersVia53
	// EliminateRegistersVia53Context is the context-aware form.
	EliminateRegistersVia53Context = core.EliminateRegistersVia53Context
	// AccessBounds runs the Section 4.2 analysis alone.
	AccessBounds = core.Bound
	// AccessBoundsContext is the context-aware form.
	AccessBoundsContext = core.BoundContext
	// OneUseBitArray builds the standalone Section 4.3 implementation of a
	// bounded SRSW bit from (w+1) x r one-use bits.
	OneUseBitArray = onebit.Implementation
	// OneUseBitFromType builds a one-use bit from a single object of a
	// non-trivial deterministic type (Sections 5.1/5.2).
	OneUseBitFromType = onebit.FromType
	// OneUseBitFromConsensus builds a one-use bit from a 2-process
	// consensus implementation (Section 5.3).
	OneUseBitFromConsensus = onebit.FromConsensusImplementation
	// NewBoundedBit is the direct concurrent form of the Section 4.3
	// construction.
	NewBoundedBit = onebit.NewBoundedBit
)

// Universal is a wait-free linearizable shared object of any
// deterministic type, built from consensus cells (Herlihy's universal
// construction — the result that gives hierarchy levels their meaning).
type Universal = universal.Universal

// NewUniversal builds a universal object: spec and init describe the
// sequential type, procs the sharing processes, maxOps the log capacity.
var NewUniversal = universal.New

// Concurrent execution (package runtime and its schedulers).
var (
	// NewRunner builds a concurrent runner for an implementation: one
	// goroutine per process against mutex-atomic objects, gated by a
	// scheduler (nil = free-running).
	NewRunner = runtimepkg.New
	// NewCrashScheduler crashes process p after after[p] steps.
	NewCrashScheduler = sched.NewCrash
	// NewRecoverScheduler crashes process p after after[p] steps and lets
	// it recover (volatile state lost, step counter reset) up to times[p]
	// times before the crash turns permanent.
	NewRecoverScheduler = sched.NewRecover
	// NewTokenScheduler serializes all steps into one seeded pseudo-random
	// global order (reproducible interleavings).
	NewTokenScheduler = sched.NewToken
	// NewStutterScheduler delays one chosen process: each of its steps
	// waits for a quota of steps by the others (the "arbitrarily slow but
	// live" adversary wait-freedom is defined against).
	NewStutterScheduler = sched.NewStutter
	// RandomResolver builds a seeded resolver for nondeterministic
	// transitions, shared safely across a runner's objects.
	RandomResolver = runtimepkg.RandomResolver
)

// RunOutcome is the result of one concurrent run.
type RunOutcome = runtimepkg.Outcome

// RecoverScheduler is the optional crash-recovery extension of a
// scheduler: after Next(p) reports a crash, the runtime asks Recover(p)
// whether p may re-enter from its recovery section with fresh volatile
// state (NewRecoverScheduler is the built-in implementation).
type RecoverScheduler = sched.RecoverScheduler

// Hierarchy analyses.
var (
	// ClassifyZoo classifies the built-in type zoo.
	ClassifyZoo = hierarchy.ClassifyZoo
	// ClassifyZooContext classifies the zoo under a context across
	// parallel workers.
	ClassifyZooContext = hierarchy.ClassifyZooContext
	// Classify classifies one type.
	Classify = hierarchy.Classify
	// FindPair searches for a Section 5.2 minimal non-trivial pair.
	FindPair = hierarchy.FindPair
	// FindObliviousWitness searches for a Section 5.1 witness.
	FindObliviousWitness = hierarchy.FindObliviousWitness
	// IsTrivial decides (bounded) the general triviality condition.
	IsTrivial = hierarchy.IsTrivial
	// IsTrivialOblivious decides the Section 5.1 triviality condition.
	IsTrivialOblivious = hierarchy.IsTrivialOblivious
)
