package waitfree_test

import (
	"bytes"
	"context"
	"syscall"
	"testing"

	"waitfree"
	"waitfree/internal/fsx"
)

// This file is the storage chaos suite: full verification runs over a
// fault-injected filesystem, pinning the two halves of the unified
// storage-fault contract. A schedule the retry policy absorbs must be
// invisible — the report is byte-identical to a clean run's. A schedule
// it cannot absorb must degrade honestly — same verdict, Degraded set,
// the ladder's counters visible — and never corrupt a report or wedge
// the run.

// chaosRequest is the reference spill-backed configuration: single
// worker and fixed symmetry so the op sequence (and therefore every
// Nth-op fault schedule) is deterministic, and a memo budget small
// enough that the spill tier does real work.
func chaosRequest(fs fsx.FS, spillDir string) waitfree.Request {
	return waitfree.Request{
		Kind:           waitfree.KindConsensus,
		Implementation: waitfree.Queue2Consensus(),
		Explore: waitfree.ExploreOptions{
			Memoize:      true,
			MemoBudget:   4,
			MemoSpillDir: spillDir,
			Parallelism:  1,
			Symmetry:     waitfree.SymmetryOff,
			Faults:       waitfree.FaultModel{MaxCrashes: 1},
			FS:           fs,
		},
	}
}

func runChaos(t *testing.T, fs fsx.FS, spillDir string) *waitfree.Report {
	t.Helper()
	rep, err := waitfree.Check(context.Background(), chaosRequest(fs, spillDir))
	if err != nil {
		t.Fatalf("check: %v", err)
	}
	rep.Canonicalize()
	return rep
}

func TestChaosAbsorbedScheduleIsInvisible(t *testing.T) {
	clean := runChaos(t, nil, t.TempDir())
	if clean.Consensus.Degraded {
		t.Fatalf("clean spill-backed run degraded: %s", clean.Consensus.Summary())
	}

	// Every fault here dies inside one retry schedule: two transient
	// errors per op class (the third attempt lands) and one torn write
	// the rewrite repairs.
	ff := fsx.NewFaultFS(nil, 1,
		fsx.Rule{Op: fsx.OpWriteAt, Nth: 1, Count: 2, Err: syscall.EIO},
		fsx.Rule{Op: fsx.OpWriteAt, Nth: 7, Count: 1, Kind: fsx.FaultTorn},
		fsx.Rule{Op: fsx.OpReadAt, Nth: 1, Count: 2, Err: syscall.EIO},
		fsx.Rule{Op: fsx.OpCreateTemp, Nth: 1, Count: 1, Err: syscall.EIO},
	)
	faulted := runChaos(t, ff, t.TempDir())
	if ff.Injected() == 0 {
		t.Fatal("fault schedule never fired; the test proved nothing")
	}
	if faulted.Consensus.Degraded {
		t.Fatalf("absorbed schedule degraded the run: %s", faulted.Consensus.Summary())
	}
	if faulted.Consensus.MemoHits != clean.Consensus.MemoHits {
		t.Errorf("absorbed schedule cost memo hits: %d, clean %d",
			faulted.Consensus.MemoHits, clean.Consensus.MemoHits)
	}
	if got, want := marshal(t, faulted), marshal(t, clean); !bytes.Equal(got, want) {
		t.Errorf("absorbed schedule changed the report:\nclean:   %s\nfaulted: %s", want, got)
	}
}

func TestChaosUnabsorbedScheduleDegradesHonestly(t *testing.T) {
	clean := runChaos(t, nil, t.TempDir())

	// Every spill write fails forever: retries exhaust, the one rebuild
	// fails too, the tier breaks. The run must finish with the same
	// verdict, flagged Degraded, with the ladder's counters visible.
	ff := fsx.NewFaultFS(nil, 1,
		fsx.Rule{Op: fsx.OpWriteAt, Nth: 1, Count: -1, Err: syscall.EIO})
	sick, err := waitfree.Check(context.Background(), chaosRequest(ff, t.TempDir()))
	if err != nil {
		t.Fatalf("check over a dead spill disk: %v", err)
	}
	if sick.OK() != clean.OK() {
		t.Fatalf("storage faults changed the verdict: ok=%v, clean ok=%v", sick.OK(), clean.OK())
	}
	if !sick.Consensus.Degraded {
		t.Fatal("broken spill tier not reported as Degraded")
	}
	st := sick.Consensus.Stats
	if st == nil {
		t.Fatal("degraded run carries no stats block")
	}
	if !st.SpillBroken {
		t.Errorf("stats do not report the broken spill tier: %+v", st)
	}
	if st.StorageRetries == 0 {
		t.Errorf("stats show no absorbed retry attempts: %+v", st)
	}
	if sick.Consensus.Partial {
		t.Error("storage faults turned a complete run partial")
	}
}

// A silent bit flip on the spill read path must never change a report:
// the per-record checksums catch it, the entry's hit is lost, and the
// verdict fields stay exactly the clean run's.
func TestChaosBitFlipNeverCorruptsVerdict(t *testing.T) {
	clean := runChaos(t, nil, t.TempDir())
	for seed := int64(1); seed <= 4; seed++ {
		ff := fsx.NewFaultFS(nil, seed,
			fsx.Rule{Op: fsx.OpReadAt, Nth: 3, Count: 2, Kind: fsx.FaultBitFlip})
		sick, err := waitfree.Check(context.Background(), chaosRequest(ff, t.TempDir()))
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		if sick.OK() != clean.OK() {
			t.Fatalf("seed %d: bit flips changed the verdict", seed)
		}
		if sick.Consensus.Agreement != clean.Consensus.Agreement ||
			sick.Consensus.Validity != clean.Consensus.Validity ||
			sick.Consensus.WaitFree != clean.Consensus.WaitFree {
			t.Fatalf("seed %d: bit flips changed the verdict fields", seed)
		}
	}
}
