package waitfree

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"strings"
	"time"

	"waitfree/internal/core"
	"waitfree/internal/explore"
	"waitfree/internal/hierarchy"
	"waitfree/internal/rescache"
	"waitfree/internal/synth"
)

// This file is the unified verification entry point. Every pipeline the
// library offers — consensus checking, Section 4.2 bound computation,
// Theorem 5 register elimination, zoo classification, and protocol
// synthesis — runs behind one call, Check(ctx, Request), returning one
// JSON-marshalable Report. The context gives callers cancellation and
// deadlines; Request.Explore.OnProgress gives them live engine Stats. The
// per-pipeline entry points (CheckConsensus, AccessBounds,
// EliminateRegisters, ClassifyZoo, SynthesizeProtocol, and their Context
// forms) remain available for callers that want the concrete types.

// CheckKind selects the pipeline a Request runs.
type CheckKind string

// The five pipelines.
const (
	// KindConsensus explores every execution of Request.Implementation and
	// checks agreement, validity, and wait-freedom (Request.Values-valued;
	// 0 means binary).
	KindConsensus CheckKind = "consensus"
	// KindBound runs the Section 4.2 analysis: like KindConsensus with the
	// proposal-value range taken from the implementation's target type, but
	// failing verification is an error (bounds only exist for correct
	// wait-free inputs).
	KindBound CheckKind = "bound"
	// KindElimination runs the constructive Theorem 5 pipeline on
	// Request.Implementation; if Request.Substrate is set, via the Section
	// 5.3 route.
	KindElimination CheckKind = "elimination"
	// KindClassification classifies the built-in type zoo.
	KindClassification CheckKind = "classification"
	// KindSynthesis searches for a 2-process consensus protocol over
	// Request.Objects, re-verifying any protocol found with the explorer.
	KindSynthesis CheckKind = "synthesis"
)

// ErrBadRequest is the sentinel wrapped by every Request validation
// failure.
var ErrBadRequest = errors.New("waitfree: invalid check request")

// Request selects and parameterizes one verification pipeline.
type Request struct {
	// Kind selects the pipeline.
	Kind CheckKind
	// Implementation is the subject of consensus/bound/elimination checks.
	Implementation *Implementation
	// Values is the proposal-value range k for KindConsensus (0 = 2).
	Values int
	// Explore configures every exploration the pipeline runs: memoization,
	// depth budget, parallelism, symmetry reduction (Explore.Symmetry
	// explores one tree per process-permutation orbit when the
	// implementation qualifies, with an identical report), the fault model
	// (Explore.Faults enumerates crash schedules exhaustively), and the
	// OnProgress/ProgressInterval observability hooks.
	Explore ExploreOptions
	// ResumeFrom resumes a KindConsensus or KindBound run from the
	// Checkpoint a cancelled run returned in Report.Checkpoint; the other
	// kinds run several explorations per call and reject it.
	ResumeFrom *Checkpoint
	// MaxK bounds the Section 5.2 witness search of KindElimination
	// (0 = 3).
	MaxK int
	// Substrate, if set, switches KindElimination to the Section 5.3
	// route: one-use bits realized from this register-free 2-process
	// consensus implementation.
	Substrate *Implementation
	// Objects and Synthesis drive KindSynthesis.
	Objects   []SynthObject
	Synthesis SynthOptions
	// Cache, if set, fronts the pipeline with the content-addressed
	// result cache (OpenCache): a request whose canonical key is already
	// stored returns the stored report — byte-identical JSON to a fresh
	// run — without exploring anything. Fresh conclusive reports are
	// stored on the way out; partial, degraded, resumed, and erroring
	// runs are never cached, and requests the cache cannot key
	// (ErrUncacheable, unencodable implementations) bypass it. Under an
	// active cache the report is canonicalized: Elapsed is zero and the
	// observational Stats blocks are omitted, so cold and warm runs
	// marshal identically. Report.Cache describes what the cache did.
	Cache *Cache
}

// SynthesisReport is the synthesis half of the Report union.
type SynthesisReport struct {
	// Verdict is "found", "impossible" (space exhausted, no protocol
	// within the bound), or "unknown" (budget exhausted).
	Verdict string `json:"verdict"`
	// Strategy is the formatted protocol when Verdict is "found".
	Strategy string `json:"strategy,omitempty"`
	// Assignments and Configs report search effort.
	Assignments int64 `json:"assignments"`
	Configs     int64 `json:"configs"`
	// Reverification is the explorer's independent check of the found
	// protocol.
	Reverification *ConsensusReport `json:"reverification,omitempty"`
	// StrategyMap is the raw strategy (not marshaled; strategies are
	// keyed by structs).
	StrategyMap Strategy `json:"-"`
}

// Found reports whether a protocol was synthesized.
func (r *SynthesisReport) Found() bool { return r.Verdict == "found" }

// ReportSchema is the version stamped into every Report's "schema"
// field. It names the JSON shape, not the verdict semantics: bump it when
// a field is renamed, retyped, or removed, so consumers (and the golden
// schema test) catch the break instead of silently misreading reports.
const ReportSchema = 1

// ErrBadReport is the sentinel wrapped by DecodeReport validation
// failures: bytes that do not parse as a Report, carry an unknown schema
// version, or name an unknown kind.
var ErrBadReport = errors.New("waitfree: invalid report")

// Report is the JSON-marshalable union returned by Check: exactly one of
// the pipeline fields is populated, discriminated by Kind.
type Report struct {
	// Schema is ReportSchema at marshal time; DecodeReport validates it.
	Schema  int           `json:"schema"`
	Kind    CheckKind     `json:"kind"`
	Elapsed time.Duration `json:"elapsed_ns"`

	// Consensus carries KindConsensus and KindBound results.
	Consensus *ConsensusReport `json:"consensus,omitempty"`
	// Elimination carries KindElimination results.
	Elimination *EliminationReport `json:"elimination,omitempty"`
	// Classifications carries KindClassification results, in zoo order.
	Classifications []*Classification `json:"classifications,omitempty"`
	// Synthesis carries KindSynthesis results.
	Synthesis *SynthesisReport `json:"synthesis,omitempty"`

	// Checkpoint is the resumable frontier of a cancelled KindConsensus or
	// KindBound run, lifted out of the partial consensus report: feed it
	// back through Request.ResumeFrom (the CLIs' -checkpoint flag
	// round-trips it through a JSON file). Completed runs never carry one.
	Checkpoint *Checkpoint `json:"checkpoint,omitempty"`

	// Cache describes what Request.Cache did for this request (nil when
	// no cache was configured). Deliberately excluded from the JSON form:
	// a warm hit must marshal byte-identically to the cold run that
	// stored it.
	Cache *CacheOutcome `json:"-"`
}

// OK reports whether the checked property holds: the consensus
// implementation verified, the elimination output verified, the zoo
// classified with every entry conclusive, or synthesis reached a
// conclusive verdict.
func (r *Report) OK() bool {
	switch r.Kind {
	case KindConsensus, KindBound:
		return r.Consensus != nil && r.Consensus.OK()
	case KindElimination:
		return r.Elimination != nil && r.Elimination.OutputReport != nil && r.Elimination.OutputReport.OK()
	case KindClassification:
		if len(r.Classifications) == 0 {
			return false
		}
		for _, c := range r.Classifications {
			if c.Inconclusive {
				// A truncated witness search is a bounded claim, not a
				// verdict ("stopped early", never "wrong").
				return false
			}
		}
		return true
	case KindSynthesis:
		return r.Synthesis != nil && r.Synthesis.Verdict != "unknown"
	}
	return false
}

// String renders the populated half of the union in its canonical human
// form — the same text the CLIs print without -json.
func (r *Report) String() string {
	var b strings.Builder
	switch {
	case r.Consensus != nil:
		b.WriteString(r.Consensus.String())
	case r.Elimination != nil:
		b.WriteString(r.Elimination.String())
	case len(r.Classifications) > 0:
		for _, c := range r.Classifications {
			b.WriteString(c.String())
			b.WriteByte('\n')
		}
	case r.Synthesis != nil:
		s := r.Synthesis
		fmt.Fprintf(&b, "synthesis verdict: %s (%d assignments, %d configurations)\n",
			s.Verdict, s.Assignments, s.Configs)
		if s.Strategy != "" {
			b.WriteString(s.Strategy)
		}
		if s.Reverification != nil {
			fmt.Fprintf(&b, "independent re-verification: %s\n", s.Reverification.Summary())
		}
	default:
		fmt.Fprintf(&b, "empty %s report", r.Kind)
	}
	return b.String()
}

// Check runs the pipeline selected by req under ctx and returns its
// report. Explicit cancellation stops the underlying engines promptly
// (within one counter-flush period, microseconds in practice) and
// surfaces as ctx.Err(). For KindConsensus, deadline expiry and the soft
// stops in req.Explore (MaxNodes, StallAfter) instead degrade to a
// Consensus report with Partial set, a Coverage block, and a resumable
// Checkpoint — the error is nil (or a *explore.StallError) and
// Report.OK() is false. The other kinds treat partial coverage as
// inconclusive and return an error alongside the partial report. Some
// failures return both a partial report and an error (for example
// KindBound on an incorrect input returns the report carrying the
// counterexample); callers must treat a non-nil error as the verdict.
func Check(ctx context.Context, req Request) (*Report, error) {
	start := time.Now()
	if req.ResumeFrom != nil {
		if req.Kind != KindConsensus && req.Kind != KindBound {
			return nil, fmt.Errorf("%w: ResumeFrom applies to %s and %s checks only",
				ErrBadRequest, KindConsensus, KindBound)
		}
		if req.Explore.ResumeFrom != nil && req.Explore.ResumeFrom != req.ResumeFrom {
			// Silently preferring one frontier would resume from the
			// wrong place; make the caller choose.
			return nil, fmt.Errorf("%w: Request.ResumeFrom and Explore.ResumeFrom are both set and name different checkpoints; set exactly one",
				ErrBadRequest)
		}
		req.Explore.ResumeFrom = req.ResumeFrom
	}
	if req.Explore.ResumeFrom != nil && req.Kind != KindConsensus && req.Kind != KindBound {
		return nil, fmt.Errorf("%w: Explore.ResumeFrom applies to %s and %s checks only",
			ErrBadRequest, KindConsensus, KindBound)
	}
	if req.Cache != nil {
		return checkCached(ctx, req, start)
	}
	rep, err := runPipeline(ctx, req)
	if rep != nil {
		rep.Elapsed = time.Since(start)
	}
	return rep, err
}

// runPipeline dispatches a (validated) request to its pipeline. The
// report is non-nil except on request validation failures.
func runPipeline(ctx context.Context, req Request) (*Report, error) {
	rep := &Report{Schema: ReportSchema, Kind: req.Kind}
	var err error
	switch req.Kind {
	case KindConsensus:
		if req.Implementation == nil {
			return nil, fmt.Errorf("%w: %s requires Implementation", ErrBadRequest, req.Kind)
		}
		k := req.Values
		if k == 0 {
			k = 2
		}
		rep.Consensus, err = explore.ConsensusKContext(ctx, req.Implementation, k, req.Explore)
	case KindBound:
		if req.Implementation == nil {
			return nil, fmt.Errorf("%w: %s requires Implementation", ErrBadRequest, req.Kind)
		}
		rep.Consensus, err = core.BoundContext(ctx, req.Implementation, req.Explore)
	case KindElimination:
		if req.Implementation == nil {
			return nil, fmt.Errorf("%w: %s requires Implementation", ErrBadRequest, req.Kind)
		}
		if req.Substrate != nil {
			rep.Elimination, err = core.EliminateRegistersVia53Context(ctx, req.Implementation, req.Substrate, req.Explore)
		} else {
			maxK := req.MaxK
			if maxK == 0 {
				maxK = 3
			}
			rep.Elimination, err = core.EliminateRegistersContext(ctx, req.Implementation, req.Explore, maxK)
		}
	case KindClassification:
		rep.Classifications, err = hierarchy.ClassifyZooContext(ctx, req.Explore.Parallelism)
	case KindSynthesis:
		if len(req.Objects) == 0 {
			return nil, fmt.Errorf("%w: %s requires Objects", ErrBadRequest, req.Kind)
		}
		rep.Synthesis, err = runSynthesis(ctx, req)
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadRequest, req.Kind)
	}
	if rep.Consensus != nil {
		rep.Checkpoint = rep.Consensus.Checkpoint
	}
	return rep, err
}

// checkCached fronts runPipeline with the content-addressed result cache:
// key the request, serve a stored report on a hit, and store fresh
// conclusive reports on a miss. Any keying failure (uncacheable options,
// an implementation with no bounded canonical encoding) bypasses the
// cache and runs the pipeline normally.
func checkCached(ctx context.Context, req Request, start time.Time) (*Report, error) {
	outcome := &CacheOutcome{}
	key, kerr := rescache.RequestKey(rescache.KeySpec{
		Kind:           string(req.Kind),
		Values:         req.Values,
		MaxK:           req.MaxK,
		Implementation: req.Implementation,
		Substrate:      req.Substrate,
		Objects:        req.Objects,
		Synthesis:      req.Synthesis,
		Explore:        req.Explore,
	})
	if kerr != nil {
		outcome.Uncacheable = true
		outcome.Reason = kerr.Error()
		rep, err := runPipeline(ctx, req)
		if rep != nil {
			rep.Elapsed = time.Since(start)
			rep.Cache = outcome
		}
		return rep, err
	}
	outcome.Key = key.Hex()
	if data, ok := req.Cache.Get(key); ok {
		if rep, err := DecodeReport(data); err == nil && rep.Kind == req.Kind {
			outcome.Hit = true
			outcome.Stats = req.Cache.Stats()
			rep.Cache = outcome
			return rep, nil
		}
		// The entry's bytes verified but don't decode to a current-schema
		// report for this request (a format change across versions): treat
		// as a miss and overwrite below.
	}
	rep, err := runPipeline(ctx, req)
	if rep == nil {
		return nil, err
	}
	// Canonicalize so the report is a pure function of the request: the
	// stored bytes, this cold report, and every future warm hit marshal
	// identically.
	rep.Canonicalize()
	if err == nil && rep.storable() {
		if data, merr := json.Marshal(rep); merr == nil {
			if perr := req.Cache.Put(key, data); perr != nil {
				outcome.StoreErr = perr.Error()
			} else {
				outcome.Stored = true
			}
		}
	}
	outcome.Stats = req.Cache.Stats()
	rep.Cache = outcome
	return rep, err
}

// Canonicalize strips the observational fields that vary between
// otherwise-identical runs — wall-clock Elapsed and the engine Stats
// blocks — so a report becomes a pure function of its request: a cold
// run, a cache hit, and a checkpoint-resumed rerun all marshal
// byte-identically. The result cache and the waitfreed server apply it to
// every report they store or serve.
func (r *Report) Canonicalize() {
	r.Elapsed = 0
	for _, cr := range r.consensusReports() {
		cr.Stats = nil
	}
}

// DecodeReport is the round-trip companion of Report's JSON form: it
// parses data, validates the schema stamp and the kind discriminator, and
// returns the report. Bytes from a different schema version (including
// pre-stamp reports, whose missing field decodes as 0) wrap ErrBadReport,
// so consumers fail loudly instead of misreading a changed shape.
func DecodeReport(data []byte) (*Report, error) {
	rep := &Report{}
	if err := json.Unmarshal(data, rep); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadReport, err)
	}
	if rep.Schema != ReportSchema {
		return nil, fmt.Errorf("%w: schema %d (this library reads %d)", ErrBadReport, rep.Schema, ReportSchema)
	}
	switch rep.Kind {
	case KindConsensus, KindBound, KindElimination, KindClassification, KindSynthesis:
	default:
		return nil, fmt.Errorf("%w: unknown kind %q", ErrBadReport, rep.Kind)
	}
	return rep, nil
}

// consensusReports collects every exploration report embedded in the
// union: the consensus/bound result, the elimination endpoints, and the
// synthesis re-verification.
func (r *Report) consensusReports() []*ConsensusReport {
	var out []*ConsensusReport
	if r.Consensus != nil {
		out = append(out, r.Consensus)
	}
	if r.Elimination != nil {
		if r.Elimination.InputReport != nil {
			out = append(out, r.Elimination.InputReport)
		}
		if r.Elimination.OutputReport != nil {
			out = append(out, r.Elimination.OutputReport)
		}
	}
	if r.Synthesis != nil && r.Synthesis.Reverification != nil {
		out = append(out, r.Synthesis.Reverification)
	}
	return out
}

// storable reports whether the result may enter the cache: only complete,
// exact runs qualify. Partial coverage proves nothing beyond its prefix,
// a Degraded run's counters depend on eviction order, and a checkpoint
// marks unfinished work.
func (r *Report) storable() bool {
	if r.Checkpoint != nil {
		return false
	}
	for _, cr := range r.consensusReports() {
		if cr.Partial || cr.Degraded || cr.Checkpoint != nil {
			return false
		}
	}
	return true
}

// runSynthesis drives the synthesis pipeline: search, then independent
// re-verification of any protocol found. Exhaustion verdicts (no protocol
// within the bound, budget spent) are reported in the Verdict field, not
// as errors.
func runSynthesis(ctx context.Context, req Request) (*SynthesisReport, error) {
	st, stats, err := synth.SearchContext(ctx, req.Objects, req.Synthesis)
	rep := &SynthesisReport{}
	if stats != nil {
		rep.Assignments = stats.Assignments
		rep.Configs = stats.Configs
	}
	switch {
	case errors.Is(err, synth.ErrNoProtocol):
		rep.Verdict = "impossible"
		return rep, nil
	case errors.Is(err, synth.ErrBudget):
		rep.Verdict = "unknown"
		return rep, nil
	case err != nil:
		return rep, err
	}
	rep.Verdict = "found"
	rep.StrategyMap = st
	rep.Strategy = st.Format(req.Objects)
	im := synth.Implementation("synthesized", req.Objects, st, req.Synthesis)
	rep.Reverification, err = explore.ConsensusContext(ctx, im, req.Explore)
	if err != nil {
		return rep, err
	}
	if rep.Reverification.Partial {
		// An incomplete re-verification condemns nothing: report it as
		// inconclusive rather than as a failed protocol.
		return rep, fmt.Errorf("waitfree: synthesized protocol re-verification stopped with partial coverage: %s", rep.Reverification.Summary())
	}
	if !rep.Reverification.OK() {
		return rep, fmt.Errorf("waitfree: synthesized protocol failed re-verification: %s", rep.Reverification.Summary())
	}
	return rep, nil
}
