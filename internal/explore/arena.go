package explore

import (
	"encoding/binary"

	"waitfree/internal/program"
	"waitfree/internal/types"
)

// This file implements the hot path's allocation machinery: dense interned
// access-counter ids, slab arenas for summary records and their counter
// slices, a byte arena for cached configuration-segment encodings, and
// free lists for the per-edge config clones and the summaries that are not
// retained by the memo. Together they take the per-node allocation count
// from ~8 (summary + counter map + three clone slices + key string + map
// growth) to amortized fractions of one: slabs are handed out in large
// chunks, clones and non-retained summaries are recycled immediately after
// their merge, and whole arenas die with the tree instead of feeding the
// GC one node at a time.

// accTable interns accKeys (per-object totals, per-(object, op) counters,
// per-process step counters) into dense int32 ids, replacing the per-node
// map[accKey]int the old summaries carried. Ids are assigned in
// first-encounter order; reports never depend on the order because Result
// conversion maps ids back through keys.
type accTable struct {
	ids  map[accKey]int32
	keys []accKey
}

func newAccTable() *accTable {
	return &accTable{ids: make(map[accKey]int32)}
}

// id interns k, growing the table on first encounter.
func (a *accTable) id(k accKey) int32 {
	id, ok := a.ids[k]
	if !ok {
		id = int32(len(a.keys))
		a.ids[k] = id
		a.keys = append(a.keys, k)
	}
	return id
}

// Slab sizes: summaries are handed out in chunks of up to sumSlab, counter
// slices carved from int32 chunks of up to accSlab, and segment encodings
// from byte chunks of up to segSlab. Chunks start small and double per
// refill — explorers are per-tree, and most trees in a consensus sweep are
// small, so fixed maximal slabs would dominate a small tree's footprint.
// Exhausted chunks are abandoned to the GC
// wholesale when the configs/summaries referencing them die — at the
// latest when the tree completes and the explorer itself is dropped.
const (
	sumSlab = 512
	accSlab = 16 * 1024
	segSlab = 64 * 1024
)

// summaryArena hands out summary records and int32 counter slices from
// slab chunks. The zero value is ready to use.
type summaryArena struct {
	sums     []summary
	acc      []int32
	sumChunk int
	accChunk int
}

func (a *summaryArena) newSummary() *summary {
	if len(a.sums) == 0 {
		n := a.sumChunk * 2
		if n == 0 {
			n = 32
		}
		if n > sumSlab {
			n = sumSlab
		}
		a.sumChunk = n
		a.sums = make([]summary, n)
	}
	s := &a.sums[0]
	a.sums = a.sums[1:]
	return s
}

// allocAcc returns a zeroed int32 slice of length n with no spare
// capacity, so appends by a confused caller can never alias a neighbor.
func (a *summaryArena) allocAcc(n int) []int32 {
	if n == 0 {
		return nil
	}
	if len(a.acc) < n {
		size := a.accChunk * 2
		if size == 0 {
			size = 512
		}
		if size > accSlab {
			size = accSlab
		}
		a.accChunk = size
		if n > size {
			size = n
		}
		a.acc = make([]int32, size)
	}
	out := a.acc[:n:n]
	a.acc = a.acc[n:]
	return out
}

// byteArena hands out immutable byte segments (cached component
// encodings) from slab chunks. The zero value is ready to use.
type byteArena struct {
	buf   []byte
	chunk int
}

// save copies b into the arena and returns the stored copy, capped at its
// own length so later saves never alias it.
func (a *byteArena) save(b []byte) []byte {
	if cap(a.buf)-len(a.buf) < len(b) {
		size := a.chunk * 2
		if size == 0 {
			size = 2 * 1024
		}
		if size > segSlab {
			size = segSlab
		}
		a.chunk = size
		if len(b) > size {
			size = len(b)
		}
		a.buf = make([]byte, 0, size)
	}
	n := len(a.buf)
	a.buf = append(a.buf, b...)
	return a.buf[n:len(a.buf):len(a.buf)]
}

// initAcct builds the dense-id caches on first use: per-process and
// per-object-total ids at fixed positions in lookup slices, per-object
// operation ids interned lazily (opAccID) as expansions encounter them.
func (e *explorer) initAcct() {
	e.acct = newAccTable()
	e.procIDs = make([]int32, e.im.Procs)
	for p := 0; p < e.im.Procs; p++ {
		e.procIDs[p] = e.acct.id(procKey(p))
	}
	e.objIDs = make([]int32, len(e.im.Objects))
	e.opIDs = make([]map[string]int32, len(e.im.Objects))
	for i := range e.im.Objects {
		e.objIDs[i] = e.acct.id(accKey{Obj: i})
		e.opIDs[i] = make(map[string]int32)
	}
}

// opAccID returns the dense id of the (obj, op) counter.
func (e *explorer) opAccID(obj int, op string) int32 {
	m := e.opIDs[obj]
	id, ok := m[op]
	if !ok {
		id = e.acct.id(accKey{Obj: obj, Op: op})
		m[op] = id
	}
	return id
}

// newSummary returns a summary with nodes=1 and a zeroed (possibly nil)
// counter slice, recycled from the free list when one is available.
func (e *explorer) newSummary() *summary {
	if n := len(e.freeSums); n > 0 {
		s := e.freeSums[n-1]
		e.freeSums = e.freeSums[:n-1]
		acc := s.acc
		for i := range acc {
			acc[i] = 0
		}
		*s = summary{nodes: 1, acc: acc}
		return s
	}
	s := e.sums.newSummary()
	s.nodes = 1
	return s
}

// recycleSummary returns a merged child summary to the free list. Callers
// must never recycle a summary the memo retains (put sets retained) — a
// later memo hit would observe the recycled record.
func (e *explorer) recycleSummary(s *summary) {
	if s == nil || s.retained {
		return
	}
	e.freeSums = append(e.freeSums, s)
}

// growAcc widens s.acc to at least need counters (and at least the full
// current table, amortizing regrowth), preserving existing counts.
func (e *explorer) growAcc(s *summary, need int) {
	if n := len(e.acct.keys); need < n {
		need = n
	}
	acc := e.sums.allocAcc(need)
	copy(acc, s.acc)
	s.acc = acc
}

// cloneConfig is the hot-path clone: slice contents are copied into a
// recycled config when one is available, so steady-state cloning allocates
// nothing. Under the flat layout the cached segment encodings are carried
// over (slice headers only — segments are immutable arena bytes).
func (e *explorer) cloneConfig(c *config) *config {
	var d *config
	if n := len(e.freeCfgs); n > 0 {
		d = e.freeCfgs[n-1]
		e.freeCfgs = e.freeCfgs[:n-1]
	} else {
		d = &config{}
	}
	d.objs = append(d.objs[:0], c.objs...)
	d.procs = append(d.procs[:0], c.procs...)
	d.objEnc = append(d.objEnc[:0], c.objEnc...)
	d.procEnc = append(d.procEnc[:0], c.procEnc...)
	return d
}

// recycleConfig returns a fully-merged child config to the free list.
// Configs are strictly stack-scoped (the explorer retains keys, never
// configs), so recycling after the child's subtree completes is safe.
func (e *explorer) recycleConfig(c *config) {
	if e.curConfig == c {
		e.curConfig = nil // keep the panic/heartbeat breadcrumb honest
	}
	e.freeCfgs = append(e.freeCfgs, c)
}

// encodeObjSeg encodes one object state as an immutable arena segment.
func (e *explorer) encodeObjSeg(state any) []byte {
	e.segScratch = e.enc.appendAny(e.segScratch[:0], state)
	return e.segs.save(e.segScratch)
}

// encodeProcSeg encodes one process control state as an immutable arena
// segment.
func (e *explorer) encodeProcSeg(ps *procState) []byte {
	e.segScratch = e.enc.appendProc(e.segScratch[:0], ps)
	return e.segs.save(e.segScratch)
}

// encodeSegments (re)builds every cached segment of c — used once at the
// root; per-edge updates re-encode only the changed components.
func (e *explorer) encodeSegments(c *config) {
	c.objEnc = make([][]byte, len(c.objs))
	for i := range c.objs {
		c.objEnc[i] = e.encodeObjSeg(c.objs[i])
	}
	c.procEnc = make([][]byte, len(c.procs))
	for p := range c.procs {
		c.procEnc[p] = e.encodeProcSeg(&c.procs[p])
	}
}

// cachedTrans is one outcome of an object access with the successor
// state's flat segment encoded exactly once, when the transition first
// enters the cache. Cached slices and segments are shared across every
// edge that replays the transition and are never mutated.
type cachedTrans struct {
	next    any
	resp    types.Response
	nextEnc []byte
}

// applyCached is Spec.Apply behind the flat-path transition cache: the
// cache key reuses the object's already-encoded state segment, so a hit —
// the overwhelmingly common case, since reachable (state, port, inv)
// triples are few (bounded by one component's state count, not the
// configuration count) — costs one map probe and zero allocations,
// skipping the user Step function, its per-call []Transition, and the
// successor-segment encodings. Soundness rests on the same contracts the
// memoizer already assumes: Spec.Step is pure and segment encoding is
// injective. Errors are not cached (they abort the run).
func (e *explorer) applyCached(c *config, p int, act program.Action) ([]cachedTrans, error) {
	decl := &e.im.Objects[act.Obj]
	port := decl.Port(p)
	b := e.transScratch[:0]
	b = binary.AppendVarint(b, int64(act.Obj))
	b = append(b, c.objEnc[act.Obj]...)
	b = binary.AppendVarint(b, int64(port))
	b = appendInvocation(b, act.Inv)
	e.transScratch = b
	if ts, ok := e.transCache[string(b)]; ok {
		return ts, nil
	}
	ts, err := decl.Spec.Apply(c.objs[act.Obj], port, act.Inv)
	if err != nil {
		return nil, err
	}
	cts := make([]cachedTrans, len(ts))
	for i, t := range ts {
		cts[i] = cachedTrans{next: t.Next, resp: t.Resp, nextEnc: e.encodeObjSeg(t.Next)}
	}
	if e.transCache == nil {
		e.transCache = make(map[string][]cachedTrans)
	}
	e.transCache[string(b)] = cts
	return cts, nil
}

// procStep is a cached startNextOp outcome: the stepping process's
// resulting state, its flat segment (encoded once), and the target
// responses the advance completed (replayed into e.responses on a hit,
// mirroring endOp; the caller's respMark undo then rewinds them as usual).
type procStep struct {
	ps    procState
	enc   []byte
	resps []types.Response
}

// stepProcCached advances process p of c over a completed access with
// response resp, through the step cache. The key is p plus p's
// already-encoded pre-state segment plus resp — by the machine contract
// (deterministic, comparable states) that determines the entire advance,
// including any chain of zero-access operations it completes. forced marks
// that the caller set Stepped on the clone (CrashBeforeFirstStep), which
// the stale pre-state segment does not reflect. Only usable under Memoize
// (segments exist, RecordHistory is excluded by Validate). Errors are not
// cached.
func (e *explorer) stepProcCached(c *config, p int, resp types.Response, forced bool) error {
	b := e.stepScratch[:0]
	b = binary.AppendVarint(b, int64(p))
	if forced {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = append(b, c.procEnc[p]...)
	b = appendResponse(b, resp)
	e.stepScratch = b
	if st, ok := e.stepCache[string(b)]; ok {
		c.procs[p] = st.ps
		c.procEnc[p] = st.enc
		e.responses[p] = append(e.responses[p], st.resps...)
		return nil
	}
	mark := len(e.responses[p])
	if err := e.startNextOp(c, p, resp); err != nil {
		return err
	}
	enc := e.encodeProcSeg(&c.procs[p])
	c.procEnc[p] = enc
	st := procStep{ps: c.procs[p], enc: enc}
	if n := len(e.responses[p]) - mark; n > 0 {
		st.resps = append([]types.Response(nil), e.responses[p][mark:]...)
	}
	if e.stepCache == nil {
		e.stepCache = make(map[string]procStep)
	}
	e.stepCache[string(b)] = st
	return nil
}

// flatKey assembles c's memo key from its cached segments into the
// encoder's reused buffer: byte-identical to configKey's layout
// (object segments, separator, process segments), but without re-walking
// any unchanged component. The returned slice is invalidated by the next
// flatKey/configKey call.
func (e *explorer) flatKey(c *config) []byte {
	b := e.enc.buf[:0]
	for _, s := range c.objEnc {
		b = append(b, s...)
	}
	b = append(b, tagSep)
	for _, s := range c.procEnc {
		b = append(b, s...)
	}
	e.enc.buf = b
	return b
}
