package explore

import (
	"errors"
	"fmt"
	"strings"

	"waitfree/internal/program"
	"waitfree/internal/types"
)

// This file renders the Section 4.2 execution trees as Graphviz DOT, so
// the objects the paper reasons about — roots, branching per process,
// leaves with decisions — can be looked at. Intended for small protocols;
// rendering stops at a node budget.

// ErrDotBudget reports a tree larger than the rendering budget.
var ErrDotBudget = errors.New("explore: execution tree exceeds the DOT node budget")

// Dot renders the execution tree of im under the given scripts as a DOT
// digraph with at most maxNodes nodes. Leaves are double circles labeled
// with the processes' final responses; edges are labeled proc:inv->resp.
func Dot(im *program.Implementation, scripts [][]types.Invocation, opts Options, maxNodes int) (string, error) {
	if err := im.Validate(); err != nil {
		return "", err
	}
	if len(scripts) != im.Procs {
		return "", fmt.Errorf("%w: %d scripts for %d processes", ErrBadScripts, len(scripts), im.Procs)
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	e := &explorer{im: im, scripts: scripts, opts: opts}
	e.responses = make([][]types.Response, im.Procs)
	for p := range e.responses {
		e.responses[p] = make([]types.Response, 0, 4)
	}
	root := &config{objs: im.InitialStates(), procs: make([]procState, im.Procs)}
	for p := 0; p < im.Procs; p++ {
		root.procs[p] = procState{Mem: nil}
		if err := e.startNextOp(root, p, types.Response{}); err != nil {
			return "", err
		}
	}

	var b strings.Builder
	b.WriteString("digraph executiontree {\n")
	b.WriteString("  rankdir=TB;\n  node [shape=circle, fontsize=10];\n")
	d := &dotBuilder{e: e, b: &b, budget: maxNodes}
	if _, err := d.walk(root, 0); err != nil {
		return "", err
	}
	b.WriteString("}\n")
	return b.String(), nil
}

type dotBuilder struct {
	e      *explorer
	b      *strings.Builder
	nextID int
	budget int
}

func (d *dotBuilder) walk(c *config, depth int) (int, error) {
	if d.nextID >= d.budget {
		return 0, fmt.Errorf("%w: more than %d nodes", ErrDotBudget, d.budget)
	}
	id := d.nextID
	d.nextID++

	allDone := true
	for p := range c.procs {
		if !c.procs[p].Done {
			allDone = false
			break
		}
	}
	if allDone {
		labels := make([]string, len(c.procs))
		for p := range c.procs {
			labels[p] = fmt.Sprintf("p%d:%v", p, c.procs[p].Resp)
		}
		fmt.Fprintf(d.b, "  n%d [shape=doublecircle, label=\"%s\"];\n",
			id, strings.Join(labels, "\\n"))
		return id, nil
	}
	fmt.Fprintf(d.b, "  n%d [label=\"%s\"];\n", id, dotStateLabel(c))

	for p := range c.procs {
		if c.procs[p].Done {
			continue
		}
		act := c.procs[p].Pending
		decl := &d.e.im.Objects[act.Obj]
		ts, err := decl.Spec.Apply(c.objs[act.Obj], decl.Port(p), act.Inv)
		if err != nil {
			return 0, err
		}
		for _, t := range ts {
			child := c.clone()
			child.objs[act.Obj] = t.Next
			if err := d.e.startNextOp(child, p, t.Resp); err != nil {
				return 0, err
			}
			childID, err := d.walk(child, depth+1)
			if err != nil {
				return 0, err
			}
			fmt.Fprintf(d.b, "  n%d -> n%d [label=\"p%d:%s.%v→%v\"];\n",
				id, childID, p, decl.Name, act.Inv, t.Resp)
		}
	}
	return id, nil
}

// dotStateLabel renders the object states compactly.
func dotStateLabel(c *config) string {
	parts := make([]string, len(c.objs))
	for i, s := range c.objs {
		parts[i] = types.StateKey(s)
	}
	return strings.Join(parts, ",")
}
