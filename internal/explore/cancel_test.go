package explore

import (
	"context"
	"errors"
	"runtime"
	"testing"
	"time"

	"waitfree/internal/consensus"
	"waitfree/internal/types"
)

// proposalScripts builds one single-Propose script per process.
func proposalScripts(proposals []int) [][]types.Invocation {
	scripts := make([][]types.Invocation, len(proposals))
	for p, v := range proposals {
		scripts[p] = []types.Invocation{types.Propose(v)}
	}
	return scripts
}

// waitForGoroutines polls until the goroutine count drops back to at most
// base, failing the test if it does not within two seconds. Exploration
// workers and the progress ticker must all be joined by the time
// ConsensusKContext returns, so any surplus is a leak.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if runtime.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d running, want <= %d", runtime.NumGoroutine(), base)
}

// TestConsensusCancellation cancels a long exploration from its own
// progress callback and checks the cancellation contract: the engine
// returns context.Canceled promptly (within one counter-flush, far under a
// progress tick), every worker goroutine exits, and the final Stats
// snapshot — published after the workers stop — is internally consistent.
func TestConsensusCancellation(t *testing.T) {
	im := consensus.CASRegister3() // ~200ms sequential: plenty of mid-tree surface
	for _, workers := range []int{1, 4} {
		base := runtime.NumGoroutine()
		ctx, cancel := context.WithCancel(context.Background())
		defer cancel()
		var last Stats
		var cancelled time.Time
		opts := Options{
			Parallelism:      workers,
			ProgressInterval: time.Millisecond,
			OnProgress: func(s Stats) {
				// Called from the single ticker goroutine; the final
				// snapshot is published before ConsensusKContext returns,
				// so the main goroutine reads `last` happens-after.
				last = s
				if cancelled.IsZero() {
					cancelled = time.Now()
					cancel()
				}
			},
		}
		rep, err := ConsensusContext(ctx, im, opts)
		returned := time.Now()
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("workers=%d: err = %v, want context.Canceled", workers, err)
		}
		// A cancelled run returns a partial report carrying ONLY the
		// resumable checkpoint and the engine stats — never verdicts.
		if rep == nil || rep.Checkpoint == nil {
			t.Fatalf("workers=%d: cancelled run returned no checkpoint (rep=%v)", workers, rep)
		}
		if rep.Roots != 0 || rep.Agreement || rep.Validity || rep.WaitFree {
			t.Errorf("workers=%d: partial report carries verdict fields: %s", workers, rep.Summary())
		}
		if cp := rep.Checkpoint; cp.Impl != im.Name || cp.Remaining() <= 0 {
			t.Errorf("workers=%d: checkpoint %v inconsistent for a mid-run cancel", workers, cp)
		}
		if lat := returned.Sub(cancelled); lat > 500*time.Millisecond {
			t.Errorf("workers=%d: cancel-to-return latency %v", workers, lat)
		}
		waitForGoroutines(t, base)

		// Partial-progress consistency of the final snapshot.
		if last.Nodes == 0 {
			t.Errorf("workers=%d: final snapshot has no nodes", workers)
		}
		if last.Leaves > last.Nodes {
			t.Errorf("workers=%d: leaves %d > nodes %d", workers, last.Leaves, last.Nodes)
		}
		var sum int64
		for _, n := range last.WorkerNodes {
			sum += n
		}
		if sum != last.Nodes {
			t.Errorf("workers=%d: per-worker nodes sum %d != total %d", workers, sum, last.Nodes)
		}
		if last.TreesDone > last.TreesTotal {
			t.Errorf("workers=%d: trees done %d > total %d", workers, last.TreesDone, last.TreesTotal)
		}
		if last.Elapsed <= 0 {
			t.Errorf("workers=%d: non-positive elapsed %v", workers, last.Elapsed)
		}
	}
}

// TestConsensusPreCancelled checks the degenerate case: an already-dead
// context returns before any worker explores a tree.
func TestConsensusPreCancelled(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := ConsensusContext(ctx, consensus.TAS2(), Options{}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestConsensusDeadline checks the partial-coverage contract for wall-clock
// budgets: deadline expiry mid-run is NOT an error — it degrades to a
// report with Partial set, a Coverage block naming the deadline, and a
// resumable checkpoint (explicit cancellation stays the hard error path,
// see TestConsensusCancellation).
func TestConsensusDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 2*time.Millisecond)
	defer cancel()
	rep, err := ConsensusContext(ctx, consensus.CASRegister3(), Options{})
	if err != nil {
		t.Fatalf("err = %v, want nil (deadline degrades to a partial report)", err)
	}
	if rep == nil || !rep.Partial {
		t.Fatalf("report = %+v, want Partial", rep)
	}
	if rep.OK() {
		t.Errorf("partial report claims OK: %s", rep.Summary())
	}
	if rep.Coverage == nil || rep.Coverage.Reason != CoverageDeadline {
		t.Fatalf("coverage = %+v, want reason %q", rep.Coverage, CoverageDeadline)
	}
	if rep.Coverage.TreesDone >= rep.Coverage.TreesTotal {
		t.Errorf("coverage %v claims all trees done on a 2ms budget", rep.Coverage)
	}
	if rep.Checkpoint == nil {
		t.Fatal("partial report carries no checkpoint")
	}
	if got, want := rep.Checkpoint.Impl, consensus.CASRegister3().Name; got != want {
		t.Errorf("checkpoint impl = %q, want %q", got, want)
	}
}

// TestRunContextCancellation covers the single-tree entry point Run shares
// with Consensus: cancellation mid-DFS unwinds cleanly (no gray-mark
// leaks; see TestErrorPathClearsGrayMarks for the error-path analogue).
func TestRunContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	im := consensus.TAS2()
	scripts := proposalScripts([]int{0, 1})
	if _, err := RunContext(ctx, im, scripts, Options{Memoize: true}); !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
}

// TestOptionsValidate pins the up-front rejection of option combinations
// that previously failed deep inside the engine (or silently misbehaved).
func TestOptionsValidate(t *testing.T) {
	cases := []struct {
		name string
		opts Options
		bad  bool
	}{
		{"zero", Options{}, false},
		{"memoize", Options{Memoize: true}, false},
		{"history", Options{RecordHistory: true}, false},
		{"memoize+history", Options{Memoize: true, RecordHistory: true}, true},
		{"negative depth", Options{MaxDepth: -1}, true},
		{"negative parallelism", Options{Parallelism: -2}, true},
		{"negative interval", Options{ProgressInterval: -time.Second}, true},
		{"negative max nodes", Options{MaxNodes: -1}, true},
		{"negative stall after", Options{StallAfter: -time.Second}, true},
		{"negative checkpoint every", Options{CheckpointEvery: -time.Second}, true},
		{"checkpoint every without sink", Options{CheckpointEvery: time.Second}, true},
		{"checkpoint every with sink", Options{CheckpointEvery: time.Second, OnCheckpoint: func(*Checkpoint) {}}, false},
		{"budgets", Options{MaxNodes: 10, StallAfter: time.Second}, false},
	}
	for _, c := range cases {
		err := c.opts.Validate()
		if got := err != nil; got != c.bad {
			t.Errorf("%s: Validate() = %v, want bad=%v", c.name, err, c.bad)
		}
		if err != nil && !errors.Is(err, ErrBadOptions) {
			t.Errorf("%s: error %v does not wrap ErrBadOptions", c.name, err)
		}
	}
	// The engine entry points must report the same sentinel.
	im := consensus.TAS2()
	if _, err := Consensus(im, Options{MaxDepth: -1}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Consensus: err = %v, want ErrBadOptions", err)
	}
	scripts := proposalScripts([]int{0, 1})
	if _, err := Run(im, scripts, Options{Memoize: true, RecordHistory: true}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Run: err = %v, want ErrBadOptions", err)
	}
}
