package explore

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sort"
	"strings"
	"sync"
	"sync/atomic"

	"waitfree/internal/faults"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// ConsensusReport is the verdict of exhaustively checking a consensus
// implementation over all proposal vectors (the paper's 2^n trees) and all
// interleavings and nondeterministic resolutions within each tree. The
// struct is the single source of truth for both renderings of a check:
// String() is the human form the CLIs print, and the JSON field tags are
// the machine form behind the CLIs' -json flag and waitfree.Check.
type ConsensusReport struct {
	Procs int `json:"procs"`
	Roots int `json:"roots"`

	// Agreement: in every execution all processes decide the same value.
	Agreement bool `json:"agreement"`
	// Validity: every decided value was proposed by some process.
	Validity bool `json:"validity"`
	// WaitFree: no execution exceeded the step budget or cycled.
	WaitFree bool `json:"wait_free"`

	// Depth is the maximum number of object accesses over all executions
	// of all trees: the uniform bound D of Section 4.2.
	Depth int `json:"depth"`
	// MaxAccess[o] and OpAccess[o][op] are per-object access bounds over
	// all executions of all trees (Section 4.2's r_b and w_b, computed
	// exactly per object and operation).
	MaxAccess []int            `json:"max_access"`
	OpAccess  []map[string]int `json:"op_access"`
	// ProcSteps[p] bounds process p's own steps over all executions — the
	// per-process form of wait-freedom.
	ProcSteps []int `json:"proc_steps"`

	Nodes    int64 `json:"nodes"`
	Leaves   int64 `json:"leaves"`
	MemoHits int64 `json:"memo_hits"`

	// Objects names the implementing objects, index-aligned with
	// MaxAccess/OpAccess, so the report renders without the implementation.
	Objects []string `json:"objects,omitempty"`

	// Decisions lists the values decided in at least one execution.
	Decisions []int `json:"decisions"`

	// Violation describes the first failure, with the proposal vector of
	// the offending tree; nil if the implementation is correct.
	Violation *Violation `json:"violation,omitempty"`
	// ViolationProposals is the proposal vector of the violating tree.
	ViolationProposals []int `json:"violation_proposals,omitempty"`

	// Faults echoes the fault model the check ran under (nil when fault
	// exploration was disabled). When set, every verdict above also covers
	// each enumerated crash schedule: survivors decided, agreed, and
	// decided validly in every execution with up to MaxCrashes crashes.
	Faults *faults.Model `json:"faults,omitempty"`

	// Degraded reports that at least one tree's memo table hit
	// Options.MemoBudget and evicted entries; verdicts and bounds are
	// still exact, MemoHits undercounts.
	Degraded bool `json:"degraded,omitempty"`

	// Partial reports that the run stopped early under a soft budget
	// (Options.MaxNodes), a context deadline, or the stall watchdog,
	// without reaching a verdict: the verdict fields cover only the merged
	// prefix (Coverage.TreesMerged trees) and OK() is false. Partial runs
	// carry a Checkpoint to resume from. A run whose merged prefix already
	// exhibits a violation is conclusive and is NOT marked partial — a
	// counterexample refutes the implementation no matter what was left
	// unexplored.
	Partial bool `json:"partial,omitempty"`
	// Coverage describes how far a partial run got; nil on complete runs.
	Coverage *Coverage `json:"coverage,omitempty"`

	// Checkpoint is the resumable frontier snapshot of an unfinished run:
	// set alongside ctx.Err() when the run was cancelled, and on every
	// Partial report. Completed runs never carry one.
	Checkpoint *Checkpoint `json:"checkpoint,omitempty"`

	// Stats is the engine's final cumulative snapshot: observational
	// counters that may exceed Nodes/Leaves/MemoHits when a violation cut
	// the deterministic merge short of speculatively explored trees.
	Stats *Stats `json:"stats,omitempty"`
}

// OK reports whether the implementation passed all checks. A Partial
// report never passes: its verdicts cover only the merged prefix.
func (r *ConsensusReport) OK() bool {
	return !r.Partial && r.Agreement && r.Validity && r.WaitFree
}

// Summary renders a one-line verdict.
func (r *ConsensusReport) Summary() string {
	status := "OK"
	switch {
	case r.Partial:
		status = "PARTIAL"
	case !r.OK():
		status = "FAIL"
	}
	s := fmt.Sprintf("%s: procs=%d roots=%d D=%d nodes=%d leaves=%d agreement=%v validity=%v waitfree=%v",
		status, r.Procs, r.Roots, r.Depth, r.Nodes, r.Leaves, r.Agreement, r.Validity, r.WaitFree)
	if r.Faults != nil {
		s += fmt.Sprintf(" faults=[%v]", *r.Faults)
	}
	if r.Degraded {
		s += " degraded=true"
	}
	if r.Coverage != nil {
		s += fmt.Sprintf(" trees=%d/%d", r.Coverage.TreesDone, r.Coverage.TreesTotal)
	}
	return s
}

// objectName returns the display name of object o.
func (r *ConsensusReport) objectName(o int) string {
	if o < len(r.Objects) && r.Objects[o] != "" {
		return r.Objects[o]
	}
	return fmt.Sprintf("obj%d", o)
}

// String renders the full human-readable report: the summary line, the
// reachable decisions, the per-process wait-freedom bounds, the Section
// 4.2 per-object access bounds, and the counterexample schedule if the
// check failed.
func (r *ConsensusReport) String() string {
	var b strings.Builder
	b.WriteString(r.Summary())
	b.WriteByte('\n')
	if r.Coverage != nil {
		b.WriteString(r.Coverage.String())
		b.WriteByte('\n')
	}
	fmt.Fprintf(&b, "decisions reachable: %v\n", r.Decisions)
	fmt.Fprintf(&b, "per-process wait-freedom bounds (own steps): %v\n", r.ProcSteps)
	b.WriteString("per-object access bounds over all executions (Section 4.2):\n")
	for o := range r.MaxAccess {
		ops := r.OpAccess[o]
		keys := make([]string, 0, len(ops))
		for op := range ops {
			keys = append(keys, op)
		}
		sort.Strings(keys)
		fmt.Fprintf(&b, "  %-10s total<=%d", r.objectName(o), r.MaxAccess[o])
		for _, op := range keys {
			fmt.Fprintf(&b, "  %s<=%d", op, ops[op])
		}
		b.WriteByte('\n')
	}
	if r.Violation != nil {
		fmt.Fprintf(&b, "counterexample (proposals %v):\n%s\n", r.ViolationProposals, FormatSchedule(r.Violation.Schedule))
		fmt.Fprintf(&b, "detail: %s\n", r.Violation.Detail)
	}
	return b.String()
}

// ProposalVector decodes bit p of mask as process p's proposal.
func ProposalVector(mask, procs int) []int {
	return ProposalVectorK(mask, procs, 2)
}

// ProposalVectorK decodes base-k digit p of mask as process p's proposal.
func ProposalVectorK(mask, procs, k int) []int {
	vec := make([]int, procs)
	for p := 0; p < procs; p++ {
		vec[p] = mask % k
		mask /= k
	}
	return vec
}

// Consensus explores every execution of im from every binary proposal
// vector and checks agreement, validity, and wait-freedom. Options.OnLeaf
// and RecordHistory are reserved for the checker and must be unset.
// Options.Parallelism fans the independent trees across workers.
func Consensus(im *program.Implementation, opts Options) (*ConsensusReport, error) {
	return ConsensusKContext(context.Background(), im, 2, opts)
}

// ConsensusContext is Consensus under a context (see ConsensusKContext).
func ConsensusContext(ctx context.Context, im *program.Implementation, opts Options) (*ConsensusReport, error) {
	return ConsensusKContext(ctx, im, 2, opts)
}

// ConsensusK is the k-valued generalization of Consensus: processes may
// propose any value in 0..k-1, giving k^n execution trees.
func ConsensusK(im *program.Implementation, k int, opts Options) (*ConsensusReport, error) {
	return ConsensusKContext(context.Background(), im, k, opts)
}

// treeOutcome is one proposal-vector tree's exploration, kept per mask so
// the merge can replay sequential order regardless of completion order.
type treeOutcome struct {
	res     *Result
	decided map[int]bool
	err     error
}

// consensusScripts builds the one-Propose-per-process scripts of a
// proposal vector.
func consensusScripts(proposals []int) [][]types.Invocation {
	scripts := make([][]types.Invocation, len(proposals))
	for p, v := range proposals {
		scripts[p] = []types.Invocation{types.Propose(v)}
	}
	return scripts
}

// exploreTree explores the single execution tree rooted at the proposal
// vector of mask. Each tree gets its own decided set and (under Memoize)
// its own memo table: a table shared across arbitrary trees would be
// unsound, because memo hits skip the per-leaf agreement/validity checks,
// and validity depends on the tree's proposal vector. Trees in one
// process-permutation orbit are the exception — for them the symmetry
// layer skips exploration entirely and replays the representative's
// outcome (see symmetry.go).
func exploreTree(ctx context.Context, im *program.Implementation, k, mask int, opts Options, ctr *counters, widx int) treeOutcome {
	proposals := ProposalVectorK(mask, im.Procs, k)
	scripts := consensusScripts(proposals)
	decided := make(map[int]bool)
	treeOpts := opts
	treeOpts.OnLeaf = func(l *Leaf) error {
		return checkConsensusLeaf(l, proposals, decided)
	}
	res, err := runTree(ctx, im, scripts, treeOpts, ctr, widx)
	return treeOutcome{res: res, decided: decided, err: err}
}

// ConsensusKContext runs the k-valued check under a context. The trees are
// independent, so they are fanned across min(Options.Parallelism, k^n)
// workers; outcomes are merged in proposal-vector order, which makes the
// report a pure function of the implementation — identical at every
// parallelism level, including the Nodes/Leaves/MemoHits accounting.
//
// Under Options.Symmetry the unit of work becomes the process-permutation
// orbit: one representative tree is explored per orbit and the member
// trees replay its outcome, so the engine performs up to n! times less
// work while the merged report stays byte-identical (see symmetry.go).
//
// Cancellation stops every worker within flushEvery configurations and
// returns ctx.Err() alongside a resumable partial report (Checkpoint and
// Stats only — the Ctrl-C contract). Deadline expiry, Options.MaxNodes,
// and the Options.StallAfter watchdog instead degrade to a
// ConsensusReport with Partial set, a Coverage block, and a resumable
// Checkpoint; the error is nil for deadline and budget stops and a
// *StallError for watchdog stops. Options.CheckpointEvery/OnCheckpoint
// autosave the same checkpoint periodically while the run is in flight.
// If Options.OnProgress is set, one final Stats snapshot is published
// before returning, carrying the partial engine totals.
func ConsensusKContext(ctx context.Context, im *program.Implementation, k int, opts Options) (*ConsensusReport, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.OnLeaf != nil || opts.RecordHistory {
		return nil, fmt.Errorf("%w: Consensus drives OnLeaf and histories internally", ErrBadOptions)
	}
	if k < 2 {
		return nil, fmt.Errorf("%w: need at least 2 proposal values, got %d", ErrBadScripts, k)
	}
	report := &ConsensusReport{
		Procs:     im.Procs,
		Agreement: true,
		Validity:  true,
		WaitFree:  true,
		MaxAccess: make([]int, len(im.Objects)),
		OpAccess:  make([]map[string]int, len(im.Objects)),
		ProcSteps: make([]int, im.Procs),
		Objects:   make([]string, len(im.Objects)),
	}
	for i := range report.OpAccess {
		report.OpAccess[i] = make(map[string]int)
		report.Objects[i] = im.Objects[i].Name
	}

	if opts.Faults.Enabled() {
		model := opts.Faults
		report.Faults = &model
	}

	roots := 1
	for p := 0; p < im.Procs; p++ {
		roots *= k
	}
	workers := opts.Parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > roots {
		workers = roots
	}

	// Symmetry reduction: partition the masks into process-permutation
	// orbits and explore one representative per orbit. With symmetry off
	// (or inapplicable) every mask is its own singleton orbit and the
	// worker loop below degenerates to plain per-mask distribution.
	orbits, reduced, err := planOrbits(im, k, roots, opts)
	if err != nil {
		return nil, err
	}

	ctr := newCounters(workers, roots)
	if reduced {
		ctr.orbitsTotal = len(orbits)
	}

	// Resume: trees recorded in the checkpoint are preloaded and never
	// re-explored; the merge below cannot tell them from live outcomes, so
	// a resumed run reaches the same report as an uninterrupted one.
	// Checkpoints are symmetry-agnostic: a reduced run consumes unreduced
	// checkpoints (and vice versa), and an orbit with any preloaded member
	// replays the rest from it instead of exploring its representative.
	// done[mask] flags outcomes that are complete and safe to read from
	// other goroutines: workers store it (atomically, after writing the
	// outcome) so the autosave supervisor and the partial-coverage merge
	// can snapshot mid-run without racing.
	outcomes := make([]treeOutcome, roots)
	preloaded := make([]bool, roots)
	done := make([]atomic.Bool, roots)
	if opts.ResumeFrom != nil {
		if err := opts.ResumeFrom.validateFor(im, k, roots, opts.Faults); err != nil {
			return nil, err
		}
		for i := range opts.ResumeFrom.Trees {
			tr := &opts.ResumeFrom.Trees[i]
			outcomes[tr.Mask] = tr.outcome()
			preloaded[tr.Mask] = true
			done[tr.Mask].Store(true)
		}
		ctr.treesDone.Add(int64(len(opts.ResumeFrom.Trees)))
	}

	// The engine's internal run context: soft stops (node budget, stall
	// watchdog) cancel runCtx without touching the caller's ctx, so the
	// post-join dispatch can tell the caller's hard cancellation (resumable
	// error, the Ctrl-C contract) from the engine's own soft stops
	// (partial-coverage report, nil error).
	runCtx, softStop := context.WithCancel(ctx)
	defer softStop()
	ctr.maxNodes = opts.MaxNodes
	ctr.captureKeys = opts.StallAfter > 0
	ctr.softCancel = softStop

	stopProgress := startProgress(opts, ctr)

	var next atomic.Int64 // work distribution: orbits claimed in representative-mask order
	var stop atomic.Int64 // lowest mask whose tree errored or violated
	stop.Store(int64(roots))
	lowerStop := func(mask int) {
		for {
			cur := stop.Load()
			if int64(mask) >= cur || stop.CompareAndSwap(cur, int64(mask)) {
				return
			}
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(widx int) {
			defer wg.Done()
			defer ctr.claimBeat(widx, -1)
			for {
				if runCtx.Err() != nil {
					return
				}
				idx := int(next.Add(1) - 1)
				// Representatives strictly above the lowest known-bad mask
				// can never be merged (the merge stops there, as a
				// sequential scan would); skipping them only sheds work,
				// never results, because stop only decreases.
				if idx >= len(orbits) || int64(orbits[idx].rep) > stop.Load() {
					return
				}
				ob := &orbits[idx]
				ctr.claimBeat(widx, ob.rep)
				// The orbit's source outcome: the preloaded representative
				// if the resume checkpoint has it, else any preloaded
				// member, else a live exploration of the representative.
				var src *treeOutcome
				var srcPerm []int // source's role map onto the representative (nil = it IS the representative)
				if preloaded[ob.rep] {
					src = &outcomes[ob.rep]
				} else {
					for i := range ob.members {
						if preloaded[ob.members[i].mask] {
							src, srcPerm = &outcomes[ob.members[i].mask], ob.members[i].perm
							break
						}
					}
				}
				if src == nil {
					out := exploreTree(runCtx, im, k, ob.rep, opts, ctr, widx)
					outcomes[ob.rep] = out
					done[ob.rep].Store(true)
					ctr.treesDone.Add(1)
					if out.err != nil || out.res.Violation != nil {
						lowerStop(ob.rep)
					}
					src = &outcomes[ob.rep]
				} else if !preloaded[ob.rep] {
					// The representative itself replays from a preloaded
					// member (checkpointed trees are always clean).
					outcomes[ob.rep] = replayOutcome(src, srcPerm, nil)
					done[ob.rep].Store(true)
					ctr.treesDone.Add(1)
					ctr.replayedTrees.Add(1)
					src, srcPerm = &outcomes[ob.rep], nil
				}
				// Members replay only from a clean source: a violating or
				// erred representative caps the merge at its own mask, so
				// members — all strictly above it, the representative being
				// the orbit minimum — could never be merged, exactly as an
				// unreduced run sheds the masks above its first bad one.
				if src.err == nil && src.res.Violation == nil {
					for i := range ob.members {
						m := &ob.members[i]
						if preloaded[m.mask] {
							continue
						}
						outcomes[m.mask] = replayOutcome(src, srcPerm, m.perm)
						done[m.mask].Store(true)
						ctr.treesDone.Add(1)
						ctr.replayedTrees.Add(1)
					}
				}
				ctr.orbitsDone.Add(1)
			}
		}(w)
	}
	wgDone := make(chan struct{})
	go func() {
		wg.Wait()
		close(wgDone)
	}()
	snapshotCP := func() *Checkpoint {
		return buildCheckpoint(im, k, roots, opts.Faults, outcomes, done)
	}
	sup := startSupervisor(opts, ctr, im, k, snapshotCP, wgDone)
	if sup != nil {
		// A worker stuck inside user code never polls the context: the
		// watchdog closes abandon after its grace period so the run can
		// still report (the stuck goroutine reclaims itself if the user
		// code ever returns).
		select {
		case <-wgDone:
		case <-sup.abandon:
		}
		sup.stop()
	} else {
		<-wgDone
	}
	stopProgress()

	if err := ctx.Err(); errors.Is(err, context.Canceled) {
		// Hard cancellation (the Ctrl-C contract): snapshot the frontier so
		// the caller can resume. The partial report carries ONLY the
		// checkpoint and the engine stats; no verdict fields are meaningful
		// on it.
		stats := ctr.snapshot()
		partial := &ConsensusReport{
			Procs:      im.Procs,
			Checkpoint: snapshotCP(),
			Stats:      &stats,
		}
		return partial, err
	}

	var stallErr *StallError
	if sup != nil {
		stallErr = sup.stallErr()
	}
	reason := ""
	switch {
	case ctx.Err() != nil: // deadline expiry: degrade, don't error
		reason = CoverageDeadline
	case ctr.tripReason.Load() == tripStall:
		reason = CoverageStall
	case ctr.tripReason.Load() == tripNodeBudget:
		reason = CoverageNodeBudget
	}

	if reason == "" {
		// Merge in mask order, exactly as the sequential scan would have:
		// all trees up to and including the first bad one contribute to the
		// report; later trees (possibly explored speculatively) are
		// dropped.
		last := roots - 1
		if bad := int(stop.Load()); bad < roots {
			last = bad
		}
		if err := mergeTrees(report, outcomes, last, im, k); err != nil {
			return nil, err
		}
		stats := ctr.snapshot()
		report.Stats = &stats
		return report, nil
	}

	// Soft stop: merge the contiguous prefix of cleanly finished trees and
	// degrade to a partial-coverage report instead of erroring, mirroring
	// the Degraded memo-budget contract. Trees aborted by the soft
	// cancellation itself are unfinished, not failed; a genuinely erred
	// tree inside the prefix still surfaces as an error, and a violation
	// inside the prefix makes the run conclusive.
	prefix := 0
	for prefix < roots && done[prefix].Load() && !abortedOutcome(&outcomes[prefix]) {
		prefix++
	}
	if err := mergeTrees(report, outcomes, prefix-1, im, k); err != nil {
		return nil, err
	}
	stats := ctr.snapshot()
	report.Stats = &stats
	if report.Violation != nil || prefix == roots {
		// Conclusive despite the early stop: a counterexample in the merged
		// prefix refutes the implementation no matter what was left
		// unexplored, and a full prefix IS the complete run (the stop
		// tripped after the last tree finished).
		if stallErr != nil {
			return report, stallErr
		}
		return report, nil
	}
	report.Partial = true
	report.Coverage = &Coverage{
		Reason:          reason,
		TreesDone:       int(ctr.treesDone.Load()),
		TreesTotal:      roots,
		TreesMerged:     prefix,
		Nodes:           ctr.nodes.Load(),
		DeepestFrontier: int(ctr.maxDepth.Load()),
	}
	report.Checkpoint = snapshotCP()
	if stallErr != nil {
		return report, stallErr
	}
	return report, nil
}

// abortedOutcome reports whether a tree's error is the run's own
// cancellation unwinding (an unfinished tree), as opposed to a genuine
// exploration failure.
func abortedOutcome(out *treeOutcome) bool {
	return out.err != nil &&
		(errors.Is(out.err, context.Canceled) || errors.Is(out.err, context.DeadlineExceeded))
}

// mergeTrees folds outcomes[0..last] into report in mask order — exactly
// the scan a sequential run performs — stopping at the first violating
// tree and classifying its violation. The error of an erred tree is
// returned wrapped with the tree's proposal vector.
func mergeTrees(report *ConsensusReport, outcomes []treeOutcome, last int, im *program.Implementation, k int) error {
	decided := make(map[int]bool)
	for mask := 0; mask <= last; mask++ {
		out := &outcomes[mask]
		report.Roots++
		if out.err != nil {
			return fmt.Errorf("proposals %v: %w", ProposalVectorK(mask, im.Procs, k), out.err)
		}
		mergeResult(report, out.res)
		for v := range out.decided {
			decided[v] = true
		}
		if out.res.Violation != nil {
			report.Violation = out.res.Violation
			report.ViolationProposals = ProposalVectorK(mask, im.Procs, k)
			switch out.res.Violation.Kind {
			case KindDepthExceeded, KindCycle, KindBlockedBySurvivorStarvation,
				KindBlockedByRecoveryDivergence:
				report.WaitFree = false
			case KindLeafReject, KindInvalidAfterCrash, KindDecisionChangedAfterRecovery:
				// checkConsensusLeaf prefixes the failed property.
				if isValidityDetail(out.res.Violation.Detail) {
					report.Validity = false
				} else {
					report.Agreement = false
				}
			}
			break
		}
	}
	for v := range decided {
		report.Decisions = append(report.Decisions, v)
	}
	sort.Ints(report.Decisions)
	return nil
}

// checkConsensusLeaf checks one completed execution: every surviving
// process decided, all survivors agree, and the decision was proposed.
// Crashed processes (fault exploration) are exempt — they need not decide,
// and their proposals still count for validity, matching crash-stop
// consensus.
func checkConsensusLeaf(l *Leaf, proposals []int, decided map[int]bool) error {
	var first types.Response
	firstProc := -1
	for p, resps := range l.Responses {
		if l.Crashed != nil && l.Crashed[p] {
			continue
		}
		if len(resps) == 0 {
			return fmt.Errorf("agreement: process %d produced no response", p)
		}
		r := resps[len(resps)-1]
		if r.Label != types.LabelVal {
			return fmt.Errorf("agreement: process %d answered %v, not a value", p, r)
		}
		if firstProc < 0 {
			first, firstProc = r, p
		} else if r != first {
			return fmt.Errorf("agreement: process %d decided %v but process %d decided %v", firstProc, first, p, r)
		}
	}
	if firstProc < 0 {
		// Every process crashed; nothing was decided and nothing to check.
		return nil
	}
	valid := false
	for _, v := range proposals {
		if first.Val == v {
			valid = true
			break
		}
	}
	if !valid {
		return fmt.Errorf("validity: decided %d, proposals %v", first.Val, proposals)
	}
	decided[first.Val] = true
	return nil
}

func isValidityDetail(detail string) bool {
	return len(detail) >= len("validity") && detail[:len("validity")] == "validity"
}

func mergeResult(report *ConsensusReport, res *Result) {
	report.Nodes += res.Nodes
	report.Leaves += res.Leaves
	report.MemoHits += res.MemoHits
	if res.Depth > report.Depth {
		report.Depth = res.Depth
	}
	for o, v := range res.MaxAccess {
		if v > report.MaxAccess[o] {
			report.MaxAccess[o] = v
		}
	}
	for o, ops := range res.OpAccess {
		for op, v := range ops {
			if v > report.OpAccess[o][op] {
				report.OpAccess[o][op] = v
			}
		}
	}
	for p, v := range res.ProcSteps {
		if v > report.ProcSteps[p] {
			report.ProcSteps[p] = v
		}
	}
	if res.Degraded {
		report.Degraded = true
	}
}
