package explore

import (
	"encoding/base64"
	"encoding/binary"
	"os"

	"waitfree/internal/envelope"
)

// This file implements the memo table's disk-spill tier (Options.
// MemoSpillDir): instead of forgetting an evicted summary, the table
// serializes it into a per-record checksummed durable envelope appended to
// a spill file, remembers the record's offset, and serves it back on a
// later lookup. A budgeted run with a spill tier therefore scores exactly
// the memo hits of an unbounded run — the budget trades memory for disk —
// and never sets the Degraded flag.
//
// Each spilled entry is written as an independent durable envelope
// (internal/durable line format, magic spillMagic, record kind "sum") at a
// known offset, so a single entry can be read back and integrity-checked
// without touching the rest of the file. Envelope payloads must be
// newline-free; memo keys and summary encodings are arbitrary bytes, so
// both are base64-encoded (the key as the header — verified on load
// against the requested key — and the summary as the single record).
//
// The spill file is private to one memo table (one execution tree),
// created lazily in MemoSpillDir on the first eviction and deleted when
// the table is released at tree completion. Any I/O or integrity failure
// marks the spill broken: subsequent evictions degrade exactly as if no
// spill tier were configured, and loads miss. The exploration never fails
// because of the spill tier; it only loses hits.

const (
	spillMagic = "waitfree-memospill-v1"
	spillKind  = "sum"
)

// spillRef locates one entry's envelope within the spill file.
type spillRef struct {
	off int64
	len int
}

// memoSpill is the disk tier behind a memoTable. It inherits the table's
// synchronization: the explorer drives put/get/evict from one goroutine
// per tree, and the memoTable never calls into the spill concurrently with
// itself from a single exploration. (The concurrent hammer test exercises
// the resident tiers only.)
type memoSpill struct {
	dir    string
	f      *os.File
	index  map[string]spillRef
	off    int64
	broken bool
}

func newMemoSpill(dir string) *memoSpill {
	return &memoSpill{dir: dir, index: make(map[string]spillRef)}
}

// store appends sum's envelope to the spill file, creating it on first
// use. It reports whether the entry is durably spilled; false marks the
// spill broken and the caller degrades.
func (sp *memoSpill) store(key string, sum *summary) bool {
	if sp.broken {
		return false
	}
	if sp.f == nil {
		f, err := os.CreateTemp(sp.dir, "memospill-*.wfspill")
		if err != nil {
			sp.broken = true
			return false
		}
		sp.f = f
	}
	block := encodeSpillRecord(key, sum)
	n, err := sp.f.WriteAt(block, sp.off)
	if err != nil || n != len(block) {
		sp.broken = true
		return false
	}
	sp.index[key] = spillRef{off: sp.off, len: len(block)}
	sp.off += int64(len(block))
	return true
}

// load reads the entry spilled under key back into a fresh summary,
// verifying the envelope checksums and the stored key. A missing index
// entry is an ordinary miss; a failed read or integrity check marks the
// spill broken and misses.
func (sp *memoSpill) load(key []byte) (*summary, bool) {
	if sp.broken || sp.f == nil {
		return nil, false
	}
	ref, ok := sp.index[string(key)]
	if !ok {
		return nil, false
	}
	buf := make([]byte, ref.len)
	if _, err := sp.f.ReadAt(buf, ref.off); err != nil {
		sp.broken = true
		return nil, false
	}
	sum, ok := decodeSpillRecord(key, buf)
	if !ok {
		sp.broken = true
		return nil, false
	}
	return sum, true
}

// close deletes the spill file (the tier is a cache private to one tree;
// nothing in it outlives the exploration).
func (sp *memoSpill) close() {
	if sp.f == nil {
		return
	}
	name := sp.f.Name()
	sp.f.Close()
	os.Remove(name)
	sp.f = nil
	sp.index = nil
}

// ---- record codec ----

// encodeSummary renders a summary's aggregate fields (never the transient
// ref/spilled bookkeeping) as varints: height, nodes, leaves, len(acc),
// acc values.
func encodeSummary(sum *summary) []byte {
	b := make([]byte, 0, 16+5*len(sum.acc))
	b = binary.AppendVarint(b, int64(sum.height))
	b = binary.AppendVarint(b, sum.nodes)
	b = binary.AppendVarint(b, sum.leaves)
	b = binary.AppendUvarint(b, uint64(len(sum.acc)))
	for _, v := range sum.acc {
		b = binary.AppendVarint(b, int64(v))
	}
	return b
}

func decodeSummary(b []byte) (*summary, bool) {
	sum := &summary{}
	h, n := binary.Varint(b)
	if n <= 0 {
		return nil, false
	}
	b = b[n:]
	sum.height = int(h)
	if sum.nodes, n = binary.Varint(b); n <= 0 {
		return nil, false
	}
	b = b[n:]
	if sum.leaves, n = binary.Varint(b); n <= 0 {
		return nil, false
	}
	b = b[n:]
	cnt, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, false
	}
	b = b[n:]
	if cnt > 0 {
		sum.acc = make([]int32, cnt)
		for i := range sum.acc {
			v, n := binary.Varint(b)
			if n <= 0 {
				return nil, false
			}
			b = b[n:]
			sum.acc[i] = int32(v)
		}
	}
	return sum, len(b) == 0
}

func encodeSpillRecord(key string, sum *summary) []byte {
	hdr := base64.StdEncoding.AppendEncode(nil, []byte(key))
	payload := base64.StdEncoding.AppendEncode(nil, encodeSummary(sum))
	return envelope.Encode(spillMagic, spillKind, hdr, [][]byte{payload})
}

func decodeSpillRecord(key, block []byte) (*summary, bool) {
	hdr, recs, err := envelope.Decode(spillMagic, spillKind, block)
	if err != nil || len(recs) != 1 {
		return nil, false
	}
	gotKey, err := base64.StdEncoding.AppendDecode(nil, hdr)
	if err != nil || string(gotKey) != string(key) {
		return nil, false
	}
	raw, err := base64.StdEncoding.AppendDecode(nil, recs[0])
	if err != nil {
		return nil, false
	}
	return decodeSummary(raw)
}
