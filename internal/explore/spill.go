package explore

import (
	"context"
	"encoding/base64"
	"encoding/binary"
	"io"

	"waitfree/internal/envelope"
	"waitfree/internal/fsx"
)

// This file implements the memo table's disk-spill tier (Options.
// MemoSpillDir): instead of forgetting an evicted summary, the table
// serializes it into a per-record checksummed durable envelope appended to
// a spill file, remembers the record's offset, and serves it back on a
// later lookup. A budgeted run with a spill tier therefore scores exactly
// the memo hits of an unbounded run — the budget trades memory for disk —
// and never sets the Degraded flag.
//
// Each spilled entry is written as an independent durable envelope
// (internal/durable line format, magic spillMagic, record kind "sum") at a
// known offset, so a single entry can be read back and integrity-checked
// without touching the rest of the file. Envelope payloads must be
// newline-free; memo keys and summary encodings are arbitrary bytes, so
// both are base64-encoded (the key as the header — verified on load
// against the requested key — and the summary as the single record).
//
// The spill file is private to one memo table (one execution tree),
// created lazily in MemoSpillDir on the first eviction and deleted when
// the table is released at tree completion — or the moment the tier
// breaks, so a long-lived daemon never litters the spill dir. Failures
// walk the unified degradation ladder instead of wedging the tier:
// transient I/O errors are retried under fsx.DefaultRetry; a write or
// read the retries cannot absorb buys one rebuild (fresh file, cleared
// index — already-spilled entries are lost, so the run degrades, but the
// tier keeps spilling); a failure after the rebuild breaks the tier for
// the rest of the tree. A per-record integrity failure is confined to
// that record: the entry is dropped (its hit is lost) and every other
// spilled entry keeps serving. The exploration never fails because of the
// spill tier; it only loses hits, and `lost` reports honestly when it
// has.

const (
	spillMagic = "waitfree-memospill-v1"
	spillKind  = "sum"
)

// spillRef locates one entry's envelope within the spill file.
type spillRef struct {
	off int64
	len int
}

// memoSpill is the disk tier behind a memoTable. It inherits the table's
// synchronization: the explorer drives put/get/evict from one goroutine
// per tree, and the memoTable never calls into the spill concurrently with
// itself from a single exploration. (The concurrent hammer test exercises
// the resident tiers only.)
type memoSpill struct {
	dir   string
	fsys  fsx.FS
	f     fsx.File
	index map[string]spillRef
	off   int64

	broken  bool // tier dead for the rest of the tree
	rebuilt bool // the one allowed rebuild has been spent
	lost    bool // at least one spilled entry's hit is gone: run degrades

	// Ladder telemetry, aggregated into the engine counters at tree
	// completion.
	retries  int64
	rebuilds int64
}

func newMemoSpill(dir string, fsys fsx.FS) *memoSpill {
	return &memoSpill{dir: dir, fsys: fsx.Or(fsys), index: make(map[string]spillRef)}
}

// policy is the unified retry policy with the spill's retry counter hung
// on it. The spill inherits the memo table's single-goroutine discipline,
// so the counter is a plain int64.
func (sp *memoSpill) policy() fsx.RetryPolicy {
	return fsx.DefaultRetry.WithObserver(func(error) { sp.retries++ })
}

// writeBlock writes block at the current append offset (creating the
// spill file on first use), retrying transient faults. It does not
// advance the offset; the caller records the ref on success.
func (sp *memoSpill) writeBlock(block []byte) error {
	return sp.policy().Do(context.Background(), func() error {
		if sp.f == nil {
			f, err := sp.fsys.CreateTemp(sp.dir, "memospill-*.wfspill")
			if err != nil {
				return err
			}
			sp.f = f
		}
		n, err := sp.f.WriteAt(block, sp.off)
		if err == nil && n != len(block) {
			err = io.ErrShortWrite
		}
		return err
	})
}

// store appends sum's envelope to the spill file. It reports whether the
// entry is durably spilled; on false the caller degrades for this entry.
// An unabsorbed write failure buys one rebuild before breaking the tier.
func (sp *memoSpill) store(key string, sum *summary) bool {
	if sp.broken {
		return false
	}
	block := encodeSpillRecord(key, sum)
	if sp.writeBlock(block) != nil {
		if !sp.rebuild() || sp.writeBlock(block) != nil {
			sp.breakTier()
			return false
		}
	}
	sp.index[key] = spillRef{off: sp.off, len: len(block)}
	sp.off += int64(len(block))
	return true
}

// load reads the entry spilled under key back into a fresh summary,
// verifying the envelope checksums and the stored key. A missing index
// entry is an ordinary miss. A read the retries cannot absorb walks the
// same rebuild-then-break ladder as store; an integrity failure is
// confined to the one record — it is dropped (a lost hit) and the rest of
// the spill keeps serving.
func (sp *memoSpill) load(key []byte) (*summary, bool) {
	if sp.broken || sp.f == nil {
		return nil, false
	}
	ref, ok := sp.index[string(key)]
	if !ok {
		return nil, false
	}
	buf := make([]byte, ref.len)
	err := sp.policy().Do(context.Background(), func() error {
		_, rerr := sp.f.ReadAt(buf, ref.off)
		return rerr
	})
	if err != nil {
		if !sp.rebuild() {
			sp.breakTier()
		}
		return nil, false
	}
	sum, ok := decodeSpillRecord(key, buf)
	if !ok {
		delete(sp.index, string(key))
		sp.lost = true
		return nil, false
	}
	return sum, true
}

// rebuild discards the (unwritable or unreadable) spill file and starts a
// fresh one, once per tree. Entries already spilled are lost — the run
// degrades — but the tier keeps absorbing future evictions.
func (sp *memoSpill) rebuild() bool {
	if sp.rebuilt {
		return false
	}
	sp.rebuilt = true
	sp.rebuilds++
	sp.removeFile()
	if len(sp.index) > 0 {
		sp.lost = true
	}
	sp.index = make(map[string]spillRef)
	sp.off = 0
	return true
}

// breakTier retires the spill for the rest of the tree: subsequent
// evictions degrade exactly as if no spill were configured, and the file
// is removed immediately so a long-lived process does not leak it.
func (sp *memoSpill) breakTier() {
	sp.broken = true
	sp.lost = true
	sp.removeFile()
	sp.index = nil
}

// removeFile closes and deletes the spill file, if one exists.
func (sp *memoSpill) removeFile() {
	if sp.f == nil {
		return
	}
	name := sp.f.Name()
	sp.f.Close()
	sp.fsys.Remove(name)
	sp.f = nil
}

// close deletes the spill file (the tier is a cache private to one tree;
// nothing in it outlives the exploration).
func (sp *memoSpill) close() {
	sp.removeFile()
	sp.index = nil
}

// ---- record codec ----

// encodeSummary renders a summary's aggregate fields (never the transient
// ref/spilled bookkeeping) as varints: height, nodes, leaves, len(acc),
// acc values.
func encodeSummary(sum *summary) []byte {
	b := make([]byte, 0, 16+5*len(sum.acc))
	b = binary.AppendVarint(b, int64(sum.height))
	b = binary.AppendVarint(b, sum.nodes)
	b = binary.AppendVarint(b, sum.leaves)
	b = binary.AppendUvarint(b, uint64(len(sum.acc)))
	for _, v := range sum.acc {
		b = binary.AppendVarint(b, int64(v))
	}
	return b
}

func decodeSummary(b []byte) (*summary, bool) {
	sum := &summary{}
	h, n := binary.Varint(b)
	if n <= 0 {
		return nil, false
	}
	b = b[n:]
	sum.height = int(h)
	if sum.nodes, n = binary.Varint(b); n <= 0 {
		return nil, false
	}
	b = b[n:]
	if sum.leaves, n = binary.Varint(b); n <= 0 {
		return nil, false
	}
	b = b[n:]
	cnt, n := binary.Uvarint(b)
	if n <= 0 {
		return nil, false
	}
	b = b[n:]
	if cnt > 0 {
		sum.acc = make([]int32, cnt)
		for i := range sum.acc {
			v, n := binary.Varint(b)
			if n <= 0 {
				return nil, false
			}
			b = b[n:]
			sum.acc[i] = int32(v)
		}
	}
	return sum, len(b) == 0
}

func encodeSpillRecord(key string, sum *summary) []byte {
	hdr := base64.StdEncoding.AppendEncode(nil, []byte(key))
	payload := base64.StdEncoding.AppendEncode(nil, encodeSummary(sum))
	return envelope.Encode(spillMagic, spillKind, hdr, [][]byte{payload})
}

func decodeSpillRecord(key, block []byte) (*summary, bool) {
	hdr, recs, err := envelope.Decode(spillMagic, spillKind, block)
	if err != nil || len(recs) != 1 {
		return nil, false
	}
	gotKey, err := base64.StdEncoding.AppendDecode(nil, hdr)
	if err != nil || string(gotKey) != string(key) {
		return nil, false
	}
	raw, err := base64.StdEncoding.AppendDecode(nil, recs[0])
	if err != nil {
		return nil, false
	}
	return decodeSummary(raw)
}
