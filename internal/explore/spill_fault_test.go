package explore

import (
	"os"
	"syscall"
	"testing"

	"waitfree/internal/fsx"
)

// countSpillFiles reports how many spill files live in dir.
func countSpillFiles(t *testing.T, dir string) int {
	t.Helper()
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	return len(entries)
}

// A transient write or read fault is absorbed by the unified retry
// policy: the entry round-trips, nothing is lost, no rebuild is spent.
func TestSpillTransientFaultsAbsorbed(t *testing.T) {
	dir := t.TempDir()
	ff := fsx.NewFaultFS(nil, 1,
		fsx.Rule{Op: fsx.OpWriteAt, Nth: 1, Count: 1, Err: syscall.EIO},
		fsx.Rule{Op: fsx.OpReadAt, Nth: 1, Count: 1, Err: syscall.EIO},
	)
	sp := newMemoSpill(dir, ff)
	defer sp.close()

	sum := &summary{height: 2, nodes: 9, leaves: 3, acc: []int32{1, 2}}
	if !sp.store("key", sum) {
		t.Fatal("store failed under a transient write fault")
	}
	got, ok := sp.load([]byte("key"))
	if !ok || got.nodes != sum.nodes {
		t.Fatalf("load under a transient read fault = %+v, %v", got, ok)
	}
	if sp.lost || sp.rebuilt || sp.broken {
		t.Fatalf("transient faults moved the ladder: lost=%v rebuilt=%v broken=%v",
			sp.lost, sp.rebuilt, sp.broken)
	}
	if sp.retries != 2 {
		t.Fatalf("retries = %d, want 2", sp.retries)
	}
}

// A write failure the retries cannot absorb buys exactly one rebuild:
// the fresh file keeps spilling, previously spilled entries are lost (the
// run degrades honestly), and the dead file does not survive on disk.
func TestSpillRebuildAfterUnabsorbedWriteFault(t *testing.T) {
	dir := t.TempDir()
	// The second store's write fails through the whole retry schedule
	// (WriteAt occurrences 2..1+Attempts), then the rebuild's fresh file
	// takes the write.
	ff := fsx.NewFaultFS(nil, 1,
		fsx.Rule{Op: fsx.OpWriteAt, Nth: 2, Count: int(fsx.DefaultRetry.Attempts), Err: syscall.EIO})
	sp := newMemoSpill(dir, ff)
	defer sp.close()
	sum := &summary{nodes: 5}
	if !sp.store("early", sum) {
		t.Fatal("clean store failed")
	}
	if !sp.store("late", sum) {
		t.Fatal("store did not survive via rebuild")
	}
	if !sp.rebuilt || sp.rebuilds != 1 {
		t.Fatalf("rebuilt=%v rebuilds=%d, want one rebuild", sp.rebuilt, sp.rebuilds)
	}
	if !sp.lost {
		t.Fatal("rebuild dropped spilled entries without flagging the run")
	}
	if sp.broken {
		t.Fatal("rebuild broke the tier")
	}
	if _, ok := sp.load([]byte("early")); ok {
		t.Fatal("pre-rebuild entry served from a discarded file")
	}
	if got, ok := sp.load([]byte("late")); !ok || got.nodes != sum.nodes {
		t.Fatalf("post-rebuild entry lost: %+v, %v", got, ok)
	}
	if n := countSpillFiles(t, dir); n != 1 {
		t.Fatalf("%d spill files on disk after rebuild, want 1", n)
	}
}

// A rebuild on an empty spill is invisible to the run: nothing was
// spilled yet, so nothing is lost and the run must not degrade.
func TestSpillRebuildOnEmptyTierDoesNotDegrade(t *testing.T) {
	dir := t.TempDir()
	ff := fsx.NewFaultFS(nil, 1,
		fsx.Rule{Op: fsx.OpWriteAt, Nth: 1, Count: int(fsx.DefaultRetry.Attempts), Err: syscall.EIO})
	sp := newMemoSpill(dir, ff)
	defer sp.close()
	sum := &summary{nodes: 7}
	if !sp.store("first", sum) {
		t.Fatal("first store did not survive via rebuild")
	}
	if !sp.rebuilt {
		t.Fatal("unabsorbed fault did not spend the rebuild")
	}
	if sp.lost {
		t.Fatal("rebuild of an empty tier flagged lost entries")
	}
	if got, ok := sp.load([]byte("first")); !ok || got.nodes != sum.nodes {
		t.Fatalf("entry lost across empty rebuild: %+v, %v", got, ok)
	}
}

// When the rebuild fails too, the tier breaks: stores degrade like an
// unconfigured spill, and the file is removed the moment the tier dies —
// a long-lived daemon must not leak memospill-*.wfspill files.
func TestSpillBreakRemovesFileImmediately(t *testing.T) {
	dir := t.TempDir()
	ff := fsx.NewFaultFS(nil, 1,
		fsx.Rule{Op: fsx.OpWriteAt, Nth: 1, Count: -1, Err: syscall.EIO})
	sp := newMemoSpill(dir, ff)
	sum := &summary{nodes: 3}
	if sp.store("doomed", sum) {
		t.Fatal("store reported success on a dead disk")
	}
	if !sp.broken || !sp.lost {
		t.Fatalf("persistent write faults did not break the tier: broken=%v lost=%v",
			sp.broken, sp.lost)
	}
	if n := countSpillFiles(t, dir); n != 0 {
		t.Fatalf("broken tier leaked %d spill files", n)
	}
	// The dead tier answers like no spill at all, without touching disk.
	if sp.store("more", sum) {
		t.Fatal("broken tier accepted a store")
	}
	if _, ok := sp.load([]byte("doomed")); ok {
		t.Fatal("broken tier served a hit")
	}
}

// close removes the spill file at tree completion even when everything
// was healthy — the other half of the no-leak contract.
func TestSpillCloseRemovesFile(t *testing.T) {
	dir := t.TempDir()
	sp := newMemoSpill(dir, nil)
	if !sp.store("k", &summary{nodes: 1}) {
		t.Fatal("store failed")
	}
	if n := countSpillFiles(t, dir); n != 1 {
		t.Fatalf("%d spill files while live, want 1", n)
	}
	sp.close()
	if n := countSpillFiles(t, dir); n != 0 {
		t.Fatalf("close leaked %d spill files", n)
	}
}

// Every op class the spill tier performs walks the ladder instead of
// wedging: under persistent faults on any one class, store/load never
// serve corrupt data, the tier ends in a lawful state, and a broken tier
// never leaves a file behind.
func TestSpillEveryOpClassFaultSweep(t *testing.T) {
	for _, op := range []fsx.Op{
		fsx.OpCreateTemp, fsx.OpWriteAt, fsx.OpReadAt, fsx.OpClose, fsx.OpRemove,
	} {
		t.Run(string(op), func(t *testing.T) {
			dir := t.TempDir()
			ff := fsx.NewFaultFS(nil, 1, fsx.Rule{Op: op, Nth: 1, Count: -1, Err: syscall.EIO})
			sp := newMemoSpill(dir, ff)
			sum := &summary{height: 1, nodes: 4, leaves: 2, acc: []int32{0, 1}}
			stored := sp.store("key", sum)
			if got, ok := sp.load([]byte("key")); ok {
				if !stored {
					t.Fatal("load hit an entry store reported un-spilled")
				}
				if got.nodes != sum.nodes || got.height != sum.height {
					t.Fatalf("faulted %s served a corrupt summary: %+v", op, got)
				}
			} else if stored && !sp.lost && !sp.broken {
				t.Fatalf("stored entry missed without the run degrading")
			}
			sp.close()
			// Whatever the ladder decided, nothing may leak. A faulted
			// Remove can strand the file on the real disk — tolerate only
			// that op class.
			if n := countSpillFiles(t, dir); n != 0 && op != fsx.OpRemove {
				t.Fatalf("faulted %s leaked %d spill files", op, n)
			}
		})
	}
}
