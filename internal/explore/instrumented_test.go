package explore

import (
	"sync"
	"testing"
	"time"

	"waitfree/internal/consensus"
)

// TestInstrumentedParity is the acceptance gate for the engine
// instrumentation: turning on OnProgress (at an aggressive tick, so the
// ticker races the exploration as hard as it can) must not change a single
// semantic report field at any parallelism level. Verdict, Depth, Nodes,
// Leaves, and MemoHits are compared against an uninstrumented baseline —
// the same values PR 1 pinned for the corpus.
// TestProgressSnapshotRetention pins the documented ownership contract of
// Stats.WorkerNodes: every snapshot owns a freshly allocated slice, so an
// OnProgress callback may retain it and read it from another goroutine
// while the engine keeps flushing counters. Run under -race (CI does) this
// fails if a snapshot ever aliases live engine state; run normally it
// still verifies retained snapshots are never mutated after publication.
func TestProgressSnapshotRetention(t *testing.T) {
	var mu sync.Mutex
	var retained [][]int64
	var frozen [][]int64
	done := make(chan struct{})
	reader := make(chan struct{})
	go func() {
		defer close(reader)
		for {
			mu.Lock()
			for _, ws := range retained {
				for i := range ws {
					_ = ws[i] // races with counter flushes if snapshot aliased them
				}
			}
			mu.Unlock()
			select {
			case <-done:
				return
			default:
			}
		}
	}()
	opts := Options{
		Parallelism:      4,
		ProgressInterval: time.Microsecond,
		OnProgress: func(s Stats) {
			mu.Lock()
			retained = append(retained, s.WorkerNodes)
			frozen = append(frozen, append([]int64(nil), s.WorkerNodes...))
			mu.Unlock()
		},
	}
	if _, err := Consensus(consensus.CAS(3), opts); err != nil {
		t.Fatal(err)
	}
	close(done)
	<-reader
	if len(retained) == 0 {
		t.Fatal("no progress snapshots published")
	}
	for i := range retained {
		for w := range retained[i] {
			if retained[i][w] != frozen[i][w] {
				t.Fatalf("snapshot %d worker %d mutated after publication: %d != %d",
					i, w, retained[i][w], frozen[i][w])
			}
		}
	}
}

func TestInstrumentedParity(t *testing.T) {
	for _, im := range consensus.Corpus() {
		for _, memoize := range []bool{false, true} {
			base, baseErr := Consensus(im, Options{Memoize: memoize})
			for _, workers := range []int{1, 2, 4} {
				opts := Options{
					Memoize:          memoize,
					Parallelism:      workers,
					ProgressInterval: time.Millisecond,
					OnProgress:       func(Stats) {},
				}
				got, err := Consensus(im, opts)
				if (baseErr == nil) != (err == nil) {
					t.Fatalf("%s memoize=%v workers=%d: error mismatch: %v vs %v",
						im.Name, memoize, workers, baseErr, err)
				}
				if baseErr != nil {
					continue
				}
				if got.OK() != base.OK() {
					t.Errorf("%s memoize=%v workers=%d: verdict %v, want %v",
						im.Name, memoize, workers, got.OK(), base.OK())
				}
				if got.Depth != base.Depth || got.Nodes != base.Nodes ||
					got.Leaves != base.Leaves || got.MemoHits != base.MemoHits {
					t.Errorf("%s memoize=%v workers=%d: counters (D=%d N=%d L=%d M=%d), want (D=%d N=%d L=%d M=%d)",
						im.Name, memoize, workers,
						got.Depth, got.Nodes, got.Leaves, got.MemoHits,
						base.Depth, base.Nodes, base.Leaves, base.MemoHits)
				}
				// The engine snapshot counts visited configurations. That is
				// not comparable to the merged Nodes in general — memo hits
				// splice cached subtree totals into the report, and violating
				// runs cut trees from the merge — so only its internal
				// consistency is checked here.
				if got.Stats == nil {
					t.Fatalf("%s memoize=%v workers=%d: no Stats on instrumented run", im.Name, memoize, workers)
				}
				if got.Stats.Nodes == 0 {
					t.Errorf("%s memoize=%v workers=%d: empty engine snapshot", im.Name, memoize, workers)
				}
				// Violating runs shed trees above the first bad mask, so the
				// done==total invariant only holds on verified runs.
				if base.OK() && got.Stats.TreesDone != got.Stats.TreesTotal {
					t.Errorf("%s memoize=%v workers=%d: completed run finished %d of %d trees",
						im.Name, memoize, workers, got.Stats.TreesDone, got.Stats.TreesTotal)
				}
			}
		}
	}
}
