package explore

import (
	"reflect"
	"testing"

	"waitfree/internal/consensus"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// stripStats clears the observational engine snapshot before a deep-equal
// comparison: Stats carries wall-clock and per-worker load figures that
// legitimately differ between runs, while every other report field is a
// pure function of the implementation.
func stripStats(r *ConsensusReport) *ConsensusReport {
	if r != nil {
		r.Stats = nil
	}
	return r
}

// TestConsensusParallelMatchesSequential is the parity guarantee of
// Options.Parallelism: on every corpus protocol — correct or violating,
// memoized or not — the parallel report must be deep-equal to the
// sequential one, including the Nodes/Leaves/MemoHits accounting (per-tree
// memo tables make the counts a pure function of the implementation).
func TestConsensusParallelMatchesSequential(t *testing.T) {
	for _, im := range consensus.Corpus() {
		for _, memoize := range []bool{false, true} {
			seq, seqErr := Consensus(im, Options{Memoize: memoize, Parallelism: 1})
			stripStats(seq)
			for _, workers := range []int{0, 2, 4} {
				par, parErr := Consensus(im, Options{Memoize: memoize, Parallelism: workers})
				stripStats(par)
				if (seqErr == nil) != (parErr == nil) {
					t.Fatalf("%s memoize=%v workers=%d: error mismatch: %v vs %v",
						im.Name, memoize, workers, seqErr, parErr)
				}
				if seqErr != nil {
					continue
				}
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("%s memoize=%v workers=%d: report mismatch\nseq: %+v\npar: %+v",
						im.Name, memoize, workers, seq, par)
				}
			}
		}
	}
}

// TestConsensusKParallelMatchesSequential covers the multi-valued trees
// (k^n roots) the binary test misses.
func TestConsensusKParallelMatchesSequential(t *testing.T) {
	im := consensus.CAS(2)
	seq, err := ConsensusK(im, 3, Options{Memoize: true, Parallelism: 1})
	if err != nil {
		t.Fatal(err)
	}
	par, err := ConsensusK(im, 3, Options{Memoize: true, Parallelism: 3})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripStats(seq), stripStats(par)) {
		t.Errorf("k=3 report mismatch\nseq: %+v\npar: %+v", seq, par)
	}
}

// faultyAfterTAS accesses its test-and-set once, then issues an invocation
// the spec rejects, making Spec.Apply fail mid-exploration.
var faultyAfterTAS = program.FuncMachine{
	StartFn: func(inv types.Invocation, _ any) any { return 0 },
	NextFn: func(state any, resp types.Response) (program.Action, any) {
		if state.(int) == 0 {
			return program.InvokeAction(0, types.TAS), 1
		}
		return program.InvokeAction(0, types.Invocation{Op: "bogus"}), 2
	},
}

func faultyImpl() *program.Implementation {
	return &program.Implementation{
		Name:  "faulty",
		Procs: 2,
		Objects: []program.ObjectDecl{
			{Name: "t", Spec: types.TestAndSet(2), Init: 0, PortOf: []int{1, 2}},
		},
		Machines: []program.Machine{faultyAfterTAS, faultyAfterTAS},
	}
}

// TestErrorPathClearsGrayMarks is the regression test for the on-stack
// memo-mark leak: when Spec.Apply fails deep in the tree, the error
// unwinds the whole DFS stack, and every ancestor must remove its gray
// mark on the way out. (A surviving mark would make any later exploration
// that reuses the table report a phantom cycle.)
func TestErrorPathClearsGrayMarks(t *testing.T) {
	im := faultyImpl()
	scripts := [][]types.Invocation{
		{types.Propose(0)},
		{types.Propose(1)},
	}
	e, root, err := newExplorer(im, scripts, Options{Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := e.explore(root); err == nil {
		t.Fatal("faulty implementation explored without error")
	}
	if gray := e.memo.grayKeys(); len(gray) != 0 {
		t.Errorf("%d gray marks survived the error unwind", len(gray))
	}
}
