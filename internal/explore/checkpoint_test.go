package explore

import (
	"context"
	"encoding/json"
	"errors"
	"reflect"
	"testing"
	"time"

	"waitfree/internal/consensus"
	"waitfree/internal/faults"
)

// cancelMidRun runs a consensus check sequentially and cancels it from the
// progress callback as soon as at least one tree (but not all) is done,
// returning the checkpoint of the partial report. CASRegister3 explores 8
// trees at ~25ms each, so a 1ms tick reliably lands mid-run.
func cancelMidRun(t *testing.T, opts Options) *Checkpoint {
	t.Helper()
	im := consensus.CASRegister3()
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	opts.Parallelism = 1
	opts.ProgressInterval = time.Millisecond
	opts.OnProgress = func(s Stats) {
		if s.TreesDone >= 1 {
			cancel()
		}
	}
	rep, err := ConsensusContext(ctx, im, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if rep == nil || rep.Checkpoint == nil {
		t.Fatal("cancelled run carries no checkpoint")
	}
	return rep.Checkpoint
}

// TestCheckpointResumeEquality is the acceptance test for checkpoint and
// resume: cancel a run mid-flight, round-trip the checkpoint through its
// JSON form (the CLIs' -checkpoint file), resume, and require the resumed
// report to be deep-equal to an uninterrupted run's — verdicts, bounds,
// and the Nodes/Leaves accounting alike.
func TestCheckpointResumeEquality(t *testing.T) {
	im := consensus.CASRegister3()
	for _, fm := range []faults.Model{{}, {MaxCrashes: 1},
		{MaxCrashes: 1, Mode: faults.CrashRecovery, MaxRecoveries: 1}} {
		base := Options{Memoize: true, Faults: fm}
		cp := cancelMidRun(t, base)
		if cp.Faults != fm {
			t.Fatalf("checkpoint fault model %v, want %v", cp.Faults, fm)
		}
		if len(cp.Trees) == 0 {
			t.Fatalf("checkpoint recorded no finished trees: %v", cp)
		}

		blob, err := json.Marshal(cp)
		if err != nil {
			t.Fatal(err)
		}
		var restored Checkpoint
		if err := json.Unmarshal(blob, &restored); err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(cp, &restored) {
			t.Fatalf("checkpoint does not survive its JSON round-trip:\nbefore: %+v\nafter:  %+v", cp, &restored)
		}

		resumeOpts := base
		resumeOpts.ResumeFrom = &restored
		resumeOpts.Parallelism = 2
		resumed, err := Consensus(im, resumeOpts)
		if err != nil {
			t.Fatal(err)
		}
		uninterrupted, err := Consensus(im, base)
		if err != nil {
			t.Fatal(err)
		}
		if !reflect.DeepEqual(stripStats(resumed), stripStats(uninterrupted)) {
			t.Errorf("faults=%v: resumed report differs from uninterrupted run\nresumed:       %+v\nuninterrupted: %+v",
				fm, resumed, uninterrupted)
		}
		if resumed.Checkpoint != nil {
			t.Errorf("completed resumed run still carries a checkpoint")
		}
	}
}

// TestCheckpointResumeViolating checks resume on a protocol whose
// exploration ends in a violation: the resumed run must reproduce the
// exact violation report of an uninterrupted run.
func TestCheckpointResumeViolating(t *testing.T) {
	im := consensus.NaiveRegister2()
	uninterrupted, err := Consensus(im, Options{Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	// An empty checkpoint of the right shape resumes from nothing.
	cp := &Checkpoint{
		Version: CheckpointVersion,
		Impl:    im.Name,
		Procs:   im.Procs,
		Values:  2,
		Roots:   4,
	}
	resumed, err := Consensus(im, Options{Memoize: true, ResumeFrom: cp})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripStats(resumed), stripStats(uninterrupted)) {
		t.Errorf("resumed violating report differs\nresumed:       %+v\nuninterrupted: %+v", resumed, uninterrupted)
	}
	if resumed.Violation == nil {
		t.Fatal("resumed run lost the violation")
	}
}

// TestResumeFromValidation pins every fingerprint check on the resume
// path: a checkpoint from a different implementation, shape, version, or
// fault model — or one that is internally malformed — must be rejected
// with ErrBadCheckpoint before any tree is explored.
func TestResumeFromValidation(t *testing.T) {
	im := consensus.TAS2()
	good := func() *Checkpoint {
		return &Checkpoint{
			Version: CheckpointVersion,
			Impl:    im.Name,
			Procs:   2,
			Values:  2,
			Roots:   4,
		}
	}
	if _, err := Consensus(im, Options{ResumeFrom: good()}); err != nil {
		t.Fatalf("well-formed empty checkpoint rejected: %v", err)
	}
	mutations := []struct {
		name string
		mut  func(*Checkpoint)
	}{
		{"version", func(c *Checkpoint) { c.Version = CheckpointVersion + 1 }},
		{"impl", func(c *Checkpoint) { c.Impl = "someone-else" }},
		{"procs", func(c *Checkpoint) { c.Procs = 3 }},
		{"values", func(c *Checkpoint) { c.Values = 3 }},
		{"roots", func(c *Checkpoint) { c.Roots = 8 }},
		{"fault model", func(c *Checkpoint) { c.Faults = faults.Model{MaxCrashes: 1} }},
		{"mask range", func(c *Checkpoint) { c.Trees = []TreeResult{{Mask: 4}} }},
		{"duplicate mask", func(c *Checkpoint) {
			// TAS2 declares 3 objects (elect + two prefer bits).
			tr := TreeResult{Mask: 1, MaxAccess: []int{0, 0, 0}, OpAccess: []map[string]int{{}, {}, {}}, ProcSteps: []int{0, 0}}
			c.Trees = []TreeResult{tr, tr}
		}},
		{"bound shape", func(c *Checkpoint) {
			c.Trees = []TreeResult{{Mask: 0, MaxAccess: []int{0}, OpAccess: []map[string]int{{}}, ProcSteps: []int{0, 0}}}
		}},
		{"excess trees", func(c *Checkpoint) {
			tr := TreeResult{MaxAccess: []int{0, 0, 0}, OpAccess: []map[string]int{{}, {}, {}}, ProcSteps: []int{0, 0}}
			for mask := 0; mask < c.Roots+1; mask++ {
				tr.Mask = mask % c.Roots // more trees than roots, before the per-tree scan trips on the reuse
				c.Trees = append(c.Trees, tr)
			}
		}},
	}
	for _, m := range mutations {
		cp := good()
		m.mut(cp)
		if _, err := Consensus(im, Options{ResumeFrom: cp}); !errors.Is(err, ErrBadCheckpoint) {
			t.Errorf("%s: err = %v, want ErrBadCheckpoint", m.name, err)
		}
	}

	// Single-tree runs have no frontier: Run must reject ResumeFrom.
	scripts := proposalScripts([]int{0, 1})
	if _, err := Run(im, scripts, Options{ResumeFrom: good()}); !errors.Is(err, ErrBadOptions) {
		t.Errorf("Run accepted ResumeFrom: %v", err)
	}
}

// TestCheckpointRemainingClamped pins Remaining on malformed counts: a
// checkpoint claiming more trees than roots (rejected by validateFor, but
// Remaining is also called on display paths before validation) must report
// zero, not a negative count.
func TestCheckpointRemainingClamped(t *testing.T) {
	cp := &Checkpoint{Roots: 8, Trees: make([]TreeResult, 3)}
	if got := cp.Remaining(); got != 5 {
		t.Errorf("Remaining() = %d, want 5", got)
	}
	cp = &Checkpoint{Roots: 2, Trees: make([]TreeResult, 5)}
	if got := cp.Remaining(); got != 0 {
		t.Errorf("Remaining() on an overfull checkpoint = %d, want 0", got)
	}
}
