package explore

import (
	"fmt"
	"testing"

	"waitfree/internal/program"
	"waitfree/internal/types"
)

func keyOf(e *keyEncoder, c *config) string { return string(e.configKey(c)) }

func testConfig(objState types.State, mem any, resp types.Response) *config {
	return &config{
		objs: []types.State{objState},
		procs: []procState{
			{OpIdx: 1, Mem: mem, Mst: 3, Pending: program.Action{Kind: program.KindInvoke, Obj: 0, Inv: types.TAS}, Resp: resp},
			{OpIdx: 0, Done: true, Resp: types.ValOf(1)},
		},
	}
}

func TestConfigKeyInjective(t *testing.T) {
	e := newKeyEncoder()
	base := testConfig(0, nil, types.ValOf(0))
	variants := []*config{
		testConfig(1, nil, types.ValOf(0)),        // object state differs
		testConfig(0, 7, types.ValOf(0)),          // memory differs
		testConfig(0, nil, types.ValOf(1)),        // response differs
		testConfig(0, true, types.ValOf(0)),       // bool 1 vs absent
		testConfig(0, "7", types.ValOf(0)),        // string "7" vs int 7
		testConfig("0", nil, types.ValOf(0)),      // string state vs int state
		testConfig(0, types.OK, types.ValOf(0)),   // Response as memory
		testConfig(0, types.Read, types.ValOf(0)), // Invocation as memory
	}
	baseKey := keyOf(e, base)
	seen := map[string]int{baseKey: -1}
	for i, v := range variants {
		k := keyOf(e, v)
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with variant %d", i, prev)
		}
		seen[k] = i
	}
}

func TestConfigKeyDeterministic(t *testing.T) {
	// Equal configs encode identically, under one encoder (buffer reuse
	// must not corrupt) and across encoders (type-id interning follows
	// encounter order, which equal encode sequences share).
	type userState struct{ A, B int }
	mk := func() *config { return testConfig(userState{1, 2}, userState{3, 4}, types.OK) }
	e1, e2 := newKeyEncoder(), newKeyEncoder()
	k1a := keyOf(e1, mk())
	_ = keyOf(e1, testConfig(userState{9, 9}, nil, types.OK)) // perturb the buffer
	k1b := keyOf(e1, mk())
	if k1a != k1b {
		t.Error("same encoder produced different keys for equal configs")
	}
	if k2 := keyOf(e2, mk()); k2 != k1a {
		t.Error("fresh encoder produced a different key for an equal config")
	}
}

// BenchmarkConfigKey compares the byte encoder against the fmt rendering
// it replaced, on a configuration with user-defined (reflection-path)
// states.
func BenchmarkConfigKey(b *testing.B) {
	type userState struct{ A, B, C int }
	c := testConfig(userState{1, 2, 3}, userState{4, 5, 6}, types.OK)
	b.Run("encoder", func(b *testing.B) {
		e := newKeyEncoder()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = e.configKey(c)
		}
	})
	b.Run("fmt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = fmt.Sprintf("%#v|%#v", c.objs, c.procs)
		}
	})
}

func TestMemoTableBasics(t *testing.T) {
	m := newMemoTable(0)
	sum := &summary{}
	keys := []string{"", "a", "b", "aa", "\x00\x01", "longer key with bytes"}
	for _, k := range keys {
		if _, ok := m.get([]byte(k)); ok {
			t.Fatalf("empty table contains %q", k)
		}
		m.put(k, grayMark)
	}
	if got := len(m.grayKeys()); got != len(keys) {
		t.Fatalf("grayKeys = %d, want %d", got, len(keys))
	}
	for _, k := range keys {
		m.put(k, sum)
	}
	if got := len(m.grayKeys()); got != 0 {
		t.Fatalf("grayKeys after overwrite = %d, want 0", got)
	}
	for _, k := range keys {
		v, ok := m.get([]byte(k))
		if !ok || v != sum {
			t.Fatalf("get(%q) = %v, %v", k, v, ok)
		}
		m.drop(k)
		if _, ok := m.get([]byte(k)); ok {
			t.Fatalf("dropped key %q still present", k)
		}
	}
}
