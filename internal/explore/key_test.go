package explore

import (
	"bytes"
	"fmt"
	"testing"

	"waitfree/internal/program"
	"waitfree/internal/types"
)

func keyOf(e *keyEncoder, c *config) string { return string(e.configKey(c)) }

func testConfig(objState types.State, mem any, resp types.Response) *config {
	return &config{
		objs: []types.State{objState},
		procs: []procState{
			{OpIdx: 1, Mem: mem, Mst: 3, Pending: program.Action{Kind: program.KindInvoke, Obj: 0, Inv: types.TAS}, Resp: resp},
			{OpIdx: 0, Done: true, Resp: types.ValOf(1)},
		},
	}
}

func TestConfigKeyInjective(t *testing.T) {
	e := newKeyEncoder()
	base := testConfig(0, nil, types.ValOf(0))
	variants := []*config{
		testConfig(1, nil, types.ValOf(0)),        // object state differs
		testConfig(0, 7, types.ValOf(0)),          // memory differs
		testConfig(0, nil, types.ValOf(1)),        // response differs
		testConfig(0, true, types.ValOf(0)),       // bool 1 vs absent
		testConfig(0, "7", types.ValOf(0)),        // string "7" vs int 7
		testConfig("0", nil, types.ValOf(0)),      // string state vs int state
		testConfig(0, types.OK, types.ValOf(0)),   // Response as memory
		testConfig(0, types.Read, types.ValOf(0)), // Invocation as memory
	}
	baseKey := keyOf(e, base)
	seen := map[string]int{baseKey: -1}
	for i, v := range variants {
		k := keyOf(e, v)
		if prev, dup := seen[k]; dup {
			t.Errorf("variant %d collides with variant %d", i, prev)
		}
		seen[k] = i
	}
}

func TestConfigKeyDeterministic(t *testing.T) {
	// Equal configs encode identically, under one encoder (buffer reuse
	// must not corrupt) and across encoders (type-id interning follows
	// encounter order, which equal encode sequences share).
	type userState struct{ A, B int }
	mk := func() *config { return testConfig(userState{1, 2}, userState{3, 4}, types.OK) }
	e1, e2 := newKeyEncoder(), newKeyEncoder()
	k1a := keyOf(e1, mk())
	_ = keyOf(e1, testConfig(userState{9, 9}, nil, types.OK)) // perturb the buffer
	k1b := keyOf(e1, mk())
	if k1a != k1b {
		t.Error("same encoder produced different keys for equal configs")
	}
	if k2 := keyOf(e2, mk()); k2 != k1a {
		t.Error("fresh encoder produced a different key for an equal config")
	}
}

// TestConfigKeyMapDeterministic is the regression test for map-valued
// machine states: Go randomizes map iteration order, so the encoder must
// render equal maps identically regardless of insertion order (entries are
// sorted by their encoded bytes) while keeping distinct maps distinct.
func TestConfigKeyMapDeterministic(t *testing.T) {
	type mapState struct{ M map[int]int }
	e := newKeyEncoder()
	build := func(reversed bool) map[int]int {
		m := make(map[int]int)
		if reversed {
			for i := 7; i >= 0; i-- {
				m[i] = i * i
			}
		} else {
			for i := 0; i < 8; i++ {
				m[i] = i * i
			}
		}
		return m
	}
	// Maps directly as machine memory and nested in a struct state; many
	// iterations so a randomized iteration order would actually surface.
	want := keyOf(e, testConfig(0, build(false), types.OK))
	wantNested := keyOf(e, testConfig(mapState{build(false)}, nil, types.OK))
	for i := 0; i < 32; i++ {
		if got := keyOf(e, testConfig(0, build(i%2 == 1), types.OK)); got != want {
			t.Fatalf("iteration %d: equal maps encoded differently", i)
		}
		if got := keyOf(e, testConfig(mapState{build(i%2 == 1)}, nil, types.OK)); got != wantNested {
			t.Fatalf("iteration %d: equal struct-nested maps encoded differently", i)
		}
	}
	distinct := []any{
		map[int]int{1: 2},
		map[int]int{1: 3},       // value differs
		map[int]int{2: 2},       // key differs
		map[int]int{1: 2, 2: 2}, // extra entry
		map[int]int{},           // empty
		map[int]int(nil),        // nil (must differ from empty)
		map[string]int{"1": 2},  // key type differs
	}
	seen := map[string]int{}
	for i, m := range distinct {
		k := keyOf(e, testConfig(0, m, types.OK))
		if prev, dup := seen[k]; dup {
			t.Errorf("distinct map %d collides with map %d", i, prev)
		}
		seen[k] = i
	}
}

// TestCanonKey pins the canonical key: invariant under process
// permutation, sensitive to everything else, with perm listing the
// processes in canonical slot order.
func TestCanonKey(t *testing.T) {
	e := newKeyEncoder()
	c := testConfig(0, 7, types.ValOf(1))
	swapped := &config{
		objs:  c.objs,
		procs: []procState{c.procs[1], c.procs[0]},
	}
	k1, perm1 := e.canonKey(c)
	k2, perm2 := e.canonKey(swapped)
	if !bytes.Equal(k1, k2) {
		t.Error("canonical keys differ under process permutation")
	}
	// The two orderings pick mirrored slot assignments of the same config.
	if perm1[0] == perm1[1] || perm2[0] != perm1[1] || perm2[1] != perm1[0] {
		t.Errorf("perms %v / %v are not mirrored assignments", perm1, perm2)
	}
	// canonKey is canonical, not lossy: a genuinely different process state
	// must still change the key.
	other := testConfig(0, 8, types.ValOf(1))
	if k3, _ := e.canonKey(other); bytes.Equal(k1, k3) {
		t.Error("canonical key ignored a memory difference")
	}
	// Object states are positional, not sorted: swapping distinct object
	// states must change the key.
	twoObjs := &config{objs: []types.State{0, 1}, procs: c.procs}
	objsSwapped := &config{objs: []types.State{1, 0}, procs: c.procs}
	ka, _ := e.canonKey(twoObjs)
	kb, _ := e.canonKey(objsSwapped)
	if bytes.Equal(ka, kb) {
		t.Error("canonical key conflated permuted object states")
	}
}

// FuzzCanonKeyPermutationInvariant fuzzes the defining property of the
// canonical key: for every configuration and every permutation pi of its
// processes, canonKey(c) == canonKey(pi(c)) under one encoder.
func FuzzCanonKeyPermutationInvariant(f *testing.F) {
	f.Add(0, 1, 2, "s", uint8(1))
	f.Add(7, 7, -3, "", uint8(5))
	f.Add(-1, 0, 1, "xyz", uint8(3))
	perms3 := [][3]int{{0, 1, 2}, {0, 2, 1}, {1, 0, 2}, {1, 2, 0}, {2, 0, 1}, {2, 1, 0}}
	f.Fuzz(func(t *testing.T, a, b, c int, s string, permSeed uint8) {
		cfg := &config{
			objs: []types.State{a % 4, s},
			procs: []procState{
				{OpIdx: a & 3, Mem: a, Mst: s, Resp: types.ValOf(b & 7)},
				{OpIdx: b & 3, Done: b&4 != 0, Mem: s, Mst: c, Pending: program.Action{Kind: program.KindInvoke, Obj: a & 1, Inv: types.TAS}},
				{OpIdx: c & 3, Crashed: c&4 != 0, Stepped: a&4 != 0, Mem: nil, Mst: b, Resp: types.OK},
			},
		}
		pi := perms3[int(permSeed)%len(perms3)]
		permuted := &config{
			objs:  cfg.objs,
			procs: []procState{cfg.procs[pi[0]], cfg.procs[pi[1]], cfg.procs[pi[2]]},
		}
		e := newKeyEncoder()
		k1, _ := e.canonKey(cfg)
		k2, _ := e.canonKey(permuted)
		if !bytes.Equal(k1, k2) {
			t.Errorf("canonKey not permutation-invariant under pi=%v\n%x\n%x", pi, k1, k2)
		}
	})
}

// BenchmarkConfigKey compares the byte encoder against the fmt rendering
// it replaced, on a configuration with user-defined (reflection-path)
// states.
func BenchmarkConfigKey(b *testing.B) {
	type userState struct{ A, B, C int }
	c := testConfig(userState{1, 2, 3}, userState{4, 5, 6}, types.OK)
	b.Run("encoder", func(b *testing.B) {
		e := newKeyEncoder()
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = e.configKey(c)
		}
	})
	b.Run("fmt", func(b *testing.B) {
		b.ReportAllocs()
		for i := 0; i < b.N; i++ {
			_ = fmt.Sprintf("%#v|%#v", c.objs, c.procs)
		}
	})
}

func TestMemoTableBasics(t *testing.T) {
	m := newMemoTable(0, "", nil)
	sum := &summary{}
	keys := []string{"", "a", "b", "aa", "\x00\x01", "longer key with bytes"}
	for _, k := range keys {
		if _, ok := m.get([]byte(k)); ok {
			t.Fatalf("empty table contains %q", k)
		}
		m.put(k, grayMark)
	}
	if got := len(m.grayKeys()); got != len(keys) {
		t.Fatalf("grayKeys = %d, want %d", got, len(keys))
	}
	for _, k := range keys {
		m.put(k, sum)
	}
	if got := len(m.grayKeys()); got != 0 {
		t.Fatalf("grayKeys after overwrite = %d, want 0", got)
	}
	for _, k := range keys {
		v, ok := m.get([]byte(k))
		if !ok || v != sum {
			t.Fatalf("get(%q) = %v, %v", k, v, ok)
		}
		m.drop(k)
		if _, ok := m.get([]byte(k)); ok {
			t.Fatalf("dropped key %q still present", k)
		}
	}
}
