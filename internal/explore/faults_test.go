package explore

import (
	"errors"
	"reflect"
	"strings"
	"testing"

	"waitfree/internal/consensus"
	"waitfree/internal/faults"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// oneCrash is the canonical single-crash model most tests explore under.
var oneCrash = faults.Model{MaxCrashes: 1}

// TestQueue2UnderCrashExploration is the pinned fault-tolerance check of
// the paper's queue-based protocol: Queue2 must verify under exhaustive
// exploration of every single-crash schedule, in both crash modes, and the
// Section 4.2 bounds must be exactly those of the crash-free run — crash
// edges are not object accesses, and every survivor-only execution is a
// prefix of a crash-free one.
func TestQueue2UnderCrashExploration(t *testing.T) {
	im := consensus.Queue2()
	plain, err := Consensus(im, Options{Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	for _, mode := range []faults.Mode{faults.CrashStop, faults.CrashBeforeFirstStep} {
		for _, memoize := range []bool{false, true} {
			opts := Options{Memoize: memoize, Faults: faults.Model{MaxCrashes: 1, Mode: mode}}
			rep, err := Consensus(im, opts)
			if err != nil {
				t.Fatalf("mode=%v memoize=%v: %v", mode, memoize, err)
			}
			if !rep.OK() {
				t.Fatalf("mode=%v memoize=%v: Queue2 failed under 1-crash exploration: %s",
					mode, memoize, rep)
			}
			if rep.Faults == nil || *rep.Faults != opts.Faults {
				t.Errorf("mode=%v memoize=%v: report does not echo fault model: %+v", mode, memoize, rep.Faults)
			}
			if !reflect.DeepEqual(rep.Decisions, []int{0, 1}) {
				t.Errorf("mode=%v memoize=%v: decisions %v, want [0 1]", mode, memoize, rep.Decisions)
			}
			if rep.Depth != plain.Depth ||
				!reflect.DeepEqual(rep.MaxAccess, plain.MaxAccess) ||
				!reflect.DeepEqual(rep.OpAccess, plain.OpAccess) ||
				!reflect.DeepEqual(rep.ProcSteps, plain.ProcSteps) {
				t.Errorf("mode=%v memoize=%v: crash exploration changed the Section 4.2 bounds:\nplain:  D=%d max=%v ops=%v steps=%v\nfaults: D=%d max=%v ops=%v steps=%v",
					mode, memoize,
					plain.Depth, plain.MaxAccess, plain.OpAccess, plain.ProcSteps,
					rep.Depth, rep.MaxAccess, rep.OpAccess, rep.ProcSteps)
			}
			if rep.Nodes <= plain.Nodes || rep.Leaves <= plain.Leaves {
				t.Errorf("mode=%v memoize=%v: fault exploration did not add configurations (nodes %d vs %d, leaves %d vs %d)",
					mode, memoize, rep.Nodes, plain.Nodes, rep.Leaves, plain.Leaves)
			}
		}
	}
}

// TestAllProcessesMayCrash covers the degenerate schedules where every
// process crashes: the all-crashed leaves are vacuous (nothing decided,
// nothing to check) and must not flag a correct protocol.
func TestAllProcessesMayCrash(t *testing.T) {
	im := consensus.TAS2()
	rep, err := Consensus(im, Options{Memoize: true, Faults: faults.Model{MaxCrashes: im.Procs}})
	if err != nil {
		t.Fatal(err)
	}
	if !rep.OK() {
		t.Fatalf("TAS2 failed when all processes may crash: %s", rep)
	}
	if !reflect.DeepEqual(rep.Decisions, []int{0, 1}) {
		t.Errorf("decisions %v, want [0 1]", rep.Decisions)
	}
}

// spinAsk/spinCheck/spinDecide are the comparable machine states of the
// deliberately broken protocols below.
type spinAsk struct{}
type spinCheck struct{}
type spinDecide struct{ prop int }

// announcerMachine writes its proposal, offset by one past the register's
// empty sentinel 0, then decides it — shared by the two broken protocols
// below.
var announcerMachine = program.FuncMachine{
	StartFn: func(inv types.Invocation, _ any) any { return spinDecide{prop: inv.A} },
	NextFn: func(state any, _ types.Response) (program.Action, any) {
		s := state.(spinDecide)
		if s.prop >= 0 {
			return program.InvokeAction(0, types.Write(s.prop+1)), spinDecide{prop: -s.prop - 1}
		}
		return program.ReturnAction(types.ValOf(-s.prop-1), nil), state
	},
}

// spinnerImpl is a deliberately broken protocol: process 0 announces its
// proposal on a flag register and decides it; process 1 spin-waits for
// the announcement and adopts it. Agreement and validity hold on every
// completed execution, so crash-free the protocol is merely not wait-free
// (the spin loop cycles); if process 0 crashes before announcing, process
// 1 starves forever on its own — the survivor-starvation shape fault
// exploration must surface with a crash-annotated schedule.
func spinnerImpl() *program.Implementation {
	waiter := program.FuncMachine{
		StartFn: func(types.Invocation, any) any { return spinAsk{} },
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			switch state.(type) {
			case spinAsk:
				return program.InvokeAction(0, types.Read), spinCheck{}
			case spinCheck:
				if resp.Val == 0 {
					return program.InvokeAction(0, types.Read), spinCheck{}
				}
				return program.ReturnAction(types.ValOf(resp.Val-1), nil), state
			}
			panic("spinner: foreign state")
		},
	}
	return &program.Implementation{
		Name:   "spinner",
		Target: types.Consensus(2),
		Procs:  2,
		Objects: []program.ObjectDecl{
			{Name: "flag", Spec: types.Register(2, 3), Init: 0, PortOf: []int{1, 2}},
		},
		Machines: []program.Machine{announcerMachine, waiter},
	}
}

// TestSurvivorStarvationCounterexample is the acceptance test for crash
// exploration on a broken protocol: the spinner must be reported as
// survivor starvation, with the crash recorded in the counterexample
// schedule. Without fault exploration the same protocol reports a plain
// configuration cycle with no crash annotation — the contrast pins that
// crash branches are explored first.
func TestSurvivorStarvationCounterexample(t *testing.T) {
	im := spinnerImpl()

	rep, err := Consensus(im, Options{Memoize: true, Faults: oneCrash})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() || rep.WaitFree {
		t.Fatalf("spinner verified under crash exploration: %s", rep)
	}
	v := rep.Violation
	if v == nil || v.Kind != KindBlockedBySurvivorStarvation {
		t.Fatalf("violation = %+v, want KindBlockedBySurvivorStarvation", v)
	}
	if len(v.Schedule) == 0 || !v.Schedule[0].Crash || v.Schedule[0].Proc != 0 {
		t.Fatalf("counterexample schedule is not crash-annotated:\n%s", FormatSchedule(v.Schedule))
	}
	if !strings.Contains(FormatSchedule(v.Schedule), "CRASH") {
		t.Errorf("rendered schedule lacks the CRASH marker:\n%s", FormatSchedule(v.Schedule))
	}
	if !strings.Contains(FormatLanes(v.Schedule, im), "CRASH") {
		t.Errorf("lane rendering lacks the CRASH marker:\n%s", FormatLanes(v.Schedule, im))
	}

	// The depth-bounded analogue (no memoization, so no cycle detection):
	// the spin must exhaust the budget and still classify as starvation.
	rep, err = Consensus(im, Options{MaxDepth: 32, Faults: oneCrash})
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violation; v == nil || v.Kind != KindBlockedBySurvivorStarvation {
		t.Fatalf("depth-bounded violation = %+v, want KindBlockedBySurvivorStarvation", rep.Violation)
	}

	// Crash-free contrast: a plain cycle, no crash records anywhere.
	rep, err = Consensus(im, Options{Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violation; v == nil || v.Kind != KindCycle {
		t.Fatalf("crash-free violation = %+v, want KindCycle", rep.Violation)
	}
	for _, s := range rep.Violation.Schedule {
		if s.Crash {
			t.Fatalf("crash record in a crash-free schedule:\n%s", FormatSchedule(rep.Violation.Schedule))
		}
	}
}

// soloDecideImpl is a second broken protocol: process 0 announces then
// decides its proposal; process 1 reads the flag once and, if process 0
// has not announced yet, decides the constant 7 — a value nobody proposed.
func soloDecideImpl() *program.Implementation {
	guesser := program.FuncMachine{
		StartFn: func(types.Invocation, any) any { return spinAsk{} },
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			switch state.(type) {
			case spinAsk:
				return program.InvokeAction(0, types.Read), spinCheck{}
			case spinCheck:
				if resp.Val == 0 {
					return program.ReturnAction(types.ValOf(7), nil), state
				}
				return program.ReturnAction(types.ValOf(resp.Val-1), nil), state
			}
			panic("solo-decide: foreign state")
		},
	}
	return &program.Implementation{
		Name:   "solo-decide",
		Target: types.Consensus(2),
		Procs:  2,
		Objects: []program.ObjectDecl{
			{Name: "flag", Spec: types.Register(2, 3), Init: 0, PortOf: []int{1, 2}},
		},
		Machines: []program.Machine{announcerMachine, guesser},
	}
}

// TestInvalidAfterCrashCounterexample pins the second new violation kind:
// a crashed execution that completes but whose survivors decided an
// unproposed value must be KindInvalidAfterCrash, flagged as a validity
// failure, with the crash in the schedule.
func TestInvalidAfterCrashCounterexample(t *testing.T) {
	im := soloDecideImpl()
	rep, err := Consensus(im, Options{Memoize: true, Faults: oneCrash})
	if err != nil {
		t.Fatal(err)
	}
	v := rep.Violation
	if v == nil || v.Kind != KindInvalidAfterCrash {
		t.Fatalf("violation = %+v, want KindInvalidAfterCrash", v)
	}
	if rep.Validity || !rep.Agreement {
		t.Errorf("verdict agreement=%v validity=%v, want validity alone to fail", rep.Agreement, rep.Validity)
	}
	if !strings.HasPrefix(v.Detail, "validity") {
		t.Errorf("detail %q does not name the failed property", v.Detail)
	}
	crashed := false
	for _, s := range v.Schedule {
		crashed = crashed || s.Crash
	}
	if !crashed {
		t.Fatalf("counterexample schedule is not crash-annotated:\n%s", FormatSchedule(v.Schedule))
	}
}

// TestLeafCrashedAnnotation drives Run directly (Consensus owns OnLeaf) to
// pin the Leaf contract under faults: crash-free leaves carry a nil
// Crashed slice even when fault exploration is on, faulty leaves mark
// exactly the crashed processes, and survivors still carry responses.
func TestLeafCrashedAnnotation(t *testing.T) {
	im := consensus.TAS2()
	scripts := proposalScripts([]int{0, 1})
	var crashFree, crashed int
	_, err := Run(im, scripts, Options{
		Faults: oneCrash,
		OnLeaf: func(l *Leaf) error {
			if l.Crashed == nil {
				crashFree++
				return nil
			}
			crashed++
			n := 0
			for p, c := range l.Crashed {
				if c {
					n++
					continue
				}
				if len(l.Responses[p]) == 0 || l.Responses[p][len(l.Responses[p])-1].Label != types.LabelVal {
					return errors.New("survivor has no decision at a crash leaf")
				}
			}
			if n != 1 {
				return errors.New("crash leaf under MaxCrashes=1 must have exactly one crashed process")
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if crashFree == 0 || crashed == 0 {
		t.Fatalf("leaf mix crashFree=%d crashed=%d, want both populations", crashFree, crashed)
	}
}

// TestFaultParityAcrossParallelism extends the engine's determinism
// guarantee to fault exploration: with crashes enabled, the merged report
// must stay a pure function of the implementation — identical at every
// parallelism level, memoized or not, on correct and violating protocols
// alike.
func TestFaultParityAcrossParallelism(t *testing.T) {
	impls := []*program.Implementation{
		consensus.TAS2(), consensus.Queue2(), consensus.NaiveRegister2(),
		consensus.CAS(2), consensus.FetchCons(2), consensus.CAS(3),
		spinnerImpl(), soloDecideImpl(),
	}
	for _, im := range impls {
		for _, memoize := range []bool{false, true} {
			opts := Options{Memoize: memoize, Parallelism: 1, Faults: oneCrash}
			if !memoize {
				// Unmemoized runs have no cycle detection; bound the broken
				// protocols' spin instead of walking to DefaultMaxDepth.
				opts.MaxDepth = 64
			}
			seq, seqErr := Consensus(im, opts)
			stripStats(seq)
			for _, workers := range []int{2, 4} {
				popts := opts
				popts.Parallelism = workers
				par, parErr := Consensus(im, popts)
				stripStats(par)
				if (seqErr == nil) != (parErr == nil) {
					t.Fatalf("%s memoize=%v workers=%d: error mismatch: %v vs %v",
						im.Name, memoize, workers, seqErr, parErr)
				}
				if seqErr != nil {
					continue
				}
				if !reflect.DeepEqual(seq, par) {
					t.Errorf("%s memoize=%v workers=%d: fault report mismatch\nseq: %+v\npar: %+v",
						im.Name, memoize, workers, seq, par)
				}
			}
		}
	}
}

// TestMemoBudgetDegradation pins graceful degradation: a starved memo
// table must change only the cost of a run — the verdict, bounds, node
// and leaf counts all stay identical; only MemoHits may differ (eviction
// forces re-exploration, which loses hits at the evicted configurations
// and may score fresh ones below them), and the run is flagged Degraded at
// every level (Result, report, Stats) with the evictions counted.
func TestMemoBudgetDegradation(t *testing.T) {
	im := consensus.Queue2()
	full, err := Consensus(im, Options{Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	tight, err := Consensus(im, Options{Memoize: true, MemoBudget: 4, Faults: oneCrash})
	if err != nil {
		t.Fatal(err)
	}
	if !tight.Degraded {
		t.Fatalf("MemoBudget=4 did not degrade on Queue2 (memo hits %d)", tight.MemoHits)
	}
	if tight.Stats == nil || !tight.Stats.Degraded {
		t.Errorf("Stats does not reflect degradation: %+v", tight.Stats)
	}
	if full.Degraded {
		t.Errorf("unbounded run flagged Degraded")
	}
	if !tight.OK() || tight.Depth != full.Depth || !reflect.DeepEqual(tight.MaxAccess, full.MaxAccess) {
		t.Errorf("degradation changed the verdict or bounds:\nfull:  %s\ntight: %s", full.Summary(), tight.Summary())
	}
	if tight.Stats.MemoEvictions == 0 {
		t.Errorf("degraded run reported no evictions: %+v", tight.Stats)
	}
	if tight.Stats.MemoSpilled != 0 {
		t.Errorf("run without a spill tier reported spills: %+v", tight.Stats)
	}

	// Degraded runs must preserve parity too: eviction is deterministic.
	opts := Options{Memoize: true, MemoBudget: 4, Faults: oneCrash}
	seq, err := Consensus(im, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Parallelism = 4
	par, err := Consensus(im, opts)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripStats(seq), stripStats(par)) {
		t.Errorf("degraded report differs across parallelism\nseq: %+v\npar: %+v", seq, par)
	}
}

// explodingMachine accesses its object once, then panics — user code the
// engine must survive.
var explodingMachine = program.FuncMachine{
	StartFn: func(types.Invocation, any) any { return 0 },
	NextFn: func(state any, _ types.Response) (program.Action, any) {
		if state.(int) == 0 {
			return program.InvokeAction(0, types.TAS), 1
		}
		panic("machine exploded")
	},
}

// TestExplorerPanicRecovery pins the panic-safety contract: a panic in
// protocol code surfaces as a structured *faults.PanicError naming the
// engine, the stepping process, and the offending configuration — instead
// of killing the worker goroutine and the whole test process with it.
func TestExplorerPanicRecovery(t *testing.T) {
	im := &program.Implementation{
		Name:   "exploding",
		Target: types.Consensus(2),
		Procs:  2,
		Objects: []program.ObjectDecl{
			{Name: "t", Spec: types.TestAndSet(2), Init: 0, PortOf: []int{1, 2}},
		},
		Machines: []program.Machine{explodingMachine, explodingMachine},
	}
	for _, workers := range []int{1, 4} {
		_, err := Consensus(im, Options{Parallelism: workers})
		var pe *faults.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("workers=%d: err = %v, want *faults.PanicError", workers, err)
		}
		if pe.Engine != "explore" {
			t.Errorf("workers=%d: engine %q, want explore", workers, pe.Engine)
		}
		if pe.Value != "machine exploded" {
			t.Errorf("workers=%d: value %v, want the panic payload", workers, pe.Value)
		}
		if pe.Proc < 0 || pe.Proc >= im.Procs {
			t.Errorf("workers=%d: offending process %d out of range", workers, pe.Proc)
		}
		if !strings.Contains(pe.Context, "depth") {
			t.Errorf("workers=%d: context %q lacks the configuration breadcrumb", workers, pe.Context)
		}
		if !strings.Contains(string(pe.Stack), "explodingMachine") &&
			!strings.Contains(string(pe.Stack), "faults_test") {
			t.Errorf("workers=%d: stack does not reach the panicking machine:\n%s", workers, pe.Stack)
		}
	}
}
