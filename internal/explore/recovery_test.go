package explore

import (
	"reflect"
	"strings"
	"testing"

	"waitfree/internal/consensus"
	"waitfree/internal/faults"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// oneRecovery is the canonical crash-recovery model of these tests: one
// crash event, and the crashed process may come back once.
var oneRecovery = faults.Model{MaxCrashes: 1, Mode: faults.CrashRecovery, MaxRecoveries: 1}

// TestCrashRecoveryZeroBudgetParity is the semantic anchor of the
// crash-recovery mode: with MaxRecoveries=0 a crashed process never comes
// back, so the exploration must be exactly the crash-stop one — same
// verdicts, same bounds, same node and leaf accounting — across the
// corpus, memoized or not, sequential or parallel, with and without
// symmetry reduction. Only the echoed fault model may differ (it names
// the mode), so it is normalized before comparing.
func TestCrashRecoveryZeroBudgetParity(t *testing.T) {
	impls := []*program.Implementation{
		consensus.TAS2(), consensus.Queue2(), consensus.NaiveRegister2(),
		consensus.CAS(2), consensus.CAS(3), consensus.Sticky(2),
		spinnerImpl(), soloDecideImpl(),
	}
	for _, im := range impls {
		for _, memoize := range []bool{false, true} {
			for _, sym := range []SymmetryMode{SymmetryOff, SymmetryAuto} {
				for _, workers := range []int{1, 4} {
					stop := Options{Memoize: memoize, Symmetry: sym, Parallelism: workers,
						Faults: faults.Model{MaxCrashes: 1, Mode: faults.CrashStop}}
					rec := stop
					rec.Faults = faults.Model{MaxCrashes: 1, Mode: faults.CrashRecovery}
					if !memoize {
						stop.MaxDepth, rec.MaxDepth = 64, 64
					}
					a, aErr := Consensus(im, stop)
					b, bErr := Consensus(im, rec)
					if (aErr == nil) != (bErr == nil) {
						t.Fatalf("%s memoize=%v sym=%v workers=%d: error mismatch: %v vs %v",
							im.Name, memoize, sym, workers, aErr, bErr)
					}
					if aErr != nil {
						continue
					}
					stripStats(a)
					stripStats(b)
					if a.Faults == nil || b.Faults == nil {
						t.Fatalf("%s: report does not echo the fault model", im.Name)
					}
					a.Faults, b.Faults = nil, nil
					if !reflect.DeepEqual(a, b) {
						t.Errorf("%s memoize=%v sym=%v workers=%d: MaxRecoveries=0 diverges from crash-stop\nstop:     %+v\nrecovery: %+v",
							im.Name, memoize, sym, workers, a, b)
					}
				}
			}
		}
	}
}

// TestRecoveryFindsMoreBehavior is the positive sanity check that a
// nonzero recovery budget actually grows the explored tree: on a correct
// protocol the verdict stands, the report echoes the model, and the node
// count strictly exceeds the crash-stop one (every crash-stop execution
// is still explored, plus every recovery continuation).
func TestRecoveryFindsMoreBehavior(t *testing.T) {
	im := consensus.TAS2()
	stop, err := Consensus(im, Options{Memoize: true, Faults: oneCrash})
	if err != nil {
		t.Fatal(err)
	}
	rec, err := Consensus(im, Options{Memoize: true, Faults: oneRecovery})
	if err != nil {
		t.Fatal(err)
	}
	if !rec.OK() {
		t.Fatalf("TAS2 failed under crash-recovery: %s", rec)
	}
	if rec.Faults == nil || *rec.Faults != oneRecovery {
		t.Errorf("report does not echo the crash-recovery model: %+v", rec.Faults)
	}
	if rec.Nodes <= stop.Nodes || rec.Leaves <= stop.Leaves {
		t.Errorf("recovery exploration did not add configurations (nodes %d vs %d, leaves %d vs %d)",
			rec.Nodes, stop.Nodes, rec.Leaves, stop.Leaves)
	}
	// The recovery edge itself is free, but the re-executed accesses are
	// real: a recovered execution performs strictly more object accesses
	// than its crash-stop prefix, so the depth bound may only grow.
	if rec.Depth < stop.Depth {
		t.Errorf("recovery exploration shrank the depth bound: %d vs %d", rec.Depth, stop.Depth)
	}
}

// TestDecisionChangedAfterRecoveryCounterexample pins the first new
// violation kind on a zoo protocol: the deliberately incorrect
// register-only protocol ("naive" in the registry) completes executions
// in which a recovered process's re-run decides against a survivor. The
// counterexample must carry both the crash and the recovery in its
// schedule, and the kind must name the recovery.
func TestDecisionChangedAfterRecoveryCounterexample(t *testing.T) {
	im := consensus.NaiveRegister2()
	rep, err := Consensus(im, Options{Memoize: true, Faults: oneRecovery})
	if err != nil {
		t.Fatal(err)
	}
	if rep.OK() {
		t.Fatalf("naive register protocol verified under crash-recovery: %s", rep)
	}
	v := rep.Violation
	if v == nil || v.Kind != KindDecisionChangedAfterRecovery {
		t.Fatalf("violation = %+v, want KindDecisionChangedAfterRecovery", v)
	}
	var crash, recover bool
	for _, s := range v.Schedule {
		crash = crash || s.Crash
		recover = recover || s.Recover
	}
	if !crash || !recover {
		t.Fatalf("counterexample schedule lacks crash/recover annotation (crash=%v recover=%v):\n%s",
			crash, recover, FormatSchedule(v.Schedule))
	}
	if !strings.Contains(FormatSchedule(v.Schedule), "RECOVER") {
		t.Errorf("rendered schedule lacks the RECOVER marker:\n%s", FormatSchedule(v.Schedule))
	}
	if !strings.Contains(FormatLanes(v.Schedule, im), "RECOVER") {
		t.Errorf("lane rendering lacks the RECOVER marker:\n%s", FormatLanes(v.Schedule, im))
	}
}

// oneShot is the comparable machine state of oneShotImpl.
type oneShot struct {
	PC int
	V  int
}

// oneShotImpl is TAS2 with a deliberately non-recoverable announcement: a
// process first reads its own announcement register and treats "already
// announced" as an impossible state, spinning forever. Crash-free and
// under crash-stop the first read always sees 0 (each register is written
// only by its owner, exactly once), so the protocol verifies; under
// crash-recovery a process that crashes after announcing re-runs from its
// recovery section, observes its own pre-crash write, and diverges — the
// canonical missing-recovery-code bug the new mode exists to catch.
func oneShotImpl() *program.Implementation {
	machine := func(p int) program.Machine {
		own := 1 + p
		other := 1 + (1 - p)
		return program.FuncMachine{
			StartFn: func(inv types.Invocation, _ any) any { return oneShot{PC: 0, V: inv.A} },
			NextFn: func(state any, resp types.Response) (program.Action, any) {
				s := state.(oneShot)
				switch s.PC {
				case 0:
					return program.InvokeAction(own, types.Read), oneShot{PC: 1, V: s.V}
				case 1:
					if resp.Val != 0 {
						// "Impossible": this process has not announced yet.
						return program.InvokeAction(own, types.Read), s
					}
					return program.InvokeAction(own, types.Write(s.V+1)), oneShot{PC: 2, V: s.V}
				case 2:
					return program.InvokeAction(0, types.TAS), oneShot{PC: 3, V: s.V}
				case 3:
					if resp == types.ValOf(0) {
						return program.ReturnAction(types.ValOf(s.V), nil), s
					}
					return program.InvokeAction(other, types.Read), oneShot{PC: 4, V: s.V}
				default:
					return program.ReturnAction(types.ValOf(resp.Val-1), nil), s
				}
			},
		}
	}
	return &program.Implementation{
		Name:   "one-shot-announce",
		Target: types.Consensus(2),
		Procs:  2,
		Objects: []program.ObjectDecl{
			{Name: "elect", Spec: types.TestAndSet(2), Init: 0, PortOf: program.AllPorts(2)},
			{Name: "ann0", Spec: types.Register(2, 3), Init: 0, PortOf: program.AllPorts(2)},
			{Name: "ann1", Spec: types.Register(2, 3), Init: 0, PortOf: program.AllPorts(2)},
		},
		Machines: []program.Machine{machine(0), machine(1)},
	}
}

// TestRecoveryDivergenceCounterexample pins the second new violation
// kind: a protocol that is correct crash-free and under crash-stop but
// whose recovered processes spin forever must surface as
// KindBlockedByRecoveryDivergence with a recover-annotated schedule —
// under cycle detection and under a plain depth budget alike.
func TestRecoveryDivergenceCounterexample(t *testing.T) {
	im := oneShotImpl()

	// Contrast first: correct without recoveries, in both prior modes.
	for _, fm := range []faults.Model{{}, oneCrash} {
		rep, err := Consensus(im, Options{Memoize: true, Faults: fm})
		if err != nil {
			t.Fatal(err)
		}
		if !rep.OK() {
			t.Fatalf("one-shot protocol failed under %v (should only fail under crash-recovery): %s", fm, rep)
		}
	}

	rep, err := Consensus(im, Options{Memoize: true, Faults: oneRecovery})
	if err != nil {
		t.Fatal(err)
	}
	v := rep.Violation
	if v == nil || v.Kind != KindBlockedByRecoveryDivergence {
		t.Fatalf("violation = %+v, want KindBlockedByRecoveryDivergence", v)
	}
	if rep.WaitFree {
		t.Errorf("divergent protocol still reported wait-free")
	}
	var recover bool
	for _, s := range v.Schedule {
		recover = recover || s.Recover
	}
	if !recover {
		t.Fatalf("counterexample schedule lacks the recovery:\n%s", FormatSchedule(v.Schedule))
	}

	// Depth-bounded analogue: no cycle detection, the budget trips instead.
	rep, err = Consensus(im, Options{MaxDepth: 32, Faults: oneRecovery})
	if err != nil {
		t.Fatal(err)
	}
	if v := rep.Violation; v == nil || v.Kind != KindBlockedByRecoveryDivergence {
		t.Fatalf("depth-bounded violation = %+v, want KindBlockedByRecoveryDivergence", rep.Violation)
	}
}

// TestLeafRecoveriesAnnotation drives Run directly to pin the Leaf
// contract under crash-recovery: leaves on recovery-free paths carry a
// nil Recoveries slice, leaves past a recovery count it for exactly the
// recovered process, and a recovered process that finished carries a
// decision like any survivor.
func TestLeafRecoveriesAnnotation(t *testing.T) {
	im := consensus.TAS2()
	scripts := proposalScripts([]int{0, 1})
	var plain, recovered int
	_, err := Run(im, scripts, Options{
		Faults: oneRecovery,
		OnLeaf: func(l *Leaf) error {
			if l.Recoveries == nil {
				plain++
				return nil
			}
			recovered++
			total := 0
			for p, n := range l.Recoveries {
				if n < 0 {
					t.Fatalf("negative recovery count: %v", l.Recoveries)
				}
				total += n
				// Crashed is nil when every recovered process came back.
				if n > 0 && (l.Crashed == nil || !l.Crashed[p]) {
					// Recovered and done again: it must have decided.
					if len(l.Responses[p]) == 0 {
						t.Fatalf("recovered survivor carries no responses")
					}
				}
			}
			if total == 0 || total > oneRecovery.MaxRecoveries {
				t.Fatalf("leaf recovery total %d out of budget", total)
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if plain == 0 || recovered == 0 {
		t.Fatalf("leaf mix plain=%d recovered=%d, want both populations", plain, recovered)
	}
}

// TestRecoveryBudgetCountsCrashEvents pins the budget arithmetic: crashes
// and recoveries share MaxCrashes (a recovery never refunds the crash
// budget), so under MaxCrashes=1, MaxRecoveries=1 no execution can
// contain two crash edges, and every recovery is preceded by a crash of
// the same process.
func TestRecoveryBudgetCountsCrashEvents(t *testing.T) {
	im := consensus.TAS2()
	_, err := Run(im, proposalScripts([]int{0, 1}), Options{
		Faults: oneRecovery,
		OnLeaf: func(l *Leaf) error {
			crashes, recovers := 0, 0
			crashed := make(map[int]bool)
			for _, s := range l.Schedule {
				switch {
				case s.Crash:
					crashes++
					crashed[s.Proc] = true
				case s.Recover:
					recovers++
					if !crashed[s.Proc] {
						t.Fatalf("recovery of a never-crashed process %d:\n%s", s.Proc, FormatSchedule(l.Schedule))
					}
					crashed[s.Proc] = false
				}
			}
			if crashes > oneRecovery.MaxCrashes {
				t.Fatalf("%d crash edges exceed MaxCrashes=%d:\n%s", crashes, oneRecovery.MaxCrashes, FormatSchedule(l.Schedule))
			}
			if recovers > oneRecovery.MaxRecoveries {
				t.Fatalf("%d recoveries exceed MaxRecoveries=%d:\n%s", recovers, oneRecovery.MaxRecoveries, FormatSchedule(l.Schedule))
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
}
