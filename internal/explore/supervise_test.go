package explore

import (
	"errors"
	"reflect"
	"testing"
	"time"

	"waitfree/internal/consensus"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// TestConsensusMaxNodesPartial checks the node-budget arm of the
// partial-coverage contract: a run stopped by Options.MaxNodes returns a
// Partial report (nil error) whose checkpoint resumes — without the
// budget — to a report deep-equal to an uninterrupted run's.
func TestConsensusMaxNodesPartial(t *testing.T) {
	im := consensus.CASRegister3()
	base := Options{Memoize: true, Parallelism: 1}

	// MaxNodes bounds configurations the engine ENTERS; memo hits replay
	// whole subtrees without entering them, so the budget must sit under
	// the memoized run's ~1.6k entered configs, not its ~150k semantic
	// node count.
	budgeted := base
	budgeted.MaxNodes = 500
	rep, err := Consensus(im, budgeted)
	if err != nil {
		t.Fatalf("err = %v, want nil (budget stop degrades to a partial report)", err)
	}
	if !rep.Partial || rep.OK() {
		t.Fatalf("report not flagged partial: %s", rep.Summary())
	}
	if rep.Coverage == nil || rep.Coverage.Reason != CoverageNodeBudget {
		t.Fatalf("coverage = %+v, want reason %q", rep.Coverage, CoverageNodeBudget)
	}
	// The budget is soft: the overshoot past MaxNodes is bounded by
	// workers*flushEvery.
	if rep.Coverage.Nodes < budgeted.MaxNodes || rep.Coverage.Nodes > budgeted.MaxNodes+flushEvery {
		t.Errorf("nodes explored = %d, want within [%d, %d]", rep.Coverage.Nodes, budgeted.MaxNodes, budgeted.MaxNodes+flushEvery)
	}
	if rep.Coverage.TreesMerged > rep.Coverage.TreesDone || rep.Coverage.TreesDone >= rep.Coverage.TreesTotal {
		t.Errorf("coverage accounting inconsistent: %v", rep.Coverage)
	}
	if rep.Checkpoint == nil {
		t.Fatal("partial report carries no checkpoint")
	}
	if len(rep.Checkpoint.Trees) < rep.Coverage.TreesMerged {
		t.Errorf("checkpoint has %d trees, fewer than the %d merged", len(rep.Checkpoint.Trees), rep.Coverage.TreesMerged)
	}

	resumeOpts := base
	resumeOpts.ResumeFrom = rep.Checkpoint
	resumed, err := Consensus(im, resumeOpts)
	if err != nil {
		t.Fatal(err)
	}
	uninterrupted, err := Consensus(im, base)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripStats(resumed), stripStats(uninterrupted)) {
		t.Errorf("resumed report differs from uninterrupted run\nresumed:       %+v\nuninterrupted: %+v",
			resumed, uninterrupted)
	}
}

// TestConsensusAutosave checks Options.CheckpointEvery/OnCheckpoint: the
// supervisor publishes checkpoints while the run is in flight, each one a
// valid resume point, and the run's own report is untouched by the
// autosaving.
func TestConsensusAutosave(t *testing.T) {
	im := consensus.CASRegister3()
	var saves int
	var last *Checkpoint
	opts := Options{
		Memoize:     true,
		Parallelism: 1,
		// 1ms against ~25ms/tree guarantees mid-run saves; OnCheckpoint is
		// called from the supervisor goroutine, which is joined before
		// ConsensusKContext returns, so reading saves/last below is safe.
		CheckpointEvery: time.Millisecond,
		OnCheckpoint: func(cp *Checkpoint) {
			saves++
			last = cp
		},
	}
	rep, err := Consensus(im, opts)
	if err != nil {
		t.Fatal(err)
	}
	if rep.Partial || !rep.OK() {
		t.Fatalf("autosaving changed the verdict: %s", rep.Summary())
	}
	if saves == 0 || last == nil {
		t.Fatal("no autosave was published during a ~200ms run")
	}
	if last.Impl != im.Name || len(last.Trees) > last.Roots {
		t.Fatalf("autosaved checkpoint malformed: %v", last)
	}

	// The last mid-run snapshot must be a sound resume point.
	resumed, err := Consensus(im, Options{Memoize: true, ResumeFrom: last})
	if err != nil {
		t.Fatal(err)
	}
	plain, err := Consensus(im, Options{Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(stripStats(resumed), stripStats(plain)) {
		t.Errorf("resume from autosaved checkpoint differs from uninterrupted run\nresumed: %+v\nplain:   %+v",
			resumed, plain)
	}
}

// TestConsensusHeartbeats checks the liveness records on a normal run's
// final snapshot: one per worker, all idle once the engine has joined
// them.
func TestConsensusHeartbeats(t *testing.T) {
	rep, err := Consensus(consensus.TAS2(), Options{Parallelism: 2})
	if err != nil {
		t.Fatal(err)
	}
	if got := len(rep.Stats.Heartbeats); got != rep.Stats.Workers {
		t.Fatalf("heartbeats = %d, want one per worker (%d)", got, rep.Stats.Workers)
	}
	for _, hb := range rep.Stats.Heartbeats {
		if hb.Mask != -1 {
			t.Errorf("worker %d still claims mask %d after join", hb.Worker, hb.Mask)
		}
		if hb.SinceProgress < 0 {
			t.Errorf("worker %d has negative idle %v", hb.Worker, hb.SinceProgress)
		}
	}
}

// wedgeImpl builds a 1-process consensus implementation whose object spec
// blocks on the returned channel at its first application: from the
// engine's point of view a worker wedged inside user code that never
// polls the context. Close the channel to let the goroutine unwind.
func wedgeImpl() (*program.Implementation, chan struct{}) {
	block := make(chan struct{})
	spec := &types.Spec{
		Name:          "wedge",
		Ports:         1,
		Deterministic: true,
		Alphabet:      []types.Invocation{types.Inv(types.OpRead, 0, 0)},
		Step: func(q types.State, port int, inv types.Invocation) []types.Transition {
			<-block
			return []types.Transition{{Next: q, Resp: types.OK}}
		},
	}
	machine := program.FuncMachine{
		StartFn: func(inv types.Invocation, _ any) any { return inv.A },
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			if resp.Label == types.LabelOK {
				return program.ReturnAction(types.ValOf(state.(int)), nil), state
			}
			return program.InvokeAction(0, types.Inv(types.OpRead, 0, 0)), state
		},
	}
	im := &program.Implementation{
		Name:     "wedge-consensus",
		Target:   types.Consensus(1),
		Procs:    1,
		Objects:  []program.ObjectDecl{{Name: "w", Spec: spec, Init: 0, PortOf: program.AllPorts(1)}},
		Machines: []program.Machine{machine},
	}
	return im, block
}

// TestConsensusStallWatchdog wedges a worker inside a Spec.Step that
// never returns and checks the watchdog contract: the run comes back
// (instead of hanging forever) with a Partial report, Coverage reason
// "stall", and a *StallError identifying the worker, its tree, and the
// fact that its goroutine had to be abandoned.
func TestConsensusStallWatchdog(t *testing.T) {
	im, block := wedgeImpl()
	defer close(block) // let the abandoned goroutine reclaim itself
	opts := Options{
		Parallelism: 1,
		StallAfter:  30 * time.Millisecond,
	}
	start := time.Now()
	rep, err := Consensus(im, opts)
	elapsed := time.Since(start)

	var se *StallError
	if !errors.As(err, &se) {
		t.Fatalf("err = %v, want *StallError", err)
	}
	if se.Worker != 0 || se.Mask != 0 {
		t.Errorf("stall = %+v, want worker 0 on mask 0", se)
	}
	if se.Idle < opts.StallAfter {
		t.Errorf("stall flagged after only %v idle, watchdog armed at %v", se.Idle, opts.StallAfter)
	}
	if !se.Abandoned {
		t.Error("a worker wedged inside Step must be reported as abandoned")
	}
	if len(se.Proposals) != 1 {
		t.Errorf("stall proposals = %v, want the 1-process vector", se.Proposals)
	}
	if se.Error() == "" {
		t.Error("empty StallError message")
	}
	if rep == nil || !rep.Partial || rep.Coverage == nil || rep.Coverage.Reason != CoverageStall {
		t.Fatalf("report = %+v, want Partial with coverage reason %q", rep, CoverageStall)
	}
	if rep.Checkpoint == nil {
		t.Error("stalled run carries no checkpoint")
	}
	// Watchdog latency: ~StallAfter detection + a grace period capped well
	// under the 2s abandonment clamp. 1.5s leaves slack on loaded CI.
	if elapsed > 1500*time.Millisecond {
		t.Errorf("stalled run took %v to come back", elapsed)
	}
}
