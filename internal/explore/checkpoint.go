package explore

import (
	"errors"
	"fmt"
	"sort"
	"sync/atomic"

	"waitfree/internal/faults"
	"waitfree/internal/program"
)

// This file implements checkpoint/resume for the consensus engines. A
// consensus check is a set of independent proposal-vector trees merged in
// mask order; its natural frontier state is simply "which trees are fully
// explored, and what did each contribute". A cancelled ConsensusKContext
// snapshots exactly that into a JSON-serializable Checkpoint, and a later
// run resumes by merging the stored per-tree results instead of
// re-exploring them. Because each tree's result is a pure function of the
// implementation, a resumed run reaches the same report as an
// uninterrupted one.
//
// Checkpoints are symmetry-agnostic in both directions: a tree result is
// the same whether the tree was explored or replayed from its orbit
// representative, so a checkpoint written under Options.Symmetry resumes
// cleanly without it and vice versa. A symmetry-reduced resume replays
// missing orbit members from any preloaded sibling (see ConsensusKContext).

// CheckpointVersion is the serialization version stamped into every
// Checkpoint; resuming from a different version is rejected.
const CheckpointVersion = 1

// ErrBadCheckpoint is the sentinel wrapped when Options.ResumeFrom does
// not match the run it is offered to (different implementation, proposal
// range, process count, or fault model) or is malformed.
var ErrBadCheckpoint = errors.New("explore: checkpoint does not match this run")

// TreeResult is one fully explored, violation-free proposal-vector tree as
// stored in a Checkpoint: the tree's merged counters, access bounds, and
// decided values.
type TreeResult struct {
	// Mask identifies the tree's proposal vector (ProposalVectorK order).
	Mask      int              `json:"mask"`
	Nodes     int64            `json:"nodes"`
	Leaves    int64            `json:"leaves"`
	MemoHits  int64            `json:"memo_hits"`
	Depth     int              `json:"depth"`
	MaxAccess []int            `json:"max_access"`
	OpAccess  []map[string]int `json:"op_access"`
	ProcSteps []int            `json:"proc_steps"`
	// Decided lists the values decided in at least one execution of this
	// tree, sorted.
	Decided  []int `json:"decided"`
	Degraded bool  `json:"degraded,omitempty"`
}

// Checkpoint is the frontier snapshot of a cancelled consensus
// exploration: enough state to resume the run where it stopped. It is
// JSON-serializable end to end (the CLIs' -checkpoint flag round-trips it
// through a file).
type Checkpoint struct {
	// Version is CheckpointVersion at snapshot time.
	Version int `json:"version"`
	// Impl fingerprints the implementation by name; Procs, Values, and
	// Roots pin the run's shape. Resume validates all four.
	Impl   string `json:"impl"`
	Procs  int    `json:"procs"`
	Values int    `json:"values"`
	Roots  int    `json:"roots"`
	// Faults is the fault model the trees were explored under; resuming
	// under a different model would merge incomparable tree results.
	Faults faults.Model `json:"faults"`
	// Trees holds the fully explored trees, in mask order.
	Trees []TreeResult `json:"trees"`
}

// Remaining reports how many trees are left to explore. A malformed
// checkpoint can claim more trees than roots; Remaining clamps to zero so
// progress arithmetic (ETA bars, "N trees left" messages) never goes
// negative — validateFor rejects such a checkpoint before it is resumed.
func (c *Checkpoint) Remaining() int {
	if r := c.Roots - len(c.Trees); r > 0 {
		return r
	}
	return 0
}

// String renders a one-line progress summary.
func (c *Checkpoint) String() string {
	return fmt.Sprintf("checkpoint: %s procs=%d values=%d trees %d/%d done",
		c.Impl, c.Procs, c.Values, len(c.Trees), c.Roots)
}

// validateFor checks that the checkpoint belongs to this exact run shape.
func (c *Checkpoint) validateFor(im *program.Implementation, k, roots int, model faults.Model) error {
	if c.Version != CheckpointVersion {
		return fmt.Errorf("%w: version %d, want %d", ErrBadCheckpoint, c.Version, CheckpointVersion)
	}
	if c.Impl != im.Name {
		return fmt.Errorf("%w: implementation %q, want %q", ErrBadCheckpoint, c.Impl, im.Name)
	}
	if c.Procs != im.Procs || c.Values != k || c.Roots != roots {
		return fmt.Errorf("%w: shape procs=%d values=%d roots=%d, want procs=%d values=%d roots=%d",
			ErrBadCheckpoint, c.Procs, c.Values, c.Roots, im.Procs, k, roots)
	}
	if c.Faults != model {
		return fmt.Errorf("%w: fault model %v, want %v", ErrBadCheckpoint, c.Faults, model)
	}
	if len(c.Trees) > c.Roots {
		return fmt.Errorf("%w: %d trees recorded for %d roots", ErrBadCheckpoint, len(c.Trees), c.Roots)
	}
	seen := make(map[int]bool, len(c.Trees))
	for i := range c.Trees {
		tr := &c.Trees[i]
		if tr.Mask < 0 || tr.Mask >= roots {
			return fmt.Errorf("%w: tree mask %d out of range [0,%d)", ErrBadCheckpoint, tr.Mask, roots)
		}
		if seen[tr.Mask] {
			return fmt.Errorf("%w: duplicate tree mask %d", ErrBadCheckpoint, tr.Mask)
		}
		seen[tr.Mask] = true
		if len(tr.MaxAccess) != len(im.Objects) || len(tr.OpAccess) != len(im.Objects) || len(tr.ProcSteps) != im.Procs {
			return fmt.Errorf("%w: tree %d has mismatched bound shapes", ErrBadCheckpoint, tr.Mask)
		}
	}
	return nil
}

// treeResultOf converts one completed tree outcome into its checkpoint
// form.
func treeResultOf(mask int, out *treeOutcome) TreeResult {
	res := out.res
	tr := TreeResult{
		Mask:      mask,
		Nodes:     res.Nodes,
		Leaves:    res.Leaves,
		MemoHits:  res.MemoHits,
		Depth:     res.Depth,
		MaxAccess: append([]int(nil), res.MaxAccess...),
		OpAccess:  make([]map[string]int, len(res.OpAccess)),
		ProcSteps: append([]int(nil), res.ProcSteps...),
		Degraded:  res.Degraded,
	}
	for o, ops := range res.OpAccess {
		tr.OpAccess[o] = make(map[string]int, len(ops))
		for op, v := range ops {
			tr.OpAccess[o][op] = v
		}
	}
	for v := range out.decided {
		tr.Decided = append(tr.Decided, v)
	}
	sort.Ints(tr.Decided)
	return tr
}

// outcome converts a checkpointed tree back into the in-memory form the
// merge loop consumes.
func (tr *TreeResult) outcome() treeOutcome {
	res := &Result{
		Nodes:     tr.Nodes,
		Leaves:    tr.Leaves,
		MemoHits:  tr.MemoHits,
		Depth:     tr.Depth,
		MaxAccess: append([]int(nil), tr.MaxAccess...),
		OpAccess:  make([]map[string]int, len(tr.OpAccess)),
		ProcSteps: append([]int(nil), tr.ProcSteps...),
		Degraded:  tr.Degraded,
	}
	for o, ops := range tr.OpAccess {
		res.OpAccess[o] = make(map[string]int, len(ops))
		for op, v := range ops {
			res.OpAccess[o][op] = v
		}
	}
	decided := make(map[int]bool, len(tr.Decided))
	for _, v := range tr.Decided {
		decided[v] = true
	}
	return treeOutcome{res: res, decided: decided}
}

// buildCheckpoint snapshots every fully explored, violation-free tree
// (including ones preloaded from a previous checkpoint, so resuming twice
// keeps accumulating). done gates the reads: outcomes[mask] is only
// touched after done[mask] observes true, so the autosave supervisor can
// snapshot concurrently with running workers without racing their stores.
func buildCheckpoint(im *program.Implementation, k, roots int, model faults.Model, outcomes []treeOutcome, done []atomic.Bool) *Checkpoint {
	cp := &Checkpoint{
		Version: CheckpointVersion,
		Impl:    im.Name,
		Procs:   im.Procs,
		Values:  k,
		Roots:   roots,
		Faults:  model,
	}
	for mask := range outcomes {
		if !done[mask].Load() {
			continue
		}
		out := &outcomes[mask]
		if out.res == nil || out.err != nil || out.res.Violation != nil {
			continue
		}
		cp.Trees = append(cp.Trees, treeResultOf(mask, out))
	}
	return cp
}
