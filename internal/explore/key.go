package explore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"math"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"

	"waitfree/internal/program"
	"waitfree/internal/types"
)

// This file implements the explorer's configuration keys and memo table.
//
// A configuration (object states + per-process control states) must be
// rendered into a map key once per DFS node under memoization. The
// rendering used to be fmt.Sprintf("%#v|%#v", ...), which spends most of
// its time in fmt's reflection-based formatter; profiles of memoized runs
// showed the key rendering dominating the exploration itself. The encoder
// below writes the same information into a reused byte buffer with
// hand-rolled fast paths for the framework's own value types (ints,
// strings, Response, Invocation, Action) and a single reflection walk for
// user-defined machine/object states, interning their reflect.Types into
// small ids.
//
// Keys only need to be injective and stable within one encoder: type-id
// interning is per-encoder, so encounter order cannot differ between two
// encodings of equal configs. The memo table still lives for a single
// execution tree — memo hits skip the per-leaf checks, and validity
// depends on the tree's proposal vector — but the per-tree restriction no
// longer caps deduplication across symmetric trees: the symmetry layer
// (symmetry.go) goes further than sharing a table across the orbit of a
// proposal vector's permutations, skipping the member trees outright and
// replaying the representative's outcome, with canonKey certifying at the
// roots that the orbit really is one tree up to process renaming.

// Key tags. Every encoded value starts with a tag byte so that values of
// different shapes can never collide byte-wise (e.g. int 1 vs true vs "1").
const (
	tagNil byte = iota
	tagFalse
	tagTrue
	tagInt
	tagString
	tagResponse
	tagInvocation
	tagAction
	tagProc
	tagSep
	tagReflect
	tagFloat
	tagFmt
	tagMap
)

// keyEncoder renders configurations into compact deterministic byte keys.
// Not safe for concurrent use; each explorer owns one.
type keyEncoder struct {
	buf     []byte
	typeIDs map[reflect.Type]uint64
}

func newKeyEncoder() *keyEncoder {
	return &keyEncoder{
		buf:     make([]byte, 0, 256),
		typeIDs: make(map[reflect.Type]uint64),
	}
}

// configKey encodes c into the encoder's reused buffer and returns it. The
// returned slice is invalidated by the next configKey call; callers that
// need to retain the key must copy it (string(key)).
func (e *keyEncoder) configKey(c *config) []byte {
	b := e.buf[:0]
	for i := range c.objs {
		b = e.appendAny(b, c.objs[i])
	}
	b = append(b, tagSep)
	for i := range c.procs {
		b = e.appendProc(b, &c.procs[i])
	}
	e.buf = b
	return b
}

// appendProc encodes one process's control state.
func (e *keyEncoder) appendProc(b []byte, ps *procState) []byte {
	b = append(b, tagProc)
	b = binary.AppendVarint(b, int64(ps.OpIdx))
	if ps.Done {
		b = append(b, tagTrue)
	} else {
		b = append(b, tagFalse)
	}
	// Crash/step flags are configuration state under fault exploration:
	// leaf checks depend on which processes survived, so configurations
	// differing only in them must never be conflated.
	if ps.Crashed {
		b = append(b, tagTrue)
	} else {
		b = append(b, tagFalse)
	}
	if ps.Stepped {
		b = append(b, tagTrue)
	} else {
		b = append(b, tagFalse)
	}
	// The recovery count is encoded unconditionally: it is constantly 0
	// outside crash-recovery mode (one varint byte, no fragmentation), and
	// under crash-recovery it keeps the budget predicates config-derivable
	// and makes recovery edges cycle-free by construction.
	b = binary.AppendVarint(b, int64(ps.Recoveries))
	b = e.appendAny(b, ps.Mem)
	b = e.appendAny(b, ps.Mst)
	b = e.appendAction(b, ps.Pending)
	return appendResponse(b, ps.Resp)
}

// canonKey encodes c up to process permutation: the object states
// positionally (a process permutation of a fully ported oblivious
// implementation fixes every object slot), then the per-process encodings
// in sorted byte order. Configurations that differ only by a renaming of
// behaviorally identical processes therefore share a canonical key — the
// certificate verifyOrbitRoots checks before symmetry reduction trusts a
// declared SymmetricProcs. Off the memo hot path, so the key is freshly
// allocated (unlike configKey's reused buffer) and survives later calls.
// perm lists the processes in canonical order (perm[i] occupies slot i);
// equal encodings tie-break by index, keeping the order deterministic.
func (e *keyEncoder) canonKey(c *config) (key []byte, perm []int) {
	encs := make([][]byte, len(c.procs))
	for p := range c.procs {
		encs[p] = e.appendProc(nil, &c.procs[p])
	}
	perm = make([]int, len(c.procs))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool {
		if cmp := bytes.Compare(encs[perm[i]], encs[perm[j]]); cmp != 0 {
			return cmp < 0
		}
		return perm[i] < perm[j]
	})
	for i := range c.objs {
		key = e.appendAny(key, c.objs[i])
	}
	key = append(key, tagSep)
	for _, p := range perm {
		key = append(key, encs[p]...)
	}
	return key, perm
}

func appendResponse(b []byte, r types.Response) []byte {
	b = append(b, tagResponse)
	b = binary.AppendUvarint(b, uint64(len(r.Label)))
	b = append(b, r.Label...)
	return binary.AppendVarint(b, int64(r.Val))
}

func appendInvocation(b []byte, inv types.Invocation) []byte {
	b = append(b, tagInvocation)
	b = binary.AppendUvarint(b, uint64(len(inv.Op)))
	b = append(b, inv.Op...)
	b = binary.AppendVarint(b, int64(inv.A))
	return binary.AppendVarint(b, int64(inv.B))
}

func (e *keyEncoder) appendAction(b []byte, a program.Action) []byte {
	b = append(b, tagAction)
	b = binary.AppendVarint(b, int64(a.Kind))
	b = binary.AppendVarint(b, int64(a.Obj))
	b = appendInvocation(b, a.Inv)
	b = appendResponse(b, a.Resp)
	return e.appendAny(b, a.Mem)
}

// appendAny encodes one object state, machine state, or memory value. The
// type switch covers the values the framework itself produces; everything
// else takes the reflection path. Note that the fast paths match exact
// types only (a named `type foo int` falls through to reflection and gets
// its own type id), so distinct types never share an encoding.
func (e *keyEncoder) appendAny(b []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(b, tagNil)
	case bool:
		if x {
			return append(b, tagTrue)
		}
		return append(b, tagFalse)
	case int:
		b = append(b, tagInt)
		return binary.AppendVarint(b, int64(x))
	case string:
		b = append(b, tagString)
		b = binary.AppendUvarint(b, uint64(len(x)))
		return append(b, x...)
	case types.Response:
		return appendResponse(b, x)
	case types.Invocation:
		return appendInvocation(b, x)
	default:
		return e.appendReflect(b, reflect.ValueOf(v))
	}
}

// appendReflect encodes a value of a type without a fast path: an interned
// type id followed by the value's fields, recursively.
func (e *keyEncoder) appendReflect(b []byte, rv reflect.Value) []byte {
	b = append(b, tagReflect)
	t := rv.Type()
	id, ok := e.typeIDs[t]
	if !ok {
		id = uint64(len(e.typeIDs) + 1)
		e.typeIDs[t] = id
	}
	b = binary.AppendUvarint(b, id)
	return e.appendValue(b, rv)
}

func (e *keyEncoder) appendValue(b []byte, rv reflect.Value) []byte {
	switch rv.Kind() {
	case reflect.Bool:
		if rv.Bool() {
			return append(b, tagTrue)
		}
		return append(b, tagFalse)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return binary.AppendVarint(b, rv.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return binary.AppendUvarint(b, rv.Uint())
	case reflect.Float32, reflect.Float64:
		b = append(b, tagFloat)
		return binary.AppendUvarint(b, math.Float64bits(rv.Float()))
	case reflect.String:
		s := rv.String()
		b = append(b, tagString)
		b = binary.AppendUvarint(b, uint64(len(s)))
		return append(b, s...)
	case reflect.Struct:
		// Fields are tagged with their index implicitly by position; the
		// struct's type id already pins the field count and types.
		for i := 0; i < rv.NumField(); i++ {
			b = e.appendValue(b, rv.Field(i))
		}
		return b
	case reflect.Array:
		for i := 0; i < rv.Len(); i++ {
			b = e.appendValue(b, rv.Index(i))
		}
		return b
	case reflect.Interface:
		if rv.IsNil() {
			return append(b, tagNil)
		}
		return e.appendReflect(b, rv.Elem())
	case reflect.Map:
		// Map iteration order is randomized, so entries are encoded
		// individually and sorted by their encoded bytes — distinct keys
		// have distinct self-delimiting encodings, so this is equivalent to
		// sorting by key and the rendering is deterministic. The historical
		// tagFmt fallback left determinism to fmt's key sorting, which does
		// not cover every key type and ties the key format to fmt internals.
		if rv.IsNil() {
			return append(b, tagNil)
		}
		b = append(b, tagMap)
		b = binary.AppendUvarint(b, uint64(rv.Len()))
		entries := make([][]byte, 0, rv.Len())
		iter := rv.MapRange()
		for iter.Next() {
			eb := e.appendReflect(nil, iter.Key())
			eb = e.appendReflect(eb, iter.Value())
			entries = append(entries, eb)
		}
		sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i], entries[j]) < 0 })
		for _, eb := range entries {
			b = append(b, eb...)
		}
		return b
	default:
		// States are documented as pointer-free comparable values, so this
		// branch is unreachable for well-formed types. Keep correctness for
		// strays (pointers, chans) by falling back to the fmt rendering the
		// explorer used historically. fmt replaces a reflect.Value operand
		// by the value it holds, so this works for unexported fields too.
		b = append(b, tagFmt)
		return fmt.Appendf(b, "%#v", rv)
	}
}

// ---- memo table ----

// memoShardCount is a power of two; 16 shards keep lock contention
// negligible even when a future intra-tree parallel explorer shares one
// table.
const memoShardCount = 16

// grayMark is the sentinel stored while a configuration is on the current
// DFS stack; encountering it again along one path is a cycle (the
// implementation is not wait-free). The single table replaces the two maps
// (memo + color) the explorer used to allocate.
var grayMark = &summary{}

// memoTable is the configuration memo: a byte-keyed hash map sharded by a
// maphash of the key. Shards lock independently, so a table is safe for
// concurrent explorers; the current explorer uses one table per execution
// tree single-threadedly, where the uncontended locks are nearly free.
//
// A positive budget caps the number of retained entries: when a put would
// exceed it, every cached (non-gray) entry is evicted and the table is
// flagged degraded. Gray marks are the DFS stack and are always kept, so
// cycle detection stays exact; eviction only trades memo hits for repeated
// work, deterministically.
type memoTable struct {
	seed     maphash.Seed
	budget   int
	count    atomic.Int64
	degraded atomic.Bool
	shards   [memoShardCount]memoShard
}

type memoShard struct {
	mu sync.Mutex
	m  map[string]*summary
}

func newMemoTable(budget int) *memoTable {
	t := &memoTable{seed: maphash.MakeSeed(), budget: budget}
	for i := range t.shards {
		t.shards[i].m = make(map[string]*summary)
	}
	return t
}

// evict drops every non-gray entry (the graceful-degradation path of a
// budgeted table).
func (t *memoTable) evict() {
	var kept int64
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, v := range s.m {
			if v == grayMark {
				kept++
				continue
			}
			delete(s.m, k)
		}
		s.mu.Unlock()
	}
	t.count.Store(kept)
	t.degraded.Store(true)
}

func (t *memoTable) shardOf(key []byte) *memoShard {
	h := maphash.Bytes(t.seed, key)
	return &t.shards[h&(memoShardCount-1)]
}

// get looks a key up without allocating (the string conversion in the map
// index is optimized away by the compiler).
func (t *memoTable) get(key []byte) (*summary, bool) {
	s := t.shardOf(key)
	s.mu.Lock()
	v, ok := s.m[string(key)]
	s.mu.Unlock()
	return v, ok
}

// put stores sum under a retained (string) key, evicting first if the
// budget would be exceeded by a new entry.
func (t *memoTable) put(key string, sum *summary) {
	if t.budget > 0 && t.count.Load() >= int64(t.budget) {
		t.evict()
	}
	s := &t.shards[maphash.String(t.seed, key)&(memoShardCount-1)]
	s.mu.Lock()
	if _, existed := s.m[key]; !existed {
		t.count.Add(1)
	}
	s.m[key] = sum
	s.mu.Unlock()
}

// drop removes a key (used to clear the gray mark when a subtree errors).
func (t *memoTable) drop(key string) {
	s := &t.shards[maphash.String(t.seed, key)&(memoShardCount-1)]
	s.mu.Lock()
	if _, existed := s.m[key]; existed {
		t.count.Add(-1)
	}
	delete(s.m, key)
	s.mu.Unlock()
}

// grayKeys returns the keys currently marked on-stack (test hook: after a
// run no gray marks may survive, or a later exploration reusing the table
// would report a phantom cycle).
func (t *memoTable) grayKeys() []string {
	var out []string
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, v := range s.m {
			if v == grayMark {
				out = append(out, k)
			}
		}
		s.mu.Unlock()
	}
	return out
}
