package explore

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"hash/maphash"
	"math"
	"reflect"
	"sort"
	"sync"
	"sync/atomic"

	"waitfree/internal/fsx"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// This file implements the explorer's configuration keys and memo table.
//
// A configuration (object states + per-process control states) must be
// rendered into a map key once per DFS node under memoization. The
// rendering used to be fmt.Sprintf("%#v|%#v", ...), which spends most of
// its time in fmt's reflection-based formatter; profiles of memoized runs
// showed the key rendering dominating the exploration itself. The encoder
// below writes the same information into a reused byte buffer with
// hand-rolled fast paths for the framework's own value types (ints,
// strings, Response, Invocation, Action) and a single reflection walk for
// user-defined machine/object states, interning their reflect.Types into
// small ids.
//
// Keys only need to be injective and stable within one encoder: type-id
// interning is per-encoder, so encounter order cannot differ between two
// encodings of equal configs. The memo table still lives for a single
// execution tree — memo hits skip the per-leaf checks, and validity
// depends on the tree's proposal vector — but the per-tree restriction no
// longer caps deduplication across symmetric trees: the symmetry layer
// (symmetry.go) goes further than sharing a table across the orbit of a
// proposal vector's permutations, skipping the member trees outright and
// replaying the representative's outcome, with canonKey certifying at the
// roots that the orbit really is one tree up to process renaming.

// Key tags. Every encoded value starts with a tag byte so that values of
// different shapes can never collide byte-wise (e.g. int 1 vs true vs "1").
const (
	tagNil byte = iota
	tagFalse
	tagTrue
	tagInt
	tagString
	tagResponse
	tagInvocation
	tagAction
	tagProc
	tagSep
	tagReflect
	tagFloat
	tagFmt
	tagMap
)

// keyEncoder renders configurations into compact deterministic byte keys.
// Not safe for concurrent use; each explorer owns one.
type keyEncoder struct {
	buf     []byte
	typeIDs map[reflect.Type]uint64
}

func newKeyEncoder() *keyEncoder {
	return &keyEncoder{
		buf:     make([]byte, 0, 256),
		typeIDs: make(map[reflect.Type]uint64),
	}
}

// configKey encodes c into the encoder's reused buffer and returns it. The
// returned slice is invalidated by the next configKey call; callers that
// need to retain the key must copy it (string(key)).
func (e *keyEncoder) configKey(c *config) []byte {
	b := e.buf[:0]
	for i := range c.objs {
		b = e.appendAny(b, c.objs[i])
	}
	b = append(b, tagSep)
	for i := range c.procs {
		b = e.appendProc(b, &c.procs[i])
	}
	e.buf = b
	return b
}

// appendProc encodes one process's control state.
func (e *keyEncoder) appendProc(b []byte, ps *procState) []byte {
	b = append(b, tagProc)
	b = binary.AppendVarint(b, int64(ps.OpIdx))
	if ps.Done {
		b = append(b, tagTrue)
	} else {
		b = append(b, tagFalse)
	}
	// Crash/step flags are configuration state under fault exploration:
	// leaf checks depend on which processes survived, so configurations
	// differing only in them must never be conflated.
	if ps.Crashed {
		b = append(b, tagTrue)
	} else {
		b = append(b, tagFalse)
	}
	if ps.Stepped {
		b = append(b, tagTrue)
	} else {
		b = append(b, tagFalse)
	}
	// The recovery count is encoded unconditionally: it is constantly 0
	// outside crash-recovery mode (one varint byte, no fragmentation), and
	// under crash-recovery it keeps the budget predicates config-derivable
	// and makes recovery edges cycle-free by construction.
	b = binary.AppendVarint(b, int64(ps.Recoveries))
	b = e.appendAny(b, ps.Mem)
	b = e.appendAny(b, ps.Mst)
	b = e.appendAction(b, ps.Pending)
	return appendResponse(b, ps.Resp)
}

// canonKey encodes c up to process permutation: the object states
// positionally (a process permutation of a fully ported oblivious
// implementation fixes every object slot), then the per-process encodings
// in sorted byte order. Configurations that differ only by a renaming of
// behaviorally identical processes therefore share a canonical key — the
// certificate verifyOrbitRoots checks before symmetry reduction trusts a
// declared SymmetricProcs. Off the memo hot path, so the key is freshly
// allocated (unlike configKey's reused buffer) and survives later calls.
// perm lists the processes in canonical order (perm[i] occupies slot i);
// equal encodings tie-break by index, keeping the order deterministic.
func (e *keyEncoder) canonKey(c *config) (key []byte, perm []int) {
	encs := make([][]byte, len(c.procs))
	for p := range c.procs {
		encs[p] = e.appendProc(nil, &c.procs[p])
	}
	perm = make([]int, len(c.procs))
	for i := range perm {
		perm[i] = i
	}
	sort.Slice(perm, func(i, j int) bool {
		if cmp := bytes.Compare(encs[perm[i]], encs[perm[j]]); cmp != 0 {
			return cmp < 0
		}
		return perm[i] < perm[j]
	})
	for i := range c.objs {
		key = e.appendAny(key, c.objs[i])
	}
	key = append(key, tagSep)
	for _, p := range perm {
		key = append(key, encs[p]...)
	}
	return key, perm
}

func appendResponse(b []byte, r types.Response) []byte {
	b = append(b, tagResponse)
	b = binary.AppendUvarint(b, uint64(len(r.Label)))
	b = append(b, r.Label...)
	return binary.AppendVarint(b, int64(r.Val))
}

func appendInvocation(b []byte, inv types.Invocation) []byte {
	b = append(b, tagInvocation)
	b = binary.AppendUvarint(b, uint64(len(inv.Op)))
	b = append(b, inv.Op...)
	b = binary.AppendVarint(b, int64(inv.A))
	return binary.AppendVarint(b, int64(inv.B))
}

func (e *keyEncoder) appendAction(b []byte, a program.Action) []byte {
	b = append(b, tagAction)
	b = binary.AppendVarint(b, int64(a.Kind))
	b = binary.AppendVarint(b, int64(a.Obj))
	b = appendInvocation(b, a.Inv)
	b = appendResponse(b, a.Resp)
	return e.appendAny(b, a.Mem)
}

// appendAny encodes one object state, machine state, or memory value. The
// type switch covers the values the framework itself produces; everything
// else takes the reflection path. Note that the fast paths match exact
// types only (a named `type foo int` falls through to reflection and gets
// its own type id), so distinct types never share an encoding.
func (e *keyEncoder) appendAny(b []byte, v any) []byte {
	switch x := v.(type) {
	case nil:
		return append(b, tagNil)
	case bool:
		if x {
			return append(b, tagTrue)
		}
		return append(b, tagFalse)
	case int:
		b = append(b, tagInt)
		return binary.AppendVarint(b, int64(x))
	case string:
		b = append(b, tagString)
		b = binary.AppendUvarint(b, uint64(len(x)))
		return append(b, x...)
	case types.Response:
		return appendResponse(b, x)
	case types.Invocation:
		return appendInvocation(b, x)
	default:
		return e.appendReflect(b, reflect.ValueOf(v))
	}
}

// appendReflect encodes a value of a type without a fast path: an interned
// type id followed by the value's fields, recursively.
func (e *keyEncoder) appendReflect(b []byte, rv reflect.Value) []byte {
	b = append(b, tagReflect)
	t := rv.Type()
	id, ok := e.typeIDs[t]
	if !ok {
		id = uint64(len(e.typeIDs) + 1)
		e.typeIDs[t] = id
	}
	b = binary.AppendUvarint(b, id)
	return e.appendValue(b, rv)
}

func (e *keyEncoder) appendValue(b []byte, rv reflect.Value) []byte {
	switch rv.Kind() {
	case reflect.Bool:
		if rv.Bool() {
			return append(b, tagTrue)
		}
		return append(b, tagFalse)
	case reflect.Int, reflect.Int8, reflect.Int16, reflect.Int32, reflect.Int64:
		return binary.AppendVarint(b, rv.Int())
	case reflect.Uint, reflect.Uint8, reflect.Uint16, reflect.Uint32, reflect.Uint64, reflect.Uintptr:
		return binary.AppendUvarint(b, rv.Uint())
	case reflect.Float32, reflect.Float64:
		b = append(b, tagFloat)
		return binary.AppendUvarint(b, math.Float64bits(rv.Float()))
	case reflect.String:
		s := rv.String()
		b = append(b, tagString)
		b = binary.AppendUvarint(b, uint64(len(s)))
		return append(b, s...)
	case reflect.Struct:
		// Fields are tagged with their index implicitly by position; the
		// struct's type id already pins the field count and types.
		for i := 0; i < rv.NumField(); i++ {
			b = e.appendValue(b, rv.Field(i))
		}
		return b
	case reflect.Array:
		for i := 0; i < rv.Len(); i++ {
			b = e.appendValue(b, rv.Index(i))
		}
		return b
	case reflect.Interface:
		if rv.IsNil() {
			return append(b, tagNil)
		}
		return e.appendReflect(b, rv.Elem())
	case reflect.Map:
		// Map iteration order is randomized, so entries are encoded
		// individually and sorted by their encoded bytes — distinct keys
		// have distinct self-delimiting encodings, so this is equivalent to
		// sorting by key and the rendering is deterministic. The historical
		// tagFmt fallback left determinism to fmt's key sorting, which does
		// not cover every key type and ties the key format to fmt internals.
		if rv.IsNil() {
			return append(b, tagNil)
		}
		b = append(b, tagMap)
		b = binary.AppendUvarint(b, uint64(rv.Len()))
		entries := make([][]byte, 0, rv.Len())
		iter := rv.MapRange()
		for iter.Next() {
			eb := e.appendReflect(nil, iter.Key())
			eb = e.appendReflect(eb, iter.Value())
			entries = append(entries, eb)
		}
		sort.Slice(entries, func(i, j int) bool { return bytes.Compare(entries[i], entries[j]) < 0 })
		for _, eb := range entries {
			b = append(b, eb...)
		}
		return b
	default:
		// States are documented as pointer-free comparable values, so this
		// branch is unreachable for well-formed types. Keep correctness for
		// strays (pointers, chans) by falling back to the fmt rendering the
		// explorer used historically. fmt replaces a reflect.Value operand
		// by the value it holds, so this works for unexported fields too.
		b = append(b, tagFmt)
		return fmt.Appendf(b, "%#v", rv)
	}
}

// ---- memo table ----

// memoShardCount is a power of two; 16 shards keep lock contention
// negligible even when a future intra-tree parallel explorer shares one
// table.
const memoShardCount = 16

// grayMark is the sentinel stored while a configuration is on the current
// DFS stack; encountering it again along one path is a cycle (the
// implementation is not wait-free). The single table replaces the two maps
// (memo + color) the explorer used to allocate.
var grayMark = &summary{}

// memoTable is the configuration memo: a byte-keyed hash map sharded by a
// maphash of the key. Shards lock independently, so a table is safe for
// concurrent explorers; the current explorer uses one table per execution
// tree single-threadedly, where the uncontended locks are nearly free.
//
// A positive budget caps the number of retained cached entries. Gray marks
// are the DFS stack: they never count toward the budget and are never
// evicted, so cycle detection stays exact at any budget. When an insert
// would exceed the budget, entries are reclaimed one at a time in
// insertion order with a second chance (an entry whose ref bit was set by
// a hit since its last consideration is requeued instead of dropped) —
// amortized O(1) per insert, never a full-table scan. Eviction order
// depends only on the put/get sequence, not on hash placement, so a
// single-threaded exploration evicts deterministically and budgeted
// reports stay identical at every parallelism level.
//
// With a spill tier (Options.MemoSpillDir) evicted entries move to a
// checksummed disk file instead of being forgotten, and a later get serves
// them back — the budget then trades memory for disk, MemoHits match the
// unbounded run, and the table never degrades. Without one, eviction loses
// memo hits and the table is flagged degraded.
//
// The count of cached (non-gray) entries is exact under concurrency: every
// transition mutates its shard under the shard lock and adjusts the count
// by the delta it observed — there is no blind Store to race a concurrent
// Add.
type memoTable struct {
	seed     maphash.Seed
	budget   int
	count    atomic.Int64 // resident cached (non-gray) entries
	degraded atomic.Bool
	shards   [memoShardCount]memoShard

	// clock is the second-chance queue: retained keys in insertion order,
	// consumed from clockHead. Entries dropped or re-grayed out of band
	// leave stale references behind, skipped (and accounted as scans) when
	// popped.
	clockMu   sync.Mutex
	clock     []string
	clockHead int

	spill *memoSpill // nil when spill is off

	// Eviction telemetry, exported via Stats and pinned by the
	// no-evict-storm regression test: evictions counts entries actually
	// reclaimed, evictScans counts clock entries examined (eviction work),
	// spilled counts entries written to the spill tier.
	evictions  atomic.Int64
	evictScans atomic.Int64
	spilled    atomic.Int64
}

type memoShard struct {
	mu sync.Mutex
	m  map[string]*summary
}

func newMemoTable(budget int, spillDir string, fsys fsx.FS) *memoTable {
	t := &memoTable{seed: maphash.MakeSeed(), budget: budget}
	for i := range t.shards {
		t.shards[i].m = make(map[string]*summary)
	}
	if spillDir != "" && budget > 0 {
		t.spill = newMemoSpill(spillDir, fsys)
	}
	return t
}

// isDegraded reports whether this tree's memo lost entries for good:
// either an eviction fell through with no (working) spill tier, or the
// spill tier itself lost spilled entries (a rebuild, a dropped corrupt
// record, or a broken tier).
func (t *memoTable) isDegraded() bool {
	return t.degraded.Load() || (t.spill != nil && t.spill.lost)
}

// release tears the table down at tree completion, deleting the spill file
// if one was created.
func (t *memoTable) release() {
	if t.spill != nil {
		t.spill.close()
	}
}

func (t *memoTable) shardOf(key []byte) *memoShard {
	h := maphash.Bytes(t.seed, key)
	return &t.shards[h&(memoShardCount-1)]
}

// get looks a key up without allocating on the resident path (the string
// conversion in the map index is optimized away by the compiler). A hit
// sets the entry's second-chance bit. On a resident miss the spill tier is
// consulted; a spilled summary is decoded, re-admitted as a resident entry
// (possibly evicting another), and served — still a memo hit.
func (t *memoTable) get(key []byte) (*summary, bool) {
	s := t.shardOf(key)
	s.mu.Lock()
	v, ok := s.m[string(key)]
	if ok && v != grayMark {
		v.ref = true
	}
	s.mu.Unlock()
	if ok {
		return v, ok
	}
	if t.spill != nil {
		if sum, ok := t.spill.load(key); ok {
			sum.spilled = true // already on disk; never rewrite on re-evict
			t.put(string(key), sum)
			return sum, true
		}
	}
	return nil, false
}

// put stores sum under a retained (string) key. Only a put that adds a new
// cached (non-gray) entry counts toward the budget and can trigger
// eviction; replacing an existing cached entry reuses its budget slot and
// its clock position.
func (t *memoTable) put(key string, sum *summary) {
	if sum != grayMark {
		// The memo owns the summary from here on: the explorer's free list
		// must never recycle it (a later hit would observe the reuse).
		sum.retained = true
	}
	s := &t.shards[maphash.String(t.seed, key)&(memoShardCount-1)]
	s.mu.Lock()
	old, existed := s.m[key]
	s.m[key] = sum
	s.mu.Unlock()
	wasCached := existed && old != grayMark
	if sum == grayMark {
		// (Re-)graying a key: gray marks hold no budget slot. The cached
		// entry it replaced, if any, leaves a stale clock reference behind.
		if wasCached {
			t.count.Add(-1)
		}
		return
	}
	if wasCached {
		return // replacement: same slot, same clock position
	}
	t.clockMu.Lock()
	t.clock = append(t.clock, key)
	t.clockMu.Unlock()
	if n := t.count.Add(1); t.budget > 0 && n > int64(t.budget) {
		t.evict()
	}
}

// evict reclaims cached entries until the resident count is back within
// budget: pop the oldest clock reference; skip it if stale (dropped or
// re-grayed since), requeue it if its second-chance bit is set, spill or
// forget it otherwise. Each pop either retires a clock reference or clears
// a ref bit a hit set, so eviction work is amortized O(1) per insert —
// the no-evict-storm guarantee.
func (t *memoTable) evict() {
	for t.count.Load() > int64(t.budget) {
		t.clockMu.Lock()
		if t.clockHead >= len(t.clock) {
			t.clockMu.Unlock()
			return // every resident entry is gray-shadowed or in flight
		}
		key := t.clock[t.clockHead]
		t.clock[t.clockHead] = ""
		t.clockHead++
		if t.clockHead >= len(t.clock) {
			t.clock = t.clock[:0]
			t.clockHead = 0
		}
		t.clockMu.Unlock()
		t.evictScans.Add(1)

		s := &t.shards[maphash.String(t.seed, key)&(memoShardCount-1)]
		s.mu.Lock()
		v, ok := s.m[key]
		if !ok || v == grayMark {
			s.mu.Unlock()
			continue // stale reference
		}
		if v.ref {
			v.ref = false
			s.mu.Unlock()
			t.clockMu.Lock()
			t.clock = append(t.clock, key)
			t.clockMu.Unlock()
			continue // second chance
		}
		delete(s.m, key)
		s.mu.Unlock()
		t.count.Add(-1)
		t.evictions.Add(1)
		if t.spill != nil {
			if v.spilled || t.spill.store(key, v) {
				t.spilled.Add(1)
				continue
			}
			// Spill write failed: the entry is lost after all, so the run
			// degrades exactly as it would without a spill tier.
		}
		t.degraded.Store(true)
	}
}

// drop removes a key (used to clear the gray mark when a subtree errors).
func (t *memoTable) drop(key string) {
	s := &t.shards[maphash.String(t.seed, key)&(memoShardCount-1)]
	s.mu.Lock()
	v, existed := s.m[key]
	delete(s.m, key)
	s.mu.Unlock()
	if existed && v != grayMark {
		t.count.Add(-1)
	}
}

// grayKeys returns the keys currently marked on-stack (test hook: after a
// run no gray marks may survive, or a later exploration reusing the table
// would report a phantom cycle).
func (t *memoTable) grayKeys() []string {
	var out []string
	for i := range t.shards {
		s := &t.shards[i]
		s.mu.Lock()
		for k, v := range s.m {
			if v == grayMark {
				out = append(out, k)
			}
		}
		s.mu.Unlock()
	}
	return out
}
