package explore

import (
	"fmt"
	"os"
	"reflect"
	"sync"
	"testing"

	"waitfree/internal/consensus"
)

// TestMemoPutNoEvictStorm is the regression test for the evict-storm bug:
// the old put triggered a full-table eviction scan on every insert once
// gray marks alone reached the budget, turning budgeted runs quadratic.
// The fixed table counts only cached (non-gray) entries toward the budget
// and pays at most one clock scan per eviction (plus one per second
// chance), so total scan work is O(evictions), never O(inserts) per
// insert.
func TestMemoPutNoEvictStorm(t *testing.T) {
	const budget = 8
	tbl := newMemoTable(budget, "", nil)

	// A deep DFS stack: gray marks alone exceed the whole budget. They
	// hold no budget slot, so nothing is scanned and nothing is evicted.
	for i := 0; i < 4*budget; i++ {
		tbl.put(fmt.Sprintf("gray%d", i), grayMark)
	}
	if n := tbl.count.Load(); n != 0 {
		t.Fatalf("gray marks counted toward the budget: count=%d", n)
	}
	if s := tbl.evictScans.Load(); s != 0 {
		t.Fatalf("gray marks triggered eviction scans: %d", s)
	}

	// Cached inserts with no interleaved hits: every over-budget insert
	// reclaims exactly one entry with exactly one clock scan.
	const inserts = 1000
	for i := 0; i < inserts; i++ {
		tbl.put(fmt.Sprintf("key%d", i), &summary{nodes: 1})
	}
	if n := tbl.count.Load(); n != budget {
		t.Fatalf("resident count = %d, want budget %d", n, budget)
	}
	ev, scans := tbl.evictions.Load(), tbl.evictScans.Load()
	if ev != inserts-budget {
		t.Fatalf("evictions = %d, want %d", ev, inserts-budget)
	}
	if scans != ev {
		t.Fatalf("evict storm: %d clock scans for %d evictions", scans, ev)
	}

	// Replacing a resident key reuses its budget slot: no eviction.
	tbl.put(fmt.Sprintf("key%d", inserts-1), &summary{nodes: 2})
	if got := tbl.evictions.Load(); got != ev {
		t.Fatalf("replacement evicted: %d -> %d", ev, got)
	}
	if n := tbl.count.Load(); n != budget {
		t.Fatalf("replacement changed the count: %d", n)
	}

	// Second chance: a hit since last consideration spares the entry for
	// one extra scan, then the next-oldest entry goes.
	head := fmt.Sprintf("key%d", inserts-budget) // oldest resident
	if _, ok := tbl.get([]byte(head)); !ok {
		t.Fatalf("resident entry %q missing", head)
	}
	tbl.put("fresh", &summary{nodes: 1})
	if got := tbl.evictScans.Load() - scans; got != 2 {
		t.Fatalf("second chance cost %d scans, want 2 (requeue + evict)", got)
	}
	if got := tbl.evictions.Load() - ev; got != 1 {
		t.Fatalf("second chance evicted %d entries, want 1", got)
	}
	if _, ok := tbl.get([]byte(head)); !ok {
		t.Fatalf("referenced entry %q was evicted despite its second chance", head)
	}
}

// TestMemoCountExactUnderRace hammers put/get/drop (and the evictions they
// trigger) from many goroutines and then checks the budget counter against
// the ground truth. The old evict() published count with a blind Store
// that raced concurrent Adds; the fixed table only ever adjusts the count
// by deltas observed under a shard lock, so at quiescence the counter must
// equal the resident non-gray population exactly. Run under -race this
// also pins the documented "safe for concurrent explorers" claim.
func TestMemoCountExactUnderRace(t *testing.T) {
	tbl := newMemoTable(32, "", nil)
	const goroutines = 8
	const ops = 4000
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for i := 0; i < ops; i++ {
				key := fmt.Sprintf("g%d-k%d", g, i%97)
				switch i % 5 {
				case 0:
					tbl.put(key, grayMark)
				case 1, 2:
					tbl.put(key, &summary{nodes: int64(i)})
				case 3:
					tbl.get([]byte(key))
				default:
					tbl.drop(key)
				}
			}
		}(g)
	}
	wg.Wait()

	var resident int64
	for i := range tbl.shards {
		s := &tbl.shards[i]
		s.mu.Lock()
		for _, v := range s.m {
			if v != grayMark {
				resident++
			}
		}
		s.mu.Unlock()
	}
	if got := tbl.count.Load(); got != resident {
		t.Fatalf("budget counter drifted: counter %d, resident %d", got, resident)
	}
}

// TestMemoSpillPreservesHits pins the spill tier's contract: a budgeted
// run with MemoSpillDir scores exactly the memo hits of an unbounded run,
// produces the identical report, never degrades, and cleans its spill file
// up at completion. The same budget without a spill tier must still
// degrade (the flag keeps meaning "the memo lost entries for good").
func TestMemoSpillPreservesHits(t *testing.T) {
	im := consensus.Queue2()
	full, err := Consensus(im, Options{Memoize: true, Faults: oneCrash})
	if err != nil {
		t.Fatal(err)
	}
	dir := t.TempDir()
	spill, err := Consensus(im, Options{
		Memoize: true, MemoBudget: 4, MemoSpillDir: dir, Faults: oneCrash,
	})
	if err != nil {
		t.Fatal(err)
	}
	if spill.Degraded || (spill.Stats != nil && spill.Stats.Degraded) {
		t.Fatalf("spill-backed budget degraded: %s", spill.Summary())
	}
	if spill.Stats.MemoSpilled == 0 {
		t.Errorf("budget 4 spilled nothing: %+v", spill.Stats)
	}
	if spill.Stats.MemoEvictions == 0 {
		t.Errorf("budget 4 evicted nothing: %+v", spill.Stats)
	}
	if spill.MemoHits != full.MemoHits {
		t.Errorf("spill lost memo hits: %d, unbounded %d", spill.MemoHits, full.MemoHits)
	}
	if !reflect.DeepEqual(stripStats(full), stripStats(spill)) {
		t.Errorf("spill-backed report differs from unbounded:\nfull:  %+v\nspill: %+v",
			stripStats(full), stripStats(spill))
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 0 {
		t.Errorf("spill file survived tree completion: %v", entries)
	}

	noSpill, err := Consensus(im, Options{Memoize: true, MemoBudget: 4, Faults: oneCrash})
	if err != nil {
		t.Fatal(err)
	}
	if !noSpill.Degraded {
		t.Errorf("budget without spill did not degrade")
	}
}

// TestSpillRecordRoundTrip exercises the spill codec directly: arbitrary
// (newline-containing) keys and summaries survive the base64+envelope
// round trip, absent keys miss, and a corrupted record is dropped —
// confined to its own entry, never served, never breaking the tier.
func TestSpillRecordRoundTrip(t *testing.T) {
	sp := newMemoSpill(t.TempDir(), nil)
	defer sp.close()

	key := "raw\nbytes\x00with separators"
	sum := &summary{height: 3, nodes: 42, leaves: 7, acc: []int32{0, 2, 5}}
	if !sp.store(key, sum) {
		t.Fatal("store failed")
	}
	got, ok := sp.load([]byte(key))
	if !ok {
		t.Fatal("load missed a stored key")
	}
	if got.height != sum.height || got.nodes != sum.nodes || got.leaves != sum.leaves ||
		!reflect.DeepEqual(got.acc, sum.acc) {
		t.Fatalf("round trip mangled the summary: %+v want %+v", got, sum)
	}
	if _, ok := sp.load([]byte("absent")); ok {
		t.Fatal("phantom hit for a key never stored")
	}

	// Flip one byte of the stored envelope: the checksum must catch it, the
	// load must miss, the run must be flagged (the entry's hit is lost for
	// good) — and only that record dies; the tier keeps working.
	if _, err := sp.f.WriteAt([]byte{'#'}, 1); err != nil {
		t.Fatal(err)
	}
	if _, ok := sp.load([]byte(key)); ok {
		t.Fatal("corrupted record served")
	}
	if !sp.lost {
		t.Fatal("integrity failure not reported as a lost entry")
	}
	if sp.broken {
		t.Fatal("single corrupt record broke the whole tier")
	}
	if _, ok := sp.load([]byte(key)); ok {
		t.Fatal("dropped record served on a second lookup")
	}
	if !sp.store("another", sum) {
		t.Fatal("tier stopped accepting stores after a confined corruption")
	}
	if got, ok := sp.load([]byte("another")); !ok || got.nodes != sum.nodes {
		t.Fatal("entry stored after a confined corruption did not round-trip")
	}
}
