// Package explore enumerates the execution trees of Section 4.2 of Bazzi,
// Neiger, and Peterson (PODC 1994).
//
// Each node of a tree is a configuration of an implementation: the states
// of the implementing objects plus the control state of every process's
// program. A configuration's children are obtained by letting one process
// execute one low-level operation (one object access); nondeterministic
// objects additionally branch over their allowed transitions. Leaves are
// configurations where every process has completed its script of target
// operations.
//
// The explorer makes the paper's König's-lemma argument effective: for a
// deterministic, wait-free implementation the tree is finite, and the
// explorer computes its exact depth D and, more finely, per-object and
// per-operation access bounds along any root-to-leaf path — the r_b and
// w_b of Section 4.2. A cycle in the configuration graph (detected under
// memoization) or a path exceeding the step budget is evidence against
// wait-freedom and is reported as a violation together with the schedule
// that exhibits it.
package explore

import (
	"context"
	"errors"
	"fmt"
	"runtime/debug"
	"strings"
	"time"

	"waitfree/internal/faults"
	"waitfree/internal/fsx"
	"waitfree/internal/hist"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// DefaultMaxDepth is the per-path step budget when Options.MaxDepth is 0.
const DefaultMaxDepth = 4096

// Options configures a Run.
type Options struct {
	// MaxDepth is the per-path object-access budget; exceeding it is
	// reported as a wait-freedom violation. 0 means DefaultMaxDepth.
	MaxDepth int
	// Memoize deduplicates configurations reached by several paths. The
	// paper's trees replicate such configurations; memoizing changes cost,
	// never verdicts. Memoization also enables exact cycle detection.
	// Incompatible with RecordHistory.
	Memoize bool
	// RecordHistory attaches the complete concurrent history of target
	// operations to each Leaf, for linearizability checking.
	RecordHistory bool
	// OnLeaf, if set, is called at every leaf. Returning an error aborts
	// exploration and surfaces as a KindLeafReject violation.
	OnLeaf func(*Leaf) error
	// Parallelism bounds the number of worker goroutines Consensus and
	// ConsensusK use to explore independent proposal-vector trees
	// concurrently: 0 means runtime.GOMAXPROCS(0), 1 forces sequential
	// exploration. Run itself always explores its single tree
	// sequentially. Every field of the merged ConsensusReport — verdicts,
	// Depth, access bounds, Nodes, Leaves, and MemoHits — is identical at
	// every parallelism level, because each tree owns its memo table and
	// trees are merged in proposal-vector order. Parallelism > 1 requires
	// Spec.Step and Machine implementations to be pure functions of their
	// arguments (all in-repo types and machines are).
	Parallelism int
	// Faults enumerates crash faults exhaustively: at every configuration,
	// in addition to every enabled step, the DFS explores the branch where
	// each still-live process crashes (subject to the model's MaxCrashes
	// bound and Mode). Leaves then only require the surviving processes to
	// be done; crashed processes are excluded from per-leaf checks. Under
	// faults.CrashRecovery the DFS additionally explores, at every
	// configuration with a crashed process and remaining MaxRecoveries
	// budget, the branch where that process recovers: volatile state
	// resets, shared objects persist, and the interrupted operation
	// re-runs — including after all live processes have finished, which is
	// where durable-decision violations surface. The zero Model disables
	// fault exploration (the default).
	Faults faults.Model
	// MemoBudget bounds the number of retained memo-table entries per
	// execution tree (0 = unbounded). When a tree's table fills up, the
	// engine reclaims the least-recently-useful cached entries one at a
	// time (second-chance FIFO; configurations currently on the DFS stack
	// never count toward the budget and are never evicted, so cycle
	// detection stays exact). Without MemoSpillDir the run degrades
	// gracefully — evicted entries are forgotten and the run is flagged
	// Degraded in Result, ConsensusReport, and Stats; with MemoSpillDir
	// evicted entries move to disk and nothing is lost. Eviction changes
	// cost, never verdicts, and is deterministic, so reports remain
	// identical at every parallelism level. Requires Memoize.
	MemoBudget int
	// MemoSpillDir, if non-empty, gives budgeted memo tables a disk tier:
	// entries evicted under MemoBudget are written to a checksummed spill
	// file in this directory (one temp file per execution tree, deleted at
	// tree completion) and served back on later lookups. A budgeted run
	// with a working spill tier scores exactly the memo hits of an
	// unbounded run and never sets Degraded; if the spill tier breaks
	// (I/O error, corrupt record), the run degrades exactly as it would
	// without one. Requires MemoBudget.
	MemoSpillDir string
	// FS is the filesystem the spill tier performs its I/O through (nil =
	// the real one). Tests pass an *fsx.FaultFS to script storage faults
	// and assert the degradation ladder; it never affects verdicts — a
	// failing FS only costs memo hits and sets Degraded honestly.
	FS fsx.FS
	// ResumeFrom, if set, resumes a consensus exploration from a Checkpoint
	// taken by a cancelled run: proposal-vector trees recorded in the
	// checkpoint are merged from their stored results instead of being
	// re-explored. Only ConsensusContext / ConsensusKContext honor it; Run
	// rejects it (single trees have no frontier to resume).
	ResumeFrom *Checkpoint
	// Symmetry selects process-permutation symmetry reduction for
	// Consensus/ConsensusK: proposal vectors that are permutations of one
	// another generate isomorphic execution trees when the implementation
	// is process-symmetric (declared SymmetricProcs over oblivious, fully
	// ported objects), so only one representative tree per orbit is
	// explored and the other members replay its outcome. The merged
	// ConsensusReport is byte-identical to an unreduced run — verdicts,
	// Depth, access bounds, Nodes, Leaves, MemoHits — while the engine
	// Stats, which count work actually performed, shrink by up to n!.
	// SymmetryOff (the zero value) explores every tree; SymmetryAuto
	// reduces when the implementation qualifies and silently falls back
	// otherwise; SymmetryRequire errors with ErrNotSymmetric instead of
	// falling back. Run ignores Symmetry (a single tree has no orbit), and
	// MemoBudget disables reduction (eviction timing is traversal-order
	// dependent; see planOrbits).
	Symmetry SymmetryMode
	// MaxNodes is a soft budget on explored configurations for the
	// consensus engines: once the engine counters pass it, workers stop
	// claiming work, unwind, and ConsensusKContext returns a
	// ConsensusReport with Partial set and a Coverage block describing how
	// far the run got — with a nil error, consistent with the Degraded
	// memo-budget contract. The budget is soft: workers notice it at their
	// next counter flush, so the overshoot is bounded by
	// workers*flushEvery. 0 means unbounded. Run ignores MaxNodes (a
	// single tree has no partial-merge frontier).
	MaxNodes int64
	// StallAfter arms the stall watchdog for the consensus engines: a
	// supervisor goroutine flags any worker that makes no node progress
	// for this long, stops the run, and surfaces a *StallError carrying
	// the worker, its tree, and the config key of its last flushed
	// configuration — turning a wedged Spec.Step or Machine from a silent
	// hang into a diagnosable report. 0 disables the watchdog. Run ignores
	// StallAfter.
	StallAfter time.Duration
	// CheckpointEvery autosaves the consensus frontier: every interval,
	// the supervisor snapshots a Checkpoint of the trees finished so far
	// and hands it to OnCheckpoint, so an OOM-kill or power loss costs at
	// most one interval of work. Requires OnCheckpoint; 0 with OnCheckpoint
	// set means DefaultCheckpointEvery. Run ignores both.
	CheckpointEvery time.Duration
	// OnCheckpoint receives autosave snapshots (see CheckpointEvery). It
	// is called from the supervisor goroutine only — never concurrently
	// with itself — and the Checkpoint it receives is freshly built, never
	// aliased by the engine afterwards. Callers typically persist it with
	// the durable package.
	OnCheckpoint func(*Checkpoint)
	// OnProgress, if set, receives engine Stats snapshots every
	// ProgressInterval while RunContext / ConsensusContext /
	// ConsensusKContext execute, plus one final snapshot when the engine
	// stops (normally, on violation, or on cancellation). Snapshots are
	// observational (see Stats); they never influence the report.
	// OnProgress is called from a single goroutine at a time.
	OnProgress func(Stats)
	// ProgressInterval is the OnProgress tick; 0 means
	// DefaultProgressInterval. Ignored when OnProgress is nil.
	ProgressInterval time.Duration
}

// Validate checks the options for internal consistency. It returns an
// error wrapping ErrBadOptions for combinations that previously produced
// undefined behavior: Memoize with RecordHistory (memoized paths cannot
// carry complete histories), a negative MaxDepth, a negative Parallelism,
// or a negative ProgressInterval. Every exploration entry point validates
// its options up front, so callers only need Validate to fail early.
func (o Options) Validate() error {
	if o.Memoize && o.RecordHistory {
		return fmt.Errorf("%w: Memoize and RecordHistory are mutually exclusive", ErrBadOptions)
	}
	if o.MaxDepth < 0 {
		return fmt.Errorf("%w: negative MaxDepth %d", ErrBadOptions, o.MaxDepth)
	}
	if o.Parallelism < 0 {
		return fmt.Errorf("%w: negative Parallelism %d", ErrBadOptions, o.Parallelism)
	}
	if o.ProgressInterval < 0 {
		return fmt.Errorf("%w: negative ProgressInterval %v", ErrBadOptions, o.ProgressInterval)
	}
	if err := o.Faults.Validate(); err != nil {
		return fmt.Errorf("%w: %v", ErrBadOptions, err)
	}
	if o.MemoBudget < 0 {
		return fmt.Errorf("%w: negative MemoBudget %d", ErrBadOptions, o.MemoBudget)
	}
	if o.MemoBudget > 0 && !o.Memoize {
		return fmt.Errorf("%w: MemoBudget requires Memoize", ErrBadOptions)
	}
	if o.MemoSpillDir != "" && o.MemoBudget == 0 {
		return fmt.Errorf("%w: MemoSpillDir requires MemoBudget", ErrBadOptions)
	}
	if o.Symmetry < SymmetryOff || o.Symmetry > SymmetryRequire {
		return fmt.Errorf("%w: unknown Symmetry mode %d", ErrBadOptions, int(o.Symmetry))
	}
	if o.MaxNodes < 0 {
		return fmt.Errorf("%w: negative MaxNodes %d", ErrBadOptions, o.MaxNodes)
	}
	if o.StallAfter < 0 {
		return fmt.Errorf("%w: negative StallAfter %v", ErrBadOptions, o.StallAfter)
	}
	if o.CheckpointEvery < 0 {
		return fmt.Errorf("%w: negative CheckpointEvery %v", ErrBadOptions, o.CheckpointEvery)
	}
	if o.CheckpointEvery > 0 && o.OnCheckpoint == nil {
		return fmt.Errorf("%w: CheckpointEvery requires OnCheckpoint", ErrBadOptions)
	}
	return nil
}

// Leaf describes one completed execution.
type Leaf struct {
	// Responses[p][k] is the response of process p's k-th target
	// operation. Under memoization only the last operation's response per
	// process is available (earlier ones are zero Responses for processes
	// whose prefix was deduplicated).
	Responses [][]types.Response
	// Depth is the number of object accesses along this execution.
	Depth int
	// History is the concurrent history of target operations
	// (RecordHistory mode only).
	History hist.History
	// Schedule is the access sequence of this execution.
	Schedule []StepRecord
	// Crashed[p] reports whether process p crashed along this execution
	// and never came back (fault exploration only; nil when Options.Faults
	// is disabled).
	Crashed []bool
	// Recoveries[p] is the number of times process p crashed and recovered
	// along this execution (crash-recovery exploration only; nil unless
	// some process recovered).
	Recoveries []int
}

// StepRecord is one low-level operation of a schedule. A record with Crash
// set is not an object access: it marks the point at which Proc crashed
// (Obj is -1 and Inv/Resp are zero). A record with Recover set marks the
// point at which a crashed Proc re-entered from its recovery section
// (crash-recovery mode; Obj is -1 and Inv/Resp are zero).
type StepRecord struct {
	Proc    int              `json:"proc"`
	Obj     int              `json:"obj"`
	Inv     types.Invocation `json:"inv"`
	Resp    types.Response   `json:"resp"`
	Crash   bool             `json:"crash,omitempty"`
	Recover bool             `json:"recover,omitempty"`
}

// String renders the step as p<proc>:obj<obj>.<inv>-><resp>, or
// p<proc>:CRASH / p<proc>:RECOVER for fault records.
func (s StepRecord) String() string {
	if s.Crash {
		return fmt.Sprintf("p%d:CRASH", s.Proc)
	}
	if s.Recover {
		return fmt.Sprintf("p%d:RECOVER", s.Proc)
	}
	return fmt.Sprintf("p%d:obj%d.%v->%v", s.Proc, s.Obj, s.Inv, s.Resp)
}

// FormatSchedule renders a schedule one step per line.
func FormatSchedule(steps []StepRecord) string {
	parts := make([]string, len(steps))
	for i, s := range steps {
		parts[i] = s.String()
	}
	return strings.Join(parts, "\n")
}

// ViolationKind classifies semantic findings.
type ViolationKind int

// Violation kinds.
const (
	// KindDepthExceeded: some execution exceeded the step budget.
	KindDepthExceeded ViolationKind = iota + 1
	// KindCycle: the configuration graph has a cycle, so some execution
	// never terminates (the implementation is not wait-free).
	KindCycle
	// KindLeafReject: the OnLeaf callback rejected an execution.
	KindLeafReject
	// KindBlockedBySurvivorStarvation: after one or more crashes, the
	// surviving processes alone cycled or exceeded the step budget — the
	// implementation's survivors do not finish in a bounded number of their
	// own steps, refuting the wait-freedom claim of Section 2.2 directly.
	KindBlockedBySurvivorStarvation
	// KindInvalidAfterCrash: an execution with one or more crashes
	// completed, but the surviving processes' decisions failed the per-leaf
	// check (agreement or validity among survivors).
	KindInvalidAfterCrash
	// KindBlockedByRecoveryDivergence: after one or more recoveries, some
	// execution cycled or exceeded the step budget — a recovered process
	// (or the system it rejoined) can no longer decide in a bounded number
	// of steps, so the implementation is not recoverably wait-free.
	KindBlockedByRecoveryDivergence
	// KindDecisionChangedAfterRecovery: an execution with one or more
	// recoveries completed, but the per-leaf check failed — a process that
	// crashed and re-ran from its recovery section reached a decision
	// inconsistent with the others (or with validity), so decisions are
	// not durable across recovery.
	KindDecisionChangedAfterRecovery
)

func (k ViolationKind) String() string {
	switch k {
	case KindDepthExceeded:
		return "step budget exceeded"
	case KindCycle:
		return "configuration cycle (not wait-free)"
	case KindLeafReject:
		return "execution rejected"
	case KindBlockedBySurvivorStarvation:
		return "blocked by survivor starvation (not wait-free under crashes)"
	case KindInvalidAfterCrash:
		return "invalid execution after crash"
	case KindBlockedByRecoveryDivergence:
		return "recovery divergence (not wait-free under crash-recovery)"
	case KindDecisionChangedAfterRecovery:
		return "decision changed after recovery"
	}
	return "unknown violation"
}

// MarshalJSON renders the kind as a stable string tag rather than a bare
// enum ordinal, so -json output survives reordering of the constants.
func (k ViolationKind) MarshalJSON() ([]byte, error) {
	switch k {
	case KindDepthExceeded:
		return []byte(`"depth-exceeded"`), nil
	case KindCycle:
		return []byte(`"cycle"`), nil
	case KindLeafReject:
		return []byte(`"leaf-reject"`), nil
	case KindBlockedBySurvivorStarvation:
		return []byte(`"survivor-starvation"`), nil
	case KindInvalidAfterCrash:
		return []byte(`"invalid-after-crash"`), nil
	case KindBlockedByRecoveryDivergence:
		return []byte(`"recovery-divergence"`), nil
	case KindDecisionChangedAfterRecovery:
		return []byte(`"decision-changed-after-recovery"`), nil
	}
	return []byte(`"unknown"`), nil
}

// Violation is a semantic finding: evidence that the implementation is not
// wait-free or that an execution failed the leaf check.
type Violation struct {
	Kind     ViolationKind `json:"kind"`
	Detail   string        `json:"detail"`
	Schedule []StepRecord  `json:"schedule,omitempty"`
}

// Error renders the violation (Violation is usable as an error value).
func (v *Violation) Error() string {
	return fmt.Sprintf("explore: %v: %s\nschedule:\n%s", v.Kind, v.Detail, FormatSchedule(v.Schedule))
}

// Result aggregates a Run.
type Result struct {
	Nodes    int64
	Leaves   int64
	MemoHits int64
	// Depth is the maximum number of object accesses along any execution:
	// the paper's bound D for this tree.
	Depth int
	// MaxAccess[o] is the maximum number of accesses to object o along
	// any single execution.
	MaxAccess []int
	// OpAccess[o][op] is the maximum number of op-invocations on object o
	// along any single execution (for registers: the r_b and w_b bounds).
	OpAccess []map[string]int
	// ProcSteps[p] is the maximum number of object accesses process p
	// performs along any single execution: the per-process wait-freedom
	// bound ("a finite number of its own steps").
	ProcSteps []int
	// Violation is non-nil if exploration found a semantic violation; the
	// remaining fields then cover only the explored fragment.
	Violation *Violation
	// Degraded reports that the memo table hit Options.MemoBudget and
	// evicted entries; the verdict and all bounds are still exact, but
	// MemoHits undercounts what an unbounded table would have scored.
	Degraded bool
}

// Structural errors.
var (
	// ErrBadOptions is the sentinel wrapped by every Options validation
	// failure (see Options.Validate).
	ErrBadOptions = errors.New("explore: invalid options")
	ErrBadScripts = errors.New("explore: script shape does not match implementation")
)

// accKey indexes per-object, per-operation access counters. An empty Op
// aggregates all operations on the object; negative Obj values -(p+1)
// carry per-process step counters.
type accKey struct {
	Obj int
	Op  string
}

// procKey returns the accKey carrying process p's step counter.
func procKey(p int) accKey { return accKey{Obj: -(p + 1)} }

// summary is the subtree aggregate computed bottom-up. Access counters are
// a dense int32 slice indexed by the explorer's accTable ids (arena.go)
// rather than a per-node map; a zero counter means the key was absent from
// the old map form, so conversions back to the named report maps skip
// zeroes.
type summary struct {
	height int
	nodes  int64
	leaves int64
	acc    []int32

	// Memo-table bookkeeping (never part of the aggregate): ref is the
	// second-chance bit a lookup sets and eviction clears; retained marks a
	// summary owned by the memo (put sets it — recycleSummary must never
	// take one); spilled marks a summary already written to the spill tier,
	// so a re-eviction after a spill load never rewrites it. ref is only
	// touched under the owning shard's lock and never on the shared
	// grayMark sentinel.
	ref      bool
	retained bool
	spilled  bool
}

// procState is one process's part of a configuration. All fields are
// comparable values; machine states and memories must be pointer-free.
type procState struct {
	OpIdx   int
	Done    bool
	Mem     any
	Mst     any
	Pending program.Action
	// Resp is the response of the last completed target operation; it is
	// part of the configuration so that memoization never conflates
	// executions with different outcomes.
	Resp types.Response
	// Crashed marks a process stopped by fault exploration. It is part of
	// the configuration (and its memo key): per-leaf checks depend on
	// which processes survived. Under faults.CrashRecovery a crashed
	// process may later recover (Crashed clears, Recoveries increments);
	// under the other modes a crash is permanent.
	Crashed bool
	// Recoveries counts how many times this process has crashed and
	// recovered (crash-recovery mode only; constantly 0 otherwise). It is
	// part of the configuration so that every recovery-budget predicate is
	// derivable from the configuration alone, keeping memoization sound,
	// and so that recovery edges can never close a configuration cycle.
	Recoveries int
	// Stepped records whether the process has performed any object access
	// yet. It is only maintained under faults.CrashBeforeFirstStep (the one
	// mode whose crash placement depends on it), so that other modes'
	// memo tables do not fragment on it.
	Stepped bool
}

type config struct {
	objs  []types.State
	procs []procState

	// objEnc[i] / procEnc[p] cache the key-encoder segment of the
	// corresponding component (the flat layout): each component is encoded
	// once, when it changes, and the memo key is assembled by
	// concatenating the cached segments (explorer.flatKey) instead of
	// re-walking the whole configuration per node. Segments are immutable
	// arena bytes shared freely between a config and its clones. Only
	// maintained on the memoized hot path; nil on configs built elsewhere
	// (valency, dot, tests), which keep using configKey.
	objEnc  [][]byte
	procEnc [][]byte
}

// clone is the allocation-per-call copy used off the hot path (valency,
// dot); the explorer's DFS uses cloneConfig (arena.go), which recycles.
func (c *config) clone() *config {
	d := &config{
		objs:  make([]types.State, len(c.objs)),
		procs: make([]procState, len(c.procs)),
	}
	copy(d.objs, c.objs)
	copy(d.procs, c.procs)
	return d
}

// Run explores all executions of im in which process p performs the target
// invocations scripts[p], in order. It returns the tree's aggregate result;
// semantic findings are reported in Result.Violation, structural problems
// as errors. Run is RunContext with a background context.
func Run(im *program.Implementation, scripts [][]types.Invocation, opts Options) (*Result, error) {
	return RunContext(context.Background(), im, scripts, opts)
}

// RunContext is Run under a context: cancellation or deadline expiry stops
// the exploration within flushEvery configurations and returns ctx.Err()
// (context.Canceled or context.DeadlineExceeded). If opts.OnProgress is
// set, engine Stats are published on the configured tick and once more
// when the run stops, so a cancelled run still surfaces its partial
// totals.
func RunContext(ctx context.Context, im *program.Implementation, scripts [][]types.Invocation, opts Options) (*Result, error) {
	if err := opts.Validate(); err != nil {
		return nil, err
	}
	if opts.ResumeFrom != nil {
		return nil, fmt.Errorf("%w: ResumeFrom applies to consensus explorations only", ErrBadOptions)
	}
	ctr := newCounters(1, 1)
	stop := startProgress(opts, ctr)
	defer stop()
	res, err := runTree(ctx, im, scripts, opts, ctr, 0)
	ctr.treesDone.Add(1)
	return res, err
}

// runTree explores one execution tree on behalf of worker widx, feeding
// the shared engine counters and honoring ctx.
func runTree(ctx context.Context, im *program.Implementation, scripts [][]types.Invocation, opts Options, ctr *counters, widx int) (*Result, error) {
	// Check up front so an already-dead context never starts a tree —
	// the in-DFS poll only fires every flushEvery configurations, which a
	// small tree may never reach.
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	e, root, err := newExplorer(im, scripts, opts)
	if err != nil {
		return nil, err
	}
	e.ctx = ctx
	e.ctr = ctr
	e.widx = widx
	return e.explore(root)
}

// newExplorer validates the run's shape and builds the explorer and the
// root configuration (every process advanced to its first object access).
func newExplorer(im *program.Implementation, scripts [][]types.Invocation, opts Options) (*explorer, *config, error) {
	if err := im.Validate(); err != nil {
		return nil, nil, err
	}
	if err := opts.Validate(); err != nil {
		return nil, nil, err
	}
	if len(scripts) != im.Procs {
		return nil, nil, fmt.Errorf("%w: %d scripts for %d processes", ErrBadScripts, len(scripts), im.Procs)
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	e := &explorer{
		im:      im,
		scripts: scripts,
		opts:    opts,
		curProc: -1,
	}
	if opts.Memoize {
		e.memo = newMemoTable(opts.MemoBudget, opts.MemoSpillDir, opts.FS)
		e.enc = newKeyEncoder()
	}
	root := &config{
		objs:  im.InitialStates(),
		procs: make([]procState, im.Procs),
	}
	e.responses = make([][]types.Response, im.Procs)
	for p := 0; p < im.Procs; p++ {
		e.responses[p] = make([]types.Response, 0, len(scripts[p]))
		root.procs[p] = procState{Mem: nil}
		if err := e.startNextOp(root, p, types.Response{}); err != nil {
			return nil, nil, err
		}
	}
	if opts.Memoize {
		// Flat layout: encode every root component once; per-edge updates
		// re-encode only what changed.
		e.encodeSegments(root)
	}
	return e, root, nil
}

// explore runs the DFS from root and aggregates the result. A panic in
// user-supplied code (a type spec's transition function or a machine) is
// recovered and converted into a structured *faults.PanicError carrying the
// offending configuration's key, instead of killing the worker goroutine
// and with it the whole process.
func (e *explorer) explore(root *config) (res *Result, err error) {
	if e.memo != nil {
		defer e.memo.release()
	}
	defer func() {
		if r := recover(); r != nil {
			err = faults.NewPanicError("explore", e.curProc, e.panicContext(), r, debug.Stack())
			res = nil
		}
	}()
	if e.acct == nil {
		e.initAcct()
	}
	im := e.im
	sum, err := e.dfs(root, 0)
	e.flushCounters(0)
	e.flushMemoCounters()
	res = &Result{
		Nodes:     sum.nodes,
		Leaves:    sum.leaves,
		MemoHits:  e.memoHits,
		Depth:     sum.height,
		Violation: e.violation,
	}
	if e.memo != nil && e.memo.isDegraded() {
		res.Degraded = true
	}
	res.MaxAccess = make([]int, len(im.Objects))
	res.OpAccess = make([]map[string]int, len(im.Objects))
	res.ProcSteps = make([]int, im.Procs)
	for i := range im.Objects {
		res.OpAccess[i] = make(map[string]int)
	}
	for i, v := range sum.acc {
		if v == 0 {
			continue // a zero counter is an absent key
		}
		switch k := e.acct.keys[i]; {
		case k.Obj < 0:
			res.ProcSteps[-(k.Obj + 1)] = int(v)
		case k.Op == "":
			res.MaxAccess[k.Obj] = int(v)
		default:
			res.OpAccess[k.Obj][k.Op] = int(v)
		}
	}
	if err != nil {
		if errors.Is(err, errAbort) {
			return res, nil
		}
		return nil, err
	}
	return res, nil
}

// flushMemoCounters publishes the memo table's eviction telemetry into the
// shared engine counters once, when the tree finishes.
func (e *explorer) flushMemoCounters() {
	if e.ctr == nil || e.memo == nil {
		return
	}
	if n := e.memo.evictions.Load(); n != 0 {
		e.ctr.memoEvictions.Add(n)
	}
	if n := e.memo.spilled.Load(); n != 0 {
		e.ctr.memoSpilled.Add(n)
	}
	if sp := e.memo.spill; sp != nil {
		if sp.retries != 0 {
			e.ctr.storageRetries.Add(sp.retries)
		}
		if sp.rebuilds != 0 {
			e.ctr.spillRebuilds.Add(sp.rebuilds)
		}
		if sp.broken {
			e.ctr.spillBroken.Store(true)
		}
	}
}

// errAbort unwinds the DFS after a violation was recorded.
var errAbort = errors.New("explore: aborted")

type explorer struct {
	im      *program.Implementation
	scripts [][]types.Invocation
	opts    Options

	// Engine instrumentation (nil/zero for bare explorers built in tests):
	// ctx is polled and local counters are flushed into ctr every
	// flushEvery configurations; widx is this explorer's worker slot.
	ctx  context.Context
	ctr  *counters
	widx int

	pendNodes  int64
	pendLeaves int64
	pendMemo   int64
	sinceFlush int

	// memo deduplicates configurations; entries holding grayMark are on
	// the current DFS stack (cycle detection). enc renders configurations
	// into the memo's byte keys.
	memo     *memoTable
	enc      *keyEncoder
	memoHits int64

	// Dense access-counter ids (arena.go): acct interns accKeys, procIDs /
	// objIDs are fixed-position lookup slices, opIDs[obj] lazily interns
	// per-operation ids.
	acct    *accTable
	procIDs []int32
	objIDs  []int32
	opIDs   []map[string]int32

	// Allocation machinery (arena.go): slab arenas for summaries, counter
	// slices, and segment encodings, plus free lists for configs and
	// non-retained summaries. segScratch is the reusable encode buffer
	// behind encodeObjSeg/encodeProcSeg (separate from enc.buf, which may
	// hold an assembled key).
	sums       summaryArena
	segs       byteArena
	segScratch []byte
	freeSums   []*summary
	freeCfgs   []*config

	// transCache memoizes Spec.Apply results on the flat path, keyed by
	// (object, encoded state segment, port, invocation); stepCache does
	// the same for startNextOp, keyed by (process, encoded pre-state
	// segment, response). Sound because Spec.Step and machines are
	// documented as deterministic pure functions (the same contract
	// Parallelism > 1 relies on) and the segment encodings are injective
	// per encoder; together they turn the per-edge user-code calls, their
	// allocations, and the successor segment encodings into no-alloc map
	// hits. Both are bounded by per-component state counts — roots of the
	// configuration count the memo table holds — so they stay negligible
	// even under MemoBudget.
	transCache   map[string][]cachedTrans
	transScratch []byte
	stepCache    map[string]procStep
	stepScratch  []byte

	// beatEnc renders heartbeat config keys when the stall watchdog is
	// armed (counters.captureKeys). It is separate from enc, whose buffer
	// may be mid-append, and lazily allocated so unwatched runs pay
	// nothing.
	beatEnc *keyEncoder

	// Path-local data (push/pop around recursion).
	schedule  []StepRecord
	responses [][]types.Response
	history   hist.History
	openOp    []int // per proc: index into history of the open op, -1 if none
	clock     int

	// Panic-recovery breadcrumbs: the configuration being expanded, the
	// process being stepped, and its depth. Pointer/int stores only, so the
	// hot path pays nothing; the recovery handler renders them lazily.
	curConfig *config
	curProc   int
	curDepth  int

	violation *Violation
}

// panicContext renders the recovery breadcrumbs, including the offending
// configuration's key (hex), for *faults.PanicError. It is only called
// after a panic, so it may allocate freely — including a fresh key encoder,
// because the explorer's own encoder may have been mid-append.
func (e *explorer) panicContext() string {
	if e.curConfig == nil {
		return "root configuration"
	}
	key := newKeyEncoder().configKey(e.curConfig)
	return fmt.Sprintf("depth %d, config key %x", e.curDepth, key)
}

// startNextOp advances process p past any number of operation boundaries:
// it feeds resp to the machine and folds zero-access returns and starts
// until the process either has a pending object access or is done. Local
// steps consume no tree edges, matching the paper's counting of low-level
// operations only.
func (e *explorer) startNextOp(c *config, p int, resp types.Response) error {
	ps := &c.procs[p]
	m := e.im.Machines[p]
	if ps.Done {
		return nil
	}
	if ps.Mst == nil {
		if ps.OpIdx >= len(e.scripts[p]) {
			// Empty script: the process is done without taking a step.
			ps.Done = true
			return nil
		}
		// Entry point of the next target operation.
		e.beginOp(c, p)
	}
	for {
		if ps.Done {
			return nil
		}
		act, next := m.Next(ps.Mst, resp)
		ps.Mst = next
		switch act.Kind {
		case program.KindInvoke:
			if act.Obj < 0 || act.Obj >= len(e.im.Objects) {
				return fmt.Errorf("explore: process %d invoked unknown object %d", p, act.Obj)
			}
			if e.im.Objects[act.Obj].Port(p) == 0 {
				return fmt.Errorf("explore: process %d has no port on object %d (%s)",
					p, act.Obj, e.im.Objects[act.Obj].Name)
			}
			ps.Pending = act
			return nil
		case program.KindReturn:
			e.endOp(c, p, act)
			if ps.OpIdx >= len(e.scripts[p]) {
				ps.Done = true
				ps.Mst = nil
				ps.Pending = program.Action{}
				return nil
			}
			e.beginOp(c, p)
			resp = types.Response{}
		default:
			return fmt.Errorf("explore: process %d produced invalid action kind %d", p, act.Kind)
		}
	}
}

func (e *explorer) beginOp(c *config, p int) {
	ps := &c.procs[p]
	inv := e.scripts[p][ps.OpIdx]
	ps.Mst = e.im.Machines[p].Start(inv, ps.Mem)
	if e.opts.RecordHistory {
		if e.openOp == nil {
			e.openOp = make([]int, e.im.Procs)
			for i := range e.openOp {
				e.openOp[i] = -1
			}
		}
		e.openOp[p] = len(e.history)
		e.history = append(e.history, hist.Op{
			Proc:  p,
			Port:  p + 1, // convention: process p holds target port p+1
			Inv:   inv,
			Begin: e.clock,
			End:   hist.Pending,
		})
		e.clock++
	}
}

func (e *explorer) endOp(c *config, p int, act program.Action) {
	ps := &c.procs[p]
	e.responses[p] = append(e.responses[p], act.Resp)
	ps.Resp = act.Resp
	ps.Mem = act.Mem
	ps.OpIdx++
	if e.opts.RecordHistory {
		idx := e.openOp[p]
		e.history[idx].Resp = act.Resp
		e.history[idx].End = e.clock
		e.openOp[p] = -1
		e.clock++
	}
}

func (e *explorer) dfs(c *config, depth int) (*summary, error) {
	if e.acct == nil {
		e.initAcct() // bare explorers (tests) enter here without explore()
	}
	sum := e.newSummary()
	e.pendNodes++
	if e.sinceFlush++; e.sinceFlush >= flushEvery {
		e.flushCounters(depth)
		if e.ctx != nil {
			if err := e.ctx.Err(); err != nil {
				return sum, err
			}
		}
	}
	// A process counts as finished when it is done or crashed: a leaf of a
	// faulty execution only requires the survivors to have completed.
	allDone := true
	crashes := 0
	recoveries := 0
	for p := range c.procs {
		recoveries += c.procs[p].Recoveries
		if c.procs[p].Crashed {
			crashes++
		} else if !c.procs[p].Done {
			allDone = false
		}
	}
	// Under crash-recovery, a crashed process may re-enter as long as the
	// total recovery budget is not exhausted. MaxRecoveries is only
	// nonzero in that mode (Model.Validate), so the other modes never
	// branch here.
	canRecover := crashes > 0 && recoveries < e.opts.Faults.MaxRecoveries
	if allDone {
		sum.leaves = 1
		e.pendLeaves++
		if err := e.leaf(c, depth, crashes, recoveries); err != nil {
			return sum, err
		}
		if !canRecover {
			return sum, nil
		}
		// A crashed process can still recover: this completed
		// configuration is simultaneously a leaf (checked above — this is
		// exactly where a late recovery can overturn an already-delivered
		// decision) and an interior node whose only children are recovery
		// edges. It is never memoized: recovery strictly increases the
		// total recovery count, so no cycle can pass through it, and every
		// path reaching it must re-run the leaf check, exactly like an
		// ordinary leaf.
		err := e.expand(c, depth, sum, crashes, recoveries)
		return sum, err
	}
	if depth >= e.opts.MaxDepth {
		switch {
		case recoveries > 0:
			e.violate(KindBlockedByRecoveryDivergence,
				fmt.Sprintf("execution reached %d object accesses after %d recover(y/ies)", depth, recoveries))
		case crashes > 0:
			e.violate(KindBlockedBySurvivorStarvation,
				fmt.Sprintf("surviving processes reached %d object accesses after %d crash(es)", depth, crashes))
		default:
			e.violate(KindDepthExceeded, fmt.Sprintf("execution reached %d object accesses", depth))
		}
		return sum, errAbort
	}

	var key string
	if e.opts.Memoize {
		if c.objEnc == nil {
			// A config handed in without cached segments (a bare explorer
			// in a test): build them once; children inherit incrementally.
			e.encodeSegments(c)
		}
		kb := e.flatKey(c)
		if cached, ok := e.memo.get(kb); ok {
			if cached == grayMark {
				switch {
				case recoveries > 0:
					e.violate(KindBlockedByRecoveryDivergence,
						fmt.Sprintf("configuration repeats along one execution after %d recover(y/ies)", recoveries))
				case crashes > 0:
					e.violate(KindBlockedBySurvivorStarvation,
						fmt.Sprintf("survivor configuration repeats along one execution after %d crash(es)", crashes))
				default:
					e.violate(KindCycle, "configuration repeats along one execution")
				}
				return sum, errAbort
			}
			e.memoHits++
			e.pendMemo++
			e.recycleSummary(sum) // fresh, nothing merged: reuse it
			return cached, nil
		}
		key = string(kb) // retain: kb is invalidated by child encodings
		e.memo.put(key, grayMark)
	}

	// All error returns below must clear the gray mark, or a later visit
	// of this configuration would report a phantom cycle; expand has a
	// single exit so the cleanup cannot be skipped by any error path.
	err := e.expand(c, depth, sum, crashes, recoveries)
	if e.opts.Memoize {
		if err != nil {
			e.memo.drop(key)
		} else {
			e.memo.put(key, sum)
		}
	}
	return sum, err
}

// expand explores every enabled step of every process from c, folding the
// child subtrees into sum. Under fault exploration it first explores, for
// each still-live process, the branch where that process crashes here;
// crash branches come first so that a violation reachable both with and
// without crashes surfaces with its crash-annotated schedule. Under
// crash-recovery it then explores, for each crashed process, the branch
// where that process recovers here: volatile state (machine state,
// pending access, per-process memory) resets to initial, the interrupted
// target operation re-runs from its start, and the shared object states
// persist. The crash budget counts crash events, not currently-crashed
// processes: crashes + recoveries, since every recovery implies a prior
// crash and a recovery never refunds the budget. With MaxRecoveries=0
// both sums and branch sets are exactly the crash-stop ones.
func (e *explorer) expand(c *config, depth int, sum *summary, crashes, recoveries int) error {
	if e.opts.Faults.Enabled() && crashes+recoveries < e.opts.Faults.MaxCrashes {
		for p := range c.procs {
			ps := &c.procs[p]
			if ps.Done || ps.Crashed {
				continue
			}
			if e.opts.Faults.Mode == faults.CrashBeforeFirstStep && ps.Stepped {
				continue
			}
			child := e.cloneConfig(c)
			child.procs[p].Crashed = true
			if e.opts.Memoize {
				child.procEnc[p] = e.encodeProcSeg(&child.procs[p])
			}
			e.schedule = append(e.schedule, StepRecord{Proc: p, Obj: -1, Crash: true})
			// A crash is not an object access: it consumes no depth budget
			// and bumps no access counters (mergeCrashChild), matching the
			// paper's counting of low-level operations only. Termination is
			// still guaranteed — each crash strictly shrinks the live set.
			childSum, err := e.dfs(child, depth)
			if childSum != nil {
				e.mergeCrashChild(sum, childSum)
			}
			e.schedule = e.schedule[:len(e.schedule)-1]
			if err != nil {
				return err
			}
			e.recycleSummary(childSum)
			e.recycleConfig(child)
		}
	}
	if crashes > 0 && recoveries < e.opts.Faults.MaxRecoveries {
		for p := range c.procs {
			if !c.procs[p].Crashed {
				continue
			}
			e.curConfig, e.curProc, e.curDepth = c, p, depth
			child := e.cloneConfig(c)
			ps := &child.procs[p]
			ps.Crashed = false
			ps.Recoveries++
			// Volatile state is lost; the shared objects (child.objs) and
			// the process's progress through its script (OpIdx — decided
			// operations stay decided) persist. The interrupted operation
			// re-runs from its start with a fresh machine state and nil
			// memory.
			ps.Mst = nil
			ps.Pending = program.Action{}
			ps.Mem = nil
			e.schedule = append(e.schedule, StepRecord{Proc: p, Obj: -1, Recover: true})
			respMark := len(e.responses[p])
			histMark := len(e.history)
			clockMark := e.clock
			prevOpen := -1
			if e.openOp != nil {
				prevOpen = e.openOp[p]
			}

			err := e.startNextOp(child, p, types.Response{})
			var childSum *summary
			if err == nil {
				if e.opts.Memoize {
					child.procEnc[p] = e.encodeProcSeg(&child.procs[p])
				}
				// Like a crash, a recovery is not an object access: no
				// depth budget, no access counters. Termination holds
				// because each recovery strictly increases the total
				// recovery count, which MaxRecoveries bounds.
				childSum, err = e.dfs(child, depth)
			}
			if childSum != nil {
				e.mergeCrashChild(sum, childSum)
			}

			e.schedule = e.schedule[:len(e.schedule)-1]
			e.responses[p] = e.responses[p][:respMark]
			if e.opts.RecordHistory {
				e.undoHistory(histMark, clockMark)
				// The re-executed operation's entry stole p's open-op slot
				// from the interrupted operation (which stays pending
				// forever — a crashed access never returns); restore it.
				e.openOp[p] = prevOpen
			}
			if err != nil {
				return err
			}
			e.recycleSummary(childSum)
			e.recycleConfig(child)
		}
	}
	for p := range c.procs {
		if c.procs[p].Done || c.procs[p].Crashed {
			continue
		}
		e.curConfig, e.curProc, e.curDepth = c, p, depth
		act := c.procs[p].Pending
		var cts []cachedTrans
		var err error
		if e.opts.Memoize {
			cts, err = e.applyCached(c, p, act)
		} else {
			decl := &e.im.Objects[act.Obj]
			var ts []types.Transition
			ts, err = decl.Spec.Apply(c.objs[act.Obj], decl.Port(p), act.Inv)
			cts = make([]cachedTrans, len(ts))
			for i, t := range ts {
				cts[i] = cachedTrans{next: t.Next, resp: t.Resp}
			}
		}
		if err != nil {
			return fmt.Errorf("process %d at depth %d: %w", p, depth, err)
		}
		opID := e.opAccID(act.Obj, act.Inv.Op)
		objID := e.objIDs[act.Obj]
		procID := e.procIDs[p]
		forcedStep := e.opts.Faults.Enabled() && e.opts.Faults.Mode == faults.CrashBeforeFirstStep
		for _, t := range cts {
			// Step in place: exactly one object and one process change on
			// this edge, so instead of cloning the whole configuration
			// (procStates are pointer-dense — the copies and their write
			// barriers dominated the hot path) the edge saves the two
			// changed slots and their segments, mutates, explores the
			// child subtree, and restores. Configs are strictly
			// stack-scoped — nothing below retains the pointer — and
			// every expand call restores c before returning, so after the
			// restore c is the parent again for the next transition.
			oldObj := c.objs[act.Obj]
			oldProc := c.procs[p]
			var oldObjSeg, oldProcSeg []byte
			if e.opts.Memoize {
				oldObjSeg, oldProcSeg = c.objEnc[act.Obj], c.procEnc[p]
			}
			c.objs[act.Obj] = t.next
			if forcedStep {
				c.procs[p].Stepped = true
			}

			// Path-local bookkeeping with undo.
			e.schedule = append(e.schedule, StepRecord{Proc: p, Obj: act.Obj, Inv: act.Inv, Resp: t.resp})
			respMark := len(e.responses[p])
			histMark := len(e.history)
			clockMark := e.clock
			if e.opts.RecordHistory {
				e.clock++ // the access itself is a clock event
			}

			var err error
			if e.opts.Memoize {
				// The object's successor segment comes pre-encoded with
				// the cached transition, and the process advances (with
				// its segment) through the step cache; everything else is
				// shared.
				c.objEnc[act.Obj] = t.nextEnc
				err = e.stepProcCached(c, p, t.resp, forcedStep)
			} else {
				err = e.startNextOp(c, p, t.resp)
			}
			var childSum *summary
			if err == nil {
				childSum, err = e.dfs(c, depth+1)
			}

			// Restore the parent configuration before any other code
			// (merges, error returns) can observe c.
			c.objs[act.Obj] = oldObj
			c.procs[p] = oldProc
			if e.opts.Memoize {
				c.objEnc[act.Obj], c.procEnc[p] = oldObjSeg, oldProcSeg
			}

			if childSum != nil {
				e.mergeChild(sum, childSum, opID, objID, procID)
			}

			// Undo path-local bookkeeping.
			e.schedule = e.schedule[:len(e.schedule)-1]
			e.responses[p] = e.responses[p][:respMark]
			if e.opts.RecordHistory {
				e.undoHistory(histMark, clockMark)
			}

			if err != nil {
				return err
			}
			e.recycleSummary(childSum)
		}
	}
	return nil
}

// undoHistory rewinds the recorded history to the state it had when
// len(e.history) was histMark and e.clock was clockMark: ops opened at or
// after the mark are discarded wholesale, and ops completed at or after
// the mark are reopened.
func (e *explorer) undoHistory(histMark, clockMark int) {
	for i := histMark; i < len(e.history); i++ {
		if e.openOp[e.history[i].Proc] == i {
			e.openOp[e.history[i].Proc] = -1
		}
	}
	e.history = e.history[:histMark]
	for i := range e.history {
		op := &e.history[i]
		if op.End != hist.Pending && op.End >= clockMark {
			op.End = hist.Pending
			op.Resp = types.Response{}
			e.openOp[op.Proc] = i
		}
	}
	e.clock = clockMark
}

// mergeChild folds a child subtree summary (reached via one access by the
// stepping process) into the parent summary. The edge access increments
// the child's per-path counters at the three dense ids — (obj, op),
// (obj, "") and the process's step counter — and the per-path maximum is
// taken elementwise; the merge allocates nothing per edge (the parent's
// counter slice grows at most to the interning table's size, from the
// arena). A zero counter means "key absent" in the old map semantics: a
// bumped id the child never touched still contributes the edge itself
// (max with 1), exactly as the map merge did.
func (e *explorer) mergeChild(parent, child *summary, opID, objID, procID int32) {
	parent.nodes += child.nodes
	parent.leaves += child.leaves
	if h := child.height + 1; h > parent.height {
		parent.height = h
	}
	need := len(child.acc)
	if int(opID) >= need {
		need = int(opID) + 1
	}
	if int(objID) >= need {
		need = int(objID) + 1
	}
	if int(procID) >= need {
		need = int(procID) + 1
	}
	if len(parent.acc) < need {
		e.growAcc(parent, need)
	}
	pacc := parent.acc
	for i, v := range child.acc {
		switch int32(i) {
		case opID, objID, procID:
			v++
		}
		if v > pacc[i] {
			pacc[i] = v
		}
	}
	for _, id := range [3]int32{opID, objID, procID} {
		if int(id) >= len(child.acc) && pacc[id] < 1 {
			pacc[id] = 1
		}
	}
}

// mergeCrashChild folds a crash- or recovery-branch subtree into the
// parent summary. Such an edge is not an object access: it contributes no
// height and bumps no per-object or per-process counters, so fault
// exploration never inflates the Section 4.2 bounds.
func (e *explorer) mergeCrashChild(parent, child *summary) {
	parent.nodes += child.nodes
	parent.leaves += child.leaves
	if child.height > parent.height {
		parent.height = child.height
	}
	if len(parent.acc) < len(child.acc) {
		e.growAcc(parent, len(child.acc))
	}
	pacc := parent.acc
	for i, v := range child.acc {
		if v > pacc[i] {
			pacc[i] = v
		}
	}
}

func (e *explorer) leaf(c *config, depth, crashes, recoveries int) error {
	if e.opts.OnLeaf == nil {
		return nil
	}
	leaf := &Leaf{
		Depth:     depth,
		Responses: make([][]types.Response, e.im.Procs),
		Schedule:  append([]StepRecord(nil), e.schedule...),
	}
	for p := 0; p < e.im.Procs; p++ {
		if e.opts.Memoize {
			// Path data may be incomplete under memoization; surface the
			// per-process final responses from the configuration itself.
			leaf.Responses[p] = []types.Response{c.procs[p].Resp}
		} else {
			leaf.Responses[p] = append([]types.Response(nil), e.responses[p]...)
		}
	}
	if crashes > 0 {
		leaf.Crashed = make([]bool, e.im.Procs)
		for p := range c.procs {
			leaf.Crashed[p] = c.procs[p].Crashed
		}
	}
	if recoveries > 0 {
		leaf.Recoveries = make([]int, e.im.Procs)
		for p := range c.procs {
			leaf.Recoveries[p] = c.procs[p].Recoveries
		}
	}
	if e.opts.RecordHistory {
		leaf.History = append(hist.History(nil), e.history...)
	}
	if err := e.opts.OnLeaf(leaf); err != nil {
		switch {
		case recoveries > 0:
			e.violate(KindDecisionChangedAfterRecovery, err.Error())
		case crashes > 0:
			e.violate(KindInvalidAfterCrash, err.Error())
		default:
			e.violate(KindLeafReject, err.Error())
		}
		return errAbort
	}
	return nil
}

// flushCounters publishes the explorer's local counts into the shared
// engine counters (a no-op for bare explorers without one).
func (e *explorer) flushCounters(depth int) {
	e.sinceFlush = 0
	if e.ctr == nil {
		return
	}
	if e.pendNodes != 0 {
		e.ctr.nodes.Add(e.pendNodes)
		e.ctr.workerNodes[e.widx].Add(e.pendNodes)
		e.pendNodes = 0
	}
	if e.pendLeaves != 0 {
		e.ctr.leaves.Add(e.pendLeaves)
		e.pendLeaves = 0
	}
	if e.pendMemo != 0 {
		e.ctr.memoHits.Add(e.pendMemo)
		e.pendMemo = 0
	}
	e.ctr.curDepth.Store(int64(depth))
	e.ctr.bumpMaxDepth(int64(depth))
	if e.memo != nil && e.memo.isDegraded() {
		e.ctr.degraded.Store(true)
	}
	// Heartbeat: every flush proves this worker is making node progress.
	beat := &e.ctr.beats[e.widx]
	beat.lastProgress.Store(time.Now().UnixNano())
	beat.depth.Store(int64(depth))
	if e.ctr.captureKeys && e.curConfig != nil {
		if e.beatEnc == nil {
			e.beatEnc = newKeyEncoder()
		}
		key := fmt.Sprintf("%x", e.beatEnc.configKey(e.curConfig))
		beat.key.Store(&key)
	}
	if e.ctr.maxNodes > 0 && e.ctr.nodes.Load() >= e.ctr.maxNodes {
		e.ctr.trip(tripNodeBudget)
	}
}

func (e *explorer) violate(kind ViolationKind, detail string) {
	if e.violation != nil {
		return
	}
	e.violation = &Violation{
		Kind:     kind,
		Detail:   detail,
		Schedule: append([]StepRecord(nil), e.schedule...),
	}
}
