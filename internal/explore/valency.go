package explore

import (
	"fmt"
	"math/bits"
	"sort"

	"waitfree/internal/program"
	"waitfree/internal/types"
)

// This file implements valency analysis — the FLP/Herlihy machinery that
// underlies both the impossibility of consensus from registers (cited in
// the paper's Theorem 5 proof for the trivial case) and the assignment of
// consensus numbers. A configuration's valency is the set of decision
// values reachable from it; a configuration is bivalent if more than one
// value remains reachable and univalent otherwise. In a correct wait-free
// protocol, every path from a bivalent initial configuration passes a
// CRITICAL configuration — a bivalent configuration all of whose children
// are univalent — and the classic case analysis shows the pending steps
// there must be on a single object whose type is strong enough to
// arbitrate (a test-and-set, queue, CAS, ..., never a register).

// PendingStep describes one process's next object access at a
// configuration.
type PendingStep struct {
	Proc int
	Obj  int
	Inv  types.Invocation
}

// CriticalConfig is one critical configuration found by the analysis.
type CriticalConfig struct {
	// Pending lists each live process's poised access.
	Pending []PendingStep
	// ChildValency[i] is the valency mask of the configuration reached by
	// scheduling Pending[i] (a bitmask over decision values; one bit set).
	ChildValency []uint64
	// SameObject reports whether all pending accesses target one object.
	SameObject bool
	// Obj is that object's index when SameObject (else -1).
	Obj int
}

// ValencyReport aggregates the analysis of one execution tree.
type ValencyReport struct {
	// Proposals is the analyzed proposal vector.
	Proposals []int
	// Configs counts distinct configurations; Bivalent and Univalent
	// partition them (excluding leaves, which are decided).
	Configs   int
	Bivalent  int
	Univalent int
	// InitialBivalent reports whether the root is bivalent.
	InitialBivalent bool
	// InitialValency is the root's valency mask.
	InitialValency uint64
	// Critical lists the critical configurations (deduplicated).
	Critical []CriticalConfig
	// CriticalObjects names the object indices arbitrating at critical
	// configurations (sorted, deduplicated).
	CriticalObjects []int
}

// ValencySet decodes a valency mask into sorted decision values.
func ValencySet(mask uint64) []int {
	vals := make([]int, 0, bits.OnesCount64(mask))
	for v := 0; v < 64; v++ {
		if mask&(1<<uint(v)) != 0 {
			vals = append(vals, v)
		}
	}
	return vals
}

// Valency analyzes the execution tree of a consensus implementation from
// one proposal vector. Decision values must lie in 0..63.
func Valency(im *program.Implementation, proposals []int, opts Options) (*ValencyReport, error) {
	if err := im.Validate(); err != nil {
		return nil, err
	}
	if len(proposals) != im.Procs {
		return nil, fmt.Errorf("%w: %d proposals for %d processes", ErrBadScripts, len(proposals), im.Procs)
	}
	if opts.MaxDepth == 0 {
		opts.MaxDepth = DefaultMaxDepth
	}
	scripts := make([][]types.Invocation, im.Procs)
	for p, v := range proposals {
		scripts[p] = []types.Invocation{types.Propose(v)}
	}
	e := &explorer{im: im, scripts: scripts, opts: opts}
	e.responses = make([][]types.Response, im.Procs)
	for p := range e.responses {
		e.responses[p] = make([]types.Response, 0, 1)
	}
	root := &config{objs: im.InitialStates(), procs: make([]procState, im.Procs)}
	for p := 0; p < im.Procs; p++ {
		root.procs[p] = procState{Mem: nil}
		if err := e.startNextOp(root, p, types.Response{}); err != nil {
			return nil, err
		}
	}

	v := &valencyAnalysis{e: e, enc: newKeyEncoder(), memo: make(map[string]uint64), seenCrit: make(map[string]bool)}
	rootMask, err := v.valency(root, 0)
	if err != nil {
		return nil, err
	}
	report := &ValencyReport{
		Proposals:       append([]int(nil), proposals...),
		Configs:         len(v.memo),
		Bivalent:        v.bivalent,
		Univalent:       v.univalent,
		InitialBivalent: bits.OnesCount64(rootMask) > 1,
		InitialValency:  rootMask,
		Critical:        v.critical,
	}
	objs := make(map[int]bool)
	for _, c := range report.Critical {
		if c.SameObject {
			objs[c.Obj] = true
		}
	}
	for o := range objs {
		report.CriticalObjects = append(report.CriticalObjects, o)
	}
	sort.Ints(report.CriticalObjects)
	return report, nil
}

type valencyAnalysis struct {
	e         *explorer
	enc       *keyEncoder
	memo      map[string]uint64
	seenCrit  map[string]bool
	bivalent  int
	univalent int
	critical  []CriticalConfig
}

// valency computes the reachable-decision mask of a configuration by
// post-order traversal with memoization, collecting critical
// configurations along the way.
func (v *valencyAnalysis) valency(c *config, depth int) (uint64, error) {
	if depth > v.e.opts.MaxDepth {
		return 0, fmt.Errorf("explore: valency analysis exceeded %d steps (not wait-free?)", v.e.opts.MaxDepth)
	}
	allDone := true
	for p := range c.procs {
		if !c.procs[p].Done {
			allDone = false
			break
		}
	}
	if allDone {
		// Leaf: all processes decided; agreement gives a single value.
		val := c.procs[0].Resp.Val
		if val < 0 || val > 63 {
			return 0, fmt.Errorf("explore: decision %d outside 0..63", val)
		}
		return 1 << uint(val), nil
	}
	key := string(v.enc.configKey(c))
	if mask, ok := v.memo[key]; ok {
		return mask, nil
	}

	var mask uint64
	var pending []PendingStep
	var childMasks []uint64
	for p := range c.procs {
		if c.procs[p].Done {
			continue
		}
		act := c.procs[p].Pending
		pending = append(pending, PendingStep{Proc: p, Obj: act.Obj, Inv: act.Inv})
		decl := &v.e.im.Objects[act.Obj]
		ts, err := decl.Spec.Apply(c.objs[act.Obj], decl.Port(p), act.Inv)
		if err != nil {
			return 0, err
		}
		var childMask uint64
		for _, t := range ts {
			child := c.clone()
			child.objs[act.Obj] = t.Next
			if err := v.e.startNextOp(child, p, t.Resp); err != nil {
				return 0, err
			}
			m, err := v.valency(child, depth+1)
			if err != nil {
				return 0, err
			}
			childMask |= m
		}
		childMasks = append(childMasks, childMask)
		mask |= childMask
	}

	v.memo[key] = mask
	if bits.OnesCount64(mask) > 1 {
		v.bivalent++
		// Critical iff every child is univalent.
		critical := true
		for _, m := range childMasks {
			if bits.OnesCount64(m) > 1 {
				critical = false
				break
			}
		}
		if critical && !v.seenCrit[key] {
			v.seenCrit[key] = true
			cc := CriticalConfig{
				Pending:      pending,
				ChildValency: childMasks,
				Obj:          -1,
				SameObject:   true,
			}
			for i, ps := range pending {
				if i == 0 {
					cc.Obj = ps.Obj
				} else if ps.Obj != cc.Obj {
					cc.SameObject = false
					cc.Obj = -1
					break
				}
			}
			v.critical = append(v.critical, cc)
		}
	} else {
		v.univalent++
	}
	return mask, nil
}
