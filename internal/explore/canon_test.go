package explore

import (
	"bytes"
	"errors"
	"testing"

	"waitfree/internal/consensus"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

func proposeStarts(k int) []types.Invocation {
	starts := make([]types.Invocation, k)
	for v := range starts {
		starts[v] = types.Propose(v)
	}
	return starts
}

// permuteProcs relabels the processes of im by perm: process p of the
// result plays the role im's process perm[p] played.
func permuteProcs(im *program.Implementation, perm []int) *program.Implementation {
	out := *im
	out.Machines = make([]program.Machine, im.Procs)
	for p := range out.Machines {
		out.Machines[p] = im.Machines[perm[p]]
	}
	out.Objects = make([]program.ObjectDecl, len(im.Objects))
	for i := range im.Objects {
		decl := im.Objects[i]
		ports := make([]int, im.Procs)
		for p := range ports {
			ports[p] = decl.PortOf[perm[p]]
		}
		decl.PortOf = ports
		out.Objects[i] = decl
	}
	return &out
}

func TestCanonicalImplementationDeterministic(t *testing.T) {
	a, err := CanonicalImplementation(consensus.CAS(3), proposeStarts(2))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	b, err := CanonicalImplementation(consensus.CAS(3), proposeStarts(2))
	if err != nil {
		t.Fatalf("encode again: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two constructions of the same implementation encode differently")
	}
}

func TestCanonicalImplementationSeparatesImplementations(t *testing.T) {
	cas, err := CanonicalImplementation(consensus.CAS(3), proposeStarts(2))
	if err != nil {
		t.Fatalf("cas: %v", err)
	}
	sticky, err := CanonicalImplementation(consensus.Sticky(3), proposeStarts(2))
	if err != nil {
		t.Fatalf("sticky: %v", err)
	}
	cas4, err := CanonicalImplementation(consensus.CAS(4), proposeStarts(2))
	if err != nil {
		t.Fatalf("cas4: %v", err)
	}
	cas3v3, err := CanonicalImplementation(consensus.CAS(3), proposeStarts(3))
	if err != nil {
		t.Fatalf("cas starts=3: %v", err)
	}
	if bytes.Equal(cas, sticky) {
		t.Error("cas and sticky encode identically")
	}
	if bytes.Equal(cas, cas4) {
		t.Error("cas(3) and cas(4) encode identically")
	}
	if bytes.Equal(cas, cas3v3) {
		t.Error("binary and ternary start sets encode identically")
	}
}

func TestCanonicalImplementationPermutationInvariant(t *testing.T) {
	im := consensus.CAS(3)
	perm := permuteProcs(im, []int{2, 0, 1})
	a, err := CanonicalImplementation(im, proposeStarts(2))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	b, err := CanonicalImplementation(perm, proposeStarts(2))
	if err != nil {
		t.Fatalf("encode permuted: %v", err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("process permutation of a symmetric implementation changed the encoding")
	}
}

// A falsely declared SymmetricProcs over behaviorally different machines
// must NOT collapse positionally swapped variants: their merged reports
// can differ, so their encodings must too.
func TestCanonicalImplementationFalseSymmetryStaysPositional(t *testing.T) {
	build := func(m0, m1 program.Machine) *program.Implementation {
		return &program.Implementation{
			Name:   "lying-symmetric",
			Target: types.Consensus(2),
			Procs:  2,
			Objects: []program.ObjectDecl{{
				Name:   "cell",
				Spec:   types.StickyCell(2, 2),
				Init:   types.StickyUnset,
				PortOf: program.AllPorts(2),
			}},
			Machines:       []program.Machine{m0, m1},
			SymmetricProcs: true, // a lie: the machines differ
		}
	}
	m0 := program.ConstMachine(types.ValOf(0))
	m1 := program.ConstMachine(types.ValOf(1))
	a, err := CanonicalImplementation(build(m0, m1), proposeStarts(2))
	if err != nil {
		t.Fatalf("encode: %v", err)
	}
	b, err := CanonicalImplementation(build(m1, m0), proposeStarts(2))
	if err != nil {
		t.Fatalf("encode swapped: %v", err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("swapping distinct machines under a false SymmetricProcs collided")
	}
}

func TestCanonicalSpecBudget(t *testing.T) {
	unbounded := &types.Spec{
		Name:          "unbounded-counter",
		Ports:         1,
		Oblivious:     true,
		Deterministic: true,
		Alphabet:      []types.Invocation{types.Inv("inc")},
		Step: func(q types.State, port int, inv types.Invocation) []types.Transition {
			return []types.Transition{{Next: q.(int) + 1, Resp: types.OK}}
		},
	}
	if _, err := CanonicalSpec(unbounded, 0); !errors.Is(err, ErrUncanonical) {
		t.Fatalf("unbounded spec: got %v, want ErrUncanonical", err)
	}
}

func TestCanonicalImplementationUncomparableState(t *testing.T) {
	bad := program.FuncMachine{
		StartFn: func(types.Invocation, any) any { return []int{1} }, // not comparable
		NextFn: func(state any, _ types.Response) (program.Action, any) {
			return program.ReturnAction(types.OK, nil), state
		},
	}
	im := &program.Implementation{
		Name:     "uncomparable",
		Target:   types.Consensus(2),
		Procs:    2,
		Machines: []program.Machine{bad, bad},
	}
	if _, err := CanonicalImplementation(im, proposeStarts(2)); !errors.Is(err, ErrUncanonical) {
		t.Fatalf("uncomparable machine state: got %v, want ErrUncanonical", err)
	}
}

func TestCanonicalSpecSeparatesInits(t *testing.T) {
	spec := types.Register(2, 2)
	a, err := CanonicalSpec(spec, 0)
	if err != nil {
		t.Fatalf("init 0: %v", err)
	}
	b, err := CanonicalSpec(spec, 1)
	if err != nil {
		t.Fatalf("init 1: %v", err)
	}
	if bytes.Equal(a, b) {
		t.Fatal("different initial states encode identically")
	}
}
