package explore

import (
	"bytes"
	"errors"
	"fmt"
	"sort"

	"waitfree/internal/program"
)

// This file implements process-permutation symmetry reduction for the
// consensus engines. Section 4.2 explores one execution tree per proposal
// vector; when the implementation is process-symmetric, proposal vectors
// that are permutations of one another generate isomorphic trees, so the
// engine explores one representative tree per orbit and replays its
// outcome to the remaining members — an up to n!-fold reduction in
// explored configurations with a merged report byte-identical to the
// unreduced run (see DESIGN.md §7 for the soundness argument).
//
// Three conditions make the reduction sound, checked by symmetricErr:
//
//   - Implementation.SymmetricProcs declares the machines interchangeable
//     (the scalarset idiom: machine behavior is not mechanically
//     decidable, so uniformity is a declared contract — but see
//     verifyOrbitRoots, which checks its observable consequence at every
//     tree root via canonical configuration keys).
//   - Every object's Spec is oblivious (§2.1): transitions ignore the
//     accessing port, so renaming processes fixes every object state
//     pointwise along the renamed execution.
//   - Every object gives every process a port: a permutation must carry
//     each process's access capability to the process taking its role.

// SymmetryMode selects process-permutation symmetry reduction for
// Consensus/ConsensusK (Options.Symmetry).
type SymmetryMode int

const (
	// SymmetryOff (the zero value) explores every proposal-vector tree.
	SymmetryOff SymmetryMode = iota
	// SymmetryAuto reduces when the implementation qualifies (declared
	// SymmetricProcs, oblivious fully-ported objects, no MemoBudget, and
	// orbit roots verified) and silently explores unreduced otherwise.
	SymmetryAuto
	// SymmetryRequire reduces like SymmetryAuto but surfaces the
	// disqualifying condition as an error wrapping ErrNotSymmetric instead
	// of falling back.
	SymmetryRequire
)

// ErrNotSymmetric is the sentinel wrapped when SymmetryRequire is set but
// the run cannot be symmetry-reduced.
var ErrNotSymmetric = errors.New("explore: implementation is not process-symmetric")

// String renders the mode as its CLI tag.
func (m SymmetryMode) String() string {
	switch m {
	case SymmetryOff:
		return "off"
	case SymmetryAuto:
		return "auto"
	case SymmetryRequire:
		return "require"
	}
	return fmt.Sprintf("symmetry(%d)", int(m))
}

// ParseSymmetryMode parses the -symmetry CLI tags "off", "auto", and
// "require".
func ParseSymmetryMode(s string) (SymmetryMode, error) {
	switch s {
	case "off":
		return SymmetryOff, nil
	case "auto":
		return SymmetryAuto, nil
	case "require":
		return SymmetryRequire, nil
	}
	return SymmetryOff, fmt.Errorf("unknown symmetry mode %q (want off, auto, or require)", s)
}

// Symmetric reports whether im satisfies the statically checkable
// process-symmetry conditions (declared interchangeable machines over
// oblivious, fully ported objects).
func Symmetric(im *program.Implementation) bool { return symmetricErr(im) == nil }

// symmetricErr explains why im cannot be symmetry-reduced, or nil.
func symmetricErr(im *program.Implementation) error {
	if !im.SymmetricProcs {
		return fmt.Errorf("%w: %s does not declare SymmetricProcs", ErrNotSymmetric, im.Name)
	}
	for i := range im.Objects {
		obj := &im.Objects[i]
		if !obj.Spec.Oblivious {
			return fmt.Errorf("%w: object %s has port-aware type %s", ErrNotSymmetric, obj.Name, obj.Spec.Name)
		}
		for p := 0; p < im.Procs; p++ {
			if obj.Port(p) == 0 {
				return fmt.Errorf("%w: object %s gives process %d no port", ErrNotSymmetric, obj.Name, p)
			}
		}
	}
	return nil
}

// orbitMember is one non-representative mask of an orbit. perm[p] is the
// representative-tree process whose role member process p plays: the
// member's proposals satisfy vec[p] == repVec[perm[p]], so under a
// symmetric implementation the member tree is the representative tree with
// process p relabeled perm[p].
type orbitMember struct {
	mask int
	perm []int
}

// orbit is one equivalence class of proposal-vector masks under process
// permutation. rep is the orbit's minimal mask (the explored
// representative); members are the remaining masks, ascending.
type orbit struct {
	rep     int
	members []orbitMember
}

// computeOrbits partitions the masks 0..roots-1 into orbits: two masks are
// equivalent iff their proposal vectors have equal multisets. Iterating
// masks in ascending order makes the first mask of each class its minimum
// — the vector with digits non-increasing, since ProposalVectorK weights
// digit p by k^p — so orbits come out ordered by representative mask.
func computeOrbits(procs, k, roots int) []orbit {
	index := make(map[string]int)
	var orbits []orbit
	for mask := 0; mask < roots; mask++ {
		vec := ProposalVectorK(mask, procs, k)
		sorted := append([]int(nil), vec...)
		sort.Sort(sort.Reverse(sort.IntSlice(sorted)))
		key := fmt.Sprint(sorted)
		oi, ok := index[key]
		if !ok {
			index[key] = len(orbits)
			orbits = append(orbits, orbit{rep: mask})
			continue
		}
		ob := &orbits[oi]
		repVec := ProposalVectorK(ob.rep, procs, k)
		ob.members = append(ob.members, orbitMember{mask: mask, perm: matchPerm(vec, repVec)})
	}
	return orbits
}

// matchPerm returns perm with member[p] == rep[perm[p]], assigning equal
// values by ascending position on both sides. Any consistent assignment is
// sound: processes proposing equal values are behaviorally identical under
// a symmetric implementation, so their roles are interchangeable.
func matchPerm(member, rep []int) []int {
	posByVal := make(map[int][]int, len(rep))
	for q, v := range rep {
		posByVal[v] = append(posByVal[v], q)
	}
	perm := make([]int, len(member))
	for p, v := range member {
		perm[p] = posByVal[v][0]
		posByVal[v] = posByVal[v][1:]
	}
	return perm
}

// singletonOrbits is the degenerate partition of an unreduced run: every
// mask is its own representative.
func singletonOrbits(roots int) []orbit {
	orbits := make([]orbit, roots)
	for mask := range orbits {
		orbits[mask].rep = mask
	}
	return orbits
}

// planOrbits decides whether the run may be symmetry-reduced and returns
// its work plan: true orbits (reduced=true) when reduction applies, one
// singleton orbit per mask otherwise. SymmetryRequire surfaces the
// disqualifying condition as an error; SymmetryAuto falls back silently.
func planOrbits(im *program.Implementation, k, roots int, opts Options) (orbits []orbit, reduced bool, err error) {
	if opts.Symmetry == SymmetryOff {
		return singletonOrbits(roots), false, nil
	}
	reason := symmetricErr(im)
	if reason == nil && opts.MemoBudget > 0 {
		// Budgeted memo eviction is triggered by traversal order, and a
		// member tree traverses its (isomorphic) configurations in permuted
		// order, so replayed MemoHits could drift from what an unreduced
		// run would count. Every other aggregate is order-invariant; see
		// the replayOutcome comment.
		reason = fmt.Errorf("%w: MemoBudget eviction is traversal-order dependent", ErrNotSymmetric)
	}
	if reason == nil {
		orbits = computeOrbits(im.Procs, k, roots)
		if reason = verifyOrbitRoots(im, k, orbits); reason == nil {
			return orbits, true, nil
		}
	}
	if opts.Symmetry == SymmetryRequire {
		return nil, false, reason
	}
	return singletonOrbits(roots), false, nil
}

// verifyOrbitRoots certifies the declared symmetry dynamically: every
// member tree's root configuration must equal its representative's root up
// to process permutation — equal canonical keys under one shared encoder.
// This catches implementations that declare SymmetricProcs but whose
// machines actually treat processes differently (the declaration itself is
// not mechanically checkable). Roots are cheap to build — each is one
// newExplorer call, no tree is explored.
func verifyOrbitRoots(im *program.Implementation, k int, orbits []orbit) error {
	enc := newKeyEncoder()
	rootKey := func(mask int) ([]byte, error) {
		scripts := consensusScripts(ProposalVectorK(mask, im.Procs, k))
		_, root, err := newExplorer(im, scripts, Options{})
		if err != nil {
			return nil, err
		}
		key, _ := enc.canonKey(root)
		return key, nil
	}
	for i := range orbits {
		ob := &orbits[i]
		if len(ob.members) == 0 {
			continue
		}
		repKey, err := rootKey(ob.rep)
		if err != nil {
			return err
		}
		for _, m := range ob.members {
			mKey, err := rootKey(m.mask)
			if err != nil {
				return err
			}
			if !bytes.Equal(repKey, mKey) {
				return fmt.Errorf("%w: root of proposals %v is not a process permutation of proposals %v (%s declares SymmetricProcs, but its machines differ)",
					ErrNotSymmetric, ProposalVectorK(m.mask, im.Procs, k), ProposalVectorK(ob.rep, im.Procs, k), im.Name)
			}
		}
	}
	return nil
}

// invertPerm inverts a role map (nil passes through: the identity).
func invertPerm(perm []int) []int {
	if perm == nil {
		return nil
	}
	inv := make([]int, len(perm))
	for p, q := range perm {
		inv[q] = p
	}
	return inv
}

// replayOutcome derives one orbit tree's outcome from an already-known
// sibling outcome without exploring it. src must be error- and
// violation-free. srcPerm and dstPerm are the trees' role maps onto the
// orbit representative (nil when the tree is the representative itself);
// composing them relates the destination directly to the source, so a
// resumed run can replay from any preloaded orbit member, not just the
// representative.
//
// Soundness of the verbatim copies: the trees are isomorphic under process
// relabeling (uniform machines make a process's behavior a function of its
// proposal alone; oblivious objects make transitions port-independent), and
// although the member tree's DFS visits the isomorphic configurations in a
// permuted order, every copied aggregate is order-invariant — Nodes/Leaves
// are sums over the virtual tree, Depth/MaxAccess/OpAccess are maxima over
// paths, MemoHits counts incoming DAG edges beyond the first per distinct
// configuration, the decided set is a union over leaves, and Degraded
// (budget exhaustion) is excluded by planOrbits. Only ProcSteps is
// relabeled: destination process p takes the bound of the source process
// playing the same representative role.
func replayOutcome(src *treeOutcome, srcPerm, dstPerm []int) treeOutcome {
	srcFromRep := invertPerm(srcPerm)
	res := &Result{
		Nodes:     src.res.Nodes,
		Leaves:    src.res.Leaves,
		MemoHits:  src.res.MemoHits,
		Depth:     src.res.Depth,
		MaxAccess: append([]int(nil), src.res.MaxAccess...),
		OpAccess:  make([]map[string]int, len(src.res.OpAccess)),
		ProcSteps: make([]int, len(src.res.ProcSteps)),
		Degraded:  src.res.Degraded,
	}
	for o, ops := range src.res.OpAccess {
		res.OpAccess[o] = make(map[string]int, len(ops))
		for op, v := range ops {
			res.OpAccess[o][op] = v
		}
	}
	for p := range res.ProcSteps {
		slot := p
		if dstPerm != nil {
			slot = dstPerm[p]
		}
		q := slot
		if srcFromRep != nil {
			q = srcFromRep[slot]
		}
		res.ProcSteps[p] = src.res.ProcSteps[q]
	}
	decided := make(map[int]bool, len(src.decided))
	for v := range src.decided {
		decided[v] = true
	}
	return treeOutcome{res: res, decided: decided}
}
