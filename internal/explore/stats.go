package explore

import (
	"fmt"
	"strings"
	"sync/atomic"
	"time"
)

// This file implements the engine's observability surface: cumulative
// counters shared by all workers, point-in-time Stats snapshots, and the
// progress ticker that publishes them through Options.OnProgress.
//
// Two kinds of numbers coexist and must not be confused:
//
//   - The REPORT counters (Result.Nodes, ConsensusReport.Nodes, ...) are
//     semantic: they are merged per tree in proposal-vector order and are a
//     pure function of the implementation, identical at every parallelism
//     level.
//   - The ENGINE counters below are observational: they accumulate across
//     workers as work happens, include trees explored speculatively past a
//     violation, and exist so a caller can watch, bound, or abort a run.
//     At the end of an uncancelled, violation-free run the two agree.

// DefaultProgressInterval is the OnProgress tick when
// Options.ProgressInterval is 0.
const DefaultProgressInterval = 250 * time.Millisecond

// flushEvery is the node period at which a worker flushes its local
// counters into the shared engine counters and polls the run context.
// Cancellation latency is bounded by the time to explore this many
// configurations (microseconds in practice).
const flushEvery = 256

// Stats is a snapshot of a running (or finished) exploration engine.
type Stats struct {
	// Nodes, Leaves, and MemoHits accumulate over every configuration any
	// worker has entered, including trees later discarded by the
	// deterministic merge.
	Nodes    int64 `json:"nodes"`
	Leaves   int64 `json:"leaves"`
	MemoHits int64 `json:"memo_hits"`
	// MaxDepth is the deepest configuration any worker had entered at its
	// last counter flush; CurDepth is the depth of the most recent flush
	// (a liveness indicator, not a bound).
	MaxDepth int `json:"max_depth"`
	CurDepth int `json:"cur_depth"`
	// TreesDone / TreesTotal count finished proposal-vector trees (explored
	// or, under symmetry reduction, replayed from an orbit sibling);
	// Frontier is the remainder (trees still queued or in flight).
	TreesDone  int `json:"trees_done"`
	TreesTotal int `json:"trees_total"`
	Frontier   int `json:"frontier"`
	// Orbits / OrbitsDone count process-permutation orbits when symmetry
	// reduction is active (zero otherwise); ReplayedTrees counts the member
	// trees whose outcome was replayed from an explored representative
	// instead of being explored. TreesDone - ReplayedTrees is the number of
	// trees the engine actually walked.
	Orbits        int   `json:"orbits,omitempty"`
	OrbitsDone    int   `json:"orbits_done,omitempty"`
	ReplayedTrees int64 `json:"replayed_trees,omitempty"`
	// Workers is the worker-goroutine count; WorkerNodes[w] is worker w's
	// cumulative node count, the basis of per-worker throughput. The slice
	// is freshly allocated for every snapshot — never a view of live engine
	// state — so an OnProgress callback may retain it or read it from
	// another goroutine without racing the workers' counter flushes.
	Workers     int     `json:"workers"`
	WorkerNodes []int64 `json:"worker_nodes,omitempty"`
	// Degraded reports that at least one tree's memo table hit
	// Options.MemoBudget and forgot evicted entries (graceful degradation:
	// verdicts stay exact, memo hits are lost). Never set while a spill
	// tier (Options.MemoSpillDir) is absorbing the evictions.
	Degraded bool `json:"degraded,omitempty"`
	// MemoEvictions counts memo entries reclaimed under Options.MemoBudget
	// across finished trees; MemoSpilled counts how many of those moved to
	// the disk-spill tier instead of being forgotten. Both stay zero on
	// unbudgeted runs.
	MemoEvictions int64 `json:"memo_evictions,omitempty"`
	MemoSpilled   int64 `json:"memo_spilled,omitempty"`
	// StorageRetries counts transient spill-tier I/O faults absorbed by
	// the unified retry policy (fsx.DefaultRetry); SpillRebuilds counts
	// spill files discarded and restarted after an unabsorbed fault;
	// SpillBroken reports at least one tree's spill tier broke outright
	// (its run degrades exactly as if no spill were configured). All stay
	// zero on a healthy disk.
	StorageRetries int64 `json:"storage_retries,omitempty"`
	SpillRebuilds  int64 `json:"spill_rebuilds,omitempty"`
	SpillBroken    bool  `json:"spill_broken,omitempty"`
	// Heartbeats[w] is worker w's liveness record: what it is exploring
	// and when it last flushed progress. The stall watchdog
	// (Options.StallAfter) reads the same records; snapshots copy them, so
	// retaining a Stats never aliases live engine state.
	Heartbeats []WorkerHeartbeat `json:"heartbeats,omitempty"`
	// Elapsed is the wall-clock time since the engine started.
	Elapsed time.Duration `json:"elapsed_ns"`
}

// WorkerHeartbeat is one worker's liveness record within a Stats
// snapshot.
type WorkerHeartbeat struct {
	// Worker is the worker index (aligned with WorkerNodes).
	Worker int `json:"worker"`
	// Mask is the proposal-vector tree the worker is exploring, -1 when it
	// is idle (between trees, or exited).
	Mask int `json:"mask"`
	// Depth is the configuration depth at the worker's last counter flush.
	Depth int `json:"depth"`
	// SinceProgress is how long ago the worker last flushed node progress.
	SinceProgress time.Duration `json:"since_progress_ns"`
	// ConfigKey is the hex key of the configuration at the last flush,
	// captured only when the stall watchdog is armed (Options.StallAfter):
	// the same diagnostic the panic handler attaches, so a wedged spec can
	// be replayed.
	ConfigKey string `json:"config_key,omitempty"`
}

func (h WorkerHeartbeat) String() string {
	if h.Mask < 0 {
		return fmt.Sprintf("worker %d: idle", h.Worker)
	}
	s := fmt.Sprintf("worker %d: mask=%d depth=%d idle=%v", h.Worker, h.Mask, h.Depth, h.SinceProgress.Round(time.Millisecond))
	if h.ConfigKey != "" {
		s += " key=" + h.ConfigKey
	}
	return s
}

// NodesPerSecond returns the aggregate node throughput so far.
func (s Stats) NodesPerSecond() float64 {
	secs := s.Elapsed.Seconds()
	if secs <= 0 {
		return 0
	}
	return float64(s.Nodes) / secs
}

// WorkerThroughput returns per-worker node throughput (nodes/sec).
func (s Stats) WorkerThroughput() []float64 {
	out := make([]float64, len(s.WorkerNodes))
	secs := s.Elapsed.Seconds()
	if secs <= 0 {
		return out
	}
	for i, n := range s.WorkerNodes {
		out[i] = float64(n) / secs
	}
	return out
}

// String renders the snapshot as one progress line.
func (s Stats) String() string {
	var b strings.Builder
	fmt.Fprintf(&b, "explore: trees %d/%d nodes=%d leaves=%d memo=%d depth<=%d cur=%d workers=%d %.0f nodes/s elapsed=%s",
		s.TreesDone, s.TreesTotal, s.Nodes, s.Leaves, s.MemoHits,
		s.MaxDepth, s.CurDepth, s.Workers, s.NodesPerSecond(), s.Elapsed.Round(time.Millisecond))
	if s.Orbits > 0 {
		fmt.Fprintf(&b, " orbits=%d/%d replayed=%d", s.OrbitsDone, s.Orbits, s.ReplayedTrees)
	}
	return b.String()
}

// counters is the shared, atomically updated engine state behind Stats.
type counters struct {
	start      time.Time
	treesTotal int
	// orbitsTotal is nonzero exactly when symmetry reduction is active
	// (set by ConsensusKContext after planOrbits); it gates the orbit
	// fields in snapshots so unreduced runs keep their exact Stats shape.
	orbitsTotal int

	nodes          atomic.Int64
	leaves         atomic.Int64
	memoHits       atomic.Int64
	maxDepth       atomic.Int64
	curDepth       atomic.Int64
	treesDone      atomic.Int64
	orbitsDone     atomic.Int64
	replayedTrees  atomic.Int64
	degraded       atomic.Bool
	memoEvictions  atomic.Int64
	memoSpilled    atomic.Int64
	storageRetries atomic.Int64
	spillRebuilds  atomic.Int64
	spillBroken    atomic.Bool

	workerNodes []atomic.Int64
	beats       []workerBeat

	// Soft-stop machinery (consensus engines only; nil/zero elsewhere):
	// maxNodes is Options.MaxNodes, softCancel cancels the engine's
	// internal run context, and tripped/tripReason latch the first soft
	// stop so the post-join dispatch can tell a budget stop from a stall.
	// captureKeys arms per-flush config-key capture for the heartbeats.
	maxNodes    int64
	captureKeys bool
	softCancel  func()
	tripped     atomic.Bool
	tripReason  atomic.Int32
}

// Soft-stop trip reasons.
const (
	tripNone int32 = iota
	tripNodeBudget
	tripStall
)

// workerBeat is one worker's live heartbeat record, written by the worker
// at claim time and every counter flush, read by snapshots and the stall
// watchdog.
type workerBeat struct {
	lastProgress atomic.Int64 // unix nanoseconds of the last flush
	mask         atomic.Int64 // current tree mask, -1 when idle
	depth        atomic.Int64
	key          atomic.Pointer[string] // hex config key (captureKeys only)
}

func newCounters(workers, treesTotal int) *counters {
	c := &counters{
		start:       time.Now(),
		treesTotal:  treesTotal,
		workerNodes: make([]atomic.Int64, workers),
		beats:       make([]workerBeat, workers),
	}
	now := c.start.UnixNano()
	for i := range c.beats {
		c.beats[i].mask.Store(-1)
		c.beats[i].lastProgress.Store(now)
	}
	return c
}

// claimBeat records that worker widx started working on tree mask (-1 =
// idle); claiming counts as progress so a worker racing through many tiny
// trees never looks stalled.
func (c *counters) claimBeat(widx, mask int) {
	b := &c.beats[widx]
	b.mask.Store(int64(mask))
	b.lastProgress.Store(time.Now().UnixNano())
}

// trip latches the first soft stop and cancels the engine's internal run
// context. A no-op outside the consensus engines (softCancel nil) and
// after the first trip.
func (c *counters) trip(reason int32) {
	if c.softCancel == nil {
		return
	}
	if c.tripped.CompareAndSwap(false, true) {
		c.tripReason.Store(reason)
		c.softCancel()
	}
}

// bumpMaxDepth raises maxDepth to d if d is larger.
func (c *counters) bumpMaxDepth(d int64) {
	for {
		cur := c.maxDepth.Load()
		if d <= cur || c.maxDepth.CompareAndSwap(cur, d) {
			return
		}
	}
}

// snapshot captures a Stats value. Individual fields are read atomically
// but the snapshot as a whole is not a consistent cut; it is monotone
// enough for progress display and cancellation accounting.
func (c *counters) snapshot() Stats {
	s := Stats{
		Nodes:          c.nodes.Load(),
		Leaves:         c.leaves.Load(),
		MemoHits:       c.memoHits.Load(),
		MaxDepth:       int(c.maxDepth.Load()),
		CurDepth:       int(c.curDepth.Load()),
		TreesDone:      int(c.treesDone.Load()),
		TreesTotal:     c.treesTotal,
		Workers:        len(c.workerNodes),
		WorkerNodes:    make([]int64, len(c.workerNodes)),
		Degraded:       c.degraded.Load(),
		MemoEvictions:  c.memoEvictions.Load(),
		MemoSpilled:    c.memoSpilled.Load(),
		StorageRetries: c.storageRetries.Load(),
		SpillRebuilds:  c.spillRebuilds.Load(),
		SpillBroken:    c.spillBroken.Load(),
		Elapsed:        time.Since(c.start),
	}
	s.Frontier = s.TreesTotal - s.TreesDone
	if c.orbitsTotal > 0 {
		s.Orbits = c.orbitsTotal
		s.OrbitsDone = int(c.orbitsDone.Load())
		s.ReplayedTrees = c.replayedTrees.Load()
	}
	// WorkerNodes is copied element-wise into the fresh slice allocated
	// above: snapshots own their slice outright (see the Stats field docs),
	// so OnProgress callbacks that retain one never alias live counters.
	for i := range c.workerNodes {
		s.WorkerNodes[i] = c.workerNodes[i].Load()
	}
	now := time.Now().UnixNano()
	s.Heartbeats = make([]WorkerHeartbeat, len(c.beats))
	for i := range c.beats {
		b := &c.beats[i]
		hb := WorkerHeartbeat{
			Worker:        i,
			Mask:          int(b.mask.Load()),
			Depth:         int(b.depth.Load()),
			SinceProgress: time.Duration(now - b.lastProgress.Load()),
		}
		if kp := b.key.Load(); kp != nil {
			hb.ConfigKey = *kp
		}
		s.Heartbeats[i] = hb
	}
	return s
}

// startProgress launches the OnProgress ticker. The returned stop function
// joins the ticker goroutine and then publishes one final snapshot, so a
// caller that cancels mid-run still observes the partial totals. OnProgress
// is only ever called from one goroutine at a time.
func startProgress(opts Options, ctr *counters) (stop func()) {
	if opts.OnProgress == nil {
		return func() {}
	}
	interval := opts.ProgressInterval
	if interval <= 0 {
		interval = DefaultProgressInterval
	}
	done := make(chan struct{})
	joined := make(chan struct{})
	go func() {
		defer close(joined)
		t := time.NewTicker(interval)
		defer t.Stop()
		for {
			select {
			case <-done:
				return
			case <-t.C:
				opts.OnProgress(ctr.snapshot())
			}
		}
	}()
	return func() {
		close(done)
		<-joined
		opts.OnProgress(ctr.snapshot())
	}
}
