package explore

import (
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"sort"

	"waitfree/internal/program"
	"waitfree/internal/types"
)

// This file lifts the explorer's configuration canonicalization (key.go)
// from single configurations to whole implementations: a canonical byte
// encoding of everything about an Implementation that can influence a
// verification report. Machines and Spec.Step are opaque Go functions, so
// the encoding is BEHAVIORAL, not structural — each object type is
// tabulated as its transition table over the states reachable from its
// initial state, and each machine is tabulated as a deterministic
// transducer over a response universe derived from those tables. Two
// implementations with byte-equal canonical encodings are observationally
// equivalent to the explorer (same trees, same merged reports), which is
// what makes the encoding safe to use as a result-cache key
// (internal/rescache).
//
// The encoding is only defined for implementations whose relevant state
// spaces are finite and small; anything that exceeds the tabulation
// budgets — or whose states are not comparable — reports ErrUncanonical,
// and callers fall back to running the check uncached.

// ErrUncanonical is the sentinel wrapped when an implementation has no
// bounded canonical encoding: a tabulation budget was exceeded, a machine
// or spec state is not comparable, or the alphabet/response fixpoint did
// not converge. It never indicates a malformed implementation — merely one
// the content-addressed cache cannot serve.
var ErrUncanonical = errors.New("explore: implementation has no bounded canonical encoding")

const (
	// canonSpecStates bounds the per-object reachable-state tabulation.
	canonSpecStates = 4096
	// canonMachineStates bounds the per-machine control-state tabulation.
	canonMachineStates = 4096
	// canonFixpointRounds bounds the invocation/response-universe
	// iteration: object tables are tabulated over the invocations the
	// machines actually issue, discovered incrementally (an invocation
	// guarded by a branch on a response value only surfaces once that
	// response enters the universe), so each round can add one level of
	// branch depth. The bound tracks the longest per-process program the
	// repo builds (the eliminated register-free protocols).
	canonFixpointRounds = 64
)

// Cell markers for machine transducer tables. They share no values with
// the key.go tags, but collisions would be harmless: markers are only
// compared against other markers at the same structural position.
const (
	canonCellPanic  byte = 0xF0 // Machine.Next panicked for this (state, response)
	canonCellAct    byte = 0xF1 // cell holds an encoded Action
	canonStartState byte = 0xF2 // start entry resolved to a state id
	canonStartPanic byte = 0xF3 // Machine.Start panicked for this invocation
)

// CanonicalSpec renders the behavior of spec from init into a canonical
// byte encoding: the structural header (name, ports, flags, alphabet)
// followed by the transition table over the reachable closure of init.
// Byte-equal encodings are behaviorally interchangeable objects. Types
// whose reachable fragment exceeds the tabulation budget report
// ErrUncanonical.
func CanonicalSpec(spec *types.Spec, init types.State) (out []byte, err error) {
	defer canonRecover(&out, &err)
	respSet := map[types.Response]bool{}
	table, _, err := canonSpecTable(spec, init, spec.Alphabet, respSet)
	if err != nil {
		return nil, err
	}
	b := appendSpecHeader(nil, spec, spec.Alphabet)
	return append(b, table...), nil
}

// CanonicalImplementation renders im into a canonical byte encoding of its
// verdict-relevant content. starts is the set of target invocations the
// machines may be started with (for consensus-style checks, the propose
// invocations over the proposal-value range); it is part of the encoding.
//
// Process-permutation canonicalization: when the implementation qualifies
// for symmetry reduction (declared SymmetricProcs over oblivious, fully
// ported objects), the object tables verify port-independence behaviorally
// AND every machine tabulates to identical bytes, the per-process port
// assignments are omitted — so implementations that differ only by a
// renaming of interchangeable processes (or by structurally distinct but
// behaviorally identical machine values) share one encoding. Otherwise
// machines and ports are encoded positionally, which is always sound.
func CanonicalImplementation(im *program.Implementation, starts []types.Invocation) (out []byte, err error) {
	defer canonRecover(&out, &err)
	if err := im.Validate(); err != nil {
		return nil, err
	}
	starts = dedupInvocations(starts)

	// Per-object tabulation alphabets: exactly the invocations the
	// machines issue, discovered by the fixpoint below. The declared
	// Alphabet is deliberately NOT seeded in: the explorer only ever
	// drives a spec through machine-issued invocations, so behavior on
	// the rest of the alphabet cannot influence a verdict — and the
	// machine tabulation enumerates every (control state, response) pair,
	// an over-approximation of what real executions reach, so the issued
	// set covers everything the explorer can trigger. Keying on the
	// issued closure both sharpens the canonicalization (alphabet-only
	// spec differences collapse) and keeps the warm cache path cheap.
	objInvs := make([][]types.Invocation, len(im.Objects))

	enc := newKeyEncoder()
	objTabs := make([][]byte, len(im.Objects))
	objOblivious := make([]bool, len(im.Objects))
	respsByObj := make([][]types.Response, len(im.Objects))
	machTabs := make([][]byte, len(im.Machines))

	for round := 0; ; round++ {
		if round >= canonFixpointRounds {
			return nil, fmt.Errorf("%w: %s: invocation/response universe did not converge in %d rounds",
				ErrUncanonical, im.Name, canonFixpointRounds)
		}
		for i := range im.Objects {
			obj := &im.Objects[i]
			respSet := map[types.Response]bool{}
			table, oblivious, err := canonSpecTable(obj.Spec, obj.Init, objInvs[i], respSet)
			if err != nil {
				return nil, fmt.Errorf("object %d (%s): %w", i, obj.Name, err)
			}
			objTabs[i] = table
			objOblivious[i] = oblivious
			respsByObj[i] = sortedResponses(respSet)
		}
		grew := false
		for p, m := range im.Machines {
			table, issued, err := canonMachineTable(enc, m, starts, respsByObj)
			if err != nil {
				return nil, fmt.Errorf("machine %d: %w", p, err)
			}
			machTabs[p] = table
			for _, oi := range issued {
				if oi.obj < 0 || oi.obj >= len(objInvs) {
					continue // stray object index; the explorer would reject it
				}
				if !containsInvocation(objInvs[oi.obj], oi.inv) {
					objInvs[oi.obj] = append(objInvs[oi.obj], oi.inv)
					grew = true
				}
			}
		}
		if !grew {
			break
		}
	}

	b := append(make([]byte, 0, 2048), "wfimpl2"...)
	b = binary.AppendVarint(b, int64(im.Procs))
	b = appendCanonString(b, im.Name)
	if im.Target != nil {
		b = append(b, 1)
		b = appendSpecHeader(b, im.Target, im.Target.Alphabet)
	} else {
		b = append(b, 0)
	}
	b = binary.AppendUvarint(b, uint64(len(starts)))
	for _, inv := range starts {
		b = appendInvocation(b, inv)
	}
	b = binary.AppendUvarint(b, uint64(len(im.Objects)))
	allOblivious := true
	for i := range im.Objects {
		obj := &im.Objects[i]
		b = appendCanonString(b, obj.Name)
		b = appendSpecHeader(b, obj.Spec, objInvs[i])
		b = appendCanonBytes(b, objTabs[i])
		if !objOblivious[i] {
			allOblivious = false
		}
	}

	// Symmetric-canonical mode drops the port assignments so that process
	// permutations of one implementation collapse to one encoding. It is
	// sound only when ports are provably irrelevant and the processes are
	// provably interchangeable: the static symmetry conditions hold
	// (symmetricErr — declared SymmetricProcs, declared-oblivious fully
	// ported objects), the tabulated object tables are port-independent on
	// the reachable fragment (a declaration alone could lie), and every
	// machine tabulates to identical bytes (a declaration alone could lie
	// here too: positionally swapped distinct machines under a false
	// SymmetricProcs must NOT collide).
	if symmetricErr(im) == nil && allOblivious && allBytesEqual(machTabs) {
		b = append(b, 'S')
		b = appendCanonBytes(b, machTabs[0])
		return b, nil
	}
	b = append(b, 'P')
	for p := range machTabs {
		b = appendCanonBytes(b, machTabs[p])
		for i := range im.Objects {
			b = binary.AppendVarint(b, int64(im.Objects[i].Port(p)))
		}
	}
	return b, nil
}

// canonRecover converts panics from foreign code (Spec.Step, Machine
// implementations, non-comparable states used as map keys) into
// ErrUncanonical: the implementation is not encodable, so the cache
// bypasses it, but the check itself still runs.
func canonRecover(out *[]byte, err *error) {
	if r := recover(); r != nil {
		*out, *err = nil, fmt.Errorf("%w: encoding panicked: %v", ErrUncanonical, r)
	}
}

// canonSpecTable tabulates spec behaviorally: a breadth-first walk of the
// states reachable from init, recording for every (state, port,
// invocation) the allowed transitions as (response, next-state-id) pairs.
// State ids are assigned in discovery order, so the table bytes are a
// canonical form independent of the Go representation of states. Every
// response seen is added to respSet (the machine-transducer universe).
// oblivious reports whether every tabulated row was byte-identical across
// ports — the behavioral check behind the symmetric-canonical mode.
func canonSpecTable(spec *types.Spec, init types.State, invs []types.Invocation, respSet map[types.Response]bool) (table []byte, oblivious bool, err error) {
	ids := map[types.State]uint64{init: 1}
	order := []types.State{init}
	id := func(q types.State) uint64 {
		if n, ok := ids[q]; ok {
			return n
		}
		n := uint64(len(order) + 1)
		ids[q] = n
		order = append(order, q)
		return n
	}
	b := make([]byte, 0, 256)
	oblivious = true
	var firstRow, row []byte
	for i := 0; i < len(order); i++ {
		q := order[i]
		for port := 1; port <= spec.Ports; port++ {
			row = row[:0]
			for _, inv := range invs {
				ts := spec.Step(q, port, inv)
				row = binary.AppendUvarint(row, uint64(len(ts)))
				for _, t := range ts {
					respSet[t.Resp] = true
					row = appendResponse(row, t.Resp)
					row = binary.AppendUvarint(row, id(t.Next))
				}
			}
			if port == 1 {
				firstRow = append(firstRow[:0], row...)
			} else if !bytes.Equal(firstRow, row) {
				oblivious = false
			}
			b = append(b, row...)
		}
		if len(order) > canonSpecStates {
			return nil, false, fmt.Errorf("%w: type %q exceeds %d reachable states",
				ErrUncanonical, spec.Name, canonSpecStates)
		}
	}
	return b, oblivious, nil
}

// objInv is one invocation a machine issued on one object during
// tabulation.
type objInv struct {
	obj int
	inv types.Invocation
}

// canonMachineTable tabulates m as a deterministic transducer: start
// states for every start invocation (with nil persistent memory — the
// cached pipelines run one target operation per process), then a block
// per discovered (control state, response source): the machine's action
// on each response that source can deliver. A source is either the zero
// first-response after Start, or an object the machine just invoked —
// whose sorted tabulated response set is used, plus the zero response so
// that invocation chains whose sequencing ignores the response value stay
// discoverable before the object tables fill in. Restricting each state
// to the responses it can actually receive (instead of the global
// response universe) keeps the tabulation an over-approximation of the
// explorer's executions while shrinking it sharply. Invoke actions
// enqueue their successor state under the invoked object's source;
// Return actions are terminal (the explorer never drives a machine past
// its return), so their successors are not explored. Panics in foreign
// machine code are recorded as panic cells, deterministically.
func canonMachineTable(enc *keyEncoder, m program.Machine, starts []types.Invocation, respsByObj [][]types.Response) (table []byte, issued []objInv, err error) {
	ids := map[any]uint64{}
	var order []any
	id := func(s any) uint64 {
		if n, ok := ids[s]; ok {
			return n
		}
		n := uint64(len(order) + 1)
		ids[s] = n
		order = append(order, s)
		return n
	}
	type block struct {
		state uint64
		src   int // 0 = zero response after Start; o+1 = responses of object o
	}
	words := (len(respsByObj) + 1 + 63) / 64
	var seen [][]uint64 // seen[stateID-1]: bitmask over sources already enqueued
	var queue []block
	enqueue := func(s any, src int) {
		n := id(s)
		for uint64(len(seen)) < n {
			seen = append(seen, make([]uint64, words))
		}
		if w := seen[n-1]; w[src/64]&(1<<(src%64)) == 0 {
			w[src/64] |= 1 << (src % 64)
			queue = append(queue, block{n, src})
		}
	}
	b := make([]byte, 0, 512)
	b = binary.AppendUvarint(b, uint64(len(starts)))
	for _, inv := range starts {
		b = appendInvocation(b, inv)
		if s, ok := safeStart(m, inv); ok {
			b = append(b, canonStartState)
			b = binary.AppendUvarint(b, id(s))
			enqueue(s, 0)
		} else {
			b = append(b, canonStartPanic)
		}
	}
	for qi := 0; qi < len(queue); qi++ {
		blk := queue[qi]
		s := order[blk.state-1]
		b = binary.AppendUvarint(b, blk.state)
		b = binary.AppendUvarint(b, uint64(blk.src))
		step := func(r types.Response) {
			act, next, ok := safeNext(m, s, r)
			if !ok {
				b = append(b, canonCellPanic)
				return
			}
			b = append(b, canonCellAct)
			b = enc.appendAction(b, act)
			if act.Kind == program.KindInvoke {
				issued = append(issued, objInv{obj: act.Obj, inv: act.Inv})
				b = binary.AppendUvarint(b, id(next))
				if act.Obj >= 0 && act.Obj < len(respsByObj) {
					enqueue(next, act.Obj+1)
				}
			}
		}
		step(types.Response{})
		if blk.src > 0 {
			for _, r := range respsByObj[blk.src-1] {
				if r == (types.Response{}) {
					continue // already tabulated above
				}
				step(r)
			}
		}
		if len(order) > canonMachineStates {
			return nil, nil, fmt.Errorf("%w: machine exceeds %d control states",
				ErrUncanonical, canonMachineStates)
		}
	}
	return b, issued, nil
}

// safeStart calls m.Start, converting a panic into ok=false. The universe
// of start invocations over-approximates what the machine expects, so
// foreign machines are allowed to reject entries by panicking.
func safeStart(m program.Machine, inv types.Invocation) (s any, ok bool) {
	defer func() {
		if recover() != nil {
			s, ok = nil, false
		}
	}()
	return m.Start(inv, nil), true
}

// safeNext calls m.Next, converting a panic into ok=false (the response
// universe over-approximates what the machine can actually receive).
func safeNext(m program.Machine, s any, r types.Response) (act program.Action, next any, ok bool) {
	defer func() {
		if recover() != nil {
			act, next, ok = program.Action{}, nil, false
		}
	}()
	act, next = m.Next(s, r)
	return act, next, true
}

func appendSpecHeader(b []byte, spec *types.Spec, invs []types.Invocation) []byte {
	b = appendCanonString(b, spec.Name)
	b = binary.AppendVarint(b, int64(spec.Ports))
	b = appendCanonBool(b, spec.Oblivious)
	b = appendCanonBool(b, spec.Deterministic)
	b = binary.AppendUvarint(b, uint64(len(invs)))
	for _, inv := range invs {
		b = appendInvocation(b, inv)
	}
	return b
}

func appendCanonString(b []byte, s string) []byte {
	b = binary.AppendUvarint(b, uint64(len(s)))
	return append(b, s...)
}

func appendCanonBytes(b, p []byte) []byte {
	b = binary.AppendUvarint(b, uint64(len(p)))
	return append(b, p...)
}

func appendCanonBool(b []byte, v bool) []byte {
	if v {
		return append(b, 1)
	}
	return append(b, 0)
}

func sortedResponses(set map[types.Response]bool) []types.Response {
	out := make([]types.Response, 0, len(set))
	for r := range set {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].Label != out[j].Label {
			return out[i].Label < out[j].Label
		}
		return out[i].Val < out[j].Val
	})
	return out
}

func dedupInvocations(invs []types.Invocation) []types.Invocation {
	seen := make(map[types.Invocation]bool, len(invs))
	out := make([]types.Invocation, 0, len(invs))
	for _, inv := range invs {
		if !seen[inv] {
			seen[inv] = true
			out = append(out, inv)
		}
	}
	return out
}

func containsInvocation(invs []types.Invocation, inv types.Invocation) bool {
	for _, have := range invs {
		if have == inv {
			return true
		}
	}
	return false
}

func allBytesEqual(tabs [][]byte) bool {
	for i := 1; i < len(tabs); i++ {
		if !bytes.Equal(tabs[0], tabs[i]) {
			return false
		}
	}
	return len(tabs) > 0
}
