package explore

import (
	"testing"

	"waitfree/internal/types"
)

func TestValencyTASConsensus(t *testing.T) {
	report, err := Valency(tasConsensusImpl(), []int{0, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.InitialBivalent {
		t.Fatal("mixed proposals must leave the initial configuration bivalent")
	}
	if got := ValencySet(report.InitialValency); len(got) != 2 || got[0] != 0 || got[1] != 1 {
		t.Fatalf("initial valency = %v, want [0 1]", got)
	}
	if len(report.Critical) == 0 {
		t.Fatal("a correct protocol from a bivalent start must have critical configurations")
	}
	// Herlihy's argument: at every critical configuration, all pending
	// accesses target the SAME object, and it is the test-and-set object
	// (index 0), never one of the registers.
	for _, cc := range report.Critical {
		if !cc.SameObject {
			t.Errorf("critical configuration with pending steps on different objects: %+v", cc)
		}
		if cc.Obj != 0 {
			t.Errorf("critical configuration arbitrated by object %d, want the tas (0)", cc.Obj)
		}
		for _, ps := range cc.Pending {
			if ps.Inv.Op != types.OpTAS {
				t.Errorf("pending step %v is not a tas", ps)
			}
		}
	}
	if len(report.CriticalObjects) != 1 || report.CriticalObjects[0] != 0 {
		t.Errorf("critical objects = %v, want [0]", report.CriticalObjects)
	}
	if report.Bivalent == 0 || report.Univalent == 0 {
		t.Errorf("degenerate counts: bivalent=%d univalent=%d", report.Bivalent, report.Univalent)
	}
}

func TestValencySameProposalsUnivalent(t *testing.T) {
	report, err := Valency(tasConsensusImpl(), []int{1, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.InitialBivalent {
		t.Fatal("identical proposals must be univalent from the start (validity)")
	}
	if got := ValencySet(report.InitialValency); len(got) != 1 || got[0] != 1 {
		t.Fatalf("initial valency = %v, want [1]", got)
	}
	if len(report.Critical) != 0 {
		t.Errorf("univalent tree has %d critical configurations", len(report.Critical))
	}
}

func TestValencyCASConsensus(t *testing.T) {
	report, err := Valency(casConsensusImpl(3), []int{0, 1, 1}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.InitialBivalent {
		t.Fatal("mixed proposals bivalent")
	}
	for _, cc := range report.Critical {
		if !cc.SameObject || cc.Obj != 0 {
			t.Errorf("critical configuration not arbitrated by the cas object: %+v", cc)
		}
	}
}

func TestValencyRejectsBadShape(t *testing.T) {
	if _, err := Valency(tasConsensusImpl(), []int{0}, Options{}); err == nil {
		t.Error("proposal count mismatch accepted")
	}
}

func TestValencySet(t *testing.T) {
	if got := ValencySet(0b101); len(got) != 2 || got[0] != 0 || got[1] != 2 {
		t.Errorf("ValencySet(0b101) = %v", got)
	}
	if got := ValencySet(0); len(got) != 0 {
		t.Errorf("ValencySet(0) = %v", got)
	}
}
