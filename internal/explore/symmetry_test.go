package explore

import (
	"context"
	"errors"
	"reflect"
	"testing"

	"waitfree/internal/consensus"
	"waitfree/internal/faults"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// TestComputeOrbits pins the binary 3-process orbit structure and the
// role-map invariant member[p] == rep[perm[p]] on every member.
func TestComputeOrbits(t *testing.T) {
	orbits := computeOrbits(3, 2, 8)
	wantReps := []int{0, 1, 3, 7}
	if len(orbits) != len(wantReps) {
		t.Fatalf("got %d orbits, want %d", len(orbits), len(wantReps))
	}
	wantMembers := map[int][]int{0: nil, 1: {2, 4}, 3: {5, 6}, 7: nil}
	for i, ob := range orbits {
		if ob.rep != wantReps[i] {
			t.Fatalf("orbit %d has rep %d, want %d", i, ob.rep, wantReps[i])
		}
		var masks []int
		for _, m := range ob.members {
			masks = append(masks, m.mask)
			vec := ProposalVectorK(m.mask, 3, 2)
			repVec := ProposalVectorK(ob.rep, 3, 2)
			for p := range vec {
				if vec[p] != repVec[m.perm[p]] {
					t.Errorf("mask %d: vec[%d]=%d but rep[perm[%d]=%d]=%d",
						m.mask, p, vec[p], p, m.perm[p], repVec[m.perm[p]])
				}
			}
		}
		if !reflect.DeepEqual(masks, wantMembers[ob.rep]) {
			t.Errorf("rep %d has members %v, want %v", ob.rep, masks, wantMembers[ob.rep])
		}
	}
}

// TestSymmetric pins the static qualification predicate on the built-ins.
func TestSymmetric(t *testing.T) {
	for _, tc := range []struct {
		im   *program.Implementation
		want bool
	}{
		{consensus.CAS(3), true},
		{consensus.Sticky(4), true},
		{consensus.AugQueue(3), true},
		{consensus.FetchCons(3), true},
		{consensus.TAS2(), false},           // SRSW prefer bits: not fully ported
		{consensus.Queue2(), false},         // likewise
		{consensus.NaiveRegister2(), false}, // per-process machines, undeclared
	} {
		if got := Symmetric(tc.im); got != tc.want {
			t.Errorf("Symmetric(%s) = %v, want %v", tc.im.Name, got, tc.want)
		}
	}
}

// TestSymmetryParityCorpus is the acceptance gate of the reduction: on
// every corpus protocol — symmetric or not, correct or violating, memoized
// or not, at every parallelism level — SymmetryAuto must produce a report
// deep-equal to the unreduced run. Only Stats (observational) is excluded.
func TestSymmetryParityCorpus(t *testing.T) {
	for _, im := range consensus.Corpus() {
		for _, memoize := range []bool{false, true} {
			base, baseErr := Consensus(im, Options{Memoize: memoize, Parallelism: 1})
			stripStats(base)
			for _, workers := range []int{1, 2, 0} {
				red, redErr := Consensus(im, Options{Memoize: memoize, Parallelism: workers, Symmetry: SymmetryAuto})
				stripStats(red)
				if (baseErr == nil) != (redErr == nil) {
					t.Fatalf("%s memoize=%v workers=%d: error mismatch: %v vs %v",
						im.Name, memoize, workers, baseErr, redErr)
				}
				if baseErr != nil {
					continue
				}
				if !reflect.DeepEqual(base, red) {
					t.Errorf("%s memoize=%v workers=%d: symmetry changed the report\nbase: %+v\nred:  %+v",
						im.Name, memoize, workers, base, red)
				}
			}
		}
	}
}

// TestSymmetryKParity covers the multi-valued orbits (k^n masks grouped by
// proposal multiset) the binary corpus misses: 9 masks, 6 orbits. CAS(2)
// under k=3 happens to violate (proposal 2 collides with the protocol's
// bottom sentinel), which makes this a parity check on a k-valued
// violating run too: the merge must stop at the same mask either way.
func TestSymmetryKParity(t *testing.T) {
	im := consensus.CAS(2)
	base, err := ConsensusK(im, 3, Options{Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	red, err := ConsensusK(im, 3, Options{Memoize: true, Symmetry: SymmetryRequire})
	if err != nil {
		t.Fatal(err)
	}
	if red.Stats.Orbits != 6 {
		t.Errorf("orbits=%d, want 6 orbits over 9 masks", red.Stats.Orbits)
	}
	if !reflect.DeepEqual(stripStats(base), stripStats(red)) {
		t.Errorf("k=3 symmetry changed the report\nbase: %+v\nred:  %+v", base, red)
	}
}

// TestSymmetryReducesWork is the other half of the acceptance criterion:
// on every 3-process symmetric protocol the reduced engine must explore
// strictly fewer configurations, while finishing all 8 trees (4 orbits).
func TestSymmetryReducesWork(t *testing.T) {
	for _, im := range []*program.Implementation{
		consensus.CAS(3), consensus.Sticky(3), consensus.AugQueue(3), consensus.FetchCons(3),
	} {
		full, err := Consensus(im, Options{})
		if err != nil {
			t.Fatal(err)
		}
		red, err := Consensus(im, Options{Symmetry: SymmetryRequire})
		if err != nil {
			t.Fatalf("%s: %v", im.Name, err)
		}
		if red.Stats.Nodes >= full.Stats.Nodes {
			t.Errorf("%s: reduced engine explored %d nodes, unreduced %d — no reduction",
				im.Name, red.Stats.Nodes, full.Stats.Nodes)
		}
		if red.Stats.Orbits != 4 || red.Stats.OrbitsDone != 4 {
			t.Errorf("%s: orbits %d/%d, want 4/4", im.Name, red.Stats.OrbitsDone, red.Stats.Orbits)
		}
		if red.Stats.TreesDone != 8 || red.Stats.ReplayedTrees != 4 {
			t.Errorf("%s: trees=%d replayed=%d, want 8 trees with 4 replayed",
				im.Name, red.Stats.TreesDone, red.Stats.ReplayedTrees)
		}
		if full.Stats.Orbits != 0 || full.Stats.ReplayedTrees != 0 {
			t.Errorf("%s: unreduced run reports orbit stats %d/%d", im.Name, full.Stats.Orbits, full.Stats.ReplayedTrees)
		}
	}
}

// TestSymmetryModes pins the mode semantics: Require fails loudly on every
// disqualified run, Auto falls back silently with an unchanged report, and
// Validate rejects out-of-range modes.
func TestSymmetryModes(t *testing.T) {
	// TAS2's SRSW prefer bits are not fully ported: not symmetric.
	if _, err := Consensus(consensus.TAS2(), Options{Symmetry: SymmetryRequire}); !errors.Is(err, ErrNotSymmetric) {
		t.Errorf("Require on TAS2: err = %v, want ErrNotSymmetric", err)
	}
	// A memo budget makes MemoHits traversal-order dependent: excluded.
	if _, err := Consensus(consensus.CAS(3), Options{Memoize: true, MemoBudget: 8, Symmetry: SymmetryRequire}); !errors.Is(err, ErrNotSymmetric) {
		t.Errorf("Require with MemoBudget: err = %v, want ErrNotSymmetric", err)
	}
	base, err := Consensus(consensus.TAS2(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Consensus(consensus.TAS2(), Options{Symmetry: SymmetryAuto})
	if err != nil {
		t.Fatalf("Auto on an asymmetric protocol must fall back, got %v", err)
	}
	if auto.Stats.Orbits != 0 {
		t.Errorf("fallback run reports %d orbits, want 0", auto.Stats.Orbits)
	}
	if !reflect.DeepEqual(stripStats(base), stripStats(auto)) {
		t.Error("Auto fallback changed the report")
	}
	for _, bad := range []SymmetryMode{-1, 99} {
		if _, err := Consensus(consensus.CAS(2), Options{Symmetry: bad}); !errors.Is(err, ErrBadOptions) {
			t.Errorf("Symmetry=%d: err = %v, want ErrBadOptions", int(bad), err)
		}
	}
	for _, tc := range []struct {
		in   string
		want SymmetryMode
		ok   bool
	}{
		{"off", SymmetryOff, true}, {"auto", SymmetryAuto, true}, {"require", SymmetryRequire, true}, {"maybe", 0, false},
	} {
		got, err := ParseSymmetryMode(tc.in)
		if (err == nil) != tc.ok || got != tc.want {
			t.Errorf("ParseSymmetryMode(%q) = %v, %v", tc.in, got, err)
		}
		if tc.ok && got.String() != tc.in {
			t.Errorf("String() round-trip of %q gives %q", tc.in, got.String())
		}
	}
}

// ownValue3 is a deliberately incorrect symmetric protocol: each process
// announces in a shared register and decides its own proposal, violating
// agreement on any mixed proposal vector. It exercises the violating path
// under reduction: the first violating mask is 1, the representative of
// the orbit {1, 2, 4}, so the reduced merge must stop at exactly the same
// mask with exactly the same counterexample as the unreduced one.
func ownValue3() *program.Implementation {
	type pcState struct{ PC, V int }
	machine := program.FuncMachine{
		StartFn: func(inv types.Invocation, _ any) any { return pcState{PC: 0, V: inv.A} },
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s := state.(pcState)
			if s.PC == 0 {
				return program.InvokeAction(0, types.Write(s.V)), pcState{PC: 1, V: s.V}
			}
			return program.ReturnAction(types.ValOf(s.V), nil), s
		},
	}
	return &program.Implementation{
		Name:           "ownvalue-3",
		Target:         types.Consensus(3),
		Procs:          3,
		SymmetricProcs: true,
		Objects: []program.ObjectDecl{{
			Name:   "ann",
			Spec:   types.Register(3, 2),
			Init:   0,
			PortOf: program.AllPorts(3),
		}},
		Machines: []program.Machine{machine, machine, machine},
	}
}

// TestSymmetryViolationParity checks the violating-run equivalence in
// full: verdicts, the violating proposal vector, and the counterexample
// schedule itself must be identical, because the first violating mask is
// always an orbit representative (representatives are orbit minima).
func TestSymmetryViolationParity(t *testing.T) {
	im := ownValue3()
	base, err := Consensus(im, Options{})
	if err != nil {
		t.Fatal(err)
	}
	red, err := Consensus(im, Options{Symmetry: SymmetryRequire})
	if err != nil {
		t.Fatal(err)
	}
	if base.OK() || base.Agreement {
		t.Fatalf("ownValue3 unexpectedly verified: %+v", base)
	}
	if !reflect.DeepEqual(base.ViolationProposals, []int{1, 0, 0}) {
		t.Fatalf("first violating proposals %v, want [1 0 0]", base.ViolationProposals)
	}
	if !reflect.DeepEqual(stripStats(base), stripStats(red)) {
		t.Errorf("violating report differs under symmetry\nbase: %+v\nred:  %+v", base, red)
	}
}

// TestSymmetryFaultsParity runs the reduction under exhaustive crash
// exploration: renaming processes maps crash schedules to crash schedules,
// so the reduced fault-model report must also match byte for byte.
func TestSymmetryFaultsParity(t *testing.T) {
	im := consensus.Sticky(3)
	opts := Options{Faults: faults.Model{MaxCrashes: 1}}
	base, err := Consensus(im, opts)
	if err != nil {
		t.Fatal(err)
	}
	opts.Symmetry = SymmetryRequire
	red, err := Consensus(im, opts)
	if err != nil {
		t.Fatal(err)
	}
	if red.Stats.ReplayedTrees == 0 {
		t.Error("fault run replayed no trees")
	}
	if !reflect.DeepEqual(stripStats(base), stripStats(red)) {
		t.Errorf("fault-model report differs under symmetry\nbase: %+v\nred:  %+v", base, red)
	}
}

// TestSymmetryResumeFromMemberTrees resumes a reduced run from a
// checkpoint that recorded only non-representative orbit members (masks 2
// and 6 of the orbits {1,2,4} and {3,5,6}): the engine must replay the
// representatives FROM the preloaded members through the composed role
// maps, reach the unreduced report, and explore only the singleton orbits.
func TestSymmetryResumeFromMemberTrees(t *testing.T) {
	im := consensus.Sticky(3)
	opts := Options{Memoize: true}
	base, err := Consensus(im, opts)
	if err != nil {
		t.Fatal(err)
	}
	cp := &Checkpoint{
		Version: CheckpointVersion,
		Impl:    im.Name,
		Procs:   3,
		Values:  2,
		Roots:   8,
	}
	ctr := newCounters(1, 8)
	for _, mask := range []int{2, 6} {
		out := exploreTree(context.Background(), im, 2, mask, opts, ctr, 0)
		if out.err != nil {
			t.Fatal(out.err)
		}
		cp.Trees = append(cp.Trees, treeResultOf(mask, &out))
	}
	resumeOpts := opts
	resumeOpts.ResumeFrom = cp
	resumeOpts.Symmetry = SymmetryRequire
	red, err := Consensus(im, resumeOpts)
	if err != nil {
		t.Fatal(err)
	}
	// Masks 0 and 7 are explored; reps 1 and 3 plus members 4 and 5 replay.
	if red.Stats.ReplayedTrees != 4 || red.Stats.TreesDone != 8 {
		t.Errorf("resume replayed %d of %d trees, want 4 of 8 done", red.Stats.ReplayedTrees, red.Stats.TreesDone)
	}
	if !reflect.DeepEqual(stripStats(base), stripStats(red)) {
		t.Errorf("member-tree resume differs from the uninterrupted report\nbase: %+v\nred:  %+v", base, red)
	}
}

// TestVerifyOrbitRootsCatchesLiar builds a protocol that DECLARES
// SymmetricProcs but runs a port-aware machine (process 0 proposes its id
// into its first write regardless of its proposal): the canonical-key root
// certificate must reject it under Require and fall back under Auto.
func TestVerifyOrbitRootsCatchesLiar(t *testing.T) {
	type pcState struct{ PC, V int }
	machine := func(p int) program.Machine {
		return program.FuncMachine{
			StartFn: func(inv types.Invocation, _ any) any { return pcState{PC: 0, V: inv.A} },
			NextFn: func(state any, resp types.Response) (program.Action, any) {
				s := state.(pcState)
				if s.PC == 0 {
					// Port-aware: the stuck value depends on the identity.
					return program.InvokeAction(0, types.Inv(types.OpStick, p%2)), pcState{PC: 1, V: s.V}
				}
				return program.ReturnAction(types.ValOf(resp.Val), nil), s
			},
		}
	}
	im := &program.Implementation{
		Name:           "liar-3",
		Target:         types.Consensus(3),
		Procs:          3,
		SymmetricProcs: true, // the lie
		Objects: []program.ObjectDecl{{
			Name:   "sticky",
			Spec:   types.StickyCell(3, 2),
			Init:   types.StickyUnset,
			PortOf: program.AllPorts(3),
		}},
		Machines: []program.Machine{machine(0), machine(1), machine(2)},
	}
	if _, err := Consensus(im, Options{Symmetry: SymmetryRequire}); !errors.Is(err, ErrNotSymmetric) {
		t.Errorf("root certificate accepted a lying declaration: err = %v", err)
	}
	base, err := Consensus(im, Options{})
	if err != nil {
		t.Fatal(err)
	}
	auto, err := Consensus(im, Options{Symmetry: SymmetryAuto})
	if err != nil {
		t.Fatal(err)
	}
	if auto.Stats.Orbits != 0 {
		t.Errorf("Auto reduced a lying declaration (%d orbits)", auto.Stats.Orbits)
	}
	if !reflect.DeepEqual(stripStats(base), stripStats(auto)) {
		t.Error("Auto fallback on a lying declaration changed the report")
	}
}
