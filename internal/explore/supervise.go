package explore

import (
	"fmt"
	"sync/atomic"
	"time"

	"waitfree/internal/program"
)

// This file implements the long-run supervision layer of the consensus
// engines: periodic checkpoint autosave (Options.CheckpointEvery /
// OnCheckpoint), the stall watchdog (Options.StallAfter), and the
// partial-coverage contract (Options.MaxNodes and deadline expiry degrade
// to a ConsensusReport with Partial set instead of erroring — see
// ConsensusKContext).

// DefaultCheckpointEvery is the autosave interval when OnCheckpoint is
// set but CheckpointEvery is 0.
const DefaultCheckpointEvery = 30 * time.Second

// Coverage reasons.
const (
	// CoverageDeadline: the run context's deadline expired.
	CoverageDeadline = "deadline"
	// CoverageNodeBudget: the engine passed Options.MaxNodes.
	CoverageNodeBudget = "node-budget"
	// CoverageStall: the stall watchdog stopped the run (see StallError).
	CoverageStall = "stall"
)

// Coverage describes how far a partial consensus run got before its soft
// budget, deadline, or the stall watchdog stopped it.
type Coverage struct {
	// Reason is one of the Coverage* constants.
	Reason string `json:"reason"`
	// TreesDone / TreesTotal count finished proposal-vector trees;
	// TreesMerged is the contiguous mask prefix actually folded into the
	// report's bounds (trees finished out of order are checkpointed but
	// not merged).
	TreesDone   int `json:"trees_done"`
	TreesTotal  int `json:"trees_total"`
	TreesMerged int `json:"trees_merged"`
	// Nodes is the engine's configuration count, including trees not
	// merged.
	Nodes int64 `json:"nodes"`
	// DeepestFrontier is the deepest configuration any worker reached.
	DeepestFrontier int `json:"deepest_frontier"`
}

func (c *Coverage) String() string {
	return fmt.Sprintf("coverage: %d/%d trees done (%d merged), %d nodes, deepest frontier %d, stopped by %s",
		c.TreesDone, c.TreesTotal, c.TreesMerged, c.Nodes, c.DeepestFrontier, c.Reason)
}

// StallError reports a worker that made no node progress for
// Options.StallAfter: a wedged Spec.Step or Machine, or a pathologically
// slow configuration. It accompanies the partial report ConsensusKContext
// returns when the watchdog stops a run.
type StallError struct {
	// Worker is the stalled worker's index (see Stats.WorkerNodes).
	Worker int `json:"worker"`
	// Mask and Proposals identify the tree the worker was exploring.
	Mask      int   `json:"mask"`
	Proposals []int `json:"proposals"`
	// Depth and ConfigKey locate the worker's last flushed configuration;
	// ConfigKey is the same hex key the panic handler renders, so the
	// offending configuration can be identified across runs.
	Depth     int    `json:"depth"`
	ConfigKey string `json:"config_key,omitempty"`
	// Idle is how long the worker had made no progress when flagged.
	Idle time.Duration `json:"idle_ns"`
	// Abandoned reports that the worker did not unwind within the grace
	// period after cancellation — it is stuck inside user code that never
	// polls the context — so its goroutine was abandoned (it reclaims
	// itself if the user code ever returns).
	Abandoned bool `json:"abandoned,omitempty"`
}

func (e *StallError) Error() string {
	s := fmt.Sprintf("explore: worker %d stalled for %v on tree %d (proposals %v) at depth %d",
		e.Worker, e.Idle.Round(time.Millisecond), e.Mask, e.Proposals, e.Depth)
	if e.ConfigKey != "" {
		s += ", config key " + e.ConfigKey
	}
	if e.Abandoned {
		s += "; worker did not unwind and was abandoned (stuck in user code)"
	}
	return s
}

// supervisor is the per-run goroutine behind autosave and the stall
// watchdog. It is started by ConsensusKContext when either is configured
// and joined (stop) before the report is assembled, so reads of its stall
// record never race.
type supervisor struct {
	quit   chan struct{}
	joined chan struct{}
	// abandon is closed when a stalled worker failed to unwind within the
	// grace period: the main goroutine stops waiting for the WaitGroup and
	// assembles the partial report without it.
	abandon chan struct{}
	stall   atomic.Pointer[StallError]
}

// startSupervisor launches the supervision loop, or returns nil when
// neither autosave nor the watchdog is configured. snapshotCP must be
// safe to call concurrently with running workers (it reads outcomes
// through the done flags); wgDone closes when every worker has returned.
func startSupervisor(opts Options, ctr *counters, im *program.Implementation, k int,
	snapshotCP func() *Checkpoint, wgDone <-chan struct{}) *supervisor {
	autosave := opts.CheckpointEvery
	if autosave == 0 && opts.OnCheckpoint != nil {
		autosave = DefaultCheckpointEvery
	}
	if autosave <= 0 && opts.StallAfter <= 0 {
		return nil
	}
	s := &supervisor{
		quit:    make(chan struct{}),
		joined:  make(chan struct{}),
		abandon: make(chan struct{}),
	}
	// One ticker serves both duties: fast enough to autosave on time and
	// to bound stall-detection latency to ~StallAfter/4 past the deadline.
	tick := autosave
	if opts.StallAfter > 0 {
		if q := opts.StallAfter / 4; tick <= 0 || q < tick {
			tick = q
		}
	}
	if tick < time.Millisecond {
		tick = time.Millisecond
	}
	go func() {
		defer close(s.joined)
		t := time.NewTicker(tick)
		defer t.Stop()
		lastSave := time.Now()
		savedTrees := -1
		for {
			select {
			case <-s.quit:
				return
			case <-t.C:
			}
			if autosave > 0 && time.Since(lastSave) >= autosave {
				lastSave = time.Now()
				if cp := snapshotCP(); len(cp.Trees) != savedTrees {
					savedTrees = len(cp.Trees)
					opts.OnCheckpoint(cp)
				}
			}
			if opts.StallAfter <= 0 {
				continue
			}
			now := time.Now().UnixNano()
			for w := range ctr.beats {
				b := &ctr.beats[w]
				mask := int(b.mask.Load())
				if mask < 0 {
					continue // idle or exited
				}
				idle := time.Duration(now - b.lastProgress.Load())
				if idle < opts.StallAfter {
					continue
				}
				se := &StallError{
					Worker:    w,
					Mask:      mask,
					Proposals: ProposalVectorK(mask, im.Procs, k),
					Depth:     int(b.depth.Load()),
					Idle:      idle,
				}
				if kp := b.key.Load(); kp != nil {
					se.ConfigKey = *kp
				}
				ctr.trip(tripStall)
				// Grace period: workers that poll the context unwind within
				// flushEvery nodes; one truly stuck inside user code never
				// will, so cap the wait and abandon it.
				grace := opts.StallAfter
				if grace < 100*time.Millisecond {
					grace = 100 * time.Millisecond
				}
				if grace > 2*time.Second {
					grace = 2 * time.Second
				}
				select {
				case <-wgDone:
					s.stall.Store(se)
				case <-time.After(grace):
					se.Abandoned = true
					// Store strictly before closing abandon: the main
					// goroutine reads the pointer only after this close (or
					// after joining us), so the record is always complete.
					s.stall.Store(se)
					close(s.abandon)
				}
				return
			}
		}
	}()
	return s
}

// stop joins the supervisor; after it returns, stallErr is stable.
func (s *supervisor) stop() {
	close(s.quit)
	<-s.joined
}

// stallErr returns the watchdog's finding, nil if none. Only valid after
// stop (or after abandon closed).
func (s *supervisor) stallErr() *StallError {
	return s.stall.Load()
}
