package explore

import (
	"errors"
	"fmt"
	"strings"
	"testing"

	"waitfree/internal/linearize"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// ---- test machines ----

// casConsensusState drives the register-free CAS consensus protocol.
type casConsensusState struct {
	PC int
	V  int
}

const casBottom = 2 // the "undecided" CAS value

// casConsensusMachine: cas(bottom, v); decide v on success, the observed
// value on failure. Register-free n-process consensus.
var casConsensusMachine = program.FuncMachine{
	StartFn: func(inv types.Invocation, _ any) any {
		return casConsensusState{PC: 0, V: inv.A}
	},
	NextFn: func(state any, resp types.Response) (program.Action, any) {
		s := state.(casConsensusState)
		switch s.PC {
		case 0:
			return program.InvokeAction(0, types.Inv(types.OpCAS, casBottom, s.V)), casConsensusState{PC: 1, V: s.V}
		default:
			if resp.Val == casBottom {
				return program.ReturnAction(types.ValOf(s.V), nil), s
			}
			return program.ReturnAction(types.ValOf(resp.Val), nil), s
		}
	},
}

func casConsensusImpl(procs int) *program.Implementation {
	machines := make([]program.Machine, procs)
	for p := range machines {
		machines[p] = casConsensusMachine
	}
	return &program.Implementation{
		Name:   "cas-consensus",
		Target: types.Consensus(procs),
		Procs:  procs,
		Objects: []program.ObjectDecl{{
			Name:   "cas",
			Spec:   types.CompareSwap(procs, 3),
			Init:   casBottom,
			PortOf: program.AllPorts(procs),
		}},
		Machines: machines,
	}
}

// tasConsensusState drives the classic TAS + SRSW-bit 2-process consensus.
type tasConsensusState struct {
	PC int
	V  int
}

func tasConsensusMachine(p int) program.Machine {
	ownObj := 1 + p
	otherObj := 1 + (1 - p)
	return program.FuncMachine{
		StartFn: func(inv types.Invocation, _ any) any {
			return tasConsensusState{PC: 0, V: inv.A}
		},
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s := state.(tasConsensusState)
			switch s.PC {
			case 0:
				return program.InvokeAction(ownObj, types.Write(s.V)), tasConsensusState{PC: 1, V: s.V}
			case 1:
				return program.InvokeAction(0, types.TAS), tasConsensusState{PC: 2, V: s.V}
			case 2:
				if resp.Val == 0 { // won
					return program.ReturnAction(types.ValOf(s.V), nil), s
				}
				return program.InvokeAction(otherObj, types.Read), tasConsensusState{PC: 3, V: s.V}
			default:
				return program.ReturnAction(types.ValOf(resp.Val), nil), s
			}
		},
	}
}

func tasConsensusImpl() *program.Implementation {
	return &program.Implementation{
		Name:   "tas-consensus",
		Target: types.Consensus(2),
		Procs:  2,
		Objects: []program.ObjectDecl{
			{Name: "tas", Spec: types.TestAndSet(2), Init: 0, PortOf: program.AllPorts(2)},
			// prefer0: written by process 0, read by process 1.
			{Name: "prefer0", Spec: types.SRSWBit(), Init: 0, PortOf: program.PairPorts(2, 1, 0)},
			// prefer1: written by process 1, read by process 0.
			{Name: "prefer1", Spec: types.SRSWBit(), Init: 0, PortOf: program.PairPorts(2, 0, 1)},
		},
		Machines: []program.Machine{tasConsensusMachine(0), tasConsensusMachine(1)},
	}
}

// selfishMachine decides its own proposal without communicating: violates
// agreement whenever proposals differ.
var selfishMachine = program.FuncMachine{
	StartFn: func(inv types.Invocation, _ any) any { return casConsensusState{V: inv.A} },
	NextFn: func(state any, _ types.Response) (program.Action, any) {
		s := state.(casConsensusState)
		return program.ReturnAction(types.ValOf(s.V), nil), s
	},
}

// stubbornMachine always decides 1: violates validity when all propose 0.
var stubbornMachine = program.FuncMachine{
	StartFn: func(_ types.Invocation, _ any) any { return casConsensusState{} },
	NextFn: func(state any, _ types.Response) (program.Action, any) {
		return program.ReturnAction(types.ValOf(1), nil), state
	},
}

// spinMachine reads a register until it holds 1 (it never does): not
// wait-free.
var spinMachine = program.FuncMachine{
	StartFn: func(_ types.Invocation, _ any) any { return casConsensusState{} },
	NextFn: func(state any, resp types.Response) (program.Action, any) {
		s := state.(casConsensusState)
		if s.PC == 1 && resp.Val == 1 {
			return program.ReturnAction(types.ValOf(1), nil), s
		}
		return program.InvokeAction(0, types.Read), casConsensusState{PC: 1}
	},
}

func noObjectImpl(m program.Machine, procs int) *program.Implementation {
	machines := make([]program.Machine, procs)
	for p := range machines {
		machines[p] = m
	}
	return &program.Implementation{
		Name:     "test-impl",
		Target:   types.Consensus(procs),
		Procs:    procs,
		Machines: machines,
	}
}

// ---- tests ----

func TestCASConsensusCorrect(t *testing.T) {
	for _, procs := range []int{2, 3} {
		report, err := Consensus(casConsensusImpl(procs), Options{})
		if err != nil {
			t.Fatal(err)
		}
		if !report.OK() {
			t.Fatalf("procs=%d: %s\n%v", procs, report.Summary(), report.Violation)
		}
		// Every process takes exactly one step, so D = procs.
		if report.Depth != procs {
			t.Errorf("procs=%d: D = %d, want %d", procs, report.Depth, procs)
		}
		if report.MaxAccess[0] != procs {
			t.Errorf("procs=%d: cas object accessed %d times, want %d", procs, report.MaxAccess[0], procs)
		}
		if len(report.Decisions) != 2 {
			t.Errorf("procs=%d: decisions = %v, want both values", procs, report.Decisions)
		}
	}
}

func TestTASConsensusCorrectAndBounded(t *testing.T) {
	report, err := Consensus(tasConsensusImpl(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("%s\n%v", report.Summary(), report.Violation)
	}
	// Winner: write + tas = 2 steps; loser: write + tas + read = 3.
	if report.Depth != 5 {
		t.Errorf("D = %d, want 5", report.Depth)
	}
	// Section 4.2 bounds: the tas object is accessed at most twice; each
	// prefer bit is written at most once and read at most once.
	if report.MaxAccess[0] != 2 {
		t.Errorf("tas accesses = %d, want 2", report.MaxAccess[0])
	}
	for _, obj := range []int{1, 2} {
		if got := report.OpAccess[obj][types.OpWrite]; got != 1 {
			t.Errorf("obj%d writes = %d, want 1", obj, got)
		}
		if got := report.OpAccess[obj][types.OpRead]; got != 1 {
			t.Errorf("obj%d reads = %d, want 1", obj, got)
		}
	}
}

func TestAgreementViolationDetected(t *testing.T) {
	report, err := Consensus(noObjectImpl(selfishMachine, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Agreement {
		t.Fatal("selfish machines reported as agreeing")
	}
	if report.Violation == nil || report.Violation.Kind != KindLeafReject {
		t.Fatalf("violation = %+v", report.Violation)
	}
	if len(report.ViolationProposals) != 2 {
		t.Errorf("violating proposals = %v", report.ViolationProposals)
	}
}

func TestValidityViolationDetected(t *testing.T) {
	report, err := Consensus(noObjectImpl(stubbornMachine, 2), Options{})
	if err != nil {
		t.Fatal(err)
	}
	if report.Validity {
		t.Fatal("stubborn machines reported as valid")
	}
	if report.Agreement == false {
		t.Error("agreement should hold for stubborn machines")
	}
}

func TestNonWaitFreeDetectedByCycle(t *testing.T) {
	im := noObjectImpl(spinMachine, 1)
	im.Objects = []program.ObjectDecl{
		{Name: "r", Spec: types.Register(1, 2), Init: 0, PortOf: program.AllPorts(1)},
	}
	report, err := Consensus(im, Options{Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	if report.WaitFree {
		t.Fatal("spinner reported wait-free")
	}
	if report.Violation.Kind != KindCycle {
		t.Fatalf("violation kind = %v, want cycle", report.Violation.Kind)
	}
}

func TestNonWaitFreeDetectedByDepth(t *testing.T) {
	im := noObjectImpl(spinMachine, 1)
	im.Objects = []program.ObjectDecl{
		{Name: "r", Spec: types.Register(1, 2), Init: 0, PortOf: program.AllPorts(1)},
	}
	report, err := Consensus(im, Options{MaxDepth: 50})
	if err != nil {
		t.Fatal(err)
	}
	if report.WaitFree {
		t.Fatal("spinner reported wait-free")
	}
	if report.Violation.Kind != KindDepthExceeded {
		t.Fatalf("violation kind = %v, want depth exceeded", report.Violation.Kind)
	}
	if len(report.Violation.Schedule) != 50 {
		t.Errorf("violating schedule length = %d, want 50", len(report.Violation.Schedule))
	}
}

func TestMemoizationPreservesVerdictsAndBounds(t *testing.T) {
	plain, err := Consensus(casConsensusImpl(3), Options{})
	if err != nil {
		t.Fatal(err)
	}
	memo, err := Consensus(casConsensusImpl(3), Options{Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	if plain.Depth != memo.Depth || plain.Leaves != memo.Leaves || plain.Nodes != memo.Nodes {
		t.Errorf("memoization changed tree accounting: plain(D=%d,n=%d,l=%d) memo(D=%d,n=%d,l=%d)",
			plain.Depth, plain.Nodes, plain.Leaves, memo.Depth, memo.Nodes, memo.Leaves)
	}
	for o := range plain.MaxAccess {
		if plain.MaxAccess[o] != memo.MaxAccess[o] {
			t.Errorf("obj%d: access bound %d vs %d", o, plain.MaxAccess[o], memo.MaxAccess[o])
		}
	}
	if plain.OK() != memo.OK() {
		t.Error("memoization changed the verdict")
	}
	if memo.MemoHits == 0 {
		t.Error("memoized run recorded no hits on a converging protocol")
	}
}

// TestRecordHistoryLinearizable implements a register from a backing
// register (the identity implementation) and checks every leaf history is
// linearizable against the target register spec.
func TestRecordHistoryLinearizable(t *testing.T) {
	forward := program.FuncMachine{
		StartFn: func(inv types.Invocation, _ any) any {
			return casConsensusState{PC: 0, V: invCode(inv)}
		},
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s := state.(casConsensusState)
			if s.PC == 0 {
				return program.InvokeAction(0, decodeInv(s.V)), casConsensusState{PC: 1, V: s.V}
			}
			return program.ReturnAction(resp, nil), s
		},
	}
	target := types.Register(2, 2)
	im := &program.Implementation{
		Name:   "identity-register",
		Target: target,
		Procs:  2,
		Objects: []program.ObjectDecl{
			{Name: "backing", Spec: types.Register(2, 2), Init: 0, PortOf: program.AllPorts(2)},
		},
		Machines: []program.Machine{forward, forward},
	}
	scripts := [][]types.Invocation{
		{types.Write(1), types.Read},
		{types.Read, types.Read},
	}
	leaves := 0
	opts := Options{
		RecordHistory: true,
		OnLeaf: func(l *Leaf) error {
			leaves++
			h := l.History
			for i := range h {
				h[i].Port = h[i].Proc + 1
			}
			if _, err := linearize.Check(target, 0, h); err != nil {
				return fmt.Errorf("leaf history not linearizable: %w\n%v", err, h)
			}
			return nil
		},
	}
	res, err := Run(im, scripts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatalf("violation: %v", res.Violation)
	}
	if leaves == 0 || int64(leaves) != res.Leaves {
		t.Errorf("leaves seen = %d, result says %d", leaves, res.Leaves)
	}
	if res.Depth != 4 {
		t.Errorf("depth = %d, want 4 (one access per target op)", res.Depth)
	}
}

// invCode/decodeInv squeeze a register invocation into an int so the test
// machine state stays a small comparable struct.
func invCode(inv types.Invocation) int {
	if inv.Op == types.OpRead {
		return -1
	}
	return inv.A
}

func decodeInv(code int) types.Invocation {
	if code == -1 {
		return types.Read
	}
	return types.Write(code)
}

func TestRunRejectsBadShapes(t *testing.T) {
	im := casConsensusImpl(2)
	if _, err := Run(im, nil, Options{}); err == nil {
		t.Error("script count mismatch accepted")
	}
	scripts := [][]types.Invocation{{types.Propose(0)}, {types.Propose(0)}}
	if _, err := Run(im, scripts, Options{Memoize: true, RecordHistory: true}); err == nil {
		t.Error("memoize+history accepted")
	}
}

func TestEmptyScriptsProduceSingleLeaf(t *testing.T) {
	im := casConsensusImpl(2)
	res, err := Run(im, [][]types.Invocation{{}, {}}, Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Leaves != 1 || res.Depth != 0 || res.Nodes != 1 {
		t.Errorf("empty scripts: %+v", res)
	}
}

func TestProposalVector(t *testing.T) {
	got := ProposalVector(5, 4)
	want := []int{1, 0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ProposalVector(5,4) = %v, want %v", got, want)
		}
	}
}

func TestStepRecordFormatting(t *testing.T) {
	s := StepRecord{Proc: 1, Obj: 2, Inv: types.Read, Resp: types.ValOf(0)}
	if got := s.String(); got != "p1:obj2.read->val(0)" {
		t.Errorf("StepRecord.String() = %q", got)
	}
	if out := FormatSchedule([]StepRecord{s, s}); !strings.Contains(out, "\n") {
		t.Errorf("FormatSchedule missing newline: %q", out)
	}
}

func TestLeafSchedulePlausible(t *testing.T) {
	im := casConsensusImpl(2)
	scripts := [][]types.Invocation{{types.Propose(0)}, {types.Propose(1)}}
	sawSchedules := make(map[string]bool)
	opts := Options{OnLeaf: func(l *Leaf) error {
		if len(l.Schedule) != l.Depth {
			return fmt.Errorf("schedule length %d != depth %d", len(l.Schedule), l.Depth)
		}
		sawSchedules[FormatSchedule(l.Schedule)] = true
		return nil
	}}
	res, err := Run(im, scripts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatal(res.Violation)
	}
	// Two interleavings: p0 first or p1 first.
	if len(sawSchedules) != 2 {
		t.Errorf("distinct schedules = %d, want 2", len(sawSchedules))
	}
}

func TestDotRendersTree(t *testing.T) {
	im := casConsensusImpl(2)
	scripts := [][]types.Invocation{{types.Propose(0)}, {types.Propose(1)}}
	dot, err := Dot(im, scripts, Options{}, 100)
	if err != nil {
		t.Fatal(err)
	}
	for _, want := range []string{"digraph executiontree", "doublecircle", "cas.cas(2)", "->"} {
		if !strings.Contains(dot, want) {
			t.Errorf("dot output missing %q\n%s", want, dot)
		}
	}
	// The CAS tree from mixed proposals: root + 2 internal-ish + leaves.
	if n := strings.Count(dot, "[shape=doublecircle"); n != 2 {
		t.Errorf("leaves rendered = %d, want 2", n)
	}
}

func TestDotBudget(t *testing.T) {
	im := casConsensusImpl(3)
	scripts := [][]types.Invocation{{types.Propose(0)}, {types.Propose(1)}, {types.Propose(0)}}
	if _, err := Dot(im, scripts, Options{}, 3); !errors.Is(err, ErrDotBudget) {
		t.Fatalf("err = %v, want ErrDotBudget", err)
	}
}

func TestProposalVectorK(t *testing.T) {
	got := ProposalVectorK(11, 3, 3) // 11 = 2 + 1*3 + 1*9
	want := []int{2, 0, 1}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("ProposalVectorK(11,3,3) = %v, want %v", got, want)
		}
	}
}

func TestConsensusKRejectsBadK(t *testing.T) {
	if _, err := ConsensusK(casConsensusImpl(2), 1, Options{}); err == nil {
		t.Error("k=1 accepted")
	}
}

func TestFormatLanes(t *testing.T) {
	im := tasConsensusImpl()
	steps := []StepRecord{
		{Proc: 0, Obj: 1, Inv: types.Write(1), Resp: types.OK},
		{Proc: 1, Obj: 0, Inv: types.TAS, Resp: types.ValOf(0)},
		{Proc: 0, Obj: 0, Inv: types.TAS, Resp: types.ValOf(1)},
	}
	out := FormatLanes(steps, im)
	lines := strings.Split(out, "\n")
	if len(lines) != 4 {
		t.Fatalf("lane output has %d lines:\n%s", len(lines), out)
	}
	if !strings.Contains(lines[0], "p0") || !strings.Contains(lines[0], "p1") {
		t.Errorf("header missing lanes: %q", lines[0])
	}
	if !strings.Contains(lines[1], "prefer0.write(1)->ok") {
		t.Errorf("step 1 cell missing: %q", lines[1])
	}
	// Process 1's step appears indented into the second lane.
	if strings.Index(lines[2], "tas.tas") <= strings.Index(lines[1], "prefer0") {
		t.Errorf("lanes not columnized:\n%s", out)
	}
	if FormatLanes(nil, nil) != "(empty schedule)" {
		t.Error("empty schedule rendering")
	}
	// Without an implementation, objects print by index.
	if !strings.Contains(FormatLanes(steps, nil), "obj1.write(1)") {
		t.Error("nil-implementation rendering")
	}
}

func TestProcStepsBounds(t *testing.T) {
	report, err := Consensus(tasConsensusImpl(), Options{})
	if err != nil {
		t.Fatal(err)
	}
	// Each process: announce + tas + (loser) read = at most 3 own steps.
	for p, steps := range report.ProcSteps {
		if steps != 3 {
			t.Errorf("process %d step bound = %d, want 3", p, steps)
		}
	}
	// The per-process bounds are consistent with the global depth.
	sum := 0
	for _, s := range report.ProcSteps {
		sum += s
	}
	if report.Depth > sum {
		t.Errorf("depth %d exceeds the sum of per-process bounds %d", report.Depth, sum)
	}
}
