package explore

import (
	"fmt"
	"strings"

	"waitfree/internal/program"
)

// FormatLanes renders a schedule as an ASCII sequence diagram with one
// column per process — the natural way to read a counterexample. im (may
// be nil) supplies object names and the process count; without it, objects
// print as obj<N> and columns cover only the processes that took a step,
// so trailing silent processes get no lane.
func FormatLanes(steps []StepRecord, im *program.Implementation) string {
	if len(steps) == 0 {
		return "(empty schedule)"
	}
	procs := 0
	if im != nil {
		procs = im.Procs
	}
	for _, s := range steps {
		if s.Proc+1 > procs {
			procs = s.Proc + 1
		}
	}
	cells := make([]string, len(steps))
	width := 0
	for i, s := range steps {
		if s.Crash {
			cells[i] = "CRASH"
		} else if s.Recover {
			cells[i] = "RECOVER"
		} else {
			name := fmt.Sprintf("obj%d", s.Obj)
			if im != nil && s.Obj >= 0 && s.Obj < len(im.Objects) {
				name = im.Objects[s.Obj].Name
			}
			cells[i] = fmt.Sprintf("%s.%v->%v", name, s.Inv, s.Resp)
		}
		if len(cells[i]) > width {
			width = len(cells[i])
		}
	}
	if width < 8 {
		width = 8
	}

	var b strings.Builder
	b.WriteString("step  ")
	for p := 0; p < procs; p++ {
		fmt.Fprintf(&b, "%-*s", width+2, fmt.Sprintf("p%d", p))
	}
	b.WriteString("\n")
	for i, s := range steps {
		fmt.Fprintf(&b, "%4d  ", i+1)
		for p := 0; p < procs; p++ {
			cell := ""
			if p == s.Proc {
				cell = cells[i]
			}
			fmt.Fprintf(&b, "%-*s", width+2, cell)
		}
		b.WriteString("\n")
	}
	return strings.TrimRight(b.String(), "\n")
}
