package server

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"time"

	"waitfree"
)

// maxBodyBytes bounds a submission body; real wire requests are tiny.
const maxBodyBytes = 1 << 20

func (s *Server) routes() {
	s.mux = http.NewServeMux()
	s.mux.HandleFunc("POST /v1/jobs", s.handleSubmit)
	s.mux.HandleFunc("GET /v1/jobs", s.handleList)
	s.mux.HandleFunc("GET /v1/jobs/{id}", s.handleGet)
	s.mux.HandleFunc("GET /v1/jobs/{id}/events", s.handleEvents)
	s.mux.HandleFunc("DELETE /v1/jobs/{id}", s.handleCancel)
	s.mux.HandleFunc("GET /v1/healthz", s.handleHealthz)
	s.mux.HandleFunc("GET /v1/stats", s.handleStats)
	s.mux.HandleFunc("GET /v1/protocols", s.handleProtocols)
}

// writeJSON writes v as the response body with the given status. Bodies
// are compact on purpose: an embedded report RawMessage must reach the
// client byte-identical to the stored (compact) bytes, and any
// re-indentation here would break that.
func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	_ = json.NewEncoder(w).Encode(v)
}

// writeError renders err as the {"error": {code, message}} body with the
// HTTP status its taxonomy code maps to.
func writeError(w http.ResponseWriter, err error) {
	we := &WireError{}
	if !errors.As(err, &we) {
		we = &WireError{Code: waitfree.ErrorCode(err), Message: err.Error()}
	}
	writeJSON(w, httpStatus(we.Code), map[string]*WireError{"error": we})
}

// httpStatus maps an error-taxonomy code to its HTTP status.
func httpStatus(code string) int {
	switch code {
	case waitfree.CodeBadRequest, waitfree.CodeUnknownProtocol,
		waitfree.CodeBadCheckpoint, waitfree.CodeBadReport:
		return http.StatusBadRequest
	case CodeNotFound:
		return http.StatusNotFound
	case CodeConflict:
		return http.StatusConflict
	case CodeDraining, CodeQueueFull, CodeStorageDegraded:
		return http.StatusServiceUnavailable
	default:
		return http.StatusInternalServerError
	}
}

func (s *Server) handleSubmit(w http.ResponseWriter, r *http.Request) {
	body, err := io.ReadAll(io.LimitReader(r.Body, maxBodyBytes+1))
	if err != nil {
		writeError(w, badRequest("read body: %v", err))
		return
	}
	if len(body) > maxBodyBytes {
		writeError(w, badRequest("body exceeds %d bytes", maxBodyBytes))
		return
	}
	j, err := s.submit(body)
	if err != nil {
		writeError(w, err)
		return
	}
	w.Header().Set("Location", "/v1/jobs/"+j.id)
	writeJSON(w, http.StatusAccepted, j.view())
}

func (s *Server) handleList(w http.ResponseWriter, r *http.Request) {
	s.mu.Lock()
	views := make([]*JobView, 0, len(s.order))
	for _, id := range s.order {
		views = append(views, s.jobs[id].view())
	}
	s.mu.Unlock()
	writeJSON(w, http.StatusOK, map[string]any{"jobs": views})
}

func (s *Server) handleGet(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, &WireError{Code: CodeNotFound, Message: "no such job"})
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

func (s *Server) handleCancel(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, &WireError{Code: CodeNotFound, Message: "no such job"})
		return
	}
	if err := s.cancelJob(j); err != nil {
		writeError(w, err)
		return
	}
	writeJSON(w, http.StatusOK, j.view())
}

// handleEvents streams the job's lifecycle over SSE: an immediate state
// snapshot, then stats / checkpoint / state events as they happen, and a
// final done event carrying the terminal view. Subscribing to a job that
// is already terminal yields the snapshot and the done event immediately.
func (s *Server) handleEvents(w http.ResponseWriter, r *http.Request) {
	j, ok := s.job(r.PathValue("id"))
	if !ok {
		writeError(w, &WireError{Code: CodeNotFound, Message: "no such job"})
		return
	}
	fl, ok := w.(http.Flusher)
	if !ok {
		writeError(w, &WireError{Code: waitfree.CodeInternal, Message: "response writer cannot stream"})
		return
	}
	w.Header().Set("Content-Type", "text/event-stream")
	w.Header().Set("Cache-Control", "no-store")
	w.WriteHeader(http.StatusOK)

	// Subscribe before the snapshot so no transition falls in between.
	ch, unsubscribe := j.hub.subscribe()
	defer unsubscribe()
	view := j.view()
	writeSSE(w, Event{Type: "state", Data: mustJSON(view)})
	if view.State.Terminal() {
		writeSSE(w, Event{Type: "done", Data: mustJSON(view)})
		fl.Flush()
		return
	}
	fl.Flush()

	keepalive := time.NewTicker(15 * time.Second)
	defer keepalive.Stop()
	for {
		select {
		case <-r.Context().Done():
			return
		case <-keepalive.C:
			fmt.Fprint(w, ": keepalive\n\n")
			fl.Flush()
		case ev, ok := <-ch:
			if !ok {
				// Hub closed; if we raced past the final publish, synthesize
				// the done event from the terminal view.
				writeSSE(w, Event{Type: "done", Data: mustJSON(j.view())})
				fl.Flush()
				return
			}
			writeSSE(w, ev)
			fl.Flush()
			if ev.Type == "done" {
				return
			}
		}
	}
}

func writeSSE(w io.Writer, ev Event) {
	fmt.Fprintf(w, "event: %s\ndata: %s\n\n", ev.Type, ev.Data)
}

// handleHealthz reports liveness plus the storage degradation ladder: a
// daemon on a failing disk answers "degraded" (with the store's health
// counters and the cache's stats attached) instead of wedging or lying
// "ok". The HTTP status stays 200 — the process is alive and serving —
// and the body says how much to trust it.
func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	status := "ok"
	body := map[string]any{"api": APIVersion}
	if sh := s.store.healthView(); sh != nil {
		body["storage"] = sh
		if sh.Degraded {
			status = "degraded"
		}
	}
	if s.opts.Cache != nil {
		cs := s.opts.Cache.Stats()
		body["cache"] = &cs
		if cs.DiskDegraded {
			status = "degraded"
		}
	}
	if s.draining.Load() {
		status = "draining"
	}
	body["status"] = status
	writeJSON(w, http.StatusOK, body)
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, s.statsView())
}

// handleProtocols serves the registries so clients can discover what the
// wire schema's protocol / objects names resolve to.
func (s *Server) handleProtocols(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{
		"protocols": waitfree.Protocols(),
		"objects":   waitfree.ObjectSets(),
	})
}
