package server

import (
	"bufio"
	"bytes"
	"context"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"waitfree"
	"waitfree/internal/explore"
	"waitfree/internal/faults"
)

// newTestServer boots a server plus an httptest front end.
func newTestServer(t *testing.T, opts Options) (*Server, *httptest.Server) {
	t.Helper()
	if opts.Logf == nil {
		opts.Logf = t.Logf
	}
	if opts.ProgressInterval == 0 {
		opts.ProgressInterval = 5 * time.Millisecond
	}
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(func() {
		ts.Close()
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		if err := srv.Drain(ctx); err != nil {
			t.Errorf("drain: %v", err)
		}
	})
	return srv, ts
}

func submitJob(t *testing.T, ts *httptest.Server, body string) *JobView {
	t.Helper()
	v, status := postJob(t, ts, body)
	if status != http.StatusAccepted {
		t.Fatalf("submit: status %d", status)
	}
	return v
}

func postJob(t *testing.T, ts *httptest.Server, body string) (*JobView, int) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusAccepted {
		return nil, resp.StatusCode
	}
	v := &JobView{}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
	if v.ID == "" || v.State == "" {
		t.Fatalf("submit returned incomplete view: %+v", v)
	}
	return v, resp.StatusCode
}

func getJob(t *testing.T, ts *httptest.Server, id string) *JobView {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/jobs/" + id)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("get %s: status %d", id, resp.StatusCode)
	}
	v := &JobView{}
	if err := json.NewDecoder(resp.Body).Decode(v); err != nil {
		t.Fatal(err)
	}
	return v
}

// waitJob polls until cond is satisfied or the deadline passes.
func waitJob(t *testing.T, ts *httptest.Server, id string, timeout time.Duration, cond func(*JobView) bool) *JobView {
	t.Helper()
	deadline := time.Now().Add(timeout)
	for {
		v := getJob(t, ts, id)
		if cond(v) {
			return v
		}
		if time.Now().After(deadline) {
			t.Fatalf("job %s: timed out waiting; last view %+v", id, v)
		}
		time.Sleep(10 * time.Millisecond)
	}
}

func terminal(v *JobView) bool { return v.State.Terminal() }

// TestSubmitPollAllKinds drives every pipeline kind end to end over the
// wire: submit, poll to terminal, check verdict and report kind.
func TestSubmitPollAllKinds(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})
	cases := []struct {
		name   string
		body   string
		wantOK bool
	}{
		{"consensus", `{"api":"v1","kind":"consensus","protocol":"cas","explore":{"memoize":true}}`, true},
		{"bound", `{"api":"v1","kind":"bound","protocol":"queue"}`, true},
		{"elimination", `{"api":"v1","kind":"elimination","protocol":"tas"}`, true},
		// The zoo holds unbounded types whose triviality searches truncate:
		// classification completes but OK() refuses the inconclusive report.
		{"classification", `{"api":"v1","kind":"classification"}`, false},
		{"synthesis", `{"api":"v1","kind":"synthesis","objects":"cas","synthesis":{"depth":1,"symmetric":true,"budget":50000000}}`, true},
	}
	for _, c := range cases {
		c := c
		t.Run(c.name, func(t *testing.T) {
			t.Parallel()
			v := submitJob(t, ts, c.body)
			v = waitJob(t, ts, v.ID, 2*time.Minute, terminal)
			if v.State != JobDone {
				t.Fatalf("state %s, error %+v", v.State, v.Error)
			}
			if v.OK == nil || *v.OK != c.wantOK {
				t.Errorf("ok = %v, want %v", v.OK, c.wantOK)
			}
			rep, err := waitfree.DecodeReport(v.Report)
			if err != nil {
				t.Fatalf("served report does not decode: %v", err)
			}
			if string(rep.Kind) != c.name {
				t.Errorf("report kind %q, want %q", rep.Kind, c.name)
			}
			if rep.Elapsed != 0 {
				t.Errorf("served report is not canonical: elapsed %v", rep.Elapsed)
			}
		})
	}
}

// TestWireRejects pins the submission-validation surface: every
// malformed body is refused at the door with a taxonomy code.
func TestWireRejects(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	cases := []struct {
		name       string
		body       string
		wantStatus int
		wantCode   string
	}{
		{"missing api", `{"kind":"consensus","protocol":"cas"}`, 400, "bad_request"},
		{"wrong api", `{"api":"v2","kind":"consensus","protocol":"cas"}`, 400, "bad_request"},
		{"unknown kind", `{"api":"v1","kind":"mystery"}`, 400, "bad_request"},
		{"unknown protocol", `{"api":"v1","kind":"consensus","protocol":"nope"}`, 400, "unknown_protocol"},
		{"unknown field", `{"api":"v1","kind":"consensus","protocol":"cas","bogus":1}`, 400, "bad_request"},
		{"missing protocol", `{"api":"v1","kind":"consensus"}`, 400, "bad_request"},
		{"fixed procs mismatch", `{"api":"v1","kind":"consensus","protocol":"casregister3","procs":2}`, 400, "bad_request"},
		{"classification with protocol", `{"api":"v1","kind":"classification","protocol":"cas"}`, 400, "bad_request"},
		{"consensus with objects", `{"api":"v1","kind":"consensus","protocol":"cas","objects":"cas"}`, 400, "bad_request"},
		{"consensus with max_k", `{"api":"v1","kind":"consensus","protocol":"cas","max_k":2}`, 400, "bad_request"},
		{"bound with values", `{"api":"v1","kind":"bound","protocol":"cas","values":3}`, 400, "bad_request"},
		{"elimination with synthesis", `{"api":"v1","kind":"elimination","protocol":"tas","synthesis":{"depth":1}}`, 400, "bad_request"},
		{"synthesis with protocol", `{"api":"v1","kind":"synthesis","objects":"cas","protocol":"cas"}`, 400, "bad_request"},
		{"classification with procs", `{"api":"v1","kind":"classification","procs":2}`, 400, "bad_request"},
		{"synthesis without objects", `{"api":"v1","kind":"synthesis"}`, 400, "bad_request"},
		{"unknown object set", `{"api":"v1","kind":"synthesis","objects":"nope"}`, 400, "unknown_protocol"},
		{"bad symmetry", `{"api":"v1","kind":"consensus","protocol":"cas","explore":{"symmetry":"sideways"}}`, 400, "bad_request"},
		{"negative timeout", `{"api":"v1","kind":"consensus","protocol":"cas","timeout_ms":-1}`, 400, "bad_request"},
		{"recoveries without crashes", `{"api":"v1","kind":"consensus","protocol":"cas","explore":{"faults":{"max_crashes":0,"max_recoveries":1}}}`, 400, "bad_request"},
		{"recoveries under crash-stop", `{"api":"v1","kind":"consensus","protocol":"cas","explore":{"faults":{"max_crashes":1,"max_recoveries":1}}}`, 400, "bad_request"},
		{"bad fault mode", `{"api":"v1","kind":"consensus","protocol":"cas","explore":{"faults":{"max_crashes":1,"mode":"byzantine"}}}`, 400, "bad_request"},
		{"classification with faults", `{"api":"v1","kind":"classification","explore":{"faults":{"max_crashes":1}}}`, 400, "bad_request"},
		{"not json", `not json`, 400, "bad_request"},
	}
	for _, c := range cases {
		resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(c.body))
		if err != nil {
			t.Fatal(err)
		}
		var body struct {
			Error *WireError `json:"error"`
		}
		if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
			t.Fatalf("%s: decode error body: %v", c.name, err)
		}
		resp.Body.Close()
		if resp.StatusCode != c.wantStatus {
			t.Errorf("%s: status %d, want %d", c.name, resp.StatusCode, c.wantStatus)
		}
		if body.Error == nil || body.Error.Code != c.wantCode {
			t.Errorf("%s: error %+v, want code %q", c.name, body.Error, c.wantCode)
		}
	}

	resp, err := http.Get(ts.URL + "/v1/jobs/deadbeef")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusNotFound {
		t.Errorf("unknown job: status %d, want 404", resp.StatusCode)
	}
}

// sseEvent is one parsed SSE frame.
type sseEvent struct {
	Type string
	Data string
}

// readSSE consumes the event stream until a done event or the deadline.
func readSSE(t *testing.T, ts *httptest.Server, id string, timeout time.Duration) []sseEvent {
	t.Helper()
	ctx, cancel := context.WithTimeout(context.Background(), timeout)
	defer cancel()
	req, err := http.NewRequestWithContext(ctx, "GET", ts.URL+"/v1/jobs/"+id+"/events", nil)
	if err != nil {
		t.Fatal(err)
	}
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("events: status %d", resp.StatusCode)
	}
	if ct := resp.Header.Get("Content-Type"); ct != "text/event-stream" {
		t.Fatalf("events: content-type %q", ct)
	}
	var events []sseEvent
	var cur sseEvent
	sc := bufio.NewScanner(resp.Body)
	sc.Buffer(make([]byte, 1<<20), 1<<20)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "event: "):
			cur.Type = strings.TrimPrefix(line, "event: ")
		case strings.HasPrefix(line, "data: "):
			cur.Data = strings.TrimPrefix(line, "data: ")
		case line == "" && cur.Type != "":
			events = append(events, cur)
			if cur.Type == "done" {
				return events
			}
			cur = sseEvent{}
		}
	}
	t.Fatalf("stream ended without a done event (%d events: %+v)", len(events), events)
	return nil
}

// TestSSEStreamAndCancel subscribes to a long job's event stream, sees
// live progress, cancels mid-run over the API, and receives the terminal
// done event carrying the cancelled state.
func TestSSEStreamAndCancel(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1, DataDir: t.TempDir(), CheckpointEvery: 20 * time.Millisecond})
	// ~seconds of work: plenty of time to observe it mid-flight.
	v := submitJob(t, ts, `{"api":"v1","kind":"consensus","protocol":"sticky","procs":5,"explore":{"symmetry":"off"}}`)

	done := make(chan []sseEvent, 1)
	go func() { done <- readSSE(t, ts, v.ID, time.Minute) }()

	// Cancel once the engine has demonstrably made progress (a durable
	// checkpoint autosave landed).
	waitJob(t, ts, v.ID, 30*time.Second, func(v *JobView) bool { return v.HasCheckpoint })
	resp, err := newRequest(ts, "DELETE", "/v1/jobs/"+v.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("cancel: status %d", resp.StatusCode)
	}

	final := waitJob(t, ts, v.ID, 30*time.Second, terminal)
	if final.State != JobCancelled {
		t.Fatalf("state %s, want cancelled", final.State)
	}
	events := <-done
	if events[0].Type != "state" {
		t.Errorf("first event %q, want state", events[0].Type)
	}
	last := events[len(events)-1]
	if last.Type != "done" || !strings.Contains(last.Data, `"cancelled"`) {
		t.Errorf("last event %+v, want done/cancelled", last)
	}

	// Cancelling a terminal job conflicts.
	resp, err = newRequest(ts, "DELETE", "/v1/jobs/"+v.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusConflict {
		t.Errorf("re-cancel: status %d, want 409", resp.StatusCode)
	}

	// Subscribing to a terminal job yields the snapshot and done at once.
	events = readSSE(t, ts, v.ID, 10*time.Second)
	if len(events) != 2 || events[0].Type != "state" || events[1].Type != "done" {
		t.Errorf("terminal subscribe events: %+v", events)
	}
}

func newRequest(ts *httptest.Server, method, path string) (*http.Response, error) {
	req, err := http.NewRequest(method, ts.URL+path, nil)
	if err != nil {
		return nil, err
	}
	return http.DefaultClient.Do(req)
}

// TestPoolSaturationAndDrain pins the bounded-admission contract: a full
// queue refuses with queue_full, a draining server with draining, and
// drain returns the running job to queued.
func TestPoolSaturationAndDrain(t *testing.T) {
	srv, ts := newTestServer(t, Options{Workers: 1, QueueDepth: 1})
	slow := `{"api":"v1","kind":"consensus","protocol":"sticky","procs":5,"explore":{"symmetry":"off"}}`

	running := submitJob(t, ts, slow)
	waitJob(t, ts, running.ID, 30*time.Second, func(v *JobView) bool { return v.State == JobRunning })
	queued := submitJob(t, ts, slow) // fills the depth-1 queue

	if _, status := postJob(t, ts, slow); status != http.StatusServiceUnavailable {
		t.Fatalf("over-capacity submit: status %d, want 503", status)
	}

	// A queued job cancels instantly, freeing its slot.
	resp, err := newRequest(ts, "DELETE", "/v1/jobs/"+queued.ID)
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if got := getJob(t, ts, queued.ID); got.State != JobCancelled {
		t.Fatalf("queued cancel: state %s", got.State)
	}

	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	if _, status := postJob(t, ts, slow); status != http.StatusServiceUnavailable {
		t.Errorf("draining submit: status %d, want 503", status)
	}
	resp, err = http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	var hz map[string]any
	if err := json.NewDecoder(resp.Body).Decode(&hz); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if hz["status"] != "draining" {
		t.Errorf("healthz status %v, want draining", hz["status"])
	}
	// The running job went back to queued (cancelled by drain, not lost).
	if got := getJob(t, ts, running.ID); got.State != JobQueued {
		t.Errorf("drained job state %s, want queued", got.State)
	}
}

// TestDrainResumeByteIdentical is the acceptance path: a consensus job
// survives a daemon drain + restart, resumes from its durable checkpoint,
// and its final report is byte-identical to a direct waitfree.Check run.
func TestDrainResumeByteIdentical(t *testing.T) {
	dir := t.TempDir()
	opts := Options{Workers: 1, DataDir: dir, CheckpointEvery: 20 * time.Millisecond}
	srv, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	srv.Start()
	ts := httptest.NewServer(srv.Handler())

	v := submitJob(t, ts, `{"api":"v1","kind":"consensus","protocol":"sticky","procs":5,"explore":{"symmetry":"off"}}`)
	waitJob(t, ts, v.ID, 30*time.Second, func(v *JobView) bool {
		return v.State == JobRunning && v.HasCheckpoint
	})

	// Drain: the running job checkpoints and returns to the durable queue.
	ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
	defer cancel()
	if err := srv.Drain(ctx); err != nil {
		t.Fatal(err)
	}
	ts.Close()

	// "Restart" the daemon over the same data dir.
	srv2, err := New(opts)
	if err != nil {
		t.Fatal(err)
	}
	ts2 := httptest.NewServer(srv2.Handler())
	defer ts2.Close()
	if got := getJob(t, ts2, v.ID); got.State != JobQueued || !got.HasCheckpoint {
		t.Fatalf("restarted job: state %s, has_checkpoint %v", got.State, got.HasCheckpoint)
	}
	srv2.Start()
	defer func() {
		ctx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		srv2.Drain(ctx)
	}()

	final := waitJob(t, ts2, v.ID, 2*time.Minute, terminal)
	if final.State != JobDone {
		t.Fatalf("resumed job: state %s, error %+v", final.State, final.Error)
	}
	if final.Resumes < 1 {
		t.Errorf("resumes = %d, want >= 1 (the job should have resumed, not restarted)", final.Resumes)
	}

	// The reference: the same request run directly through the library.
	im, err := waitfree.BuildProtocol("sticky", 5)
	if err != nil {
		t.Fatal(err)
	}
	rep, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind:           waitfree.KindConsensus,
		Implementation: im,
		Explore:        waitfree.ExploreOptions{Symmetry: waitfree.SymmetryOff},
	})
	if err != nil {
		t.Fatal(err)
	}
	rep.Canonicalize()
	want, err := json.Marshal(rep)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(final.Report, want) {
		t.Errorf("resumed report is not byte-identical to the direct run.\nserved: %s\ndirect: %s", final.Report, want)
	}
}

// TestCacheHitByteIdentical submits the same job twice against a cached
// server: the repeat is served from the result cache with byte-identical
// report bytes.
func TestCacheHitByteIdentical(t *testing.T) {
	cache, err := waitfree.OpenCache(waitfree.CacheOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Workers: 1, Cache: cache})
	body := `{"api":"v1","kind":"consensus","protocol":"cas","procs":3,"explore":{"memoize":true}}`

	first := submitJob(t, ts, body)
	first = waitJob(t, ts, first.ID, 2*time.Minute, terminal)
	if first.State != JobDone {
		t.Fatalf("first: state %s, error %+v", first.State, first.Error)
	}
	second := submitJob(t, ts, body)
	second = waitJob(t, ts, second.ID, 2*time.Minute, terminal)
	if second.State != JobDone {
		t.Fatalf("second: state %s, error %+v", second.State, second.Error)
	}
	if !bytes.Equal(first.Report, second.Report) {
		t.Errorf("cache hit is not byte-identical.\nfirst:  %s\nsecond: %s", first.Report, second.Report)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("cache saw no hits: %+v", st)
	}

	// The stats endpoint surfaces the cache counters.
	resp, err := http.Get(ts.URL + "/v1/stats")
	if err != nil {
		t.Fatal(err)
	}
	var stats StatsView
	if err := json.NewDecoder(resp.Body).Decode(&stats); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if stats.Cache == nil || stats.Cache.Hits == 0 {
		t.Errorf("stats cache block missing hits: %+v", stats.Cache)
	}
	if stats.Done < 2 {
		t.Errorf("stats done = %d, want >= 2", stats.Done)
	}
}

// TestProtocolsEndpoint pins discovery: the wire registry names resolve.
func TestProtocolsEndpoint(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 1})
	resp, err := http.Get(ts.URL + "/v1/protocols")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	var body struct {
		Protocols []waitfree.ProtocolInfo  `json:"protocols"`
		Objects   []waitfree.ObjectSetInfo `json:"objects"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if len(body.Protocols) != len(waitfree.Protocols()) {
		t.Errorf("served %d protocols, registry has %d", len(body.Protocols), len(waitfree.Protocols()))
	}
	if len(body.Objects) != len(waitfree.ObjectSets()) {
		t.Errorf("served %d object sets, registry has %d", len(body.Objects), len(waitfree.ObjectSets()))
	}
	for _, p := range body.Protocols {
		if p.Name == "" || p.Description == "" {
			t.Errorf("incomplete protocol entry: %+v", p)
		}
	}
}

// TestVerdictsOnTheJobSurface pins how the two failure shapes land: a
// consensus check of an incorrect protocol completes (done, ok=false,
// violation in the report), while a bound check of the same protocol
// fails with the not_wait_free taxonomy code.
func TestVerdictsOnTheJobSurface(t *testing.T) {
	_, ts := newTestServer(t, Options{Workers: 2})

	v := submitJob(t, ts, `{"api":"v1","kind":"consensus","protocol":"naive"}`)
	v = waitJob(t, ts, v.ID, 2*time.Minute, terminal)
	if v.State != JobDone || v.OK == nil || *v.OK {
		t.Fatalf("consensus(naive): state %s ok %v, want done/false", v.State, v.OK)
	}
	if !strings.Contains(string(v.Report), `"violation"`) {
		t.Error("consensus(naive): report carries no violation")
	}

	b := submitJob(t, ts, `{"api":"v1","kind":"bound","protocol":"naive"}`)
	b = waitJob(t, ts, b.ID, 2*time.Minute, terminal)
	if b.State != JobFailed {
		t.Fatalf("bound(naive): state %s, want failed", b.State)
	}
	if b.Error == nil || b.Error.Code != "not_wait_free" {
		t.Errorf("bound(naive): error %+v, want code not_wait_free", b.Error)
	}
}

// TestCrashRecoveryJobOverTheWire drives the crash-recovery fault model
// end to end through the versioned wire API: the register-only naive
// protocol under a one-crash/one-recovery budget must finish done with a
// crash/recover-annotated counterexample carrying the
// decision-changed-after-recovery violation kind — and a repeat
// submission is served from the result cache byte-identically.
func TestCrashRecoveryJobOverTheWire(t *testing.T) {
	cache, err := waitfree.OpenCache(waitfree.CacheOptions{Dir: t.TempDir()})
	if err != nil {
		t.Fatal(err)
	}
	_, ts := newTestServer(t, Options{Workers: 1, Cache: cache})
	body := `{"api":"v1","kind":"consensus","protocol":"naive","explore":{"memoize":true,"faults":{"max_crashes":1,"mode":"crash-recovery","max_recoveries":1}}}`

	v := submitJob(t, ts, body)
	v = waitJob(t, ts, v.ID, 2*time.Minute, terminal)
	if v.State != JobDone || v.OK == nil || *v.OK {
		t.Fatalf("state %s ok %v, error %+v; want done/false", v.State, v.OK, v.Error)
	}
	rep := string(v.Report)
	if !strings.Contains(rep, `"decision-changed-after-recovery"`) {
		t.Errorf("report carries no decision-changed-after-recovery violation:\n%s", rep)
	}
	if !strings.Contains(rep, `"crash":true`) || !strings.Contains(rep, `"recover":true`) {
		t.Errorf("counterexample schedule lacks crash/recover annotations:\n%s", rep)
	}

	second := submitJob(t, ts, body)
	second = waitJob(t, ts, second.ID, 2*time.Minute, terminal)
	if second.State != JobDone {
		t.Fatalf("repeat: state %s, error %+v", second.State, second.Error)
	}
	if !bytes.Equal(v.Report, second.Report) {
		t.Errorf("cached crash-recovery report is not byte-identical.\nfirst:  %s\nsecond: %s", v.Report, second.Report)
	}
	if st := cache.Stats(); st.Hits == 0 {
		t.Errorf("cache saw no hits: %+v", st)
	}
}

// TestJobDeadline pins the wire timeout_ms contract: a resumable job
// whose deadline expires finishes done-but-partial with its checkpoint
// retained; a request above Options.MaxTimeout is clamped, not rejected;
// and a non-resumable kind fails with the deadline taxonomy code.
func TestJobDeadline(t *testing.T) {
	_, ts := newTestServer(t, Options{
		Workers:         1,
		DataDir:         t.TempDir(),
		CheckpointEvery: 10 * time.Millisecond,
		MaxTimeout:      300 * time.Millisecond,
	})
	// ~seconds of uninterrupted work, so any prompt termination below is
	// the deadline machinery, not natural completion.
	slow := `"kind":"consensus","protocol":"sticky","procs":5,"explore":{"symmetry":"off"}`

	check := func(name string, v *JobView) {
		t.Helper()
		v = waitJob(t, ts, v.ID, 30*time.Second, terminal)
		if v.State != JobDone || v.OK == nil || *v.OK {
			t.Fatalf("%s: state %s ok %v, error %+v; want done/false", name, v.State, v.OK, v.Error)
		}
		if !strings.Contains(string(v.Report), `"partial":true`) {
			t.Errorf("%s: expired job's report is not partial: %s", name, v.Report)
		}
		if !v.HasCheckpoint {
			t.Errorf("%s: expired job retains no checkpoint", name)
		}
	}
	// An explicit deadline under the cap expires as requested.
	check("explicit", submitJob(t, ts, `{"api":"v1",`+slow+`,"timeout_ms":250}`))
	// An hour-long request is clamped to MaxTimeout: without the clamp the
	// job would either run for real (test timeout) or complete ok=true.
	check("clamped", submitJob(t, ts, `{"api":"v1",`+slow+`,"timeout_ms":3600000}`))

	// Elimination cannot resume, so an expired deadline is inconclusive:
	// the job fails with the library's inconclusive taxonomy code rather
	// than degrading to a partial report.
	e := submitJob(t, ts, `{"api":"v1","kind":"elimination","protocol":"tas","timeout_ms":1}`)
	e = waitJob(t, ts, e.ID, 30*time.Second, terminal)
	if e.State != JobFailed {
		t.Fatalf("elimination: state %s, want failed", e.State)
	}
	if e.Error == nil || e.Error.Code != "inconclusive" {
		t.Errorf("elimination: error %+v, want code inconclusive", e.Error)
	}
}

// TestCrashRecoveryJobFileTruncationSweep is the torn-write acceptance
// test for the durable job store: a crash-recovery job's .wfjob envelope
// (wire request plus checkpoint) truncated at EVERY byte offset must
// either salvage to the full manifest or be skipped at startup — daemon
// boot never fails, and a salvaged job is always the intact original
// (the manifest is a single checksummed record, so there is no partial
// salvage to mis-resume from).
func TestCrashRecoveryJobFileTruncationSweep(t *testing.T) {
	body := json.RawMessage(`{"api":"v1","kind":"consensus","protocol":"sticky","procs":4,"explore":{"faults":{"max_crashes":1,"mode":"crash-recovery","max_recoveries":1}}}`)
	wire, _, err := DecodeWire(body)
	if err != nil {
		t.Fatal(err)
	}
	cp := &explore.Checkpoint{
		Version: explore.CheckpointVersion,
		Impl:    "sticky",
		Procs:   4,
		Values:  2,
		Roots:   16,
		Faults:  faults.Model{MaxCrashes: 1, Mode: faults.CrashRecovery, MaxRecoveries: 1},
		Trees: []explore.TreeResult{{
			Mask: 0, Nodes: 10, Leaves: 2, Depth: 3,
			MaxAccess: []int{1, 1, 1, 1}, ProcSteps: []int{1, 1, 1, 1},
		}},
	}
	cpBlob, err := json.Marshal(cp)
	if err != nil {
		t.Fatal(err)
	}
	src, err := newStore(t.TempDir(), nil)
	if err != nil {
		t.Fatal(err)
	}
	j := &Job{
		id: "0123456789abcdef", wire: wire, raw: body,
		state: JobQueued, chkpoint: cpBlob, resumes: 1,
		created: time.Now(), hub: newHub(),
	}
	if err := src.save(context.Background(), j); err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(src.path(j.id))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	path := filepath.Join(dir, j.id+jobFileExt)
	discard := func(string, ...any) {}
	var salvaged, skipped int
	for off := 0; off <= len(raw); off++ {
		if err := os.WriteFile(path, raw[:off], 0o644); err != nil {
			t.Fatal(err)
		}
		srv, err := New(Options{Workers: 1, DataDir: dir, Logf: discard})
		if err != nil {
			t.Fatalf("offset %d: daemon startup failed: %v", off, err)
		}
		got, ok := srv.job(j.id)
		if !ok {
			if off == len(raw) {
				t.Fatal("the untruncated envelope did not load")
			}
			skipped++
			continue
		}
		salvaged++
		v := got.view()
		if v.State != JobQueued || !v.HasCheckpoint || v.Kind != "consensus" {
			t.Fatalf("offset %d: salvaged job is not the original: state %s, has_checkpoint %v, kind %s",
				off, v.State, v.HasCheckpoint, v.Kind)
		}
	}
	if salvaged == 0 || skipped == 0 {
		t.Errorf("sweep exercised only one path: salvaged %d, skipped %d", salvaged, skipped)
	}
}
