package server

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"strings"
	"syscall"
	"testing"

	"waitfree/internal/fsx"
)

// postForError submits body and returns the HTTP status plus the wire
// error code (empty on success).
func postForError(t *testing.T, ts *httptest.Server, body string) (int, string) {
	t.Helper()
	resp, err := http.Post(ts.URL+"/v1/jobs", "application/json", strings.NewReader(body))
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode == http.StatusAccepted {
		return resp.StatusCode, ""
	}
	var out struct {
		Error *WireError `json:"error"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&out); err != nil || out.Error == nil {
		t.Fatalf("error response did not decode: %v", err)
	}
	return resp.StatusCode, out.Error.Code
}

func healthz(t *testing.T, ts *httptest.Server) map[string]any {
	t.Helper()
	resp, err := http.Get(ts.URL + "/v1/healthz")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("healthz status %d, want 200 (liveness is not a verdict)", resp.StatusCode)
	}
	body := map[string]any{}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	return body
}

// TestServerStorageDegradationChaos boots the daemon over a disk that
// cannot persist anything and pins the degradation contract: submission
// is refused with 503/storage_degraded instead of accepting jobs a crash
// would lose, /v1/healthz reports "degraded" with the store's counters,
// every other endpoint keeps serving — and the moment the disk recovers,
// admission resumes and health returns to "ok".
func TestServerStorageDegradationChaos(t *testing.T) {
	// ENOSPC is permanent: every save fails on its first attempt.
	ff := fsx.NewFaultFS(nil, 1,
		fsx.Rule{Op: fsx.OpCreateTemp, Nth: 1, Count: -1, Err: syscall.ENOSPC})
	_, ts := newTestServer(t, Options{Workers: 1, DataDir: t.TempDir(), FS: ff})
	body := `{"api":"v1","kind":"consensus","protocol":"cas"}`

	for i := 0; i < storeFailLimit; i++ {
		status, code := postForError(t, ts, body)
		if status != http.StatusServiceUnavailable || code != CodeStorageDegraded {
			t.Fatalf("submit %d on a dead disk: status %d code %q, want 503 %s",
				i, status, code, CodeStorageDegraded)
		}
	}

	h := healthz(t, ts)
	if h["status"] != "degraded" {
		t.Fatalf("healthz = %v, want status degraded", h)
	}
	storage, ok := h["storage"].(map[string]any)
	if !ok {
		t.Fatalf("healthz carries no storage block: %v", h)
	}
	if storage["degraded"] != true {
		t.Errorf("storage block not degraded: %v", storage)
	}
	if f, _ := storage["failures"].(float64); f < storeFailLimit {
		t.Errorf("storage failures = %v, want >= %d", storage["failures"], storeFailLimit)
	}

	// A refused admission left nothing behind: the daemon is responsive
	// and the job table is empty.
	resp, err := http.Get(ts.URL + "/v1/jobs")
	if err != nil {
		t.Fatal(err)
	}
	var list struct {
		Jobs []*JobView `json:"jobs"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&list); err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if len(list.Jobs) != 0 {
		t.Fatalf("refused submissions leaked into the job table: %+v", list.Jobs)
	}

	// The disk recovers: the next submission persists and is accepted,
	// and health goes back to ok.
	ff.SetRules()
	v := submitJob(t, ts, body)
	waitJob(t, ts, v.ID, 30e9, terminal)
	if h := healthz(t, ts); h["status"] != "ok" {
		t.Fatalf("healthz after recovery = %v, want status ok", h)
	}
}
