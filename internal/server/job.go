package server

import (
	"context"
	"encoding/json"
	"sync"
	"time"
)

// JobState is the lifecycle state machine:
//
//	queued ──▶ running ──▶ done | failed | cancelled
//	  ▲           │
//	  └───────────┘  (drain or restart: checkpointed and re-queued)
//
// done/failed/cancelled are terminal; a drain or a crash moves a running
// job back to queued with its latest durable checkpoint, so the next
// start resumes instead of restarting.
type JobState string

const (
	JobQueued    JobState = "queued"
	JobRunning   JobState = "running"
	JobDone      JobState = "done"
	JobFailed    JobState = "failed"
	JobCancelled JobState = "cancelled"
)

// Terminal reports whether the state is final.
func (s JobState) Terminal() bool {
	return s == JobDone || s == JobFailed || s == JobCancelled
}

// Job is one verification job. The mutable fields are guarded by mu;
// views (snapshots) are taken under it and served lock-free.
type Job struct {
	mu sync.Mutex

	id   string
	wire *WireRequest
	raw  json.RawMessage // the submission body, persisted verbatim

	state    JobState
	err      *WireError
	report   json.RawMessage // canonicalized waitfree.Report JSON
	ok       *bool           // Report.OK() of a done job
	chkpoint json.RawMessage // latest durable explore.Checkpoint JSON
	resumes  int             // times this job resumed from a checkpoint

	created  time.Time
	started  time.Time
	finished time.Time

	cancel          context.CancelFunc
	cancelRequested bool

	hub *hub
}

// JobView is the JSON rendering of a job served by GET /v1/jobs/{id} and
// embedded in SSE state events. Report is raw so a stored report's bytes
// reach the client untouched — byte-identical to the direct
// waitfree.Check run that produced them.
type JobView struct {
	ID      string          `json:"id"`
	State   JobState        `json:"state"`
	Kind    string          `json:"kind"`
	Request json.RawMessage `json:"request,omitempty"`
	// OK echoes Report.OK() for done jobs.
	OK *bool `json:"ok,omitempty"`
	// Error carries the failure taxonomy code for failed jobs.
	Error *WireError `json:"error,omitempty"`
	// Report is the final canonical report of a done job.
	Report json.RawMessage `json:"report,omitempty"`
	// HasCheckpoint / Resumes describe durable progress: whether a
	// resumable checkpoint is stored, and how many restarts the job has
	// already survived.
	HasCheckpoint bool `json:"has_checkpoint,omitempty"`
	Resumes       int  `json:"resumes,omitempty"`

	Created  time.Time  `json:"created"`
	Started  *time.Time `json:"started,omitempty"`
	Finished *time.Time `json:"finished,omitempty"`
}

// view snapshots the job under its lock.
func (j *Job) view() *JobView {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.viewLocked()
}

func (j *Job) viewLocked() *JobView {
	v := &JobView{
		ID:            j.id,
		State:         j.state,
		Kind:          j.wire.Kind,
		Request:       j.raw,
		OK:            j.ok,
		Error:         j.err,
		Report:        j.report,
		HasCheckpoint: len(j.chkpoint) > 0,
		Resumes:       j.resumes,
		Created:       j.created,
	}
	if !j.started.IsZero() {
		t := j.started
		v.Started = &t
	}
	if !j.finished.IsZero() {
		t := j.finished
		v.Finished = &t
	}
	return v
}

// Event is one SSE datum: Type names the stream event (state, stats,
// checkpoint, done), Data is its JSON payload.
type Event struct {
	Type string
	Data []byte
}

// hub fans a job's events out to its SSE subscribers. Publishing never
// blocks: a subscriber that cannot keep up loses intermediate events (the
// next state snapshot catches it up; stats are periodic anyway).
type hub struct {
	mu     sync.Mutex
	subs   map[chan Event]struct{}
	closed bool
}

func newHub() *hub { return &hub{subs: make(map[chan Event]struct{})} }

// subscribe registers a listener. The returned channel is closed when the
// job reaches a terminal state; unsubscribe with the returned func.
func (h *hub) subscribe() (<-chan Event, func()) {
	ch := make(chan Event, 16)
	h.mu.Lock()
	if h.closed {
		close(ch)
		h.mu.Unlock()
		return ch, func() {}
	}
	h.subs[ch] = struct{}{}
	h.mu.Unlock()
	return ch, func() {
		h.mu.Lock()
		if _, ok := h.subs[ch]; ok {
			delete(h.subs, ch)
			close(ch)
		}
		h.mu.Unlock()
	}
}

// publish broadcasts ev without blocking.
func (h *hub) publish(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	for ch := range h.subs {
		select {
		case ch <- ev:
		default: // slow subscriber: drop, never stall a worker
		}
	}
}

// close broadcasts ev (if non-empty) and closes every subscription; the
// hub accepts no further publishes or subscribers.
func (h *hub) close(ev Event) {
	h.mu.Lock()
	defer h.mu.Unlock()
	if h.closed {
		return
	}
	h.closed = true
	for ch := range h.subs {
		if ev.Type != "" {
			select {
			case ch <- ev:
			default:
			}
		}
		close(ch)
		delete(h.subs, ch)
	}
}
