// Package server is the waitfreed verification daemon: an HTTP/JSON API
// that accepts verification jobs over a versioned wire schema, runs them
// on a bounded worker pool, streams live progress over SSE, persists job
// state in internal/durable envelopes so in-flight jobs survive a restart
// and resume from their last autosaved checkpoint, and fronts everything
// with the content-addressed result cache.
//
// A waitfree.Request holds Go closures (Implementation machines), so it
// cannot travel over a wire. The submission schema instead names a
// protocol from the waitfree.Protocols registry plus the verdict-relevant
// subset of the exploration options, versioned by an explicit "api"
// field:
//
//	{"api": "v1", "kind": "consensus", "protocol": "cas", "procs": 4,
//	 "explore": {"memoize": true, "symmetry": "auto"}}
//
// See DESIGN.md section 11 for the full schema and the job lifecycle.
package server

import (
	"bytes"
	"encoding/json"
	"fmt"
	"time"

	"waitfree"
)

// APIVersion is the wire schema version this server speaks. Submissions
// must carry it verbatim in their "api" field; an unknown or missing
// version is rejected, never guessed at.
const APIVersion = "v1"

// WireRequest is the v1 job submission schema: everything a
// waitfree.Request expresses, minus the closures, which are resolved by
// name through the protocol and object-set registries.
type WireRequest struct {
	// API is the wire schema version; must be APIVersion.
	API string `json:"api"`
	// Kind is the pipeline: consensus, bound, elimination,
	// classification, or synthesis.
	Kind string `json:"kind"`
	// Protocol names a waitfree.Protocols registry entry; required for
	// consensus, bound, and elimination.
	Protocol string `json:"protocol,omitempty"`
	// Procs picks the process count for the scalable protocols (0 = 2).
	Procs int `json:"procs,omitempty"`
	// Values is the proposal-value range for consensus (0 = binary).
	Values int `json:"values,omitempty"`
	// MaxK bounds the elimination witness search (0 = 3).
	MaxK int `json:"max_k,omitempty"`
	// Substrate names a register-free protocol for elimination's Section
	// 5.3 route; "" uses the protocol's registry default (noisysticky-r
	// declares one), which is the deterministic route for the others.
	Substrate string `json:"substrate,omitempty"`
	// Objects names a waitfree.ObjectSets registry entry; required for
	// synthesis.
	Objects string `json:"objects,omitempty"`
	// Synthesis configures the synthesis search.
	Synthesis *WireSynthesis `json:"synthesis,omitempty"`
	// Explore is the verdict-relevant exploration option subset.
	Explore WireExplore `json:"explore,omitempty"`
	// TimeoutMS is the per-job wall-clock deadline in milliseconds (0 =
	// none), capped by the server's Options.MaxTimeout. A job whose
	// deadline expires finishes like a -timeout CLI run: resumable kinds
	// degrade to a done-but-partial report carrying a checkpoint, the
	// others fail with a deadline error.
	TimeoutMS int64 `json:"timeout_ms,omitempty"`
}

// WireExplore is the wire form of the verdict-relevant
// waitfree.ExploreOptions subset, plus the soft-stop budgets. The
// observability and checkpoint hooks are the server's own (it feeds SSE
// and the durable job store with them) and are not on the wire.
type WireExplore struct {
	// MaxDepth is the per-path access budget (0 = the engine default).
	MaxDepth int `json:"max_depth,omitempty"`
	// Memoize deduplicates configurations.
	Memoize bool `json:"memoize,omitempty"`
	// Parallelism bounds the engine's worker goroutines (0 = GOMAXPROCS).
	Parallelism int `json:"parallelism,omitempty"`
	// Symmetry is "off", "auto", or "require" ("" = auto).
	Symmetry string `json:"symmetry,omitempty"`
	// Faults enables exhaustive crash exploration.
	Faults *WireFaults `json:"faults,omitempty"`
	// MaxNodes is the soft node budget (0 = unbounded).
	MaxNodes int64 `json:"max_nodes,omitempty"`
	// StallAfterMS arms the stall watchdog, in milliseconds (0 = off).
	StallAfterMS int64 `json:"stall_after_ms,omitempty"`
}

// WireFaults is the wire form of the crash fault model.
type WireFaults struct {
	// MaxCrashes bounds crash events per execution; 0 disables the model.
	MaxCrashes int `json:"max_crashes"`
	// Mode is "crash-stop", "crash-start", or "crash-recovery"
	// ("" = crash-stop).
	Mode string `json:"mode,omitempty"`
	// MaxRecoveries bounds total recoveries per execution; requires mode
	// "crash-recovery".
	MaxRecoveries int `json:"max_recoveries,omitempty"`
}

// WireSynthesis is the wire form of the synthesis search options.
type WireSynthesis struct {
	Depth     int   `json:"depth,omitempty"`
	Symmetric bool  `json:"symmetric,omitempty"`
	Budget    int64 `json:"budget,omitempty"`
}

// WireError is the {"error": {"code", "message"}} body of every error
// response and failed job: Code is a stable waitfree.ErrorCode (plus the
// server's own not_found / draining / queue_full), Message is human text.
type WireError struct {
	Code    string `json:"code"`
	Message string `json:"message"`
}

func (e *WireError) Error() string { return fmt.Sprintf("%s: %s", e.Code, e.Message) }

// Server-side error codes outside the library taxonomy.
const (
	// CodeNotFound: no job with that id.
	CodeNotFound = "not_found"
	// CodeDraining: the server is shutting down and admits no new jobs.
	CodeDraining = "draining"
	// CodeQueueFull: the admission queue is at capacity.
	CodeQueueFull = "queue_full"
	// CodeConflict: the operation does not apply to the job's state.
	CodeConflict = "conflict"
	// CodeStorageDegraded: the durable job store cannot persist the job
	// (disk failure survived the retry policy); the daemon stays up and
	// keeps serving reads, but admission is refused rather than accepting
	// a job a crash could lose.
	CodeStorageDegraded = "storage_degraded"
)

func badRequest(format string, args ...any) error {
	return fmt.Errorf("%w: %s", waitfree.ErrBadRequest, fmt.Sprintf(format, args...))
}

// Compile resolves a wire request into a runnable waitfree.Request:
// registry lookups for the protocol closures, option translation, and
// strict validation — unknown versions, kinds, names, and fields that do
// not apply to the kind are all rejected with ErrBadRequest /
// ErrUnknownProtocol so a malformed submission fails at the door, not on
// a worker.
func Compile(w *WireRequest) (waitfree.Request, error) {
	var req waitfree.Request
	if w.API != APIVersion {
		return req, badRequest("api %q is not %q (the field is required)", w.API, APIVersion)
	}
	if w.TimeoutMS < 0 {
		return req, badRequest("negative timeout_ms %d", w.TimeoutMS)
	}
	req.Kind = waitfree.CheckKind(w.Kind)
	exp, err := compileExplore(w.Explore)
	if err != nil {
		return req, err
	}
	req.Explore = exp

	needProtocol := func() error {
		if w.Protocol == "" {
			return badRequest("kind %q requires a protocol name", w.Kind)
		}
		im, err := waitfree.BuildProtocol(w.Protocol, w.Procs)
		if err != nil {
			return err
		}
		req.Implementation = im
		return nil
	}
	switch req.Kind {
	case waitfree.KindConsensus:
		if err := w.rejectInapplicable("protocol", "procs", "values"); err != nil {
			return req, err
		}
		if err := needProtocol(); err != nil {
			return req, err
		}
		req.Values = w.Values
	case waitfree.KindBound:
		if err := w.rejectInapplicable("protocol", "procs"); err != nil {
			return req, err
		}
		if err := needProtocol(); err != nil {
			return req, err
		}
	case waitfree.KindElimination:
		if err := w.rejectInapplicable("protocol", "procs", "max_k", "substrate"); err != nil {
			return req, err
		}
		if err := needProtocol(); err != nil {
			return req, err
		}
		req.MaxK = w.MaxK
		substrate := w.Substrate
		if substrate == "" {
			// The registry knows which protocols only eliminate via the
			// Section 5.3 route (noisysticky-r names its own substrate).
			info, _ := waitfree.LookupProtocol(w.Protocol)
			substrate = info.Substrate
		}
		if substrate != "" {
			sub, err := waitfree.BuildProtocol(substrate, 0)
			if err != nil {
				return req, err
			}
			req.Substrate = sub
		}
	case waitfree.KindClassification:
		if err := w.rejectInapplicable(); err != nil {
			return req, err
		}
		// Classification runs the zoo under its own fixed exploration
		// discipline; a submitted fault model would be silently ignored,
		// so fail it at the door instead.
		if w.Explore.Faults != nil {
			return req, badRequest("kind %q takes no explore.faults", w.Kind)
		}
	case waitfree.KindSynthesis:
		if err := w.rejectInapplicable("objects", "synthesis"); err != nil {
			return req, err
		}
		if w.Objects == "" {
			return req, badRequest("kind %q requires an object-set name", w.Kind)
		}
		objs, err := waitfree.BuildObjectSet(w.Objects)
		if err != nil {
			return req, err
		}
		req.Objects = objs
		if w.Synthesis != nil {
			req.Synthesis = waitfree.SynthOptions{
				Depth:     w.Synthesis.Depth,
				Symmetric: w.Synthesis.Symmetric,
				Budget:    w.Synthesis.Budget,
			}
		}
		if req.Synthesis.Depth == 0 {
			req.Synthesis.Depth = 3
		}
	default:
		return req, badRequest("unknown kind %q", w.Kind)
	}
	return req, nil
}

// rejectInapplicable enforces the per-kind field discipline Compile
// promises: a submission carrying kind-specific fields its kind ignores
// is rejected rather than silently accepted, both to fail bad clients at
// the door and because ignored extras would still perturb the persisted
// wire bytes used for job identity. allowed lists the wire names of the
// kind-specific fields this kind consumes; Explore applies to every kind.
func (w *WireRequest) rejectInapplicable(allowed ...string) error {
	ok := make(map[string]bool, len(allowed))
	for _, name := range allowed {
		ok[name] = true
	}
	for _, f := range []struct {
		name string
		set  bool
	}{
		{"protocol", w.Protocol != ""},
		{"procs", w.Procs != 0},
		{"values", w.Values != 0},
		{"max_k", w.MaxK != 0},
		{"substrate", w.Substrate != ""},
		{"objects", w.Objects != ""},
		{"synthesis", w.Synthesis != nil},
	} {
		if f.set && !ok[f.name] {
			return badRequest("kind %q takes no %s", w.Kind, f.name)
		}
	}
	return nil
}

// compileExplore translates the wire option subset.
func compileExplore(w WireExplore) (waitfree.ExploreOptions, error) {
	var o waitfree.ExploreOptions
	if w.MaxDepth < 0 || w.Parallelism < 0 || w.MaxNodes < 0 || w.StallAfterMS < 0 {
		return o, badRequest("negative explore option")
	}
	o.MaxDepth = w.MaxDepth
	o.Memoize = w.Memoize
	o.Parallelism = w.Parallelism
	o.MaxNodes = w.MaxNodes
	o.StallAfter = time.Duration(w.StallAfterMS) * time.Millisecond
	sym := w.Symmetry
	if sym == "" {
		sym = "auto"
	}
	mode, err := waitfree.ParseSymmetryMode(sym)
	if err != nil {
		return o, fmt.Errorf("%w: %v", waitfree.ErrBadRequest, err)
	}
	o.Symmetry = mode
	if w.Faults != nil {
		if w.Faults.MaxCrashes <= 0 && w.Faults.MaxRecoveries > 0 {
			return o, badRequest("faults.max_recoveries requires a positive faults.max_crashes")
		}
		if w.Faults.MaxCrashes > 0 {
			fm := w.Faults.Mode
			if fm == "" {
				fm = "crash-stop"
			}
			mode, err := waitfree.ParseFaultMode(fm)
			if err != nil {
				return o, fmt.Errorf("%w: %v", waitfree.ErrBadRequest, err)
			}
			o.Faults = waitfree.FaultModel{
				MaxCrashes:    w.Faults.MaxCrashes,
				Mode:          mode,
				MaxRecoveries: w.Faults.MaxRecoveries,
			}
			// Validate eagerly (MaxRecoveries without crash-recovery mode,
			// negative bounds) so a malformed model fails at the door, not
			// on a pool worker.
			if err := o.Faults.Validate(); err != nil {
				return o, fmt.Errorf("%w: %v", waitfree.ErrBadRequest, err)
			}
		}
	}
	return o, nil
}

// Resumable reports whether the wire request's kind supports engine
// checkpoint resume (only the single-exploration consensus/bound
// pipelines do; the others rerun from scratch after a restart).
func (w *WireRequest) Resumable() bool {
	k := waitfree.CheckKind(w.Kind)
	return k == waitfree.KindConsensus || k == waitfree.KindBound
}

// DecodeWire parses and compiles a submission body, returning both the
// wire form (persisted verbatim) and the runnable request.
func DecodeWire(body []byte) (*WireRequest, waitfree.Request, error) {
	w := &WireRequest{}
	dec := json.NewDecoder(bytes.NewReader(body))
	dec.DisallowUnknownFields()
	if err := dec.Decode(w); err != nil {
		return nil, waitfree.Request{}, badRequest("parse submission: %v", err)
	}
	req, err := Compile(w)
	if err != nil {
		return nil, waitfree.Request{}, err
	}
	return w, req, nil
}
