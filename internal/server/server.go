package server

import (
	"context"
	"crypto/rand"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"net/http"
	"runtime"
	"sync"
	"sync/atomic"
	"time"

	"waitfree"
	"waitfree/internal/fsx"
	"waitfree/internal/rescache"
)

// Options configures a Server.
type Options struct {
	// Workers is the verification worker pool size (0 = GOMAXPROCS).
	// Each worker runs one job at a time; a job's own engine parallelism
	// is a per-request matter (wire explore.parallelism).
	Workers int
	// QueueDepth bounds the admission queue (0 = 256); submissions beyond
	// it are rejected with 503 queue_full rather than buffered unboundedly.
	QueueDepth int
	// DataDir persists job state in durable envelopes so jobs survive a
	// daemon restart ("" = in-memory only).
	DataDir string
	// Cache, if set, fronts every job with the content-addressed result
	// cache: repeat and symmetry-equivalent submissions are O(1) reads
	// with byte-identical reports.
	Cache *rescache.Cache
	// ProgressInterval is the engine stats cadence feeding SSE streams
	// (0 = 250ms).
	ProgressInterval time.Duration
	// CheckpointEvery is the durable autosave cadence for resumable jobs
	// (0 = 2s); a killed daemon loses at most this much work per job.
	CheckpointEvery time.Duration
	// MaxTimeout caps the per-job wall-clock deadline a submission may
	// request through wire timeout_ms (0 = no cap). Requests above the cap
	// are silently clamped, not rejected, so a fleet-wide policy change
	// does not break existing clients.
	MaxTimeout time.Duration
	// FS is the filesystem the durable job store performs its I/O through
	// (nil = the real one). The chaos smoke test passes an *fsx.FaultFS
	// (via WAITFREED_FAULT_FS) to prove the daemon degrades instead of
	// wedging on a failing disk.
	FS fsx.FS
	// Logf receives operational log lines (0 = discard).
	Logf func(format string, args ...any)
}

// Server is the waitfreed daemon: HTTP handlers, a bounded worker pool,
// the job table, and the durable job store.
type Server struct {
	opts  Options
	store *store
	mux   *http.ServeMux

	mu    sync.Mutex
	jobs  map[string]*Job
	order []string

	queue    chan *Job
	stop     chan struct{}
	wg       sync.WaitGroup
	draining atomic.Bool
	started  time.Time
	running  atomic.Int64

	// persistCtx bounds every durable job write's retry backoff; Drain
	// cancels it when its own deadline expires so workers blocked in a
	// failing persist release promptly instead of outliving the drain.
	persistCtx    context.Context
	persistCancel context.CancelFunc
}

// New builds a server, loading any persisted jobs from Options.DataDir:
// terminal jobs become queryable history, non-terminal jobs are
// re-queued — with their stored checkpoint when their kind supports
// resume. Call Start to launch the workers.
func New(opts Options) (*Server, error) {
	if opts.Workers <= 0 {
		opts.Workers = runtime.GOMAXPROCS(0)
	}
	if opts.QueueDepth <= 0 {
		opts.QueueDepth = 256
	}
	if opts.ProgressInterval <= 0 {
		opts.ProgressInterval = 250 * time.Millisecond
	}
	if opts.CheckpointEvery <= 0 {
		opts.CheckpointEvery = 2 * time.Second
	}
	if opts.Logf == nil {
		opts.Logf = func(string, ...any) {}
	}
	st, err := newStore(opts.DataDir, opts.FS)
	if err != nil {
		return nil, err
	}
	s := &Server{
		opts:    opts,
		store:   st,
		jobs:    make(map[string]*Job),
		stop:    make(chan struct{}),
		started: time.Now(),
	}
	s.persistCtx, s.persistCancel = context.WithCancel(context.Background())
	s.routes()
	if err := s.loadJobs(); err != nil {
		return nil, err
	}
	return s, nil
}

// loadJobs rebuilds the job table from the durable store and creates the
// admission queue, sized to hold every re-queued job even when a prior
// run persisted more than QueueDepth of them.
func (s *Server) loadJobs() error {
	manifests, err := s.store.loadAll(s.opts.Logf)
	if err != nil {
		return err
	}
	depth := s.opts.QueueDepth
	if len(manifests) > depth {
		depth = len(manifests)
	}
	s.queue = make(chan *Job, depth)
	for _, m := range manifests {
		wire, _, cerr := DecodeWire(m.Wire)
		if cerr != nil {
			// The wire form no longer compiles (registry drift across
			// versions): surface the job as failed rather than dropping it.
			s.opts.Logf("job %s no longer compiles: %v", m.ID, cerr)
			wire = &WireRequest{API: APIVersion, Kind: "unknown"}
		}
		j := &Job{
			id:       m.ID,
			wire:     wire,
			raw:      m.Wire,
			state:    m.State,
			err:      m.Error,
			ok:       m.OK,
			report:   m.Report,
			chkpoint: m.Checkpoint,
			resumes:  m.Resumes,
			created:  m.Created,
			started:  m.Started,
			finished: m.Finished,
			hub:      newHub(),
		}
		if cerr != nil && !j.state.Terminal() {
			j.state = JobFailed
			j.err = &WireError{Code: waitfree.ErrorCode(cerr), Message: cerr.Error()}
			j.finished = time.Now()
		}
		if j.state.Terminal() {
			j.hub.close(Event{})
		} else {
			// The daemon died or drained with this job in flight (or
			// queued): run it again. A stored checkpoint makes the rerun a
			// resume (runJob counts it); state returns to queued either way.
			j.state = JobQueued
			j.started = time.Time{}
			s.queue <- j
		}
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		if err := s.store.save(s.persistCtx, j); err != nil {
			s.opts.Logf("%v", err)
		}
	}
	if n := len(manifests); n > 0 {
		s.opts.Logf("loaded %d persisted jobs", n)
	}
	return nil
}

// Start launches the worker pool.
func (s *Server) Start() {
	for i := 0; i < s.opts.Workers; i++ {
		s.wg.Add(1)
		go func() {
			defer s.wg.Done()
			for {
				select {
				case <-s.stop:
					return
				case j := <-s.queue:
					s.runJob(j)
				}
			}
		}()
	}
}

// Handler returns the HTTP handler serving the v1 API.
func (s *Server) Handler() http.Handler { return s.mux }

// Drain gracefully shuts the pool down: stop admitting (503), cancel
// every running job so it checkpoints and returns to queued, persist all
// state, and release the workers. Jobs still queued stay queued in the
// store; the next start resumes everything. ctx bounds the wait.
func (s *Server) Drain(ctx context.Context) error {
	if !s.draining.CompareAndSwap(false, true) {
		return nil
	}
	close(s.stop)
	s.mu.Lock()
	for _, j := range s.jobs {
		j.mu.Lock()
		if j.state == JobRunning && j.cancel != nil {
			j.cancel()
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	done := make(chan struct{})
	go func() { s.wg.Wait(); close(done) }()
	select {
	case <-done:
		return nil
	case <-ctx.Done():
		// The drain deadline expired with workers still busy — most likely
		// wedged in a persist retry loop over a failing disk. Abort every
		// in-flight and future durable write's backoff so the workers (and
		// the process) can exit; the envelopes on disk stay atomic.
		s.persistCancel()
		return fmt.Errorf("server: drain: %w", ctx.Err())
	}
}

// Draining reports whether the server has begun shutting down.
func (s *Server) Draining() bool { return s.draining.Load() }

// runJob executes one job end to end on a pool worker.
func (s *Server) runJob(j *Job) {
	if s.draining.Load() {
		// Drained between dequeue and run: the job's stored state is still
		// queued, so the next start picks it up.
		return
	}
	j.mu.Lock()
	if j.state != JobQueued {
		// Cancelled while waiting in the queue.
		j.mu.Unlock()
		return
	}
	_, req, cerr := DecodeWire(j.raw)
	if cerr != nil {
		j.mu.Unlock()
		s.finishJob(j, nil, cerr)
		return
	}
	ctx, cancel := context.WithCancel(context.Background())
	j.cancel = cancel // the parent cancel, so user cancel and drain preempt the deadline
	if ms := j.wire.TimeoutMS; ms > 0 {
		d := time.Duration(ms) * time.Millisecond
		if s.opts.MaxTimeout > 0 && d > s.opts.MaxTimeout {
			d = s.opts.MaxTimeout
		}
		var tcancel context.CancelFunc
		ctx, tcancel = context.WithTimeout(ctx, d)
		defer tcancel()
	}
	j.state = JobRunning
	j.started = time.Now()
	resumable := j.wire.Resumable()
	if resumable && len(j.chkpoint) > 0 {
		cp := &waitfree.Checkpoint{}
		if err := json.Unmarshal(j.chkpoint, cp); err == nil {
			req.ResumeFrom = cp
			j.resumes++
		} else {
			s.opts.Logf("job %s: stored checkpoint unreadable, restarting: %v", j.id, err)
		}
	}
	j.mu.Unlock()
	defer cancel()
	if s.draining.Load() {
		// Drain's cancel sweep can walk the job table between our entry
		// check and j.cancel being set above, leaving this job with a
		// context nobody cancels. Drain flips the flag before sweeping, so
		// re-checking here after publishing j.cancel closes the window:
		// either the sweep saw j.cancel, or we see draining and self-cancel.
		// The engine then returns promptly and the drain path below
		// checkpoints the job back to queued.
		cancel()
	}
	s.running.Add(1)
	defer s.running.Add(-1)

	req.Explore.ProgressInterval = s.opts.ProgressInterval
	req.Explore.OnProgress = func(st waitfree.ExploreStats) {
		if data, err := json.Marshal(st); err == nil {
			j.hub.publish(Event{Type: "stats", Data: data})
		}
	}
	if resumable && s.store.enabled() {
		req.Explore.CheckpointEvery = s.opts.CheckpointEvery
		req.Explore.OnCheckpoint = func(cp *waitfree.Checkpoint) {
			s.saveCheckpoint(j, cp)
		}
	}
	req.Cache = s.opts.Cache

	s.persist(j)
	j.hub.publish(Event{Type: "state", Data: mustJSON(j.view())})
	s.opts.Logf("job %s: running (%s %s)", j.id, j.wire.Kind, j.wire.Protocol)

	rep, err := waitfree.Check(ctx, req)

	if err != nil && errors.Is(err, context.Canceled) {
		j.mu.Lock()
		userCancel := j.cancelRequested
		j.mu.Unlock()
		if !userCancel && s.draining.Load() {
			// Drain: bank the freshest checkpoint and return to queued; the
			// next start resumes from it.
			if rep != nil && rep.Checkpoint != nil {
				s.saveCheckpoint(j, rep.Checkpoint)
			}
			j.mu.Lock()
			j.state = JobQueued
			j.started = time.Time{}
			j.cancel = nil
			j.mu.Unlock()
			s.persist(j)
			s.opts.Logf("job %s: drained back to queued", j.id)
			return
		}
		if userCancel {
			if rep != nil && rep.Checkpoint != nil {
				s.saveCheckpoint(j, rep.Checkpoint)
			}
			j.mu.Lock()
			j.state = JobCancelled
			j.finished = time.Now()
			j.cancel = nil
			j.mu.Unlock()
			s.persist(j)
			j.hub.close(Event{Type: "done", Data: mustJSON(j.view())})
			s.opts.Logf("job %s: cancelled", j.id)
			return
		}
	}
	s.finishJob(j, rep, err)
}

// finishJob records a terminal verdict: done with a canonical report, or
// failed with a taxonomy code.
func (s *Server) finishJob(j *Job, rep *waitfree.Report, err error) {
	j.mu.Lock()
	j.cancel = nil
	if err != nil {
		j.state = JobFailed
		j.err = &WireError{Code: waitfree.ErrorCode(err), Message: err.Error()}
	} else {
		// Canonicalize so the served report is a pure function of the
		// request: cold runs, cache hits, and checkpoint-resumed reruns
		// are all byte-identical.
		rep.Canonicalize()
		if data, merr := json.Marshal(rep); merr == nil {
			j.report = data
		} else {
			j.state = JobFailed
			j.err = &WireError{Code: waitfree.CodeInternal, Message: merr.Error()}
		}
		if j.err == nil {
			ok := rep.OK()
			j.ok = &ok
			j.state = JobDone
			if rep.Checkpoint == nil {
				j.chkpoint = nil // complete runs leave no frontier behind
			}
		}
	}
	j.finished = time.Now()
	state := j.state
	j.mu.Unlock()
	s.persist(j)
	j.hub.close(Event{Type: "done", Data: mustJSON(j.view())})
	s.opts.Logf("job %s: %s", j.id, state)
}

// saveCheckpoint stores a fresh engine checkpoint durably and announces
// it on the event stream.
func (s *Server) saveCheckpoint(j *Job, cp *waitfree.Checkpoint) {
	data, err := json.Marshal(cp)
	if err != nil {
		s.opts.Logf("job %s: marshal checkpoint: %v", j.id, err)
		return
	}
	j.mu.Lock()
	j.chkpoint = data
	j.mu.Unlock()
	s.persist(j)
	j.hub.publish(Event{Type: "checkpoint", Data: mustJSON(map[string]any{
		"trees": len(cp.Trees), "roots": cp.Roots,
	})})
}

// persist writes the job durably, logging (never failing) on error: the
// in-memory job table remains authoritative for this process's lifetime.
func (s *Server) persist(j *Job) {
	if err := s.store.save(s.persistCtx, j); err != nil {
		s.opts.Logf("%v", err)
	}
}

// submit admits a new job: persist first, then enqueue, so an accepted
// job is never lost to a crash.
func (s *Server) submit(raw []byte) (*Job, error) {
	if s.draining.Load() {
		return nil, &WireError{Code: CodeDraining, Message: "server is draining; resubmit after restart"}
	}
	wire, _, err := DecodeWire(raw)
	if err != nil {
		return nil, err
	}
	j := &Job{
		id:      newJobID(),
		wire:    wire,
		raw:     append(json.RawMessage(nil), raw...),
		state:   JobQueued,
		created: time.Now(),
		hub:     newHub(),
	}
	if err := s.store.save(s.persistCtx, j); err != nil {
		// Persist-before-enqueue is the durability contract: a job the
		// store cannot write is refused (503, storage_degraded) rather than
		// accepted into memory where a crash would lose it. The daemon
		// itself stays healthy — reads, cancels, and streams keep working.
		s.opts.Logf("%v", err)
		return nil, &WireError{
			Code:    CodeStorageDegraded,
			Message: "durable job store cannot persist the job; retry later",
		}
	}
	// Enqueue and register under one lock hold, and only register after
	// the send succeeds: a rejected job never appears in the table, so
	// there is no rollback to race with concurrent submits, and Drain's
	// sweep (which takes s.mu) sees every job a worker can dequeue.
	s.mu.Lock()
	select {
	case s.queue <- j:
		s.jobs[j.id] = j
		s.order = append(s.order, j.id)
		s.mu.Unlock()
	default:
		s.mu.Unlock()
		// Persist-before-enqueue means a crash in this window leaves an
		// orphan envelope that the next start re-queues even though the
		// client saw 503 — an at-least-once anomaly we accept, since the
		// reverse order would lose an accepted job to a crash between
		// enqueue and save.
		if s.store.enabled() {
			_ = removeJobFile(s.store, j.id)
		}
		return nil, &WireError{Code: CodeQueueFull, Message: "admission queue is full"}
	}
	return j, nil
}

func removeJobFile(st *store, id string) error { return st.remove(id) }

// job looks a job up by id.
func (s *Server) job(id string) (*Job, bool) {
	s.mu.Lock()
	defer s.mu.Unlock()
	j, ok := s.jobs[id]
	return j, ok
}

// cancelJob requests cancellation: queued jobs are cancelled on the
// spot, running jobs are cancelled through their context (the engine
// returns promptly and the worker finalizes). Terminal jobs conflict.
func (s *Server) cancelJob(j *Job) error {
	j.mu.Lock()
	switch {
	case j.state.Terminal():
		j.mu.Unlock()
		return &WireError{Code: CodeConflict, Message: "job already " + string(j.state)}
	case j.state == JobQueued:
		j.cancelRequested = true
		j.state = JobCancelled
		j.finished = time.Now()
		j.mu.Unlock()
		s.persist(j)
		j.hub.close(Event{Type: "done", Data: mustJSON(j.view())})
		return nil
	default: // running
		j.cancelRequested = true
		cancel := j.cancel
		j.mu.Unlock()
		if cancel != nil {
			cancel()
		}
		return nil
	}
}

// StatsView is the GET /v1/stats body.
type StatsView struct {
	Workers   int   `json:"workers"`
	Running   int64 `json:"running"`
	Queued    int   `json:"queued"`
	Done      int   `json:"done"`
	Failed    int   `json:"failed"`
	Cancelled int   `json:"cancelled"`
	Jobs      int   `json:"jobs"`
	// Cache is the result cache's cumulative counters (nil without a
	// cache).
	Cache *rescache.Stats `json:"cache,omitempty"`
	// Storage is the durable job store's health counters (nil without a
	// DataDir).
	Storage *StorageHealth `json:"storage,omitempty"`
	// Draining reports a shutdown in progress.
	Draining bool  `json:"draining,omitempty"`
	UptimeMS int64 `json:"uptime_ms"`
}

func (s *Server) statsView() *StatsView {
	v := &StatsView{
		Workers:  s.opts.Workers,
		Running:  s.running.Load(),
		Draining: s.draining.Load(),
		UptimeMS: time.Since(s.started).Milliseconds(),
	}
	s.mu.Lock()
	v.Jobs = len(s.jobs)
	for _, j := range s.jobs {
		j.mu.Lock()
		switch j.state {
		case JobQueued:
			v.Queued++
		case JobDone:
			v.Done++
		case JobFailed:
			v.Failed++
		case JobCancelled:
			v.Cancelled++
		}
		j.mu.Unlock()
	}
	s.mu.Unlock()
	if s.opts.Cache != nil {
		st := s.opts.Cache.Stats()
		v.Cache = &st
	}
	v.Storage = s.store.healthView()
	return v
}

func newJobID() string {
	var b [8]byte
	if _, err := rand.Read(b[:]); err != nil {
		panic(fmt.Sprintf("server: job id entropy: %v", err))
	}
	return hex.EncodeToString(b[:])
}

func mustJSON(v any) []byte {
	data, err := json.Marshal(v)
	if err != nil {
		panic(fmt.Sprintf("server: marshal %T: %v", v, err))
	}
	return data
}
