package server

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"io/fs"
	"path/filepath"
	"strings"
	"sync/atomic"
	"time"

	"waitfree/internal/durable"
	"waitfree/internal/envelope"
	"waitfree/internal/fsx"
)

// Durable job state: one internal/durable envelope per job, rewritten
// atomically on every transition and on every engine checkpoint
// autosave. A SIGKILLed daemon therefore loses at most one autosave
// interval of exploration; on the next start, loadJobs re-queues every
// non-terminal job with its stored checkpoint and the engine resumes
// instead of restarting.
const (
	jobMagic   = "waitfree job v1"
	jobKind    = "job"
	jobFileExt = ".wfjob"
)

// manifest is the persisted form of a Job.
type manifest struct {
	ID    string          `json:"id"`
	Wire  json.RawMessage `json:"wire"`
	State JobState        `json:"state"`
	Error *WireError      `json:"error,omitempty"`
	OK    *bool           `json:"ok,omitempty"`
	// Report is the canonical final report of a done job.
	Report json.RawMessage `json:"report,omitempty"`
	// Checkpoint is the latest autosaved explore.Checkpoint.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
	Resumes    int             `json:"resumes,omitempty"`
	Created    time.Time       `json:"created"`
	Started    time.Time       `json:"started,omitempty"`
	Finished   time.Time       `json:"finished,omitempty"`
}

// storeFailLimit is how many consecutive persist failures flip the job
// store to degraded: admission is refused (503 storage_degraded) until a
// save lands again, instead of accepting jobs a crash could lose.
const storeFailLimit = 3

// StorageHealth is the job store's health-counter block, served by
// /v1/healthz and /v1/stats so an operator (or the smoke test) can see a
// sick disk without grepping logs.
type StorageHealth struct {
	// Retries counts transient persist faults absorbed by the unified
	// retry policy; Failures counts saves that exhausted it.
	Retries  int64 `json:"retries"`
	Failures int64 `json:"failures"`
	// SkippedJobs counts corrupt job envelopes quarantined at startup.
	SkippedJobs int64 `json:"skipped_jobs"`
	// Degraded reports storeFailLimit consecutive persist failures; the
	// daemon keeps serving reads but refuses new admissions.
	Degraded bool `json:"degraded"`
}

// store persists jobs under dir; a zero dir disables persistence (every
// method is then a no-op).
type store struct {
	dir  string
	fsys fsx.FS

	// Health counters behind StorageHealth.
	retries     atomic.Int64
	failures    atomic.Int64
	skipped     atomic.Int64
	consecFails atomic.Int64
}

func newStore(dir string, fsys fsx.FS) (*store, error) {
	s := &store{dir: dir, fsys: fsx.Or(fsys)}
	if dir == "" {
		return s, nil
	}
	if err := s.fsys.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: create data dir: %w", err)
	}
	return s, nil
}

func (s *store) enabled() bool { return s.dir != "" }

func (s *store) path(id string) string {
	return filepath.Join(s.dir, id+jobFileExt)
}

// policy is the unified retry policy with the store's retry counter hung
// on it.
func (s *store) policy() fsx.RetryPolicy {
	return fsx.DefaultRetry.WithObserver(func(error) { s.retries.Add(1) })
}

// healthView snapshots the health counters (nil when persistence is off).
func (s *store) healthView() *StorageHealth {
	if !s.enabled() {
		return nil
	}
	return &StorageHealth{
		Retries:     s.retries.Load(),
		Failures:    s.failures.Load(),
		SkippedJobs: s.skipped.Load(),
		Degraded:    s.degraded(),
	}
}

// degraded reports the store is refusing admissions (consecutive persist
// failures at or past storeFailLimit).
func (s *store) degraded() bool {
	return s.consecFails.Load() >= storeFailLimit
}

// save rewrites the job's envelope durably (atomic replace, checksummed,
// retried under the unified policy). ctx aborts the retry backoff between
// attempts — a draining server over a failing disk must not be held
// hostage by the backoff schedule. Callers must not hold j.mu.
func (s *store) save(ctx context.Context, j *Job) error {
	if !s.enabled() {
		return nil
	}
	j.mu.Lock()
	m := manifest{
		ID:         j.id,
		Wire:       j.raw,
		State:      j.state,
		Error:      j.err,
		OK:         j.ok,
		Report:     j.report,
		Checkpoint: j.chkpoint,
		Resumes:    j.resumes,
		Created:    j.created,
		Started:    j.started,
		Finished:   j.finished,
	}
	j.mu.Unlock()
	data, err := json.Marshal(&m)
	if err != nil {
		return fmt.Errorf("server: marshal job %s: %w", m.ID, err)
	}
	env := durable.EncodeEnvelope(jobMagic, jobKind, []byte(m.ID), [][]byte{data})
	if err := durable.SaveBytesWith(ctx, s.fsys, s.policy(), s.path(m.ID), env); err != nil {
		s.failures.Add(1)
		s.consecFails.Add(1)
		return fmt.Errorf("server: persist job %s: %w", m.ID, err)
	}
	s.consecFails.Store(0)
	return nil
}

// remove deletes the job's envelope (a missing file is fine — the job was
// never persisted, or a quarantine already moved it).
func (s *store) remove(id string) error {
	if err := s.fsys.Remove(s.path(id)); err != nil && !errors.Is(err, fs.ErrNotExist) {
		return err
	}
	return nil
}

// loadAll reads every job envelope under dir, oldest first, retrying
// transient read faults. Corrupt files are counted, quarantined (renamed
// to <name>.corrupt so the next start does not re-pay for them), and
// skipped with a warning through logf — a damaged job must not stop the
// healthy ones from resuming.
func (s *store) loadAll(logf func(string, ...any)) ([]*manifest, error) {
	if !s.enabled() {
		return nil, nil
	}
	entries, err := s.fsys.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("server: read data dir: %w", err)
	}
	var out []*manifest
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), jobFileExt) {
			continue
		}
		path := filepath.Join(s.dir, e.Name())
		var header []byte
		var records [][]byte
		rerr := s.policy().Do(context.Background(), func() error {
			var derr error
			header, records, derr = envelope.ReadFile(s.fsys, path, jobMagic, jobKind)
			if derr != nil && errors.Is(derr, envelope.ErrCorrupt) {
				// Integrity failures are a property of the bytes, not the
				// read; retrying cannot help. The salvage contract still
				// applies: an intact first record is a job.
				return nil
			}
			return derr
		})
		if rerr != nil {
			s.quarantine(path, logf, rerr)
			continue
		}
		if len(records) < 1 {
			s.quarantine(path, logf, fmt.Errorf("no intact record"))
			continue
		}
		// A torn trailer with an intact first record is still a job (the
		// envelope salvage contract); anything less was quarantined above.
		m := &manifest{}
		if jerr := json.Unmarshal(records[0], m); jerr != nil {
			s.quarantine(path, logf, jerr)
			continue
		}
		if m.ID == "" || m.ID != string(header) {
			s.quarantine(path, logf, fmt.Errorf("manifest/header id mismatch"))
			continue
		}
		out = append(out, m)
	}
	// Oldest first so re-queued jobs keep their submission order.
	sortManifests(out)
	return out, nil
}

// quarantine sidelines an unreadable or corrupt job envelope by renaming
// it to <path>.corrupt (best-effort): the next start no longer pays to
// re-decode the failure, and the bytes survive for postmortem instead of
// being deleted.
func (s *store) quarantine(path string, logf func(string, ...any), cause error) {
	s.skipped.Add(1)
	name := filepath.Base(path)
	if err := s.fsys.Rename(path, path+".corrupt"); err != nil {
		logf("load job %s: %v (skipped; quarantine failed: %v)", name, cause, err)
		return
	}
	logf("load job %s: %v (quarantined as %s.corrupt)", name, cause, name)
}

func sortManifests(ms []*manifest) {
	for i := 1; i < len(ms); i++ {
		for k := i; k > 0 && ms[k].Created.Before(ms[k-1].Created); k-- {
			ms[k], ms[k-1] = ms[k-1], ms[k]
		}
	}
}
