package server

import (
	"context"
	"encoding/json"
	"fmt"
	"os"
	"path/filepath"
	"strings"
	"time"

	"waitfree/internal/durable"
)

// Durable job state: one internal/durable envelope per job, rewritten
// atomically on every transition and on every engine checkpoint
// autosave. A SIGKILLed daemon therefore loses at most one autosave
// interval of exploration; on the next start, loadJobs re-queues every
// non-terminal job with its stored checkpoint and the engine resumes
// instead of restarting.
const (
	jobMagic   = "waitfree job v1"
	jobKind    = "job"
	jobFileExt = ".wfjob"
)

// manifest is the persisted form of a Job.
type manifest struct {
	ID    string          `json:"id"`
	Wire  json.RawMessage `json:"wire"`
	State JobState        `json:"state"`
	Error *WireError      `json:"error,omitempty"`
	OK    *bool           `json:"ok,omitempty"`
	// Report is the canonical final report of a done job.
	Report json.RawMessage `json:"report,omitempty"`
	// Checkpoint is the latest autosaved explore.Checkpoint.
	Checkpoint json.RawMessage `json:"checkpoint,omitempty"`
	Resumes    int             `json:"resumes,omitempty"`
	Created    time.Time       `json:"created"`
	Started    time.Time       `json:"started,omitempty"`
	Finished   time.Time       `json:"finished,omitempty"`
}

// store persists jobs under dir; a zero dir disables persistence (every
// method is then a no-op).
type store struct {
	dir string
}

func newStore(dir string) (*store, error) {
	if dir == "" {
		return &store{}, nil
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, fmt.Errorf("server: create data dir: %w", err)
	}
	return &store{dir: dir}, nil
}

func (s *store) enabled() bool { return s.dir != "" }

func (s *store) path(id string) string {
	return filepath.Join(s.dir, id+jobFileExt)
}

// save rewrites the job's envelope durably (atomic replace, checksummed,
// retried). ctx aborts the retry backoff between attempts — a draining
// server over a failing disk must not be held hostage by the backoff
// schedule. Callers must not hold j.mu.
func (s *store) save(ctx context.Context, j *Job) error {
	if !s.enabled() {
		return nil
	}
	j.mu.Lock()
	m := manifest{
		ID:         j.id,
		Wire:       j.raw,
		State:      j.state,
		Error:      j.err,
		OK:         j.ok,
		Report:     j.report,
		Checkpoint: j.chkpoint,
		Resumes:    j.resumes,
		Created:    j.created,
		Started:    j.started,
		Finished:   j.finished,
	}
	j.mu.Unlock()
	data, err := json.Marshal(&m)
	if err != nil {
		return fmt.Errorf("server: marshal job %s: %w", m.ID, err)
	}
	env := durable.EncodeEnvelope(jobMagic, jobKind, []byte(m.ID), [][]byte{data})
	if err := durable.SaveBytesContext(ctx, s.path(m.ID), env); err != nil {
		return fmt.Errorf("server: persist job %s: %w", m.ID, err)
	}
	return nil
}

// loadAll reads every job envelope under dir, oldest first. Corrupt files
// are skipped with a warning through logf — a damaged job must not stop
// the healthy ones from resuming.
func (s *store) loadAll(logf func(string, ...any)) ([]*manifest, error) {
	if !s.enabled() {
		return nil, nil
	}
	entries, err := os.ReadDir(s.dir)
	if err != nil {
		return nil, fmt.Errorf("server: read data dir: %w", err)
	}
	var out []*manifest
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), jobFileExt) {
			continue
		}
		path := filepath.Join(s.dir, e.Name())
		raw, err := os.ReadFile(path)
		if err != nil {
			logf("load job %s: %v", e.Name(), err)
			continue
		}
		header, records, err := durable.DecodeEnvelope(jobMagic, jobKind, raw)
		if len(records) < 1 {
			logf("load job %s: %v (skipped)", e.Name(), err)
			continue
		}
		// A torn trailer with an intact first record is still a job (the
		// envelope salvage contract); anything less was skipped above.
		m := &manifest{}
		if jerr := json.Unmarshal(records[0], m); jerr != nil {
			logf("load job %s: %v (skipped)", e.Name(), jerr)
			continue
		}
		if m.ID == "" || m.ID != string(header) {
			logf("load job %s: manifest/header id mismatch (skipped)", e.Name())
			continue
		}
		out = append(out, m)
	}
	// Oldest first so re-queued jobs keep their submission order.
	sortManifests(out)
	return out, nil
}

func sortManifests(ms []*manifest) {
	for i := 1; i < len(ms); i++ {
		for k := i; k > 0 && ms[k].Created.Before(ms[k-1].Created); k-- {
			ms[k], ms[k-1] = ms[k-1], ms[k]
		}
	}
}
