package experiments

import (
	"strings"
	"testing"
)

// TestAllExperimentsReproduce runs the full harness: every experiment must
// complete and report REPRODUCED. This is the repository's top-level
// regression test for the paper's results.
func TestAllExperimentsReproduce(t *testing.T) {
	if testing.Short() {
		t.Skip("full harness")
	}
	tables, err := All()
	if err != nil {
		t.Fatal(err)
	}
	if len(tables) != 11 {
		t.Fatalf("got %d tables, want 11", len(tables))
	}
	for _, table := range tables {
		if table.Failed() {
			t.Errorf("%s (%s): %s", table.ID, table.Title, table.Verdict)
		}
		if len(table.Rows) == 0 {
			t.Errorf("%s: no rows", table.ID)
		}
		for i, row := range table.Rows {
			if len(row) != len(table.Columns) {
				t.Errorf("%s row %d: %d cells for %d columns", table.ID, i, len(row), len(table.Columns))
			}
		}
	}
}

func TestMarkdownRendering(t *testing.T) {
	tables := []*Table{{
		ID:          "EX",
		Title:       "Example",
		PaperClaim:  "claim",
		Expectation: "shape",
		Columns:     []string{"a", "b"},
		Rows:        [][]string{{"1", "2"}},
		Verdict:     "REPRODUCED — fine",
	}}
	md := Markdown(tables)
	for _, want := range []string{"## EX — Example", "| a | b |", "|---|---|", "| 1 | 2 |", "REPRODUCED"} {
		if !strings.Contains(md, want) {
			t.Errorf("markdown missing %q:\n%s", want, md)
		}
	}
}

func TestVerdictHelpers(t *testing.T) {
	if got := verdict(true, "x"); got != "REPRODUCED — x" {
		t.Errorf("verdict(true) = %q", got)
	}
	if got := verdict(false, "x"); got != "FAILED — x" {
		t.Errorf("verdict(false) = %q", got)
	}
	if (&Table{Verdict: "FAILED — x"}).Failed() == false {
		t.Error("Failed() missed a failure")
	}
	if (&Table{Verdict: "REPRODUCED — x"}).Failed() {
		t.Error("Failed() false positive")
	}
	if yn(true) != "yes" || yn(false) != "NO" {
		t.Error("yn broken")
	}
}

// TestE8AdversaryFindsCounterexample pins the E8 counterexample details.
func TestE8AdversaryFindsCounterexample(t *testing.T) {
	table, err := E8()
	if err != nil {
		t.Fatal(err)
	}
	if table.Failed() {
		t.Fatal(table.Verdict)
	}
	if len(table.Rows) != 2 {
		t.Fatalf("rows = %d", len(table.Rows))
	}
	if table.Rows[0][3] != "yes" {
		t.Errorf("with-registers agreement = %q", table.Rows[0][3])
	}
	if table.Rows[1][3] != "NO" {
		t.Errorf("without-registers agreement = %q", table.Rows[1][3])
	}
}
