package experiments

import (
	"errors"
	"fmt"
	"strconv"

	"waitfree/internal/consensus"
	"waitfree/internal/explore"
	"waitfree/internal/program"
	"waitfree/internal/synth"
	"waitfree/internal/types"
)

// E11 makes Jayanti's distinctions among the four hierarchies (Section
// 2.3) computational, via bounded protocol synthesis: exhaustive search
// over ALL deterministic 2-process protocols with at most Depth accesses
// per process over a fixed object set.
//
//   - Single objects with consensus number >= 2 (cas, sticky cell,
//     augmented queue): synthesis FINDS a protocol, independently
//     re-verified by the explorer.
//   - One test-and-set object alone: NO protocol exists within the bound
//     (h_1(TAS) = 1 — the loser can never learn the winner's proposal),
//     yet h_1^r(TAS) = 2 (the hand-written TAS2 protocol over the same
//     object plus two SRSW bits, verified exhaustively) and h_m(TAS) = 2
//     (the Theorem 5 pipeline's register-free output, E6).
//   - Registers alone — one binary register, or a pair of SRSW bits — and
//     one-use bits alone: NO protocol (the impossibility side cited in
//     Theorem 5's trivial case).
//
// Negative verdicts are exhaustive for the stated bound (and search mode);
// the paper-level claims hold for all bounds (FLP and Herlihy), which
// synthesis corroborates rather than proves.
func E11() (*Table, error) {
	t := &Table{
		ID:    "E11",
		Title: "Hierarchy separations via bounded protocol synthesis (h_1 vs h_1^r vs h_m)",
		PaperClaim: "Jayanti: the hierarchies h_1, h_1^r, h_m, h_m^r are genuinely different " +
			"measures; the paper's Theorem 5 collapses h_m = h_m^r for deterministic types " +
			"while the single-object hierarchies stay apart.",
		Expectation: "single cas/sticky/augmented-queue: protocol found; tas alone, swap " +
			"alone, registers alone, one-use bits alone: impossible within the bound.",
		Columns: []string{"object set", "depth", "search", "assignments", "verdict"},
	}

	type tc struct {
		name      string
		objects   []synth.Object
		depth     int
		symmetric bool
		wantFound bool
	}
	cases := []tc{
		{"one cas", []synth.Object{{Name: "cas", Spec: types.CompareSwap(2, 3), Init: 2}},
			1, true, true},
		{"one sticky cell", []synth.Object{{Name: "sticky", Spec: types.StickyCell(2, 2), Init: types.StickyUnset}},
			2, true, true},
		{"one augmented queue", []synth.Object{{Name: "aq", Spec: types.AugmentedQueue(2, 2, 2), Init: types.QueueState()}},
			2, true, true},
		{"one test-and-set (h_1 side)", []synth.Object{{Name: "tas", Spec: types.TestAndSet(2), Init: 0}},
			3, false, false},
		{"one swap register", []synth.Object{{Name: "sw", Spec: types.Swap(2, 2), Init: 0}},
			3, true, false},
		{"one binary register", []synth.Object{{Name: "r", Spec: types.Register(2, 2), Init: 0}},
			2, false, false},
		{"two SRSW bits", []synth.Object{
			{Name: "r0", Spec: types.SRSWBit(), Init: 0, PortOf: []int{2, 1}},
			{Name: "r1", Spec: types.SRSWBit(), Init: 0, PortOf: []int{1, 2}},
		}, 2, false, false},
		{"two one-use bits", []synth.Object{
			{Name: "b0", Spec: types.OneUseBit(), Init: types.OneUseUnset},
			{Name: "b1", Spec: types.OneUseBit(), Init: types.OneUseUnset},
		}, 2, true, false},
	}

	allOK := true
	for _, c := range cases {
		opts := synth.Options{Depth: c.depth, Symmetric: c.symmetric, Budget: 1e9}
		st, stats, err := synth.Search(c.objects, opts)
		mode := "asymmetric"
		if c.symmetric {
			mode = "symmetric"
		}
		var verdictStr string
		rowOK := false
		switch {
		case err == nil:
			verdictStr = "protocol FOUND"
			rowOK = c.wantFound
			if rowOK {
				im := synth.Implementation("synth-"+c.name, c.objects, st, opts)
				ok, verr := checkBinaryConsensus(im)
				if verr != nil {
					return nil, fmt.Errorf("E11 %s: %w", c.name, verr)
				}
				if !ok {
					verdictStr = "found but FAILED re-verification"
					rowOK = false
				} else {
					verdictStr = "protocol FOUND (re-verified exhaustively)"
				}
			}
		case errors.Is(err, synth.ErrNoProtocol):
			verdictStr = "NO protocol within bound (exhaustive)"
			rowOK = !c.wantFound
		case errors.Is(err, synth.ErrBudget):
			verdictStr = "budget exhausted (unknown)"
			rowOK = false
		default:
			return nil, fmt.Errorf("E11 %s: %w", c.name, err)
		}
		allOK = allOK && rowOK
		t.Rows = append(t.Rows, []string{
			c.name, strconv.Itoa(c.depth), mode,
			strconv.FormatInt(stats.Assignments, 10), verdictStr,
		})
	}

	// h_1^r(TAS) = 2: the hand-written protocol over the SAME single
	// test-and-set object plus two SRSW bits, verified exhaustively. (Full
	// synthesis at depth 3 over three objects exceeds a sensible budget;
	// existence is what the hierarchy value needs.)
	tasR, err := checkBinaryConsensus(consensus.TAS2())
	if err != nil {
		return nil, err
	}
	allOK = allOK && tasR
	tasRVerdict := "verification FAILED"
	if tasR {
		tasRVerdict = "protocol exists (verified exhaustively)"
	}
	t.Rows = append(t.Rows, []string{
		"one test-and-set + two SRSW bits (h_1^r side)", "3",
		"hand-written TAS2, explorer-verified", "-", tasRVerdict,
	})
	t.Rows = append(t.Rows, []string{
		"many test-and-set objects, no registers (h_m side)", "-",
		"Theorem 5 pipeline", "-", "protocol constructed and verified in E6",
	})

	t.Verdict = verdict(allOK,
		"h_1(TAS) = 1 < h_1^r(TAS) = 2 = h_m(TAS) exhibited mechanically; registers "+
			"matter for one object, and Theorem 5 says they stop mattering for many")
	return t, nil
}

func checkBinaryConsensus(im *program.Implementation) (bool, error) {
	report, err := checkConsensus(im, 2, explore.Options{})
	if err != nil {
		return false, err
	}
	return report.OK(), nil
}
