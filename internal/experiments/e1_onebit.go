package experiments

import (
	"fmt"
	"strconv"
	"sync"

	"waitfree/internal/explore"
	"waitfree/internal/hist"
	"waitfree/internal/linearize"
	"waitfree/internal/onebit"
	"waitfree/internal/types"
)

// E1 reproduces Section 4.3: an (w+1) x r array of one-use bits implements
// a bounded-use single-reader single-writer atomic bit.
//
// Exhaustive part: for each (r, w, write pattern), explore every
// interleaving of the reader's r reads and the writer's w writes and check
// each complete history linearizable against the SRSW bit type, and that
// no one-use bit is read or written more than once. Stress part: the
// direct concurrent construction at r = w = 24 under the Go scheduler.
func E1() (*Table, error) {
	t := &Table{
		ID:    "E1",
		Title: "Bounded-use SRSW bit from one-use bits (Section 4.3)",
		PaperClaim: "A bit read at most r times and written at most w times is implemented " +
			"wait-free by an (w+1) x r array of one-use bits, each read once and written once.",
		Expectation: "Every interleaving linearizes; bits used = (w+1)*r; one-use discipline holds.",
		Columns: []string{"r", "w", "init", "writes", "one-use bits", "interleavings",
			"linearizable", "one-use discipline"},
	}
	cases := []struct {
		r, w, init int
		writes     []int
	}{
		{1, 1, 0, []int{1}},
		{2, 1, 0, []int{1}},
		{2, 2, 0, []int{1, 0}},
		{3, 2, 1, []int{0, 1}},
		{2, 3, 0, []int{1, 0, 1}},
		{3, 3, 0, []int{1, 1, 0}}, // includes a redundant write
	}
	allOK := true
	for _, tc := range cases {
		im := onebit.Implementation(tc.r, tc.w, tc.init)
		reads := make([]types.Invocation, tc.r)
		for i := range reads {
			reads[i] = types.Read
		}
		writes := make([]types.Invocation, len(tc.writes))
		for i, x := range tc.writes {
			writes[i] = types.Write(x)
		}
		linearizable := true
		opts := explore.Options{
			RecordHistory: true,
			OnLeaf: func(l *explore.Leaf) error {
				if _, err := linearize.Check(types.SRSWBit(), tc.init, l.History); err != nil {
					linearizable = false
					return err
				}
				return nil
			},
		}
		res, err := explore.Run(im, [][]types.Invocation{reads, writes}, opts)
		if err != nil {
			return nil, fmt.Errorf("E1 r=%d w=%d: %w", tc.r, tc.w, err)
		}
		if res.Violation != nil {
			linearizable = false
		}
		discipline := true
		for _, ops := range res.OpAccess {
			if ops[types.OpRead] > 1 || ops[types.OpWrite] > 1 {
				discipline = false
			}
		}
		allOK = allOK && linearizable && discipline
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(tc.r), strconv.Itoa(tc.w), strconv.Itoa(tc.init),
			fmt.Sprint(tc.writes), strconv.Itoa((tc.w + 1) * tc.r),
			strconv.FormatInt(res.Leaves, 10), yn(linearizable), yn(discipline),
		})
	}

	// Stress the direct construction.
	stressOK, trials := e1Stress()
	allOK = allOK && stressOK
	t.Rows = append(t.Rows, []string{
		"24", "23", "0", "alternating", strconv.Itoa(24 * 24),
		fmt.Sprintf("%d concurrent trials", trials), yn(stressOK), "yes (by construction)",
	})

	t.Verdict = verdict(allOK,
		"all interleavings of every (r, w) case linearize against the SRSW bit type "+
			"and every one-use bit is used at most once in each role")
	return t, nil
}

// e1Stress runs the direct concurrent BoundedBit under the Go scheduler
// and checks each trial's history.
func e1Stress() (bool, int) {
	const trials, r, w = 40, 24, 23
	for trial := 0; trial < trials; trial++ {
		b := onebit.NewBoundedBit(r, w, 0)
		var mu sync.Mutex
		var clock int64
		var h hist.History
		tick := func() int {
			mu.Lock()
			defer mu.Unlock()
			clock++
			return int(clock)
		}
		rec := func(op hist.Op) {
			mu.Lock()
			defer mu.Unlock()
			h = append(h, op)
		}
		done := make(chan error, 1)
		go func() {
			for i := 1; i <= w; i++ {
				begin := tick()
				if err := b.Write(i % 2); err != nil {
					done <- err
					return
				}
				rec(hist.Op{Proc: 1, Port: 2, Inv: types.Write(i % 2), Resp: types.OK, Begin: begin, End: tick()})
			}
			done <- nil
		}()
		bad := false
		for i := 0; i < r; i++ {
			begin := tick()
			v, err := b.Read()
			if err != nil {
				bad = true
				break
			}
			rec(hist.Op{Proc: 0, Port: 1, Inv: types.Read, Resp: types.ValOf(v), Begin: begin, End: tick()})
		}
		if err := <-done; err != nil || bad {
			return false, trials
		}
		// Keep the history under the checker's op limit.
		if len(h) <= linearize.MaxOps {
			if _, err := linearize.Check(types.SRSWBit(), 0, h); err != nil {
				return false, trials
			}
		}
	}
	return true, trials
}
