package experiments

import (
	"fmt"
	"sort"
	"strconv"
	"sync"

	"waitfree/internal/consensus"
	"waitfree/internal/explore"
	"waitfree/internal/hist"
	"waitfree/internal/linearize"
	"waitfree/internal/program"
	"waitfree/internal/types"
	"waitfree/internal/universal"
)

// E8 reproduces the paper's Section 6 context: the separation of h_m from
// h_m^r requires nondeterminism (Theorem 5 makes it impossible for
// deterministic types). The WeakLeader type is a Jayanti-style witness:
// with registers, the two-access protocol solves consensus under every
// adversary resolution; without registers, the natural protocol is broken
// by an explicit adversary resolution that the explorer exhibits.
func E8() (*Table, error) {
	t := &Table{
		ID:    "E8",
		Title: "Nondeterminism is necessary for the h_m / h_m^r gap (Section 6)",
		PaperClaim: "Jayanti's type separating h_m from h_m^r had to be nondeterministic " +
			"with h_m(T) = 1 and h_m^r(T) >= 2 (Theorem 5).",
		Expectation: "weak-leader + registers verifies over all adversary resolutions; the " +
			"register-free attempt fails with a concrete adversary schedule; objects of " +
			"the type alone carry only the adversary-controlled win/lose bit.",
		Columns: []string{"configuration", "roots", "nodes", "agreement", "outcome"},
	}
	withRegs, err := checkConsensus(consensus.WeakLeader2(), 2, explore.Options{})
	if err != nil {
		return nil, fmt.Errorf("E8 with registers: %w", err)
	}
	noRegs, err := checkConsensus(weakLeaderNoRegisters(), 2, explore.Options{})
	if err != nil {
		return nil, fmt.Errorf("E8 without registers: %w", err)
	}
	ok := withRegs.OK() && !noRegs.Agreement && noRegs.Violation != nil
	outcomeNo := "no counterexample found"
	if noRegs.Violation != nil {
		outcomeNo = fmt.Sprintf("adversary schedule of %d steps breaks agreement",
			len(noRegs.Violation.Schedule))
	}
	t.Rows = append(t.Rows, []string{
		"weak-leader + SRSW bits (two accesses each)",
		strconv.Itoa(withRegs.Roots), strconv.FormatInt(withRegs.Nodes, 10),
		yn(withRegs.Agreement), "correct under every adversary resolution",
	})
	t.Rows = append(t.Rows, []string{
		"weak-leader alone (best blind guess)",
		strconv.Itoa(noRegs.Roots), strconv.FormatInt(noRegs.Nodes, 10),
		yn(noRegs.Agreement), outcomeNo,
	})
	t.Verdict = verdict(ok,
		"registers strictly increase the type's consensus power — possible only because "+
			"the type is nondeterministic (Theorem 5)")
	return t, nil
}

// weakLeaderNoRegisters is the register-free attempt: win either access ->
// decide own value; lose both -> the winner's value is unknowable, so
// guess the other binary value.
func weakLeaderNoRegisters() *program.Implementation {
	type st struct {
		PC int
		V  int
	}
	machine := program.FuncMachine{
		StartFn: func(inv types.Invocation, _ any) any { return st{PC: 0, V: inv.A} },
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s := state.(st)
			won := resp.Label == types.LabelWin
			switch {
			case s.PC == 0:
				return program.InvokeAction(0, types.TAS), st{PC: 1, V: s.V}
			case won:
				return program.ReturnAction(types.ValOf(s.V), nil), s
			case s.PC == 1:
				return program.InvokeAction(0, types.TAS), st{PC: 2, V: s.V}
			default:
				return program.ReturnAction(types.ValOf(1-s.V), nil), s
			}
		},
	}
	return &program.Implementation{
		Name:   "weakleader-no-registers",
		Target: types.Consensus(2),
		Procs:  2,
		Objects: []program.ObjectDecl{
			{Name: "elect", Spec: types.WeakLeader(2), Init: 0, PortOf: program.AllPorts(2)},
		},
		Machines: []program.Machine{machine, machine},
	}
}

// E9 reproduces the context that gives hierarchy levels their meaning:
// Herlihy's universality of consensus. The universal construction turns
// consensus cells into a wait-free linearizable object of any
// deterministic type; measured here on a counter (exactness) and a queue
// (linearizability).
func E9() (*Table, error) {
	t := &Table{
		ID:    "E9",
		Title: "Universality of consensus (Herlihy; Section 2.3 context)",
		PaperClaim: "If a type can implement wait-free consensus for n processes, it can " +
			"implement every type for n processes.",
		Expectation: "Counter hands out each value exactly once; queue histories linearize; " +
			"log positions stay within operations + helping slack.",
		Columns: []string{"object", "procs", "total ops", "check", "holds"},
	}
	allOK := true

	// Counter exactness: procs * each increments, all distinct, no gaps.
	const procs, each = 4, 40
	u, err := universal.New(types.FetchAdd(procs), 0, procs, procs*each+procs)
	if err != nil {
		return nil, err
	}
	var mu sync.Mutex
	var got []int
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				resp, err := u.Apply(p, types.Inv(types.OpFAA, 1))
				if err != nil {
					return
				}
				mu.Lock()
				got = append(got, resp.Val)
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	sort.Ints(got)
	exact := len(got) == procs*each
	for i := range got {
		if got[i] != i {
			exact = false
			break
		}
	}
	allOK = allOK && exact
	t.Rows = append(t.Rows, []string{"fetch-and-add counter", strconv.Itoa(procs),
		strconv.Itoa(procs * each), "responses are exactly {0..N-1}", yn(exact)})

	// Queue linearizability across trials.
	queueOK := true
	const trials = 8
	for trial := 0; trial < trials; trial++ {
		ok, err := e9QueueTrial()
		if err != nil {
			return nil, err
		}
		queueOK = queueOK && ok
	}
	allOK = allOK && queueOK
	t.Rows = append(t.Rows, []string{"FIFO queue", "3",
		fmt.Sprintf("%d trials x 18 ops", trials), "histories linearize against the queue type", yn(queueOK)})

	// The machine form: the construction expressed as programs and
	// verified EXHAUSTIVELY by the explorer on small instances.
	for _, mc := range []struct {
		name     string
		target   *types.Spec
		init     types.State
		alphabet []types.Invocation
		scripts  [][]types.Invocation
	}{
		{"register (machine form, exhaustive)", types.Register(2, 2), 0,
			[]types.Invocation{types.Read, types.Write(0), types.Write(1)},
			[][]types.Invocation{{types.Write(1)}, {types.Read, types.Read}}},
		{"queue (machine form, exhaustive)", types.Queue(2, 2, 4), types.QueueState(),
			[]types.Invocation{types.Enq(1), types.Deq},
			[][]types.Invocation{{types.Enq(1)}, {types.Deq}}},
	} {
		ok, leaves, err := e9MachineCheck(mc.target, mc.init, mc.alphabet, mc.scripts)
		if err != nil {
			return nil, fmt.Errorf("E9 %s: %w", mc.name, err)
		}
		allOK = allOK && ok
		t.Rows = append(t.Rows, []string{mc.name, "2",
			fmt.Sprintf("%d interleavings", leaves), "every leaf history linearizes", yn(ok)})
	}

	t.Verdict = verdict(allOK,
		"consensus cells implement arbitrary deterministic types wait-free and "+
			"linearizably — the reason consensus numbers measure computational power")
	return t, nil
}

// e9MachineCheck runs the machine-form universal construction through the
// explorer, checking every leaf history against the target.
func e9MachineCheck(target *types.Spec, init types.State, alphabet []types.Invocation, scripts [][]types.Invocation) (bool, int64, error) {
	totalOps := 0
	for _, s := range scripts {
		totalOps += len(s)
	}
	im, err := universal.MachineImplementation(target, init, len(scripts), totalOps, alphabet)
	if err != nil {
		return false, 0, err
	}
	ok := true
	opts := explore.Options{
		RecordHistory: true,
		OnLeaf: func(l *explore.Leaf) error {
			if _, err := linearize.Check(target, init, l.History); err != nil {
				ok = false
				return err
			}
			return nil
		},
	}
	res, err := explore.Run(im, scripts, opts)
	if err != nil {
		return false, 0, err
	}
	if res.Violation != nil {
		return false, res.Leaves, nil
	}
	return ok, res.Leaves, nil
}

func e9QueueTrial() (bool, error) {
	const procs = 3
	u, err := universal.New(types.Queue(procs, 10, 32), types.QueueState(), procs, 128)
	if err != nil {
		return false, err
	}
	rec := newRecorder()
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 6; i++ {
				inv := types.Enq(p*3 + i%3)
				if i%2 == 1 {
					inv = types.Deq
				}
				begin := rec.tick()
				resp, err := u.Apply(p, inv)
				if err != nil {
					return
				}
				rec.rec(hist.Op{Proc: p, Port: p + 1, Inv: inv, Resp: resp, Begin: begin, End: rec.tick()})
			}
		}(p)
	}
	wg.Wait()
	_, err = linearize.Check(types.Queue(procs, 10, 32), types.QueueState(), rec.history())
	return err == nil, nil
}
