// Package experiments is the reproduction harness: it re-derives, as
// machine-checked tables, every result of Bazzi, Neiger, and Peterson
// (PODC 1994). The paper is pure theory — it has no empirical tables or
// figures — so the reproduction targets are its numbered constructions and
// theorems, one experiment each (E1-E9, indexed in DESIGN.md). Each
// experiment returns a Table whose rows are computed by exhaustive
// exploration or stress execution, never asserted; EXPERIMENTS.md embeds
// the generated output.
package experiments

import (
	"context"
	"fmt"
	"strings"
)

// Table is one experiment's result.
type Table struct {
	ID         string     `json:"id"`
	Title      string     `json:"title"`
	PaperClaim string     `json:"paper_claim"`
	Columns    []string   `json:"columns"`
	Rows       [][]string `json:"rows"`
	// Expectation is the "shape" DESIGN.md predicts for this experiment.
	Expectation string `json:"expectation"`
	// Verdict summarizes whether the computed rows bear the claim out.
	Verdict string `json:"verdict"`
}

// Failed reports whether the verdict indicates a reproduction failure.
func (t *Table) Failed() bool { return strings.HasPrefix(t.Verdict, "FAILED") }

// Markdown renders tables as a GitHub-flavored Markdown document body.
func Markdown(tables []*Table) string {
	var b strings.Builder
	for _, t := range tables {
		fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
		fmt.Fprintf(&b, "**Paper claim.** %s\n\n", t.PaperClaim)
		fmt.Fprintf(&b, "**Expected shape.** %s\n\n", t.Expectation)
		fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
		seps := make([]string, len(t.Columns))
		for i := range seps {
			seps[i] = "---"
		}
		fmt.Fprintf(&b, "|%s|\n", strings.Join(seps, "|"))
		for _, row := range t.Rows {
			fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
		}
		fmt.Fprintf(&b, "\n**Measured verdict.** %s\n\n", t.Verdict)
	}
	return b.String()
}

// runners lists every experiment in order.
var runners = []struct {
	id  string
	run func() (*Table, error)
}{
	{"E1", E1}, {"E2", E2}, {"E3", E3}, {"E4", E4}, {"E5", E5}, {"E6", E6},
	{"E7", E7}, {"E8", E8}, {"E9", E9}, {"E10", E10}, {"E11", E11},
}

// All runs every experiment in order.
func All() ([]*Table, error) {
	return AllContext(context.Background())
}

// AllContext runs every experiment in order, checking ctx between
// experiments (individual experiments run to completion; they are all
// sub-second). Cancellation returns the tables finished so far alongside
// ctx.Err().
func AllContext(ctx context.Context) ([]*Table, error) {
	tables := make([]*Table, 0, len(runners))
	for _, r := range runners {
		if err := ctx.Err(); err != nil {
			return tables, err
		}
		t, err := r.run()
		if err != nil {
			return tables, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// RunOne runs the single experiment named id (E1..E11).
func RunOne(ctx context.Context, id string) (*Table, error) {
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, r := range runners {
		if r.id == id {
			return r.run()
		}
	}
	return nil, fmt.Errorf("unknown experiment %q", id)
}

// verdict builds a REPRODUCED/FAILED verdict string.
func verdict(ok bool, detail string) string {
	if ok {
		return "REPRODUCED — " + detail
	}
	return "FAILED — " + detail
}

func yn(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
