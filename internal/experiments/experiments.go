// Package experiments is the reproduction harness: it re-derives, as
// machine-checked tables, every result of Bazzi, Neiger, and Peterson
// (PODC 1994). The paper is pure theory — it has no empirical tables or
// figures — so the reproduction targets are its numbered constructions and
// theorems, one experiment each (E1-E9, indexed in DESIGN.md). Each
// experiment returns a Table whose rows are computed by exhaustive
// exploration or stress execution, never asserted; EXPERIMENTS.md embeds
// the generated output.
package experiments

import (
	"fmt"
	"strings"
)

// Table is one experiment's result.
type Table struct {
	ID         string
	Title      string
	PaperClaim string
	Columns    []string
	Rows       [][]string
	// Expectation is the "shape" DESIGN.md predicts for this experiment.
	Expectation string
	// Verdict summarizes whether the computed rows bear the claim out.
	Verdict string
}

// Failed reports whether the verdict indicates a reproduction failure.
func (t *Table) Failed() bool { return strings.HasPrefix(t.Verdict, "FAILED") }

// Markdown renders tables as a GitHub-flavored Markdown document body.
func Markdown(tables []*Table) string {
	var b strings.Builder
	for _, t := range tables {
		fmt.Fprintf(&b, "## %s — %s\n\n", t.ID, t.Title)
		fmt.Fprintf(&b, "**Paper claim.** %s\n\n", t.PaperClaim)
		fmt.Fprintf(&b, "**Expected shape.** %s\n\n", t.Expectation)
		fmt.Fprintf(&b, "| %s |\n", strings.Join(t.Columns, " | "))
		seps := make([]string, len(t.Columns))
		for i := range seps {
			seps[i] = "---"
		}
		fmt.Fprintf(&b, "|%s|\n", strings.Join(seps, "|"))
		for _, row := range t.Rows {
			fmt.Fprintf(&b, "| %s |\n", strings.Join(row, " | "))
		}
		fmt.Fprintf(&b, "\n**Measured verdict.** %s\n\n", t.Verdict)
	}
	return b.String()
}

// All runs every experiment in order.
func All() ([]*Table, error) {
	runs := []func() (*Table, error){E1, E2, E3, E4, E5, E6, E7, E8, E9, E10, E11}
	tables := make([]*Table, 0, len(runs))
	for _, run := range runs {
		t, err := run()
		if err != nil {
			return tables, err
		}
		tables = append(tables, t)
	}
	return tables, nil
}

// verdict builds a REPRODUCED/FAILED verdict string.
func verdict(ok bool, detail string) string {
	if ok {
		return "REPRODUCED — " + detail
	}
	return "FAILED — " + detail
}

func yn(ok bool) string {
	if ok {
		return "yes"
	}
	return "NO"
}
