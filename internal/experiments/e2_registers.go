package experiments

import (
	"fmt"
	"math/rand"
	"strconv"
	"sync"

	"waitfree/internal/explore"
	"waitfree/internal/hist"
	"waitfree/internal/linearize"
	"waitfree/internal/registers"
	"waitfree/internal/types"
)

// E2 reproduces the Section 4.1 chain: multi-reader, multi-writer,
// multi-value atomic registers from SRSW bits. Every layer is stressed
// concurrently and its recorded histories are checked against the
// appropriate condition — regularity for the Lamport layers, atomicity
// (linearizability) for the rest. The base regular bit is additionally
// shown NOT to be atomic (the new/old inversion), which is why the
// Vidyasankar downscan exists.
func E2() (*Table, error) {
	t := &Table{
		ID:    "E2",
		Title: "Register construction chain (Section 4.1)",
		PaperClaim: "There is a wait-free implementation of multi-reader multi-writer atomic " +
			"multi-value registers from single-reader single-writer bits " +
			"(Lamport; Burns-Peterson; Peterson; Peterson-Burns).",
		Expectation: "Each layer passes its condition; base cells per object grow with fan-out; " +
			"a bare regular bit fails atomicity.",
		Columns: []string{"layer", "parties", "values", "base cells", "trials", "condition", "holds"},
	}
	allOK := true

	// Base regular bit: regular yes, atomic no (deterministic inversion).
	invOK := e2RegularInversion()
	allOK = allOK && invOK
	t.Rows = append(t.Rows, []string{"regular bit (base cell)", "1W/1R", "2", "1", "deterministic",
		"regular but NOT atomic", yn(invOK)})

	// Lamport multi-reader regular bit.
	ok, trials := e2StressRegular(func() (write func(int), read func(int) int) {
		reg := registers.NewLamportMRBit(2, 0, func(init int) registers.Bit {
			return registers.NewRegularBit(init, nil)
		})
		return reg.Write, reg.Read
	}, 2, 2)
	allOK = allOK && ok
	t.Rows = append(t.Rows, []string{"Lamport MRSW regular bit", "1W/2R", "2", "2",
		strconv.Itoa(trials), "regularity", yn(ok)})

	// Lamport multi-value regular register.
	ok, trials = e2StressRegular(func() (func(int), func(int) int) {
		reg := registers.NewLamportMultiReg(4, 0, func(init int) registers.MultiReaderBit {
			return registers.NewLamportMRBit(2, init, func(i int) registers.Bit {
				return registers.NewRegularBit(i, nil)
			})
		})
		return reg.Write, reg.Read
	}, 2, 4)
	allOK = allOK && ok
	t.Rows = append(t.Rows, []string{"Lamport MRSW regular multi-value", "1W/2R", "4", "8",
		strconv.Itoa(trials), "regularity", yn(ok)})

	// Vidyasankar SRSW atomic multi-value.
	ok, trials = e2StressAtomic(func() (func(int, int), func(int) int, int) {
		reg := registers.NewVidyasankar(4, 0, func(init int) registers.Bit {
			return registers.NewAtomicBit(init)
		})
		return func(_, v int) { reg.Write(v) }, func(int) int { return reg.Read() }, 1
	}, 1, 1, 4)
	allOK = allOK && ok
	t.Rows = append(t.Rows, []string{"Vidyasankar SRSW atomic multi-value", "1W/1R", "4", "4",
		strconv.Itoa(trials), "atomicity", yn(ok)})

	// MRSW atomic.
	mrsw := registers.NewMRSWAtomic(3, 0)
	ok, trials = e2StressAtomic(func() (func(int, int), func(int) int, int) {
		reg := registers.NewMRSWAtomic(3, 0)
		return func(_, v int) { reg.Write(v) }, reg.Read, 3
	}, 1, 3, 8)
	allOK = allOK && ok
	t.Rows = append(t.Rows, []string{"MRSW atomic multi-value", "1W/3R", "8",
		strconv.Itoa(mrsw.BaseCells()), strconv.Itoa(trials), "atomicity", yn(ok)})

	// MRMW atomic.
	mrmw := registers.NewMRMWAtomic(2, 2, 0)
	ok, trials = e2StressAtomic(func() (func(int, int), func(int) int, int) {
		reg := registers.NewMRMWAtomic(2, 2, 0)
		return reg.Write, reg.Read, 2
	}, 2, 2, 16)
	allOK = allOK && ok
	t.Rows = append(t.Rows, []string{"MRMW atomic multi-value", "2W/2R", "16",
		strconv.Itoa(mrmw.BaseCells()), strconv.Itoa(trials), "atomicity", yn(ok)})

	// Machine forms of the Lamport layers: EXHAUSTIVE regularity over all
	// interleavings, plus the exhaustive demonstration that the layer is
	// not atomic (why the chain's upper layers exist).
	regOK, leaves, err := e2LamportExhaustive()
	if err != nil {
		return nil, err
	}
	allOK = allOK && regOK
	t.Rows = append(t.Rows, []string{"Lamport MRSW regular bit (machine form)", "1W/2R", "2", "2",
		fmt.Sprintf("%d interleavings", leaves), "regularity, exhaustive", yn(regOK)})

	t.Verdict = verdict(allOK,
		"every layer satisfies its specification under concurrent stress (the Lamport "+
			"layer also exhaustively); the chain delivers MRMW multi-value atomic "+
			"registers from SRSW cells")
	return t, nil
}

// e2LamportExhaustive explores every interleaving of the machine-form
// Lamport multi-reader bit and checks single-writer regularity per leaf.
func e2LamportExhaustive() (bool, int64, error) {
	im := registers.LamportMRBitMachines(2, 0)
	scripts := [][]types.Invocation{
		{types.Read, types.Read},
		{types.Read},
		{types.Write(1), types.Write(0)},
	}
	ok := true
	res, err := explore.Run(im, scripts, explore.Options{
		RecordHistory: true,
		OnLeaf: func(l *explore.Leaf) error {
			var writes, reads hist.History
			for _, op := range l.History {
				if op.Inv.Op == types.OpWrite {
					writes = append(writes, op)
				} else {
					reads = append(reads, op)
				}
			}
			for _, rd := range reads {
				allowed := map[int]bool{}
				latestEnd := -1
				latestVal := 0
				for _, w := range writes {
					if w.End != hist.Pending && w.End < rd.Begin {
						if w.End > latestEnd {
							latestEnd = w.End
							latestVal = w.Inv.A
						}
					} else if w.Begin < rd.End {
						allowed[w.Inv.A] = true
					}
				}
				allowed[latestVal] = true
				if !allowed[rd.Resp.Val] {
					ok = false
					return fmt.Errorf("read %v not regular", rd)
				}
			}
			return nil
		},
	})
	if err != nil {
		return false, 0, err
	}
	if res.Violation != nil {
		return false, res.Leaves, nil
	}
	return ok, res.Leaves, nil
}

// e2RegularInversion builds the deterministic new/old inversion on a
// regular bit and checks it is regular yet not linearizable.
func e2RegularInversion() bool {
	choices := []bool{false, true}
	i := 0
	b := registers.NewRegularBit(0, func() bool { v := choices[i%2]; i++; return v })
	clock := 0
	tick := func() int { clock++; return clock }
	wBegin := tick()
	b.BeginWrite(1)
	r1b := tick()
	v1 := b.Read()
	r1e := tick()
	r2b := tick()
	v2 := b.Read()
	r2e := tick()
	b.EndWrite()
	h := hist.History{
		{Proc: 0, Port: 1, Inv: types.Write(1), Resp: types.OK, Begin: wBegin, End: tick()},
		{Proc: 1, Port: 1, Inv: types.Read, Resp: types.ValOf(v1), Begin: r1b, End: r1e},
		{Proc: 1, Port: 1, Inv: types.Read, Resp: types.ValOf(v2), Begin: r2b, End: r2e},
	}
	if v1 != 1 || v2 != 0 {
		return false // the adversary should produce new then old
	}
	_, err := linearize.Check(types.Register(2, 2), 0, h)
	return err != nil // must NOT be linearizable
}

// e2StressRegular runs one writer against `readers` readers and checks
// single-writer regularity of the recorded history.
func e2StressRegular(mk func() (func(int), func(int) int), readers, k int) (bool, int) {
	const trials, ops = 25, 10
	for trial := 0; trial < trials; trial++ {
		write, read := mk()
		rec := newRecorder()
		rng := rand.New(rand.NewSource(int64(trial)))
		vals := make([]int, ops)
		for i := range vals {
			vals[i] = rng.Intn(k)
		}
		var wg sync.WaitGroup
		wg.Add(1 + readers)
		go func() {
			defer wg.Done()
			for _, v := range vals {
				rec.write(0, v, func() { write(v) })
			}
		}()
		for r := 0; r < readers; r++ {
			go func(r int) {
				defer wg.Done()
				for i := 0; i < ops; i++ {
					rec.read(1+r, func() int { return read(r) })
				}
			}(r)
		}
		wg.Wait()
		if !rec.regular(0) {
			return false, trials
		}
	}
	return true, trials
}

// e2StressAtomic runs writers and readers and checks linearizability of
// the recorded history against a k-valued register.
func e2StressAtomic(mk func() (func(int, int), func(int) int, int), writers, readers, k int) (bool, int) {
	const trials, ops = 25, 7
	for trial := 0; trial < trials; trial++ {
		write, read, _ := mk()
		rec := newRecorder()
		var wg sync.WaitGroup
		wg.Add(writers + readers)
		for w := 0; w < writers; w++ {
			go func(w int) {
				defer wg.Done()
				for i := 0; i < ops; i++ {
					v := (1 + w*ops + i) % k
					rec.write(w, v, func() { write(w, v) })
				}
			}(w)
		}
		for r := 0; r < readers; r++ {
			go func(r int) {
				defer wg.Done()
				for i := 0; i < ops; i++ {
					rec.read(writers+r, func() int { return read(r) })
				}
			}(r)
		}
		wg.Wait()
		if _, err := linearize.Check(types.Register(1, k), 0, rec.history()); err != nil {
			return false, trials
		}
	}
	return true, trials
}

// recorder is a clock-stamped concurrent history recorder.
type recorder struct {
	mu    sync.Mutex
	clock int64
	ops   hist.History
}

func newRecorder() *recorder { return &recorder{} }

func (r *recorder) tick() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock++
	return int(r.clock)
}

func (r *recorder) rec(op hist.Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, op)
}

func (r *recorder) read(proc int, f func() int) {
	begin := r.tick()
	v := f()
	r.rec(hist.Op{Proc: proc, Port: 1, Inv: types.Read, Resp: types.ValOf(v), Begin: begin, End: r.tick()})
}

func (r *recorder) write(proc, v int, f func()) {
	begin := r.tick()
	f()
	r.rec(hist.Op{Proc: proc, Port: 1, Inv: types.Write(v), Resp: types.OK, Begin: begin, End: r.tick()})
}

func (r *recorder) history() hist.History {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append(hist.History(nil), r.ops...)
}

// regular checks single-writer regularity: each read returns the latest
// preceding write's value, an overlapping write's value, or init.
func (r *recorder) regular(init int) bool {
	h := r.history()
	var writes, reads hist.History
	for _, op := range h {
		if op.Inv.Op == types.OpWrite {
			writes = append(writes, op)
		} else {
			reads = append(reads, op)
		}
	}
	for _, rd := range reads {
		allowed := map[int]bool{}
		latestEnd := -1
		latestVal := init
		for _, w := range writes {
			if w.End < rd.Begin {
				if w.End > latestEnd {
					latestEnd = w.End
					latestVal = w.Inv.A
				}
			} else if w.Begin < rd.End {
				allowed[w.Inv.A] = true
			}
		}
		allowed[latestVal] = true
		if !allowed[rd.Resp.Val] {
			return false
		}
	}
	return true
}
