package experiments

import (
	"context"

	"waitfree"
	"waitfree/internal/explore"
	"waitfree/internal/program"
	"waitfree/internal/rescache"
)

// cache, when set, serves the harness's consensus explorations from the
// content-addressed result cache and stores fresh verdicts into it. The
// experiments run sequentially, so a plain package variable suffices.
var cache *rescache.Cache

// SetCache routes every subsequent consensus exploration through c (nil
// restores direct exploration). cmd/experiments calls this with the
// -cache directory before running the harness.
func SetCache(c *rescache.Cache) { cache = c }

// checkConsensus explores im as k-valued consensus through the waitfree
// facade, so the result cache (when set) can serve repeat runs. The
// returned report is the same ConsensusReport explore.ConsensusK would
// produce, except Elapsed/Stats are canonicalized when the cache is
// active (cold and warm runs must marshal byte-identically).
func checkConsensus(im *program.Implementation, k int, opts explore.Options) (*explore.ConsensusReport, error) {
	rep, err := waitfree.Check(context.Background(), waitfree.Request{
		Kind:           waitfree.KindConsensus,
		Implementation: im,
		Values:         k,
		Explore:        opts,
		Cache:          cache,
	})
	if err != nil {
		return nil, err
	}
	return rep.Consensus, nil
}
