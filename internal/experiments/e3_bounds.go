package experiments

import (
	"fmt"
	"strconv"

	"waitfree/internal/consensus"
	"waitfree/internal/explore"
	"waitfree/internal/program"
)

// E3 reproduces Section 4.2: every wait-free consensus implementation has
// a uniform access bound D, obtained by exploring its (finitely many)
// finite execution trees. The explorer computes D exactly, per protocol,
// along with the tree sizes the Koenig-lemma argument reasons about.
func E3() (*Table, error) {
	t := &Table{
		ID:    "E3",
		Title: "Access bounds in wait-free consensus (Section 4.2)",
		PaperClaim: "For every wait-free consensus implementation there exist bounds r_b, w_b " +
			"such that no execution accesses base object b more often; the 2^n execution " +
			"trees are finite and D is their maximum depth.",
		Expectation: "D finite for every correct protocol; D grows with protocol length and " +
			"process count; the broken register-only protocol still has finite trees but " +
			"fails agreement.",
		Columns: []string{"protocol", "procs", "roots (2^n)", "nodes", "leaves", "D",
			"max accesses/object", "verdict"},
	}
	cases := []struct {
		name string
		mk   func() *program.Implementation
		ok   bool // expected overall verdict
	}{
		{"tas-2consensus", consensus.TAS2, true},
		{"queue-2consensus", consensus.Queue2, true},
		{"stack-2consensus", consensus.Stack2, true},
		{"faa-2consensus", consensus.FAA2, true},
		{"swap-2consensus", consensus.Swap2, true},
		{"weakleader-2consensus", consensus.WeakLeader2, true},
		{"cas-consensus (n=2)", func() *program.Implementation { return consensus.CAS(2) }, true},
		{"cas-consensus (n=3)", func() *program.Implementation { return consensus.CAS(3) }, true},
		{"cas-consensus (n=4)", func() *program.Implementation { return consensus.CAS(4) }, true},
		{"sticky-consensus (n=3)", func() *program.Implementation { return consensus.Sticky(3) }, true},
		{"cas-register-3consensus", consensus.CASRegister3, true},
		{"naive-register-2consensus", consensus.NaiveRegister2, false},
	}
	allOK := true
	for _, tc := range cases {
		im := tc.mk()
		report, err := checkConsensus(im, 2, explore.Options{Memoize: im.Procs > 2})
		if err != nil {
			return nil, fmt.Errorf("E3 %s: %w", tc.name, err)
		}
		maxAcc := 0
		for _, a := range report.MaxAccess {
			if a > maxAcc {
				maxAcc = a
			}
		}
		rowOK := report.OK() == tc.ok
		allOK = allOK && rowOK
		status := "correct"
		if !report.OK() {
			status = "agreement violated (expected: registers cannot solve consensus)"
		}
		t.Rows = append(t.Rows, []string{
			tc.name, strconv.Itoa(im.Procs), strconv.Itoa(report.Roots),
			strconv.FormatInt(report.Nodes, 10), strconv.FormatInt(report.Leaves, 10),
			strconv.Itoa(report.Depth), strconv.Itoa(maxAcc), status,
		})
	}
	t.Verdict = verdict(allOK,
		"every correct protocol has finite trees with the expected exact D; "+
			"bounds r_b, w_b fall out per object and operation")
	return t, nil
}
