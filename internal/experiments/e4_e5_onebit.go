package experiments

import (
	"fmt"
	"strconv"

	"waitfree/internal/consensus"
	"waitfree/internal/explore"
	"waitfree/internal/linearize"
	"waitfree/internal/onebit"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// E4 reproduces Sections 5.1/5.2: every non-trivial deterministic type
// implements a one-use bit. For each zoo type: find the minimal witness
// pair, build the derived one-use bit, and verify it by exploring all
// interleavings of one read and one write against the one-use bit type.
// Trivial types are confirmed to yield no witness.
func E4() (*Table, error) {
	t := &Table{
		ID:    "E4",
		Title: "One-use bits from non-trivial deterministic types (Sections 5.1/5.2)",
		PaperClaim: "Any non-trivial deterministic type implements a one-use bit; minimal " +
			"witnesses have the Lemma 4 shape (k reading invocations vs one writing " +
			"invocation followed by the same k).",
		Expectation: "A k=1 witness for every oblivious zoo type; k=2 for the port-aware " +
			"latch-flag; no witness for trivial types; every derived bit linearizes.",
		Columns: []string{"type", "oblivious", "trivial", "k", "witness", "derived bit linearizable"},
	}
	cases := []struct {
		spec  *types.Spec
		inits []types.State
	}{
		{types.TestAndSet(2), []types.State{0}},
		{types.Register(2, 2), []types.State{0}},
		{types.Queue(2, 2, 3), []types.State{types.QueueState()}},
		{types.Stack(2, 2, 3), []types.State{types.QueueState()}},
		{types.FetchAdd(2), []types.State{0}},
		{types.Swap(2, 2), []types.State{0}},
		{types.CompareSwap(2, 3), []types.State{2}},
		{types.StickyCell(2, 2), []types.State{types.StickyUnset}},
		{types.Toggle(2), []types.State{0}},
		{types.LatchFlag(), []types.State{types.LatchFlagInit()}},
		{types.Beacon(2), []types.State{0}},
		{types.Blinker(2), []types.State{0}},
		{types.IncOnly(2), []types.State{0}},
	}
	allOK := true
	for _, tc := range cases {
		im, pair, err := onebit.FromType(tc.spec, tc.inits, 3)
		if err != nil {
			// Expected for trivial types.
			trivialOK := tc.spec.Name == "beacon" || tc.spec.Name == "blinker" || tc.spec.Name == "inc-only"
			allOK = allOK && trivialOK
			t.Rows = append(t.Rows, []string{tc.spec.Name, yn(tc.spec.Oblivious), "yes", "-",
				"none (trivial)", "-"})
			continue
		}
		ok, err := checkOneUseBit(im)
		if err != nil {
			return nil, fmt.Errorf("E4 %s: %w", tc.spec.Name, err)
		}
		allOK = allOK && ok
		t.Rows = append(t.Rows, []string{tc.spec.Name, yn(tc.spec.Oblivious), "no",
			strconv.Itoa(pair.K()), pair.String(), yn(ok)})
	}
	t.Verdict = verdict(allOK,
		"witnesses found exactly where the paper predicts; every derived one-use bit "+
			"is linearizable under all interleavings")
	return t, nil
}

// E5 reproduces Section 5.3: any type with h_m(T) >= 2 implements a
// one-use bit via a 2-process consensus object (reader proposes 0, writer
// proposes 1) — including nondeterministic types, where the explorer also
// branches over every adversary resolution.
func E5() (*Table, error) {
	t := &Table{
		ID:    "E5",
		Title: "One-use bits from 2-process consensus (Section 5.3)",
		PaperClaim: "If h_m(T) >= 2, objects of T implement 2-process consensus, and a " +
			"consensus object implements a one-use bit: read proposes 0, write proposes 1.",
		Expectation: "The derived bit linearizes for every substrate, including the " +
			"nondeterministic WeakLeader one.",
		Columns: []string{"consensus substrate", "substrate objects", "interleavings", "linearizable"},
	}
	cases := []struct {
		name string
		mk   func() *program.Implementation
	}{
		{"cas-consensus (register-free)", func() *program.Implementation { return consensus.CAS(2) }},
		{"sticky-consensus (register-free)", func() *program.Implementation { return consensus.Sticky(2) }},
		{"tas-2consensus", consensus.TAS2},
		{"weakleader-2consensus (nondeterministic)", consensus.WeakLeader2},
	}
	allOK := true
	for _, tc := range cases {
		sub := tc.mk()
		im, err := onebit.FromConsensusImplementation(sub)
		if err != nil {
			return nil, fmt.Errorf("E5 %s: %w", tc.name, err)
		}
		ok, leaves, err := checkOneUseBitCounting(im)
		if err != nil {
			return nil, fmt.Errorf("E5 %s: %w", tc.name, err)
		}
		allOK = allOK && ok
		t.Rows = append(t.Rows, []string{tc.name, strconv.Itoa(len(sub.Objects)),
			strconv.FormatInt(leaves, 10), yn(ok)})
	}
	t.Verdict = verdict(allOK,
		"every substrate yields a linearizable one-use bit; nondeterministic adversary "+
			"resolutions are covered exhaustively")
	return t, nil
}

func checkOneUseBit(im *program.Implementation) (bool, error) {
	ok, _, err := checkOneUseBitCounting(im)
	return ok, err
}

func checkOneUseBitCounting(im *program.Implementation) (bool, int64, error) {
	ok := true
	opts := explore.Options{
		RecordHistory: true,
		OnLeaf: func(l *explore.Leaf) error {
			if _, err := linearize.Check(types.OneUseBit(), types.OneUseUnset, l.History); err != nil {
				ok = false
				return err
			}
			return nil
		},
	}
	scripts := [][]types.Invocation{{types.Read}, {types.Write(1)}}
	res, err := explore.Run(im, scripts, opts)
	if err != nil {
		return false, 0, err
	}
	if res.Violation != nil {
		return false, res.Leaves, nil
	}
	return ok, res.Leaves, nil
}
