package experiments

import (
	"fmt"
	"strconv"

	"waitfree/internal/consensus"
	"waitfree/internal/core"
	"waitfree/internal/explore"
	"waitfree/internal/hierarchy"
	"waitfree/internal/program"
)

// E6 reproduces the constructive Theorem 5 pipeline on every
// register-using protocol: bounds (4.2), register-to-one-use-bit rewriting
// (4.3), one-use-bit realization from T (5.2), with exhaustive verification
// of both endpoints.
func E6() (*Table, error) {
	t := &Table{
		ID:    "E6",
		Title: "Register elimination — constructive Theorem 5",
		PaperClaim: "If T is deterministic and non-trivial and some registers plus objects of " +
			"T implement n-process consensus, then objects of T alone do.",
		Expectation: "Each register with bounds (r, w) costs (w+1)*r one-use bits, each one " +
			"T object; output D grows by the witness length k per simulated access; " +
			"every output verifies register-free.",
		Columns: []string{"protocol", "procs", "input D", "registers", "one-use bits",
			"T objects added", "output objects", "output D", "output verified"},
	}
	cases := []struct {
		name string
		mk   func() *program.Implementation
		memo bool
	}{
		{"tas-2consensus", consensus.TAS2, false},
		{"queue-2consensus", consensus.Queue2, false},
		{"stack-2consensus", consensus.Stack2, false},
		{"faa-2consensus", consensus.FAA2, false},
		{"swap-2consensus", consensus.Swap2, false},
		{"cas-register-3consensus", consensus.CASRegister3, true},
	}
	allOK := true
	for _, tc := range cases {
		im := tc.mk()
		report, err := core.EliminateRegisters(im, explore.Options{Memoize: tc.memo}, 3)
		if err != nil {
			return nil, fmt.Errorf("E6 %s: %w", tc.name, err)
		}
		ok := report.OutputReport.OK() &&
			report.Output.CountObjects("srsw-bit") == 0 &&
			report.Output.CountObjects("one-use-bit") == 0
		allOK = allOK && ok
		t.Rows = append(t.Rows, []string{
			tc.name, strconv.Itoa(im.Procs), strconv.Itoa(report.InputReport.Depth),
			strconv.Itoa(report.RegistersEliminated), strconv.Itoa(report.OneUseBitsUsed),
			strconv.Itoa(report.TypeObjectsAdded), strconv.Itoa(len(report.Output.Objects)),
			strconv.Itoa(report.OutputReport.Depth), yn(ok),
		})
	}
	// Theorem 5's third case: a NONDETERMINISTIC type with h_m >= 2
	// (noisy-sticky). The Section 5.2 witness machinery is unavailable, so
	// the one-use bits are realized from the type's own register-free
	// 2-consensus implementation (Section 5.3).
	via53, err := core.EliminateRegistersVia53(
		consensus.NoisySticky2R(), consensus.NoisySticky2(), explore.Options{})
	if err != nil {
		return nil, fmt.Errorf("E6 via-5.3: %w", err)
	}
	ok53 := via53.OutputReport.OK() &&
		via53.Output.CountObjects("srsw-bit") == 0 &&
		via53.Output.CountObjects("one-use-bit") == 0
	allOK = allOK && ok53
	t.Rows = append(t.Rows, []string{
		"noisysticky-2consensus-r (nondet; via 5.3)", "2",
		strconv.Itoa(via53.InputReport.Depth), strconv.Itoa(via53.RegistersEliminated),
		strconv.Itoa(via53.OneUseBitsUsed), strconv.Itoa(via53.TypeObjectsAdded),
		strconv.Itoa(len(via53.Output.Objects)), strconv.Itoa(via53.OutputReport.Depth), yn(ok53),
	})

	t.Verdict = verdict(allOK,
		"every transformed protocol is register-free and passes exhaustive "+
			"agreement/validity/wait-freedom checking — including the nondeterministic "+
			"h_m >= 2 case via the Section 5.3 route")
	return t, nil
}

// E7 reproduces the Theorem 5 corollary on the zoo: h_m(T) = h_m^r(T) for
// deterministic types. For every type with a verified register-using
// consensus protocol (h_m^r >= 2 witness), the pipeline produces a
// register-free witness (h_m >= 2); for level-1 and trivial types, the
// classification records the equality argument.
func E7() (*Table, error) {
	t := &Table{
		ID:    "E7",
		Title: "h_m = h_m^r on the deterministic zoo (Theorem 5)",
		PaperClaim: "For every deterministic type T (and every T with h_m(T) >= 2), " +
			"h_m(T) = h_m^r(T).",
		Expectation: "Each level-2 type gets both witnesses machine-checked; level-1 types " +
			"rely on the impossibility side (registers alone cannot do 2-consensus), " +
			"which E3 exhibits on the naive protocol.",
		Columns: []string{"type", "h_m^r >= 2 witness", "h_m >= 2 witness (register-free)", "conclusion"},
	}
	cases := []struct {
		typeName string
		mk       func() *program.Implementation
	}{
		{"test-and-set", consensus.TAS2},
		{"queue", consensus.Queue2},
		{"stack", consensus.Stack2},
		{"fetch-and-add", consensus.FAA2},
		{"swap", consensus.Swap2},
	}
	allOK := true
	for _, tc := range cases {
		in := tc.mk()
		inReport, err := checkConsensus(in, 2, explore.Options{})
		if err != nil {
			return nil, fmt.Errorf("E7 %s: %w", tc.typeName, err)
		}
		pipeline, err := core.EliminateRegisters(tc.mk(), explore.Options{}, 3)
		if err != nil {
			return nil, fmt.Errorf("E7 %s: %w", tc.typeName, err)
		}
		ok := inReport.OK() && pipeline.OutputReport.OK()
		allOK = allOK && ok
		t.Rows = append(t.Rows, []string{
			tc.typeName,
			yn(inReport.OK()) + " (explored exhaustively)",
			yn(pipeline.OutputReport.OK()) + fmt.Sprintf(" (%d %s objects, no registers)",
				len(pipeline.Output.Objects), tc.typeName),
			"h_m = h_m^r = 2 witnessed at n = 2",
		})
	}

	// Level-1 deterministic types: the equality holds with both sides at 1.
	cs, err := hierarchy.ClassifyZoo()
	if err != nil {
		return nil, err
	}
	level1 := 0
	for _, c := range cs {
		if c.Deterministic && c.Consensus == "1" {
			level1++
		}
	}
	t.Rows = append(t.Rows, []string{
		fmt.Sprintf("(%d level-1 deterministic types)", level1),
		"n/a (level 1)", "n/a (level 1)",
		"h_m = h_m^r = 1 (registers alone cannot solve 2-consensus; see E3's naive protocol)",
	})

	t.Verdict = verdict(allOK,
		"for every deterministic zoo type with consensus number 2, both hierarchies "+
			"witness level 2; Theorem 5's equality is constructive")
	return t, nil
}
