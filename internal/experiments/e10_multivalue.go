package experiments

import (
	"fmt"
	"strconv"

	"waitfree/internal/core"
	"waitfree/internal/explore"
	"waitfree/internal/multivalue"
)

// E10 is an extension experiment: the paper's consensus type T_{c,n} is
// binary, and Herlihy's universality consumes multi-valued consensus; the
// bit-by-bit construction closes the gap, and the Theorem 5 pipeline
// composes with it. k-valued 2-process consensus is built from binary
// consensus objects plus k-valued SRSW registers, the registers are
// compiled to SRSW bits (Section 4.1 as machines, Vidyasankar encoding),
// the bits to one-use bits (Section 4.3), and the one-use bits to binary
// consensus-type objects (Section 5.2) — yielding k-valued consensus from
// objects of the binary consensus type ALONE, verified over all k^2 trees.
func E10() (*Table, error) {
	t := &Table{
		ID:    "E10",
		Title: "Extension: multi-valued consensus, register-free via the full pipeline",
		PaperClaim: "Binary consensus loses no generality (folklore the paper relies on), and " +
			"Theorem 5 applies to implementations of any consensus target over a " +
			"deterministic type: here T = the binary consensus type itself.",
		Expectation: "Multi-valued construction verifies for each k; after elimination, " +
			"every object is of the binary consensus type; output D grows by the " +
			"simulation overhead.",
		Columns: []string{"k", "roots (k^2)", "input D", "registers (unary bits)",
			"one-use bits", "T=consensus objects", "output D", "output verified"},
	}
	allOK := true
	for _, k := range []int{2, 3, 4} {
		input := multivalue.FromBinarySRSW(k)
		report, err := core.EliminateRegisters(input, explore.Options{Memoize: true}, 3)
		if err != nil {
			return nil, fmt.Errorf("E10 k=%d: %w", k, err)
		}
		ok := report.OutputReport.OK() && report.TypeName == "consensus"
		for i := range report.Output.Objects {
			if report.Output.Objects[i].Spec.Name != "consensus" {
				ok = false
			}
		}
		allOK = allOK && ok
		t.Rows = append(t.Rows, []string{
			strconv.Itoa(k), strconv.Itoa(report.OutputReport.Roots),
			strconv.Itoa(report.InputReport.Depth), strconv.Itoa(report.RegistersEliminated),
			strconv.Itoa(report.OneUseBitsUsed), strconv.Itoa(len(report.Output.Objects)),
			strconv.Itoa(report.OutputReport.Depth), yn(ok),
		})
	}

	// The plain (non-SRSW) construction at n = 3 as a breadth check.
	mv3, err := checkConsensus(multivalue.FromBinary(3, 3), 3, explore.Options{Memoize: true})
	if err != nil {
		return nil, fmt.Errorf("E10 n=3: %w", err)
	}
	allOK = allOK && mv3.OK()
	t.Rows = append(t.Rows, []string{
		"3 (n=3, construction only)", strconv.Itoa(mv3.Roots), strconv.Itoa(mv3.Depth),
		"-", "-", "-", "-", yn(mv3.OK()),
	})

	t.Verdict = verdict(allOK,
		"k-valued consensus reduced to binary-consensus-type objects alone, "+
			"exhaustively verified; the pipeline composes across target types")
	return t, nil
}
