package hist

import (
	"errors"
	"strings"
	"testing"

	"waitfree/internal/types"
)

func TestPrecedes(t *testing.T) {
	a := Op{Begin: 0, End: 2}
	b := Op{Begin: 3, End: 5}
	c := Op{Begin: 1, End: 4}
	p := Op{Begin: 1, End: Pending}
	if !a.Precedes(b) {
		t.Error("a should precede b")
	}
	if b.Precedes(a) {
		t.Error("b should not precede a")
	}
	if a.Precedes(c) || c.Precedes(a) {
		t.Error("a and c overlap; neither precedes")
	}
	if p.Precedes(b) {
		t.Error("pending op precedes nothing")
	}
	if p.Complete() {
		t.Error("pending op reported complete")
	}
}

func TestValidate(t *testing.T) {
	good := History{
		{Proc: 0, Begin: 0, End: 2},
		{Proc: 0, Begin: 3, End: 4},
		{Proc: 1, Begin: 1, End: 5},
	}
	if err := good.Validate(); err != nil {
		t.Errorf("good history rejected: %v", err)
	}

	backwards := History{{Proc: 0, Begin: 5, End: 2}}
	if err := backwards.Validate(); !errors.Is(err, ErrBadInterval) {
		t.Errorf("backwards interval: err = %v", err)
	}

	overlapping := History{
		{Proc: 0, Begin: 0, End: 3},
		{Proc: 0, Begin: 2, End: 5},
	}
	if err := overlapping.Validate(); !errors.Is(err, ErrOverlapSelf) {
		t.Errorf("self-overlap: err = %v", err)
	}

	pendingThenMore := History{
		{Proc: 0, Begin: 0, End: Pending},
		{Proc: 0, Begin: 2, End: 5},
	}
	if err := pendingThenMore.Validate(); !errors.Is(err, ErrOverlapSelf) {
		t.Errorf("op after pending: err = %v", err)
	}
}

func TestCompleteFilter(t *testing.T) {
	h := History{
		{Proc: 0, Begin: 0, End: 1},
		{Proc: 1, Begin: 2, End: Pending},
	}
	c := h.Complete()
	if len(c) != 1 || c[0].Proc != 0 {
		t.Errorf("Complete() = %v", c)
	}
}

func TestString(t *testing.T) {
	h := History{
		{Proc: 1, Port: 1, Inv: types.Read, Resp: types.ValOf(1), Begin: 4, End: 5},
		{Proc: 0, Port: 2, Inv: types.Write(1), Resp: types.OK, Begin: 0, End: 2},
	}
	s := h.String()
	if !strings.Contains(s, "p0[0,2] write(1)->ok") {
		t.Errorf("String() = %q", s)
	}
	// Sorted by Begin: the write comes first.
	if strings.Index(s, "p0") > strings.Index(s, "p1") {
		t.Errorf("String() not sorted by Begin: %q", s)
	}
	pending := History{{Proc: 0, Begin: 0, End: Pending, Inv: types.Read}}
	if !strings.Contains(pending.String(), "[0,?]") {
		t.Errorf("pending String() = %q", pending.String())
	}
}
