// Package hist represents concurrent histories of operations on a single
// shared object: the input to the linearizability checker (package
// linearize) and the output of the execution-tree explorer (package
// explore) and the concurrent runtime (package runtime).
//
// A history is a set of operations, each with an invocation, a response,
// the port it used, and a real-time interval [Begin, End] on a global
// logical clock. Operation A precedes operation B iff A.End < B.Begin;
// otherwise they are concurrent. Linearizability (Herlihy and Wing 1990)
// requires a total order of the operations, consistent with precedence,
// that is a legal sequential history of the object's type.
package hist

import (
	"errors"
	"fmt"
	"sort"
	"strings"

	"waitfree/internal/types"
)

// Pending marks the End of an operation that has not yet returned.
const Pending = -1

// Op is one operation of a concurrent history.
type Op struct {
	Proc  int
	Port  int
	Inv   types.Invocation
	Resp  types.Response
	Begin int
	End   int // Pending if the operation never returned
}

// Precedes reports whether o completed before p began.
func (o Op) Precedes(p Op) bool { return o.End != Pending && o.End < p.Begin }

// Complete reports whether the operation returned.
func (o Op) Complete() bool { return o.End != Pending }

// String renders the operation for diagnostics.
func (o Op) String() string {
	end := "?"
	if o.Complete() {
		end = fmt.Sprintf("%d", o.End)
	}
	return fmt.Sprintf("p%d[%d,%s] %v->%v", o.Proc, o.Begin, end, o.Inv, o.Resp)
}

// History is a concurrent history of one object.
type History []Op

// String renders the history sorted by Begin for diagnostics.
func (h History) String() string {
	sorted := append(History(nil), h...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i].Begin < sorted[j].Begin })
	parts := make([]string, len(sorted))
	for i, op := range sorted {
		parts[i] = op.String()
	}
	return strings.Join(parts, "; ")
}

// Errors reported by Validate.
var (
	ErrBadInterval = errors.New("hist: operation interval invalid")
	ErrOverlapSelf = errors.New("hist: operations of one process overlap")
)

// Validate checks well-formedness: intervals are ordered, and each
// process's operations are sequential (a process has at most one operation
// outstanding at a time).
func (h History) Validate() error {
	byProc := make(map[int][]Op)
	for _, op := range h {
		if op.Complete() && op.End < op.Begin {
			return fmt.Errorf("%w: %v", ErrBadInterval, op)
		}
		byProc[op.Proc] = append(byProc[op.Proc], op)
	}
	for proc, ops := range byProc {
		sort.Slice(ops, func(i, j int) bool { return ops[i].Begin < ops[j].Begin })
		for i := 1; i < len(ops); i++ {
			prev := ops[i-1]
			if !prev.Complete() || prev.End >= ops[i].Begin {
				return fmt.Errorf("%w: process %d: %v then %v", ErrOverlapSelf, proc, prev, ops[i])
			}
		}
	}
	return nil
}

// Complete returns the subhistory of completed operations.
func (h History) Complete() History {
	out := make(History, 0, len(h))
	for _, op := range h {
		if op.Complete() {
			out = append(out, op)
		}
	}
	return out
}
