package envelope

import "waitfree/internal/fsx"

// ReadFile loads and decodes the envelope at path through fsys (nil = the
// real filesystem). It is the read half every envelope-on-disk tier
// shares; the Decode contract is unchanged — on integrity failure the
// error wraps ErrCorrupt and the returned header/records are the longest
// individually-verified prefix, so callers may salvage even when the
// envelope as a whole is rejected. A read error returns it verbatim
// (callers distinguish fs.ErrNotExist from real I/O failures).
func ReadFile(fsys fsx.FS, path, magic, kind string) (header []byte, records [][]byte, err error) {
	data, err := fsx.Or(fsys).ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return Decode(magic, kind, data)
}
