// Package envelope implements the per-record-checksummed line envelope
// shared by every durable artifact in the repo: checkpoint files
// (internal/durable), result-cache entries (internal/rescache), daemon job
// files (internal/server), and the explorer's memo spill tier
// (internal/explore). It sits below internal/durable — which re-exports
// Encode/Decode as EncodeEnvelope/DecodeEnvelope for its callers — so that
// packages durable itself depends on (the explorer) can use the codec
// without an import cycle.
//
// The line format, with a caller-chosen magic line and record kind:
//
//	<magic>
//	meta <sha256-hex> <header bytes>
//	<kind> <sha256-hex> <record bytes>
//	...
//	end <sha256-hex> <record count> <sha256-hex of every preceding byte>
//
// Header and record payloads must not contain newlines (JSON payloads
// never do; binary payloads are base64-encoded by their callers).
// Truncation at any byte offset leaves a detectable — and, per record,
// salvageable — prefix.
package envelope

import (
	"bytes"
	"crypto/sha256"
	"encoding/hex"
	"errors"
	"fmt"
)

// ErrCorrupt is the sentinel wrapped by every envelope integrity failure
// (Decode). internal/durable aliases it as ErrCorruptEnvelope.
var ErrCorrupt = errors.New("durable: corrupt envelope")

func sum(payload []byte) string {
	h := sha256.Sum256(payload)
	return hex.EncodeToString(h[:])
}

// Encode renders header and records into the checksummed envelope format
// under the given magic line and record kind.
func Encode(magic, kind string, header []byte, records [][]byte) []byte {
	var b bytes.Buffer
	b.WriteString(magic)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "meta %s %s\n", sum(header), header)
	for _, rec := range records {
		fmt.Fprintf(&b, "%s %s %s\n", kind, sum(rec), rec)
	}
	trailer := fmt.Sprintf("%d %s", len(records), sum(b.Bytes()))
	fmt.Fprintf(&b, "end %s %s\n", sum([]byte(trailer)), trailer)
	return b.Bytes()
}

// Decode parses data as an envelope written by Encode with the same magic
// and record kind, verifying every checksum. On integrity failure it
// returns an error wrapping ErrCorrupt alongside the longest valid prefix:
// the header (nil if it did not survive) and every record whose checksum
// verified before the first bad byte. Each returned record is individually
// integrity-checked, so callers may trust the prefix even when the
// envelope as a whole is rejected.
func Decode(magic, kind string, data []byte) (header []byte, records [][]byte, err error) {
	fail := func(format string, args ...any) ([]byte, [][]byte, error) {
		return header, records, fmt.Errorf("%w: %s", ErrCorrupt, fmt.Sprintf(format, args...))
	}
	if len(data) == 0 {
		return fail("empty envelope")
	}
	lineNo := 0
	sawMeta, sawEnd := false, false
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// A file ending without a newline was almost certainly torn
			// mid-record; the fragment's checksum decides.
			nl = len(data) - off
		}
		line := data[off : off+nl]
		lineStart := off
		off += nl + 1
		if sawEnd {
			if len(line) == 0 && off >= len(data) {
				continue // single trailing newline after the end record
			}
			return fail("data after end record (line %d)", lineNo+1)
		}
		switch {
		case lineNo == 0:
			if string(line) != magic {
				return fail("bad magic line %q (want %q)", truncateForErr(line), magic)
			}
		default:
			recKind, payload, err := splitLine(line)
			if err != nil {
				return fail("line %d: %v", lineNo+1, err)
			}
			switch recKind {
			case "meta":
				if sawMeta {
					return fail("line %d: duplicate meta record", lineNo+1)
				}
				sawMeta = true
				header = append([]byte(nil), payload...)
			case kind:
				if !sawMeta {
					return fail("line %d: %s record before meta", lineNo+1, kind)
				}
				records = append(records, append([]byte(nil), payload...))
			case "end":
				if !sawMeta {
					return fail("line %d: end record before meta", lineNo+1)
				}
				var n int
				var streamSum string
				if _, err := fmt.Sscanf(string(payload), "%d %64s", &n, &streamSum); err != nil {
					return fail("line %d: malformed end record: %v", lineNo+1, err)
				}
				if n != len(records) {
					return fail("line %d: end record counts %d records, envelope holds %d", lineNo+1, n, len(records))
				}
				if got := sum(data[:lineStart]); got != streamSum {
					return fail("line %d: stream checksum mismatch", lineNo+1)
				}
				sawEnd = true
			default:
				return fail("line %d: unknown record kind %q", lineNo+1, recKind)
			}
		}
		lineNo++
	}
	if !sawEnd {
		return fail("missing end record (envelope truncated after %d lines)", lineNo)
	}
	return header, records, nil
}

// splitLine cuts "kind <checksum> <payload>" into its three fields and
// verifies the checksum over the payload.
func splitLine(line []byte) (kind string, payload []byte, err error) {
	sp := bytes.IndexByte(line, ' ')
	if sp < 0 {
		return "", nil, fmt.Errorf("record %q has no checksum field", truncateForErr(line))
	}
	kind = string(line[:sp])
	rest := line[sp+1:]
	sp = bytes.IndexByte(rest, ' ')
	if sp < 0 {
		return kind, nil, fmt.Errorf("%s record has no payload field", kind)
	}
	want, payload := string(rest[:sp]), rest[sp+1:]
	if got := sum(payload); got != want {
		return kind, nil, fmt.Errorf("%s record checksum mismatch (stored %.12s…, computed %.12s…)", kind, want, got)
	}
	return kind, payload, nil
}

func truncateForErr(b []byte) string {
	const max = 24
	if len(b) > max {
		return string(b[:max]) + "…"
	}
	return string(b)
}
