// Package runtime executes implementations (package program) concurrently:
// one goroutine per process, shared objects realized as mutex-atomic
// instantiations of their type specs, interleavings controlled by a
// scheduler (package sched), and the complete target-level history
// recorded for linearizability checking.
//
// The execution-tree explorer (package explore) enumerates all behaviors
// of small instances; this runtime samples behaviors of large instances at
// speed, complementing the explorer for stress tests and benchmarks.
package runtime

import (
	"errors"
	"fmt"
	"math/rand"
	"runtime/debug"
	"sync"
	"sync/atomic"

	"waitfree/internal/faults"
	"waitfree/internal/hist"
	"waitfree/internal/program"
	"waitfree/internal/sched"
	"waitfree/internal/types"
)

// Object is a thread-safe instantiation of a type spec: invocations apply
// one transition atomically. Nondeterministic transitions are resolved by
// the Resolve function (uniformly at random by default).
type Object struct {
	spec *types.Spec

	mu      sync.Mutex
	state   types.State
	resolve func(n int) int
}

// DefaultSeed seeds the nondeterminism resolver when the caller supplies
// none.
const DefaultSeed int64 = 1

// RandomResolver returns a resolver that picks among nondeterministic
// transitions uniformly at random from the given seed. The returned
// function is safe for concurrent use and may be shared across objects;
// with a fixed seed and a serializing scheduler the whole run is
// reproducible (and the CLIs' -seed flag feeds through here).
func RandomResolver(seed int64) func(n int) int {
	rng := rand.New(rand.NewSource(seed))
	var mu sync.Mutex
	return func(n int) int {
		mu.Lock()
		defer mu.Unlock()
		return rng.Intn(n)
	}
}

// NewObject creates an object of the given type in the given initial
// state. resolve picks among nondeterministic transitions (nil means
// RandomResolver(DefaultSeed), private to this object).
func NewObject(spec *types.Spec, init types.State, resolve func(n int) int) *Object {
	if resolve == nil {
		resolve = RandomResolver(DefaultSeed)
	}
	return &Object{spec: spec, state: init, resolve: resolve}
}

// Spec returns the object's type.
func (o *Object) Spec() *types.Spec { return o.spec }

// State returns the object's current state (for post-run inspection; racy
// if invoked concurrently with Invoke).
func (o *Object) State() types.State {
	o.mu.Lock()
	defer o.mu.Unlock()
	return o.state
}

// Invoke atomically applies inv on the given port and returns the
// response.
func (o *Object) Invoke(port int, inv types.Invocation) (types.Response, error) {
	o.mu.Lock()
	defer o.mu.Unlock()
	ts, err := o.spec.Apply(o.state, port, inv)
	if err != nil {
		return types.Response{}, err
	}
	t := ts[0]
	if len(ts) > 1 {
		// Normalize the user-supplied resolver's pick into [0, len(ts)):
		// Go's % keeps the dividend's sign, so a negative return would
		// otherwise index out of range.
		idx := o.resolve(len(ts)) % len(ts)
		if idx < 0 {
			idx += len(ts)
		}
		t = ts[idx]
	}
	o.state = t.Next
	return t.Resp, nil
}

// Outcome is the result of one concurrent run.
type Outcome struct {
	// Responses[p] lists the responses of process p's completed target
	// operations, in order.
	Responses [][]types.Response
	// History is the target-level concurrent history (Port = proc+1);
	// operations cut short by a crash are pending.
	History hist.History
	// Crashed[p] reports whether process p was stopped by the scheduler
	// and never recovered.
	Crashed []bool
	// Recoveries[p] counts how many times process p crashed and was
	// re-admitted by a sched.RecoverScheduler (always 0 under plain
	// schedulers).
	Recoveries []int
	// Steps is the total number of object accesses performed.
	Steps int64
	// Mems[p] is process p's persistent memory after the run.
	Mems []any
}

// Runner executes an implementation concurrently.
type Runner struct {
	impl    *program.Implementation
	sch     sched.Scheduler
	objects []*Object
}

// New creates a Runner for im with fresh objects. scheduler may be nil
// (free-running). resolve (may be nil) picks nondeterministic transitions
// for all objects.
func New(im *program.Implementation, scheduler sched.Scheduler, resolve func(n int) int) (*Runner, error) {
	if err := im.Validate(); err != nil {
		return nil, err
	}
	if scheduler == nil {
		scheduler = sched.Free{}
	}
	objects := make([]*Object, len(im.Objects))
	for i := range im.Objects {
		objects[i] = NewObject(im.Objects[i].Spec, im.Objects[i].Init, resolve)
	}
	return &Runner{impl: im, sch: scheduler, objects: objects}, nil
}

// Objects exposes the runner's objects for post-run inspection.
func (r *Runner) Objects() []*Object { return r.objects }

// Run executes the scripts (scripts[p] is the sequence of target
// invocations process p performs) and collects the outcome. Mems (may be
// nil) seeds each process's persistent memory.
func (r *Runner) Run(scripts [][]types.Invocation, mems []any) (*Outcome, error) {
	if len(scripts) != r.impl.Procs {
		return nil, fmt.Errorf("runtime: %d scripts for %d processes", len(scripts), r.impl.Procs)
	}
	out := &Outcome{
		Responses:  make([][]types.Response, r.impl.Procs),
		Crashed:    make([]bool, r.impl.Procs),
		Recoveries: make([]int, r.impl.Procs),
		Mems:       make([]any, r.impl.Procs),
	}
	if mems != nil {
		copy(out.Mems, mems)
	}
	var clock atomic.Int64
	var steps atomic.Int64
	histories := make([]hist.History, r.impl.Procs)
	errs := make([]error, r.impl.Procs)

	var wg sync.WaitGroup
	for p := 0; p < r.impl.Procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer r.sch.Done(p)
			// Deferred after Done so it runs first (LIFO): a panic in
			// protocol code is converted into a structured error on this
			// process, and Done is still signalled so serializing schedulers
			// (Token, Stutter) terminate instead of deadlocking the run.
			defer func() {
				if rec := recover(); rec != nil {
					errs[p] = faults.NewPanicError("runtime", p,
						fmt.Sprintf("after %d object accesses", steps.Load()), rec, debug.Stack())
				}
			}()
			errs[p] = r.runProc(p, scripts[p], out, &clock, &steps, &histories[p])
		}(p)
	}
	wg.Wait()

	for _, h := range histories {
		out.History = append(out.History, h...)
	}
	out.Steps = steps.Load()
	var joined []error
	for p, err := range errs {
		if err != nil {
			joined = append(joined, fmt.Errorf("process %d: %w", p, err))
		}
	}
	if len(joined) > 0 {
		return out, errors.Join(joined...)
	}
	return out, nil
}

func (r *Runner) runProc(p int, script []types.Invocation, out *Outcome, clock, steps *atomic.Int64, h *hist.History) error {
	m := r.impl.Machines[p]
	mem := out.Mems[p]
	for _, inv := range script {
	attempt:
		for {
			opIdx := len(*h)
			*h = append(*h, hist.Op{
				Proc:  p,
				Port:  p + 1,
				Inv:   inv,
				Begin: int(clock.Add(1)),
				End:   hist.Pending,
			})
			st := m.Start(inv, mem)
			resp := types.Response{}
			for {
				act, next := m.Next(st, resp)
				st = next
				if act.Kind == program.KindReturn {
					(*h)[opIdx].Resp = act.Resp
					(*h)[opIdx].End = int(clock.Add(1))
					out.Responses[p] = append(out.Responses[p], act.Resp)
					mem = act.Mem
					break attempt
				}
				if act.Kind != program.KindInvoke {
					return fmt.Errorf("invalid action kind %d", act.Kind)
				}
				if act.Obj < 0 || act.Obj >= len(r.objects) {
					return fmt.Errorf("unknown object %d", act.Obj)
				}
				port := r.impl.Objects[act.Obj].Port(p)
				if port == 0 {
					return fmt.Errorf("no port on object %d (%s)", act.Obj, r.impl.Objects[act.Obj].Name)
				}
				if !r.sch.Next(p) {
					if rs, ok := r.sch.(sched.RecoverScheduler); ok && rs.Recover(p) {
						// Crash-recovery: the interrupted operation's history
						// entry stays pending forever (a crashed access never
						// returns), the re-execution opens a fresh entry, and
						// volatile memory is lost while the shared objects
						// persist.
						out.Recoveries[p]++
						mem = nil
						continue attempt
					}
					out.Crashed[p] = true
					out.Mems[p] = mem
					return nil
				}
				clock.Add(1)
				steps.Add(1)
				var err error
				resp, err = r.objects[act.Obj].Invoke(port, act.Inv)
				if err != nil {
					return err
				}
			}
		}
	}
	out.Mems[p] = mem
	return nil
}
