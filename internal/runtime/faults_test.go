package runtime

import (
	"errors"
	gort "runtime"
	"strings"
	"testing"
	"time"

	"waitfree/internal/consensus"
	"waitfree/internal/faults"
	"waitfree/internal/hist"
	"waitfree/internal/program"
	"waitfree/internal/sched"
	"waitfree/internal/types"
)

// waitForGoroutines polls until the goroutine count drops back to at most
// base: every process goroutine and scheduler dispatcher must be joined
// once a run (crashed, panicked, or clean) is over.
func waitForGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(2 * time.Second)
	for time.Now().Before(deadline) {
		if gort.NumGoroutine() <= base {
			return
		}
		time.Sleep(5 * time.Millisecond)
	}
	t.Errorf("goroutine leak: %d running, want <= %d", gort.NumGoroutine(), base)
}

// panicAfterStep is a machine that performs one test-and-set access and
// then panics — protocol code the runtime must survive.
var panicAfterStep = program.FuncMachine{
	StartFn: func(types.Invocation, any) any { return 0 },
	NextFn: func(state any, _ types.Response) (program.Action, any) {
		if state.(int) == 0 {
			return program.InvokeAction(0, types.TAS), 1
		}
		panic("protocol exploded")
	},
}

// wellBehaved decides its proposal after one test-and-set access.
var wellBehaved = program.FuncMachine{
	StartFn: func(inv types.Invocation, _ any) any { return [2]int{0, inv.A} },
	NextFn: func(state any, _ types.Response) (program.Action, any) {
		s := state.([2]int)
		if s[0] == 0 {
			return program.InvokeAction(0, types.TAS), [2]int{1, s[1]}
		}
		return program.ReturnAction(types.ValOf(s[1]), nil), state
	},
}

func mixedImpl() *program.Implementation {
	return &program.Implementation{
		Name:   "mixed",
		Target: types.Consensus(2),
		Procs:  2,
		Objects: []program.ObjectDecl{
			{Name: "t", Spec: types.TestAndSet(2), Init: 0, PortOf: []int{1, 2}},
		},
		Machines: []program.Machine{panicAfterStep, wellBehaved},
	}
}

// TestRunnerPanicRecovery is the panic-safety contract of the concurrent
// runtime: a panic in one process's protocol code becomes a structured
// *faults.PanicError attributed to that process, the other processes
// complete normally, serializing schedulers still terminate (Done is
// signalled on the panic path), and no goroutines leak.
func TestRunnerPanicRecovery(t *testing.T) {
	base := gort.NumGoroutine()
	for _, useToken := range []bool{false, true} {
		var scheduler sched.Scheduler
		var tok *sched.Token
		if useToken {
			tok = sched.NewToken(2, 7, nil)
			scheduler = tok
		}
		r, err := New(mixedImpl(), scheduler, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Run(proposals(0, 1), nil)
		if tok != nil {
			tok.Stop()
		}
		var pe *faults.PanicError
		if !errors.As(err, &pe) {
			t.Fatalf("token=%v: err = %v, want *faults.PanicError", useToken, err)
		}
		if pe.Engine != "runtime" || pe.Proc != 0 {
			t.Errorf("token=%v: panic attributed to %s process %d, want runtime process 0", useToken, pe.Engine, pe.Proc)
		}
		if pe.Value != "protocol exploded" {
			t.Errorf("token=%v: payload %v", useToken, pe.Value)
		}
		if !strings.Contains(string(pe.Stack), "faults_test") {
			t.Errorf("token=%v: stack does not reach the panicking machine:\n%s", useToken, pe.Stack)
		}
		if len(out.Responses[1]) != 1 || out.Responses[1][0].Label != types.LabelVal {
			t.Errorf("token=%v: surviving process did not decide: %v", useToken, out.Responses[1])
		}
	}
	waitForGoroutines(t, base)
}

// TestCrashAtStepZero pins the earliest possible crash: the process is
// stopped before its first object access, never touches an object, and
// the other process still decides its own (valid) proposal.
func TestCrashAtStepZero(t *testing.T) {
	im := consensus.TAS2()
	r, err := New(im, sched.NewCrash(map[int]int{0: 0}), nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Run(proposals(0, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Crashed[0] || out.Crashed[1] {
		t.Fatalf("crashed = %v, want exactly process 0", out.Crashed)
	}
	if len(out.Responses[0]) != 0 {
		t.Errorf("crashed process produced responses %v", out.Responses[0])
	}
	if len(out.Responses[1]) != 1 || out.Responses[1][0] != types.ValOf(1) {
		t.Errorf("survivor decided %v, want its own proposal val(1)", out.Responses[1])
	}
}

// TestCrashEveryProcess crashes the whole run at step zero: no object is
// accessed, every process is marked crashed, nothing is decided, and the
// run still returns cleanly.
func TestCrashEveryProcess(t *testing.T) {
	base := gort.NumGoroutine()
	im := consensus.Queue2()
	for _, mkSched := range []func() sched.Scheduler{
		func() sched.Scheduler { return sched.NewCrash(map[int]int{0: 0, 1: 0}) },
		func() sched.Scheduler { return sched.NewToken(2, 3, map[int]int{0: 0, 1: 0}) },
	} {
		s := mkSched()
		r, err := New(im, s, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Run(proposals(0, 1), nil)
		if tok, ok := s.(*sched.Token); ok {
			tok.Stop()
		}
		if err != nil {
			t.Fatal(err)
		}
		for p, crashed := range out.Crashed {
			if !crashed {
				t.Errorf("process %d not marked crashed", p)
			}
			if len(out.Responses[p]) != 0 {
				t.Errorf("process %d responded after crashing at step 0: %v", p, out.Responses[p])
			}
		}
		if out.Steps != 0 {
			t.Errorf("steps = %d, want 0", out.Steps)
		}
	}
	waitForGoroutines(t, base)
}

// TestRecoverSchedulerFinishes pins the crash-recovery path of the
// runtime: a process crashed by a RecoverScheduler re-enters from its
// recovery section, re-runs the interrupted operation from its start, and
// can complete its script. The interrupted operation's history entry
// stays pending forever; the re-execution opens a fresh one.
func TestRecoverSchedulerFinishes(t *testing.T) {
	base := gort.NumGoroutine()
	im := &program.Implementation{
		Name:   "two-ops",
		Target: types.Consensus(2),
		Procs:  2,
		Objects: []program.ObjectDecl{
			{Name: "t", Spec: types.TestAndSet(2), Init: 0, PortOf: []int{1, 2}},
		},
		Machines: []program.Machine{wellBehaved, wellBehaved},
	}
	// Process 0 crashes after every single access and may recover once:
	// its first one-access operation completes, the second is interrupted,
	// recovered, and re-run to completion.
	r, err := New(im, sched.NewRecover(map[int]int{0: 1}, map[int]int{0: 1}), nil)
	if err != nil {
		t.Fatal(err)
	}
	scripts := [][]types.Invocation{{types.Propose(0), types.Propose(1)}, {}}
	out, err := r.Run(scripts, nil)
	if err != nil {
		t.Fatal(err)
	}
	if out.Crashed[0] || out.Crashed[1] {
		t.Fatalf("crashed = %v, want none (the crash was recovered)", out.Crashed)
	}
	if out.Recoveries[0] != 1 || out.Recoveries[1] != 0 {
		t.Fatalf("recoveries = %v, want [1 0]", out.Recoveries)
	}
	if len(out.Responses[0]) != 2 {
		t.Fatalf("recovered process responded %v, want both operations decided", out.Responses[0])
	}
	// History: op 1 complete, op 2's interrupted attempt pending forever,
	// op 2's re-execution complete.
	var pending, complete int
	for _, op := range out.History {
		if op.End == hist.Pending {
			pending++
		} else {
			complete++
		}
	}
	if pending != 1 || complete != 2 {
		t.Errorf("history has %d pending / %d complete ops, want 1/2:\n%v", pending, complete, out.History)
	}
	waitForGoroutines(t, base)
}

// TestRecoverSchedulerBudgetExhaustion pins the other side: when the
// recovery budget runs out the crash is permanent, exactly as under a
// plain Crash scheduler, and the survivor still decides.
func TestRecoverSchedulerBudgetExhaustion(t *testing.T) {
	base := gort.NumGoroutine()
	im := consensus.TAS2()
	// One access per attempt is never enough for TAS2's two-access winning
	// path, so process 0 burns both recoveries and stays down.
	r, err := New(im, sched.NewRecover(map[int]int{0: 1}, map[int]int{0: 2}), nil)
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Run(proposals(0, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	if !out.Crashed[0] || out.Crashed[1] {
		t.Fatalf("crashed = %v, want exactly process 0", out.Crashed)
	}
	if out.Recoveries[0] != 2 {
		t.Errorf("recoveries[0] = %d, want the whole budget of 2", out.Recoveries[0])
	}
	if len(out.Responses[0]) != 0 {
		t.Errorf("crashed process produced responses %v", out.Responses[0])
	}
	if len(out.Responses[1]) != 1 || out.Responses[1][0] != types.ValOf(1) {
		t.Errorf("survivor decided %v, want its own proposal val(1)", out.Responses[1])
	}
	waitForGoroutines(t, base)
}

// TestDoneWithoutNext pins the scheduler Done contract from the caller
// side: a process with an empty script finishes without ever calling
// Next, and serializing schedulers must count its bare Done call.
func TestDoneWithoutNext(t *testing.T) {
	base := gort.NumGoroutine()
	im := consensus.TAS2()
	tok := sched.NewToken(2, 5, nil)
	r, err := New(im, tok, nil)
	if err != nil {
		t.Fatal(err)
	}
	scripts := [][]types.Invocation{{}, {types.Propose(1)}}
	out, err := r.Run(scripts, nil)
	tok.Stop()
	if err != nil {
		t.Fatal(err)
	}
	if len(out.Responses[0]) != 0 {
		t.Errorf("empty script produced responses %v", out.Responses[0])
	}
	if len(out.Responses[1]) != 1 || out.Responses[1][0] != types.ValOf(1) {
		t.Errorf("process 1 decided %v, want val(1)", out.Responses[1])
	}
	waitForGoroutines(t, base)
}

// TestStutterSchedulerWaitFreedom runs correct protocols with one process
// maximally delayed: a wait-free implementation must complete every
// operation anyway, agreeing and deciding validly, with nobody marked
// crashed.
func TestStutterSchedulerWaitFreedom(t *testing.T) {
	base := gort.NumGoroutine()
	for _, mk := range []func() *program.Implementation{consensus.TAS2, consensus.Queue2} {
		im := mk()
		for victim := 0; victim < im.Procs; victim++ {
			r, err := New(im, sched.NewStutter(im.Procs, victim, 4), nil)
			if err != nil {
				t.Fatal(err)
			}
			out, err := r.Run(proposals(0, 1), nil)
			if err != nil {
				t.Fatalf("%s victim=%d: %v", im.Name, victim, err)
			}
			for p, crashed := range out.Crashed {
				if crashed {
					t.Errorf("%s victim=%d: process %d marked crashed under stutter", im.Name, victim, p)
				}
			}
			d0, d1 := out.Responses[0][0], out.Responses[1][0]
			if d0 != d1 || (d0.Val != 0 && d0.Val != 1) {
				t.Errorf("%s victim=%d: decisions %v vs %v", im.Name, victim, d0, d1)
			}
		}
	}
	waitForGoroutines(t, base)
}

// TestSeededResolverReproducible pins the seedable nondeterminism path:
// the same resolver seed and scheduler seed reproduce a nondeterministic
// protocol's run exactly; the resolver default is the documented
// DefaultSeed.
func TestSeededResolverReproducible(t *testing.T) {
	run := func(seed int64) [][]types.Response {
		im := consensus.NoisySticky2()
		tok := sched.NewToken(im.Procs, 11, nil)
		r, err := New(im, tok, RandomResolver(seed))
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Run(proposals(0, 1), nil)
		tok.Stop()
		if err != nil {
			t.Fatal(err)
		}
		return out.Responses
	}
	for seed := int64(0); seed < 5; seed++ {
		a, b := run(seed), run(seed)
		for p := range a {
			if len(a[p]) != len(b[p]) {
				t.Fatalf("seed %d: response counts differ for process %d", seed, p)
			}
			for i := range a[p] {
				if a[p][i] != b[p][i] {
					t.Fatalf("seed %d: run not reproducible: %v vs %v", seed, a[p], b[p])
				}
			}
		}
	}
}
