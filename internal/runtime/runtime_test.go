package runtime

import (
	"testing"

	"waitfree/internal/consensus"
	"waitfree/internal/linearize"
	"waitfree/internal/program"
	"waitfree/internal/sched"
	"waitfree/internal/types"
)

func proposals(vals ...int) [][]types.Invocation {
	scripts := make([][]types.Invocation, len(vals))
	for p, v := range vals {
		scripts[p] = []types.Invocation{types.Propose(v)}
	}
	return scripts
}

func TestObjectInvoke(t *testing.T) {
	o := NewObject(types.TestAndSet(2), 0, nil)
	r1, err := o.Invoke(1, types.TAS)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := o.Invoke(2, types.TAS)
	if err != nil {
		t.Fatal(err)
	}
	if r1 != types.ValOf(0) || r2 != types.ValOf(1) {
		t.Errorf("tas responses = %v, %v", r1, r2)
	}
	if o.State() != 1 {
		t.Errorf("state = %v", o.State())
	}
	if _, err := o.Invoke(5, types.TAS); err == nil {
		t.Error("bad port accepted")
	}
}

func TestObjectNondeterministicResolution(t *testing.T) {
	// Force the resolver to pick the second branch of a DEAD one-use-bit
	// read, which returns 1.
	o := NewObject(types.OneUseBit(), types.OneUseDead, func(n int) int { return 1 })
	r, err := o.Invoke(1, types.Read)
	if err != nil {
		t.Fatal(err)
	}
	if r != types.ValOf(1) {
		t.Errorf("forced branch response = %v", r)
	}
}

func TestObjectNegativeResolveNormalized(t *testing.T) {
	// A user-supplied resolver may return any int; Invoke must normalize
	// the pick into [0, len(ts)) — Go's % keeps the dividend's sign, so a
	// negative return used to index out of range and panic.
	for _, pick := range []int{-1, -2, -7} {
		o := NewObject(types.OneUseBit(), types.OneUseDead, func(n int) int { return pick })
		r, err := o.Invoke(1, types.Read)
		if err != nil {
			t.Fatalf("resolve=%d: %v", pick, err)
		}
		if r != types.ValOf(0) && r != types.ValOf(1) {
			t.Errorf("resolve=%d: response %v", pick, r)
		}
	}
	// A full run with an always-negative resolver must still satisfy
	// agreement and validity.
	im := consensus.NoisySticky2()
	r, err := New(im, nil, func(int) int { return -1 })
	if err != nil {
		t.Fatal(err)
	}
	out, err := r.Run(proposals(0, 1), nil)
	if err != nil {
		t.Fatal(err)
	}
	d0, d1 := out.Responses[0][0], out.Responses[1][0]
	if d0 != d1 {
		t.Fatalf("disagreement %v vs %v", d0, d1)
	}
	if d0.Val != 0 && d0.Val != 1 {
		t.Fatalf("invalid decision %v", d0)
	}
}

func TestConsensusUnderFreeScheduler(t *testing.T) {
	for i := 0; i < 50; i++ {
		r, err := New(consensus.TAS2(), nil, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Run(proposals(0, 1), nil)
		if err != nil {
			t.Fatal(err)
		}
		d0 := out.Responses[0][0]
		d1 := out.Responses[1][0]
		if d0 != d1 {
			t.Fatalf("run %d: disagreement %v vs %v", i, d0, d1)
		}
		if d0.Val != 0 && d0.Val != 1 {
			t.Fatalf("run %d: invalid decision %v", i, d0)
		}
	}
}

func TestConsensusUnderTokenSchedulerManySeeds(t *testing.T) {
	for seed := int64(0); seed < 40; seed++ {
		for _, mk := range []func() *program.Implementation{
			consensus.TAS2, consensus.Queue2, consensus.FAA2, consensus.WeakLeader2,
		} {
			im := mk()
			tok := sched.NewToken(im.Procs, seed, nil)
			r, err := New(im, tok, nil)
			if err != nil {
				t.Fatal(err)
			}
			out, err := r.Run(proposals(0, 1), nil)
			tok.Stop()
			if err != nil {
				t.Fatalf("%s seed %d: %v", im.Name, seed, err)
			}
			if out.Responses[0][0] != out.Responses[1][0] {
				t.Fatalf("%s seed %d: disagreement %v vs %v",
					im.Name, seed, out.Responses[0][0], out.Responses[1][0])
			}
		}
	}
}

func TestCrashToleranceWaitFreedom(t *testing.T) {
	// Crash process 0 after each possible number of steps; process 1 must
	// always complete with a valid decision (wait-freedom under stopping
	// failures).
	for crashAfter := 0; crashAfter <= 4; crashAfter++ {
		im := consensus.TAS2()
		cr := sched.NewCrash(map[int]int{0: crashAfter})
		r, err := New(im, cr, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Run(proposals(1, 0), nil)
		if err != nil {
			t.Fatal(err)
		}
		if crashAfter < 2 && !out.Crashed[0] {
			// Every path of TAS2 takes at least 2 steps (announce + tas),
			// so a budget below 2 always crashes process 0. (With a larger
			// budget the process may win and finish within it.)
			t.Errorf("crashAfter=%d: process 0 did not crash", crashAfter)
		}
		if len(out.Responses[1]) != 1 {
			t.Fatalf("crashAfter=%d: survivor did not decide", crashAfter)
		}
		d := out.Responses[1][0]
		if d.Val != 0 && d.Val != 1 {
			t.Fatalf("crashAfter=%d: invalid decision %v", crashAfter, d)
		}
		// The survivor's history operation must be complete, the crashed
		// process's possibly pending.
		if err := out.History.Validate(); err != nil {
			t.Fatalf("crashAfter=%d: malformed history: %v", crashAfter, err)
		}
	}
}

func TestHistoryLinearizableAgainstConsensusSpec(t *testing.T) {
	for seed := int64(0); seed < 20; seed++ {
		im := consensus.Queue2()
		tok := sched.NewToken(im.Procs, seed, nil)
		r, err := New(im, tok, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Run(proposals(0, 1), nil)
		tok.Stop()
		if err != nil {
			t.Fatal(err)
		}
		h := out.History.Complete()
		if _, err := linearize.Check(types.Consensus(2), types.ConsensusUndecided, h); err != nil {
			t.Fatalf("seed %d: %v\nhistory: %v", seed, err, h)
		}
	}
}

func TestRunShapeErrors(t *testing.T) {
	r, err := New(consensus.TAS2(), nil, nil)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := r.Run(nil, nil); err == nil {
		t.Error("script count mismatch accepted")
	}
}

func TestTokenSchedulerIsReproducible(t *testing.T) {
	// The Token scheduler makes the access interleaving — and therefore
	// every response and final object state — a deterministic function of
	// the seed. (History clock stamps are not covered: Begin/End ticks are
	// taken outside the scheduler gate.)
	type fingerprint struct {
		d0, d1 types.Response
		steps  int64
		state  types.State
	}
	runOnce := func(seed int64) fingerprint {
		im := consensus.FAA2()
		tok := sched.NewToken(im.Procs, seed, nil)
		r, err := New(im, tok, nil)
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Run(proposals(0, 1), nil)
		tok.Stop()
		if err != nil {
			t.Fatal(err)
		}
		return fingerprint{
			d0:    out.Responses[0][0],
			d1:    out.Responses[1][0],
			steps: out.Steps,
			state: r.Objects()[0].State(),
		}
	}
	for seed := int64(0); seed < 10; seed++ {
		a := runOnce(seed)
		b := runOnce(seed)
		if a != b {
			t.Errorf("seed %d: %+v vs %+v", seed, a, b)
		}
	}
}

// TestNondeterministicObjectsUnderTokenScheduler drives the noisy-sticky
// consensus protocol — whose object has adversarial unstuck reads — with
// seeded schedulers and seeded nondeterminism resolution: agreement and
// validity must hold in every sampled run.
func TestNondeterministicObjectsUnderTokenScheduler(t *testing.T) {
	for seed := int64(0); seed < 25; seed++ {
		im := consensus.NoisySticky2()
		tok := sched.NewToken(im.Procs, seed, nil)
		resolveRng := seed
		r, err := New(im, tok, func(n int) int {
			resolveRng = resolveRng*6364136223846793005 + 1
			v := int(resolveRng>>33) % n
			if v < 0 {
				v = -v
			}
			return v
		})
		if err != nil {
			t.Fatal(err)
		}
		out, err := r.Run(proposals(0, 1), nil)
		tok.Stop()
		if err != nil {
			t.Fatal(err)
		}
		d0, d1 := out.Responses[0][0], out.Responses[1][0]
		if d0 != d1 {
			t.Fatalf("seed %d: disagreement %v vs %v", seed, d0, d1)
		}
		if d0.Val != 0 && d0.Val != 1 {
			t.Fatalf("seed %d: invalid decision %v", seed, d0)
		}
	}
}
