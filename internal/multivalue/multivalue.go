// Package multivalue implements k-valued n-process consensus from BINARY
// consensus objects plus registers — the classic bit-by-bit agreement
// construction. It closes a gap between the paper's binary consensus type
// T_{c,n} (Section 2.1) and the multi-valued consensus that Herlihy's
// universality theorem consumes: binary consensus loses no generality.
//
// The construction: every process announces its proposal in a register,
// then the processes agree on the decision one bit at a time (most
// significant first) using one binary consensus object per bit. At bit
// round j, a process whose own proposal is consistent with the agreed
// prefix proposes its own j-th bit; a process whose proposal has fallen
// off the prefix scans the announcement registers for some announced value
// consistent with the prefix — one always exists, because every agreed bit
// was proposed by some process holding a consistent announced value — and
// champions that value's j-th bit. After all rounds the prefix IS an
// announced value, which gives validity; agreement is inherited from the
// binary objects; wait-freedom is clear (at most B(n+1)+1 accesses).
package multivalue

import (
	"fmt"

	"waitfree/internal/program"
	"waitfree/internal/types"
)

// Bits returns the number of bit rounds needed for values 0..k-1.
func Bits(k int) int {
	b := 0
	for 1<<uint(b) < k {
		b++
	}
	if b == 0 {
		b = 1
	}
	return b
}

// bitOf extracts bit j of v, counting j = 0 as the MOST significant of b
// bits.
func bitOf(v, j, b int) int {
	return (v >> uint(b-1-j)) & 1
}

// prefixMatches reports whether value v agrees with the agreed prefix of
// length plen (prefix holds bits packed MSB first, out of b total bits).
func prefixMatches(v, prefix, plen, b int) bool {
	if plen == 0 {
		return true
	}
	return (v >> uint(b-plen)) == prefix
}

// mvState is the machine state of one process.
//
// Phases: announce own value; per bit round: either propose directly (own
// value consistent) or scan announcements first; compose the decision.
type mvState struct {
	PC     int // 0 = announce; 1 = round entry; 2 = scanning; 3 = proposing
	V      int // own proposal
	Round  int // current bit round
	Prefix int // agreed bits so far (packed, MSB first)
	Scan   int // announcement index being scanned
	Champ  int // value whose bit we champion this round
}

// Object layout: announce[0..procs-1], then bits[0..B-1].
func announceObj(p int) int         { return p }
func bitObj(procs, j int) int       { return procs + j }
func totalObjects(procs, b int) int { return procs + b }

// machine builds process p's program.
func machine(p, procs, k int) program.Machine {
	b := Bits(k)
	return program.FuncMachine{
		StartFn: func(inv types.Invocation, _ any) any {
			return mvState{PC: 0, V: inv.A}
		},
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s, ok := state.(mvState)
			if !ok {
				panic("multivalue: machine driven with foreign state")
			}
			for {
				switch s.PC {
				case 0:
					// Announce the proposal (+1 so that 0 means "empty").
					s.PC = 1
					return program.InvokeAction(announceObj(p), types.Write(s.V+1)), s
				case 1:
					// Round entry: all bits agreed?
					if s.Round == b {
						return program.ReturnAction(types.ValOf(s.Prefix), nil), s
					}
					if prefixMatches(s.V, s.Prefix, s.Round, b) {
						s.Champ = s.V
						s.PC = 3
						continue
					}
					s.Scan = 0
					s.PC = 2
					return program.InvokeAction(announceObj(0), types.Read), s
				case 2:
					// Scanning announcements for a prefix-consistent value.
					if resp.Val != 0 && prefixMatches(resp.Val-1, s.Prefix, s.Round, b) {
						s.Champ = resp.Val - 1
						s.PC = 3
						continue
					}
					s.Scan++
					if s.Scan >= procs {
						// Unreachable by the invariant; champion own value
						// so the machine stays total.
						s.Champ = s.V
						s.PC = 3
						continue
					}
					return program.InvokeAction(announceObj(s.Scan), types.Read), s
				case 3:
					// Propose the champion's bit for this round.
					s.PC = 4
					return program.InvokeAction(bitObj(procs, s.Round),
						types.Propose(bitOf(s.Champ, s.Round, b))), s
				case 4:
					// Fold the agreed bit into the prefix.
					s.Prefix = s.Prefix<<1 | resp.Val
					s.Round++
					s.PC = 1
				default:
					panic(fmt.Sprintf("multivalue: invalid pc %d", s.PC))
				}
			}
		},
	}
}

// FromBinary builds k-valued consensus for procs processes from B binary
// consensus objects and procs announcement registers (multi-reader,
// single-writer by discipline).
func FromBinary(procs, k int) *program.Implementation {
	b := Bits(k)
	objects := make([]program.ObjectDecl, 0, totalObjects(procs, b))
	for p := 0; p < procs; p++ {
		objects = append(objects, program.ObjectDecl{
			Name:   fmt.Sprintf("announce%d", p),
			Spec:   types.Register(procs, k+1),
			Init:   0,
			PortOf: program.AllPorts(procs),
		})
	}
	for j := 0; j < b; j++ {
		objects = append(objects, program.ObjectDecl{
			Name:   fmt.Sprintf("bit%d", j),
			Spec:   types.Consensus(procs),
			Init:   types.ConsensusUndecided,
			PortOf: program.AllPorts(procs),
		})
	}
	machines := make([]program.Machine, procs)
	for p := range machines {
		machines[p] = machine(p, procs, k)
	}
	return &program.Implementation{
		Name:     fmt.Sprintf("multivalue-consensus(n=%d,k=%d)", procs, k),
		Target:   types.MultiConsensus(procs, k),
		Procs:    procs,
		Objects:  objects,
		Machines: machines,
	}
}

// FromBinarySRSW is the 2-process variant whose announcement registers are
// single-reader single-writer (each process reads only the other's
// announcement), making it a valid input for the Theorem 5 pipeline after
// core.CompileSRSWRegisters turns the k-valued registers into bits. The
// scan phase is specialized: a process with an inconsistent value reads
// the OTHER process's announcement (the only other candidate).
func FromBinarySRSW(k int) *program.Implementation {
	const procs = 2
	b := Bits(k)
	mkMachine := func(p int) program.Machine {
		other := 1 - p
		return program.FuncMachine{
			StartFn: func(inv types.Invocation, _ any) any {
				return mvState{PC: 0, V: inv.A}
			},
			NextFn: func(state any, resp types.Response) (program.Action, any) {
				s, ok := state.(mvState)
				if !ok {
					panic("multivalue: machine driven with foreign state")
				}
				for {
					switch s.PC {
					case 0:
						s.PC = 1
						return program.InvokeAction(announceObj(p), types.Write(s.V+1)), s
					case 1:
						if s.Round == b {
							return program.ReturnAction(types.ValOf(s.Prefix), nil), s
						}
						if prefixMatches(s.V, s.Prefix, s.Round, b) {
							s.Champ = s.V
							s.PC = 3
							continue
						}
						s.PC = 2
						return program.InvokeAction(announceObj(other), types.Read), s
					case 2:
						if resp.Val != 0 && prefixMatches(resp.Val-1, s.Prefix, s.Round, b) {
							s.Champ = resp.Val - 1
						} else {
							s.Champ = s.V // unreachable by the invariant
						}
						s.PC = 3
						continue
					case 3:
						s.PC = 4
						return program.InvokeAction(bitObj(procs, s.Round),
							types.Propose(bitOf(s.Champ, s.Round, b))), s
					case 4:
						s.Prefix = s.Prefix<<1 | resp.Val
						s.Round++
						s.PC = 1
					default:
						panic(fmt.Sprintf("multivalue: invalid pc %d", s.PC))
					}
				}
			},
		}
	}
	objects := []program.ObjectDecl{
		// announce0 written by process 0, read by process 1.
		{Name: "announce0", Spec: types.SRSWRegister(k + 1), Init: 0, PortOf: program.PairPorts(procs, 1, 0)},
		// announce1 written by process 1, read by process 0.
		{Name: "announce1", Spec: types.SRSWRegister(k + 1), Init: 0, PortOf: program.PairPorts(procs, 0, 1)},
	}
	for j := 0; j < b; j++ {
		objects = append(objects, program.ObjectDecl{
			Name:   fmt.Sprintf("bit%d", j),
			Spec:   types.Consensus(procs),
			Init:   types.ConsensusUndecided,
			PortOf: program.AllPorts(procs),
		})
	}
	return &program.Implementation{
		Name:     fmt.Sprintf("multivalue-srsw-consensus(k=%d)", k),
		Target:   types.MultiConsensus(procs, k),
		Procs:    procs,
		Objects:  objects,
		Machines: []program.Machine{mkMachine(0), mkMachine(1)},
	}
}
