package multivalue

import (
	"testing"

	"waitfree/internal/explore"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

func TestBits(t *testing.T) {
	tests := []struct{ k, want int }{
		{2, 1}, {3, 2}, {4, 2}, {5, 3}, {8, 3}, {9, 4},
	}
	for _, tt := range tests {
		if got := Bits(tt.k); got != tt.want {
			t.Errorf("Bits(%d) = %d, want %d", tt.k, got, tt.want)
		}
	}
}

func TestBitOf(t *testing.T) {
	// v = 5 = 101 with b = 3: MSB first.
	if bitOf(5, 0, 3) != 1 || bitOf(5, 1, 3) != 0 || bitOf(5, 2, 3) != 1 {
		t.Errorf("bitOf(5, ., 3) = %d%d%d", bitOf(5, 0, 3), bitOf(5, 1, 3), bitOf(5, 2, 3))
	}
}

func TestPrefixMatches(t *testing.T) {
	// b = 3, v = 5 = 101: prefixes 1, 10, 101.
	if !prefixMatches(5, 0, 0, 3) {
		t.Error("empty prefix must match")
	}
	if !prefixMatches(5, 1, 1, 3) || prefixMatches(5, 0, 1, 3) {
		t.Error("1-bit prefix broken")
	}
	if !prefixMatches(5, 2, 2, 3) || prefixMatches(5, 3, 2, 3) {
		t.Error("2-bit prefix broken")
	}
	if !prefixMatches(5, 5, 3, 3) {
		t.Error("full prefix broken")
	}
}

// TestFromBinaryExhaustive model-checks the construction over every
// proposal vector, interleaving — the heart of the module.
func TestFromBinaryExhaustive(t *testing.T) {
	cases := []struct{ procs, k int }{
		{2, 2}, {2, 3}, {2, 4},
	}
	for _, tc := range cases {
		im := FromBinary(tc.procs, tc.k)
		if err := im.Validate(); err != nil {
			t.Fatalf("n=%d k=%d: %v", tc.procs, tc.k, err)
		}
		report, err := explore.ConsensusK(im, tc.k, explore.Options{Memoize: true})
		if err != nil {
			t.Fatal(err)
		}
		if !report.OK() {
			t.Fatalf("n=%d k=%d: %s\n%v", tc.procs, tc.k, report.Summary(), report.Violation)
		}
		if len(report.Decisions) != tc.k {
			t.Errorf("n=%d k=%d: decisions %v, want all %d values reachable",
				tc.procs, tc.k, report.Decisions, tc.k)
		}
	}
}

func TestFromBinaryThreeProcs(t *testing.T) {
	if testing.Short() {
		t.Skip("exhaustive 3-process exploration")
	}
	im := FromBinary(3, 3)
	report, err := explore.ConsensusK(im, 3, explore.Options{Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	if !report.OK() {
		t.Fatalf("%s\n%v", report.Summary(), report.Violation)
	}
}

func TestFromBinarySRSWExhaustive(t *testing.T) {
	for _, k := range []int{2, 3, 4} {
		im := FromBinarySRSW(k)
		if err := im.Validate(); err != nil {
			t.Fatalf("k=%d: %v", k, err)
		}
		report, err := explore.ConsensusK(im, k, explore.Options{Memoize: true})
		if err != nil {
			t.Fatal(err)
		}
		if !report.OK() {
			t.Fatalf("k=%d: %s\n%v", k, report.Summary(), report.Violation)
		}
	}
}

func TestSoloDecidesOwnValue(t *testing.T) {
	for _, k := range []int{3, 4} {
		ims := []*program.Implementation{FromBinary(2, k), FromBinarySRSW(k)}
		for _, im := range ims {
			for p := 0; p < im.Procs; p++ {
				for v := 0; v < k; v++ {
					states := im.InitialStates()
					res, err := program.Solo(im, states, p, types.Propose(v), nil, 200)
					if err != nil {
						t.Fatalf("%s p%d v%d: %v", im.Name, p, v, err)
					}
					if res.Resp != types.ValOf(v) {
						t.Errorf("%s: solo p%d propose(%d) decided %v", im.Name, p, v, res.Resp)
					}
				}
			}
		}
	}
}

// TestAnnouncementsAreSingleWriter checks the register discipline the
// construction promises: announce[p] is written only by process p.
func TestAnnouncementsAreSingleWriter(t *testing.T) {
	im := FromBinary(2, 4)
	report, err := explore.ConsensusK(im, 4, explore.Options{Memoize: true})
	if err != nil {
		t.Fatal(err)
	}
	for p := 0; p < 2; p++ {
		if got := report.OpAccess[announceObj(p)][types.OpWrite]; got != 1 {
			t.Errorf("announce%d written %d times on some path, want 1", p, got)
		}
	}
}
