package program

import "waitfree/internal/types"

// This file provides machine combinators used when implementations are
// composed or rewritten: shifting object indices when one implementation's
// objects are spliced into another's object table, fixing the target
// invocation, and mapping final responses. All combinators pass machine
// states and memories through unchanged, preserving comparability.

// offsetMachine shifts every Invoke action's object index by delta.
type offsetMachine struct {
	inner Machine
	delta int
}

var _ Machine = offsetMachine{}

// Offset returns m with all object indices shifted by delta.
func Offset(m Machine, delta int) Machine {
	if delta == 0 {
		return m
	}
	return offsetMachine{inner: m, delta: delta}
}

func (o offsetMachine) Start(inv types.Invocation, mem any) any { return o.inner.Start(inv, mem) }

func (o offsetMachine) Next(state any, resp types.Response) (Action, any) {
	act, next := o.inner.Next(state, resp)
	if act.Kind == KindInvoke {
		act.Obj += o.delta
	}
	return act, next
}

// bindMachine fixes the target invocation passed to Start.
type bindMachine struct {
	inner Machine
	inv   types.Invocation
}

var _ Machine = bindMachine{}

// Bind returns m started with the fixed invocation inv, regardless of the
// target invocation the caller was given. It is used when a machine for
// one target operation (for example propose(0)) implements a differently
// named operation (for example read).
func Bind(m Machine, inv types.Invocation) Machine {
	return bindMachine{inner: m, inv: inv}
}

func (b bindMachine) Start(_ types.Invocation, mem any) any { return b.inner.Start(b.inv, mem) }

func (b bindMachine) Next(state any, resp types.Response) (Action, any) {
	return b.inner.Next(state, resp)
}

// mapRespMachine rewrites the final response.
type mapRespMachine struct {
	inner Machine
	f     func(types.Response) types.Response
}

var _ Machine = mapRespMachine{}

// MapResponse returns m with its final response passed through f.
func MapResponse(m Machine, f func(types.Response) types.Response) Machine {
	return mapRespMachine{inner: m, f: f}
}

func (m mapRespMachine) Start(inv types.Invocation, mem any) any { return m.inner.Start(inv, mem) }

func (m mapRespMachine) Next(state any, resp types.Response) (Action, any) {
	act, next := m.inner.Next(state, resp)
	if act.Kind == KindReturn {
		act.Resp = m.f(act.Resp)
	}
	return act, next
}
