package program

import (
	"errors"
	"fmt"

	"waitfree/internal/types"
)

// ObjectDecl declares one implementing object of an implementation: its
// type, initial state, and the port through which each process accesses it
// (Section 2.2: "the implementation should specify, for each object, the
// port number of each process that accesses it; at most one process may
// use a port").
type ObjectDecl struct {
	Name string
	Spec *types.Spec
	Init types.State
	// PortOf[p] is the 1-based port used by process p, or 0 if process p
	// never accesses the object.
	PortOf []int
}

// Port returns the port used by process p, or 0 if p has no port.
func (d *ObjectDecl) Port(p int) int {
	if p < 0 || p >= len(d.PortOf) {
		return 0
	}
	return d.PortOf[p]
}

// AllPorts assigns process p the port p+1 on an object with at least
// procs ports (the natural assignment for oblivious shared objects).
func AllPorts(procs int) []int {
	ports := make([]int, procs)
	for p := range ports {
		ports[p] = p + 1
	}
	return ports
}

// PairPorts assigns exactly two processes to ports 1 and 2: the reader
// process to port 1 and the writer process to port 2 (the convention of
// SRSW bits, one-use bits, and the Section 5.2 construction). All other
// processes get no port.
func PairPorts(procs, readerProc, writerProc int) []int {
	ports := make([]int, procs)
	ports[readerProc] = 1
	ports[writerProc] = 2
	return ports
}

// Implementation is a full Section 2.2 implementation of a target type: a
// set of initialized objects plus one deterministic program per process.
// Machines[p] handles every target invocation by process p (the target
// invocation is passed to Start, which corresponds to selecting the
// program P_jk for that invocation).
type Implementation struct {
	Name     string
	Target   *types.Spec
	Procs    int
	Objects  []ObjectDecl
	Machines []Machine
	// SymmetricProcs declares that the processes are interchangeable: every
	// machine runs the same program (behaviorally identical for identical
	// target invocations), so renaming processes maps executions to
	// executions. The declaration is the scalarset idiom of symmetry-reduced
	// model checking — it cannot be verified mechanically (machines are
	// functions), but explore verifies its observable consequences on the
	// object declarations and at every execution-tree root before relying on
	// it. Constructors that build one shared Machine value for all processes
	// should set it; per-process closures (port-aware protocols) must not.
	SymmetricProcs bool
}

// Errors reported by Validate.
var (
	ErrNoMachines  = errors.New("program: implementation machine count does not match process count")
	ErrBadObjectID = errors.New("program: object declaration invalid")
)

// Validate checks structural well-formedness: machine count, object
// declarations, port ranges, and the at-most-one-process-per-port rule.
func (im *Implementation) Validate() error {
	if len(im.Machines) != im.Procs {
		return fmt.Errorf("%w: %d machines for %d processes", ErrNoMachines, len(im.Machines), im.Procs)
	}
	for i := range im.Objects {
		obj := &im.Objects[i]
		if obj.Spec == nil {
			return fmt.Errorf("%w: object %d (%s) has no spec", ErrBadObjectID, i, obj.Name)
		}
		if len(obj.PortOf) != im.Procs {
			return fmt.Errorf("%w: object %d (%s) assigns ports for %d of %d processes",
				ErrBadObjectID, i, obj.Name, len(obj.PortOf), im.Procs)
		}
		used := make(map[int]int, im.Procs)
		for p, port := range obj.PortOf {
			if port == 0 {
				continue
			}
			if port < 1 || port > obj.Spec.Ports {
				return fmt.Errorf("%w: object %d (%s) gives process %d port %d of %d",
					ErrBadObjectID, i, obj.Name, p, port, obj.Spec.Ports)
			}
			if prev, ok := used[port]; ok {
				return fmt.Errorf("%w: object %d (%s) port %d shared by processes %d and %d",
					ErrBadObjectID, i, obj.Name, port, prev, p)
			}
			used[port] = p
		}
	}
	return nil
}

// InitialStates returns a fresh slice of the objects' initial states.
func (im *Implementation) InitialStates() []types.State {
	states := make([]types.State, len(im.Objects))
	for i := range im.Objects {
		states[i] = im.Objects[i].Init
	}
	return states
}

// CountObjects returns how many objects have the given spec name.
func (im *Implementation) CountObjects(specName string) int {
	n := 0
	for i := range im.Objects {
		if im.Objects[i].Spec.Name == specName {
			n++
		}
	}
	return n
}

// String summarizes the implementation for diagnostics.
func (im *Implementation) String() string {
	counts := make(map[string]int)
	for i := range im.Objects {
		counts[im.Objects[i].Spec.Name]++
	}
	return fmt.Sprintf("%s: %d procs, %d objects %v", im.Name, im.Procs, len(im.Objects), counts)
}
