package program

import (
	"errors"
	"fmt"

	"waitfree/internal/types"
)

// ErrStepBudget reports a machine that did not return within the solo
// driver's step budget (evidence against wait-freedom).
var ErrStepBudget = errors.New("program: machine exceeded step budget")

// SoloResult is the outcome of driving one process alone.
type SoloResult struct {
	Resp  types.Response // target response
	Steps int            // object accesses performed
	Mem   any            // persistent memory after the operation
}

// Solo drives process p's machine for one target invocation with no other
// process taking steps, mutating the supplied object states in place. It
// resolves nondeterministic object transitions by taking the first allowed
// branch and enforces a step budget. Solo is the reference driver used by
// unit tests and by sequential sanity checks; concurrent execution lives in
// packages explore and runtime.
func Solo(im *Implementation, states []types.State, p int, inv types.Invocation, mem any, budget int) (SoloResult, error) {
	if err := im.Validate(); err != nil {
		return SoloResult{}, err
	}
	if p < 0 || p >= im.Procs {
		return SoloResult{}, fmt.Errorf("program: process %d out of range", p)
	}
	if len(states) != len(im.Objects) {
		return SoloResult{}, fmt.Errorf("program: %d states for %d objects", len(states), len(im.Objects))
	}
	m := im.Machines[p]
	st := m.Start(inv, mem)
	resp := types.Response{}
	for steps := 0; ; steps++ {
		if steps > budget {
			return SoloResult{}, fmt.Errorf("%w: process %d, %v after %d steps", ErrStepBudget, p, inv, budget)
		}
		act, next := m.Next(st, resp)
		st = next
		switch act.Kind {
		case KindReturn:
			return SoloResult{Resp: act.Resp, Steps: steps, Mem: act.Mem}, nil
		case KindInvoke:
			if act.Obj < 0 || act.Obj >= len(im.Objects) {
				return SoloResult{}, fmt.Errorf("program: process %d invoked unknown object %d", p, act.Obj)
			}
			decl := &im.Objects[act.Obj]
			port := decl.Port(p)
			if port == 0 {
				return SoloResult{}, fmt.Errorf("program: process %d has no port on object %d (%s)", p, act.Obj, decl.Name)
			}
			ts, err := decl.Spec.Apply(states[act.Obj], port, act.Inv)
			if err != nil {
				return SoloResult{}, fmt.Errorf("process %d step %d: %w", p, steps, err)
			}
			states[act.Obj] = ts[0].Next
			resp = ts[0].Resp
		default:
			return SoloResult{}, fmt.Errorf("program: process %d produced invalid action kind %d", p, act.Kind)
		}
	}
}
