// Package program represents the implementations of Section 2.2 of Bazzi,
// Neiger, and Peterson (PODC 1994): deterministic programs, one per process
// and per invocation of a target type, operating on a set of typed shared
// objects.
//
// A program is a Machine: a resumable deterministic step function. Each
// step either invokes an operation on a shared object (one "low-level
// operation" in the paper's execution trees) or returns a response for the
// target invocation. Machine states are comparable Go values, which lets
// the execution-tree explorer (package explore) deduplicate configurations
// and lets transformed machines nest states when implementations are
// rewritten (package core).
//
// Processes may keep local data between target operations (for example the
// reader of the Section 4.3 construction keeps its row index across reads).
// That data is the machine's persistent memory: an opaque comparable value
// handed to Start and returned through the final Return action.
package program

import (
	"fmt"

	"waitfree/internal/types"
)

// Kind discriminates machine actions.
type Kind int

// Machine action kinds.
const (
	KindInvoke Kind = iota + 1
	KindReturn
)

// Action is one step of a machine: either an invocation on a shared object
// (KindInvoke: Obj and Inv are set) or the completion of the target
// operation (KindReturn: Resp carries the target response and Mem the
// process's updated persistent memory).
type Action struct {
	Kind Kind
	Obj  int
	Inv  types.Invocation
	Resp types.Response
	Mem  any
}

// InvokeAction builds an object invocation action.
func InvokeAction(obj int, inv types.Invocation) Action {
	return Action{Kind: KindInvoke, Obj: obj, Inv: inv}
}

// ReturnAction builds a completion action carrying the target response and
// the persistent memory to retain for the process's next target operation.
func ReturnAction(resp types.Response, mem any) Action {
	return Action{Kind: KindReturn, Resp: resp, Mem: mem}
}

// String renders the action for diagnostics.
func (a Action) String() string {
	switch a.Kind {
	case KindInvoke:
		return fmt.Sprintf("invoke obj%d.%v", a.Obj, a.Inv)
	case KindReturn:
		return fmt.Sprintf("return %v", a.Resp)
	}
	return "invalid action"
}

// Machine is the deterministic program run by one process to implement one
// target invocation (Section 2.2's P_jk). Implementations are driven as:
//
//	s := m.Start(inv, mem)
//	act, s := m.Next(s, types.Response{}) // first action
//	for act.Kind == KindInvoke {
//	    resp := ...apply act.Inv to object act.Obj...
//	    act, s = m.Next(s, resp)
//	}
//	// act.Resp is the target response; act.Mem the new persistent memory.
//
// Start receives the target invocation and the process's persistent memory
// (nil before the first operation). Next receives the response to the
// machine's previous Invoke action; the Response zero value is passed on
// the first call after Start. All returned states must be comparable.
type Machine interface {
	Start(inv types.Invocation, mem any) any
	Next(state any, resp types.Response) (Action, any)
}

// FuncMachine adapts a pair of functions to the Machine interface. It is
// the idiomatic way to write protocol machines: define a small comparable
// state struct and switch on it in NextFn.
type FuncMachine struct {
	StartFn func(inv types.Invocation, mem any) any
	NextFn  func(state any, resp types.Response) (Action, any)
}

var _ Machine = FuncMachine{}

// Start implements Machine.
func (m FuncMachine) Start(inv types.Invocation, mem any) any { return m.StartFn(inv, mem) }

// Next implements Machine.
func (m FuncMachine) Next(state any, resp types.Response) (Action, any) {
	return m.NextFn(state, resp)
}

// Const returns a machine that completes immediately with the given
// response, performing no object accesses and preserving memory.
type constState struct{ mem any }

// ConstMachine completes immediately with resp.
func ConstMachine(resp types.Response) Machine {
	return FuncMachine{
		StartFn: func(_ types.Invocation, mem any) any { return constState{mem: mem} },
		NextFn: func(state any, _ types.Response) (Action, any) {
			s, ok := state.(constState)
			if !ok {
				panic("program: ConstMachine driven with foreign state")
			}
			return ReturnAction(resp, s.mem), state
		},
	}
}
