package program

import (
	"errors"
	"strings"
	"testing"

	"waitfree/internal/types"
)

// faaTwiceState is the comparable state of the test machine below.
type faaTwiceState struct {
	PC    int
	First int
}

// faaTwiceMachine increments a fetch-and-add object twice and returns the
// sum of the two observed values.
var faaTwiceMachine = FuncMachine{
	StartFn: func(_ types.Invocation, _ any) any { return faaTwiceState{} },
	NextFn: func(state any, resp types.Response) (Action, any) {
		s := state.(faaTwiceState)
		switch s.PC {
		case 0:
			return InvokeAction(0, types.Inv(types.OpFAA, 1)), faaTwiceState{PC: 1}
		case 1:
			return InvokeAction(0, types.Inv(types.OpFAA, 1)), faaTwiceState{PC: 2, First: resp.Val}
		default:
			return ReturnAction(types.ValOf(s.First+resp.Val), nil), s
		}
	},
}

func faaImpl() *Implementation {
	return &Implementation{
		Name:   "faa-twice",
		Target: types.Register(1, 100),
		Procs:  1,
		Objects: []ObjectDecl{{
			Name:   "ctr",
			Spec:   types.FetchAdd(1),
			Init:   0,
			PortOf: []int{1},
		}},
		Machines: []Machine{faaTwiceMachine},
	}
}

func TestSoloDrivesMachine(t *testing.T) {
	im := faaImpl()
	states := im.InitialStates()
	res, err := Solo(im, states, 0, types.Read, nil, 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resp != types.ValOf(1) { // observed 0 then 1
		t.Errorf("response = %v, want val(1)", res.Resp)
	}
	if res.Steps != 2 {
		t.Errorf("steps = %d, want 2", res.Steps)
	}
	if states[0] != 2 {
		t.Errorf("final counter state = %v, want 2", states[0])
	}
}

func TestSoloPersistentMemory(t *testing.T) {
	// A machine that counts its own target operations in persistent memory
	// and answers with the count.
	type memState struct{ n int }
	m := FuncMachine{
		StartFn: func(_ types.Invocation, mem any) any {
			n := 0
			if prev, ok := mem.(memState); ok {
				n = prev.n
			}
			return memState{n: n + 1}
		},
		NextFn: func(state any, _ types.Response) (Action, any) {
			s := state.(memState)
			return ReturnAction(types.ValOf(s.n), s), state
		},
	}
	im := &Implementation{
		Name:     "op-counter",
		Target:   types.Register(1, 100),
		Procs:    1,
		Objects:  nil,
		Machines: []Machine{m},
	}
	states := im.InitialStates()
	var mem any
	for want := 1; want <= 3; want++ {
		res, err := Solo(im, states, 0, types.Read, mem, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.Resp != types.ValOf(want) {
			t.Fatalf("operation %d answered %v", want, res.Resp)
		}
		mem = res.Mem
	}
}

func TestSoloStepBudget(t *testing.T) {
	// A machine that never returns.
	type spin struct{}
	m := FuncMachine{
		StartFn: func(_ types.Invocation, _ any) any { return spin{} },
		NextFn: func(state any, _ types.Response) (Action, any) {
			return InvokeAction(0, types.Inv(types.OpFAA, 0)), state
		},
	}
	im := faaImpl()
	im.Machines = []Machine{m}
	_, err := Solo(im, im.InitialStates(), 0, types.Read, nil, 5)
	if !errors.Is(err, ErrStepBudget) {
		t.Fatalf("err = %v, want ErrStepBudget", err)
	}
}

func TestConstMachine(t *testing.T) {
	im := &Implementation{
		Name:     "const",
		Target:   types.Register(1, 2),
		Procs:    1,
		Machines: []Machine{ConstMachine(types.OK)},
	}
	res, err := Solo(im, im.InitialStates(), 0, types.Read, "memo", 10)
	if err != nil {
		t.Fatal(err)
	}
	if res.Resp != types.OK || res.Steps != 0 {
		t.Errorf("const machine: resp=%v steps=%d", res.Resp, res.Steps)
	}
	if res.Mem != "memo" {
		t.Errorf("const machine dropped memory: %v", res.Mem)
	}
}

func TestValidateCatchesBadPortAssignments(t *testing.T) {
	base := faaImpl()

	im := *base
	im.Machines = nil
	if err := im.Validate(); !errors.Is(err, ErrNoMachines) {
		t.Errorf("missing machines: err = %v", err)
	}

	im = *base
	im.Objects = []ObjectDecl{{Name: "bad", Spec: types.FetchAdd(1), Init: 0, PortOf: []int{7}}}
	if err := im.Validate(); !errors.Is(err, ErrBadObjectID) {
		t.Errorf("port out of range: err = %v", err)
	}

	im = *base
	im.Procs = 2
	im.Machines = []Machine{faaTwiceMachine, faaTwiceMachine}
	im.Objects = []ObjectDecl{{Name: "shared", Spec: types.FetchAdd(2), Init: 0, PortOf: []int{1, 1}}}
	if err := im.Validate(); !errors.Is(err, ErrBadObjectID) {
		t.Errorf("shared port: err = %v", err)
	}

	im = *base
	im.Objects = []ObjectDecl{{Name: "short", Spec: types.FetchAdd(1), Init: 0, PortOf: nil}}
	if err := im.Validate(); !errors.Is(err, ErrBadObjectID) {
		t.Errorf("short PortOf: err = %v", err)
	}
}

func TestPortHelpers(t *testing.T) {
	if got := AllPorts(3); got[0] != 1 || got[1] != 2 || got[2] != 3 {
		t.Errorf("AllPorts(3) = %v", got)
	}
	got := PairPorts(4, 2, 0)
	want := []int{2, 0, 1, 0}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("PairPorts = %v, want %v", got, want)
		}
	}
}

func TestActionString(t *testing.T) {
	if s := InvokeAction(2, types.Read).String(); !strings.Contains(s, "obj2.read") {
		t.Errorf("invoke action string = %q", s)
	}
	if s := ReturnAction(types.OK, nil).String(); !strings.Contains(s, "return ok") {
		t.Errorf("return action string = %q", s)
	}
}

func TestImplementationString(t *testing.T) {
	s := faaImpl().String()
	if !strings.Contains(s, "faa-twice") || !strings.Contains(s, "1 objects") {
		t.Errorf("String() = %q", s)
	}
}

func TestCountObjects(t *testing.T) {
	im := faaImpl()
	if n := im.CountObjects("fetch-and-add"); n != 1 {
		t.Errorf("CountObjects(faa) = %d", n)
	}
	if n := im.CountObjects("queue"); n != 0 {
		t.Errorf("CountObjects(queue) = %d", n)
	}
}
