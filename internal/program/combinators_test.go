package program

import (
	"testing"

	"waitfree/internal/types"
)

// probe drives a machine against a single fetch-and-add object using the
// Solo driver and reports the final response.
func probe(t *testing.T, m Machine, inv types.Invocation) types.Response {
	t.Helper()
	im := &Implementation{
		Name:   "combinator-probe",
		Target: types.Register(1, 100),
		Procs:  1,
		Objects: []ObjectDecl{
			{Name: "pad", Spec: types.FetchAdd(1), Init: 0, PortOf: []int{1}},
			{Name: "ctr", Spec: types.FetchAdd(1), Init: 10, PortOf: []int{1}},
		},
		Machines: []Machine{m},
	}
	res, err := Solo(im, im.InitialStates(), 0, inv, nil, 20)
	if err != nil {
		t.Fatal(err)
	}
	return res.Resp
}

// faaOnce invokes faa(delta) on object 0 and returns the old value.
func faaOnce(delta int) Machine {
	type st struct{ PC int }
	return FuncMachine{
		StartFn: func(_ types.Invocation, _ any) any { return st{} },
		NextFn: func(state any, resp types.Response) (Action, any) {
			s := state.(st)
			if s.PC == 0 {
				return InvokeAction(0, types.Inv(types.OpFAA, delta)), st{PC: 1}
			}
			return ReturnAction(resp, nil), s
		},
	}
}

func TestOffsetShiftsObjectIndices(t *testing.T) {
	// Unshifted, the machine hits object 0 (init 0); shifted by 1 it hits
	// object 1 (init 10).
	if got := probe(t, faaOnce(1), types.Read); got != types.ValOf(0) {
		t.Fatalf("unshifted response = %v", got)
	}
	if got := probe(t, Offset(faaOnce(1), 1), types.Read); got != types.ValOf(10) {
		t.Fatalf("shifted response = %v", got)
	}
	// Offset(m, 0) is the identity (same machine value).
	m := faaOnce(1)
	if Offset(m, 0) == nil {
		t.Fatal("nil from zero offset")
	}
}

func TestBindFixesInvocation(t *testing.T) {
	// A machine that echoes its Start invocation's argument.
	echo := FuncMachine{
		StartFn: func(inv types.Invocation, _ any) any { return inv.A },
		NextFn: func(state any, _ types.Response) (Action, any) {
			return ReturnAction(types.ValOf(state.(int)), nil), state
		},
	}
	if got := probe(t, echo, types.Write(7)); got != types.ValOf(7) {
		t.Fatalf("unbound echo = %v", got)
	}
	bound := Bind(echo, types.Write(42))
	if got := probe(t, bound, types.Write(7)); got != types.ValOf(42) {
		t.Fatalf("bound echo = %v, want val(42)", got)
	}
}

func TestMapResponseRewritesReturn(t *testing.T) {
	m := MapResponse(faaOnce(1), func(r types.Response) types.Response {
		return types.ValOf(r.Val + 100)
	})
	if got := probe(t, m, types.Read); got != types.ValOf(100) {
		t.Fatalf("mapped response = %v, want val(100)", got)
	}
}

func TestCombinatorsCompose(t *testing.T) {
	m := MapResponse(
		Bind(Offset(faaOnce(1), 1), types.Read),
		func(r types.Response) types.Response { return types.ValOf(r.Val * 2) },
	)
	// Hits object 1 (init 10), observes 10, doubles to 20.
	if got := probe(t, m, types.Write(3)); got != types.ValOf(20) {
		t.Fatalf("composed response = %v, want val(20)", got)
	}
}

func TestCombinatorsPreserveMemory(t *testing.T) {
	// A machine that increments its persistent memory each run.
	counter := FuncMachine{
		StartFn: func(_ types.Invocation, mem any) any {
			n, _ := mem.(int)
			return n + 1
		},
		NextFn: func(state any, _ types.Response) (Action, any) {
			return ReturnAction(types.ValOf(state.(int)), state), state
		},
	}
	wrapped := MapResponse(Offset(Bind(counter, types.Read), 1), func(r types.Response) types.Response {
		return r
	})
	im := &Implementation{
		Name:     "mem-probe",
		Target:   types.Register(1, 100),
		Procs:    1,
		Machines: []Machine{wrapped},
	}
	var mem any
	for want := 1; want <= 3; want++ {
		res, err := Solo(im, nil, 0, types.Read, mem, 10)
		if err != nil {
			t.Fatal(err)
		}
		if res.Resp != types.ValOf(want) {
			t.Fatalf("run %d: %v", want, res.Resp)
		}
		mem = res.Mem
	}
}
