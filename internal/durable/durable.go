// Package durable persists explore.Checkpoint values with integrity
// guarantees the bare JSON file of the early CLIs lacked: writes are
// atomic (temp file + rename + fsync, retried with backoff on transient
// errors), every record carries a SHA-256 checksum, and loads are
// corruption-aware — a torn or bit-rotted file is rejected with a
// structured *CorruptError instead of being resumed silently, and the
// longest valid prefix of tree results is salvaged whenever possible.
//
// The on-disk format is line-oriented so that truncation at any byte
// offset leaves a detectable (and usually salvageable) prefix:
//
//	waitfree-checkpoint v1
//	meta <sha256-hex> <checkpoint header as compact JSON, Trees omitted>
//	tree <sha256-hex> <one TreeResult as compact JSON>
//	...
//	end <sha256-hex> <tree count> <sha256-hex of every preceding byte>
//
// Each record's first checksum covers that line's own payload; the end
// trailer's payload additionally pins the record count and the whole
// preceding byte stream. Because a
// consensus checkpoint is a set of independent per-tree results, any
// checksummed prefix of tree lines is itself a sound resume state — the
// engine simply re-explores whatever was lost.
//
// Files written by the pre-durable CLIs (bare JSON, first byte '{') are
// still accepted on load, all-or-nothing: legacy files embed no
// checksums, so a torn legacy file is rejected without salvage.
package durable

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"path/filepath"

	"waitfree/internal/explore"
	"waitfree/internal/fsx"
)

// Magic is the first line of every durable checkpoint file; the trailing
// version is the format (not engine) version.
const Magic = "waitfree-checkpoint v1"

// ErrCorruptCheckpoint is the sentinel wrapped by every integrity failure:
// empty files, torn writes, checksum mismatches, and malformed records.
// Use errors.As to retrieve the *CorruptError carrying the salvaged
// prefix.
var ErrCorruptCheckpoint = errors.New("durable: corrupt checkpoint")

// CorruptError describes a checkpoint that failed integrity validation.
type CorruptError struct {
	// Path is the offending file ("" when decoding from memory).
	Path string
	// Reason says what failed, in terms of the line-oriented format.
	Reason string
	// Salvaged is the longest valid prefix of the file: the checkpoint
	// header plus every tree record whose checksum verified before the
	// first bad byte. It is nil when not even the header survived.
	// Resuming from it is sound — lost trees are simply re-explored — but
	// callers must opt in explicitly; Load returns it alongside the error,
	// never instead of it.
	Salvaged *explore.Checkpoint
}

func (e *CorruptError) Error() string {
	where := e.Path
	if where == "" {
		where = "checkpoint"
	}
	s := fmt.Sprintf("%v: %s: %s", ErrCorruptCheckpoint, where, e.Reason)
	if e.Salvaged != nil {
		s += fmt.Sprintf(" (%d of %d trees salvageable)", len(e.Salvaged.Trees), e.Salvaged.Roots)
	}
	return s
}

// Unwrap makes errors.Is(err, ErrCorruptCheckpoint) hold.
func (e *CorruptError) Unwrap() error { return ErrCorruptCheckpoint }

func sum(payload []byte) string {
	h := sha256.Sum256(payload)
	return hex.EncodeToString(h[:])
}

// Encode renders cp into the checksummed line format.
func Encode(cp *explore.Checkpoint) ([]byte, error) {
	head := *cp
	head.Trees = nil
	meta, err := json.Marshal(&head)
	if err != nil {
		return nil, err
	}
	var b bytes.Buffer
	b.WriteString(Magic)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "meta %s %s\n", sum(meta), meta)
	for i := range cp.Trees {
		tree, err := json.Marshal(&cp.Trees[i])
		if err != nil {
			return nil, err
		}
		fmt.Fprintf(&b, "tree %s %s\n", sum(tree), tree)
	}
	trailer := fmt.Sprintf("%d %s", len(cp.Trees), sum(b.Bytes()))
	fmt.Fprintf(&b, "end %s %s\n", sum([]byte(trailer)), trailer)
	return b.Bytes(), nil
}

// corrupt builds the decode failure for reason, attaching whatever prefix
// was salvaged so far.
func corrupt(salvaged *explore.Checkpoint, format string, args ...any) error {
	return &CorruptError{Reason: fmt.Sprintf(format, args...), Salvaged: salvaged}
}

// splitLine cuts "kind <checksum> <payload>" into its three fields and
// verifies the checksum over the payload.
func splitLine(line []byte) (kind string, payload []byte, err error) {
	sp := bytes.IndexByte(line, ' ')
	if sp < 0 {
		return "", nil, fmt.Errorf("record %q has no checksum field", truncateForErr(line))
	}
	kind = string(line[:sp])
	rest := line[sp+1:]
	sp = bytes.IndexByte(rest, ' ')
	if sp < 0 {
		return kind, nil, fmt.Errorf("%s record has no payload field", kind)
	}
	want, payload := string(rest[:sp]), rest[sp+1:]
	if got := sum(payload); got != want {
		return kind, nil, fmt.Errorf("%s record checksum mismatch (stored %.12s…, computed %.12s…)", kind, want, got)
	}
	return kind, payload, nil
}

func truncateForErr(b []byte) string {
	const max = 24
	if len(b) > max {
		return string(b[:max]) + "…"
	}
	return string(b)
}

// Decode parses data as a durable checkpoint (or a legacy bare-JSON one)
// and validates every checksum. On any integrity failure it returns a
// *CorruptError wrapping ErrCorruptCheckpoint; if the header and a prefix
// of tree records verified before the failure, the error carries that
// prefix in Salvaged.
func Decode(data []byte) (*explore.Checkpoint, error) {
	if len(data) == 0 {
		return nil, corrupt(nil, "empty file")
	}
	if data[0] == '{' {
		// Legacy bare-JSON checkpoint (written by pre-durable CLIs): no
		// embedded checksums, so acceptance is all-or-nothing.
		cp := &explore.Checkpoint{}
		if err := json.Unmarshal(data, cp); err != nil {
			return nil, corrupt(nil, "legacy JSON checkpoint is malformed or truncated: %v", err)
		}
		return cp, nil
	}

	var cp *explore.Checkpoint
	lineNo := 0
	sawEnd := false
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// A file ending without a newline was almost certainly torn
			// mid-record; parse the fragment as a line anyway — its checksum
			// decides. Only a record missing nothing but its final newline
			// can still verify.
			nl = len(data) - off
		}
		line := data[off : off+nl]
		lineStart := off
		off += nl + 1
		if sawEnd {
			if len(line) == 0 && off >= len(data) {
				continue // single trailing newline after the end record
			}
			return nil, corrupt(cp, "data after end record (line %d)", lineNo+1)
		}
		switch {
		case lineNo == 0:
			if string(line) != Magic {
				return nil, corrupt(nil, "bad magic line %q (want %q)", truncateForErr(line), Magic)
			}
		default:
			kind, payload, err := splitLine(line)
			if err != nil {
				return nil, corrupt(cp, "line %d: %v", lineNo+1, err)
			}
			switch kind {
			case "meta":
				if cp != nil {
					return nil, corrupt(cp, "line %d: duplicate meta record", lineNo+1)
				}
				c := &explore.Checkpoint{}
				if err := json.Unmarshal(payload, c); err != nil {
					return nil, corrupt(nil, "line %d: meta payload: %v", lineNo+1, err)
				}
				cp = c
			case "tree":
				if cp == nil {
					return nil, corrupt(nil, "line %d: tree record before meta", lineNo+1)
				}
				var tr explore.TreeResult
				if err := json.Unmarshal(payload, &tr); err != nil {
					return nil, corrupt(cp, "line %d: tree payload: %v", lineNo+1, err)
				}
				cp.Trees = append(cp.Trees, tr)
			case "end":
				if cp == nil {
					return nil, corrupt(nil, "line %d: end record before meta", lineNo+1)
				}
				var n int
				var streamSum string
				if _, err := fmt.Sscanf(string(payload), "%d %64s", &n, &streamSum); err != nil {
					return nil, corrupt(cp, "line %d: malformed end record: %v", lineNo+1, err)
				}
				if n != len(cp.Trees) {
					return nil, corrupt(cp, "line %d: end record counts %d trees, file holds %d", lineNo+1, n, len(cp.Trees))
				}
				if got := sum(data[:lineStart]); got != streamSum {
					return nil, corrupt(cp, "line %d: stream checksum mismatch", lineNo+1)
				}
				sawEnd = true
			default:
				return nil, corrupt(cp, "line %d: unknown record kind %q", lineNo+1, kind)
			}
		}
		lineNo++
	}
	if !sawEnd {
		return nil, corrupt(cp, "missing end record (file truncated after %d lines)", lineNo)
	}
	return cp, nil
}

// Save atomically writes cp to path in the durable format: the encoded
// bytes go to a temp file in the same directory, are fsynced, renamed
// over path, and the directory is fsynced, so a crash at any instant
// leaves either the old file or the new one — never a torn mix. Transient
// IO failures are retried under fsx.DefaultRetry.
func Save(path string, cp *explore.Checkpoint) error {
	return SaveFS(nil, path, cp)
}

// SaveFS is Save over an explicit filesystem; fsys == nil means the real
// one. Tests pass an *fsx.FaultFS to script storage faults.
func SaveFS(fsys fsx.FS, path string, cp *explore.Checkpoint) error {
	data, err := Encode(cp)
	if err != nil {
		return fmt.Errorf("durable: encode checkpoint: %w", err)
	}
	return SaveBytesWith(context.Background(), fsys, fsx.DefaultRetry, path, data)
}

// writeAtomic performs one temp-file/fsync/rename/dir-sync write attempt
// through fsys. It is the unit the retry policy wraps: any failure leaves
// path untouched (old contents or absent), never torn.
func writeAtomic(fsys fsx.FS, path string, data []byte) error {
	dir := filepath.Dir(path)
	f, err := fsys.CreateTemp(dir, ".checkpoint-*.tmp")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		fsys.Remove(tmp)
		return err
	}
	if _, err := f.Write(data); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	// CreateTemp opens 0600; checkpoints are shareable run state like any
	// report file, so match the historical os.WriteFile(0644) permissions.
	if err := f.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		fsys.Remove(tmp)
		return err
	}
	if err := fsys.Rename(tmp, path); err != nil {
		fsys.Remove(tmp)
		return err
	}
	return syncDir(fsys, dir)
}

// syncDir persists a rename by fsyncing its directory. Some filesystems
// cannot sync directories at all and report EINVAL or EOPNOTSUPP — those
// stay best-effort (the rename is already atomic on the filesystems that
// matter) — but a real I/O failure (EIO, ENOSPC, ...) means the rename may
// not be durable and must surface to the caller instead of being
// swallowed.
func syncDir(fsys fsx.FS, dir string) error {
	if err := fsys.SyncDir(dir); err != nil && !fsx.IsSyncUnsupported(err) {
		return fmt.Errorf("durable: sync dir %s: %w", dir, err)
	}
	return nil
}

// Load reads and decodes the checkpoint at path. A missing file surfaces
// as an error satisfying errors.Is(err, fs.ErrNotExist) so callers can
// treat it as a fresh start; an integrity failure surfaces as a
// *CorruptError (with Path set and any salvageable prefix attached).
func Load(path string) (*explore.Checkpoint, error) {
	return LoadFS(nil, path)
}

// LoadFS is Load over an explicit filesystem; fsys == nil means the real
// one.
func LoadFS(fsys fsx.FS, path string) (*explore.Checkpoint, error) {
	data, err := fsx.Or(fsys).ReadFile(path)
	if err != nil {
		return nil, err
	}
	cp, err := Decode(data)
	if err != nil {
		var ce *CorruptError
		if errors.As(err, &ce) {
			ce.Path = path
		}
		return nil, err
	}
	return cp, nil
}
