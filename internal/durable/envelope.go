package durable

import (
	"context"
	"fmt"

	"waitfree/internal/envelope"
	"waitfree/internal/fsx"
)

// The reusable per-record-checksummed envelope codec lives in
// internal/envelope — a leaf package, so layers below durable (the
// explorer's memo spill tier) can share the format without an import
// cycle. durable re-exports it here under its historical names, so other
// durable artifacts (the result cache of internal/rescache, the daemon job
// store of internal/server) keep one integrity discipline and one import.
// See the envelope package for the line format.

// ErrCorruptEnvelope is the sentinel wrapped by every envelope integrity
// failure (DecodeEnvelope). It is the same error value as
// envelope.ErrCorrupt, so errors.Is works across both names.
var ErrCorruptEnvelope = envelope.ErrCorrupt

// EncodeEnvelope renders header and records into the checksummed envelope
// format under the given magic line and record kind.
func EncodeEnvelope(magic, kind string, header []byte, records [][]byte) []byte {
	return envelope.Encode(magic, kind, header, records)
}

// DecodeEnvelope parses data as an envelope written by EncodeEnvelope with
// the same magic and record kind, verifying every checksum. On integrity
// failure it returns an error wrapping ErrCorruptEnvelope alongside the
// longest valid prefix: the header (nil if it did not survive) and every
// record whose checksum verified before the first bad byte. Each returned
// record is individually integrity-checked, so callers may trust the
// prefix even when the envelope as a whole is rejected.
func DecodeEnvelope(magic, kind string, data []byte) (header []byte, records [][]byte, err error) {
	return envelope.Decode(magic, kind, data)
}

// SaveBytes atomically writes data to path with the same durability
// discipline as Save: temp file in the same directory, fsync, rename, and
// a directory sync, retried with exponential backoff on transient
// failures. It is SaveBytesWith under a background context, the real
// filesystem, and the default retry policy.
func SaveBytes(path string, data []byte) error {
	return SaveBytesWith(context.Background(), nil, fsx.DefaultRetry, path, data)
}

// SaveBytesContext is SaveBytes with a cancellable retry loop: the
// exponential-backoff sleeps select on ctx, so a caller shutting down (a
// draining daemon over a failing disk) is never held hostage by the
// backoff schedule.
func SaveBytesContext(ctx context.Context, path string, data []byte) error {
	return SaveBytesWith(ctx, nil, fsx.DefaultRetry, path, data)
}

// SaveBytesWith is the fully explicit atomic write: data goes to path
// through fsys (nil = the real filesystem) under the given retry policy.
// Transient failures retry with the policy's capped jittered backoff;
// permanent ones (ENOSPC and kin — fsx.IsPermanent) surface immediately.
// Cancellation mid-retry returns an error wrapping both ctx.Err() and the
// last write failure; an in-flight write itself is not interrupted
// (atomicity is preserved — the file either has the old or the new
// contents).
func SaveBytesWith(ctx context.Context, fsys fsx.FS, policy fsx.RetryPolicy, path string, data []byte) error {
	resolved := fsx.Or(fsys)
	if err := policy.Do(ctx, func() error {
		return writeAtomic(resolved, path, data)
	}); err != nil {
		return fmt.Errorf("durable: save %s: %w", path, err)
	}
	return nil
}
