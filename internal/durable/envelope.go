package durable

import (
	"context"
	"fmt"
	"time"

	"waitfree/internal/envelope"
)

// The reusable per-record-checksummed envelope codec lives in
// internal/envelope — a leaf package, so layers below durable (the
// explorer's memo spill tier) can share the format without an import
// cycle. durable re-exports it here under its historical names, so other
// durable artifacts (the result cache of internal/rescache, the daemon job
// store of internal/server) keep one integrity discipline and one import.
// See the envelope package for the line format.

// ErrCorruptEnvelope is the sentinel wrapped by every envelope integrity
// failure (DecodeEnvelope). It is the same error value as
// envelope.ErrCorrupt, so errors.Is works across both names.
var ErrCorruptEnvelope = envelope.ErrCorrupt

// EncodeEnvelope renders header and records into the checksummed envelope
// format under the given magic line and record kind.
func EncodeEnvelope(magic, kind string, header []byte, records [][]byte) []byte {
	return envelope.Encode(magic, kind, header, records)
}

// DecodeEnvelope parses data as an envelope written by EncodeEnvelope with
// the same magic and record kind, verifying every checksum. On integrity
// failure it returns an error wrapping ErrCorruptEnvelope alongside the
// longest valid prefix: the header (nil if it did not survive) and every
// record whose checksum verified before the first bad byte. Each returned
// record is individually integrity-checked, so callers may trust the
// prefix even when the envelope as a whole is rejected.
func DecodeEnvelope(magic, kind string, data []byte) (header []byte, records [][]byte, err error) {
	return envelope.Decode(magic, kind, data)
}

// SaveBytes atomically writes data to path with the same durability
// discipline as Save: temp file in the same directory, fsync, rename, and
// a directory sync, retried with exponential backoff on transient
// failures. It is SaveBytesContext under a background context.
func SaveBytes(path string, data []byte) error {
	return SaveBytesContext(context.Background(), path, data)
}

// SaveBytesContext is SaveBytes with a cancellable retry loop: the
// exponential-backoff sleeps select on ctx, so a caller shutting down (a
// draining daemon over a failing disk) is never held hostage by the
// backoff schedule. Cancellation mid-retry returns an error wrapping both
// ctx.Err() and the last write failure; an in-flight write itself is not
// interrupted (atomicity is preserved — the file either has the old or
// the new contents).
func SaveBytesContext(ctx context.Context, path string, data []byte) error {
	backoff := retryBackoff
	var lastErr error
	for attempt := 0; attempt < saveAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("durable: save %s: %w (last write error: %v)", path, ctx.Err(), lastErr)
			case <-t.C:
			}
			backoff *= 2
		}
		if lastErr = writeAtomic(path, data); lastErr == nil {
			return nil
		}
	}
	return fmt.Errorf("durable: save %s (after %d attempts): %w", path, saveAttempts, lastErr)
}
