package durable

import (
	"bytes"
	"context"
	"errors"
	"fmt"
	"time"
)

// This file generalizes the checkpoint file format into a reusable
// per-record-checksummed envelope, so other durable artifacts (the result
// cache of internal/rescache) share one integrity discipline instead of
// inventing their own. The line format is the one documented in the
// package comment, with a caller-chosen magic line and record kind:
//
//	<magic>
//	meta <sha256-hex> <header bytes>
//	<kind> <sha256-hex> <record bytes>
//	...
//	end <sha256-hex> <record count> <sha256-hex of every preceding byte>
//
// Header and record payloads must not contain newlines (JSON payloads
// never do). Truncation at any byte offset leaves a detectable — and, per
// record, salvageable — prefix.

// ErrCorruptEnvelope is the sentinel wrapped by every envelope integrity
// failure (DecodeEnvelope).
var ErrCorruptEnvelope = errors.New("durable: corrupt envelope")

// EncodeEnvelope renders header and records into the checksummed envelope
// format under the given magic line and record kind.
func EncodeEnvelope(magic, kind string, header []byte, records [][]byte) []byte {
	var b bytes.Buffer
	b.WriteString(magic)
	b.WriteByte('\n')
	fmt.Fprintf(&b, "meta %s %s\n", sum(header), header)
	for _, rec := range records {
		fmt.Fprintf(&b, "%s %s %s\n", kind, sum(rec), rec)
	}
	trailer := fmt.Sprintf("%d %s", len(records), sum(b.Bytes()))
	fmt.Fprintf(&b, "end %s %s\n", sum([]byte(trailer)), trailer)
	return b.Bytes()
}

// DecodeEnvelope parses data as an envelope written by EncodeEnvelope with
// the same magic and record kind, verifying every checksum. On integrity
// failure it returns an error wrapping ErrCorruptEnvelope alongside the
// longest valid prefix: the header (nil if it did not survive) and every
// record whose checksum verified before the first bad byte. Each returned
// record is individually integrity-checked, so callers may trust the
// prefix even when the envelope as a whole is rejected.
func DecodeEnvelope(magic, kind string, data []byte) (header []byte, records [][]byte, err error) {
	fail := func(format string, args ...any) ([]byte, [][]byte, error) {
		return header, records, fmt.Errorf("%w: %s", ErrCorruptEnvelope, fmt.Sprintf(format, args...))
	}
	if len(data) == 0 {
		return fail("empty envelope")
	}
	lineNo := 0
	sawMeta, sawEnd := false, false
	for off := 0; off < len(data); {
		nl := bytes.IndexByte(data[off:], '\n')
		if nl < 0 {
			// A file ending without a newline was almost certainly torn
			// mid-record; the fragment's checksum decides.
			nl = len(data) - off
		}
		line := data[off : off+nl]
		lineStart := off
		off += nl + 1
		if sawEnd {
			if len(line) == 0 && off >= len(data) {
				continue // single trailing newline after the end record
			}
			return fail("data after end record (line %d)", lineNo+1)
		}
		switch {
		case lineNo == 0:
			if string(line) != magic {
				return fail("bad magic line %q (want %q)", truncateForErr(line), magic)
			}
		default:
			recKind, payload, err := splitLine(line)
			if err != nil {
				return fail("line %d: %v", lineNo+1, err)
			}
			switch recKind {
			case "meta":
				if sawMeta {
					return fail("line %d: duplicate meta record", lineNo+1)
				}
				sawMeta = true
				header = append([]byte(nil), payload...)
			case kind:
				if !sawMeta {
					return fail("line %d: %s record before meta", lineNo+1, kind)
				}
				records = append(records, append([]byte(nil), payload...))
			case "end":
				if !sawMeta {
					return fail("line %d: end record before meta", lineNo+1)
				}
				var n int
				var streamSum string
				if _, err := fmt.Sscanf(string(payload), "%d %64s", &n, &streamSum); err != nil {
					return fail("line %d: malformed end record: %v", lineNo+1, err)
				}
				if n != len(records) {
					return fail("line %d: end record counts %d records, envelope holds %d", lineNo+1, n, len(records))
				}
				if got := sum(data[:lineStart]); got != streamSum {
					return fail("line %d: stream checksum mismatch", lineNo+1)
				}
				sawEnd = true
			default:
				return fail("line %d: unknown record kind %q", lineNo+1, recKind)
			}
		}
		lineNo++
	}
	if !sawEnd {
		return fail("missing end record (envelope truncated after %d lines)", lineNo)
	}
	return header, records, nil
}

// SaveBytes atomically writes data to path with the same durability
// discipline as Save: temp file in the same directory, fsync, rename, and
// a directory sync, retried with exponential backoff on transient
// failures. It is SaveBytesContext under a background context.
func SaveBytes(path string, data []byte) error {
	return SaveBytesContext(context.Background(), path, data)
}

// SaveBytesContext is SaveBytes with a cancellable retry loop: the
// exponential-backoff sleeps select on ctx, so a caller shutting down (a
// draining daemon over a failing disk) is never held hostage by the
// backoff schedule. Cancellation mid-retry returns an error wrapping both
// ctx.Err() and the last write failure; an in-flight write itself is not
// interrupted (atomicity is preserved — the file either has the old or
// the new contents).
func SaveBytesContext(ctx context.Context, path string, data []byte) error {
	backoff := retryBackoff
	var lastErr error
	for attempt := 0; attempt < saveAttempts; attempt++ {
		if attempt > 0 {
			t := time.NewTimer(backoff)
			select {
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("durable: save %s: %w (last write error: %v)", path, ctx.Err(), lastErr)
			case <-t.C:
			}
			backoff *= 2
		}
		if lastErr = writeAtomic(path, data); lastErr == nil {
			return nil
		}
	}
	return fmt.Errorf("durable: save %s (after %d attempts): %w", path, saveAttempts, lastErr)
}
