package durable

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"syscall"
	"testing"

	"waitfree/internal/fsx"
)

const (
	testMagic = "wftest v1"
	testKind  = "rec"
)

func testRecords() ([]byte, [][]byte) {
	header := []byte(`{"key":"abc"}`)
	records := [][]byte{
		[]byte(`{"n":1}`),
		[]byte(`{"n":2}`),
		[]byte(`{"n":3}`),
	}
	return header, records
}

func TestEnvelopeRoundTrip(t *testing.T) {
	header, records := testRecords()
	data := EncodeEnvelope(testMagic, testKind, header, records)
	gotHeader, gotRecords, err := DecodeEnvelope(testMagic, testKind, data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if !bytes.Equal(gotHeader, header) {
		t.Errorf("header = %q, want %q", gotHeader, header)
	}
	if len(gotRecords) != len(records) {
		t.Fatalf("got %d records, want %d", len(gotRecords), len(records))
	}
	for i := range records {
		if !bytes.Equal(gotRecords[i], records[i]) {
			t.Errorf("record %d = %q, want %q", i, gotRecords[i], records[i])
		}
	}
}

func TestEnvelopeRoundTripEmpty(t *testing.T) {
	data := EncodeEnvelope(testMagic, testKind, []byte("h"), nil)
	header, records, err := DecodeEnvelope(testMagic, testKind, data)
	if err != nil {
		t.Fatalf("decode: %v", err)
	}
	if string(header) != "h" || len(records) != 0 {
		t.Fatalf("got header %q, %d records", header, len(records))
	}
}

func TestEnvelopeWrongMagicOrKind(t *testing.T) {
	header, records := testRecords()
	data := EncodeEnvelope(testMagic, testKind, header, records)
	if _, _, err := DecodeEnvelope("other v1", testKind, data); !errors.Is(err, ErrCorruptEnvelope) {
		t.Errorf("wrong magic: got %v, want ErrCorruptEnvelope", err)
	}
	if _, _, err := DecodeEnvelope(testMagic, "blob", data); !errors.Is(err, ErrCorruptEnvelope) {
		t.Errorf("wrong kind: got %v, want ErrCorruptEnvelope", err)
	}
}

// Flipping a byte inside record 2 must fail the decode but salvage the
// header and record 1, each individually checksum-verified.
func TestEnvelopeSalvagesPrefixOnCorruption(t *testing.T) {
	header, records := testRecords()
	data := EncodeEnvelope(testMagic, testKind, header, records)
	corrupt := bytes.Replace(data, []byte(`{"n":2}`), []byte(`{"n":9}`), 1)
	if bytes.Equal(corrupt, data) {
		t.Fatal("corruption did not apply")
	}
	gotHeader, gotRecords, err := DecodeEnvelope(testMagic, testKind, corrupt)
	if !errors.Is(err, ErrCorruptEnvelope) {
		t.Fatalf("got %v, want ErrCorruptEnvelope", err)
	}
	if !bytes.Equal(gotHeader, header) {
		t.Errorf("salvaged header = %q, want %q", gotHeader, header)
	}
	if len(gotRecords) != 1 || !bytes.Equal(gotRecords[0], records[0]) {
		t.Errorf("salvaged records = %q, want just %q", gotRecords, records[0])
	}
}

// Truncation mid-record keeps every complete record before the tear.
func TestEnvelopeSalvagesPrefixOnTruncation(t *testing.T) {
	header, records := testRecords()
	data := EncodeEnvelope(testMagic, testKind, header, records)
	cut := bytes.Index(data, []byte(`{"n":3}`)) + 3 // tear inside record 3
	gotHeader, gotRecords, err := DecodeEnvelope(testMagic, testKind, data[:cut])
	if !errors.Is(err, ErrCorruptEnvelope) {
		t.Fatalf("got %v, want ErrCorruptEnvelope", err)
	}
	if !bytes.Equal(gotHeader, header) {
		t.Errorf("salvaged header = %q, want %q", gotHeader, header)
	}
	if len(gotRecords) != 2 {
		t.Fatalf("salvaged %d records, want 2", len(gotRecords))
	}
}

func TestEnvelopeTrailingGarbage(t *testing.T) {
	header, records := testRecords()
	data := EncodeEnvelope(testMagic, testKind, header, records)
	data = append(data, []byte("extra\n")...)
	gotHeader, gotRecords, err := DecodeEnvelope(testMagic, testKind, data)
	if !errors.Is(err, ErrCorruptEnvelope) {
		t.Fatalf("got %v, want ErrCorruptEnvelope", err)
	}
	// Everything before the garbage still verified.
	if !bytes.Equal(gotHeader, header) || len(gotRecords) != len(records) {
		t.Errorf("salvage lost data: header %q, %d records", gotHeader, len(gotRecords))
	}
}

func TestSaveBytesRoundTrip(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob.env")
	header, records := testRecords()
	data := EncodeEnvelope(testMagic, testKind, header, records)
	if err := SaveBytes(path, data); err != nil {
		t.Fatalf("save: %v", err)
	}
	got, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("read back: %v", err)
	}
	if !bytes.Equal(got, data) {
		t.Fatal("file contents differ from written data")
	}
	if fi, err := os.Stat(path); err != nil || fi.Mode().Perm() != 0o644 {
		t.Fatalf("stat: %v, mode %v", err, fi.Mode())
	}
}

// A filesystem that cannot fsync directories (EINVAL/EOPNOTSUPP) stays
// best-effort: the write succeeds.
func TestWriteAtomicDirSyncUnsupported(t *testing.T) {
	for _, unsupported := range []error{syscall.EINVAL, syscall.EOPNOTSUPP} {
		ff := fsx.NewFaultFS(nil, 1, fsx.Rule{Op: fsx.OpSyncDir, Nth: 1, Count: -1, Err: unsupported})
		path := filepath.Join(t.TempDir(), "blob")
		if err := writeAtomic(ff, path, []byte("x")); err != nil {
			t.Errorf("dir sync %v should be best-effort, got %v", unsupported, err)
		}
	}
}

// A real I/O failure on the directory sync means the rename may not be
// durable; it must surface instead of being swallowed.
func TestWriteAtomicDirSyncIOError(t *testing.T) {
	ff := fsx.NewFaultFS(nil, 1, fsx.Rule{Op: fsx.OpSyncDir, Nth: 1, Err: syscall.EIO})
	path := filepath.Join(t.TempDir(), "blob")
	err := writeAtomic(ff, path, []byte("x"))
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("dir sync EIO swallowed: got %v", err)
	}
}
