package durable

import (
	"context"
	"encoding/json"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"reflect"
	"strings"
	"syscall"
	"testing"
	"time"

	"waitfree/internal/explore"
	"waitfree/internal/faults"
	"waitfree/internal/fsx"
)

// sampleCheckpoint builds a representative checkpoint: several trees with
// non-trivial bounds, op-access maps, and decided sets, under a fault
// model, so the round-trip exercises every serialized field.
func sampleCheckpoint(trees int) *explore.Checkpoint {
	cp := &explore.Checkpoint{
		Version: explore.CheckpointVersion,
		Impl:    "sample",
		Procs:   2,
		Values:  2,
		Roots:   4,
		Faults:  faults.Model{MaxCrashes: 1},
	}
	for m := 0; m < trees; m++ {
		cp.Trees = append(cp.Trees, explore.TreeResult{
			Mask:      m,
			Nodes:     100 + int64(m),
			Leaves:    10 + int64(m),
			MemoHits:  int64(m),
			Depth:     5 + m,
			MaxAccess: []int{3, 4},
			OpAccess:  []map[string]int{{"read": 2, "write": 1}, {"tas": 1}},
			ProcSteps: []int{4, 5},
			Decided:   []int{m % 2},
		})
	}
	return cp
}

func TestDurableRoundTrip(t *testing.T) {
	for _, trees := range []int{0, 1, 3} {
		cp := sampleCheckpoint(trees)
		data, err := Encode(cp)
		if err != nil {
			t.Fatal(err)
		}
		got, err := Decode(data)
		if err != nil {
			t.Fatalf("trees=%d: decode: %v", trees, err)
		}
		if !reflect.DeepEqual(cp, got) {
			t.Errorf("trees=%d: round-trip mismatch\nbefore: %+v\nafter:  %+v", trees, cp, got)
		}
	}
}

func TestSaveLoadFile(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "cp")
	cp := sampleCheckpoint(3)
	if err := Save(path, cp); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, got) {
		t.Errorf("file round-trip mismatch\nbefore: %+v\nafter:  %+v", cp, got)
	}
	// Overwrite with a different checkpoint: atomic replace, no temp litter.
	if err := Save(path, sampleCheckpoint(1)); err != nil {
		t.Fatal(err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 || entries[0].Name() != "cp" {
		t.Errorf("directory not clean after save: %v", entries)
	}
	got, err = Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got.Trees) != 1 {
		t.Errorf("overwrite not visible: %d trees", len(got.Trees))
	}
}

func TestLoadMissingFile(t *testing.T) {
	_, err := Load(filepath.Join(t.TempDir(), "nope"))
	if !errors.Is(err, fs.ErrNotExist) {
		t.Errorf("err = %v, want fs.ErrNotExist", err)
	}
}

func TestLoadEmptyFile(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp")
	if err := os.WriteFile(path, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err := Load(path)
	if !errors.Is(err, ErrCorruptCheckpoint) {
		t.Fatalf("err = %v, want ErrCorruptCheckpoint", err)
	}
	var ce *CorruptError
	if !errors.As(err, &ce) {
		t.Fatalf("err %T does not carry *CorruptError", err)
	}
	if ce.Path != path {
		t.Errorf("CorruptError.Path = %q, want %q", ce.Path, path)
	}
	if ce.Salvaged != nil {
		t.Errorf("empty file salvaged %v", ce.Salvaged)
	}
}

func TestLoadLegacyJSON(t *testing.T) {
	cp := sampleCheckpoint(2)
	blob, err := json.MarshalIndent(cp, "", "  ")
	if err != nil {
		t.Fatal(err)
	}
	path := filepath.Join(t.TempDir(), "cp")
	if err := os.WriteFile(path, append(blob, '\n'), 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(cp, got) {
		t.Errorf("legacy JSON mismatch\nwant: %+v\ngot:  %+v", cp, got)
	}
	// A truncated legacy file has no checksums to salvage from: rejected.
	if err := os.WriteFile(path, blob[:len(blob)/2], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Load(path); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("truncated legacy file: err = %v, want ErrCorruptCheckpoint", err)
	}
}

// TestTruncationSweep is the torn-write acceptance test: a durable file
// truncated at EVERY byte offset must either decode to a valid salvage (a
// prefix of the original trees) inside an ErrCorruptCheckpoint, or be
// rejected outright — never panic, and never decode successfully to
// anything but the full original.
func TestTruncationSweep(t *testing.T) {
	cp := sampleCheckpoint(4)
	data, err := Encode(cp)
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off <= len(data); off++ {
		got, err := Decode(data[:off])
		if off == len(data) {
			if err != nil {
				t.Fatalf("full file rejected: %v", err)
			}
			continue
		}
		if err == nil {
			// Only a file missing nothing but trailing newlines may decode
			// cleanly, and then it must be the complete original — anything
			// else is a silent wrong resume.
			if !reflect.DeepEqual(got, cp) {
				t.Fatalf("offset %d: truncated file decoded cleanly to %+v", off, got)
			}
			continue
		}
		if !errors.Is(err, ErrCorruptCheckpoint) {
			t.Fatalf("offset %d: err = %v, want ErrCorruptCheckpoint", off, err)
		}
		var ce *CorruptError
		if !errors.As(err, &ce) {
			t.Fatalf("offset %d: err %T carries no *CorruptError", off, err)
		}
		if ce.Salvaged == nil {
			continue
		}
		// Any salvage must be the original header plus a strict prefix of
		// the original trees.
		s := ce.Salvaged
		if s.Version != cp.Version || s.Impl != cp.Impl || s.Procs != cp.Procs ||
			s.Values != cp.Values || s.Roots != cp.Roots || s.Faults != cp.Faults {
			t.Fatalf("offset %d: salvaged header differs: %+v", off, s)
		}
		if len(s.Trees) > len(cp.Trees) {
			t.Fatalf("offset %d: salvaged %d trees from a file with %d", off, len(s.Trees), len(cp.Trees))
		}
		if len(s.Trees) > 0 && !reflect.DeepEqual(s.Trees, cp.Trees[:len(s.Trees)]) {
			t.Fatalf("offset %d: salvaged trees are not a prefix of the original", off)
		}
	}
}

// TestBitFlipSweep flips every byte of the encoding (one at a time) and
// requires every flip to be detected: the per-line and stream checksums
// leave no byte uncovered.
func TestBitFlipSweep(t *testing.T) {
	data, err := Encode(sampleCheckpoint(2))
	if err != nil {
		t.Fatal(err)
	}
	for off := 0; off < len(data); off++ {
		mut := append([]byte(nil), data...)
		mut[off] ^= 0x20
		if _, err := Decode(mut); err == nil {
			t.Fatalf("flip at offset %d (byte %q) decoded cleanly", off, data[off])
		}
	}
}

func TestDecodeTrailingGarbage(t *testing.T) {
	data, err := Encode(sampleCheckpoint(1))
	if err != nil {
		t.Fatal(err)
	}
	mut := append(append([]byte(nil), data...), []byte("tree deadbeef {}\n")...)
	if _, err := Decode(mut); !errors.Is(err, ErrCorruptCheckpoint) {
		t.Errorf("data after end record: err = %v, want ErrCorruptCheckpoint", err)
	}
}

// quickRetry keeps fault-schedule tests fast: same shape as
// fsx.DefaultRetry, millisecond backoff.
var quickRetry = fsx.RetryPolicy{Attempts: 3, Base: time.Millisecond}

func TestSaveRetriesTransientFailures(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp")
	cp := sampleCheckpoint(1)
	data, err := Encode(cp)
	if err != nil {
		t.Fatal(err)
	}

	// Two transient rename failures: absorbed by the three-attempt policy.
	ff := fsx.NewFaultFS(nil, 1, fsx.Rule{Op: fsx.OpRename, Nth: 1, Count: 2, Err: syscall.EIO})
	if err := SaveBytesWith(context.Background(), ff, quickRetry, path, data); err != nil {
		t.Fatalf("save with 2 transient failures: %v", err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("load after retried save: %v", err)
	}
	if got := ff.CountOf(fsx.OpRename); got != 3 {
		t.Errorf("rename attempted %d times, want 3", got)
	}

	// A rename that fails on every attempt: the policy gives up with an
	// error naming the attempt count.
	ff = fsx.NewFaultFS(nil, 1, fsx.Rule{Op: fsx.OpRename, Nth: 1, Count: -1, Err: syscall.EIO})
	err = SaveBytesWith(context.Background(), ff, quickRetry, path, data)
	if err == nil {
		t.Fatal("save succeeded with a permanently failing rename")
	}
	if !errors.Is(err, syscall.EIO) || !strings.Contains(err.Error(), "attempts") {
		t.Errorf("persistent-failure error = %v", err)
	}
	// The prior good file must be untouched by the failed overwrite.
	if _, err := Load(path); err != nil {
		t.Errorf("failed save clobbered the existing file: %v", err)
	}
}

// A permanent fault (the out-of-space class) must not burn the backoff
// schedule: one attempt, immediate surfacing.
func TestSavePermanentFaultBailsImmediately(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp")
	ff := fsx.NewFaultFS(nil, 1, fsx.Rule{Op: fsx.OpCreateTemp, Nth: 1, Count: -1, Err: syscall.ENOSPC})
	err := SaveBytesWith(context.Background(), ff, quickRetry, path, []byte("payload"))
	if !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("err = %v, want ENOSPC", err)
	}
	if got := ff.CountOf(fsx.OpCreateTemp); got != 1 {
		t.Errorf("ENOSPC retried: %d CreateTemp attempts, want 1", got)
	}
}

// A torn write is caught before the rename: the half-written temp file is
// discarded and the retry writes a fresh one, so the destination never
// holds a torn byte.
func TestSaveTornWriteNeverPublishesPartialBytes(t *testing.T) {
	path := filepath.Join(t.TempDir(), "cp")
	cp := sampleCheckpoint(3)
	data, err := Encode(cp)
	if err != nil {
		t.Fatal(err)
	}
	ff := fsx.NewFaultFS(nil, 1, fsx.Rule{Op: fsx.OpWrite, Nth: 1, Kind: fsx.FaultTorn, Err: syscall.EIO})
	if err := SaveBytesWith(context.Background(), ff, quickRetry, path, data); err != nil {
		t.Fatalf("save with one torn write: %v", err)
	}
	if _, err := Load(path); err != nil {
		t.Fatalf("load after torn-write retry: %v", err)
	}
	// The discarded temp file must not linger next to the checkpoint.
	entries, err := os.ReadDir(filepath.Dir(path))
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Errorf("directory holds %d entries after torn-write retry, want just the checkpoint", len(entries))
	}
}

// TestSaveBytesContextCancellation pins the cancellable retry: a caller
// shutting down over a failing disk must get out of the backoff schedule
// as soon as its context dies, with an error naming both the cancellation
// and the underlying write failure — and must not wait out the remaining
// backoff (pinned by an hour-long backoff that would hang the test if
// slept).
func TestSaveBytesContextCancellation(t *testing.T) {
	path := filepath.Join(t.TempDir(), "blob")
	ff := fsx.NewFaultFS(nil, 1, fsx.Rule{Op: fsx.OpRename, Nth: 1, Count: -1, Err: syscall.EIO})
	slow := fsx.RetryPolicy{Attempts: 3, Base: time.Hour}

	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- SaveBytesWith(ctx, ff, slow, path, []byte("payload")) }()
	// The first attempt fails immediately; the goroutine is now parked in
	// the hour-long backoff. Cancel and require a prompt return.
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if !strings.Contains(err.Error(), "last error") {
			t.Errorf("error %q does not carry the underlying write failure", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("SaveBytesWith did not return after cancellation")
	}

	// An already-cancelled context still permits the first attempt (no
	// retry needed on a healthy disk): atomicity and forward progress win
	// over eager cancellation checks.
	if err := SaveBytesContext(ctx, path, []byte("payload")); err != nil {
		t.Fatalf("first-attempt save under a dead context: %v", err)
	}
	if data, err := os.ReadFile(path); err != nil || string(data) != "payload" {
		t.Fatalf("saved file = %q, %v", data, err)
	}
}
