// Package cliutil owns the flags and plumbing shared by every
// verification CLI: -parallel (worker count), -timeout (run deadline),
// -progress (live engine statistics on stderr), and -json (the
// machine-readable report on stdout). The three commands that used to
// parse -parallel independently (explore, hierarchy, eliminate) now share
// this one definition, and every command gets the observability flags for
// free.
package cliutil

import (
	"context"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"time"

	"waitfree/internal/explore"
)

// Flags are the switches shared by the verification CLIs.
type Flags struct {
	// Parallel is the worker count for independent subtasks (0 =
	// GOMAXPROCS).
	Parallel int
	// Timeout aborts the run after this long (0 = none); expiry surfaces
	// as context.DeadlineExceeded.
	Timeout time.Duration
	// Progress, when positive, prints an engine Stats line to stderr at
	// this interval.
	Progress time.Duration
	// JSON switches stdout from the human rendering to the JSON report.
	JSON bool
}

// Register installs the shared flags on fs and returns the destination.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{}
	fs.IntVar(&f.Parallel, "parallel", 0, "worker count for independent subtasks (0 = GOMAXPROCS)")
	fs.DurationVar(&f.Timeout, "timeout", 0, "abort the run after this duration (e.g. 30s; 0 = no timeout)")
	fs.DurationVar(&f.Progress, "progress", 0, "print engine progress to stderr at this interval (e.g. 500ms; 0 = off)")
	fs.BoolVar(&f.JSON, "json", false, "emit the machine-readable JSON report on stdout")
	return f
}

// Context returns the run context honoring -timeout. The caller must call
// cancel.
func (f *Flags) Context() (context.Context, context.CancelFunc) {
	if f.Timeout > 0 {
		return context.WithTimeout(context.Background(), f.Timeout)
	}
	return context.WithCancel(context.Background())
}

// Options folds the flags into opts: parallelism always, plus the
// OnProgress stderr hook when -progress is set.
func (f *Flags) Options(opts explore.Options) explore.Options {
	opts.Parallelism = f.Parallel
	if f.Progress > 0 {
		opts.ProgressInterval = f.Progress
		opts.OnProgress = func(s explore.Stats) { fmt.Fprintln(os.Stderr, s.String()) }
	}
	return opts
}

// WriteJSON marshals v onto w, indented, as the -json output format.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
