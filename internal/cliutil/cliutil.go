// Package cliutil owns the flags and plumbing shared by every
// verification CLI: -parallel (worker count), -timeout (run deadline),
// -progress (live engine statistics on stderr), -json (the
// machine-readable report on stdout), the crash fault model (-faults,
// -max-crashes, -fault-mode), -seed (reproducible runner
// nondeterminism), -symmetry (process-permutation reduction), and
// -checkpoint (resumable run state on disk). The
// three commands that used to parse -parallel independently (explore,
// hierarchy, eliminate) now share this one definition, and every command
// gets the observability and fault flags for free.
package cliutil

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"io"
	"io/fs"
	"os"
	"os/signal"
	"time"

	"waitfree/internal/durable"
	"waitfree/internal/explore"
	"waitfree/internal/faults"
	"waitfree/internal/rescache"
	"waitfree/internal/runtime"
)

// Flags are the switches shared by the verification CLIs.
type Flags struct {
	// Parallel is the worker count for independent subtasks (0 =
	// GOMAXPROCS).
	Parallel int
	// Timeout aborts the run after this long (0 = none); expiry surfaces
	// as context.DeadlineExceeded.
	Timeout time.Duration
	// Progress, when positive, prints an engine Stats line to stderr at
	// this interval.
	Progress time.Duration
	// JSON switches stdout from the human rendering to the JSON report.
	JSON bool
	// Faults enables exhaustive crash exploration with the model below.
	Faults bool
	// MaxCrashes bounds the crashes per execution when -faults is set.
	MaxCrashes int
	// FaultMode is the crash semantics; -fault-mode is validated at flag
	// parse time, so this is always a legal value afterwards.
	FaultMode faults.Mode
	// MaxRecoveries bounds recover edges per execution under
	// -fault-mode crash-recovery (0 elsewhere; validated by the model).
	MaxRecoveries int
	// Seed seeds the runner's nondeterminism resolver (see Resolver).
	Seed int64
	// Symmetry selects process-permutation symmetry reduction for the
	// consensus engines; the default SymmetryAuto reduces exactly when the
	// implementation qualifies, so reports never change, only work.
	Symmetry explore.SymmetryMode
	// Checkpoint is the path of the resumable-run file: loaded (if
	// present) before a run, written when a run is cancelled mid-flight or
	// ends partial, and — with CheckpointEvery — autosaved while it runs.
	Checkpoint string
	// CheckpointEvery autosaves Checkpoint at this interval during the
	// run (0 = only on cancellation); requires Checkpoint.
	CheckpointEvery time.Duration
	// StallAfter arms the stall watchdog: a worker making no progress for
	// this long stops the run with a partial report (0 = off).
	StallAfter time.Duration
	// MaxNodes is the soft node budget: the run degrades to a
	// partial-coverage report after entering this many configurations
	// (0 = unbounded).
	MaxNodes int64
	// CacheDir is the content-addressed result cache directory: requests
	// whose canonical key is already stored are served from it with
	// byte-identical JSON instead of re-explored, and fresh conclusive
	// reports are stored into it ("" = no cache).
	CacheDir string
	// MemoBudget caps resident memo entries per execution tree (0 =
	// unbounded). Without -memo-spill, exceeding it loses memo hits and
	// flags the report Degraded.
	MemoBudget int
	// MemoSpillDir spills evicted memo entries to checksummed per-tree
	// files in this directory, so -memo-budget trades memory for disk
	// without losing hits or degrading ("" = no spill; requires
	// -memo-budget).
	MemoSpillDir string
}

// Register installs the shared flags on fs and returns the destination.
func Register(fs *flag.FlagSet) *Flags {
	f := &Flags{MaxCrashes: 1, Seed: runtime.DefaultSeed, Symmetry: explore.SymmetryAuto}
	fs.IntVar(&f.Parallel, "parallel", 0, "worker count for independent subtasks (0 = GOMAXPROCS)")
	fs.DurationVar(&f.Timeout, "timeout", 0, "abort the run after this duration (e.g. 30s; 0 = no timeout)")
	fs.DurationVar(&f.Progress, "progress", 0, "print engine progress to stderr at this interval (e.g. 500ms; 0 = off)")
	fs.BoolVar(&f.JSON, "json", false, "emit the machine-readable JSON report on stdout")
	fs.BoolVar(&f.Faults, "faults", false, "explore crash faults exhaustively (crash-stop model)")
	fs.IntVar(&f.MaxCrashes, "max-crashes", 1, "crash budget per execution when -faults is set")
	fs.Func("fault-mode", `crash semantics: "crash-stop" (anytime), "crash-start" (before the first step), or "crash-recovery" (crashed processes may restart; see -max-recoveries)`,
		func(s string) error {
			mode, err := faults.ParseMode(s)
			if err != nil {
				return err
			}
			f.FaultMode = mode
			return nil
		})
	fs.IntVar(&f.MaxRecoveries, "max-recoveries", 0, `recovery budget per execution with -fault-mode crash-recovery`)
	fs.Int64Var(&f.Seed, "seed", runtime.DefaultSeed, "seed for the runner's nondeterminism resolver")
	fs.Func("symmetry", `symmetry reduction: "off", "auto" (reduce when the protocol qualifies; default), or "require"`,
		func(s string) error {
			mode, err := explore.ParseSymmetryMode(s)
			if err != nil {
				return err
			}
			f.Symmetry = mode
			return nil
		})
	fs.StringVar(&f.Checkpoint, "checkpoint", "", "resumable-run file: loaded if present, written on cancellation or partial coverage")
	fs.DurationVar(&f.CheckpointEvery, "checkpoint-every", 0, "autosave the -checkpoint file at this interval while the run is in flight (e.g. 30s; 0 = off)")
	fs.DurationVar(&f.StallAfter, "stall-after", 0, "stop with a partial report when a worker makes no progress for this long (e.g. 1m; 0 = off)")
	fs.Int64Var(&f.MaxNodes, "max-nodes", 0, "soft node budget: degrade to a partial-coverage report after this many configurations (0 = unbounded)")
	fs.StringVar(&f.CacheDir, "cache", "", "result cache DIR: serve repeat requests from the content-addressed cache and store fresh verdicts into it")
	fs.IntVar(&f.MemoBudget, "memo-budget", 0, "cap resident memo entries per execution tree (0 = unbounded; without -memo-spill the report degrades)")
	fs.StringVar(&f.MemoSpillDir, "memo-spill", "", "spill evicted memo entries to DIR so -memo-budget trades memory for disk without degrading")
	return f
}

// OpenCache opens the -cache result cache (nil cache without the flag —
// callers pass it straight to waitfree's Request.Cache either way).
func (f *Flags) OpenCache() (*rescache.Cache, error) {
	if f.CacheDir == "" {
		return nil, nil
	}
	c, err := rescache.Open(rescache.Options{Dir: f.CacheDir})
	if err != nil {
		return nil, fmt.Errorf("open cache: %w", err)
	}
	return c, nil
}

// LogCacheOutcome prints the cache's one-line verdict for a request to
// stderr; a no-op without -cache (outcome nil).
func LogCacheOutcome(outcome *rescache.Outcome) {
	if outcome != nil {
		fmt.Fprintln(os.Stderr, outcome.String())
	}
}

// Context returns the run context honoring -timeout and Ctrl-C: an
// interrupt cancels the context — letting a -checkpoint run save its
// resumable state on the way out — instead of killing the process. The
// caller must call cancel.
func (f *Flags) Context() (context.Context, context.CancelFunc) {
	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt)
	if f.Timeout > 0 {
		tctx, tcancel := context.WithTimeout(ctx, f.Timeout)
		return tctx, func() { tcancel(); stop() }
	}
	return ctx, stop
}

// Options folds the flags into opts: parallelism and the symmetry mode
// always, the fault model when -faults is set, plus the OnProgress stderr
// hook when -progress is set.
func (f *Flags) Options(opts explore.Options) explore.Options {
	opts.Parallelism = f.Parallel
	opts.Symmetry = f.Symmetry
	if f.Faults {
		opts.Faults = faults.Model{MaxCrashes: f.MaxCrashes, Mode: f.FaultMode, MaxRecoveries: f.MaxRecoveries}
	}
	if f.Progress > 0 {
		opts.ProgressInterval = f.Progress
		opts.OnProgress = func(s explore.Stats) { fmt.Fprintln(os.Stderr, s.String()) }
	}
	opts.MaxNodes = f.MaxNodes
	opts.StallAfter = f.StallAfter
	opts.MemoBudget = f.MemoBudget
	opts.MemoSpillDir = f.MemoSpillDir
	return opts
}

// Supervise folds the autosave flags into opts: with -checkpoint-every,
// the engine durably rewrites the -checkpoint file at that interval while
// the run is in flight, so a killed process loses at most one interval of
// work. Call it after Options; it errors when -checkpoint-every has no
// -checkpoint file to write.
func (f *Flags) Supervise(opts explore.Options) (explore.Options, error) {
	if f.CheckpointEvery <= 0 {
		return opts, nil
	}
	if f.Checkpoint == "" {
		return opts, errors.New("-checkpoint-every requires -checkpoint FILE")
	}
	opts.CheckpointEvery = f.CheckpointEvery
	path := f.Checkpoint
	opts.OnCheckpoint = func(cp *explore.Checkpoint) {
		// Autosave failures must not kill a healthy run: durable.Save has
		// already retried transient errors, so just warn and keep going —
		// the previous checkpoint file is still intact (atomic rename).
		if err := durable.Save(path, cp); err != nil {
			fmt.Fprintf(os.Stderr, "autosave: %v\n", err)
		}
	}
	return opts, nil
}

// Resolver returns the -seed-keyed nondeterminism resolver for
// runner-based commands.
func (f *Flags) Resolver() func(n int) int {
	return runtime.RandomResolver(f.Seed)
}

// LoadCheckpoint reads the -checkpoint file through the durable layer. No
// flag or no file yet is a fresh start, reported as (nil, nil); an
// unreadable, empty, truncated, or checksum-corrupt file is an error
// (silently restarting a long run from scratch would be worse). A corrupt
// file's error wraps durable.ErrCorruptCheckpoint and — via errors.As on
// *durable.CorruptError — may carry the longest valid tree prefix, so a
// command can offer it as a salvage resume (cmd/explore does).
func (f *Flags) LoadCheckpoint() (*explore.Checkpoint, error) {
	if f.Checkpoint == "" {
		return nil, nil
	}
	cp, err := durable.Load(f.Checkpoint)
	if errors.Is(err, fs.ErrNotExist) {
		return nil, nil
	}
	if err != nil {
		return nil, fmt.Errorf("load checkpoint: %w", err)
	}
	return cp, nil
}

// SaveCheckpoint durably writes cp to the -checkpoint file (atomic
// replace, checksummed, retried); a no-op without the flag or without a
// checkpoint to save.
func (f *Flags) SaveCheckpoint(cp *explore.Checkpoint) error {
	if f.Checkpoint == "" || cp == nil {
		return nil
	}
	if err := durable.Save(f.Checkpoint, cp); err != nil {
		return fmt.Errorf("save checkpoint: %w", err)
	}
	return nil
}

// WriteJSON marshals v onto w, indented, as the -json output format.
func WriteJSON(w io.Writer, v any) error {
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	return enc.Encode(v)
}
