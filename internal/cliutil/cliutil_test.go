package cliutil

import (
	"context"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"waitfree/internal/explore"
	"waitfree/internal/faults"
)

func TestRegisterParsesSharedFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-parallel", "3", "-timeout", "2s", "-progress", "150ms", "-json"}); err != nil {
		t.Fatal(err)
	}
	if f.Parallel != 3 || f.Timeout != 2*time.Second || f.Progress != 150*time.Millisecond || !f.JSON {
		t.Fatalf("parsed %+v", f)
	}
}

func TestContextHonorsTimeout(t *testing.T) {
	f := &Flags{Timeout: time.Nanosecond}
	ctx, cancel := f.Context()
	defer cancel()
	<-ctx.Done()
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("ctx.Err() = %v", ctx.Err())
	}

	g := &Flags{}
	gctx, gcancel := g.Context()
	if gctx.Err() != nil {
		t.Fatalf("no-timeout context already dead: %v", gctx.Err())
	}
	gcancel()
	if !errors.Is(gctx.Err(), context.Canceled) {
		t.Fatalf("cancel did not propagate: %v", gctx.Err())
	}
}

func TestOptionsFoldsFlags(t *testing.T) {
	f := &Flags{Parallel: 2, Progress: time.Second}
	opts := f.Options(explore.Options{Memoize: true})
	if !opts.Memoize || opts.Parallelism != 2 || opts.ProgressInterval != time.Second || opts.OnProgress == nil {
		t.Fatalf("folded %+v", opts)
	}
	bare := (&Flags{}).Options(explore.Options{})
	if bare.OnProgress != nil || bare.ProgressInterval != 0 {
		t.Fatalf("progress hook installed without -progress: %+v", bare)
	}
}

func TestRegisterParsesFaultFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-faults", "-max-crashes", "2", "-fault-mode", "crash-start", "-seed", "42", "-checkpoint", "cp.json"}); err != nil {
		t.Fatal(err)
	}
	if !f.Faults || f.MaxCrashes != 2 || f.FaultMode != faults.CrashBeforeFirstStep || f.Seed != 42 || f.Checkpoint != "cp.json" {
		t.Fatalf("parsed %+v", f)
	}
	opts := f.Options(explore.Options{})
	if opts.Faults.MaxCrashes != 2 || opts.Faults.Mode != faults.CrashBeforeFirstStep {
		t.Fatalf("fault model not folded: %+v", opts.Faults)
	}
	if f.Resolver() == nil {
		t.Fatal("no resolver")
	}

	// Defaults: faults off, model not folded, even with a crash budget.
	g := Register(flag.NewFlagSet("y", flag.ContinueOnError))
	if g.Faults || g.MaxCrashes != 1 {
		t.Fatalf("defaults %+v", g)
	}
	if opts := g.Options(explore.Options{}); opts.Faults.Enabled() {
		t.Fatalf("fault model folded without -faults: %+v", opts.Faults)
	}

	// A bad mode is a flag-parse error, not a deferred one.
	bad := flag.NewFlagSet("z", flag.ContinueOnError)
	bad.SetOutput(io.Discard)
	Register(bad)
	if err := bad.Parse([]string{"-fault-mode", "byzantine"}); err == nil {
		t.Fatal("unknown -fault-mode accepted")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	f := &Flags{Checkpoint: filepath.Join(t.TempDir(), "cp.json")}
	if cp, err := f.LoadCheckpoint(); cp != nil || err != nil {
		t.Fatalf("missing file: %v, %v", cp, err)
	}
	want := &explore.Checkpoint{Version: explore.CheckpointVersion, Impl: "x", Procs: 2, Values: 2, Roots: 4}
	if err := f.SaveCheckpoint(want); err != nil {
		t.Fatal(err)
	}
	got, err := f.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if got.Impl != "x" || got.Roots != 4 || got.Version != explore.CheckpointVersion {
		t.Fatalf("round trip lost data: %+v", got)
	}

	if err := os.WriteFile(f.Checkpoint, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadCheckpoint(); err == nil {
		t.Fatal("malformed checkpoint accepted")
	}

	// No flag: both directions are no-ops.
	bare := &Flags{}
	if err := bare.SaveCheckpoint(want); err != nil {
		t.Fatal(err)
	}
	if cp, err := bare.LoadCheckpoint(); cp != nil || err != nil {
		t.Fatalf("bare flags: %v, %v", cp, err)
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, map[string]int{"nodes": 7}); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); !strings.Contains(got, `"nodes": 7`) || !strings.HasSuffix(got, "\n") {
		t.Fatalf("wrote %q", got)
	}
}
