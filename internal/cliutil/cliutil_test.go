package cliutil

import (
	"context"
	"errors"
	"flag"
	"strings"
	"testing"
	"time"

	"waitfree/internal/explore"
)

func TestRegisterParsesSharedFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-parallel", "3", "-timeout", "2s", "-progress", "150ms", "-json"}); err != nil {
		t.Fatal(err)
	}
	if f.Parallel != 3 || f.Timeout != 2*time.Second || f.Progress != 150*time.Millisecond || !f.JSON {
		t.Fatalf("parsed %+v", f)
	}
}

func TestContextHonorsTimeout(t *testing.T) {
	f := &Flags{Timeout: time.Nanosecond}
	ctx, cancel := f.Context()
	defer cancel()
	<-ctx.Done()
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("ctx.Err() = %v", ctx.Err())
	}

	g := &Flags{}
	gctx, gcancel := g.Context()
	if gctx.Err() != nil {
		t.Fatalf("no-timeout context already dead: %v", gctx.Err())
	}
	gcancel()
	if !errors.Is(gctx.Err(), context.Canceled) {
		t.Fatalf("cancel did not propagate: %v", gctx.Err())
	}
}

func TestOptionsFoldsFlags(t *testing.T) {
	f := &Flags{Parallel: 2, Progress: time.Second}
	opts := f.Options(explore.Options{Memoize: true})
	if !opts.Memoize || opts.Parallelism != 2 || opts.ProgressInterval != time.Second || opts.OnProgress == nil {
		t.Fatalf("folded %+v", opts)
	}
	bare := (&Flags{}).Options(explore.Options{})
	if bare.OnProgress != nil || bare.ProgressInterval != 0 {
		t.Fatalf("progress hook installed without -progress: %+v", bare)
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, map[string]int{"nodes": 7}); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); !strings.Contains(got, `"nodes": 7`) || !strings.HasSuffix(got, "\n") {
		t.Fatalf("wrote %q", got)
	}
}
