package cliutil

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"strings"
	"testing"
	"time"

	"waitfree/internal/durable"
	"waitfree/internal/explore"
	"waitfree/internal/faults"
)

func TestRegisterParsesSharedFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-parallel", "3", "-timeout", "2s", "-progress", "150ms", "-json"}); err != nil {
		t.Fatal(err)
	}
	if f.Parallel != 3 || f.Timeout != 2*time.Second || f.Progress != 150*time.Millisecond || !f.JSON {
		t.Fatalf("parsed %+v", f)
	}
}

func TestRegisterParsesDurabilityFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := Register(fs)
	args := []string{"-checkpoint", "cp", "-checkpoint-every", "30s", "-stall-after", "1m", "-max-nodes", "5000"}
	if err := fs.Parse(args); err != nil {
		t.Fatal(err)
	}
	if f.Checkpoint != "cp" || f.CheckpointEvery != 30*time.Second || f.StallAfter != time.Minute || f.MaxNodes != 5000 {
		t.Fatalf("parsed %+v", f)
	}
}

func TestContextHonorsTimeout(t *testing.T) {
	f := &Flags{Timeout: time.Nanosecond}
	ctx, cancel := f.Context()
	defer cancel()
	<-ctx.Done()
	if !errors.Is(ctx.Err(), context.DeadlineExceeded) {
		t.Fatalf("ctx.Err() = %v", ctx.Err())
	}

	g := &Flags{}
	gctx, gcancel := g.Context()
	if gctx.Err() != nil {
		t.Fatalf("no-timeout context already dead: %v", gctx.Err())
	}
	gcancel()
	if !errors.Is(gctx.Err(), context.Canceled) {
		t.Fatalf("cancel did not propagate: %v", gctx.Err())
	}
}

func TestOptionsFoldsFlags(t *testing.T) {
	f := &Flags{Parallel: 2, Progress: time.Second}
	opts := f.Options(explore.Options{Memoize: true})
	if !opts.Memoize || opts.Parallelism != 2 || opts.ProgressInterval != time.Second || opts.OnProgress == nil {
		t.Fatalf("folded %+v", opts)
	}
	bare := (&Flags{}).Options(explore.Options{})
	if bare.OnProgress != nil || bare.ProgressInterval != 0 {
		t.Fatalf("progress hook installed without -progress: %+v", bare)
	}

	budgets := (&Flags{MaxNodes: 9000, StallAfter: time.Minute}).Options(explore.Options{})
	if budgets.MaxNodes != 9000 || budgets.StallAfter != time.Minute {
		t.Fatalf("budgets not folded: %+v", budgets)
	}
}

// TestSupervise pins the autosave wiring: -checkpoint-every without a
// -checkpoint file is a usage error, and with one it installs an
// OnCheckpoint hook that durably rewrites the file.
func TestSupervise(t *testing.T) {
	if _, err := (&Flags{CheckpointEvery: time.Second}).Supervise(explore.Options{}); err == nil {
		t.Fatal("-checkpoint-every accepted without -checkpoint")
	}

	noop, err := (&Flags{Checkpoint: "cp"}).Supervise(explore.Options{})
	if err != nil || noop.OnCheckpoint != nil || noop.CheckpointEvery != 0 {
		t.Fatalf("autosave armed without -checkpoint-every: %+v, %v", noop, err)
	}

	f := &Flags{Checkpoint: filepath.Join(t.TempDir(), "cp"), CheckpointEvery: time.Second}
	opts, err := f.Supervise(explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if opts.CheckpointEvery != time.Second || opts.OnCheckpoint == nil {
		t.Fatalf("autosave not armed: %+v", opts)
	}
	want := &explore.Checkpoint{Version: explore.CheckpointVersion, Impl: "x", Procs: 2, Values: 2, Roots: 4}
	opts.OnCheckpoint(want)
	got, err := f.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if got.Impl != "x" || got.Roots != 4 {
		t.Fatalf("autosaved checkpoint lost data: %+v", got)
	}
}

func TestRegisterParsesFaultFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-faults", "-max-crashes", "2", "-fault-mode", "crash-start", "-seed", "42", "-checkpoint", "cp.json"}); err != nil {
		t.Fatal(err)
	}
	if !f.Faults || f.MaxCrashes != 2 || f.FaultMode != faults.CrashBeforeFirstStep || f.Seed != 42 || f.Checkpoint != "cp.json" {
		t.Fatalf("parsed %+v", f)
	}
	opts := f.Options(explore.Options{})
	if opts.Faults.MaxCrashes != 2 || opts.Faults.Mode != faults.CrashBeforeFirstStep {
		t.Fatalf("fault model not folded: %+v", opts.Faults)
	}
	if f.Resolver() == nil {
		t.Fatal("no resolver")
	}

	// Defaults: faults off, model not folded, even with a crash budget.
	g := Register(flag.NewFlagSet("y", flag.ContinueOnError))
	if g.Faults || g.MaxCrashes != 1 {
		t.Fatalf("defaults %+v", g)
	}
	if opts := g.Options(explore.Options{}); opts.Faults.Enabled() {
		t.Fatalf("fault model folded without -faults: %+v", opts.Faults)
	}

	// A bad mode is a flag-parse error, not a deferred one.
	bad := flag.NewFlagSet("z", flag.ContinueOnError)
	bad.SetOutput(io.Discard)
	Register(bad)
	if err := bad.Parse([]string{"-fault-mode", "byzantine"}); err == nil {
		t.Fatal("unknown -fault-mode accepted")
	}
}

func TestRegisterParsesRecoveryFlags(t *testing.T) {
	fs := flag.NewFlagSet("x", flag.ContinueOnError)
	f := Register(fs)
	if err := fs.Parse([]string{"-faults", "-max-crashes", "1", "-fault-mode", "crash-recovery", "-max-recoveries", "2"}); err != nil {
		t.Fatal(err)
	}
	if f.FaultMode != faults.CrashRecovery || f.MaxRecoveries != 2 {
		t.Fatalf("parsed %+v", f)
	}
	opts := f.Options(explore.Options{})
	want := faults.Model{MaxCrashes: 1, Mode: faults.CrashRecovery, MaxRecoveries: 2}
	if opts.Faults != want {
		t.Fatalf("fault model not folded: %+v", opts.Faults)
	}
	if err := opts.Faults.Validate(); err != nil {
		t.Fatalf("folded model invalid: %v", err)
	}

	// -max-recoveries outside crash-recovery mode folds into a model the
	// engine rejects: the contradiction surfaces at Validate, not silently.
	g := Register(flag.NewFlagSet("y", flag.ContinueOnError))
	g.Faults, g.MaxCrashes, g.MaxRecoveries = true, 1, 1
	if err := g.Options(explore.Options{}).Faults.Validate(); err == nil {
		t.Fatal("crash-stop model with a recovery budget validated")
	}
}

func TestCheckpointFileRoundTrip(t *testing.T) {
	f := &Flags{Checkpoint: filepath.Join(t.TempDir(), "cp.json")}
	if cp, err := f.LoadCheckpoint(); cp != nil || err != nil {
		t.Fatalf("missing file: %v, %v", cp, err)
	}
	want := &explore.Checkpoint{Version: explore.CheckpointVersion, Impl: "x", Procs: 2, Values: 2, Roots: 4}
	if err := f.SaveCheckpoint(want); err != nil {
		t.Fatal(err)
	}
	got, err := f.LoadCheckpoint()
	if err != nil {
		t.Fatal(err)
	}
	if got.Impl != "x" || got.Roots != 4 || got.Version != explore.CheckpointVersion {
		t.Fatalf("round trip lost data: %+v", got)
	}

	if err := os.WriteFile(f.Checkpoint, []byte("not json"), 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := f.LoadCheckpoint(); !errors.Is(err, durable.ErrCorruptCheckpoint) {
		t.Fatalf("malformed checkpoint: err = %v, want ErrCorruptCheckpoint", err)
	}

	// An empty file is NOT a fresh start: it usually means a crashed
	// non-atomic writer, and silently restarting a long run would lose
	// everything it had saved.
	if err := os.WriteFile(f.Checkpoint, nil, 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = f.LoadCheckpoint()
	if !errors.Is(err, durable.ErrCorruptCheckpoint) {
		t.Fatalf("empty checkpoint: err = %v, want ErrCorruptCheckpoint", err)
	}
	var ce *durable.CorruptError
	if !errors.As(err, &ce) || ce.Path != f.Checkpoint {
		t.Fatalf("corrupt error does not carry the path: %v", err)
	}

	// A truncated durable file surfaces the corruption AND the salvageable
	// prefix for commands that opt in.
	if err := f.SaveCheckpoint(want); err != nil {
		t.Fatal(err)
	}
	blob, err := os.ReadFile(f.Checkpoint)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f.Checkpoint, blob[:len(blob)-10], 0o644); err != nil {
		t.Fatal(err)
	}
	_, err = f.LoadCheckpoint()
	if !errors.As(err, &ce) {
		t.Fatalf("truncated checkpoint: err = %v, want *durable.CorruptError", err)
	}
	if ce.Salvaged == nil || ce.Salvaged.Impl != "x" {
		t.Fatalf("truncation lost the salvageable header: %+v", ce.Salvaged)
	}

	// Pre-durable checkpoints were bare JSON; they still load.
	legacy, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(f.Checkpoint, legacy, 0o644); err != nil {
		t.Fatal(err)
	}
	if got, err := f.LoadCheckpoint(); err != nil || got.Impl != "x" {
		t.Fatalf("legacy JSON checkpoint: %+v, %v", got, err)
	}

	// No flag: both directions are no-ops.
	bare := &Flags{}
	if err := bare.SaveCheckpoint(want); err != nil {
		t.Fatal(err)
	}
	if cp, err := bare.LoadCheckpoint(); cp != nil || err != nil {
		t.Fatalf("bare flags: %v, %v", cp, err)
	}
}

func TestWriteJSON(t *testing.T) {
	var b strings.Builder
	if err := WriteJSON(&b, map[string]int{"nodes": 7}); err != nil {
		t.Fatal(err)
	}
	if got := b.String(); !strings.Contains(got, `"nodes": 7`) || !strings.HasSuffix(got, "\n") {
		t.Fatalf("wrote %q", got)
	}
}
