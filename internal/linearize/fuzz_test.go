package linearize

import (
	"testing"

	"waitfree/internal/hist"
	"waitfree/internal/types"
)

// FuzzCheckMatchesBruteForce decodes fuzzer bytes into a small register
// history and cross-validates the checker against exhaustive permutation
// search. Run with `go test -fuzz=FuzzCheckMatchesBruteForce` to explore;
// the seed corpus runs under plain `go test`.
func FuzzCheckMatchesBruteForce(f *testing.F) {
	f.Add([]byte{0x01, 0x42, 0x10, 0x33, 0x07})
	f.Add([]byte{0xff, 0x00, 0xff, 0x00, 0xff, 0x00})
	f.Add([]byte{0x12, 0x34, 0x56, 0x78})
	f.Fuzz(func(t *testing.T, data []byte) {
		h := decodeHistory(data)
		if len(h) == 0 || len(h) > 6 {
			return
		}
		spec := types.Register(3, 3)
		_, err := Check(spec, 0, h)
		got := err == nil
		want := bruteCheck(spec, 0, h)
		if got != want {
			t.Fatalf("checker=%v brute=%v\nhistory: %v", got, want, h)
		}
	})
}

// decodeHistory turns fuzzer bytes into a well-formed history: each byte
// yields one operation; per-process sequentiality is enforced by
// construction.
func decodeHistory(data []byte) hist.History {
	clock := 0
	tick := func() int { clock++; return clock }
	lastEnd := [3]int{}
	var h hist.History
	for _, b := range data {
		if len(h) >= 6 {
			break
		}
		proc := int(b) % 3
		begin := tick()
		if begin <= lastEnd[proc] {
			begin = lastEnd[proc] + 1
			clock = begin
		}
		if b&0x08 != 0 {
			tick() // widen the interval
		}
		end := tick()
		lastEnd[proc] = end
		val := int(b>>4) % 3
		var op hist.Op
		if b&0x04 != 0 {
			op = hist.Op{Proc: proc, Port: proc + 1, Inv: types.Write(val), Resp: types.OK, Begin: begin, End: end}
		} else {
			op = hist.Op{Proc: proc, Port: proc + 1, Inv: types.Read, Resp: types.ValOf(val), Begin: begin, End: end}
		}
		h = append(h, op)
	}
	return h
}
