// Package linearize decides linearizability of concurrent histories
// against a sequential type specification, in the style of Wing and Gong.
//
// The checker searches for a total order of a history's operations that
// respects real-time precedence and is a legal sequential history of the
// type. It memoizes on (set of linearized operations, object state), which
// makes it fast on register-like histories while remaining complete for
// arbitrary (including nondeterministic) finite types.
package linearize

import (
	"errors"
	"fmt"
	"math/bits"
	"sort"

	"waitfree/internal/hist"
	"waitfree/internal/types"
)

// MaxOps bounds the history size the checker accepts (operations are
// tracked in a 64-bit set).
const MaxOps = 64

// Errors reported by Check.
var (
	// ErrTooLarge reports a history with more than MaxOps operations.
	ErrTooLarge = errors.New("linearize: history exceeds MaxOps operations")
	// ErrNotLinearizable reports that no valid linearization exists.
	ErrNotLinearizable = errors.New("linearize: history is not linearizable")
)

// Witness is a linearization order: indices into the checked history in
// linearization order.
type Witness []int

// memoKey identifies a search node: the set of already-linearized
// operations and the object state they produced.
type memoKey struct {
	done  uint64
	state types.State
}

// Check decides whether h is linearizable with respect to spec starting
// from init. Incomplete (pending) operations are not supported and must be
// removed with History.Complete first. On success it returns a witness
// linearization; on failure it returns ErrNotLinearizable.
func Check(spec *types.Spec, init types.State, h hist.History) (Witness, error) {
	if err := h.Validate(); err != nil {
		return nil, err
	}
	if len(h) > MaxOps {
		return nil, fmt.Errorf("%w: %d operations", ErrTooLarge, len(h))
	}
	ops := append(hist.History(nil), h...)
	// Sorting by Begin keeps the candidate scan cache-friendly and makes
	// witnesses deterministic.
	idx := make([]int, len(ops))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return ops[idx[a]].Begin < ops[idx[b]].Begin })

	c := &checker{spec: spec, ops: ops, order: idx, memo: make(map[memoKey]bool)}
	var witness Witness
	if !c.search(0, init, &witness) {
		return nil, fmt.Errorf("%w: %v", ErrNotLinearizable, h)
	}
	// The witness was appended in reverse discovery order; it is built
	// front-to-back below, so it is already in linearization order.
	return witness, nil
}

type checker struct {
	spec  *types.Spec
	ops   hist.History
	order []int // op indices sorted by Begin
	memo  map[memoKey]bool
}

// search tries to extend a partial linearization. done is the set of
// already-linearized ops (as a bitmask over c.ops indices); q is the state
// they produced. It appends the chosen op indices to *witness on success.
func (c *checker) search(done uint64, q types.State, witness *Witness) bool {
	n := len(c.ops)
	if bits.OnesCount64(done) == n {
		return true
	}
	key := memoKey{done: done, state: q}
	if failed, seen := c.memo[key]; seen && failed {
		return false
	}
	// An op may linearize next iff every op that precedes it (in real
	// time) is already linearized. Equivalently: its Begin is <= the
	// minimal End among remaining ops.
	minEnd := int(^uint(0) >> 1)
	for _, i := range c.order {
		if done&(1<<uint(i)) != 0 {
			continue
		}
		if c.ops[i].End < minEnd {
			minEnd = c.ops[i].End
		}
	}
	for _, i := range c.order {
		if done&(1<<uint(i)) != 0 {
			continue
		}
		op := c.ops[i]
		if op.Begin > minEnd {
			// Every later candidate (sorted by Begin) is also blocked.
			break
		}
		ts := c.spec.Step(q, op.Port, op.Inv)
		for _, t := range ts {
			if t.Resp != op.Resp {
				continue
			}
			*witness = append(*witness, i)
			if c.search(done|1<<uint(i), t.Next, witness) {
				return true
			}
			*witness = (*witness)[:len(*witness)-1]
		}
	}
	c.memo[key] = true
	return false
}

// VerifyWitness replays a witness order and confirms it is a legal
// sequential history with matching responses and real-time order. It is
// used by tests to validate the checker against itself. Nondeterministic
// branching is handled by delegating the sequential-legality check to
// types.SeqHistory.Validate, which forks over matching branches.
func VerifyWitness(spec *types.Spec, init types.State, h hist.History, w Witness) error {
	if len(w) != len(h) {
		return fmt.Errorf("linearize: witness covers %d of %d ops", len(w), len(h))
	}
	seen := make(map[int]bool, len(w))
	seq := make(types.SeqHistory, 0, len(w))
	for pos, i := range w {
		if i < 0 || i >= len(h) || seen[i] {
			return fmt.Errorf("linearize: witness index %d invalid at position %d", i, pos)
		}
		seen[i] = true
		op := h[i]
		// Real-time order: no later-linearized op may precede op.
		for _, j := range w[pos+1:] {
			if h[j].Precedes(op) {
				return fmt.Errorf("linearize: witness violates precedence: %v before %v", op, h[j])
			}
		}
		seq = append(seq, types.SeqEvent{Port: op.Port, Inv: op.Inv, Resp: op.Resp})
	}
	if _, err := seq.Validate(spec, init); err != nil {
		return fmt.Errorf("linearize: witness is not sequentially legal: %w", err)
	}
	return nil
}
