package linearize

import (
	"errors"
	"math/rand"
	"testing"

	"waitfree/internal/hist"
	"waitfree/internal/types"
)

func TestRegisterLinearizable(t *testing.T) {
	reg := types.Register(3, 4)
	// w(1) overlaps r->1; then r->1 strictly after: linearizable.
	h := hist.History{
		{Proc: 0, Port: 1, Inv: types.Write(1), Resp: types.OK, Begin: 0, End: 4},
		{Proc: 1, Port: 2, Inv: types.Read, Resp: types.ValOf(1), Begin: 1, End: 3},
		{Proc: 2, Port: 3, Inv: types.Read, Resp: types.ValOf(1), Begin: 5, End: 6},
	}
	w, err := Check(reg, 0, h)
	if err != nil {
		t.Fatal(err)
	}
	if err := VerifyWitness(reg, 0, h, w); err != nil {
		t.Fatal(err)
	}
}

func TestRegisterNewOldInversion(t *testing.T) {
	reg := types.Register(3, 4)
	// Classic new/old inversion: r->1 completes before r->0 begins, both
	// after w(1) completed. Not linearizable.
	h := hist.History{
		{Proc: 0, Port: 1, Inv: types.Write(1), Resp: types.OK, Begin: 0, End: 1},
		{Proc: 1, Port: 2, Inv: types.Read, Resp: types.ValOf(1), Begin: 2, End: 3},
		{Proc: 2, Port: 3, Inv: types.Read, Resp: types.ValOf(0), Begin: 4, End: 5},
	}
	if _, err := Check(reg, 0, h); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("err = %v, want ErrNotLinearizable", err)
	}
}

func TestRegisterStaleReadDuringOverlapOK(t *testing.T) {
	reg := types.Register(2, 2)
	// A read overlapping a write may return the old value.
	h := hist.History{
		{Proc: 0, Port: 1, Inv: types.Write(1), Resp: types.OK, Begin: 0, End: 5},
		{Proc: 1, Port: 2, Inv: types.Read, Resp: types.ValOf(0), Begin: 1, End: 2},
	}
	if _, err := Check(reg, 0, h); err != nil {
		t.Fatal(err)
	}
}

func TestQueueLinearizability(t *testing.T) {
	q := types.Queue(2, 3, 5)
	good := hist.History{
		{Proc: 0, Port: 1, Inv: types.Enq(1), Resp: types.OK, Begin: 0, End: 1},
		{Proc: 0, Port: 1, Inv: types.Enq(2), Resp: types.OK, Begin: 2, End: 3},
		{Proc: 1, Port: 2, Inv: types.Deq, Resp: types.ValOf(1), Begin: 4, End: 5},
		{Proc: 1, Port: 2, Inv: types.Deq, Resp: types.ValOf(2), Begin: 6, End: 7},
	}
	if _, err := Check(q, types.QueueState(), good); err != nil {
		t.Fatal(err)
	}
	// FIFO violation: strictly later enq dequeued first.
	bad := hist.History{
		{Proc: 0, Port: 1, Inv: types.Enq(1), Resp: types.OK, Begin: 0, End: 1},
		{Proc: 0, Port: 1, Inv: types.Enq(2), Resp: types.OK, Begin: 2, End: 3},
		{Proc: 1, Port: 2, Inv: types.Deq, Resp: types.ValOf(2), Begin: 4, End: 5},
		{Proc: 1, Port: 2, Inv: types.Deq, Resp: types.ValOf(1), Begin: 6, End: 7},
	}
	if _, err := Check(q, types.QueueState(), bad); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("FIFO violation: err = %v", err)
	}
}

func TestOneUseBitNondeterministicHistory(t *testing.T) {
	b := types.OneUseBit()
	// Two sequential reads: the second hits DEAD and may return anything.
	for _, second := range []int{0, 1} {
		h := hist.History{
			{Proc: 0, Port: 1, Inv: types.Read, Resp: types.ValOf(0), Begin: 0, End: 1},
			{Proc: 0, Port: 1, Inv: types.Read, Resp: types.ValOf(second), Begin: 2, End: 3},
		}
		if _, err := Check(b, types.OneUseUnset, h); err != nil {
			t.Errorf("dead read %d: %v", second, err)
		}
	}
	// A first read of an UNSET bit must return 0.
	h := hist.History{
		{Proc: 0, Port: 1, Inv: types.Read, Resp: types.ValOf(1), Begin: 0, End: 1},
	}
	if _, err := Check(b, types.OneUseUnset, h); !errors.Is(err, ErrNotLinearizable) {
		t.Fatalf("wrong unset read: err = %v", err)
	}
}

func TestConcurrentReadWriteOneUseBit(t *testing.T) {
	b := types.OneUseBit()
	// Read concurrent with the write may return 0 or 1.
	for _, v := range []int{0, 1} {
		h := hist.History{
			{Proc: 0, Port: 2, Inv: types.Write(1), Resp: types.OK, Begin: 0, End: 3},
			{Proc: 1, Port: 1, Inv: types.Read, Resp: types.ValOf(v), Begin: 1, End: 2},
		}
		if _, err := Check(b, types.OneUseUnset, h); err != nil {
			t.Errorf("concurrent read->%d: %v", v, err)
		}
	}
}

func TestTooLarge(t *testing.T) {
	reg := types.Register(1, 2)
	h := make(hist.History, MaxOps+1)
	clock := 0
	for i := range h {
		h[i] = hist.Op{Proc: 0, Port: 1, Inv: types.Read, Resp: types.ValOf(0), Begin: clock, End: clock + 1}
		clock += 2
	}
	if _, err := Check(reg, 0, h); !errors.Is(err, ErrTooLarge) {
		t.Fatalf("err = %v, want ErrTooLarge", err)
	}
}

func TestEmptyHistory(t *testing.T) {
	if w, err := Check(types.Register(1, 2), 0, nil); err != nil || len(w) != 0 {
		t.Fatalf("empty history: w=%v err=%v", w, err)
	}
}

func TestInvalidHistoryRejected(t *testing.T) {
	reg := types.Register(1, 2)
	h := hist.History{{Proc: 0, Port: 1, Begin: 5, End: 1}}
	if _, err := Check(reg, 0, h); !errors.Is(err, hist.ErrBadInterval) {
		t.Fatalf("err = %v, want ErrBadInterval", err)
	}
}

func TestVerifyWitnessRejectsBadWitness(t *testing.T) {
	reg := types.Register(2, 2)
	h := hist.History{
		{Proc: 0, Port: 1, Inv: types.Write(1), Resp: types.OK, Begin: 0, End: 1},
		{Proc: 1, Port: 2, Inv: types.Read, Resp: types.ValOf(1), Begin: 2, End: 3},
	}
	// Reversed order violates precedence (and sequential legality).
	if err := VerifyWitness(reg, 0, h, Witness{1, 0}); err == nil {
		t.Error("reversed witness accepted")
	}
	if err := VerifyWitness(reg, 0, h, Witness{0}); err == nil {
		t.Error("short witness accepted")
	}
	if err := VerifyWitness(reg, 0, h, Witness{0, 0}); err == nil {
		t.Error("duplicate witness accepted")
	}
	if err := VerifyWitness(reg, 0, h, Witness{0, 1}); err != nil {
		t.Errorf("correct witness rejected: %v", err)
	}
}

// TestRandomSequentialHistoriesAlwaysLinearizable generates genuinely
// sequential random register histories (which are trivially linearizable)
// and checks the checker accepts them, then perturbs one read into an
// impossible value and checks rejection.
func TestRandomSequentialHistoriesAlwaysLinearizable(t *testing.T) {
	reg := types.Register(4, 4)
	rng := rand.New(rand.NewSource(42))
	for trial := 0; trial < 50; trial++ {
		var h hist.History
		cur := 0
		clock := 0
		n := 2 + rng.Intn(10)
		lastReadIdx := -1
		for i := 0; i < n; i++ {
			proc := rng.Intn(4)
			var op hist.Op
			if rng.Intn(2) == 0 {
				v := rng.Intn(4)
				op = hist.Op{Proc: proc, Port: proc + 1, Inv: types.Write(v), Resp: types.OK, Begin: clock, End: clock + 1}
				cur = v
			} else {
				op = hist.Op{Proc: proc, Port: proc + 1, Inv: types.Read, Resp: types.ValOf(cur), Begin: clock, End: clock + 1}
				lastReadIdx = len(h)
			}
			clock += 2
			h = append(h, op)
		}
		if _, err := Check(reg, 0, h); err != nil {
			t.Fatalf("trial %d: sequential history rejected: %v\n%v", trial, err, h)
		}
		if lastReadIdx >= 0 {
			bad := append(hist.History(nil), h...)
			bad[lastReadIdx].Resp = types.ValOf((bad[lastReadIdx].Resp.Val + 1) % 4)
			// The perturbed read may still be legal if an adjacent write
			// could be reordered; only check strictly-sequential cases
			// where it cannot: reads have unique values here only when no
			// overlap exists, so rejection must occur.
			if _, err := Check(reg, 0, bad); err == nil {
				// Verify by brute force that the perturbed value is truly
				// impossible: in a fully sequential history it is.
				t.Fatalf("trial %d: perturbed sequential history accepted\n%v", trial, bad)
			}
		}
	}
}
