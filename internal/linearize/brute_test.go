package linearize

import (
	"errors"
	"math/rand"
	"testing"

	"waitfree/internal/hist"
	"waitfree/internal/types"
)

// bruteCheck decides linearizability by enumerating every permutation of
// the history and testing precedence-respect plus sequential legality. It
// is exponential and exists only to cross-validate the real checker on
// small random histories.
func bruteCheck(spec *types.Spec, init types.State, h hist.History) bool {
	n := len(h)
	used := make([]bool, n)
	order := make([]int, 0, n)
	var rec func() bool
	rec = func() bool {
		if len(order) == n {
			return legal(spec, init, h, order)
		}
		for i := 0; i < n; i++ {
			if used[i] {
				continue
			}
			// Respect precedence: all ops preceding i must already be in.
			ok := true
			for j := 0; j < n; j++ {
				if !used[j] && j != i && h[j].Precedes(h[i]) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			used[i] = true
			order = append(order, i)
			if rec() {
				return true
			}
			order = order[:len(order)-1]
			used[i] = false
		}
		return false
	}
	return rec()
}

func legal(spec *types.Spec, init types.State, h hist.History, order []int) bool {
	seq := make(types.SeqHistory, 0, len(order))
	for _, i := range order {
		seq = append(seq, types.SeqEvent{Port: h[i].Port, Inv: h[i].Inv, Resp: h[i].Resp})
	}
	_, err := seq.Validate(spec, init)
	return err == nil
}

// TestCheckerMatchesBruteForce generates random small register histories —
// including invalid ones — and cross-validates the Wing-Gong checker
// against exhaustive permutation search.
func TestCheckerMatchesBruteForce(t *testing.T) {
	spec := types.Register(3, 3)
	rng := rand.New(rand.NewSource(20240704))
	agree, linearizable := 0, 0
	for trial := 0; trial < 400; trial++ {
		h := randomHistory(rng, 3, 6, 3)
		_, err := Check(spec, 0, h)
		got := err == nil
		if err != nil && !errors.Is(err, ErrNotLinearizable) {
			t.Fatalf("trial %d: unexpected error %v", trial, err)
		}
		want := bruteCheck(spec, 0, h)
		if got != want {
			t.Fatalf("trial %d: checker=%v brute=%v\nhistory: %v", trial, got, want, h)
		}
		agree++
		if got {
			linearizable++
		}
	}
	if linearizable == 0 || linearizable == agree {
		t.Errorf("degenerate sample: %d/%d linearizable", linearizable, agree)
	}
}

// randomHistory builds a well-formed random register history: per-process
// sequential, arbitrary overlaps across processes, random (often wrong)
// read values.
func randomHistory(rng *rand.Rand, procs, ops, k int) hist.History {
	clock := 0
	tick := func() int { clock++; return clock }
	h := make(hist.History, 0, ops)
	// Build per-proc chains with random interleaving: generate events as
	// (proc, begin, end) with begin/end drawn in order per process.
	pending := make([]int, procs) // last end per proc
	for len(h) < ops {
		p := rng.Intn(procs)
		begin := tick()
		if begin <= pending[p] {
			begin = pending[p] + 1
			clock = begin
		}
		// Let the op span a random number of ticks.
		span := rng.Intn(3)
		for i := 0; i < span; i++ {
			tick()
		}
		end := tick()
		pending[p] = end
		var op hist.Op
		if rng.Intn(2) == 0 {
			op = hist.Op{Proc: p, Port: p + 1, Inv: types.Write(rng.Intn(k)), Resp: types.OK, Begin: begin, End: end}
		} else {
			op = hist.Op{Proc: p, Port: p + 1, Inv: types.Read, Resp: types.ValOf(rng.Intn(k)), Begin: begin, End: end}
		}
		h = append(h, op)
	}
	return h
}

// TestCheckerMatchesBruteForceOnQueue repeats the cross-validation on a
// type with non-commuting operations.
func TestCheckerMatchesBruteForceOnQueue(t *testing.T) {
	spec := types.Queue(3, 2, 4)
	rng := rand.New(rand.NewSource(99))
	for trial := 0; trial < 200; trial++ {
		h := randomQueueHistory(rng, 2, 5)
		_, err := Check(spec, types.QueueState(), h)
		got := err == nil
		want := bruteCheck(spec, types.QueueState(), h)
		if got != want {
			t.Fatalf("trial %d: checker=%v brute=%v\nhistory: %v", trial, got, want, h)
		}
	}
}

func randomQueueHistory(rng *rand.Rand, procs, ops int) hist.History {
	clock := 0
	tick := func() int { clock++; return clock }
	pending := make([]int, procs)
	h := make(hist.History, 0, ops)
	for len(h) < ops {
		p := rng.Intn(procs)
		begin := tick()
		if begin <= pending[p] {
			begin = pending[p] + 1
			clock = begin
		}
		if rng.Intn(3) > 0 {
			tick()
		}
		end := tick()
		pending[p] = end
		var op hist.Op
		switch rng.Intn(3) {
		case 0:
			op = hist.Op{Proc: p, Port: p + 1, Inv: types.Enq(rng.Intn(2)), Resp: types.OK, Begin: begin, End: end}
		case 1:
			op = hist.Op{Proc: p, Port: p + 1, Inv: types.Deq, Resp: types.ValOf(rng.Intn(2)), Begin: begin, End: end}
		default:
			op = hist.Op{Proc: p, Port: p + 1, Inv: types.Deq, Resp: types.Response{Label: types.LabelEmpty}, Begin: begin, End: end}
		}
		h = append(h, op)
	}
	return h
}
