// Package stress provides the concurrent correctness-testing harness used
// by tests, experiments, and benchmarks: a clock-stamped history recorder,
// regularity checking for single-writer registers, and ready-made stress
// drivers for register-like objects. The exhaustive explorer (package
// explore) proves properties of small instances; this package samples
// large instances under the Go scheduler and checks the recorded histories
// with the linearizability checker (package linearize) or the regularity
// condition.
package stress

import (
	"fmt"
	"math/rand"
	"sync"

	"waitfree/internal/hist"
	"waitfree/internal/linearize"
	"waitfree/internal/types"
)

// Recorder collects a concurrent history of operations with a global
// logical clock. It is safe for concurrent use.
type Recorder struct {
	mu    sync.Mutex
	clock int64
	ops   hist.History
}

// NewRecorder returns an empty recorder.
func NewRecorder() *Recorder { return &Recorder{} }

// Tick returns the next clock value.
func (r *Recorder) Tick() int {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.clock++
	return int(r.clock)
}

// Record appends one operation.
func (r *Recorder) Record(op hist.Op) {
	r.mu.Lock()
	defer r.mu.Unlock()
	r.ops = append(r.ops, op)
}

// Read performs f as a clock-stamped read operation by proc.
func (r *Recorder) Read(proc int, f func() int) int {
	begin := r.Tick()
	v := f()
	r.Record(hist.Op{Proc: proc, Port: 1, Inv: types.Read, Resp: types.ValOf(v), Begin: begin, End: r.Tick()})
	return v
}

// Write performs f as a clock-stamped write(v) operation by proc.
func (r *Recorder) Write(proc, v int, f func()) {
	begin := r.Tick()
	f()
	r.Record(hist.Op{Proc: proc, Port: 1, Inv: types.Write(v), Resp: types.OK, Begin: begin, End: r.Tick()})
}

// Op performs f as a clock-stamped operation with an arbitrary invocation.
func (r *Recorder) Op(proc, port int, inv types.Invocation, f func() types.Response) types.Response {
	begin := r.Tick()
	resp := f()
	r.Record(hist.Op{Proc: proc, Port: port, Inv: inv, Resp: resp, Begin: begin, End: r.Tick()})
	return resp
}

// History returns a copy of the recorded history.
func (r *Recorder) History() hist.History {
	r.mu.Lock()
	defer r.mu.Unlock()
	return append(hist.History(nil), r.ops...)
}

// CheckAtomic verifies the history is linearizable as a k-valued register
// initialized to init.
func (r *Recorder) CheckAtomic(k, init int) error {
	_, err := linearize.Check(types.Register(1, k), init, r.History())
	return err
}

// CheckRegular verifies single-writer regularity: every read returns the
// value of the latest write completed before it, of some overlapping
// write, or the initial value. A pending write (End == hist.Pending, e.g.
// the writer crashed mid-operation) never completes before any read; it
// overlaps every read that begins after it starts, so its value is
// allowed there. Pending reads returned no value and are skipped.
func (r *Recorder) CheckRegular(init int) error {
	h := r.History()
	var writes, reads hist.History
	for _, op := range h {
		if op.Inv.Op == types.OpWrite {
			writes = append(writes, op)
		} else {
			reads = append(reads, op)
		}
	}
	for _, rd := range reads {
		if !rd.Complete() {
			continue
		}
		allowed := map[int]bool{}
		latestEnd := -1
		latestVal := init
		for _, w := range writes {
			switch {
			case w.Complete() && w.End < rd.Begin:
				if w.End > latestEnd {
					latestEnd = w.End
					latestVal = w.Inv.A
				}
			case w.Begin < rd.End:
				allowed[w.Inv.A] = true
			}
		}
		allowed[latestVal] = true
		if !allowed[rd.Resp.Val] {
			return fmt.Errorf("stress: read %v not regular (allowed %v)", rd, allowed)
		}
	}
	return nil
}

// RegisterUnderTest abstracts a multi-writer register for the stress
// drivers; adapt single-writer registers by ignoring the writer index.
type RegisterUnderTest struct {
	Write func(writer, v int)
	Read  func(reader int) int
}

// Config shapes a register stress run.
type Config struct {
	Writers, Readers int
	Values           int // value range 0..Values-1
	OpsPerParty      int
	Seed             int64
}

// Run drives the register concurrently and returns the recorder. Writers
// write pseudo-random values; readers read. Ops stay under the
// linearizability checker's operation cap when
// (Writers+Readers)*OpsPerParty <= 64.
func Run(reg RegisterUnderTest, cfg Config) *Recorder {
	rec := NewRecorder()
	rng := rand.New(rand.NewSource(cfg.Seed))
	// Pre-draw write values so goroutines need no shared rng.
	vals := make([][]int, cfg.Writers)
	for w := range vals {
		vals[w] = make([]int, cfg.OpsPerParty)
		for i := range vals[w] {
			vals[w][i] = rng.Intn(cfg.Values)
		}
	}
	var wg sync.WaitGroup
	for w := 0; w < cfg.Writers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for _, v := range vals[w] {
				v := v
				rec.Write(w, v, func() { reg.Write(w, v) })
			}
		}(w)
	}
	for rd := 0; rd < cfg.Readers; rd++ {
		wg.Add(1)
		go func(rd int) {
			defer wg.Done()
			for i := 0; i < cfg.OpsPerParty; i++ {
				rec.Read(cfg.Writers+rd, func() int { return reg.Read(rd) })
			}
		}(rd)
	}
	wg.Wait()
	return rec
}
