package stress

import (
	"strings"
	"sync"
	"testing"

	"waitfree/internal/hist"
	"waitfree/internal/registers"
	"waitfree/internal/types"
)

func TestRecorderClockMonotone(t *testing.T) {
	r := NewRecorder()
	prev := 0
	for i := 0; i < 100; i++ {
		v := r.Tick()
		if v <= prev {
			t.Fatalf("clock not monotone: %d then %d", prev, v)
		}
		prev = v
	}
}

func TestRecorderConcurrentTicksDistinct(t *testing.T) {
	r := NewRecorder()
	var mu sync.Mutex
	seen := make(map[int]bool)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := r.Tick()
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate tick %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestCheckAtomicOnAtomicRegister(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		reg := registers.NewMRMWAtomic(2, 2, 0)
		rec := Run(RegisterUnderTest{Write: reg.Write, Read: reg.Read}, Config{
			Writers: 2, Readers: 2, Values: 8, OpsPerParty: 7, Seed: seed,
		})
		if err := rec.CheckAtomic(8, 0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCheckRegularAcceptsRegularRejectsGarbage(t *testing.T) {
	// A history with a stale-but-overlapping read is regular.
	r := NewRecorder()
	wBegin := r.Tick()
	rBegin := r.Tick()
	r.Record(historyOp(1, types.Read, types.ValOf(0), rBegin, r.Tick()))
	r.Record(historyOp(0, types.Write(1), types.OK, wBegin, r.Tick()))
	if err := r.CheckRegular(0); err != nil {
		t.Fatalf("regular history rejected: %v", err)
	}
	// A read returning a never-written, non-initial value is not regular.
	bad := NewRecorder()
	b := bad.Tick()
	bad.Record(historyOp(1, types.Read, types.ValOf(7), b, bad.Tick()))
	if err := bad.CheckRegular(0); err == nil {
		t.Fatal("garbage read accepted as regular")
	} else if !strings.Contains(err.Error(), "not regular") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestCheckRegularPendingWrite(t *testing.T) {
	// A write whose End is Pending (the writer crashed mid-operation)
	// never completes before any read; it overlaps every read that begins
	// after it starts, so a read returning its value is regular. The old
	// checker let End == -1 satisfy w.End < rd.Begin, classifying the
	// crashed write as completed-before with its value discarded, and
	// falsely rejected such reads.
	r := NewRecorder()
	wBegin := r.Tick()
	r.Record(hist.Op{Proc: 0, Port: 1, Inv: types.Write(5), Begin: wBegin, End: hist.Pending})
	rBegin := r.Tick()
	r.Record(historyOp(1, types.Read, types.ValOf(5), rBegin, r.Tick()))
	if err := r.CheckRegular(0); err != nil {
		t.Fatalf("read overlapping a pending write rejected: %v", err)
	}

	// The initial value stays allowed too: the write never completed.
	old := NewRecorder()
	owBegin := old.Tick()
	old.Record(hist.Op{Proc: 0, Port: 1, Inv: types.Write(5), Begin: owBegin, End: hist.Pending})
	orBegin := old.Tick()
	old.Record(historyOp(1, types.Read, types.ValOf(0), orBegin, old.Tick()))
	if err := old.CheckRegular(0); err != nil {
		t.Fatalf("read of initial value alongside pending write rejected: %v", err)
	}

	// A pending write beginning after the read ended allows nothing.
	bad := NewRecorder()
	brBegin := bad.Tick()
	bad.Record(historyOp(1, types.Read, types.ValOf(5), brBegin, bad.Tick()))
	bwBegin := bad.Tick()
	bad.Record(hist.Op{Proc: 0, Port: 1, Inv: types.Write(5), Begin: bwBegin, End: hist.Pending})
	if err := bad.CheckRegular(0); err == nil {
		t.Fatal("read of a future pending write accepted")
	}

	// Pending reads returned no value and are skipped, not flagged.
	pr := NewRecorder()
	prBegin := pr.Tick()
	pr.Record(hist.Op{Proc: 1, Port: 1, Inv: types.Read, Begin: prBegin, End: hist.Pending})
	if err := pr.CheckRegular(0); err != nil {
		t.Fatalf("pending read rejected: %v", err)
	}
}

func TestCheckRegularCrashInjectedRun(t *testing.T) {
	// Crash the writer mid-operation against a live register: the write
	// takes effect but its recorded operation stays pending. Concurrent
	// readers may observe either value; regularity must accept every
	// interleaving.
	for iter := 0; iter < 20; iter++ {
		reg := registers.NewMRSWAtomic(2, 0)
		rec := NewRecorder()
		var wg sync.WaitGroup
		wg.Add(1)
		go func() {
			defer wg.Done()
			begin := rec.Tick()
			reg.Write(7) // applied, but the writer crashes before returning
			rec.Record(hist.Op{Proc: 0, Port: 1, Inv: types.Write(7), Begin: begin, End: hist.Pending})
		}()
		for rd := 0; rd < 2; rd++ {
			wg.Add(1)
			go func(rd int) {
				defer wg.Done()
				for i := 0; i < 8; i++ {
					rec.Read(1+rd, func() int { return reg.Read(rd) })
				}
			}(rd)
		}
		wg.Wait()
		if err := rec.CheckRegular(0); err != nil {
			t.Fatalf("iter %d: crash-injected run rejected: %v", iter, err)
		}
	}
}

func TestRunSingleWriterRegularUnderRace(t *testing.T) {
	// Heavier concurrent run aimed at the race detector: one writer and
	// three readers on an atomic MRSW register. Atomicity implies
	// regularity, so CheckRegular must accept every interleaving.
	for seed := int64(0); seed < 10; seed++ {
		reg := registers.NewMRSWAtomic(3, 0)
		rec := Run(RegisterUnderTest{
			Write: func(_, v int) { reg.Write(v) },
			Read:  reg.Read,
		}, Config{Writers: 1, Readers: 3, Values: 4, OpsPerParty: 16, Seed: seed})
		if err := rec.CheckRegular(0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestOpRecordsArbitraryInvocations(t *testing.T) {
	r := NewRecorder()
	resp := r.Op(2, 3, types.TAS, func() types.Response { return types.ValOf(0) })
	if resp != types.ValOf(0) {
		t.Fatalf("Op returned %v", resp)
	}
	h := r.History()
	if len(h) != 1 || h[0].Proc != 2 || h[0].Port != 3 || h[0].Inv != types.TAS {
		t.Fatalf("recorded op = %+v", h)
	}
}

func historyOp(proc int, inv types.Invocation, resp types.Response, begin, end int) hist.Op {
	return hist.Op{Proc: proc, Port: 1, Inv: inv, Resp: resp, Begin: begin, End: end}
}
