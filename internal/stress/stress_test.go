package stress

import (
	"strings"
	"sync"
	"testing"

	"waitfree/internal/hist"
	"waitfree/internal/registers"
	"waitfree/internal/types"
)

func TestRecorderClockMonotone(t *testing.T) {
	r := NewRecorder()
	prev := 0
	for i := 0; i < 100; i++ {
		v := r.Tick()
		if v <= prev {
			t.Fatalf("clock not monotone: %d then %d", prev, v)
		}
		prev = v
	}
}

func TestRecorderConcurrentTicksDistinct(t *testing.T) {
	r := NewRecorder()
	var mu sync.Mutex
	seen := make(map[int]bool)
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := 0; i < 200; i++ {
				v := r.Tick()
				mu.Lock()
				if seen[v] {
					t.Errorf("duplicate tick %d", v)
				}
				seen[v] = true
				mu.Unlock()
			}
		}()
	}
	wg.Wait()
}

func TestCheckAtomicOnAtomicRegister(t *testing.T) {
	for seed := int64(0); seed < 10; seed++ {
		reg := registers.NewMRMWAtomic(2, 2, 0)
		rec := Run(RegisterUnderTest{Write: reg.Write, Read: reg.Read}, Config{
			Writers: 2, Readers: 2, Values: 8, OpsPerParty: 7, Seed: seed,
		})
		if err := rec.CheckAtomic(8, 0); err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
	}
}

func TestCheckRegularAcceptsRegularRejectsGarbage(t *testing.T) {
	// A history with a stale-but-overlapping read is regular.
	r := NewRecorder()
	wBegin := r.Tick()
	rBegin := r.Tick()
	r.Record(historyOp(1, types.Read, types.ValOf(0), rBegin, r.Tick()))
	r.Record(historyOp(0, types.Write(1), types.OK, wBegin, r.Tick()))
	if err := r.CheckRegular(0); err != nil {
		t.Fatalf("regular history rejected: %v", err)
	}
	// A read returning a never-written, non-initial value is not regular.
	bad := NewRecorder()
	b := bad.Tick()
	bad.Record(historyOp(1, types.Read, types.ValOf(7), b, bad.Tick()))
	if err := bad.CheckRegular(0); err == nil {
		t.Fatal("garbage read accepted as regular")
	} else if !strings.Contains(err.Error(), "not regular") {
		t.Fatalf("unexpected error: %v", err)
	}
}

func TestOpRecordsArbitraryInvocations(t *testing.T) {
	r := NewRecorder()
	resp := r.Op(2, 3, types.TAS, func() types.Response { return types.ValOf(0) })
	if resp != types.ValOf(0) {
		t.Fatalf("Op returned %v", resp)
	}
	h := r.History()
	if len(h) != 1 || h[0].Proc != 2 || h[0].Port != 3 || h[0].Inv != types.TAS {
		t.Fatalf("recorded op = %+v", h)
	}
}

func historyOp(proc int, inv types.Invocation, resp types.Response, begin, end int) hist.Op {
	return hist.Op{Proc: proc, Port: 1, Inv: inv, Resp: resp, Begin: begin, End: end}
}
