package universal

import (
	"fmt"
	"testing"

	"waitfree/internal/explore"
	"waitfree/internal/linearize"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// checkUniversalExhaustively explores every interleaving of the scripts
// and checks each leaf history against the target type.
func checkUniversalExhaustively(t *testing.T, target *types.Spec, init types.State, alphabet []types.Invocation, scripts [][]types.Invocation) *explore.Result {
	t.Helper()
	totalOps := 0
	for _, s := range scripts {
		totalOps += len(s)
	}
	im, err := MachineImplementation(target, init, len(scripts), totalOps, alphabet)
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
	opts := explore.Options{
		RecordHistory: true,
		OnLeaf: func(l *explore.Leaf) error {
			if _, err := linearize.Check(target, init, l.History); err != nil {
				return fmt.Errorf("leaf not linearizable: %w\n%v", err, l.History)
			}
			return nil
		},
	}
	res, err := explore.Run(im, scripts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatal(res.Violation)
	}
	return res
}

// TestUniversalMachinesRegisterExhaustive verifies the universal
// construction implements a register linearizably under ALL interleavings
// of a write racing two reads.
func TestUniversalMachinesRegisterExhaustive(t *testing.T) {
	target := types.Register(2, 2)
	alphabet := []types.Invocation{types.Read, types.Write(0), types.Write(1)}
	scripts := [][]types.Invocation{
		{types.Write(1)},
		{types.Read, types.Read},
	}
	res := checkUniversalExhaustively(t, target, 0, alphabet, scripts)
	if res.Leaves == 0 {
		t.Fatal("no executions explored")
	}
}

// TestUniversalMachinesCounterExhaustive verifies wait-free exactness of a
// universal fetch-and-add under all interleavings of two increments.
func TestUniversalMachinesCounterExhaustive(t *testing.T) {
	target := types.FetchAdd(2)
	alphabet := []types.Invocation{types.Inv(types.OpFAA, 1)}
	scripts := [][]types.Invocation{
		{types.Inv(types.OpFAA, 1)},
		{types.Inv(types.OpFAA, 1)},
	}
	checkUniversalExhaustively(t, target, 0, alphabet, scripts)
}

// TestUniversalMachinesQueueExhaustive verifies a universal queue on an
// enqueue racing a dequeue.
func TestUniversalMachinesQueueExhaustive(t *testing.T) {
	target := types.Queue(2, 2, 4)
	alphabet := []types.Invocation{types.Enq(1), types.Deq}
	scripts := [][]types.Invocation{
		{types.Enq(1)},
		{types.Deq},
	}
	checkUniversalExhaustively(t, target, types.QueueState(), alphabet, scripts)
}

// TestUniversalMachinesSolo checks sequential behavior through the Solo
// driver, including persistent replica state across operations.
func TestUniversalMachinesSolo(t *testing.T) {
	target := types.FetchAdd(2)
	alphabet := []types.Invocation{types.Inv(types.OpFAA, 1)}
	im, err := MachineImplementation(target, 0, 2, 8, alphabet)
	if err != nil {
		t.Fatal(err)
	}
	states := im.InitialStates()
	var mem any
	for want := 0; want < 3; want++ {
		res, err := program.Solo(im, states, 0, types.Inv(types.OpFAA, 1), mem, 100)
		if err != nil {
			t.Fatal(err)
		}
		if res.Resp != types.ValOf(want) {
			t.Fatalf("faa #%d = %v", want, res.Resp)
		}
		mem = res.Mem
	}
}

func TestUniversalMachinesRejectsBadInputs(t *testing.T) {
	if _, err := MachineImplementation(types.OneUseBit(), types.OneUseUnset, 2, 4, nil); err == nil {
		t.Error("nondeterministic target accepted")
	}
	if _, err := MachineImplementation(types.FetchAdd(2), 0, 3, 4, nil); err == nil {
		t.Error("too many processes accepted")
	}
}

// TestUniversalMachinesHelping forces the helping path: a process that
// never gets scheduled between announce and the slot race still has its
// operation completed... more precisely, the explorer covers schedules
// where the slot's turn-holder is helped by the other process, and the
// histories remain linearizable (covered by the exhaustive tests above);
// here we pin that the announcement registers are written exactly once per
// operation.
func TestUniversalMachinesHelping(t *testing.T) {
	target := types.Register(2, 2)
	alphabet := []types.Invocation{types.Read, types.Write(0), types.Write(1)}
	im, err := MachineImplementation(target, 0, 2, 2, alphabet)
	if err != nil {
		t.Fatal(err)
	}
	scripts := [][]types.Invocation{{types.Write(1)}, {types.Read}}
	res, err := explore.Run(im, scripts, explore.Options{})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatal(res.Violation)
	}
	for p := 0; p < 2; p++ {
		if got := res.OpAccess[p][types.OpWrite]; got != 1 {
			t.Errorf("announce%d written %d times, want 1", p, got)
		}
	}
}
