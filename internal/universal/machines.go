package universal

import (
	"fmt"

	"waitfree/internal/program"
	"waitfree/internal/types"
)

// This file expresses the universal construction as machines (package
// program), so the execution-tree explorer can verify it EXHAUSTIVELY on
// small instances — every interleaving of every operation script — rather
// than only sampling it at runtime (universal.go).
//
// Objects: one announcement register per process (holding that process's
// current operation, encoded as an integer) and one multi-valued consensus
// object per log slot (agreeing on which announced operation fills the
// slot). Each process replays the agreed log against a private replica
// carried in its machine state.
//
// Operation encoding: a process's k-th operation (1-based) with target-
// invocation index i (into the implementation's fixed invocation alphabet)
// is encoded as (k * len(alphabet)) + i; 0 means "nothing announced". The
// consensus objects agree on (proc, encoded op) pairs packed the same way.

// MachineImplementation builds an exhaustively-checkable universal
// implementation of the target spec for procs processes, supporting at
// most maxOps operations per process in total across all processes
// combined... precisely: at most slots log slots. alphabet fixes the
// invocation encoding and must cover every invocation the scripts use.
func MachineImplementation(target *types.Spec, init types.State, procs, slots int, alphabet []types.Invocation) (*program.Implementation, error) {
	if !target.Deterministic {
		return nil, fmt.Errorf("%w: %q", ErrNondeterministic, target.Name)
	}
	if procs < 1 || procs > target.Ports {
		return nil, fmt.Errorf("universal: %d processes for a %d-port type", procs, target.Ports)
	}
	nAlpha := len(alphabet)
	// Encoded announcement values: seq in 1..slots, invIdx in 0..nAlpha-1,
	// plus 0 for "none": values 0..slots*nAlpha+nAlpha-1.
	annRange := (slots+1)*nAlpha + 1
	// Consensus cell values: proc * annRange + encodedOp.
	cellRange := procs * annRange

	objects := make([]program.ObjectDecl, 0, procs+slots)
	for p := 0; p < procs; p++ {
		objects = append(objects, program.ObjectDecl{
			Name:   fmt.Sprintf("announce%d", p),
			Spec:   types.Register(procs, annRange),
			Init:   0,
			PortOf: program.AllPorts(procs),
		})
	}
	for s := 0; s < slots; s++ {
		objects = append(objects, program.ObjectDecl{
			Name:   fmt.Sprintf("slot%d", s),
			Spec:   types.MultiConsensus(procs, cellRange),
			Init:   types.ConsensusUndecided,
			PortOf: program.AllPorts(procs),
		})
	}

	machines := make([]program.Machine, procs)
	for p := 0; p < procs; p++ {
		machines[p] = universalMachine(target, init, p, procs, slots, alphabet, annRange)
	}
	return &program.Implementation{
		Name:     fmt.Sprintf("universal-%s(n=%d,slots=%d)", target.Name, procs, slots),
		Target:   target,
		Procs:    procs,
		Objects:  objects,
		Machines: machines,
	}, nil
}

// umem is the persistent memory of a universal machine: the replica, the
// log position, per-process applied sequence numbers (bounded to 8
// processes for comparability), and the own-operation counter.
type umem struct {
	Replica types.State
	Pos     int
	Applied [8]int
	Seq     int
}

// ustate is the per-operation machine state.
type ustate struct {
	Mem     umem
	PC      int // 0 = announce; 1 = read help target; 2 = propose; 3 = applied decided op
	MyEnc   int // own encoded operation
	MyInv   int // own invocation index
	Help    int // encoded op read from the help target's announcement
	HelpID  int // process id of the help target
	Decided int // decided (proc, encodedOp) pair
	Resp    types.Response
	Done    bool
}

func universalMachine(target *types.Spec, init types.State, p, procs, slots int, alphabet []types.Invocation, annRange int) program.Machine {
	nAlpha := len(alphabet)
	annObj := func(q int) int { return q }
	slotObj := func(s int) int { return procs + s }
	return program.FuncMachine{
		StartFn: func(inv types.Invocation, mem any) any {
			m, ok := mem.(umem)
			if !ok {
				m = umem{Replica: init}
			}
			invIdx := -1
			for i, a := range alphabet {
				if a == inv {
					invIdx = i
					break
				}
			}
			m.Seq++
			return ustate{
				Mem:   m,
				MyInv: invIdx,
				MyEnc: m.Seq*nAlpha + invIdx,
			}
		},
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s, ok := state.(ustate)
			if !ok {
				panic("universal: machine driven with foreign state")
			}
			if s.MyInv < 0 {
				// Invocation outside the alphabet: fail loudly via an
				// invalid object access.
				return program.InvokeAction(-1, types.Read), s
			}
			for {
				switch s.PC {
				case 0:
					// Announce the operation.
					s.PC = 1
					return program.InvokeAction(annObj(p), types.Write(s.MyEnc)), s
				case 1:
					if s.Done {
						return program.ReturnAction(s.Resp, s.Mem), s
					}
					if s.Mem.Pos >= slots {
						// Log full: fail loudly.
						return program.InvokeAction(-1, types.Read), s
					}
					// Help first: read the announcement of the process
					// whose turn this slot is.
					s.HelpID = s.Mem.Pos % procs
					s.PC = 2
					return program.InvokeAction(annObj(s.HelpID), types.Read), s
				case 2:
					// Choose a proposal: the helped operation if pending,
					// else our own.
					s.Help = resp.Val
					proposal := p*annRange + s.MyEnc
					if s.Help != 0 {
						helpSeq := s.Help / nAlpha
						if helpSeq > s.Mem.Applied[s.HelpID] {
							proposal = s.HelpID*annRange + s.Help
						}
					}
					s.PC = 3
					return program.InvokeAction(slotObj(s.Mem.Pos), types.Propose(proposal)), s
				case 3:
					// Apply the decided operation to the replica.
					s.Decided = resp.Val
					winProc := s.Decided / annRange
					winEnc := s.Decided % annRange
					winSeq := winEnc / nAlpha
					winInv := winEnc % nAlpha
					next, r, err := target.DetApply(s.Mem.Replica, winProc+1, alphabet[winInv])
					if err != nil {
						return program.InvokeAction(-1, types.Read), s
					}
					s.Mem.Replica = next
					s.Mem.Applied[winProc] = winSeq
					s.Mem.Pos++
					if winProc == p && winEnc == s.MyEnc {
						s.Resp = r
						s.Done = true
					}
					s.PC = 1
				default:
					return program.InvokeAction(-1, types.Read), s
				}
			}
		},
	}
}
