package universal

import (
	"errors"
	"sync"
	"sync/atomic"
	"testing"

	"waitfree/internal/hist"
	"waitfree/internal/linearize"
	"waitfree/internal/types"
)

func TestSequentialCounter(t *testing.T) {
	u, err := New(types.FetchAdd(2), 0, 2, 64)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 5; i++ {
		resp, err := u.Apply(0, types.Inv(types.OpFAA, 1))
		if err != nil {
			t.Fatal(err)
		}
		if resp != types.ValOf(i) {
			t.Fatalf("faa #%d = %v", i, resp)
		}
	}
	resp, err := u.Apply(1, types.Inv(types.OpFAA, 0))
	if err != nil || resp != types.ValOf(5) {
		t.Fatalf("other process read %v, err %v", resp, err)
	}
	if u.Len(1) != 6 {
		t.Errorf("log position = %d, want 6", u.Len(1))
	}
}

func TestSequentialQueue(t *testing.T) {
	u, err := New(types.Queue(3, 4, 8), types.QueueState(), 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	for _, v := range []int{3, 1, 2} {
		if _, err := u.Apply(0, types.Enq(v)); err != nil {
			t.Fatal(err)
		}
	}
	for _, want := range []int{3, 1, 2} {
		resp, err := u.Apply(1, types.Deq)
		if err != nil || resp != types.ValOf(want) {
			t.Fatalf("deq = %v, want val(%d) (err %v)", resp, want, err)
		}
	}
	resp, err := u.Apply(2, types.Deq)
	if err != nil || resp.Label != types.LabelEmpty {
		t.Fatalf("deq on empty = %v, err %v", resp, err)
	}
}

func TestConcurrentCounterExactness(t *testing.T) {
	const procs, each = 4, 50
	u, err := New(types.FetchAdd(procs), 0, procs, procs*each+procs)
	if err != nil {
		t.Fatal(err)
	}
	seen := make([][]int, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < each; i++ {
				resp, err := u.Apply(p, types.Inv(types.OpFAA, 1))
				if err != nil {
					t.Errorf("p%d: %v", p, err)
					return
				}
				seen[p] = append(seen[p], resp.Val)
			}
		}(p)
	}
	wg.Wait()
	// fetch-and-add responses across all processes must be exactly the set
	// {0, ..., procs*each-1}: no duplicates, no gaps.
	all := make(map[int]bool, procs*each)
	for p := range seen {
		for _, v := range seen[p] {
			if all[v] {
				t.Fatalf("duplicate counter value %d", v)
			}
			all[v] = true
		}
	}
	for i := 0; i < procs*each; i++ {
		if !all[i] {
			t.Fatalf("missing counter value %d", i)
		}
	}
	// Each process's own view is monotone.
	for p := range seen {
		for i := 1; i < len(seen[p]); i++ {
			if seen[p][i] <= seen[p][i-1] {
				t.Fatalf("p%d saw non-monotone values %v", p, seen[p])
			}
		}
	}
}

func TestConcurrentQueueLinearizable(t *testing.T) {
	const procs = 3
	for trial := 0; trial < 10; trial++ {
		u, err := New(types.Queue(procs, 10, 32), types.QueueState(), procs, 256)
		if err != nil {
			t.Fatal(err)
		}
		var clock atomic.Int64
		var mu sync.Mutex
		var h hist.History
		var wg sync.WaitGroup
		for p := 0; p < procs; p++ {
			wg.Add(1)
			go func(p int) {
				defer wg.Done()
				for i := 0; i < 6; i++ {
					inv := types.Enq(p*3 + i%3)
					if i%2 == 1 {
						inv = types.Deq
					}
					begin := int(clock.Add(1))
					resp, err := u.Apply(p, inv)
					if err != nil {
						t.Errorf("p%d: %v", p, err)
						return
					}
					end := int(clock.Add(1))
					mu.Lock()
					h = append(h, hist.Op{Proc: p, Port: p + 1, Inv: inv, Resp: resp, Begin: begin, End: end})
					mu.Unlock()
				}
			}(p)
		}
		wg.Wait()
		if _, err := linearize.Check(types.Queue(procs, 10, 32), types.QueueState(), h); err != nil {
			t.Fatalf("trial %d: %v", trial, err)
		}
	}
}

func TestLogCapacity(t *testing.T) {
	u, err := New(types.FetchAdd(1), 0, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 2; i++ {
		if _, err := u.Apply(0, types.Inv(types.OpFAA, 1)); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := u.Apply(0, types.Inv(types.OpFAA, 1)); !errors.Is(err, ErrLogFull) {
		t.Fatalf("err = %v, want ErrLogFull", err)
	}
}

func TestRejectsNondeterministicType(t *testing.T) {
	if _, err := New(types.OneUseBit(), types.OneUseUnset, 2, 8); !errors.Is(err, ErrNondeterministic) {
		t.Fatalf("err = %v, want ErrNondeterministic", err)
	}
}

func TestRejectsTooManyProcs(t *testing.T) {
	if _, err := New(types.FetchAdd(2), 0, 3, 8); err == nil {
		t.Fatal("3 processes on a 2-port type accepted")
	}
}

func TestReplicasConverge(t *testing.T) {
	const procs = 3
	u, err := New(types.Register(procs, 8), 0, procs, 64)
	if err != nil {
		t.Fatal(err)
	}
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			for i := 0; i < 5; i++ {
				if _, err := u.Apply(p, types.Write(p+1)); err != nil {
					t.Errorf("p%d: %v", p, err)
				}
			}
		}(p)
	}
	wg.Wait()
	// Force every replica to catch up with a final read, then compare.
	vals := make([]types.State, procs)
	for p := 0; p < procs; p++ {
		if _, err := u.Apply(p, types.Read); err != nil {
			t.Fatal(err)
		}
	}
	for p := 0; p < procs; p++ {
		vals[p] = u.State(p)
	}
	// After all activity ceased, replicas that have replayed the same
	// prefix hold the same state; the final reads above do not force equal
	// positions, so compare only processes at the same position.
	for a := 0; a < procs; a++ {
		for b := a + 1; b < procs; b++ {
			if u.Len(a) == u.Len(b) && vals[a] != vals[b] {
				t.Errorf("replicas %d and %d at position %d disagree: %v vs %v",
					a, b, u.Len(a), vals[a], vals[b])
			}
		}
	}
}
