// Package universal implements Herlihy's universal construction: a
// wait-free linearizable implementation of ANY deterministic sequential
// type for n processes, built from consensus objects. It is the result
// that motivates the whole hierarchy program reproduced by this repository
// (Section 2.3 of Bazzi, Neiger, and Peterson): consensus number n means
// every type is implementable for n processes.
//
// The construction is the classic announce-and-help form: processes agree,
// slot by slot, on a log of operations using one consensus cell per slot.
// Before competing, a process announces its pending operation; when
// competing for slot s, every process first tries to push the operation
// announced by process s mod n, which guarantees that an announced
// operation is decided within n slots of its announcement — wait-freedom,
// not mere lock-freedom. Each process replays the agreed log against a
// private replica to compute its responses.
//
// The consensus cells are realized with compare-and-swap (consensus number
// infinity in Herlihy's hierarchy), which is exactly the role CAS plays in
// the type zoo of this repository.
package universal

import (
	"errors"
	"fmt"
	"sync/atomic"

	"waitfree/internal/types"
)

// Errors reported by the construction.
var (
	// ErrLogFull: the preallocated log capacity is exhausted.
	ErrLogFull = errors.New("universal: log capacity exhausted")
	// ErrNondeterministic: replicas can only replay deterministic types.
	ErrNondeterministic = errors.New("universal: type must be deterministic")
)

// opDesc describes one announced operation. Descriptors are compared by
// identity of (Proc, Seq).
type opDesc struct {
	Proc int
	Seq  int
	Inv  types.Invocation
}

// cell is a multi-valued single-shot consensus object: the first proposal
// wins and every Decide returns the winner. Realized with compare-and-swap.
type cell struct {
	p atomic.Pointer[opDesc]
}

func (c *cell) decide(d *opDesc) *opDesc {
	c.p.CompareAndSwap(nil, d)
	return c.p.Load()
}

// replica is one process's private copy of the object state and its view
// of the log. It is touched only by its owning process.
type replica struct {
	state   types.State
	pos     int   // next log slot to consume
	applied []int // highest Seq applied, per process
	seq     int   // own operation counter
}

// Universal is a wait-free linearizable shared object of an arbitrary
// deterministic type, for a fixed set of processes.
type Universal struct {
	spec     *types.Spec
	procs    int
	cells    []cell
	announce []atomic.Pointer[opDesc]
	replicas []replica
}

// New builds a universal object of the given deterministic type, starting
// in state init, shared by procs processes, with capacity for at most
// maxOps operations in total.
func New(spec *types.Spec, init types.State, procs, maxOps int) (*Universal, error) {
	if !spec.Deterministic {
		return nil, fmt.Errorf("%w: %q", ErrNondeterministic, spec.Name)
	}
	if procs < 1 || procs > spec.Ports {
		return nil, fmt.Errorf("universal: %d processes for a %d-port type", procs, spec.Ports)
	}
	u := &Universal{
		spec:     spec,
		procs:    procs,
		cells:    make([]cell, maxOps),
		announce: make([]atomic.Pointer[opDesc], procs),
		replicas: make([]replica, procs),
	}
	for p := range u.replicas {
		u.replicas[p] = replica{state: init, applied: make([]int, procs)}
	}
	return u, nil
}

// Apply performs inv on behalf of proc and returns its response. Apply is
// wait-free: it completes within a bounded number of steps regardless of
// the other processes, as long as log capacity remains. Each process must
// call Apply from a single goroutine.
func (u *Universal) Apply(proc int, inv types.Invocation) (types.Response, error) {
	r := &u.replicas[proc]
	r.seq++
	mine := &opDesc{Proc: proc, Seq: r.seq, Inv: inv}
	u.announce[proc].Store(mine)

	var resp types.Response
	decided := false
	for !decided {
		if r.pos >= len(u.cells) {
			return types.Response{}, fmt.Errorf("%w: %d slots", ErrLogFull, len(u.cells))
		}
		// Help first: the process whose turn it is at this slot gets its
		// announced operation proposed by everyone.
		proposal := mine
		if help := u.announce[r.pos%u.procs].Load(); help != nil && help.Seq > r.applied[help.Proc] {
			proposal = help
		}
		winner := u.cells[r.pos].decide(proposal)
		got, err := u.apply(r, winner)
		if err != nil {
			return types.Response{}, err
		}
		if winner.Proc == proc && winner.Seq == mine.Seq {
			resp = got
			decided = true
		}
		r.pos++
	}
	return resp, nil
}

// apply replays one decided operation onto the replica.
func (u *Universal) apply(r *replica, d *opDesc) (types.Response, error) {
	// A process's operation can be decided at most once: every proposer
	// either proposed it while pending or proposed something else.
	if d.Seq <= r.applied[d.Proc] {
		return types.Response{}, fmt.Errorf("universal: operation %d/%d decided twice", d.Proc, d.Seq)
	}
	next, resp, err := u.spec.DetApply(r.state, d.Proc+1, d.Inv)
	if err != nil {
		return types.Response{}, fmt.Errorf("universal: replay: %w", err)
	}
	r.state = next
	r.applied[d.Proc] = d.Seq
	return resp, nil
}

// Len reports how many operations this process has replayed (its log
// position); exposed for tests and introspection.
func (u *Universal) Len(proc int) int { return u.replicas[proc].pos }

// State returns proc's replica state (valid between that process's own
// Apply calls).
func (u *Universal) State(proc int) types.State { return u.replicas[proc].state }
