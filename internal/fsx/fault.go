package fsx

import (
	"fmt"
	"io/fs"
	"math/rand"
	"strconv"
	"strings"
	"sync"
	"syscall"
)

// This file is the deterministic fault injector. A *FaultFS wraps an
// inner FS and fires scripted faults by op class and occurrence number:
// "the 3rd WriteAt returns EIO", "every CreateTemp returns ENOSPC",
// "the 1st ReadFile comes back with one bit flipped". Schedules are
// plain Rule values (or the op:nth:fault string form ParseRules
// accepts, used by the chaos CI legs), injection is deterministic given
// the seed and the op sequence, and per-op counters plus a full trace
// let tests assert exactly what the consumer saw.

// Op names one operation class for fault matching and counting.
type Op string

// The op classes, one per FS/File method that can fail.
const (
	OpReadFile   Op = "readfile"
	OpCreateTemp Op = "createtemp"
	OpWrite      Op = "write"
	OpWriteAt    Op = "writeat"
	OpReadAt     Op = "readat"
	OpSync       Op = "sync"
	OpSyncDir    Op = "syncdir"
	OpRename     Op = "rename"
	OpRemove     Op = "remove"
	OpMkdirAll   Op = "mkdirall"
	OpReadDir    Op = "readdir"
	OpClose      Op = "close"
)

// FaultKind selects how a matched rule corrupts the operation.
type FaultKind int

const (
	// FaultErr returns Err without touching the inner FS (the default).
	FaultErr FaultKind = iota
	// FaultTorn performs half the write through the inner FS, then
	// returns Err — a torn/short write that leaves partial bytes on
	// disk. Write/WriteAt only; other ops treat it as FaultErr.
	FaultTorn
	// FaultBitFlip lets the read succeed, then flips one seeded-random
	// bit of the returned data — silent corruption the integrity layer
	// must catch. ReadFile/ReadAt only; other ops treat it as FaultErr.
	FaultBitFlip
)

// Rule scripts one fault: which op class, which occurrences, what goes
// wrong.
type Rule struct {
	// Op is the operation class the rule applies to.
	Op Op
	// Nth is the first occurrence (1-based, counted per op class) the
	// rule fires on; 0 means 1.
	Nth int
	// Count is how many consecutive occurrences fire, starting at Nth:
	// 0 means 1, negative means every occurrence from Nth on.
	Count int
	// Kind selects the corruption mode.
	Kind FaultKind
	// Err is the error injected for FaultErr/FaultTorn (nil = EIO).
	Err error
	// Path, if non-empty, restricts the rule to operations whose path
	// contains it as a substring. Occurrence counting is per op class,
	// not per path.
	Path string
}

func (r *Rule) errOr() error {
	if r.Err != nil {
		return r.Err
	}
	return syscall.EIO
}

// matches reports whether the rule fires on occurrence n of its op.
func (r *Rule) matches(n int, path string) bool {
	if r.Path != "" && !strings.Contains(path, r.Path) {
		return false
	}
	nth := r.Nth
	if nth <= 0 {
		nth = 1
	}
	if n < nth {
		return false
	}
	count := r.Count
	if count == 0 {
		count = 1
	}
	return count < 0 || n < nth+count
}

// TraceEntry records one operation the FaultFS saw.
type TraceEntry struct {
	// Op and N identify the operation: the N-th occurrence (1-based) of
	// its class.
	Op Op
	N  int
	// Path is the operand path (the file's name for File ops).
	Path string
	// Injected reports a rule fired; Err is the injected error, nil for
	// a bit-flip (which corrupts silently).
	Injected bool
	Err      error
}

// FaultFS wraps an inner FS (nil = the real filesystem) and injects the
// scripted faults. All methods are safe for concurrent use; for
// deterministic Nth-op schedules, drive it from one goroutine (e.g.
// Parallelism 1 in the explorer).
type FaultFS struct {
	inner FS

	mu       sync.Mutex
	rules    []Rule
	counts   map[Op]int
	trace    []TraceEntry
	rng      *rand.Rand
	injected int
}

// NewFaultFS builds a fault injector over inner (nil = OS{}). seed
// drives the bit-flip positions, so a schedule is reproducible.
func NewFaultFS(inner FS, seed int64, rules ...Rule) *FaultFS {
	return &FaultFS{
		inner:  Or(inner),
		rules:  rules,
		counts: make(map[Op]int),
		rng:    rand.New(rand.NewSource(seed)),
	}
}

// SetRules replaces the schedule mid-flight (occurrence counters keep
// running).
func (f *FaultFS) SetRules(rules ...Rule) {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.rules = rules
}

// CountOf returns how many operations of class op have been performed.
func (f *FaultFS) CountOf(op Op) int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.counts[op]
}

// Counts returns a copy of the per-op-class operation counters.
func (f *FaultFS) Counts() map[Op]int {
	f.mu.Lock()
	defer f.mu.Unlock()
	out := make(map[Op]int, len(f.counts))
	for k, v := range f.counts {
		out[k] = v
	}
	return out
}

// Injected returns how many faults have fired.
func (f *FaultFS) Injected() int {
	f.mu.Lock()
	defer f.mu.Unlock()
	return f.injected
}

// Trace returns a copy of every operation seen so far, in order.
func (f *FaultFS) Trace() []TraceEntry {
	f.mu.Lock()
	defer f.mu.Unlock()
	return append([]TraceEntry(nil), f.trace...)
}

// step counts one operation and returns the rule that fires on it, if
// any.
func (f *FaultFS) step(op Op, path string) *Rule {
	f.mu.Lock()
	defer f.mu.Unlock()
	f.counts[op]++
	n := f.counts[op]
	var hit *Rule
	for i := range f.rules {
		if f.rules[i].Op == op && f.rules[i].matches(n, path) {
			hit = &f.rules[i]
			break
		}
	}
	e := TraceEntry{Op: op, N: n, Path: path, Injected: hit != nil}
	if hit != nil {
		f.injected++
		if hit.Kind == FaultErr || hit.Kind == FaultTorn {
			e.Err = hit.errOr()
		}
	}
	f.trace = append(f.trace, e)
	return hit
}

// flipBit flips one seeded-random bit of p.
func (f *FaultFS) flipBit(p []byte) {
	if len(p) == 0 {
		return
	}
	f.mu.Lock()
	i, b := f.rng.Intn(len(p)), byte(1)<<f.rng.Intn(8)
	f.mu.Unlock()
	p[i] ^= b
}

func (f *FaultFS) ReadFile(name string) ([]byte, error) {
	if r := f.step(OpReadFile, name); r != nil {
		if r.Kind == FaultBitFlip {
			data, err := f.inner.ReadFile(name)
			if err == nil {
				f.flipBit(data)
			}
			return data, err
		}
		return nil, r.errOr()
	}
	return f.inner.ReadFile(name)
}

func (f *FaultFS) CreateTemp(dir, pattern string) (File, error) {
	if r := f.step(OpCreateTemp, dir); r != nil {
		return nil, r.errOr()
	}
	file, err := f.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &faultFile{File: file, fs: f}, nil
}

func (f *FaultFS) Rename(oldpath, newpath string) error {
	if r := f.step(OpRename, newpath); r != nil {
		return r.errOr()
	}
	return f.inner.Rename(oldpath, newpath)
}

func (f *FaultFS) Remove(name string) error {
	if r := f.step(OpRemove, name); r != nil {
		return r.errOr()
	}
	return f.inner.Remove(name)
}

func (f *FaultFS) MkdirAll(dir string, perm fs.FileMode) error {
	if r := f.step(OpMkdirAll, dir); r != nil {
		return r.errOr()
	}
	return f.inner.MkdirAll(dir, perm)
}

func (f *FaultFS) ReadDir(name string) ([]fs.DirEntry, error) {
	if r := f.step(OpReadDir, name); r != nil {
		return nil, r.errOr()
	}
	return f.inner.ReadDir(name)
}

func (f *FaultFS) SyncDir(dir string) error {
	if r := f.step(OpSyncDir, dir); r != nil {
		return r.errOr()
	}
	return f.inner.SyncDir(dir)
}

// faultFile threads File operations back through the FaultFS schedule.
type faultFile struct {
	File
	fs *FaultFS
}

func (f *faultFile) Write(p []byte) (int, error) {
	if r := f.fs.step(OpWrite, f.Name()); r != nil {
		if r.Kind == FaultTorn {
			n, _ := f.File.Write(p[:len(p)/2])
			return n, r.errOr()
		}
		return 0, r.errOr()
	}
	return f.File.Write(p)
}

func (f *faultFile) WriteAt(p []byte, off int64) (int, error) {
	if r := f.fs.step(OpWriteAt, f.Name()); r != nil {
		if r.Kind == FaultTorn {
			n, _ := f.File.WriteAt(p[:len(p)/2], off)
			return n, r.errOr()
		}
		return 0, r.errOr()
	}
	return f.File.WriteAt(p, off)
}

func (f *faultFile) ReadAt(p []byte, off int64) (int, error) {
	if r := f.fs.step(OpReadAt, f.Name()); r != nil {
		if r.Kind == FaultBitFlip {
			n, err := f.File.ReadAt(p, off)
			if n > 0 {
				f.fs.flipBit(p[:n])
			}
			return n, err
		}
		return 0, r.errOr()
	}
	return f.File.ReadAt(p, off)
}

func (f *faultFile) Sync() error {
	if r := f.fs.step(OpSync, f.Name()); r != nil {
		return r.errOr()
	}
	return f.File.Sync()
}

func (f *faultFile) Close() error {
	if r := f.fs.step(OpClose, f.Name()); r != nil {
		return r.errOr()
	}
	return f.File.Close()
}

// faultNames maps the string fault names ParseRules accepts.
var faultNames = map[string]Rule{
	"eio":     {Kind: FaultErr, Err: syscall.EIO},
	"enospc":  {Kind: FaultErr, Err: syscall.ENOSPC},
	"eperm":   {Kind: FaultErr, Err: fs.ErrPermission},
	"einval":  {Kind: FaultErr, Err: syscall.EINVAL},
	"torn":    {Kind: FaultTorn, Err: syscall.EIO},
	"bitflip": {Kind: FaultBitFlip},
}

var opNames = map[string]Op{
	string(OpReadFile): OpReadFile, string(OpCreateTemp): OpCreateTemp,
	string(OpWrite): OpWrite, string(OpWriteAt): OpWriteAt,
	string(OpReadAt): OpReadAt, string(OpSync): OpSync,
	string(OpSyncDir): OpSyncDir, string(OpRename): OpRename,
	string(OpRemove): OpRemove, string(OpMkdirAll): OpMkdirAll,
	string(OpReadDir): OpReadDir, string(OpClose): OpClose,
}

// ParseRules parses a comma-separated fault schedule of op:nth:fault
// triples — the form the chaos CI legs pass through the WAITFREED_FAULT_FS
// environment variable:
//
//	writeat:3:eio        the 3rd WriteAt returns EIO
//	createtemp:*:enospc  every CreateTemp returns ENOSPC
//	writeat:2+:torn      every WriteAt from the 2nd on is torn
//	readfile:1:bitflip   the 1st ReadFile has one bit flipped
//
// nth is a 1-based integer, N+ for "from the Nth on", or * for "every".
func ParseRules(spec string) ([]Rule, error) {
	var rules []Rule
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		if part == "" {
			continue
		}
		fields := strings.Split(part, ":")
		if len(fields) != 3 {
			return nil, fmt.Errorf("fsx: rule %q: want op:nth:fault", part)
		}
		op, ok := opNames[fields[0]]
		if !ok {
			return nil, fmt.Errorf("fsx: rule %q: unknown op %q", part, fields[0])
		}
		r, ok := faultNames[fields[2]]
		if !ok {
			return nil, fmt.Errorf("fsx: rule %q: unknown fault %q", part, fields[2])
		}
		r.Op = op
		switch nth := fields[1]; {
		case nth == "*":
			r.Nth, r.Count = 1, -1
		case strings.HasSuffix(nth, "+"):
			n, err := strconv.Atoi(strings.TrimSuffix(nth, "+"))
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fsx: rule %q: bad occurrence %q", part, nth)
			}
			r.Nth, r.Count = n, -1
		default:
			n, err := strconv.Atoi(nth)
			if err != nil || n < 1 {
				return nil, fmt.Errorf("fsx: rule %q: bad occurrence %q", part, nth)
			}
			r.Nth, r.Count = n, 1
		}
		rules = append(rules, r)
	}
	if len(rules) == 0 {
		return nil, fmt.Errorf("fsx: empty fault schedule %q", spec)
	}
	return rules, nil
}
