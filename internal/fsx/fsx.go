// Package fsx is the repo's single filesystem seam: every disk tier
// (checkpoint envelopes in internal/durable, result-cache entries in
// internal/rescache, the explorer's memo spill in internal/explore, the
// daemon job store in internal/server) performs its file I/O through the
// FS interface here instead of calling os.* directly. Production code
// passes OS{} (or nil, which every consumer resolves to OS{} via Or);
// tests pass a *FaultFS (fault.go) to inject deterministic, seedable
// storage faults — fail-the-Nth-op, torn writes, ENOSPC, fsync failure,
// read bit-flips — and assert the consumer's retry/degradation ladder
// from the outside, with no per-package seam variables.
//
// The package also owns the one retry policy all tiers share (retry.go):
// capped, jittered, context-aware exponential backoff for transient
// faults, an immediate bail-out for permanent ones (the out-of-space
// class), so "how does this repo behave on a flaky disk" has a single
// answer. See DESIGN.md section 14 for the per-tier degradation ladders
// built on top.
package fsx

import (
	"errors"
	"io"
	"io/fs"
	"os"
	"syscall"
)

// File is the subset of *os.File the disk tiers use. Writers must honor
// the usual contract: a short write returns a non-nil error.
type File interface {
	io.Writer
	io.WriterAt
	io.ReaderAt
	io.Closer
	// Sync flushes the file's data and metadata to stable storage.
	Sync() error
	// Chmod changes the file's mode.
	Chmod(mode fs.FileMode) error
	// Name returns the path the file was opened with.
	Name() string
}

// FS is the filesystem interface the disk tiers perform all I/O through.
// It is deliberately small: exactly the operations the durable formats
// need, so a fault implementation can cover every op class.
type FS interface {
	// ReadFile reads the whole named file.
	ReadFile(name string) ([]byte, error)
	// CreateTemp creates a new temp file in dir (os.CreateTemp naming).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath.
	Rename(oldpath, newpath string) error
	// Remove deletes the named file.
	Remove(name string) error
	// MkdirAll creates dir and any missing parents.
	MkdirAll(dir string, perm fs.FileMode) error
	// ReadDir lists the named directory.
	ReadDir(name string) ([]fs.DirEntry, error)
	// SyncDir fsyncs the directory itself, persisting renames within it.
	// Implementations return the raw error; callers filter the
	// "directories cannot be synced here" class with IsSyncUnsupported.
	SyncDir(dir string) error
}

// OS is the production passthrough: every method is the corresponding
// os.* call.
type OS struct{}

func (OS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (OS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (OS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }

func (OS) Remove(name string) error { return os.Remove(name) }

func (OS) MkdirAll(dir string, perm fs.FileMode) error { return os.MkdirAll(dir, perm) }

func (OS) ReadDir(name string) ([]fs.DirEntry, error) { return os.ReadDir(name) }

func (OS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	return d.Sync()
}

// Or resolves an optional FS field: nil means the real filesystem. Every
// consumer calls this once at construction so the rest of its code can
// assume a non-nil FS.
func Or(fsys FS) FS {
	if fsys == nil {
		return OS{}
	}
	return fsys
}

// IsSyncUnsupported reports whether err is the "directories cannot be
// synced on this filesystem" class of failure (EINVAL, ENOTSUP, ...)
// rather than a real I/O error. Directory syncs stay best-effort under
// it — the rename being persisted is already atomic on the filesystems
// that matter — while a real failure (EIO, ENOSPC) must surface.
func IsSyncUnsupported(err error) bool {
	return errors.Is(err, syscall.EINVAL) ||
		errors.Is(err, syscall.ENOTSUP) ||
		errors.Is(err, syscall.EOPNOTSUPP) ||
		errors.Is(err, errors.ErrUnsupported)
}
