package fsx

import (
	"context"
	"errors"
	"fmt"
	"io/fs"
	"math/rand"
	"sync"
	"syscall"
	"time"
)

// This file is the unified storage retry policy. Every disk tier retries
// transient faults the same way — capped, jittered, context-aware
// exponential backoff — and bails immediately on permanent ones, so a
// full disk never burns a backoff schedule and a flaky one never turns a
// single glitch into a broken tier.

// IsPermanent reports whether err is not worth retrying: the
// out-of-space class (ENOSPC, EDQUOT, EROFS), a missing or invalid file,
// or a dead context. Everything else — EIO, EAGAIN, EINTR, EBUSY, and
// whatever else a flaky disk or network filesystem produces — is treated
// as transient and retried; the attempt cap bounds the damage when the
// guess is wrong.
func IsPermanent(err error) bool {
	return errors.Is(err, syscall.ENOSPC) ||
		errors.Is(err, syscall.EDQUOT) ||
		errors.Is(err, syscall.EROFS) ||
		errors.Is(err, fs.ErrNotExist) ||
		errors.Is(err, fs.ErrInvalid) ||
		errors.Is(err, context.Canceled) ||
		errors.Is(err, context.DeadlineExceeded)
}

// RetryPolicy bounds a retry loop: how many attempts, and how the
// backoff between them grows. The zero value retries nothing useful;
// start from DefaultRetry.
type RetryPolicy struct {
	// Attempts is the total number of tries (minimum 1).
	Attempts int
	// Base is the backoff before the second attempt; it doubles after
	// each failure, capped at Max.
	Base time.Duration
	// Max caps a single backoff sleep (0 = uncapped).
	Max time.Duration
	// Jitter randomizes each sleep by ±Jitter fraction (0.5 = ±50%), so
	// many writers recovering from the same fault don't retry in
	// lockstep.
	Jitter float64
	// OnRetry, if set, observes every retry (called with the error that
	// caused it, before the backoff sleep). Consumers hang their storage
	// health counters here.
	OnRetry func(err error)
}

// DefaultRetry is the policy every disk tier uses unless a test
// overrides it: three attempts, 5ms base backoff doubling to a 250ms
// cap, ±50% jitter.
var DefaultRetry = RetryPolicy{
	Attempts: 3,
	Base:     5 * time.Millisecond,
	Max:      250 * time.Millisecond,
	Jitter:   0.5,
}

// WithObserver returns a copy of the policy with OnRetry set.
func (p RetryPolicy) WithObserver(onRetry func(err error)) RetryPolicy {
	p.OnRetry = onRetry
	return p
}

// Do runs op under the policy: transient failures are retried with
// backoff, permanent failures (IsPermanent) return immediately, and a
// context death during a backoff sleep returns an error wrapping both
// ctx.Err() and the last failure. The op itself is never interrupted
// mid-flight.
func (p RetryPolicy) Do(ctx context.Context, op func() error) error {
	attempts := p.Attempts
	if attempts < 1 {
		attempts = 1
	}
	backoff := p.Base
	if backoff <= 0 {
		backoff = time.Millisecond
	}
	var last error
	for attempt := 0; attempt < attempts; attempt++ {
		if attempt > 0 {
			if p.OnRetry != nil {
				p.OnRetry(last)
			}
			t := time.NewTimer(jittered(backoff, p.Jitter))
			select {
			case <-ctx.Done():
				t.Stop()
				return fmt.Errorf("%w (last error: %v)", ctx.Err(), last)
			case <-t.C:
			}
			backoff *= 2
			if p.Max > 0 && backoff > p.Max {
				backoff = p.Max
			}
		}
		if last = op(); last == nil {
			return nil
		}
		if IsPermanent(last) {
			return last
		}
	}
	return fmt.Errorf("after %d attempts: %w", attempts, last)
}

// jitterRand backs the backoff jitter; it has its own lock because
// RetryPolicy values are shared across goroutines.
var (
	jitterMu   sync.Mutex
	jitterRand = rand.New(rand.NewSource(1))
)

func jittered(d time.Duration, jitter float64) time.Duration {
	if jitter <= 0 || d <= 0 {
		return d
	}
	jitterMu.Lock()
	f := 1 + jitter*(2*jitterRand.Float64()-1)
	jitterMu.Unlock()
	out := time.Duration(float64(d) * f)
	if out < time.Millisecond {
		out = time.Millisecond
	}
	return out
}
