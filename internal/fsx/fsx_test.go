package fsx

import (
	"context"
	"errors"
	"io/fs"
	"os"
	"path/filepath"
	"syscall"
	"testing"
	"time"
)

func TestOSPassthroughRoundTrip(t *testing.T) {
	dir := t.TempDir()
	fsys := OS{}
	f, err := fsys.CreateTemp(dir, "fsx-*.tmp")
	if err != nil {
		t.Fatal(err)
	}
	if _, err := f.Write([]byte("hello world")); err != nil {
		t.Fatal(err)
	}
	if _, err := f.WriteAt([]byte("HELLO"), 0); err != nil {
		t.Fatal(err)
	}
	buf := make([]byte, 5)
	if _, err := f.ReadAt(buf, 6); err != nil {
		t.Fatal(err)
	}
	if string(buf) != "world" {
		t.Fatalf("ReadAt = %q, want world", buf)
	}
	if err := f.Sync(); err != nil {
		t.Fatal(err)
	}
	if err := f.Chmod(0o644); err != nil {
		t.Fatal(err)
	}
	tmp := f.Name()
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	final := filepath.Join(dir, "final")
	if err := fsys.Rename(tmp, final); err != nil {
		t.Fatal(err)
	}
	if err := fsys.SyncDir(dir); err != nil && !IsSyncUnsupported(err) {
		t.Fatal(err)
	}
	data, err := fsys.ReadFile(final)
	if err != nil {
		t.Fatal(err)
	}
	if string(data) != "HELLO world" {
		t.Fatalf("ReadFile = %q", data)
	}
	entries, err := fsys.ReadDir(dir)
	if err != nil || len(entries) != 1 {
		t.Fatalf("ReadDir = %v, %v", entries, err)
	}
	if err := fsys.Remove(final); err != nil {
		t.Fatal(err)
	}
	if err := fsys.MkdirAll(filepath.Join(dir, "a/b"), 0o755); err != nil {
		t.Fatal(err)
	}
}

func TestOrDefaultsNilToOS(t *testing.T) {
	if _, ok := Or(nil).(OS); !ok {
		t.Fatalf("Or(nil) = %T, want OS", Or(nil))
	}
	f := NewFaultFS(nil, 1)
	if got := Or(f); got != FS(f) {
		t.Fatalf("Or(non-nil) did not pass through")
	}
}

// TestFaultNthOp pins the occurrence matching: exactly the scripted
// occurrences fire, counters and trace record every op.
func TestFaultNthOp(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	if err := os.WriteFile(path, []byte("x"), 0o644); err != nil {
		t.Fatal(err)
	}
	ff := NewFaultFS(nil, 1, Rule{Op: OpReadFile, Nth: 2, Count: 2, Err: syscall.EIO})
	for i, wantErr := range []bool{false, true, true, false} {
		_, err := ff.ReadFile(path)
		if gotErr := err != nil; gotErr != wantErr {
			t.Fatalf("read %d: err = %v, want failure %v", i+1, err, wantErr)
		}
		if wantErr && !errors.Is(err, syscall.EIO) {
			t.Fatalf("read %d: err = %v, want EIO", i+1, err)
		}
	}
	if got := ff.CountOf(OpReadFile); got != 4 {
		t.Fatalf("CountOf(readfile) = %d, want 4", got)
	}
	if got := ff.Injected(); got != 2 {
		t.Fatalf("Injected = %d, want 2", got)
	}
	tr := ff.Trace()
	if len(tr) != 4 || tr[0].Injected || !tr[1].Injected || !tr[2].Injected || tr[3].Injected {
		t.Fatalf("trace = %+v", tr)
	}
}

func TestFaultTornWrite(t *testing.T) {
	dir := t.TempDir()
	ff := NewFaultFS(nil, 1, Rule{Op: OpWriteAt, Nth: 1, Kind: FaultTorn, Err: syscall.EIO})
	f, err := ff.CreateTemp(dir, "t-*")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	n, err := f.WriteAt([]byte("0123456789"), 0)
	if !errors.Is(err, syscall.EIO) {
		t.Fatalf("torn write err = %v, want EIO", err)
	}
	if n != 5 {
		t.Fatalf("torn write wrote %d bytes, want 5", n)
	}
	// The retry (2nd WriteAt) is clean and repairs the tear in place.
	if _, err := f.WriteAt([]byte("0123456789"), 0); err != nil {
		t.Fatal(err)
	}
	data, err := os.ReadFile(f.Name())
	if err != nil || string(data) != "0123456789" {
		t.Fatalf("file = %q, %v", data, err)
	}
}

func TestFaultBitFlipIsSilent(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "f")
	orig := []byte("the quick brown fox")
	if err := os.WriteFile(path, orig, 0o644); err != nil {
		t.Fatal(err)
	}
	ff := NewFaultFS(nil, 42, Rule{Op: OpReadFile, Nth: 1, Kind: FaultBitFlip})
	got, err := ff.ReadFile(path)
	if err != nil {
		t.Fatalf("bit-flip read errored: %v", err)
	}
	diff := 0
	for i := range orig {
		if got[i] != orig[i] {
			diff++
		}
	}
	if diff != 1 {
		t.Fatalf("bit flip changed %d bytes, want exactly 1", diff)
	}
	// Same seed, same schedule: the corruption is reproducible.
	ff2 := NewFaultFS(nil, 42, Rule{Op: OpReadFile, Nth: 1, Kind: FaultBitFlip})
	got2, _ := ff2.ReadFile(path)
	if string(got2) != string(got) {
		t.Fatal("same seed produced a different bit flip")
	}
}

func TestParseRules(t *testing.T) {
	rules, err := ParseRules("writeat:3:eio, createtemp:*:enospc,readfile:2+:bitflip")
	if err != nil {
		t.Fatal(err)
	}
	want := []Rule{
		{Op: OpWriteAt, Nth: 3, Count: 1, Kind: FaultErr, Err: syscall.EIO},
		{Op: OpCreateTemp, Nth: 1, Count: -1, Kind: FaultErr, Err: syscall.ENOSPC},
		{Op: OpReadFile, Nth: 2, Count: -1, Kind: FaultBitFlip},
	}
	if len(rules) != len(want) {
		t.Fatalf("parsed %d rules, want %d", len(rules), len(want))
	}
	for i := range want {
		if rules[i].Op != want[i].Op || rules[i].Nth != want[i].Nth ||
			rules[i].Count != want[i].Count || rules[i].Kind != want[i].Kind ||
			!errors.Is(rules[i].errOr(), want[i].errOr()) {
			t.Errorf("rule %d = %+v, want %+v", i, rules[i], want[i])
		}
	}
	for _, bad := range []string{"", "writeat:1", "nosuchop:1:eio", "writeat:0:eio", "writeat:1:nosuchfault"} {
		if _, err := ParseRules(bad); err == nil {
			t.Errorf("ParseRules(%q) accepted", bad)
		}
	}
}

func TestRetryTransientThenSuccess(t *testing.T) {
	p := RetryPolicy{Attempts: 3, Base: time.Millisecond}
	var retries int
	p.OnRetry = func(err error) {
		if !errors.Is(err, syscall.EIO) {
			t.Errorf("OnRetry err = %v", err)
		}
		retries++
	}
	calls := 0
	err := p.Do(context.Background(), func() error {
		calls++
		if calls < 3 {
			return syscall.EIO
		}
		return nil
	})
	if err != nil || calls != 3 || retries != 2 {
		t.Fatalf("err=%v calls=%d retries=%d", err, calls, retries)
	}
}

func TestRetryPermanentBailsImmediately(t *testing.T) {
	for _, perm := range []error{syscall.ENOSPC, syscall.EROFS, fs.ErrNotExist} {
		calls := 0
		err := RetryPolicy{Attempts: 5, Base: time.Millisecond}.Do(context.Background(), func() error {
			calls++
			return perm
		})
		if !errors.Is(err, perm) || calls != 1 {
			t.Errorf("%v: err=%v calls=%d, want 1 call", perm, err, calls)
		}
	}
}

func TestRetryExhaustionNamesAttempts(t *testing.T) {
	calls := 0
	err := RetryPolicy{Attempts: 3, Base: time.Millisecond}.Do(context.Background(), func() error {
		calls++
		return syscall.EIO
	})
	if calls != 3 || !errors.Is(err, syscall.EIO) {
		t.Fatalf("calls=%d err=%v", calls, err)
	}
	if got := err.Error(); got != "after 3 attempts: input/output error" {
		t.Errorf("exhaustion error = %q", got)
	}
}

// TestRetryContextCancellation pins the cancellable backoff: a caller
// shutting down must escape the schedule promptly (an hour-long base
// backoff would hang the test if slept), with an error carrying both the
// cancellation and the last failure.
func TestRetryContextCancellation(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() {
		done <- RetryPolicy{Attempts: 3, Base: time.Hour}.Do(ctx, func() error { return syscall.EIO })
	}()
	time.Sleep(10 * time.Millisecond)
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("err = %v, want context.Canceled", err)
		}
		if got := err.Error(); got != "context canceled (last error: input/output error)" {
			t.Errorf("cancellation error = %q", got)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("Do did not return after cancellation")
	}
	// A dead context still permits the first attempt: forward progress on
	// a healthy disk beats eager cancellation checks.
	calls := 0
	p := RetryPolicy{Attempts: 3, Base: time.Hour}
	if err := p.Do(ctx, func() error { calls++; return nil }); err != nil || calls != 1 {
		t.Fatalf("first attempt under dead context: err=%v calls=%d", err, calls)
	}
}

func TestJitterBounds(t *testing.T) {
	const d = 100 * time.Millisecond
	for i := 0; i < 200; i++ {
		got := jittered(d, 0.5)
		if got < 50*time.Millisecond || got > 150*time.Millisecond {
			t.Fatalf("jittered(%v, 0.5) = %v, outside ±50%%", d, got)
		}
	}
	if got := jittered(d, 0); got != d {
		t.Fatalf("zero jitter changed the duration: %v", got)
	}
}

func TestIsSyncUnsupported(t *testing.T) {
	for _, err := range []error{syscall.EINVAL, syscall.ENOTSUP, errors.ErrUnsupported} {
		if !IsSyncUnsupported(err) {
			t.Errorf("IsSyncUnsupported(%v) = false", err)
		}
	}
	for _, err := range []error{syscall.EIO, syscall.ENOSPC} {
		if IsSyncUnsupported(err) {
			t.Errorf("IsSyncUnsupported(%v) = true", err)
		}
	}
}
