// Package hierarchy implements the type-classification machinery of
// Sections 5 and 6 of Bazzi, Neiger, and Peterson (PODC 1994): deciding
// triviality, finding the witnesses that let non-trivial deterministic
// types implement one-use bits (the Section 5.1 oblivious witness and the
// Section 5.2 minimal non-trivial pair), and reporting where zoo types sit
// in Jayanti's wait-free hierarchies.
package hierarchy

import (
	"errors"
	"fmt"

	"waitfree/internal/types"
)

// ErrNondeterministic reports an analysis that requires a deterministic
// type (all of Section 5.1/5.2 does).
var ErrNondeterministic = errors.New("hierarchy: analysis requires a deterministic type")

// ErrNoWitness reports that no witness exists within the search bounds.
var ErrNoWitness = errors.New("hierarchy: no witness found within bounds")

// ErrInconclusive marks a witness-exhaustion verdict whose search space
// was truncated (the reachable closure exceeded the state budget): the
// type may hide a witness beyond the horizon, so "no witness" is a
// bounded claim, not a proof. Errors carrying it also wrap ErrNoWitness,
// so callers that only care about the bounded verdict keep working;
// taxonomy-aware callers (Classify, waitfree.Report.OK) must test for
// ErrInconclusive first.
var ErrInconclusive = errors.New("hierarchy: search truncated; negative verdict is inconclusive")

// IsTrivialOblivious decides the Section 5.1 triviality condition for an
// oblivious deterministic type over the fragment reachable from the given
// initial states (bounded by limit states per reachability query):
//
//	T is trivial if for every state q and invocation i there is a response
//	r_qi such that delta(q,i) responds r_qi and, for every state p
//	reachable from q, delta(p,i) also responds r_qi.
//
// A trivial type, once initialized, returns the same response to each
// occurrence of a given invocation; processes gain no information from it.
func IsTrivialOblivious(spec *types.Spec, inits []types.State, limit int) (bool, error) {
	if !spec.Deterministic {
		return false, fmt.Errorf("%w: %q", ErrNondeterministic, spec.Name)
	}
	for _, init := range inits {
		states, err := types.Reachable(spec, init, limit)
		if err != nil && !errors.Is(err, types.ErrStateSpaceTooLarge) {
			return false, err
		}
		// For unbounded state spaces the fragment is truncated and the
		// verdict is "trivial up to the bound"; a non-trivial verdict is
		// always exact.
		for _, q := range states {
			fromQ, err := types.Reachable(spec, q, limit)
			if err != nil && !errors.Is(err, types.ErrStateSpaceTooLarge) {
				return false, err
			}
			for _, inv := range spec.Alphabet {
				ts := spec.Step(q, 1, inv)
				if len(ts) == 0 {
					continue // illegal at q: no response to pin
				}
				want := ts[0].Resp
				for _, p := range fromQ {
					ps := spec.Step(p, 1, inv)
					if len(ps) == 0 {
						continue
					}
					if ps[0].Resp != want {
						return false, nil
					}
				}
			}
		}
	}
	return true, nil
}

// IsTrivial decides the general (Section 5.2) triviality condition up to
// the given bounds: the type is reported trivial if no non-trivial pair
// with |i-vector| <= maxK exists from any of the given initial states.
// This is a bounded verdict: a type can in principle hide a pair beyond
// the bound, but every zoo type that is non-trivial has a pair with k <= 2.
func IsTrivial(spec *types.Spec, inits []types.State, maxK int) (bool, error) {
	_, err := FindPair(spec, inits, maxK)
	if err == nil {
		return false, nil
	}
	if errors.Is(err, ErrNoWitness) {
		return true, nil
	}
	return false, err
}
