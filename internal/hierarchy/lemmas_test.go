package hierarchy

import (
	"errors"
	"strings"
	"testing"

	"waitfree/internal/types"
)

// TestLemma4ShapeOnZoo is the computational validation of Lemmas 2-4: for
// every non-trivial deterministic zoo type, search over ALL pairs of
// histories (not just the lemma shape) and check that a minimal pair has
// exactly the shape the lemmas force — one history is the k reading-port
// invocations, the other is a single other-port invocation followed by the
// same k invocations.
func TestLemma4ShapeOnZoo(t *testing.T) {
	cases := []struct {
		name   string
		spec   *types.Spec
		inits  []types.State
		maxLen int
	}{
		{"register", types.Register(2, 2), []types.State{0}, 4},
		{"tas", types.TestAndSet(2), []types.State{0}, 4},
		{"queue", types.Queue(2, 2, 3), []types.State{types.QueueState()}, 4},
		{"stack", types.Stack(2, 2, 3), []types.State{types.QueueState()}, 4},
		{"faa", types.FetchAdd(2), []types.State{0}, 4},
		{"swap", types.Swap(2, 2), []types.State{0}, 4},
		{"sticky-cell", types.StickyCell(2, 2), []types.State{types.StickyUnset}, 4},
		{"toggle", types.Toggle(2), []types.State{0}, 4},
		{"latch-flag", types.LatchFlag(), []types.State{types.LatchFlagInit()}, 5},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			p, err := FindPairUnrestricted(tc.spec, tc.inits, tc.maxLen)
			if err != nil {
				t.Fatal(err)
			}
			if !p.HasLemma4Shape() {
				t.Fatalf("minimal pair does not have the Lemma 4 shape: %v", p)
			}
			// Cross-check with the shape-restricted search: total lengths
			// must agree (2k+1 for reading sequence length k).
			shaped, err := FindPair(tc.spec, tc.inits, tc.maxLen)
			if err != nil {
				t.Fatal(err)
			}
			if want := 2*shaped.K() + 1; p.TotalLen() != want {
				t.Errorf("unrestricted minimum |H1|+|H2| = %d, shaped search implies %d",
					p.TotalLen(), want)
			}
		})
	}
}

// TestUnrestrictedSearchAgreesOnTriviality: the unrestricted search finds
// no pair exactly when the type is trivial.
func TestUnrestrictedSearchAgreesOnTriviality(t *testing.T) {
	for _, spec := range []*types.Spec{types.Beacon(2), types.Blinker(2), types.IncOnly(2)} {
		if _, err := FindPairUnrestricted(spec, []types.State{0}, 4); !errors.Is(err, ErrNoWitness) {
			t.Errorf("%s: err = %v, want ErrNoWitness", spec.Name, err)
		}
	}
}

func TestUnrestrictedRejectsNondeterministic(t *testing.T) {
	if _, err := FindPairUnrestricted(types.WeakLeader(2), []types.State{0}, 3); !errors.Is(err, ErrNondeterministic) {
		t.Fatalf("err = %v, want ErrNondeterministic", err)
	}
}

func TestGeneralPairFormatting(t *testing.T) {
	p, err := FindPairUnrestricted(types.TestAndSet(2), []types.State{0}, 3)
	if err != nil {
		t.Fatal(err)
	}
	s := p.String()
	if !strings.Contains(s, "H1=") || !strings.Contains(s, "H2=") {
		t.Errorf("String() = %q", s)
	}
	if p.ReadPort < 1 || p.ReadPort > 2 {
		t.Errorf("read port = %d", p.ReadPort)
	}
}

func TestHasLemma4ShapeRejectsWrongShapes(t *testing.T) {
	probe := types.Inv(types.OpTAS)
	// Both histories pure: not the shape.
	same := &GeneralPair{
		ReadPort: 1,
		H1:       GeneralHistory{{Port: 1, Inv: probe}},
		H2:       GeneralHistory{{Port: 1, Inv: probe}},
	}
	if same.HasLemma4Shape() {
		t.Error("equal-length pure histories accepted")
	}
	// H2 of length k+2: not the shape.
	long := &GeneralPair{
		ReadPort: 1,
		H1:       GeneralHistory{{Port: 1, Inv: probe}},
		H2: GeneralHistory{
			{Port: 2, Inv: probe}, {Port: 2, Inv: probe}, {Port: 1, Inv: probe},
		},
	}
	if long.HasLemma4Shape() {
		t.Error("k+2-length H2 accepted")
	}
	// H2 starting on the read port: not the shape.
	wrongPort := &GeneralPair{
		ReadPort: 1,
		H1:       GeneralHistory{{Port: 1, Inv: probe}},
		H2: GeneralHistory{
			{Port: 1, Inv: probe}, {Port: 1, Inv: probe},
		},
	}
	if wrongPort.HasLemma4Shape() {
		t.Error("read-port-first H2 accepted")
	}
	// The real shape.
	good := &GeneralPair{
		ReadPort: 1,
		H1:       GeneralHistory{{Port: 1, Inv: probe}},
		H2: GeneralHistory{
			{Port: 2, Inv: probe}, {Port: 1, Inv: probe},
		},
	}
	if !good.HasLemma4Shape() {
		t.Error("lemma shape rejected")
	}
}
