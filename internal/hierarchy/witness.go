package hierarchy

import (
	"errors"
	"fmt"

	"waitfree/internal/types"
)

// ObliviousWitness is the Section 5.1 structure that lets a non-trivial
// oblivious deterministic type implement a one-use bit: a state Q, an
// invocation I whose response at Q is RQ, and an invocation IW taking Q to
// a state P (in one step) where I responds RP != RQ.
//
// The derived one-use bit initializes an object to Q; a read invokes I and
// answers 0 iff the response is RQ; a write invokes IW.
type ObliviousWitness struct {
	Q  types.State      `json:"q"`
	P  types.State      `json:"p"`
	I  types.Invocation `json:"i"`
	IW types.Invocation `json:"iw"`
	RQ types.Response   `json:"rq"`
	RP types.Response   `json:"rp"`
}

// String renders the witness for reports.
func (w *ObliviousWitness) String() string {
	return fmt.Sprintf("q=%v --%v--> p=%v; %v answers %v at q, %v at p",
		w.Q, w.IW, w.P, w.I, w.RQ, w.RP)
}

// FindObliviousWitness searches the reachable fragment (from the given
// initial states, bounded by limit) for a Section 5.1 witness. The paper
// notes that for a non-trivial type the distinguishing states p, q can be
// chosen one step apart; the search looks exactly for that shape.
func FindObliviousWitness(spec *types.Spec, inits []types.State, limit int) (*ObliviousWitness, error) {
	if !spec.Deterministic {
		return nil, fmt.Errorf("%w: %q", ErrNondeterministic, spec.Name)
	}
	truncated := false
	for _, init := range inits {
		states, err := types.Reachable(spec, init, limit)
		switch {
		case errors.Is(err, types.ErrStateSpaceTooLarge):
			// A truncated fragment is fine for a positive search: any
			// witness found within it is valid. Only exhaustion verdicts
			// become inconclusive.
			truncated = true
		case err != nil:
			return nil, err
		}
		for _, q := range states {
			for _, i := range spec.Alphabet {
				ts := spec.Step(q, 1, i)
				if len(ts) == 0 {
					continue
				}
				rq := ts[0].Resp
				for _, iw := range spec.Alphabet {
					step := spec.Step(q, 1, iw)
					if len(step) == 0 {
						continue
					}
					p := step[0].Next
					ps := spec.Step(p, 1, i)
					if len(ps) == 0 {
						continue
					}
					if ps[0].Resp != rq {
						return &ObliviousWitness{
							Q: q, P: p, I: i, IW: iw, RQ: rq, RP: ps[0].Resp,
						}, nil
					}
				}
			}
		}
	}
	if truncated {
		return nil, fmt.Errorf("%w: no oblivious witness for %q (%w: fragment capped at %d states)",
			ErrNoWitness, spec.Name, ErrInconclusive, limit)
	}
	return nil, fmt.Errorf("%w: no oblivious witness for %q", ErrNoWitness, spec.Name)
}
