package hierarchy

import (
	"errors"
	"strings"
	"testing"

	"waitfree/internal/types"
)

func TestTrivialityOblivious(t *testing.T) {
	tests := []struct {
		name    string
		spec    *types.Spec
		inits   []types.State
		trivial bool
	}{
		{"beacon", types.Beacon(2), []types.State{0}, true},
		{"blinker", types.Blinker(2), []types.State{0}, true},
		{"inc-only", types.IncOnly(2), []types.State{0}, true},
		{"toggle", types.Toggle(2), []types.State{0}, false},
		{"register", types.Register(2, 2), []types.State{0}, false},
		{"tas", types.TestAndSet(2), []types.State{0}, false},
		{"queue", types.Queue(2, 2, 3), []types.State{types.QueueState()}, false},
		{"sticky-cell", types.StickyCell(2, 2), []types.State{types.StickyUnset}, false},
	}
	for _, tt := range tests {
		got, err := IsTrivialOblivious(tt.spec, tt.inits, 64)
		if err != nil {
			t.Errorf("%s: %v", tt.name, err)
			continue
		}
		if got != tt.trivial {
			t.Errorf("%s: trivial = %v, want %v", tt.name, got, tt.trivial)
		}
	}
}

func TestTrivialityGeneral(t *testing.T) {
	trivial, err := IsTrivial(types.Beacon(2), []types.State{0}, 3)
	if err != nil || !trivial {
		t.Errorf("beacon: trivial=%v err=%v", trivial, err)
	}
	trivial, err = IsTrivial(types.LatchFlag(), []types.State{types.LatchFlagInit()}, 3)
	if err != nil || trivial {
		t.Errorf("latch-flag: trivial=%v err=%v, want non-trivial", trivial, err)
	}
	// With k capped below the latch-flag's pair length (2), the bounded
	// verdict is "trivial up to the bound".
	trivial, err = IsTrivial(types.LatchFlag(), []types.State{types.LatchFlagInit()}, 1)
	if err != nil || !trivial {
		t.Errorf("latch-flag k=1: trivial=%v err=%v, want trivial-up-to-bound", trivial, err)
	}
}

func TestTrivialityRejectsNondeterministic(t *testing.T) {
	if _, err := IsTrivialOblivious(types.OneUseBit(), []types.State{types.OneUseUnset}, 16); !errors.Is(err, ErrNondeterministic) {
		t.Errorf("err = %v, want ErrNondeterministic", err)
	}
	if _, err := FindPair(types.WeakLeader(2), []types.State{0}, 2); !errors.Is(err, ErrNondeterministic) {
		t.Errorf("err = %v, want ErrNondeterministic", err)
	}
}

// verifyObliviousWitness replays the witness against the spec.
func verifyObliviousWitness(t *testing.T, spec *types.Spec, w *ObliviousWitness) {
	t.Helper()
	ts := spec.Step(w.Q, 1, w.I)
	if len(ts) == 0 || ts[0].Resp != w.RQ {
		t.Fatalf("witness RQ mismatch: %v", w)
	}
	step := spec.Step(w.Q, 1, w.IW)
	if len(step) == 0 || step[0].Next != w.P {
		t.Fatalf("witness P mismatch: %v", w)
	}
	ps := spec.Step(w.P, 1, w.I)
	if len(ps) == 0 || ps[0].Resp != w.RP {
		t.Fatalf("witness RP mismatch: %v", w)
	}
	if w.RQ == w.RP {
		t.Fatalf("witness responses equal: %v", w)
	}
}

func TestObliviousWitnesses(t *testing.T) {
	tests := []struct {
		name  string
		spec  *types.Spec
		inits []types.State
	}{
		{"tas", types.TestAndSet(2), []types.State{0}},
		{"register", types.Register(2, 2), []types.State{0}},
		{"queue", types.Queue(2, 2, 3), []types.State{types.QueueState()}},
		{"stack", types.Stack(2, 2, 3), []types.State{types.QueueState()}},
		{"faa", types.FetchAdd(2), []types.State{0}},
		{"cas", types.CompareSwap(2, 3), []types.State{2}},
		{"swap", types.Swap(2, 2), []types.State{0}},
		{"sticky-cell", types.StickyCell(2, 2), []types.State{types.StickyUnset}},
		{"toggle", types.Toggle(2), []types.State{0}},
		{"consensus", types.Consensus(2), []types.State{types.ConsensusUndecided}},
	}
	for _, tt := range tests {
		w, err := FindObliviousWitness(tt.spec, tt.inits, 64)
		if err != nil {
			t.Errorf("%s: %v", tt.name, err)
			continue
		}
		verifyObliviousWitness(t, tt.spec, w)
	}
}

func TestObliviousWitnessAbsentForTrivial(t *testing.T) {
	for _, spec := range []*types.Spec{types.Beacon(2), types.Blinker(2), types.IncOnly(2)} {
		if _, err := FindObliviousWitness(spec, []types.State{0}, 64); !errors.Is(err, ErrNoWitness) {
			t.Errorf("%s: err = %v, want ErrNoWitness", spec.Name, err)
		}
	}
}

// verifyPair replays both histories of a pair and checks the return values
// really differ.
func verifyPair(t *testing.T, spec *types.Spec, p *Pair) {
	t.Helper()
	r1, ok := runSeq(spec, p.Q, p.ReadPort, p.Seq)
	if !ok || r1 != p.R1 {
		t.Fatalf("H1 replay mismatch: got %v ok=%v, pair %v", r1, ok, p)
	}
	step := spec.Step(p.Q, p.WritePort, p.IW)
	if len(step) == 0 {
		t.Fatalf("IW illegal: %v", p)
	}
	r2, ok := runSeq(spec, step[0].Next, p.ReadPort, p.Seq)
	if !ok || r2 != p.R2 {
		t.Fatalf("H2 replay mismatch: got %v ok=%v, pair %v", r2, ok, p)
	}
	if p.R1 == p.R2 {
		t.Fatalf("pair responses equal: %v", p)
	}
}

func TestFindPairObliviousTypesHaveK1Pairs(t *testing.T) {
	tests := []struct {
		name  string
		spec  *types.Spec
		inits []types.State
	}{
		{"tas", types.TestAndSet(2), []types.State{0}},
		{"register", types.Register(2, 2), []types.State{0}},
		{"queue", types.Queue(2, 2, 3), []types.State{types.QueueState()}},
		{"faa", types.FetchAdd(2), []types.State{0}},
	}
	for _, tt := range tests {
		p, err := FindPair(tt.spec, tt.inits, 3)
		if err != nil {
			t.Errorf("%s: %v", tt.name, err)
			continue
		}
		if p.K() != 1 {
			t.Errorf("%s: minimal pair has k = %d, want 1", tt.name, p.K())
		}
		verifyPair(t, tt.spec, p)
	}
}

func TestFindPairLatchFlagNeedsK2(t *testing.T) {
	spec := types.LatchFlag()
	inits := []types.State{types.LatchFlagInit()}
	if _, err := FindPair(spec, inits, 1); !errors.Is(err, ErrNoWitness) {
		t.Fatalf("k=1 search: err = %v, want ErrNoWitness (single probes are constant)", err)
	}
	p, err := FindPair(spec, inits, 2)
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 2 {
		t.Errorf("pair k = %d, want 2", p.K())
	}
	if p.ReadPort != 1 || p.WritePort != 2 {
		t.Errorf("ports = %d/%d, want 1/2", p.ReadPort, p.WritePort)
	}
	verifyPair(t, spec, p)
}

func TestClassifyZoo(t *testing.T) {
	cs, err := ClassifyZoo()
	if err != nil {
		t.Fatal(err)
	}
	byName := make(map[string]*Classification, len(cs))
	for _, c := range cs {
		byName[c.Name] = c
	}

	wantTrivial := map[string]bool{"beacon": true, "blinker": true, "inc-only": true}
	for name, c := range byName {
		if !c.Deterministic {
			continue
		}
		if c.Trivial != wantTrivial[name] {
			t.Errorf("%s: trivial = %v, want %v", name, c.Trivial, wantTrivial[name])
		}
		if !c.Trivial && c.Pair == nil {
			t.Errorf("%s: non-trivial but no pair", name)
		}
		if !c.Trivial && c.Oblivious && c.ObliviousWitness == nil {
			t.Errorf("%s: oblivious non-trivial but no Section 5.1 witness", name)
		}
		if !strings.Contains(c.Theorem5, "h_m = h_m^r") {
			t.Errorf("%s: deterministic type should conclude equality, got %q", name, c.Theorem5)
		}
	}

	// The nondeterministic members.
	if c := byName["weak-leader"]; !strings.Contains(c.Theorem5, "separation") {
		t.Errorf("weak-leader: %q", c.Theorem5)
	}
	if c := byName["one-use-bit"]; !strings.Contains(c.Theorem5, "inapplicable") {
		t.Errorf("one-use-bit: %q", c.Theorem5)
	}
	if len(cs) < 15 {
		t.Errorf("zoo has only %d classified members", len(cs))
	}
}

func TestPairAndWitnessStrings(t *testing.T) {
	p, err := FindPair(types.TestAndSet(2), []types.State{0}, 2)
	if err != nil {
		t.Fatal(err)
	}
	if s := p.String(); !strings.Contains(s, "H1") || !strings.Contains(s, "H2") {
		t.Errorf("Pair.String() = %q", s)
	}
	w, err := FindObliviousWitness(types.TestAndSet(2), []types.State{0}, 16)
	if err != nil {
		t.Fatal(err)
	}
	if s := w.String(); !strings.Contains(s, "answers") {
		t.Errorf("ObliviousWitness.String() = %q", s)
	}
}

// TestFindPairSearchesReachableStates pins the start-state expansion: the
// paper's minimality argument quantifies over ALL states an implementation
// may initialize an object to, so pairs may start from reachable non-init
// states. A queue initialized empty still yields the k=1 pair starting
// from a reachable nonempty state via its declared init only — and a type
// whose ONLY distinguishing start state is non-initial is still witnessed.
func TestFindPairSearchesReachableStates(t *testing.T) {
	// The sticky cell's pair must start from the unstuck state; from any
	// stuck state no invocation distinguishes. Restricting inits to a
	// stuck state would make it trivial-looking — but expansion cannot
	// help there because unstuck is unreachable from stuck.
	if _, err := FindPair(types.StickyCell(2, 2), []types.State{0}, 3); !errors.Is(err, ErrNoWitness) {
		t.Errorf("stuck-only sticky cell: err = %v, want ErrNoWitness (stuck cells are inert)", err)
	}
	// From the unstuck init it is found immediately.
	p, err := FindPair(types.StickyCell(2, 2), []types.State{types.StickyUnset}, 3)
	if err != nil {
		t.Fatal(err)
	}
	if p.K() != 1 {
		t.Errorf("sticky pair k = %d", p.K())
	}
	// The latch-flag demonstrates expansion mattering: its minimal pair
	// exists from every reachable state, all with k = 2 (no single probe
	// ever distinguishes) — see TestFindPairLatchFlagNeedsK2.
}

// TestClassifyNoisySticky pins the nondeterministic h_m >= 2 case's
// classification: Theorem 5 applies via the second route.
func TestClassifyNoisySticky(t *testing.T) {
	c, err := Classify(Entry{
		Spec:      types.NoisySticky(2, 2),
		Inits:     []types.State{types.StickyUnset},
		Consensus: "inf",
		HM:        "inf",
	}, 3, 64)
	if err != nil {
		t.Fatal(err)
	}
	if !strings.Contains(c.Theorem5, "h_m >= 2") {
		t.Errorf("noisy-sticky conclusion: %q", c.Theorem5)
	}
	if c.Pair != nil {
		t.Error("nondeterministic type got a Section 5.2 pair")
	}
}
