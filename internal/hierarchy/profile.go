package hierarchy

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"sync/atomic"

	"waitfree/internal/types"
)

// Entry is one zoo member submitted for classification: a type, the
// initial states implementations of it may use, and its consensus number
// as established in the literature (Herlihy 91 and successors). The
// consensus number is carried as documentation; triviality and witnesses
// are computed, not asserted.
type Entry struct {
	Spec  *types.Spec
	Inits []types.State
	// Consensus is the literature consensus number: "1", "2", or "inf".
	Consensus string
	// HM is the literature value of h_m: usually equal to Consensus by
	// Theorem 5; "1" for the nondeterministic separating type.
	HM string
}

// Classification is the computed profile of a zoo member. The JSON field
// tags are the machine form behind cmd/hierarchy's -json flag and
// waitfree.Check; String() is the canonical one-line human rendering.
type Classification struct {
	Name          string `json:"name"`
	Ports         int    `json:"ports"`
	Oblivious     bool   `json:"oblivious"`
	Deterministic bool   `json:"deterministic"`
	Trivial       bool   `json:"trivial"`
	// Pair is the Section 5.2 witness (nil for trivial or nondeterministic
	// types).
	Pair *Pair `json:"pair,omitempty"`
	// ObliviousWitness is the simpler Section 5.1 witness, present only
	// for oblivious non-trivial deterministic types.
	ObliviousWitness *ObliviousWitness `json:"oblivious_witness,omitempty"`
	// Inconclusive reports that a witness search exhausted a TRUNCATED
	// state space (the reachable closure exceeded its budget): the
	// computed verdicts above are bounded claims ("trivial up to the
	// bound", "no witness within the fragment"), not proofs. Conclusive
	// entries — a witness found, or exhaustion over the full closure —
	// leave it false.
	Inconclusive bool `json:"inconclusive,omitempty"`
	// Consensus and HM echo the literature values from the Entry.
	Consensus string `json:"consensus"`
	HM        string `json:"h_m"`
	// Theorem5 states what Theorem 5 concludes for this type.
	Theorem5 string `json:"theorem5"`
}

// String renders the classification as one line.
func (c *Classification) String() string {
	s := fmt.Sprintf("%s: oblivious=%v deterministic=%v trivial=%v consensus=%s h_m=%s — %s",
		c.Name, c.Oblivious, c.Deterministic, c.Trivial, c.Consensus, c.HM, c.Theorem5)
	if c.Inconclusive {
		s += " [inconclusive: witness search truncated]"
	}
	return s
}

// Standard zoo classification bounds: DefaultMaxK bounds the Section 5.2
// pair search and DefaultReachLimit bounds reachability queries. Exported
// so callers keying results on the classification (internal/rescache) can
// name the exact parameters ClassifyZoo runs with.
const (
	DefaultMaxK       = 3
	DefaultReachLimit = 64
)

// Classify computes the profile of a zoo entry. maxK bounds the Section
// 5.2 pair search; limit bounds reachability queries.
func Classify(e Entry, maxK, limit int) (*Classification, error) {
	spec := e.Spec
	c := &Classification{
		Name:          spec.Name,
		Ports:         spec.Ports,
		Oblivious:     spec.Oblivious,
		Deterministic: spec.Deterministic,
		Consensus:     e.Consensus,
		HM:            e.HM,
	}
	if !spec.Deterministic {
		// Section 5 machinery does not apply; Theorem 5 applies only via
		// the h_m >= 2 route.
		switch {
		case e.HM != "1":
			c.Theorem5 = "h_m = h_m^r (Theorem 5: h_m >= 2)"
		case e.Consensus != "1":
			c.Theorem5 = "h_m < h_m^r possible (nondeterministic with h_m = 1: Jayanti-style separation)"
		default:
			c.Theorem5 = "Theorem 5 inapplicable (nondeterministic); both hierarchies at level 1"
		}
		return c, nil
	}
	pair, err := FindPair(spec, e.Inits, maxK)
	switch {
	case err == nil:
		c.Pair = pair
	case errors.Is(err, ErrInconclusive):
		// Trivial up to the bound, but the closure was truncated: keep
		// the bounded verdict and flag it. Test before ErrNoWitness —
		// inconclusive exhaustion errors wrap both sentinels.
		c.Trivial = true
		c.Inconclusive = true
	case errors.Is(err, ErrNoWitness):
		c.Trivial = true
	default:
		return nil, fmt.Errorf("classify %q: %w", spec.Name, err)
	}
	if spec.Oblivious && !c.Trivial {
		w, err := FindObliviousWitness(spec, e.Inits, limit)
		switch {
		case err == nil:
			c.ObliviousWitness = w
		case errors.Is(err, ErrInconclusive):
			c.Inconclusive = true
		case errors.Is(err, ErrNoWitness):
			// Conclusively absent; the field stays nil.
		default:
			return nil, fmt.Errorf("classify %q: %w", spec.Name, err)
		}
	}
	c.Theorem5 = "h_m = h_m^r (Theorem 5: deterministic)"
	return c, nil
}

// Zoo returns the classification entries for the full type zoo, with
// literature consensus numbers. Small port counts and value ranges keep
// the searches instant; the classifications do not depend on them.
func Zoo() []Entry {
	return []Entry{
		{Spec: types.Register(2, 2), Inits: []types.State{0}, Consensus: "1", HM: "1"},
		{Spec: types.SRSWBit(), Inits: []types.State{0}, Consensus: "1", HM: "1"},
		{Spec: types.TestAndSet(2), Inits: []types.State{0}, Consensus: "2", HM: "2"},
		{Spec: types.Swap(2, 2), Inits: []types.State{0}, Consensus: "2", HM: "2"},
		{Spec: types.FetchAdd(2), Inits: []types.State{0}, Consensus: "2", HM: "2"},
		{Spec: types.Queue(2, 2, 3), Inits: []types.State{types.QueueState(), types.QueueState(1)}, Consensus: "2", HM: "2"},
		{Spec: types.Stack(2, 2, 3), Inits: []types.State{types.QueueState(), types.QueueState(1)}, Consensus: "2", HM: "2"},
		{Spec: types.CompareSwap(2, 3), Inits: []types.State{2}, Consensus: "inf", HM: "inf"},
		{Spec: types.StickyCell(2, 2), Inits: []types.State{types.StickyUnset}, Consensus: "inf", HM: "inf"},
		{Spec: types.AugmentedQueue(2, 2, 3), Inits: []types.State{types.QueueState()}, Consensus: "inf", HM: "inf"},
		{Spec: types.FetchAndCons(2, 2, 3), Inits: []types.State{""}, Consensus: "inf", HM: "inf"},
		{Spec: types.StickyBit(2), Inits: []types.State{types.StickyUnset}, Consensus: "inf", HM: "inf"},
		{Spec: types.Consensus(2), Inits: []types.State{types.ConsensusUndecided}, Consensus: "2", HM: "2"},
		{Spec: types.OneUseBit(), Inits: []types.State{types.OneUseUnset}, Consensus: "1", HM: "1"},
		{Spec: types.Toggle(2), Inits: []types.State{0}, Consensus: "1", HM: "1"},
		{Spec: types.LatchFlag(), Inits: []types.State{types.LatchFlagInit()}, Consensus: "1", HM: "1"},
		{Spec: types.Beacon(2), Inits: []types.State{0}, Consensus: "1", HM: "1"},
		{Spec: types.Blinker(2), Inits: []types.State{0}, Consensus: "1", HM: "1"},
		{Spec: types.IncOnly(2), Inits: []types.State{0}, Consensus: "1", HM: "1"},
		{Spec: types.WeakLeader(2), Inits: []types.State{0}, Consensus: "2", HM: "1"},
		{Spec: types.NoisySticky(2, 2), Inits: []types.State{types.StickyUnset}, Consensus: "inf", HM: "inf"},
	}
}

// ClassifyZoo classifies every zoo entry with standard bounds.
func ClassifyZoo() ([]*Classification, error) {
	return ClassifyZooContext(context.Background(), 1)
}

// ClassifyZooParallel classifies the zoo entries across parallelism
// workers (0 means GOMAXPROCS). Entries are independent, so the result is
// identical to the sequential ClassifyZoo: classifications come back in
// zoo order, and the first error (in zoo order) wins.
func ClassifyZooParallel(parallelism int) ([]*Classification, error) {
	return ClassifyZooContext(context.Background(), parallelism)
}

// ClassifyZooContext is ClassifyZooParallel under a context: workers stop
// claiming entries once ctx is done, and the call returns ctx.Err().
// Cancellation granularity is one zoo entry (entries classify in
// milliseconds).
func ClassifyZooContext(ctx context.Context, parallelism int) ([]*Classification, error) {
	entries := Zoo()
	workers := parallelism
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	if workers > len(entries) {
		workers = len(entries)
	}
	out := make([]*Classification, len(entries))
	errs := make([]error, len(entries))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for {
				if ctx.Err() != nil {
					return
				}
				i := int(next.Add(1) - 1)
				if i >= len(entries) {
					return
				}
				out[i], errs[i] = Classify(entries[i], DefaultMaxK, DefaultReachLimit)
			}
		}()
	}
	wg.Wait()
	if err := ctx.Err(); err != nil {
		return nil, err
	}
	for _, err := range errs {
		if err != nil {
			return nil, err
		}
	}
	return out, nil
}
