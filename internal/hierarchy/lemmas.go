package hierarchy

import (
	"fmt"

	"waitfree/internal/types"
)

// This file validates Lemmas 2-4 of Section 5.2 computationally. The
// lemmas constrain the shape of a MINIMAL non-trivial pair (H1, H2):
//
//	Lemma 2: one of the histories consists only of the k invocations on
//	         the reading port (no other-port activity).
//	Lemma 3: the other history ends with those k invocations.
//	Lemma 4: the other history is exactly one other-port invocation
//	         followed by the k invocations; |H2| = k+1.
//
// FindPairUnrestricted searches over ALL pairs of sequential histories
// with the same reading-port invocation subsequence — not just the Lemma 4
// shape — and returns a pair minimizing |H1| + |H2|. Tests then check that
// the minimum really has the lemma shape, which is exactly the paper's
// claim instantiated on each zoo type.

// GeneralHistory is a sequential history given as explicit port/invocation
// steps (responses recomputed during runs).
type GeneralHistory []PortInv

// PortInv is one step of a GeneralHistory.
type PortInv struct {
	Port int
	Inv  types.Invocation
}

// String renders the history compactly.
func (h GeneralHistory) String() string {
	s := ""
	for i, pi := range h {
		if i > 0 {
			s += ";"
		}
		s += fmt.Sprintf("%v@%d", pi.Inv, pi.Port)
	}
	return s
}

// readSeq extracts the subsequence of invocations on the given port.
func (h GeneralHistory) readSeq(port int) []types.Invocation {
	var seq []types.Invocation
	for _, pi := range h {
		if pi.Port == port {
			seq = append(seq, pi.Inv)
		}
	}
	return seq
}

// run executes the history from q and returns the response of the LAST
// invocation on readPort; ok is false if any step is illegal or no
// invocation on readPort occurs.
func (h GeneralHistory) run(spec *types.Spec, q types.State, readPort int) (types.Response, bool) {
	var last types.Response
	seen := false
	for _, pi := range h {
		ts := spec.Step(q, pi.Port, pi.Inv)
		if len(ts) == 0 {
			return types.Response{}, false
		}
		q = ts[0].Next
		if pi.Port == readPort {
			last = ts[0].Resp
			seen = true
		}
	}
	return last, seen
}

// GeneralPair is an unrestricted non-trivial pair found by
// FindPairUnrestricted.
type GeneralPair struct {
	Q        types.State
	ReadPort int
	H1, H2   GeneralHistory
	R1, R2   types.Response
}

// TotalLen is |H1| + |H2|, the quantity the lemmas minimize.
func (p *GeneralPair) TotalLen() int { return len(p.H1) + len(p.H2) }

// HasLemma4Shape reports whether the pair has the exact shape Lemmas 2-4
// force on minimal pairs: one history is k reading-port invocations, the
// other is one other-port invocation followed by the same k invocations.
func (p *GeneralPair) HasLemma4Shape() bool {
	h1, h2 := p.H1, p.H2
	if len(h1) > len(h2) {
		h1, h2 = h2, h1
	}
	k := len(h1)
	if len(h2) != k+1 {
		return false
	}
	for _, pi := range h1 {
		if pi.Port != p.ReadPort {
			return false
		}
	}
	if h2[0].Port == p.ReadPort {
		return false
	}
	for i, pi := range h2[1:] {
		if pi.Port != p.ReadPort || pi.Inv != h1[i].Inv {
			return false
		}
	}
	return true
}

// String renders the pair.
func (p *GeneralPair) String() string {
	return fmt.Sprintf("q=%v port=%d H1=[%v]->%v H2=[%v]->%v",
		p.Q, p.ReadPort, p.H1, p.R1, p.H2, p.R2)
}

// FindPairUnrestricted enumerates ALL sequential histories of length at
// most maxLen from each initial state and returns a non-trivial pair
// minimizing |H1| + |H2| (ties broken arbitrarily), or ErrNoWitness. Two
// histories form a pair when they share the same invocation subsequence on
// some reading port but their last reading-port responses differ.
//
// The search is exponential in maxLen and is meant for validating the
// Section 5.2 lemmas on small types, not for production use — FindPair is
// the efficient, lemma-backed search.
func FindPairUnrestricted(spec *types.Spec, inits []types.State, maxLen int) (*GeneralPair, error) {
	if !spec.Deterministic {
		return nil, fmt.Errorf("%w: %q", ErrNondeterministic, spec.Name)
	}
	var best *GeneralPair
	starts, truncated := expandInits(spec, inits)
	for _, init := range starts {
		for readPort := 1; readPort <= spec.Ports; readPort++ {
			findPairsAtPort(spec, init, readPort, maxLen, &best)
		}
	}
	if best == nil {
		if truncated {
			return nil, fmt.Errorf("%w: no unrestricted pair for %q with |H| <= %d (%w: closure capped at %d states)",
				ErrNoWitness, spec.Name, maxLen, ErrInconclusive, StartStateLimit)
		}
		return nil, fmt.Errorf("%w: no unrestricted pair for %q with |H| <= %d", ErrNoWitness, spec.Name, maxLen)
	}
	return best, nil
}

// groupKey identifies histories comparable as a pair: same reading-port
// invocation subsequence (rendered) and same state/port context.
type groupKey struct {
	seq string
}

// candidate is one legal history with its return value.
type candidate struct {
	h GeneralHistory
	r types.Response
}

func findPairsAtPort(spec *types.Spec, init types.State, readPort, maxLen int, best **GeneralPair) {
	groups := make(map[groupKey][]candidate)
	var h GeneralHistory

	var rec func(q types.State, depth int)
	rec = func(q types.State, depth int) {
		if r, seen := h.run(spec, init, readPort); seen {
			// Record this history under its reading-port subsequence.
			_ = r
			key := groupKey{seq: fmt.Sprintf("%v", h.readSeq(readPort))}
			cand := candidate{h: append(GeneralHistory(nil), h...), r: r}
			for _, prev := range groups[key] {
				if prev.r != cand.r {
					total := len(prev.h) + len(cand.h)
					if *best == nil || total < (*best).TotalLen() {
						*best = &GeneralPair{
							Q: init, ReadPort: readPort,
							H1: prev.h, H2: cand.h, R1: prev.r, R2: cand.r,
						}
					}
				}
			}
			groups[key] = append(groups[key], cand)
		}
		if depth == maxLen {
			return
		}
		for port := 1; port <= spec.Ports; port++ {
			for _, inv := range spec.Alphabet {
				ts := spec.Step(q, port, inv)
				if len(ts) == 0 {
					continue
				}
				h = append(h, PortInv{Port: port, Inv: inv})
				rec(ts[0].Next, depth+1)
				h = h[:len(h)-1]
			}
		}
	}
	rec(init, 0)
}
