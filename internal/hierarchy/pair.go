package hierarchy

import (
	"errors"
	"fmt"
	"strings"

	"waitfree/internal/types"
)

// Pair is the Section 5.2 structure that lets any non-trivial
// deterministic type (port-aware allowed) implement a one-use bit: per
// Lemmas 2-4, a minimal non-trivial pair consists of a start state Q, a
// sequence Seq of k invocations on the reading port, and one invocation IW
// on the writing port such that running Seq alone returns R1 while running
// IW followed by Seq returns R2 != R1 (return value = last response on the
// reading port).
//
// The derived one-use bit initializes an object to Q; a read runs Seq on
// ReadPort and answers 0 iff the final response is R1 (any other value
// means the writer's IW has intervened); a write runs IW on WritePort.
type Pair struct {
	Q         types.State        `json:"q"`
	Seq       []types.Invocation `json:"seq"`
	IW        types.Invocation   `json:"iw"`
	ReadPort  int                `json:"read_port"`
	WritePort int                `json:"write_port"`
	R1        types.Response     `json:"r1"`
	R2        types.Response     `json:"r2"`
}

// String renders the pair for reports.
func (p *Pair) String() string {
	seq := make([]string, len(p.Seq))
	for i, inv := range p.Seq {
		seq[i] = inv.String()
	}
	return fmt.Sprintf("q=%v; H1=[%s]@port%d -> %v; H2=%v@port%d then H1 -> %v",
		p.Q, strings.Join(seq, ";"), p.ReadPort, p.R1, p.IW, p.WritePort, p.R2)
}

// K returns the length of the reading sequence.
func (p *Pair) K() int { return len(p.Seq) }

// StartStateLimit bounds how many reachable states the pair searches use
// as candidate start states. Section 2.2 lets an implementation initialize
// an object to ANY state of the type, and the paper's minimality argument
// quantifies over all start states, so the searches expand the given
// initial states to their (bounded) reachable closure.
const StartStateLimit = 64

// expandInits returns the reachable closure of the given states, bounded,
// and whether any closure was truncated. Truncation is fine for a
// positive witness search (anything found within the fragment is valid)
// but makes an exhaustion verdict inconclusive.
func expandInits(spec *types.Spec, inits []types.State) (states []types.State, truncated bool) {
	seen := make(map[types.State]bool)
	var out []types.State
	for _, init := range inits {
		states, err := types.Reachable(spec, init, StartStateLimit)
		switch {
		case errors.Is(err, types.ErrStateSpaceTooLarge):
			truncated = true
		case err != nil:
			states = []types.State{init}
		}
		for _, q := range states {
			if !seen[q] {
				seen[q] = true
				out = append(out, q)
			}
		}
	}
	return out, truncated
}

// FindPair searches for a minimal non-trivial pair with k <= maxK, over
// all ordered (reading, writing) port combinations and over every start
// state reachable from the given initial states. Lemmas 2-4 guarantee that
// if any non-trivial pair exists, a pair of exactly this shape exists
// (with minimal total length), so the bounded search is complete up to
// maxK and StartStateLimit.
//
// Pairs are searched in increasing k, so the returned pair has the
// smallest reading sequence within the bound.
func FindPair(spec *types.Spec, inits []types.State, maxK int) (*Pair, error) {
	if !spec.Deterministic {
		return nil, fmt.Errorf("%w: %q", ErrNondeterministic, spec.Name)
	}
	starts, truncated := expandInits(spec, inits)
	for k := 1; k <= maxK; k++ {
		for _, init := range starts {
			for readPort := 1; readPort <= spec.Ports; readPort++ {
				for writePort := 1; writePort <= spec.Ports; writePort++ {
					if writePort == readPort {
						continue
					}
					if p := findPairAt(spec, init, readPort, writePort, k); p != nil {
						return p, nil
					}
				}
			}
		}
	}
	if truncated {
		return nil, fmt.Errorf("%w: no non-trivial pair for %q with k <= %d (%w: closure capped at %d states)",
			ErrNoWitness, spec.Name, maxK, ErrInconclusive, StartStateLimit)
	}
	return nil, fmt.Errorf("%w: no non-trivial pair for %q with k <= %d", ErrNoWitness, spec.Name, maxK)
}

// findPairAt enumerates all invocation sequences of length exactly k on
// readPort from init and compares the plain run with every IW-prefixed
// run.
func findPairAt(spec *types.Spec, init types.State, readPort, writePort, k int) *Pair {
	seq := make([]types.Invocation, k)
	var rec func(depth int, plain types.State, last types.Response) *Pair
	rec = func(depth int, plain types.State, last types.Response) *Pair {
		if depth == k {
			// H1 = seq with return value last. Try every writer invocation.
			for _, iw := range spec.Alphabet {
				step := spec.Step(init, writePort, iw)
				if len(step) == 0 {
					continue
				}
				q2 := step[0].Next
				r2, legal := runSeq(spec, q2, readPort, seq)
				if legal && r2 != last {
					return &Pair{
						Q:         init,
						Seq:       append([]types.Invocation(nil), seq...),
						IW:        iw,
						ReadPort:  readPort,
						WritePort: writePort,
						R1:        last,
						R2:        r2,
					}
				}
			}
			return nil
		}
		for _, inv := range spec.Alphabet {
			ts := spec.Step(plain, readPort, inv)
			if len(ts) == 0 {
				continue // H1 must be legal throughout
			}
			seq[depth] = inv
			if p := rec(depth+1, ts[0].Next, ts[0].Resp); p != nil {
				return p
			}
		}
		return nil
	}
	return rec(0, init, types.Response{})
}

// runSeq runs the invocation sequence on the given port and returns the
// last response; legal is false if some step is illegal.
func runSeq(spec *types.Spec, q types.State, port int, seq []types.Invocation) (types.Response, bool) {
	var last types.Response
	for _, inv := range seq {
		ts := spec.Step(q, port, inv)
		if len(ts) == 0 {
			return types.Response{}, false
		}
		q = ts[0].Next
		last = ts[0].Resp
	}
	return last, true
}
