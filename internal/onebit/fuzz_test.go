package onebit

import (
	"testing"

	"waitfree/internal/program"
	"waitfree/internal/types"
)

// FuzzBitArraySequential decodes fuzzer bytes into an alternating-party
// operation sequence over the Section 4.3 machine implementation and
// checks it against the trivial model (a read returns the last written
// value). Run with -fuzz to explore; the seed corpus runs in plain tests.
func FuzzBitArraySequential(f *testing.F) {
	f.Add([]byte{0x01, 0x80, 0x00, 0x81})
	f.Add([]byte{0xff, 0xfe, 0x00, 0x01, 0x02})
	f.Add([]byte{0x80, 0x80, 0x80})
	f.Fuzz(func(t *testing.T, data []byte) {
		if len(data) == 0 || len(data) > 12 {
			return
		}
		// Count reads and changing writes to size the array exactly.
		reads, writes := 0, 0
		model := 0
		for _, b := range data {
			if b&0x80 != 0 {
				if int(b&1) != model {
					writes++
					model = int(b & 1)
				}
			} else {
				reads++
			}
		}
		if reads == 0 {
			reads = 1
		}
		if writes == 0 {
			writes = 1
		}
		im := Implementation(reads, writes, 0)
		states := im.InitialStates()
		var readerMem, writerMem any
		model = 0
		for i, b := range data {
			if b&0x80 != 0 {
				x := int(b & 1)
				res, err := program.Solo(im, states, 1, types.Write(x), writerMem, 1000)
				if err != nil {
					t.Fatalf("op %d write(%d): %v", i, x, err)
				}
				writerMem = res.Mem
				model = x
			} else {
				res, err := program.Solo(im, states, 0, types.Read, readerMem, 1000)
				if err != nil {
					t.Fatalf("op %d read: %v", i, err)
				}
				if res.Resp != types.ValOf(model) {
					t.Fatalf("op %d read = %v, model %d", i, res.Resp, model)
				}
				readerMem = res.Mem
			}
		}
	})
}
