package onebit

import (
	"fmt"

	"waitfree/internal/hierarchy"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// This file implements Sections 5.1 and 5.2: a one-use bit from a single
// object of any non-trivial deterministic type, driven by the witnesses
// found by package hierarchy.
//
// The reading process runs the pair's invocation sequence on the reading
// port and answers 0 iff the final response is H1's return value R1; any
// other value means the writer's invocation has intervened (the paper
// notes the reader may observe a value that is neither R1 nor R2 when the
// operations interleave — that still indicates the writer has written, so
// 1 is returned). The writing process performs the single invocation IW on
// the writing port.

// pairReadState is the reader machine's state: the index of the next
// invocation of the pair's sequence.
type pairReadState struct {
	Idx int
}

// PairReaderMachine returns the Section 5.2 read routine over the object
// at index obj.
func PairReaderMachine(p *hierarchy.Pair, obj int) program.Machine {
	k := p.K()
	return program.FuncMachine{
		StartFn: func(_ types.Invocation, mem any) any {
			_ = mem // a one-use bit needs no persistent state
			return pairReadState{}
		},
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s, ok := state.(pairReadState)
			if !ok {
				panic("onebit: PairReaderMachine driven with foreign state")
			}
			if s.Idx == k {
				if resp == p.R1 {
					return program.ReturnAction(types.ValOf(0), nil), s
				}
				return program.ReturnAction(types.ValOf(1), nil), s
			}
			next := pairReadState{Idx: s.Idx + 1}
			return program.InvokeAction(obj, p.Seq[s.Idx]), next
		},
	}
}

// PairWriterMachine returns the Section 5.2 write routine: one invocation
// of IW on the writing port.
func PairWriterMachine(p *hierarchy.Pair, obj int) program.Machine {
	return program.FuncMachine{
		StartFn: func(_ types.Invocation, _ any) any { return pairReadState{} },
		NextFn: func(state any, _ types.Response) (program.Action, any) {
			s, ok := state.(pairReadState)
			if !ok {
				panic("onebit: PairWriterMachine driven with foreign state")
			}
			if s.Idx == 0 {
				return program.InvokeAction(obj, p.IW), pairReadState{Idx: 1}
			}
			return program.ReturnAction(types.OK, nil), s
		},
	}
}

// PairDecl returns the object declaration realizing the one-use bit: one
// object of the witnessed type initialized to the pair's start state, with
// the reader process on the pair's reading port and the writer process on
// its writing port.
func PairDecl(spec *types.Spec, p *hierarchy.Pair, procs, readerProc, writerProc int) program.ObjectDecl {
	ports := make([]int, procs)
	ports[readerProc] = p.ReadPort
	ports[writerProc] = p.WritePort
	return program.ObjectDecl{
		Name:   fmt.Sprintf("onebit<%s>", spec.Name),
		Spec:   spec,
		Init:   p.Q,
		PortOf: ports,
	}
}

// FromType builds a standalone 2-process implementation of the one-use bit
// type from a single object of the given non-trivial deterministic type:
// process 0 reads, process 1 writes. It searches for the witness itself
// (bounded by maxK) and is the unit under test for Experiment E4.
func FromType(spec *types.Spec, inits []types.State, maxK int) (*program.Implementation, *hierarchy.Pair, error) {
	p, err := hierarchy.FindPair(spec, inits, maxK)
	if err != nil {
		return nil, nil, fmt.Errorf("one-use bit from %q: %w", spec.Name, err)
	}
	im := &program.Implementation{
		Name:     fmt.Sprintf("one-use-bit-from-%s", spec.Name),
		Target:   types.OneUseBit(),
		Procs:    2,
		Objects:  []program.ObjectDecl{PairDecl(spec, p, 2, 0, 1)},
		Machines: []program.Machine{PairReaderMachine(p, 0), PairWriterMachine(p, 0)},
	}
	return im, p, nil
}

// FromObliviousWitness builds the SIMPLER Section 5.1 form of the one-use
// bit, available for oblivious deterministic types: the read is a single
// invocation I (answering 0 iff the response is RQ), the write a single
// invocation IW. It is the k = 1 special case of the Section 5.2
// machinery, included in its published form.
func FromObliviousWitness(spec *types.Spec, w *hierarchy.ObliviousWitness) *program.Implementation {
	// Reuse the pair machinery with the witness recast as a k = 1 pair;
	// obliviousness makes the port assignment irrelevant, so the standard
	// reader-on-1 / writer-on-2 convention applies.
	p := &hierarchy.Pair{
		Q:         w.Q,
		Seq:       []types.Invocation{w.I},
		IW:        w.IW,
		ReadPort:  1,
		WritePort: 2,
		R1:        w.RQ,
		R2:        w.RP,
	}
	return &program.Implementation{
		Name:     fmt.Sprintf("one-use-bit-from-%s(5.1)", spec.Name),
		Target:   types.OneUseBit(),
		Procs:    2,
		Objects:  []program.ObjectDecl{PairDecl(spec, p, 2, 0, 1)},
		Machines: []program.Machine{PairReaderMachine(p, 0), PairWriterMachine(p, 0)},
	}
}
