package onebit

import (
	"fmt"

	"waitfree/internal/program"
	"waitfree/internal/types"
)

// This file implements Section 5.3: a one-use bit from any implementation
// of 2-process consensus (which in turn may be built from objects of any
// type T with h_m(T) >= 2, even a nondeterministic one).
//
// The reader proposes 0 ("read precedes write"); the writer proposes 1
// ("write precedes read"). If the consensus value is 0 the write cannot
// have completely preceded the read, so the read linearizes first and
// returns 0; symmetrically for 1. All reads return the same response,
// which the one-use bit's nondeterministic DEAD-read specification
// permits.

// FromConsensus splices a 2-process consensus implementation into a
// one-use bit: it returns the object declarations (the consensus
// implementation's objects, re-based at objBase and re-ported so that
// readerProc plays the consensus implementation's process 0 and writerProc
// its process 1) plus the reader and writer machines.
//
// procs is the total process count of the host implementation.
func FromConsensus(sub *program.Implementation, procs, readerProc, writerProc, objBase int) ([]program.ObjectDecl, program.Machine, program.Machine, error) {
	if sub.Procs != 2 {
		return nil, nil, nil, fmt.Errorf("onebit: consensus substrate has %d processes, need 2", sub.Procs)
	}
	if err := sub.Validate(); err != nil {
		return nil, nil, nil, fmt.Errorf("onebit: consensus substrate: %w", err)
	}
	decls := make([]program.ObjectDecl, len(sub.Objects))
	for i := range sub.Objects {
		src := &sub.Objects[i]
		ports := make([]int, procs)
		ports[readerProc] = src.Port(0)
		ports[writerProc] = src.Port(1)
		decls[i] = program.ObjectDecl{
			Name:   fmt.Sprintf("%s/%s", sub.Name, src.Name),
			Spec:   src.Spec,
			Init:   src.Init,
			PortOf: ports,
		}
	}
	read := program.MapResponse(
		program.Bind(program.Offset(sub.Machines[0], objBase), types.Propose(0)),
		func(r types.Response) types.Response { return types.ValOf(r.Val) },
	)
	write := program.MapResponse(
		program.Bind(program.Offset(sub.Machines[1], objBase), types.Propose(1)),
		func(types.Response) types.Response { return types.OK },
	)
	return decls, read, write, nil
}

// FromConsensusImplementation builds a standalone 2-process implementation
// of the one-use bit type over the given consensus substrate: process 0
// reads, process 1 writes. It is the unit under test for Experiment E5.
func FromConsensusImplementation(sub *program.Implementation) (*program.Implementation, error) {
	decls, read, write, err := FromConsensus(sub, 2, 0, 1, 0)
	if err != nil {
		return nil, err
	}
	return &program.Implementation{
		Name:     fmt.Sprintf("one-use-bit-from-%s", sub.Name),
		Target:   types.OneUseBit(),
		Procs:    2,
		Objects:  decls,
		Machines: []program.Machine{read, write},
	}, nil
}
