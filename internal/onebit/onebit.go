// Package onebit implements the one-use bit machinery at the heart of
// Bazzi, Neiger, and Peterson (PODC 1994):
//
//   - Section 3's one-use bit type itself (types.OneUseBit);
//   - Section 4.3's implementation of a bounded-use single-reader
//     single-writer bit from an (w+1) x r array of one-use bits, both as
//     machines for the Theorem 5 pipeline (this file) and as a direct
//     concurrent construction for stress tests and benchmarks (bounded.go);
//   - Section 5.1/5.2's implementation of a one-use bit from one object of
//     any non-trivial deterministic type, driven by the witnesses found by
//     package hierarchy (fromtype.go);
//   - Section 5.3's implementation of a one-use bit from a 2-process
//     consensus implementation (fromconsensus.go).
package onebit

import (
	"fmt"

	"waitfree/internal/program"
	"waitfree/internal/types"
)

// Array locates the (w+1) x r one-use bits implementing one bounded-use
// SRSW bit inside an implementation's object table (Section 4.3). Rows are
// indexed 1..W+1 (one per write, plus the sentinel row that is never
// completely flipped), columns 1..R (one per read). All bits start UNSET.
type Array struct {
	// Base is the object index of bits[1,1]; the array occupies
	// (W+1)*R consecutive indices in row-major order.
	Base int
	// R and W are the read and write bounds of the implemented bit.
	R, W int
	// Init is the implemented bit's initial value v.
	Init int
}

// Size returns the number of one-use bits the array uses: (w+1)*r.
func (a Array) Size() int { return (a.W + 1) * a.R }

// Obj returns the object index of bits[i,j] (i in 1..W+1, j in 1..R).
// Out-of-range coordinates return -1, which drivers reject loudly; the
// machines below only produce them if the declared bounds are violated.
func (a Array) Obj(i, j int) int {
	if i < 1 || i > a.W+1 || j < 1 || j > a.R {
		return -1
	}
	return a.Base + (i-1)*a.R + (j - 1)
}

// Decls returns the array's object declarations for an implementation
// with the given total process count: every bit is a one-use bit in state
// UNSET, read by readerProc on port 1 and written by writerProc on port 2.
func (a Array) Decls(procs, readerProc, writerProc int) []program.ObjectDecl {
	decls := make([]program.ObjectDecl, 0, a.Size())
	for i := 1; i <= a.W+1; i++ {
		for j := 1; j <= a.R; j++ {
			decls = append(decls, program.ObjectDecl{
				Name:   fmt.Sprintf("bits[%d,%d]", i, j),
				Spec:   types.OneUseBit(),
				Init:   types.OneUseUnset,
				PortOf: program.PairPorts(procs, readerProc, writerProc),
			})
		}
	}
	return decls
}

// WriterMem is the writer's persistent state across write operations: the
// next row to flip and the bit's current value. The paper assumes the bit
// "is only written when its value is being changed"; WriterMachine
// enforces that by skipping writes of the current value, so arbitrary
// clients are supported.
type WriterMem struct {
	IW  int
	Cur int
}

// ReaderMem is the reader's persistent state across read operations: the
// first row not known to be completely flipped, and the next column.
type ReaderMem struct {
	IR, JR int
}

// writerState is the writer machine's per-operation state.
type writerState struct {
	Mem  WriterMem
	X    int // value being written
	J    int // next column to flip; 0 before the first flip
	Skip bool
}

// WriterMachine returns the Section 4.3 write routine over the array:
//
//	for j := 1 to r do bits[i_w, j] := 1
//	i_w := i_w + 1
//	return ok
//
// preceded by the value-change check that the paper assumes of its writer.
func WriterMachine(a Array) program.Machine {
	return program.FuncMachine{
		StartFn: func(inv types.Invocation, mem any) any {
			m := decodeWriterMem(a, mem)
			return writerState{Mem: m, X: inv.A & 1, Skip: inv.A&1 == m.Cur}
		},
		NextFn: func(state any, _ types.Response) (program.Action, any) {
			s, ok := state.(writerState)
			if !ok {
				panic("onebit: WriterMachine driven with foreign state")
			}
			if s.Skip {
				return program.ReturnAction(types.OK, s.Mem), s
			}
			if s.J == a.R {
				// Row completely flipped: the logical write is done.
				return program.ReturnAction(types.OK, WriterMem{IW: s.Mem.IW + 1, Cur: s.X}), s
			}
			next := writerState{Mem: s.Mem, X: s.X, J: s.J + 1}
			return program.InvokeAction(a.Obj(s.Mem.IW, next.J), types.Write(1)), next
		},
	}
}

// readerState is the reader machine's per-operation state.
type readerState struct {
	Mem     ReaderMem
	Started bool
}

// ReaderMachine returns the Section 4.3 read routine over the array:
//
//	while bits[i_r, j_r] = 1 do i_r := i_r + 1
//	j_r := j_r + 1
//	return (v + (i_r - 1)) mod 2
//
// Each read uses a fresh column, so no one-use bit is ever read twice.
func ReaderMachine(a Array) program.Machine {
	return program.FuncMachine{
		StartFn: func(_ types.Invocation, mem any) any {
			return readerState{Mem: decodeReaderMem(mem)}
		},
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s, ok := state.(readerState)
			if !ok {
				panic("onebit: ReaderMachine driven with foreign state")
			}
			if s.Started && resp.Val == 0 {
				// Unflipped bit found: row i_r has seen i_r - 1 writes.
				val := (a.Init + s.Mem.IR - 1) % 2
				return program.ReturnAction(types.ValOf(val),
					ReaderMem{IR: s.Mem.IR, JR: s.Mem.JR + 1}), s
			}
			if s.Started {
				s.Mem.IR++ // flipped: advance to the next row
			}
			next := readerState{Mem: s.Mem, Started: true}
			return program.InvokeAction(a.Obj(s.Mem.IR, s.Mem.JR), types.Read), next
		},
	}
}

func decodeWriterMem(a Array, mem any) WriterMem {
	if m, ok := mem.(WriterMem); ok {
		return m
	}
	return WriterMem{IW: 1, Cur: a.Init}
}

func decodeReaderMem(mem any) ReaderMem {
	if m, ok := mem.(ReaderMem); ok {
		return m
	}
	return ReaderMem{IR: 1, JR: 1}
}

// Implementation assembles a standalone 2-process implementation of the
// SRSW bit type over the array: process 0 is the reader, process 1 the
// writer. It is the unit under test for Experiment E1 and the shape the
// Theorem 5 pipeline splices into host implementations.
func Implementation(r, w, init int) *program.Implementation {
	a := Array{Base: 0, R: r, W: w, Init: init}
	return &program.Implementation{
		Name:     fmt.Sprintf("one-use-bit-array(r=%d,w=%d,v=%d)", r, w, init),
		Target:   types.SRSWBit(),
		Procs:    2,
		Objects:  a.Decls(2, 0, 1),
		Machines: []program.Machine{ReaderMachine(a), WriterMachine(a)},
	}
}
