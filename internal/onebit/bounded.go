package onebit

import (
	"errors"
	"sync/atomic"
)

// This file is the direct concurrent form of the Section 4.3 construction,
// used by stress tests and benchmarks: a bounded-use single-reader
// single-writer bit over an (w+1) x r array of one-use bit cells.

// Errors reported when the declared bounds are exceeded.
var (
	ErrReadBudget  = errors.New("onebit: read bound exhausted")
	ErrWriteBudget = errors.New("onebit: write bound exhausted")
)

// cell is a hardware one-use bit: honest uses write it at most once and
// read it at most once.
type cell struct {
	v atomic.Int32
}

// BoundedBit is a single-reader, single-writer bit supporting at most R
// reads and W writes, built from (W+1)*R one-use bits. The reader and the
// writer must each be a single goroutine.
type BoundedBit struct {
	r, w int
	init int
	bits []cell // row-major (W+1) x R

	// writer-owned locals
	iw  int
	cur int

	// reader-owned locals
	ir, jr int

	// restartScan, when set, makes each read rescan rows from 1 instead of
	// resuming from ir — the ablation variant of DESIGN.md. The one-use
	// discipline still holds (each read uses a fresh column), and the bit
	// is still REGULAR, but atomicity is lost: a write whose row flip
	// straddles two reads can be seen by the earlier read and missed by
	// the later one (new/old inversion). The paper's resuming reader is
	// load-bearing for atomicity, not just cheaper.
	restartScan bool
}

// NewBoundedBit builds the construction with read bound r, write bound w,
// and initial value init.
func NewBoundedBit(r, w, init int) *BoundedBit {
	return &BoundedBit{
		r:    r,
		w:    w,
		init: init & 1,
		bits: make([]cell, (w+1)*r),
		iw:   1,
		cur:  init & 1,
		ir:   1,
		jr:   1,
	}
}

// NewBoundedBitRestartScan builds the ablation variant whose reader
// rescans from row 1 on every read. See the restartScan field: the variant
// is regular but NOT atomic under concurrent writes.
func NewBoundedBitRestartScan(r, w, init int) *BoundedBit {
	b := NewBoundedBit(r, w, init)
	b.restartScan = true
	return b
}

// flipPrefix flips only the first cols one-use bits of the current write
// row WITHOUT completing the write — a test hook that freezes a write
// mid-row, used to demonstrate the restart-scan variant's new/old
// inversion deterministically.
func (b *BoundedBit) flipPrefix(cols int) {
	for j := 1; j <= cols && j <= b.r; j++ {
		b.at(b.iw, j).v.Store(1)
	}
}

func (b *BoundedBit) at(i, j int) *cell {
	return &b.bits[(i-1)*b.r+(j-1)]
}

// Write sets the bit's value (writer goroutine only). Writes that do not
// change the value touch no one-use bits, matching the paper's assumption
// that the bit is written only when changing.
func (b *BoundedBit) Write(x int) error {
	x &= 1
	if x == b.cur {
		return nil
	}
	if b.iw > b.w {
		return ErrWriteBudget
	}
	for j := 1; j <= b.r; j++ {
		b.at(b.iw, j).v.Store(1)
	}
	b.iw++
	b.cur = x
	return nil
}

// Read returns the bit's value (reader goroutine only).
func (b *BoundedBit) Read() (int, error) {
	if b.jr > b.r {
		return 0, ErrReadBudget
	}
	i := b.ir
	if b.restartScan {
		i = 1
	}
	for b.at(i, b.jr).v.Load() == 1 {
		i++
	}
	b.ir = i
	b.jr++
	return (b.init + i - 1) % 2, nil
}

// Bits reports how many one-use bits the construction uses.
func (b *BoundedBit) Bits() int { return len(b.bits) }
