package onebit

import (
	"errors"
	"fmt"
	"sync"
	"testing"

	"waitfree/internal/explore"
	"waitfree/internal/hierarchy"
	"waitfree/internal/hist"
	"waitfree/internal/linearize"
	"waitfree/internal/program"
	rt "waitfree/internal/runtime"
	"waitfree/internal/sched"
	"waitfree/internal/types"
)

// checkLinearizableAgainst runs an exhaustive exploration of the given
// scripts and checks every leaf history against the target spec.
func checkLinearizableAgainst(t *testing.T, im *program.Implementation, target *types.Spec, init types.State, scripts [][]types.Invocation) *explore.Result {
	t.Helper()
	opts := explore.Options{
		RecordHistory: true,
		OnLeaf: func(l *explore.Leaf) error {
			if _, err := linearize.Check(target, init, l.History); err != nil {
				return fmt.Errorf("leaf not linearizable: %w\nhistory: %v\nschedule:\n%s",
					err, l.History, explore.FormatSchedule(l.Schedule))
			}
			return nil
		},
	}
	res, err := explore.Run(im, scripts, opts)
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatal(res.Violation)
	}
	return res
}

// ---- Section 4.3: bounded bit from one-use bits, machine form ----

func TestArrayGeometry(t *testing.T) {
	a := Array{Base: 3, R: 4, W: 2}
	if a.Size() != 12 {
		t.Errorf("Size = %d, want 12", a.Size())
	}
	if got := a.Obj(1, 1); got != 3 {
		t.Errorf("Obj(1,1) = %d, want 3", got)
	}
	if got := a.Obj(3, 4); got != 3+11 {
		t.Errorf("Obj(3,4) = %d, want %d", got, 3+11)
	}
	for _, bad := range [][2]int{{0, 1}, {1, 0}, {4, 1}, {1, 5}} {
		if got := a.Obj(bad[0], bad[1]); got != -1 {
			t.Errorf("Obj(%d,%d) = %d, want -1", bad[0], bad[1], got)
		}
	}
}

func TestBitArraySoloSemantics(t *testing.T) {
	// Sequentially: reads see the latest write; redundant writes are free.
	im := Implementation(4, 3, 0)
	states := im.InitialStates()
	var readerMem, writerMem any

	read := func(want int) {
		t.Helper()
		res, err := program.Solo(im, states, 0, types.Read, readerMem, 100)
		if err != nil {
			t.Fatal(err)
		}
		if res.Resp != types.ValOf(want) {
			t.Fatalf("read = %v, want val(%d)", res.Resp, want)
		}
		readerMem = res.Mem
	}
	write := func(x, wantSteps int) {
		t.Helper()
		res, err := program.Solo(im, states, 1, types.Write(x), writerMem, 100)
		if err != nil {
			t.Fatal(err)
		}
		if res.Resp != types.OK {
			t.Fatalf("write = %v", res.Resp)
		}
		if res.Steps != wantSteps {
			t.Fatalf("write(%d) took %d steps, want %d", x, res.Steps, wantSteps)
		}
		writerMem = res.Mem
	}

	read(0)
	write(0, 0) // no change: no bits touched
	write(1, 4) // flips a row of r=4 bits
	read(1)
	write(1, 0) // redundant
	write(0, 4)
	read(0)
}

func TestBitArrayReadBudgetRespected(t *testing.T) {
	// r reads and w writes must complete without running off the array.
	im := Implementation(2, 2, 1)
	states := im.InitialStates()
	var rm, wm any
	for i, x := range []int{0, 1} {
		res, err := program.Solo(im, states, 1, types.Write(x), wm, 100)
		if err != nil {
			t.Fatalf("write %d: %v", i, err)
		}
		wm = res.Mem
	}
	for i, want := range []int{1, 1} {
		res, err := program.Solo(im, states, 0, types.Read, rm, 100)
		if err != nil {
			t.Fatalf("read %d: %v", i, err)
		}
		if res.Resp != types.ValOf(want) {
			t.Fatalf("read %d = %v, want %d", i, res.Resp, want)
		}
		rm = res.Mem
	}
}

// TestBitArrayLinearizableAllInterleavings is Experiment E1's core: for
// every r, w and write pattern, every interleaving of the reader's r reads
// with the writer's w writes yields a history linearizable against the
// SRSW bit spec.
func TestBitArrayLinearizableAllInterleavings(t *testing.T) {
	cases := []struct {
		r, w   int
		init   int
		writes []int
	}{
		{1, 1, 0, []int{1}},
		{2, 1, 0, []int{1}},
		{2, 2, 0, []int{1, 0}},
		{3, 2, 1, []int{0, 1}},
		{2, 3, 0, []int{1, 0, 1}},
		{2, 2, 0, []int{1, 1}}, // redundant write exercises the skip path
	}
	for _, tc := range cases {
		name := fmt.Sprintf("r%d_w%d_v%d_%v", tc.r, tc.w, tc.init, tc.writes)
		t.Run(name, func(t *testing.T) {
			im := Implementation(tc.r, tc.w, tc.init)
			reads := make([]types.Invocation, tc.r)
			for i := range reads {
				reads[i] = types.Read
			}
			writes := make([]types.Invocation, len(tc.writes))
			for i, x := range tc.writes {
				writes[i] = types.Write(x)
			}
			scripts := [][]types.Invocation{reads, writes}
			res := checkLinearizableAgainst(t, im, types.SRSWBit(), tc.init, scripts)
			if res.Leaves == 0 {
				t.Fatal("no executions explored")
			}
			// Every one-use bit is read at most once and written at most
			// once along any path (Section 3's discipline).
			for obj, ops := range res.OpAccess {
				if ops[types.OpRead] > 1 {
					t.Errorf("obj%d read %d times", obj, ops[types.OpRead])
				}
				if ops[types.OpWrite] > 1 {
					t.Errorf("obj%d written %d times", obj, ops[types.OpWrite])
				}
			}
		})
	}
}

// ---- Section 4.3: direct concurrent construction ----

func TestBoundedBitSequential(t *testing.T) {
	for _, restart := range []bool{false, true} {
		b := NewBoundedBit(5, 4, 0)
		if restart {
			b = NewBoundedBitRestartScan(5, 4, 0)
		}
		if b.Bits() != 25 {
			t.Errorf("Bits = %d, want 25", b.Bits())
		}
		check := func(want int) {
			t.Helper()
			got, err := b.Read()
			if err != nil {
				t.Fatal(err)
			}
			if got != want {
				t.Fatalf("restart=%v: read = %d, want %d", restart, got, want)
			}
		}
		check(0)
		if err := b.Write(1); err != nil {
			t.Fatal(err)
		}
		check(1)
		if err := b.Write(1); err != nil { // redundant
			t.Fatal(err)
		}
		check(1)
		if err := b.Write(0); err != nil {
			t.Fatal(err)
		}
		check(0)
	}
}

func TestBoundedBitBudgets(t *testing.T) {
	b := NewBoundedBit(1, 1, 0)
	if _, err := b.Read(); err != nil {
		t.Fatal(err)
	}
	if _, err := b.Read(); !errors.Is(err, ErrReadBudget) {
		t.Errorf("err = %v, want ErrReadBudget", err)
	}
	if err := b.Write(1); err != nil {
		t.Fatal(err)
	}
	if err := b.Write(0); !errors.Is(err, ErrWriteBudget) {
		t.Errorf("err = %v, want ErrWriteBudget", err)
	}
	// Redundant writes never consume budget.
	if err := b.Write(1); err != nil {
		t.Errorf("redundant write failed: %v", err)
	}
}

func TestBoundedBitConcurrentStress(t *testing.T) {
	// Only the paper's resuming reader is atomic; the restart-scan
	// ablation is merely regular (see TestRestartScanIsNotAtomic).
	for trial := 0; trial < 30; trial++ {
		for _, restart := range []bool{false} {
			const r, w = 10, 9
			b := NewBoundedBit(r, w, 0)
			if restart {
				b = NewBoundedBitRestartScan(r, w, 0)
			}
			var h concHarness
			done := make(chan struct{})
			go func() {
				defer close(done)
				for i := 1; i <= w; i++ {
					x := i % 2
					h.write(x, func() {
						if err := b.Write(x); err != nil {
							t.Errorf("write: %v", err)
						}
					})
				}
			}()
			for i := 0; i < r; i++ {
				h.read(func() int {
					v, err := b.Read()
					if err != nil {
						t.Errorf("read: %v", err)
					}
					return v
				})
			}
			<-done
			h.checkAtomicBit(t, 0)
		}
	}
}

// ---- Sections 5.1/5.2: one-use bit from a non-trivial type ----

func TestFromTypeAllZooMembers(t *testing.T) {
	cases := []struct {
		spec  *types.Spec
		inits []types.State
	}{
		{types.TestAndSet(2), []types.State{0}},
		{types.Register(2, 2), []types.State{0}},
		{types.Queue(2, 2, 3), []types.State{types.QueueState()}},
		{types.Stack(2, 2, 3), []types.State{types.QueueState()}},
		{types.FetchAdd(2), []types.State{0}},
		{types.Swap(2, 2), []types.State{0}},
		{types.CompareSwap(2, 3), []types.State{2}},
		{types.StickyCell(2, 2), []types.State{types.StickyUnset}},
		{types.Toggle(2), []types.State{0}},
		{types.LatchFlag(), []types.State{types.LatchFlagInit()}},
	}
	for _, tc := range cases {
		t.Run(tc.spec.Name, func(t *testing.T) {
			im, pair, err := FromType(tc.spec, tc.inits, 3)
			if err != nil {
				t.Fatal(err)
			}
			if err := im.Validate(); err != nil {
				t.Fatal(err)
			}
			// Solo reader: unwritten bit reads 0.
			states := im.InitialStates()
			res, err := program.Solo(im, states, 0, types.Read, nil, 100)
			if err != nil {
				t.Fatal(err)
			}
			if res.Resp != types.ValOf(0) {
				t.Fatalf("solo read = %v (pair %v)", res.Resp, pair)
			}
			// Sequential write then read: reads 1.
			states = im.InitialStates()
			if _, err := program.Solo(im, states, 1, types.Write(1), nil, 100); err != nil {
				t.Fatal(err)
			}
			res, err = program.Solo(im, states, 0, types.Read, nil, 100)
			if err != nil {
				t.Fatal(err)
			}
			if res.Resp != types.ValOf(1) {
				t.Fatalf("read after write = %v (pair %v)", res.Resp, pair)
			}
			// All interleavings of one read and one write are linearizable
			// against the one-use bit type.
			scripts := [][]types.Invocation{{types.Read}, {types.Write(1)}}
			checkLinearizableAgainst(t, im, types.OneUseBit(), types.OneUseUnset, scripts)
		})
	}
}

func TestFromTypeRejectsTrivialAndNondet(t *testing.T) {
	if _, _, err := FromType(types.Beacon(2), []types.State{0}, 3); err == nil {
		t.Error("trivial type accepted")
	}
	if _, _, err := FromType(types.WeakLeader(2), []types.State{0}, 3); err == nil {
		t.Error("nondeterministic type accepted")
	}
}

// ---- Section 5.3: one-use bit from 2-process consensus ----

// miniCAS builds a tiny register-free 2-consensus implementation used as
// the Section 5.3 substrate (a local copy to avoid an import cycle with
// package consensus in some layouts; the full protocols are exercised in
// the core package tests).
func miniCAS() *program.Implementation {
	type st struct {
		PC int
		V  int
	}
	m := program.FuncMachine{
		StartFn: func(inv types.Invocation, _ any) any { return st{PC: 0, V: inv.A} },
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s := state.(st)
			if s.PC == 0 {
				return program.InvokeAction(0, types.Inv(types.OpCAS, 2, s.V)), st{PC: 1, V: s.V}
			}
			if resp.Val == 2 {
				return program.ReturnAction(types.ValOf(s.V), nil), s
			}
			return program.ReturnAction(types.ValOf(resp.Val), nil), s
		},
	}
	return &program.Implementation{
		Name:   "mini-cas-consensus",
		Target: types.Consensus(2),
		Procs:  2,
		Objects: []program.ObjectDecl{{
			Name: "cas", Spec: types.CompareSwap(2, 3), Init: 2, PortOf: program.AllPorts(2),
		}},
		Machines: []program.Machine{m, m},
	}
}

func TestFromConsensusLinearizable(t *testing.T) {
	im, err := FromConsensusImplementation(miniCAS())
	if err != nil {
		t.Fatal(err)
	}
	if err := im.Validate(); err != nil {
		t.Fatal(err)
	}
	scripts := [][]types.Invocation{{types.Read}, {types.Write(1)}}
	checkLinearizableAgainst(t, im, types.OneUseBit(), types.OneUseUnset, scripts)

	// Sequential semantics.
	states := im.InitialStates()
	res, err := program.Solo(im, states, 0, types.Read, nil, 100)
	if err != nil || res.Resp != types.ValOf(0) {
		t.Fatalf("solo read = %v, err %v", res.Resp, err)
	}
	states = im.InitialStates()
	if _, err := program.Solo(im, states, 1, types.Write(1), nil, 100); err != nil {
		t.Fatal(err)
	}
	res, err = program.Solo(im, states, 0, types.Read, nil, 100)
	if err != nil || res.Resp != types.ValOf(1) {
		t.Fatalf("read after write = %v, err %v", res.Resp, err)
	}
}

func TestFromConsensusRejectsWrongArity(t *testing.T) {
	bad := miniCAS()
	bad.Procs = 3
	bad.Machines = append(bad.Machines, bad.Machines[0])
	bad.Objects[0].PortOf = program.AllPorts(3)
	if _, _, _, err := FromConsensus(bad, 2, 0, 1, 0); err == nil {
		t.Error("3-process substrate accepted")
	}
}

// concHarness is a tiny clock-stamped history recorder for the direct
// BoundedBit stress test.
type concHarness struct {
	mu    sync.Mutex
	ops   hist.History
	clock int64
}

func (h *concHarness) tick() int {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.clock++
	return int(h.clock)
}

func (h *concHarness) record(op hist.Op) {
	h.mu.Lock()
	defer h.mu.Unlock()
	h.ops = append(h.ops, op)
}

func (h *concHarness) read(f func() int) {
	begin := h.tick()
	v := f()
	h.record(hist.Op{Proc: 0, Port: 1, Inv: types.Read, Resp: types.ValOf(v), Begin: begin, End: h.tick()})
}

func (h *concHarness) write(x int, f func()) {
	begin := h.tick()
	f()
	h.record(hist.Op{Proc: 1, Port: 2, Inv: types.Write(x), Resp: types.OK, Begin: begin, End: h.tick()})
}

func (h *concHarness) checkAtomicBit(t *testing.T, init int) {
	t.Helper()
	if _, err := linearize.Check(types.SRSWBit(), init, h.ops); err != nil {
		t.Fatalf("not linearizable: %v\n%v", err, h.ops)
	}
}

// TestBitArrayMachinesUnderTokenScheduler drives the Section 4.3 machines
// at a scale beyond the exhaustive explorer (r=20, w=19) through the
// concurrent runtime with seeded global interleavings, checking each
// history against the SRSW bit type.
func TestBitArrayMachinesUnderTokenScheduler(t *testing.T) {
	const r, w = 20, 19
	for seed := int64(0); seed < 15; seed++ {
		im := Implementation(r, w, 0)
		tok := sched.NewToken(2, seed, nil)
		runner, err := rt.New(im, tok, nil)
		if err != nil {
			t.Fatal(err)
		}
		reads := make([]types.Invocation, r)
		for i := range reads {
			reads[i] = types.Read
		}
		writes := make([]types.Invocation, w)
		for i := range writes {
			writes[i] = types.Write((i + 1) % 2)
		}
		out, err := runner.Run([][]types.Invocation{reads, writes}, nil)
		tok.Stop()
		if err != nil {
			t.Fatalf("seed %d: %v", seed, err)
		}
		h := out.History
		for i := range h {
			// Target ports: reader proc 0 -> port 1, writer proc 1 -> 2.
			h[i].Port = h[i].Proc + 1
		}
		if _, err := linearize.Check(types.SRSWBit(), 0, h); err != nil {
			t.Fatalf("seed %d: %v\n%v", seed, err, h)
		}
	}
}

// TestBitArrayMachineCrashMidWrite crashes the writer in the middle of a
// row flip; the reader must still complete all its reads with values
// consistent with the one-use bit semantics (the half-flipped row makes
// the interrupted write forever concurrent, so either value is legal for
// reads after the crash).
func TestBitArrayMachineCrashMidWrite(t *testing.T) {
	const r, w = 4, 3
	for crashAfter := 0; crashAfter <= r*w; crashAfter++ {
		im := Implementation(r, w, 0)
		cr := sched.NewCrash(map[int]int{1: crashAfter})
		runner, err := rt.New(im, cr, nil)
		if err != nil {
			t.Fatal(err)
		}
		reads := make([]types.Invocation, r)
		for i := range reads {
			reads[i] = types.Read
		}
		writes := []types.Invocation{types.Write(1), types.Write(0), types.Write(1)}
		out, err := runner.Run([][]types.Invocation{reads, writes}, nil)
		if err != nil {
			t.Fatalf("crash@%d: %v", crashAfter, err)
		}
		if len(out.Responses[0]) != r {
			t.Fatalf("crash@%d: reader completed %d of %d reads", crashAfter, len(out.Responses[0]), r)
		}
		// A write cut short by the crash is pending: linearizability must
		// hold for SOME completion — the pending write either took effect
		// (append it as completed) or did not (drop it).
		complete := out.History.Complete()
		for i := range complete {
			complete[i].Port = complete[i].Proc + 1
		}
		okDropped := false
		if _, err := linearize.Check(types.SRSWBit(), 0, complete); err == nil {
			okDropped = true
		}
		okTaken := false
		maxEnd := 0
		var pendingOps []hist.Op
		for _, op := range out.History {
			if !op.Complete() {
				pendingOps = append(pendingOps, op)
			}
			if op.Complete() && op.End > maxEnd {
				maxEnd = op.End
			}
		}
		if len(pendingOps) > 0 {
			withWrite := append(hist.History(nil), complete...)
			for _, op := range pendingOps {
				op.Port = op.Proc + 1
				op.End = maxEnd + 1
				op.Resp = types.OK // a completed write acknowledges
				withWrite = append(withWrite, op)
			}
			if _, err := linearize.Check(types.SRSWBit(), 0, withWrite); err == nil {
				okTaken = true
			}
		} else {
			okTaken = okDropped
		}
		if !okDropped && !okTaken {
			t.Fatalf("crash@%d: no completion of the pending write linearizes\n%v", crashAfter, out.History)
		}
	}
}

// TestRestartScanIsNotAtomic demonstrates deterministically that the
// restart-scan ablation forfeits atomicity: freeze a write after flipping
// only column 1 of its row; the first read (column 1) sees the flip and
// returns the new value, the second read (column 2) misses it and returns
// the old value — a new/old inversion no linearization permits. The
// paper's resuming reader is immune: having seen row 1 flipped it never
// rereads it.
func TestRestartScanIsNotAtomic(t *testing.T) {
	b := NewBoundedBitRestartScan(4, 3, 0)
	b.flipPrefix(1) // a write(1) frozen after its first column
	v1, err := b.Read()
	if err != nil {
		t.Fatal(err)
	}
	v2, err := b.Read()
	if err != nil {
		t.Fatal(err)
	}
	if v1 != 1 || v2 != 0 {
		t.Fatalf("reads = %d, %d; want the 1,0 inversion", v1, v2)
	}
	// The same frozen prefix under the resuming reader stays consistent.
	rb := NewBoundedBit(4, 3, 0)
	rb.flipPrefix(1)
	v1, _ = rb.Read()
	v2, _ = rb.Read()
	if v2 < v1 {
		t.Fatalf("resuming reader inverted: %d then %d", v1, v2)
	}
	// And the inversion history is indeed not linearizable.
	h := hist.History{
		{Proc: 1, Port: 2, Inv: types.Write(1), Resp: types.OK, Begin: 0, End: 7},
		{Proc: 0, Port: 1, Inv: types.Read, Resp: types.ValOf(1), Begin: 1, End: 2},
		{Proc: 0, Port: 1, Inv: types.Read, Resp: types.ValOf(0), Begin: 3, End: 4},
	}
	if _, err := linearize.Check(types.SRSWBit(), 0, h); err == nil {
		t.Fatal("inversion history accepted as linearizable")
	}
}

// TestFromObliviousWitness exercises the published Section 5.1 form on the
// oblivious zoo: find the witness, build the bit, verify all interleavings.
func TestFromObliviousWitness(t *testing.T) {
	cases := []struct {
		spec  *types.Spec
		inits []types.State
	}{
		{types.TestAndSet(2), []types.State{0}},
		{types.Queue(2, 2, 3), []types.State{types.QueueState()}},
		{types.FetchAdd(2), []types.State{0}},
		{types.StickyCell(2, 2), []types.State{types.StickyUnset}},
	}
	for _, tc := range cases {
		t.Run(tc.spec.Name, func(t *testing.T) {
			w, err := hierarchy.FindObliviousWitness(tc.spec, tc.inits, 64)
			if err != nil {
				t.Fatal(err)
			}
			im := FromObliviousWitness(tc.spec, w)
			if err := im.Validate(); err != nil {
				t.Fatal(err)
			}
			scripts := [][]types.Invocation{{types.Read}, {types.Write(1)}}
			checkLinearizableAgainst(t, im, types.OneUseBit(), types.OneUseUnset, scripts)
			// Solo semantics: unwritten reads 0; written reads 1.
			states := im.InitialStates()
			res, err := program.Solo(im, states, 0, types.Read, nil, 10)
			if err != nil || res.Resp != types.ValOf(0) {
				t.Fatalf("solo read: %v, %v", res.Resp, err)
			}
			if res.Steps != 1 {
				t.Errorf("Section 5.1 read took %d steps, want exactly 1", res.Steps)
			}
		})
	}
}
