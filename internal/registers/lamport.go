package registers

// This file implements the regular layers of the Section 4.1 chain, after
// Lamport, "On interprocess communication II" (1986).

// LamportMRBit is a multi-reader regular bit built from one SRSW regular
// bit per reader: the writer writes each reader's copy in turn; each
// reader reads only its own copy. If the base bits are regular, so is the
// result (reads overlapping the multi-bit write see either value, but
// always a value that was recently written).
type LamportMRBit struct {
	copies []Bit
}

var _ MultiReaderBit = (*LamportMRBit)(nil)

// NewLamportMRBit builds the construction for the given number of readers
// over fresh base bits from newBit.
func NewLamportMRBit(readers, init int, newBit func(init int) Bit) *LamportMRBit {
	copies := make([]Bit, readers)
	for i := range copies {
		copies[i] = newBit(init)
	}
	return &LamportMRBit{copies: copies}
}

// Read implements MultiReaderBit: reader r reads its own copy.
func (b *LamportMRBit) Read(reader int) int { return b.copies[reader].Read() }

// Write implements MultiReaderBit: write every reader's copy.
func (b *LamportMRBit) Write(v int) {
	for _, c := range b.copies {
		c.Write(v)
	}
}

// BaseBits reports how many SRSW bits the construction uses.
func (b *LamportMRBit) BaseBits() int { return len(b.copies) }

// LamportMultiReg is a single-writer, multi-reader, k-valued regular
// register in Lamport's unary encoding: bit j is set when the value may be
// j; Write(v) sets bit v and then clears all lower bits (downward), and
// Read scans upward returning the first set bit. With regular base bits
// the register is regular.
type LamportMultiReg struct {
	bits []MultiReaderBit
}

var _ MultiReaderReg = (*LamportMultiReg)(nil)

// NewLamportMultiReg builds the k-valued register over fresh multi-reader
// bits from newBit, initialized to init.
func NewLamportMultiReg(k, init int, newBit func(init int) MultiReaderBit) *LamportMultiReg {
	bits := make([]MultiReaderBit, k)
	for j := range bits {
		b := 0
		if j == init {
			b = 1
		}
		bits[j] = newBit(b)
	}
	return &LamportMultiReg{bits: bits}
}

// Read implements MultiReaderReg: return the lowest set bit. The upward
// scan finds a set bit within the array: a write sets bit v before
// clearing lower bits, so whenever a reader misses a bit through an
// overlapping clear, a higher bit was already set, and each such miss
// refers the reader strictly upward (Lamport's termination argument).
func (r *LamportMultiReg) Read(reader int) int {
	for j := 0; j < len(r.bits); j++ {
		if r.bits[j].Read(reader) == 1 {
			return j
		}
	}
	// Unreachable under the invariant above; returning the top value keeps
	// the reader total without panicking.
	return len(r.bits) - 1
}

// Write implements MultiReaderReg.
func (r *LamportMultiReg) Write(v int) {
	r.bits[v].Write(1)
	for j := v - 1; j >= 0; j-- {
		r.bits[j].Write(0)
	}
}

// Values reports the register's value range.
func (r *LamportMultiReg) Values() int { return len(r.bits) }
