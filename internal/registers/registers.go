// Package registers implements the wait-free register construction chain
// of Section 4.1 of Bazzi, Neiger, and Peterson (PODC 1994): general
// multi-reader, multi-writer, multi-value atomic registers built from
// single-reader, single-writer bits.
//
// The paper cites the chain Lamport (86), Burns-Peterson (87), Peterson
// (83), Peterson-Burns (87). This package implements, executably:
//
//   - simulated base cells: atomic and regular SRSW bits (a regular bit
//     read that overlaps a write may return either the old or the new
//     value — the adversary picks);
//   - Lamport's multi-reader regular bit from SRSW regular bits;
//   - Lamport's multi-reader regular multi-value register from regular
//     bits (unary encoding, lowest-set-bit reads);
//   - Vidyasankar's SRSW multi-value atomic register from SRSW atomic
//     bits (upscan/downscan);
//   - a multi-reader atomic register from SRSW atomic cells (timestamped
//     reader-announcement construction);
//   - a multi-writer atomic register from multi-reader atomic registers
//     (timestamp-maximum construction).
//
// The two top layers use unbounded sequence numbers where the cited papers
// use bounded ones; DESIGN.md documents why this substitution preserves
// the property the paper needs (a wait-free chain from SRSW bits to MRMW
// multi-value registers, with bounded use in the Theorem 5 pipeline).
package registers

// Bit is a single-reader, single-writer bit register: one fixed process
// calls Read, another fixed process calls Write.
type Bit interface {
	Read() int
	Write(v int)
}

// MultiReaderBit is a single-writer bit readable by several processes;
// readers identify themselves by index.
type MultiReaderBit interface {
	Read(reader int) int
	Write(v int)
}

// MultiReaderReg is a single-writer, multi-value register readable by
// several processes.
type MultiReaderReg interface {
	Read(reader int) int
	Write(v int)
}

// MultiWriterReg is a multi-writer, multi-reader, multi-value register.
type MultiWriterReg interface {
	Read(reader int) int
	Write(writer int, v int)
}
