package registers

import "sync/atomic"

// AtomicBit is the base cell of the chain: a single-reader, single-writer
// atomic bit, simulated by hardware atomics. Everything else in the
// package is constructed from cells like this one.
type AtomicBit struct {
	v atomic.Int32
}

var _ Bit = (*AtomicBit)(nil)

// NewAtomicBit returns an atomic bit initialized to init.
func NewAtomicBit(init int) *AtomicBit {
	b := &AtomicBit{}
	b.v.Store(int32(init & 1))
	return b
}

// Read implements Bit.
func (b *AtomicBit) Read() int { return int(b.v.Load()) }

// Write implements Bit.
func (b *AtomicBit) Write(v int) { b.v.Store(int32(v & 1)) }

// writeWindow captures an in-progress write of a RegularBit.
type writeWindow struct {
	old    int32
	new    int32
	active bool
}

// RegularBit simulates a regular (but not atomic) SRSW bit: a read that
// overlaps a write returns either the old or the new value, chosen by the
// Choose function (the adversary). Two reads within the same write window
// may observe new-then-old — the new/old inversion that distinguishes
// regular from atomic registers.
//
// BeginWrite/EndWrite expose the write window so tests can hold a write
// open deterministically; Write performs both back to back.
type RegularBit struct {
	val    atomic.Int32
	window atomic.Pointer[writeWindow]
	// Choose picks the value returned by a read that overlaps a write:
	// true means the old value. It must be safe for concurrent use.
	Choose func() bool
	// flip alternates choices when no Choose is installed, guaranteeing
	// that both behaviors occur.
	flip atomic.Int32
}

var _ Bit = (*RegularBit)(nil)

// NewRegularBit returns a regular bit initialized to init. choose may be
// nil, in which case overlapping reads alternate old/new.
func NewRegularBit(init int, choose func() bool) *RegularBit {
	b := &RegularBit{Choose: choose}
	b.val.Store(int32(init & 1))
	return b
}

// Read implements Bit: overlapping reads consult the adversary.
func (b *RegularBit) Read() int {
	if w := b.window.Load(); w != nil && w.active {
		if b.chooseOld() {
			return int(w.old)
		}
		return int(w.new)
	}
	return int(b.val.Load())
}

func (b *RegularBit) chooseOld() bool {
	if b.Choose != nil {
		return b.Choose()
	}
	return b.flip.Add(1)%2 == 0
}

// Write implements Bit.
func (b *RegularBit) Write(v int) {
	b.BeginWrite(v)
	b.EndWrite()
}

// BeginWrite opens a write window: until EndWrite, concurrent reads are
// adversarial.
func (b *RegularBit) BeginWrite(v int) {
	b.window.Store(&writeWindow{old: b.val.Load(), new: int32(v & 1), active: true})
}

// EndWrite installs the pending value and closes the window.
func (b *RegularBit) EndWrite() {
	if w := b.window.Load(); w != nil && w.active {
		b.val.Store(w.new)
		b.window.Store(nil)
	}
}
