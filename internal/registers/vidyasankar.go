package registers

// This file implements the atomic single-reader multi-value layer, after
// Vidyasankar's classic construction of a k-valued atomic register from
// atomic bits (upscan to the first set bit, then downscan confirming the
// lowest stable set bit).

// Vidyasankar is a single-writer, single-reader, k-valued atomic register
// built from k SRSW atomic bits in unary encoding.
//
// Write(v): set bit v, then clear bits v-1 .. 0 downward.
// Read: scan up to the first set bit j; then scan down from j-1 to 0 and
// return the lowest bit found set during the downscan (or j if none).
//
// The downscan is what upgrades Lamport's regular construction to an
// atomic one: it guarantees that the sequence of values returned by
// consecutive reads never exhibits a new/old inversion.
type Vidyasankar struct {
	bits []Bit
}

var _ Bit = (*Vidyasankar)(nil) // with k=2 it is itself an atomic bit

// NewVidyasankar builds the k-valued register over fresh SRSW atomic bits
// from newBit, initialized to init.
func NewVidyasankar(k, init int, newBit func(init int) Bit) *Vidyasankar {
	bits := make([]Bit, k)
	for j := range bits {
		b := 0
		if j == init {
			b = 1
		}
		bits[j] = newBit(b)
	}
	return &Vidyasankar{bits: bits}
}

// Read returns the register's value (single reader).
func (r *Vidyasankar) Read() int {
	j := 0
	for j < len(r.bits)-1 && r.bits[j].Read() == 0 {
		j++
	}
	v := j
	for i := j - 1; i >= 0; i-- {
		if r.bits[i].Read() == 1 {
			v = i
		}
	}
	return v
}

// Write sets the register's value (single writer).
func (r *Vidyasankar) Write(v int) {
	r.bits[v].Write(1)
	for j := v - 1; j >= 0; j-- {
		r.bits[j].Write(0)
	}
}

// BaseBits reports how many SRSW bits the construction uses.
func (r *Vidyasankar) BaseBits() int { return len(r.bits) }

// Values reports the register's value range.
func (r *Vidyasankar) Values() int { return len(r.bits) }
