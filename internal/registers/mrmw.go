package registers

// This file implements the top layer of the Section 4.1 chain: a
// multi-writer, multi-reader, multi-value atomic register from
// single-writer multi-reader atomic registers, via the timestamp-maximum
// construction (Vitanyi-Awerbuch style; the paper cites Peterson-Burns'
// bounded equivalent — see DESIGN.md for the substitution).

// wTag is a value tagged with a timestamp and the writer that produced it;
// (TS, ID) pairs are totally ordered lexicographically.
type wTag struct {
	Val int
	TS  int
	ID  int
}

func (a wTag) after(b wTag) bool {
	if a.TS != b.TS {
		return a.TS > b.TS
	}
	return a.ID > b.ID
}

// MRMWAtomic is an m-writer, n-reader, multi-value atomic register.
//
// Each writer owns one MRSW atomic register (from mrsw.go), readable by
// every party — writers read all registers during their collect phase, so
// writers are readers of each other's registers too. To write, a writer
// collects all registers, picks a timestamp greater than every timestamp
// it saw (ties broken by writer id), and installs the tagged value in its
// own register. To read, a reader collects all registers and returns the
// value with the maximal (timestamp, id) tag.
type MRMWAtomic struct {
	writers int
	readers int
	regs    []*MRSWAtomicG[wTag]
}

var _ MultiWriterReg = (*MRMWAtomic)(nil)

// NewMRMWAtomic builds the register for the given numbers of writers and
// readers, initialized to init. Every per-writer register carries the
// initial value at timestamp 0, so the pre-write maximum is init whichever
// register wins the tie-break.
func NewMRMWAtomic(writers, readers, init int) *MRMWAtomic {
	parties := writers + readers
	r := &MRMWAtomic{writers: writers, readers: readers}
	r.regs = make([]*MRSWAtomicG[wTag], writers)
	for w := range r.regs {
		r.regs[w] = NewMRSWAtomicG(parties, wTag{Val: init, TS: 0, ID: w})
	}
	return r
}

// collect scans all per-writer registers as the given party and returns
// the maximal tag seen.
func (r *MRMWAtomic) collect(party int) wTag {
	best := r.regs[0].Read(party)
	for w := 1; w < r.writers; w++ {
		if got := r.regs[w].Read(party); got.after(best) {
			best = got
		}
	}
	return best
}

// Write implements MultiWriterReg for the given writer index. Writers
// occupy parties 0..writers-1 in the per-register reader spaces.
func (r *MRMWAtomic) Write(writer int, v int) {
	best := r.collect(writer)
	r.regs[writer].Write(wTag{Val: v, TS: best.TS + 1, ID: writer})
}

// Read implements MultiWriterReg for the given reader index. Readers
// occupy parties writers..writers+readers-1.
func (r *MRMWAtomic) Read(reader int) int {
	return r.collect(r.writers + reader).Val
}

// BaseCells reports how many SRSW cells the construction uses across its
// per-writer registers.
func (r *MRMWAtomic) BaseCells() int {
	total := 0
	for _, reg := range r.regs {
		total += reg.BaseCells()
	}
	return total
}
