package registers

import "sync/atomic"

// This file implements the multi-reader atomic layer: a single-writer,
// multi-reader atomic register from single-reader, single-writer atomic
// registers, via the classic reader-announcement construction with
// sequence numbers (Attiya-Welch style; the paper cites Burns-Peterson's
// bounded equivalent — see DESIGN.md for the substitution).
//
// The construction is generic in its payload so that the multi-writer
// layer (mrmw.go) can stack on top of genuinely atomic multi-reader
// registers carrying tagged values.

// stamped is a timestamped payload, the content of the construction's
// SRSW cells.
type stamped[T any] struct {
	Val T
	TS  int
}

// srswCell is a single-reader, single-writer atomic register holding a
// stamped payload. It stands for the product of the lower chain layers.
type srswCell[T any] struct {
	p atomic.Pointer[stamped[T]]
}

func newSRSWCell[T any](init stamped[T]) *srswCell[T] {
	c := &srswCell[T]{}
	v := init
	c.p.Store(&v)
	return c
}

func (c *srswCell[T]) load() stamped[T]   { return *c.p.Load() }
func (c *srswCell[T]) store(v stamped[T]) { c.p.Store(&v) }

// MRSWAtomicG is a single-writer, n-reader atomic register with payload T.
//
// The writer keeps one SRSW cell per reader (wv[r], written by the writer,
// read by reader r). Each reader additionally announces the freshest value
// it has returned in SRSW cells report[i][j] (written by reader i, read by
// reader j), so that a later read by another reader never returns an older
// value — which is exactly what upgrades per-reader regularity to
// atomicity.
type MRSWAtomicG[T any] struct {
	readers int
	ts      int // writer-local sequence number
	wv      []*srswCell[T]
	report  [][]*srswCell[T]
}

// NewMRSWAtomicG builds the register for the given number of readers,
// initialized to init.
func NewMRSWAtomicG[T any](readers int, init T) *MRSWAtomicG[T] {
	r := &MRSWAtomicG[T]{
		readers: readers,
		wv:      make([]*srswCell[T], readers),
		report:  make([][]*srswCell[T], readers),
	}
	zero := stamped[T]{Val: init, TS: 0}
	for i := range r.wv {
		r.wv[i] = newSRSWCell(zero)
		r.report[i] = make([]*srswCell[T], readers)
		for j := range r.report[i] {
			r.report[i][j] = newSRSWCell(zero)
		}
	}
	return r
}

// Write installs v (single writer).
func (r *MRSWAtomicG[T]) Write(v T) {
	r.ts++
	cur := stamped[T]{Val: v, TS: r.ts}
	for _, c := range r.wv {
		c.store(cur)
	}
}

// Read returns the freshest value visible to the given reader.
func (r *MRSWAtomicG[T]) Read(reader int) T {
	best := r.wv[reader].load()
	for j := 0; j < r.readers; j++ {
		if j == reader {
			continue
		}
		if got := r.report[j][reader].load(); got.TS > best.TS {
			best = got
		}
	}
	for j := 0; j < r.readers; j++ {
		if j == reader {
			continue
		}
		r.report[reader][j].store(best)
	}
	return best.Val
}

// BaseCells reports how many SRSW cells the construction uses.
func (r *MRSWAtomicG[T]) BaseCells() int { return r.readers + r.readers*r.readers }

// MRSWAtomic is the int-valued register of the chain: a single-writer,
// multi-reader, multi-value atomic register.
type MRSWAtomic struct {
	g *MRSWAtomicG[int]
}

var _ MultiReaderReg = (*MRSWAtomic)(nil)

// NewMRSWAtomic builds the register for the given number of readers,
// initialized to init.
func NewMRSWAtomic(readers, init int) *MRSWAtomic {
	return &MRSWAtomic{g: NewMRSWAtomicG[int](readers, init)}
}

// Write implements MultiReaderReg (single writer).
func (r *MRSWAtomic) Write(v int) { r.g.Write(v) }

// Read implements MultiReaderReg.
func (r *MRSWAtomic) Read(reader int) int { return r.g.Read(reader) }

// BaseCells reports how many SRSW cells the construction uses.
func (r *MRSWAtomic) BaseCells() int { return r.g.BaseCells() }
