package registers

import (
	"fmt"

	"waitfree/internal/program"
	"waitfree/internal/types"
)

// This file expresses the Lamport layers of the Section 4.1 chain as
// machines (package program), so the execution-tree explorer can check
// them EXHAUSTIVELY on small instances. The Lamport constructions promise
// regularity, not atomicity, so their leaf histories are checked against
// the single-writer regularity condition rather than linearizability.

// LamportMRBitMachines builds the multi-reader regular bit from one SRSW
// bit per reader, as an implementation of the (regular) bit type for
// readers+1 processes: process 0..readers-1 read, process readers writes.
//
// Object layout: copy[r] is reader r's SRSW bit (reader r on port 1, the
// writer on port 2).
func LamportMRBitMachines(readers, init int) *program.Implementation {
	procs := readers + 1
	writerProc := readers
	objects := make([]program.ObjectDecl, readers)
	for r := 0; r < readers; r++ {
		objects[r] = program.ObjectDecl{
			Name:   fmt.Sprintf("copy%d", r),
			Spec:   types.SRSWBit(),
			Init:   init,
			PortOf: program.PairPorts(procs, r, writerProc),
		}
	}

	// Reader r's machine: read own copy.
	readerMachine := func(r int) program.Machine {
		type st struct{ PC int }
		return program.FuncMachine{
			StartFn: func(_ types.Invocation, _ any) any { return st{} },
			NextFn: func(state any, resp types.Response) (program.Action, any) {
				s := state.(st)
				if s.PC == 0 {
					return program.InvokeAction(r, types.Read), st{PC: 1}
				}
				return program.ReturnAction(resp, nil), s
			},
		}
	}
	// Writer machine: write every copy in turn.
	type wst struct {
		PC int
		V  int
	}
	writerMachine := program.FuncMachine{
		StartFn: func(inv types.Invocation, _ any) any { return wst{V: inv.A & 1} },
		NextFn: func(state any, _ types.Response) (program.Action, any) {
			s := state.(wst)
			if s.PC < readers {
				return program.InvokeAction(s.PC, types.Write(s.V)), wst{PC: s.PC + 1, V: s.V}
			}
			return program.ReturnAction(types.OK, nil), s
		},
	}

	machines := make([]program.Machine, procs)
	for r := 0; r < readers; r++ {
		machines[r] = readerMachine(r)
	}
	machines[writerProc] = writerMachine
	return &program.Implementation{
		Name:     fmt.Sprintf("lamport-mrbit(readers=%d)", readers),
		Target:   types.Bit(procs),
		Procs:    procs,
		Objects:  objects,
		Machines: machines,
	}
}

// LamportMultiRegMachines builds the k-valued regular register from
// multi-reader bits (here: one SRSW bit per reader per value level, i.e.
// the two Lamport layers composed) for one reader and one writer — the
// smallest instance that exercises the unary upscan against concurrent
// downward clears.
//
// Object layout: bit[j] for value level j (reader on port 1, writer on
// port 2). Write(v): set bit[v], clear bit[v-1..0]. Read: upscan for the
// first set bit.
func LamportMultiRegMachines(k, init int) *program.Implementation {
	objects := make([]program.ObjectDecl, k)
	for j := 0; j < k; j++ {
		b := 0
		if j == init {
			b = 1
		}
		objects[j] = program.ObjectDecl{
			Name:   fmt.Sprintf("level%d", j),
			Spec:   types.SRSWBit(),
			Init:   b,
			PortOf: program.PairPorts(2, 0, 1),
		}
	}
	type rst struct {
		PC int
		J  int
	}
	reader := program.FuncMachine{
		StartFn: func(_ types.Invocation, _ any) any { return rst{} },
		NextFn: func(state any, resp types.Response) (program.Action, any) {
			s := state.(rst)
			if s.PC == 1 {
				if resp.Val == 1 || s.J == k-1 {
					return program.ReturnAction(types.ValOf(s.J), nil), s
				}
				s.J++
			}
			return program.InvokeAction(s.J, types.Read), rst{PC: 1, J: s.J}
		},
	}
	type wst struct {
		PC  int
		V   int
		Clr int
	}
	writer := program.FuncMachine{
		StartFn: func(inv types.Invocation, _ any) any {
			return wst{V: inv.A, Clr: inv.A - 1}
		},
		NextFn: func(state any, _ types.Response) (program.Action, any) {
			s := state.(wst)
			if s.PC == 0 {
				return program.InvokeAction(s.V, types.Write(1)), wst{PC: 1, V: s.V, Clr: s.Clr}
			}
			if s.Clr >= 0 {
				return program.InvokeAction(s.Clr, types.Write(0)), wst{PC: 1, V: s.V, Clr: s.Clr - 1}
			}
			return program.ReturnAction(types.OK, nil), s
		},
	}
	return &program.Implementation{
		Name:     fmt.Sprintf("lamport-multireg(k=%d)", k),
		Target:   types.SRSWRegister(k),
		Procs:    2,
		Objects:  objects,
		Machines: []program.Machine{reader, writer},
	}
}
