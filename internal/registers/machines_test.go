package registers

import (
	"fmt"
	"testing"

	"waitfree/internal/explore"
	"waitfree/internal/hist"
	"waitfree/internal/program"
	"waitfree/internal/types"
)

// regularLeaf checks the single-writer regularity condition on a leaf
// history: every read returns the latest preceding write's value, an
// overlapping write's value, or init.
func regularLeaf(init int) func(*explore.Leaf) error {
	return func(l *explore.Leaf) error {
		var writes, reads hist.History
		for _, op := range l.History {
			if op.Inv.Op == types.OpWrite {
				writes = append(writes, op)
			} else {
				reads = append(reads, op)
			}
		}
		for _, rd := range reads {
			allowed := map[int]bool{}
			latestEnd := -1
			latestVal := init
			for _, w := range writes {
				if w.End != hist.Pending && w.End < rd.Begin {
					if w.End > latestEnd {
						latestEnd = w.End
						latestVal = w.Inv.A
					}
				} else if w.Begin < rd.End {
					allowed[w.Inv.A] = true
				}
			}
			allowed[latestVal] = true
			if !allowed[rd.Resp.Val] {
				return fmt.Errorf("read %v not regular (allowed %v)\n%v", rd, allowed, l.History)
			}
		}
		return nil
	}
}

// exploreRegular runs all interleavings and applies the regularity check
// at every leaf.
func exploreRegular(t *testing.T, im *program.Implementation, scripts [][]types.Invocation, init int) *explore.Result {
	t.Helper()
	res, err := explore.Run(im, scripts, explore.Options{
		RecordHistory: true,
		OnLeaf:        regularLeaf(init),
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatal(res.Violation)
	}
	return res
}

// TestLamportMRBitMachinesRegularExhaustive checks the multi-reader
// regular bit under ALL interleavings of two writes racing two readers.
func TestLamportMRBitMachinesRegularExhaustive(t *testing.T) {
	im := LamportMRBitMachines(2, 0)
	scripts := [][]types.Invocation{
		{types.Read, types.Read},         // reader 0
		{types.Read},                     // reader 1
		{types.Write(1), types.Write(0)}, // writer
	}
	res := exploreRegular(t, im, scripts, 0)
	if res.Leaves == 0 {
		t.Fatal("no executions explored")
	}
}

// TestLamportMRBitMachinesNotAtomic exhibits the known gap: the
// construction is regular but NOT atomic — two readers can see a write in
// opposite orders (reader 1's copy is written after reader 0's). The
// explorer finds a leaf whose history fails linearizability, confirming
// why the chain needs the atomic layers above this one.
func TestLamportMRBitMachinesNotAtomic(t *testing.T) {
	im := LamportMRBitMachines(2, 0)
	// Reader 1 reads twice so that its second read can begin strictly
	// after reader 0's read returned (single-operation scripts all begin
	// at the root and are mutually concurrent).
	scripts := [][]types.Invocation{
		{types.Read},
		{types.Read, types.Read},
		{types.Write(1)},
	}
	sawNonAtomic := false
	res, err := explore.Run(im, scripts, explore.Options{
		RecordHistory: true,
		OnLeaf: func(l *explore.Leaf) error {
			// Reader 0 sees 1 while reader 1's LAST read — beginning
			// strictly after reader 0 finished — sees 0: a cross-reader
			// new/old inversion.
			var r0, r1 *hist.Op
			for i := range l.History {
				op := l.History[i]
				if op.Inv.Op == types.OpRead {
					if op.Proc == 0 {
						r0 = &l.History[i]
					} else if op.Proc == 1 {
						r1 = &l.History[i] // keeps the last one
					}
				}
			}
			if r0 != nil && r1 != nil && r0.Precedes(*r1) &&
				r0.Resp.Val == 1 && r1.Resp.Val == 0 {
				sawNonAtomic = true
			}
			return nil
		},
	})
	if err != nil {
		t.Fatal(err)
	}
	if res.Violation != nil {
		t.Fatal(res.Violation)
	}
	if !sawNonAtomic {
		t.Fatal("no cross-reader inversion found; the construction looks atomic (unexpected)")
	}
}

// TestLamportMultiRegMachinesRegularExhaustive checks the unary k-valued
// register under all interleavings of reads racing value changes.
func TestLamportMultiRegMachinesRegularExhaustive(t *testing.T) {
	for _, tc := range []struct {
		k, init int
		writes  []int
		reads   int
	}{
		{3, 0, []int{2, 1}, 2},
		{4, 2, []int{0}, 2},
	} {
		im := LamportMultiRegMachines(tc.k, tc.init)
		readScript := make([]types.Invocation, tc.reads)
		for i := range readScript {
			readScript[i] = types.Read
		}
		writeScript := make([]types.Invocation, len(tc.writes))
		for i, v := range tc.writes {
			writeScript[i] = types.Write(v)
		}
		exploreRegular(t, im, [][]types.Invocation{readScript, writeScript}, tc.init)
	}
}

// TestLamportMachinesSequential pins read-your-writes through Solo.
func TestLamportMachinesSequential(t *testing.T) {
	im := LamportMultiRegMachines(4, 1)
	states := im.InitialStates()
	res, err := program.Solo(im, states, 0, types.Read, nil, 100)
	if err != nil || res.Resp != types.ValOf(1) {
		t.Fatalf("initial read: %v, %v", res.Resp, err)
	}
	for _, v := range []int{3, 0, 2} {
		if _, err := program.Solo(im, states, 1, types.Write(v), nil, 100); err != nil {
			t.Fatal(err)
		}
		res, err := program.Solo(im, states, 0, types.Read, nil, 100)
		if err != nil || res.Resp != types.ValOf(v) {
			t.Fatalf("read after write(%d): %v, %v", v, res.Resp, err)
		}
	}
}
