package registers

import (
	"math/rand"
	"sync"
	"sync/atomic"
	"testing"

	"waitfree/internal/hist"
	"waitfree/internal/linearize"
	"waitfree/internal/types"
)

// harness collects a concurrent history of register operations with a
// global logical clock, for linearizability and regularity checking.
type harness struct {
	clock atomic.Int64
	mu    sync.Mutex
	ops   hist.History
}

func (h *harness) tick() int { return int(h.clock.Add(1)) }

func (h *harness) record(op hist.Op) {
	h.mu.Lock()
	h.ops = append(h.ops, op)
	h.mu.Unlock()
}

func (h *harness) read(proc int, f func() int) {
	begin := h.tick()
	v := f()
	h.record(hist.Op{Proc: proc, Port: 1, Inv: types.Read, Resp: types.ValOf(v), Begin: begin, End: h.tick()})
}

func (h *harness) write(proc, v int, f func()) {
	begin := h.tick()
	f()
	h.record(hist.Op{Proc: proc, Port: 1, Inv: types.Write(v), Resp: types.OK, Begin: begin, End: h.tick()})
}

// checkAtomic verifies the collected history is linearizable as a k-valued
// register initialized to init.
func (h *harness) checkAtomic(t *testing.T, k, init int) {
	t.Helper()
	spec := types.Register(1, k)
	if _, err := linearize.Check(spec, init, h.ops); err != nil {
		t.Fatalf("history not atomic: %v\n%v", err, h.ops)
	}
}

// checkRegular verifies the single-writer regularity condition: every read
// returns the value of the latest write that completed before it began, or
// of some overlapping write, or the initial value if no write precedes it.
func (h *harness) checkRegular(t *testing.T, init int) {
	t.Helper()
	var writes, reads hist.History
	for _, op := range h.ops {
		if op.Inv.Op == types.OpWrite {
			writes = append(writes, op)
		} else {
			reads = append(reads, op)
		}
	}
	for _, r := range reads {
		allowed := map[int]bool{}
		latest := hist.Op{Begin: -1, End: -1}
		found := false
		for _, w := range writes {
			if w.End < r.Begin {
				if !found || w.End > latest.End {
					latest = w
					found = true
				}
			} else if w.Begin < r.End {
				allowed[w.Inv.A] = true // overlapping write
			}
		}
		if found {
			allowed[latest.Inv.A] = true
		} else {
			allowed[init] = true
		}
		if !allowed[r.Resp.Val] {
			t.Fatalf("read %v not regular; allowed %v\nhistory: %v", r, allowed, h.ops)
		}
	}
}

// ---- base cells ----

func TestAtomicBitSequential(t *testing.T) {
	b := NewAtomicBit(1)
	if b.Read() != 1 {
		t.Error("initial value lost")
	}
	b.Write(0)
	if b.Read() != 0 {
		t.Error("write lost")
	}
	b.Write(3) // masked to bit
	if b.Read() != 1 {
		t.Error("mask failed")
	}
}

func TestRegularBitOverlapAdversary(t *testing.T) {
	calls := 0
	b := NewRegularBit(0, func() bool {
		calls++
		return calls%2 == 1 // old, new, old, ...
	})
	b.BeginWrite(1)
	if got := b.Read(); got != 0 {
		t.Errorf("first overlapping read = %d, want old 0", got)
	}
	if got := b.Read(); got != 1 {
		t.Errorf("second overlapping read = %d, want new 1", got)
	}
	b.EndWrite()
	if got := b.Read(); got != 1 {
		t.Errorf("read after EndWrite = %d, want 1", got)
	}
}

// TestRegularBitIsNotAtomic constructs the new/old inversion explicitly
// and confirms the linearizability checker rejects it while the
// regularity checker accepts it.
func TestRegularBitIsNotAtomic(t *testing.T) {
	choices := []bool{false, true} // first overlapping read: new; second: old
	i := 0
	b := NewRegularBit(0, func() bool { v := choices[i%2]; i++; return v })
	var h harness
	wBegin := h.tick()
	b.BeginWrite(1)
	h.read(1, b.Read) // returns new (1)
	h.read(1, b.Read) // returns old (0): inversion
	b.EndWrite()
	h.record(hist.Op{Proc: 0, Port: 1, Inv: types.Write(1), Resp: types.OK, Begin: wBegin, End: h.tick()})

	h.checkRegular(t, 0)
	spec := types.Register(1, 2)
	if _, err := linearize.Check(spec, 0, h.ops); err == nil {
		t.Fatal("new/old inversion accepted as atomic")
	}
}

func TestRegularBitDefaultAlternation(t *testing.T) {
	b := NewRegularBit(0, nil)
	b.BeginWrite(1)
	saw := map[int]bool{}
	for i := 0; i < 4; i++ {
		saw[b.Read()] = true
	}
	b.EndWrite()
	if !saw[0] || !saw[1] {
		t.Errorf("default adversary did not exercise both values: %v", saw)
	}
}

// ---- Lamport layers ----

func TestLamportMRBitSequential(t *testing.T) {
	b := NewLamportMRBit(3, 1, func(init int) Bit { return NewAtomicBit(init) })
	for r := 0; r < 3; r++ {
		if b.Read(r) != 1 {
			t.Errorf("reader %d missed initial value", r)
		}
	}
	b.Write(0)
	for r := 0; r < 3; r++ {
		if b.Read(r) != 0 {
			t.Errorf("reader %d missed write", r)
		}
	}
	if b.BaseBits() != 3 {
		t.Errorf("BaseBits = %d, want 3", b.BaseBits())
	}
}

func TestLamportMRBitRegularUnderStress(t *testing.T) {
	b := NewLamportMRBit(2, 0, func(init int) Bit { return NewRegularBit(init, nil) })
	var h harness
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for i := 0; i < 8; i++ {
			v := i % 2
			h.write(0, v, func() { b.Write(v) })
		}
	}()
	for r := 0; r < 2; r++ {
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 8; i++ {
				h.read(1+r, func() int { return b.Read(r) })
			}
		}(r)
	}
	wg.Wait()
	h.checkRegular(t, 0)
}

func TestLamportMultiRegSequential(t *testing.T) {
	reg := NewLamportMultiReg(5, 3, func(init int) MultiReaderBit {
		return NewLamportMRBit(2, init, func(i int) Bit { return NewAtomicBit(i) })
	})
	if got := reg.Read(0); got != 3 {
		t.Errorf("initial read = %d, want 3", got)
	}
	for _, v := range []int{0, 4, 2, 2, 1} {
		reg.Write(v)
		for r := 0; r < 2; r++ {
			if got := reg.Read(r); got != v {
				t.Errorf("reader %d: read = %d, want %d", r, got, v)
			}
		}
	}
	if reg.Values() != 5 {
		t.Errorf("Values = %d", reg.Values())
	}
}

func TestLamportMultiRegRegularUnderStress(t *testing.T) {
	const k = 4
	reg := NewLamportMultiReg(k, 0, func(init int) MultiReaderBit {
		return NewLamportMRBit(2, init, func(i int) Bit { return NewRegularBit(i, nil) })
	})
	var h harness
	rng := rand.New(rand.NewSource(5))
	vals := make([]int, 10)
	for i := range vals {
		vals[i] = rng.Intn(k)
	}
	var wg sync.WaitGroup
	wg.Add(3)
	go func() {
		defer wg.Done()
		for _, v := range vals {
			v := v
			h.write(0, v, func() { reg.Write(v) })
		}
	}()
	for r := 0; r < 2; r++ {
		go func(r int) {
			defer wg.Done()
			for i := 0; i < 10; i++ {
				h.read(1+r, func() int { return reg.Read(r) })
			}
		}(r)
	}
	wg.Wait()
	h.checkRegular(t, 0)
}

// ---- Vidyasankar ----

func TestVidyasankarSequential(t *testing.T) {
	reg := NewVidyasankar(6, 2, func(init int) Bit { return NewAtomicBit(init) })
	if got := reg.Read(); got != 2 {
		t.Errorf("initial read = %d, want 2", got)
	}
	for _, v := range []int{0, 5, 3, 3, 1, 4} {
		reg.Write(v)
		if got := reg.Read(); got != v {
			t.Errorf("read = %d, want %d", got, v)
		}
	}
	if reg.BaseBits() != 6 {
		t.Errorf("BaseBits = %d", reg.BaseBits())
	}
}

func TestVidyasankarAtomicUnderStress(t *testing.T) {
	const k = 4
	for trial := 0; trial < 20; trial++ {
		reg := NewVidyasankar(k, 0, func(init int) Bit { return NewAtomicBit(init) })
		var h harness
		rng := rand.New(rand.NewSource(int64(trial)))
		vals := make([]int, 12)
		for i := range vals {
			vals[i] = rng.Intn(k)
		}
		var wg sync.WaitGroup
		wg.Add(2)
		go func() {
			defer wg.Done()
			for _, v := range vals {
				v := v
				h.write(0, v, func() { reg.Write(v) })
			}
		}()
		go func() {
			defer wg.Done()
			for i := 0; i < 12; i++ {
				h.read(1, reg.Read)
			}
		}()
		wg.Wait()
		h.checkAtomic(t, k, 0)
	}
}

// ---- MRSW atomic ----

func TestMRSWAtomicSequential(t *testing.T) {
	reg := NewMRSWAtomic(3, 7)
	for r := 0; r < 3; r++ {
		if got := reg.Read(r); got != 7 {
			t.Errorf("reader %d initial = %d", r, got)
		}
	}
	reg.Write(9)
	for r := 0; r < 3; r++ {
		if got := reg.Read(r); got != 9 {
			t.Errorf("reader %d after write = %d", r, got)
		}
	}
	if reg.BaseCells() != 12 {
		t.Errorf("BaseCells = %d, want 12", reg.BaseCells())
	}
}

func TestMRSWAtomicUnderStress(t *testing.T) {
	const readers = 3
	for trial := 0; trial < 20; trial++ {
		reg := NewMRSWAtomic(readers, 0)
		var h harness
		var wg sync.WaitGroup
		wg.Add(1 + readers)
		go func() {
			defer wg.Done()
			for i := 1; i <= 10; i++ {
				v := i
				h.write(0, v, func() { reg.Write(v) })
			}
		}()
		for r := 0; r < readers; r++ {
			go func(r int) {
				defer wg.Done()
				for i := 0; i < 6; i++ {
					h.read(1+r, func() int { return reg.Read(r) })
				}
			}(r)
		}
		wg.Wait()
		h.checkAtomic(t, 11, 0)
	}
}

// ---- MRMW atomic ----

func TestMRMWAtomicSequential(t *testing.T) {
	reg := NewMRMWAtomic(2, 2, 5)
	for r := 0; r < 2; r++ {
		if got := reg.Read(r); got != 5 {
			t.Errorf("reader %d initial = %d", r, got)
		}
	}
	reg.Write(0, 8)
	reg.Write(1, 3)
	for r := 0; r < 2; r++ {
		if got := reg.Read(r); got != 3 {
			t.Errorf("reader %d = %d, want 3 (last write)", r, got)
		}
	}
	if reg.BaseCells() == 0 {
		t.Error("BaseCells = 0")
	}
}

func TestMRMWAtomicUnderStress(t *testing.T) {
	const writers, readers = 2, 2
	for trial := 0; trial < 20; trial++ {
		reg := NewMRMWAtomic(writers, readers, 0)
		var h harness
		var wg sync.WaitGroup
		wg.Add(writers + readers)
		for w := 0; w < writers; w++ {
			go func(w int) {
				defer wg.Done()
				for i := 0; i < 7; i++ {
					v := 1 + w*7 + i // all distinct, nonzero
					h.write(w, v, func() { reg.Write(w, v) })
				}
			}(w)
		}
		for r := 0; r < readers; r++ {
			go func(r int) {
				defer wg.Done()
				for i := 0; i < 7; i++ {
					h.read(writers+r, func() int { return reg.Read(r) })
				}
			}(r)
		}
		wg.Wait()
		h.checkAtomic(t, 15, 0)
	}
}

// TestWTagOrdering covers the lexicographic tag order.
func TestWTagOrdering(t *testing.T) {
	a := wTag{TS: 2, ID: 0}
	b := wTag{TS: 1, ID: 5}
	c := wTag{TS: 2, ID: 1}
	if !a.after(b) || b.after(a) {
		t.Error("timestamp order broken")
	}
	if !c.after(a) || a.after(c) {
		t.Error("id tie-break broken")
	}
}
