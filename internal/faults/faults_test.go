package faults

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestModeRoundTrips(t *testing.T) {
	for _, mode := range []Mode{CrashStop, CrashBeforeFirstStep} {
		blob, err := json.Marshal(mode)
		if err != nil {
			t.Fatal(err)
		}
		var back Mode
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if back != mode {
			t.Errorf("JSON round-trip %v -> %s -> %v", mode, blob, back)
		}
		parsed, err := ParseMode(mode.String())
		if err != nil || parsed != mode {
			t.Errorf("ParseMode(%q) = %v, %v", mode.String(), parsed, err)
		}
	}
	// Bare integers are accepted for hand-written checkpoint files.
	var m Mode
	if err := json.Unmarshal([]byte("1"), &m); err != nil || m != CrashBeforeFirstStep {
		t.Errorf("integer mode: %v, %v", m, err)
	}
	if err := json.Unmarshal([]byte(`"crash-restart"`), &m); err == nil {
		t.Error("unknown mode tag accepted")
	}
}

func TestParseModeAliases(t *testing.T) {
	cases := map[string]Mode{
		"":                        CrashStop,
		"crash-stop":              CrashStop,
		"crash-start":             CrashBeforeFirstStep,
		"crash-before-first-step": CrashBeforeFirstStep,
	}
	for s, want := range cases {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
	}
	if _, err := ParseMode("byzantine"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
}

func TestModelValidate(t *testing.T) {
	if err := (Model{}).Validate(); err != nil {
		t.Errorf("zero model invalid: %v", err)
	}
	if (Model{}).Enabled() {
		t.Error("zero model enabled")
	}
	if !(Model{MaxCrashes: 2}).Enabled() {
		t.Error("nonzero model disabled")
	}
	if err := (Model{MaxCrashes: -1}).Validate(); !errors.Is(err, ErrBadModel) {
		t.Errorf("negative MaxCrashes: %v", err)
	}
	if err := (Model{Mode: Mode(9)}).Validate(); !errors.Is(err, ErrBadModel) {
		t.Errorf("unknown mode: %v", err)
	}
	if s := (Model{MaxCrashes: 1}).String(); !strings.Contains(s, "crash-stop") || !strings.Contains(s, "1") {
		t.Errorf("model renders as %q", s)
	}
	if s := (Model{}).String(); s != "no faults" {
		t.Errorf("zero model renders as %q", s)
	}
}

func TestPanicErrorMessage(t *testing.T) {
	pe := NewPanicError("explore", 2, "depth 7, config key ab12", "boom", []byte("goroutine 1 [running]:\nmain.main()"))
	msg := pe.Error()
	for _, want := range []string{"explore", "process 2", "depth 7", "boom", "goroutine 1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q lacks %q", msg, want)
		}
	}
	var asErr *PanicError
	if !errors.As(error(pe), &asErr) {
		t.Error("PanicError does not satisfy errors.As on itself")
	}
}
