package faults

import (
	"encoding/json"
	"errors"
	"strings"
	"testing"
)

func TestModeRoundTrips(t *testing.T) {
	for _, mode := range []Mode{CrashStop, CrashBeforeFirstStep, CrashRecovery} {
		blob, err := json.Marshal(mode)
		if err != nil {
			t.Fatal(err)
		}
		var back Mode
		if err := json.Unmarshal(blob, &back); err != nil {
			t.Fatalf("%v: %v", mode, err)
		}
		if back != mode {
			t.Errorf("JSON round-trip %v -> %s -> %v", mode, blob, back)
		}
		parsed, err := ParseMode(mode.String())
		if err != nil || parsed != mode {
			t.Errorf("ParseMode(%q) = %v, %v", mode.String(), parsed, err)
		}
	}
	// Bare integers are accepted for hand-written checkpoint files.
	var m Mode
	if err := json.Unmarshal([]byte("1"), &m); err != nil || m != CrashBeforeFirstStep {
		t.Errorf("integer mode: %v, %v", m, err)
	}
	if err := json.Unmarshal([]byte(`"crash-restart"`), &m); err == nil {
		t.Error("unknown mode tag accepted")
	}
}

func TestParseModeAliases(t *testing.T) {
	cases := map[string]Mode{
		"":                        CrashStop,
		"crash-stop":              CrashStop,
		"crash-start":             CrashBeforeFirstStep,
		"crash-before-first-step": CrashBeforeFirstStep,
		"crash-recovery":          CrashRecovery,
	}
	for s, want := range cases {
		got, err := ParseMode(s)
		if err != nil || got != want {
			t.Errorf("ParseMode(%q) = %v, %v; want %v", s, got, err, want)
		}
		// ParseMode and UnmarshalJSON accept the same vocabulary: every
		// spelling (canonical or alias) must round-trip through both, so a
		// tag written into a flag also works in a checkpoint or wire file.
		if s == "" {
			continue // JSON has no empty-tag form
		}
		var m Mode
		if err := json.Unmarshal([]byte(`"`+s+`"`), &m); err != nil || m != want {
			t.Errorf("json %q = %v, %v; want %v", s, m, err, want)
		}
	}
	if _, err := ParseMode("byzantine"); err == nil {
		t.Error("ParseMode accepted an unknown mode")
	}
}

func TestModelValidate(t *testing.T) {
	if err := (Model{}).Validate(); err != nil {
		t.Errorf("zero model invalid: %v", err)
	}
	if (Model{}).Enabled() {
		t.Error("zero model enabled")
	}
	if !(Model{MaxCrashes: 2}).Enabled() {
		t.Error("nonzero model disabled")
	}
	if err := (Model{MaxCrashes: -1}).Validate(); !errors.Is(err, ErrBadModel) {
		t.Errorf("negative MaxCrashes: %v", err)
	}
	if err := (Model{Mode: Mode(9)}).Validate(); !errors.Is(err, ErrBadModel) {
		t.Errorf("unknown mode: %v", err)
	}
	if s := (Model{MaxCrashes: 1}).String(); !strings.Contains(s, "crash-stop") || !strings.Contains(s, "1") {
		t.Errorf("model renders as %q", s)
	}
	if s := (Model{}).String(); s != "no faults" {
		t.Errorf("zero model renders as %q", s)
	}
}

func TestModelValidateRecoveries(t *testing.T) {
	ok := Model{MaxCrashes: 1, Mode: CrashRecovery, MaxRecoveries: 2}
	if err := ok.Validate(); err != nil {
		t.Errorf("crash-recovery model invalid: %v", err)
	}
	// MaxRecoveries=0 under crash-recovery is legal (and is exactly
	// crash-stop exploration).
	if err := (Model{MaxCrashes: 1, Mode: CrashRecovery}).Validate(); err != nil {
		t.Errorf("zero-recovery crash-recovery model invalid: %v", err)
	}
	if err := (Model{MaxCrashes: 1, MaxRecoveries: -1, Mode: CrashRecovery}).Validate(); !errors.Is(err, ErrBadModel) {
		t.Errorf("negative MaxRecoveries: %v", err)
	}
	// A recovery budget outside crash-recovery mode is a contradiction,
	// not a silent no-op.
	for _, mode := range []Mode{CrashStop, CrashBeforeFirstStep} {
		if err := (Model{MaxCrashes: 1, Mode: mode, MaxRecoveries: 1}).Validate(); !errors.Is(err, ErrBadModel) {
			t.Errorf("mode %v with MaxRecoveries: %v", mode, err)
		}
	}
	if s := ok.String(); !strings.Contains(s, "crash-recovery") || !strings.Contains(s, "2 recoveries") {
		t.Errorf("model renders as %q", s)
	}
	// The model survives its JSON round-trip, and MaxRecoveries=0 adds no
	// field (old checkpoint files parse, new zero-budget files look old).
	blob, err := json.Marshal(ok)
	if err != nil {
		t.Fatal(err)
	}
	var back Model
	if err := json.Unmarshal(blob, &back); err != nil || back != ok {
		t.Errorf("JSON round-trip %+v -> %s -> %+v (%v)", ok, blob, back, err)
	}
	blob, err = json.Marshal(Model{MaxCrashes: 1})
	if err != nil {
		t.Fatal(err)
	}
	if strings.Contains(string(blob), "max_recoveries") {
		t.Errorf("zero MaxRecoveries serialized: %s", blob)
	}
}

func TestPanicErrorMessage(t *testing.T) {
	pe := NewPanicError("explore", 2, "depth 7, config key ab12", "boom", []byte("goroutine 1 [running]:\nmain.main()"))
	msg := pe.Error()
	for _, want := range []string{"explore", "process 2", "depth 7", "boom", "goroutine 1"} {
		if !strings.Contains(msg, want) {
			t.Errorf("message %q lacks %q", msg, want)
		}
	}
	var asErr *PanicError
	if !errors.As(error(pe), &asErr) {
		t.Error("PanicError does not satisfy errors.As on itself")
	}
}
