// Package faults is the fault-injection vocabulary shared by the three
// execution engines (packages explore, runtime, and sched).
//
// Wait-freedom is the paper's central liveness property: every process
// decides in a bounded number of its own steps no matter how many of the
// others crash (Section 2.2). The sampling runtime has always been able to
// crash processes mid-run (sched.Crash); this package makes crash faults a
// first-class, exhaustively explorable dimension of the execution-tree
// explorer as well. A Model describes which crash schedules the explorer
// enumerates; a PanicError is the structured form a panicking type spec or
// machine takes when an engine's panic recovery converts it into an error
// instead of letting it kill the process.
package faults

import (
	"errors"
	"fmt"
)

// Mode selects which crash placements a Model enumerates.
type Mode int

const (
	// CrashStop is the paper's failure model: a process may stop
	// permanently before any of its object accesses, including after its
	// last one. The explorer branches on "process p crashes here" at every
	// configuration where p is still live.
	CrashStop Mode = iota
	// CrashBeforeFirstStep restricts crashes to processes that have not yet
	// performed any object access: only initial crashes are enumerated.
	// This is the cheap model for checking that survivors cope with
	// processes that never show up at all.
	CrashBeforeFirstStep
	// CrashRecovery is the recoverable model (Ovens 2024): crashes may be
	// placed anywhere, exactly as in CrashStop, but a crashed process may
	// later re-enter from its recovery section — private volatile state
	// reset to initial, shared register and object state persisting.
	// Model.MaxRecoveries bounds the total recoveries along any execution
	// so the state space stays finite; with MaxRecoveries=0 the mode
	// degenerates to CrashStop exactly.
	CrashRecovery
)

// String renders the mode.
func (m Mode) String() string {
	switch m {
	case CrashStop:
		return "crash-stop"
	case CrashBeforeFirstStep:
		return "crash-before-first-step"
	case CrashRecovery:
		return "crash-recovery"
	}
	return fmt.Sprintf("mode(%d)", int(m))
}

// MarshalJSON renders the mode as a stable string tag.
func (m Mode) MarshalJSON() ([]byte, error) {
	return []byte(`"` + m.String() + `"`), nil
}

// UnmarshalJSON accepts the tags produced by MarshalJSON, the aliases
// ParseMode accepts, and bare integers (for hand-written checkpoints).
// The canonical tag for each mode is whatever String renders; the
// "crash-start" alias for CrashBeforeFirstStep is accepted everywhere a
// mode is decoded, but never produced.
func (m *Mode) UnmarshalJSON(b []byte) error {
	switch string(b) {
	case `"crash-stop"`, "0":
		*m = CrashStop
	case `"crash-before-first-step"`, `"crash-start"`, "1":
		*m = CrashBeforeFirstStep
	case `"crash-recovery"`, "2":
		*m = CrashRecovery
	default:
		return fmt.Errorf("faults: unknown mode %s", b)
	}
	return nil
}

// ParseMode parses the tags produced by Mode.String plus the
// "crash-start" alias (used by the CLI -fault-mode flag and the daemon
// wire schema). It accepts exactly the same vocabulary as UnmarshalJSON's
// string tags.
func ParseMode(s string) (Mode, error) {
	switch s {
	case "", "crash-stop":
		return CrashStop, nil
	case "crash-start", "crash-before-first-step":
		return CrashBeforeFirstStep, nil
	case "crash-recovery":
		return CrashRecovery, nil
	}
	return 0, fmt.Errorf("faults: unknown mode %q (want crash-stop, crash-start, or crash-recovery)", s)
}

// Model describes the crash faults an exhaustive exploration injects. The
// zero Model disables fault injection entirely.
type Model struct {
	// MaxCrashes bounds the number of processes that may crash along any
	// single execution. 0 disables fault exploration.
	MaxCrashes int `json:"max_crashes"`
	// Mode selects where crashes may be placed.
	Mode Mode `json:"mode"`
	// MaxRecoveries bounds the total number of recover events along any
	// single execution under CrashRecovery. 0 means crashed processes never
	// come back, which makes CrashRecovery behave exactly like CrashStop.
	// A recovery does not refund the crash budget: a process that crashes,
	// recovers, and crashes again has consumed two of MaxCrashes.
	MaxRecoveries int `json:"max_recoveries,omitempty"`
}

// Enabled reports whether the model injects any faults at all.
func (m Model) Enabled() bool { return m.MaxCrashes > 0 }

// ErrBadModel is the sentinel wrapped by Model validation failures.
var ErrBadModel = errors.New("faults: invalid fault model")

// Validate rejects malformed models.
func (m Model) Validate() error {
	if m.MaxCrashes < 0 {
		return fmt.Errorf("%w: negative MaxCrashes %d", ErrBadModel, m.MaxCrashes)
	}
	if m.Mode != CrashStop && m.Mode != CrashBeforeFirstStep && m.Mode != CrashRecovery {
		return fmt.Errorf("%w: unknown mode %d", ErrBadModel, int(m.Mode))
	}
	if m.MaxRecoveries < 0 {
		return fmt.Errorf("%w: negative MaxRecoveries %d", ErrBadModel, m.MaxRecoveries)
	}
	if m.MaxRecoveries > 0 && m.Mode != CrashRecovery {
		return fmt.Errorf("%w: MaxRecoveries %d requires mode crash-recovery, not %v",
			ErrBadModel, m.MaxRecoveries, m.Mode)
	}
	return nil
}

// String renders the model for reports and logs.
func (m Model) String() string {
	if !m.Enabled() {
		return "no faults"
	}
	s := fmt.Sprintf("%v, <=%d crashes", m.Mode, m.MaxCrashes)
	if m.MaxRecoveries > 0 {
		s += fmt.Sprintf(", <=%d recoveries", m.MaxRecoveries)
	}
	return s
}

// PanicError is a panic from user-supplied code (a type spec's transition
// function or a process machine) converted into a structured error by an
// engine's recovery layer. The engines install recovery so that one
// panicking spec cannot kill the whole process: the explorer surfaces the
// panic as the run's error, and the concurrent runtime surfaces it as the
// panicking process's error while the other process goroutines finish
// normally.
type PanicError struct {
	// Engine names the recovery site ("explore" or "runtime").
	Engine string `json:"engine"`
	// Proc is the process whose step panicked, or -1 when unknown.
	Proc int `json:"proc"`
	// Context describes where the engine was when the panic fired (for the
	// explorer: the offending configuration's key and depth).
	Context string `json:"context,omitempty"`
	// Value is the recovered panic value.
	Value any `json:"value"`
	// Stack is the panicking goroutine's stack trace.
	Stack []byte `json:"stack,omitempty"`
}

// NewPanicError builds a PanicError from a recovered value.
func NewPanicError(engine string, proc int, context string, value any, stack []byte) *PanicError {
	return &PanicError{Engine: engine, Proc: proc, Context: context, Value: value, Stack: stack}
}

// Error implements error. The stack is included: a recovered panic without
// its stack is nearly undebuggable.
func (e *PanicError) Error() string {
	ctx := ""
	if e.Context != "" {
		ctx = " at " + e.Context
	}
	return fmt.Sprintf("faults: panic in %s engine (process %d)%s: %v\n%s",
		e.Engine, e.Proc, ctx, e.Value, e.Stack)
}
