package sched

import (
	"sync/atomic"
	"testing"
	"time"
)

// TestStutterVictimWaitsForCredit pins the pause semantics: the victim's
// step may only be granted after the other processes performed pause
// further steps. The other-step counter is bumped before each grant, so
// whenever the victim wakes the counter must already cover its quota.
func TestStutterVictimWaitsForCredit(t *testing.T) {
	const pause = 3
	s := NewStutter(2, 0, pause)
	var others atomic.Int64
	woke := make(chan int64, 1)
	go func() {
		if !s.Next(0) {
			t.Error("victim reported crashed")
		}
		woke <- others.Load()
	}()
	for i := 0; i < pause; i++ {
		others.Add(1)
		if !s.Next(1) {
			t.Fatal("non-victim blocked or crashed")
		}
	}
	select {
	case seen := <-woke:
		if seen < pause {
			t.Errorf("victim woke after %d other steps, want >= %d", seen, pause)
		}
	case <-time.After(2 * time.Second):
		t.Fatal("victim never granted despite full credit")
	}
}

// TestStutterVictimUnblocksWhenOthersDone pins the liveness half of the
// Done contract: a victim whose quota can never be met (all other
// processes finished) must still be granted — wait-freedom is about slow
// peers, not a deadlocked scheduler.
func TestStutterVictimUnblocksWhenOthersDone(t *testing.T) {
	s := NewStutter(3, 2, 1_000_000)
	woke := make(chan bool, 1)
	go func() { woke <- s.Next(2) }()
	if !s.Next(0) {
		t.Fatal("non-victim blocked")
	}
	s.Done(0)
	// Process 1 finishes without ever calling Next; Done alone must count.
	s.Done(1)
	select {
	case alive := <-woke:
		if !alive {
			t.Error("victim reported crashed")
		}
	case <-time.After(2 * time.Second):
		t.Fatal("victim still blocked after all other processes were done")
	}
	// The victim's later steps keep being granted.
	done := make(chan struct{})
	go func() {
		s.Next(2)
		s.Done(2)
		close(done)
	}()
	select {
	case <-done:
	case <-time.After(2 * time.Second):
		t.Fatal("victim blocked again after peers finished")
	}
}

// TestStutterCreditResets checks that each victim step consumes the whole
// credit: two victim steps need two quotas.
func TestStutterCreditResets(t *testing.T) {
	s := NewStutter(2, 0, 2)
	granted := make(chan struct{})
	go func() {
		s.Next(0)
		granted <- struct{}{}
		s.Next(0)
		granted <- struct{}{}
	}()
	for i := 0; i < 2; i++ {
		s.Next(1)
	}
	select {
	case <-granted:
	case <-time.After(2 * time.Second):
		t.Fatal("first victim step never granted")
	}
	for i := 0; i < 2; i++ {
		s.Next(1)
	}
	select {
	case <-granted:
	case <-time.After(2 * time.Second):
		t.Fatal("second victim step never granted: credit did not reset")
	}
}

// TestStutterOutOfRangeVictim degrades to free running: with no process
// matching the victim index, nothing ever blocks.
func TestStutterOutOfRangeVictim(t *testing.T) {
	s := NewStutter(2, -1, 5)
	for p := 0; p < 2; p++ {
		for i := 0; i < 10; i++ {
			if !s.Next(p) {
				t.Fatalf("process %d blocked or crashed", p)
			}
		}
		s.Done(p)
	}
}
