package sched

import (
	"sync"
	"testing"
)

func TestFree(t *testing.T) {
	var s Free
	if !s.Next(0) {
		t.Error("Free.Next returned false")
	}
	s.Done(0) // must not panic
}

func TestCrashLimits(t *testing.T) {
	c := NewCrash(map[int]int{0: 2})
	for i := 0; i < 2; i++ {
		if !c.Next(0) {
			t.Fatalf("process 0 crashed after %d steps, limit is 2", i)
		}
	}
	if c.Next(0) {
		t.Error("process 0 survived beyond its crash limit")
	}
	// An unlisted process never crashes.
	for i := 0; i < 100; i++ {
		if !c.Next(1) {
			t.Fatal("unlisted process crashed")
		}
	}
	c.Done(0)
	c.Done(1)
}

func TestCrashZeroStepsImmediate(t *testing.T) {
	c := NewCrash(map[int]int{3: 0})
	if c.Next(3) {
		t.Error("process with 0-step budget took a step")
	}
}

func TestRecoverBudget(t *testing.T) {
	r := NewRecover(map[int]int{0: 2}, map[int]int{0: 2})
	attempt := func(want bool) {
		t.Helper()
		for i := 0; i < 2; i++ {
			if !r.Next(0) {
				t.Fatalf("process 0 crashed after %d steps, limit is 2", i)
			}
		}
		if r.Next(0) {
			t.Fatal("process 0 survived beyond its crash limit")
		}
		if got := r.Recover(0); got != want {
			t.Fatalf("Recover(0) = %v, want %v", got, want)
		}
	}
	// Two recoveries, each resetting the step counter; the third crash is
	// permanent.
	attempt(true)
	attempt(true)
	attempt(false)
	// A process whose Recover returned false never comes back.
	if r.Recover(0) {
		t.Error("Recover(0) granted after the budget ran out")
	}
	// Unlisted processes never crash, so Recover is never consulted; a
	// bare call must deny (zero budget) without panicking.
	for i := 0; i < 50; i++ {
		if !r.Next(1) {
			t.Fatal("unlisted process crashed")
		}
	}
	if r.Recover(1) {
		t.Error("unlisted process granted a recovery")
	}
	r.Done(0)
	r.Done(1)
}

func TestTokenGrantsSerially(t *testing.T) {
	const procs = 4
	const stepsEach = 25
	tok := NewToken(procs, 11, nil)
	defer tok.Stop()

	var mu sync.Mutex
	order := make([]int, 0, procs*stepsEach)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer tok.Done(p)
			for i := 0; i < stepsEach; i++ {
				if !tok.Next(p) {
					t.Errorf("process %d crashed unexpectedly", p)
					return
				}
				mu.Lock()
				order = append(order, p)
				mu.Unlock()
			}
		}(p)
	}
	wg.Wait()
	if len(order) != procs*stepsEach {
		t.Fatalf("total granted steps = %d, want %d", len(order), procs*stepsEach)
	}
	counts := make(map[int]int)
	for _, p := range order {
		counts[p]++
	}
	for p := 0; p < procs; p++ {
		if counts[p] != stepsEach {
			t.Errorf("process %d took %d steps, want %d", p, counts[p], stepsEach)
		}
	}
}

func TestTokenCrash(t *testing.T) {
	tok := NewToken(2, 3, map[int]int{0: 1})
	defer tok.Stop()
	var wg sync.WaitGroup
	taken := make([]int, 2)
	for p := 0; p < 2; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer tok.Done(p)
			for i := 0; i < 5; i++ {
				if !tok.Next(p) {
					return
				}
				taken[p]++
			}
		}(p)
	}
	wg.Wait()
	if taken[0] != 1 {
		t.Errorf("crashed process took %d steps, want 1", taken[0])
	}
	if taken[1] != 5 {
		t.Errorf("healthy process took %d steps, want 5", taken[1])
	}
}

func TestTokenManyProcsWithCrashes(t *testing.T) {
	// Heavier dispatcher workload aimed at the race detector: eight
	// processes parking repeatedly, two of them crash-injected.
	const procs = 8
	const stepsEach = 30
	tok := NewToken(procs, 42, map[int]int{2: 3, 5: 0})
	defer tok.Stop()
	taken := make([]int, procs)
	var wg sync.WaitGroup
	for p := 0; p < procs; p++ {
		wg.Add(1)
		go func(p int) {
			defer wg.Done()
			defer tok.Done(p)
			for i := 0; i < stepsEach; i++ {
				if !tok.Next(p) {
					return
				}
				taken[p]++
			}
		}(p)
	}
	wg.Wait()
	if taken[2] != 3 || taken[5] != 0 {
		t.Errorf("crashed processes took %d and %d steps, want 3 and 0", taken[2], taken[5])
	}
	for _, p := range []int{0, 1, 3, 4, 6, 7} {
		if taken[p] != stepsEach {
			t.Errorf("process %d took %d steps, want %d", p, taken[p], stepsEach)
		}
	}
}

func TestTokenStopReleasesWaiters(t *testing.T) {
	tok := NewToken(2, 1, nil)
	done := make(chan bool, 1)
	go func() {
		// Only one of two processes parks; the dispatcher will not grant
		// until the other parks or Stop is called.
		done <- tok.Next(0)
	}()
	tok.Stop()
	if got := <-done; got {
		t.Error("stopped scheduler granted a step")
	}
}
