// Package sched provides schedulers for the concurrent runtime (package
// runtime). A scheduler gates every low-level object access of every
// process, which makes interleavings reproducible (seeded schedules) and
// lets tests inject stopping failures (the paper's motivation for
// wait-freedom: implementations must tolerate any number of crashes).
package sched

import (
	"math/rand"
	"sort"
	"sync"
)

// Scheduler gates process steps.
//
// Next blocks until process p may perform its next object access and
// reports whether p is still alive; false means p has crashed and must
// stop silently. Done signals that p will not call Next again. Both
// methods are called from the process goroutines and must be safe for
// concurrent use.
//
// Done contract: every process calls Done exactly once, whether it
// finished its script, observed its crash (Next returned false), or
// failed with an error — the runtime guarantees the call even when the
// process's protocol code panics. Schedulers may therefore rely on a
// complete set of Done calls for their own termination (Token's
// dispatcher and Stutter's victim wake-up both do); conversely a
// scheduler must tolerate Done from a process that never called Next.
type Scheduler interface {
	Next(p int) bool
	Done(p int)
}

// RecoverScheduler is the optional crash-recovery extension of Scheduler.
// After Next(p) returns false (p crashed), the runtime asks Recover(p)
// whether the crashed process may re-enter from its recovery section: true
// restarts p's interrupted operation from its start with fresh volatile
// state (shared objects persist), false makes the crash permanent, exactly
// as for a plain Scheduler. Recover is called from p's own goroutine and
// must be safe for concurrent use; a process whose Recover returned false
// never asks again.
type RecoverScheduler interface {
	Scheduler
	Recover(p int) bool
}

// Free is the trivial scheduler: every step proceeds immediately and the
// interleaving is whatever the Go runtime produces.
type Free struct{}

var _ Scheduler = Free{}

// Next implements Scheduler.
func (Free) Next(int) bool { return true }

// Done implements Scheduler.
func (Free) Done(int) {}

// Crash stops chosen processes after a fixed number of steps, leaving the
// others free-running. It is used to test that implementations tolerate
// stopping failures.
type Crash struct {
	mu    sync.Mutex
	after map[int]int
	taken map[int]int
}

var _ Scheduler = (*Crash)(nil)

// NewCrash returns a scheduler that crashes process p after after[p] steps
// (processes absent from the map never crash). A value of 0 crashes the
// process before its first access.
func NewCrash(after map[int]int) *Crash {
	limits := make(map[int]int, len(after))
	for p, n := range after {
		limits[p] = n
	}
	return &Crash{after: limits, taken: make(map[int]int)}
}

// Next implements Scheduler.
func (c *Crash) Next(p int) bool {
	c.mu.Lock()
	defer c.mu.Unlock()
	limit, crashes := c.after[p]
	if crashes && c.taken[p] >= limit {
		return false
	}
	c.taken[p]++
	return true
}

// Done implements Scheduler.
func (c *Crash) Done(int) {}

// Recover crashes chosen processes after a fixed number of steps, like
// Crash, but lets each crashed process recover a bounded number of times:
// after each recovery the process's step counter resets, so it crashes
// again after another after[p] accesses until its recovery budget runs
// out, at which point the crash is permanent. It drives the concurrent
// runtime's crash-recovery path (the sampling mirror of the explorer's
// faults.CrashRecovery mode).
type Recover struct {
	mu    sync.Mutex
	after map[int]int
	times map[int]int
	taken map[int]int
	used  map[int]int
}

var _ RecoverScheduler = (*Recover)(nil)

// NewRecover returns a scheduler that crashes process p after after[p]
// steps (processes absent from the map never crash; 0 crashes before the
// first access) and then lets p recover up to times[p] times.
func NewRecover(after, times map[int]int) *Recover {
	limits := make(map[int]int, len(after))
	for p, n := range after {
		limits[p] = n
	}
	budget := make(map[int]int, len(times))
	for p, n := range times {
		budget[p] = n
	}
	return &Recover{after: limits, times: budget, taken: make(map[int]int), used: make(map[int]int)}
}

// Next implements Scheduler.
func (r *Recover) Next(p int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	limit, crashes := r.after[p]
	if crashes && r.taken[p] >= limit {
		return false
	}
	r.taken[p]++
	return true
}

// Recover implements RecoverScheduler: the crashed process may re-enter
// while its recovery budget lasts, with its step counter reset.
func (r *Recover) Recover(p int) bool {
	r.mu.Lock()
	defer r.mu.Unlock()
	if r.used[p] >= r.times[p] {
		return false
	}
	r.used[p]++
	r.taken[p] = 0
	return true
}

// Done implements Scheduler.
func (r *Recover) Done(int) {}

// Stutter slows one chosen process to expose wait-freedom violations that
// depend on a laggard: before each of the victim's object accesses, the
// other processes must collectively perform pause further accesses (or
// all finish, whichever comes first). Every process still runs — unlike
// Crash, Stutter tests the "arbitrarily slow but live" adversary of the
// paper's Section 1, under which a wait-free implementation must still
// complete every operation.
type Stutter struct {
	mu     sync.Mutex
	cond   *sync.Cond
	procs  int
	victim int
	pause  int
	credit int
	done   map[int]bool
}

var _ Scheduler = (*Stutter)(nil)

// NewStutter returns a scheduler over procs processes that delays victim:
// each of its steps waits for pause steps by the others. pause <= 0 and
// out-of-range victims degrade to free running.
func NewStutter(procs, victim, pause int) *Stutter {
	s := &Stutter{procs: procs, victim: victim, pause: pause, done: make(map[int]bool)}
	s.cond = sync.NewCond(&s.mu)
	return s
}

// Next implements Scheduler.
func (s *Stutter) Next(p int) bool {
	s.mu.Lock()
	defer s.mu.Unlock()
	if p != s.victim {
		s.credit++
		s.cond.Broadcast()
		return true
	}
	// The victim waits for its quota of other-process steps, but never
	// beyond the point where all other processes are done: wait-freedom is
	// about slow peers, not dead ones, and the Done contract above
	// guarantees the wake-up.
	for s.credit < s.pause && !s.othersDoneLocked() {
		s.cond.Wait()
	}
	s.credit = 0
	return true
}

// Done implements Scheduler.
func (s *Stutter) Done(p int) {
	s.mu.Lock()
	s.done[p] = true
	s.cond.Broadcast()
	s.mu.Unlock()
}

// othersDoneLocked reports whether every process but the victim is done.
func (s *Stutter) othersDoneLocked() bool {
	n := 0
	for p, d := range s.done {
		if d && p != s.victim {
			n++
		}
	}
	return n >= s.procs-1
}

// Token serializes all processes into one global order chosen pseudo-
// randomly from a seed: at each point, one waiting live process is picked
// uniformly and allowed one step. Given deterministic programs and
// deterministic objects, the whole execution is a reproducible function of
// the seed. Token also supports crash injection.
type Token struct {
	mu      sync.Mutex
	cond    *sync.Cond
	rng     *rand.Rand
	waiting map[int]chan bool
	done    map[int]bool
	crashAt map[int]int
	steps   map[int]int
	procs   int
	stopped bool
}

var _ Scheduler = (*Token)(nil)

// NewToken returns a Token scheduler over procs processes with the given
// seed. crashAt (may be nil) crashes process p after crashAt[p] steps.
func NewToken(procs int, seed int64, crashAt map[int]int) *Token {
	t := &Token{
		rng:     rand.New(rand.NewSource(seed)),
		waiting: make(map[int]chan bool),
		done:    make(map[int]bool),
		crashAt: make(map[int]int),
		steps:   make(map[int]int),
		procs:   procs,
	}
	for p, n := range crashAt {
		t.crashAt[p] = n
	}
	t.cond = sync.NewCond(&t.mu)
	go t.dispatch()
	return t
}

// Next implements Scheduler.
func (t *Token) Next(p int) bool {
	t.mu.Lock()
	if limit, crashes := t.crashAt[p]; crashes && t.steps[p] >= limit {
		t.mu.Unlock()
		return false
	}
	grant := make(chan bool, 1)
	t.waiting[p] = grant
	t.cond.Broadcast()
	t.mu.Unlock()
	return <-grant
}

// Done implements Scheduler.
func (t *Token) Done(p int) {
	t.mu.Lock()
	t.done[p] = true
	t.cond.Broadcast()
	t.mu.Unlock()
}

// Stop shuts the dispatcher down; pending Next calls are released as
// crashes. Call it after the run completes.
func (t *Token) Stop() {
	t.mu.Lock()
	t.stopped = true
	t.cond.Broadcast()
	t.mu.Unlock()
}

// dispatch grants one waiting process at a time, chosen at random, until
// every process is done or the scheduler is stopped.
func (t *Token) dispatch() {
	t.mu.Lock()
	defer t.mu.Unlock()
	for {
		if t.stopped {
			for p, grant := range t.waiting {
				delete(t.waiting, p)
				grant <- false
			}
			return
		}
		if len(t.done) == t.procs {
			return
		}
		if len(t.waiting)+len(t.done) < t.procs {
			// Wait until every live process has parked at its next step;
			// only then is the random choice a deterministic function of
			// the seed (processes between steps do only local work and
			// will park or finish).
			t.cond.Wait()
			continue
		}
		candidates := make([]int, 0, len(t.waiting))
		for p := range t.waiting {
			candidates = append(candidates, p)
		}
		sort.Ints(candidates)
		p := candidates[t.rng.Intn(len(candidates))]
		grant := t.waiting[p]
		delete(t.waiting, p)
		t.steps[p]++
		grant <- true
	}
}
